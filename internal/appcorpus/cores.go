package appcorpus

// Handwritten "_core" submodule sources: the functioning API surface of
// each synthetic library, written in the Python subset. Application
// handlers exercise these, so the debloater's oracle checks real behaviour,
// not canned strings. Every core that backs a kept cluster also embeds
// checkRegistrySnippet.

const numpyCore = `
class ndarray:
    def __init__(self, data):
        self.data = data
        self.shape = (len(data),)
    def tolist(self):
        return self.data

def array(data):
    return ndarray(data)

def zeros(n):
    out = []
    for _ in range(n):
        out.append(0.0)
    return ndarray(out)

def dot(a, b):
    total = 0.0
    for pair in zip(a.data, b.data):
        total += pair[0] * pair[1]
    return total

def mean(a):
    if len(a.data) == 0:
        raise ValueError("mean of empty array")
    return sum(a.data) / len(a.data)

def std(a):
    m = mean(a)
    acc = 0.0
    for x in a.data:
        acc += (x - m) ** 2
    return (acc / len(a.data)) ** 0.5

def argmax(a):
    best = 0
    for i in range(len(a.data)):
        if a.data[i] > a.data[best]:
            best = i
    return best
` + checkRegistrySnippet

const torchCore = `
class Tensor:
    def __init__(self, data):
        self.data = data
    def tolist(self):
        return self.data

def tensor(data):
    return Tensor(data)

def add(a, b):
    out = []
    for pair in zip(a.data, b.data):
        out.append(pair[0] + pair[1])
    return Tensor(out)

def matmul(a, b):
    total = 0.0
    for pair in zip(a.data, b.data):
        total += pair[0] * pair[1]
    return Tensor([total])

def relu(t):
    out = []
    for x in t.data:
        out.append(x if x > 0 else 0.0)
    return Tensor(out)

def softmax(t):
    total = 0.0
    for x in t.data:
        total += x
    out = []
    for x in t.data:
        out.append(x / total if total != 0 else 0.0)
    return Tensor(out)
` + checkRegistrySnippet

// torchNNSource is the handwritten torch.nn submodule (Figure 5 of the
// paper builds a torch.nn.Linear).
const torchNNSource = `
from torch._core import Tensor, matmul

class Linear:
    def __init__(self, n_in, n_out):
        self.n_in = n_in
        self.n_out = n_out
        self.weights = None
        self.bias = None
    def __call__(self, t):
        out = matmul(t, self.weights)
        return Tensor([out.data[0] + self.bias.data[0]])

class ReLU:
    def __call__(self, t):
        out = []
        for x in t.data:
            out.append(x if x > 0 else 0.0)
        return Tensor(out)

class Sequential:
    def __init__(self, layers):
        self.layers = layers
    def __call__(self, t):
        for layer in self.layers:
            t = layer(t)
        return t
`

const transformersCore = `
class PretrainedModel:
    def __init__(self, name):
        self.name = name
        self.weights = native_alloc(24)
    def __call__(self, text):
        score = 0.0
        for word in text.split(" "):
            score += len(word)
        return {"label": "POSITIVE" if score % 2 == 0 else "NEGATIVE", "score": score}

def pipeline(task, model="distilbert-base"):
    load_native(180, 9)
    return PretrainedModel(model)

def tokenize(text):
    return text.lower().split(" ")
` + checkRegistrySnippet

const pandasCore = `
class DataFrame:
    def __init__(self, columns):
        self.columns = columns
    def col_sum(self, name):
        return sum(self.columns[name])
    def col_mean(self, name):
        vals = self.columns[name]
        return sum(vals) / len(vals)
    def describe(self):
        out = {}
        for name in sorted(self.columns.keys()):
            out[name] = self.col_mean(name)
        return out

def merge_frames(a, b):
    cols = {}
    cols.update(a.columns)
    cols.update(b.columns)
    return DataFrame(cols)
` + checkRegistrySnippet

const sklearnCore = `
class LinearRegression:
    def __init__(self):
        self.slope = 0.0
        self.intercept = 0.0
    def fit(self, xs, ys):
        n = len(xs)
        mx = sum(xs) / n
        my = sum(ys) / n
        num = 0.0
        den = 0.0
        for pair in zip(xs, ys):
            num += (pair[0] - mx) * (pair[1] - my)
            den += (pair[0] - mx) ** 2
        self.slope = num / den if den != 0 else 0.0
        self.intercept = my - self.slope * mx
        return self
    def predict(self, xs):
        out = []
        for x in xs:
            out.append(self.slope * x + self.intercept)
        return out

def scale(xs):
    m = sum(xs) / len(xs)
    out = []
    for x in xs:
        out.append(x - m)
    return out

def train_test_split(xs, ratio=0.5):
    cut = int(len(xs) * ratio)
    return (xs[:cut], xs[cut:])
` + checkRegistrySnippet

const boto3Core = `
class Client:
    def __init__(self, service):
        self.service = service
    def get_object(self, bucket, key):
        return remote_call(self.service, "get_object", {"bucket": bucket, "key": key})
    def put_object(self, bucket, key, body):
        return remote_call(self.service, "put_object", {"bucket": bucket, "key": key, "size": len(body)})
    def invoke(self, name, payload):
        return remote_call(self.service, "invoke", {"name": name, "payload": payload})

def client(service):
    return Client(service)

class Session:
    def __init__(self, region="us-east-1"):
        self.region = region
    def client(self, service):
        return Client(service)
` + checkRegistrySnippet

const wandImageCore = `
class Image:
    def __init__(self, blob=None, width=640, height=480):
        self.width = width
        self.height = height
        self.blob = blob
    def resize(self, width, height):
        compute(260)
        self.width = width
        self.height = height
        return self
    def make_blob(self, fmt="png"):
        return fmt + ":" + str(self.width) + "x" + str(self.height)
` + checkRegistrySnippet

const lightgbmCore = `
class Dataset:
    def __init__(self, data, label=None):
        self.data = data
        self.label = label

class Booster:
    def __init__(self, trees):
        self.trees = trees
    def predict(self, rows):
        out = []
        for row in rows:
            score = 0.0
            for v in row:
                score += v * self.trees
            out.append(score / (self.trees * len(row)))
        return out

def train(params, dataset, num_rounds=10):
    compute(8)
    return Booster(num_rounds)
` + checkRegistrySnippet

const requestsCore = `
class Response:
    def __init__(self, status, body):
        self.status_code = status
        self.text = body
    def json(self):
        return {"status": self.status_code, "body": self.text}

def get(url, timeout=30):
    remote_call("http", "GET", {"url": url})
    return Response(200, "<html><body>" + url + "</body></html>")

def post(url, data=None):
    remote_call("http", "POST", {"url": url})
    return Response(201, "created")
` + checkRegistrySnippet

const lxmlHTMLCore = `
class Element:
    def __init__(self, tag, text, children=None):
        self.tag = tag
        self.text = text
        self.children = children if children is not None else []
    def text_content(self):
        out = self.text
        for child in self.children:
            out = out + child.text_content()
        return out

def fromstring(markup):
    stripped = markup.replace("<html>", "").replace("</html>", "")
    stripped = stripped.replace("<body>", "").replace("</body>", "")
    return Element("html", stripped)

def tostring(el):
    return "<" + el.tag + ">" + el.text_content() + "</" + el.tag + ">"
` + checkRegistrySnippet

const skimageCore = `
class ImageArr:
    def __init__(self, pixels, width, height):
        self.pixels = pixels
        self.width = width
        self.height = height

def imread(path):
    pixels = []
    for i in range(16):
        pixels.append((i * 17) % 256)
    return ImageArr(pixels, 4, 4)

def sobel(img):
    compute(30)
    out = []
    for i in range(len(img.pixels)):
        prev = img.pixels[i - 1] if i > 0 else 0
        out.append(abs(img.pixels[i] - prev))
    return ImageArr(out, img.width, img.height)

def rescale(img, factor):
    out = []
    for p in img.pixels:
        out.append(p * factor)
    return ImageArr(out, img.width, img.height)

def img_sum(img):
    return sum(img.pixels)
` + checkRegistrySnippet

const tensorflowCore = `
class TFTensor:
    def __init__(self, data):
        self.data = data

def constant(data):
    return TFTensor(data)

def reduce_sum(t):
    return sum(t.data)

def tf_matmul(a, b):
    total = 0.0
    for pair in zip(a.data, b.data):
        total += pair[0] * pair[1]
    return TFTensor([total])

def nn_softmax(t):
    total = 0.0
    for x in t.data:
        total += x
    out = []
    for x in t.data:
        out.append(x / total if total != 0 else 0.0)
    return TFTensor(out)
` + checkRegistrySnippet

const squiggleCore = `
import numpy

def transform(dna):
    xs = []
    ys = []
    x = 0.0
    y = 0.0
    for base in dna:
        x += 1.0
        if base == "A":
            y += 1.0
        elif base == "T":
            y -= 1.0
        elif base == "G":
            y += 0.5
        else:
            y -= 0.5
        xs.append(x)
        ys.append(y)
    return (numpy.array(xs), numpy.array(ys))

def gc_content(dna):
    gc = 0
    for base in dna:
        if base == "G" or base == "C":
            gc += 1
    return gc / len(dna) if len(dna) > 0 else 0.0
` + checkRegistrySnippet

const ffmpegCore = `
def probe(path):
    compute(40)
    return {"format": path.split(".")[-1], "duration": 12.0, "streams": 2}

def run(args):
    compute(2400)
    return {"ok": True, "args": len(args)}

def input_file(path):
    return {"path": path}
` + checkRegistrySnippet

const igraphCore = `
class Graph:
    def __init__(self):
        self.vertices = 0
        self.edges = []
    def add_vertices(self, n):
        self.vertices += n
    def add_edges(self, pairs):
        for p in pairs:
            self.edges.append(p)
    def degree(self):
        out = []
        for v in range(self.vertices):
            d = 0
            for e in self.edges:
                if e[0] == v or e[1] == v:
                    d += 1
            out.append(d)
        return out
` + checkRegistrySnippet

const markdownCore = `
def markdown(text):
    out = []
    for line in text.split("\n"):
        if line.startswith("# "):
            out.append("<h1>" + line[2:] + "</h1>")
        elif line.startswith("## "):
            out.append("<h2>" + line[3:] + "</h2>")
        elif line.startswith("- "):
            out.append("<li>" + line[2:] + "</li>")
        elif len(line) > 0:
            out.append("<p>" + line + "</p>")
    return "\n".join(out)
` + checkRegistrySnippet

const pilCore = `
class Img:
    def __init__(self, pixels, size):
        self.pixels = pixels
        self.size = size
    def resize(self, size):
        compute(25)
        return Img(self.pixels[:size], size)
    def to_list(self):
        return self.pixels

def image_open(path):
    pixels = []
    for i in range(8):
        pixels.append((i * 31) % 255)
    return Img(pixels, 8)
` + checkRegistrySnippet

const nltkCore = `
def word_tokenize(text):
    return text.replace(",", " ").replace(".", " ").split()

def pos_tag(words):
    out = []
    for w in words:
        if w.endswith("ing"):
            out.append((w, "VBG"))
        elif w.endswith("ly"):
            out.append((w, "RB"))
        else:
            out.append((w, "NN"))
    return out
` + checkRegistrySnippet

const textblobCore = `
import nltk

class TextBlob:
    def __init__(self, text):
        self.text = text
        self.words = nltk.word_tokenize(text)
    def sentiment(self):
        score = 0.0
        for w in self.words:
            if w in ["good", "great", "happy", "excellent"]:
                score += 1.0
            elif w in ["bad", "sad", "terrible", "awful"]:
                score -= 1.0
        return score / len(self.words) if len(self.words) > 0 else 0.0
    def tags(self):
        return nltk.pos_tag(self.words)
` + checkRegistrySnippet

const chdbCore = `
def query(sql, fmt="CSV"):
    compute(60)
    parts = sql.lower().split(" ")
    n = 3
    if "limit" in parts:
        n = int(parts[parts.index("limit") + 1])
    rows = []
    for i in range(n):
        rows.append([i, i * i])
    return rows
` + checkRegistrySnippet

const reportlabCore = `
class Canvas:
    def __init__(self, name):
        self.name = name
        self.lines = []
    def draw_string(self, x, y, text):
        self.lines.append(text)
    def save(self):
        compute(120)
        return self.name + ":" + str(len(self.lines))
` + checkRegistrySnippet

const pptxCore = `
class Presentation:
    def __init__(self):
        self.slides = []
    def add_slide(self, title):
        self.slides.append(title)
    def save(self, name):
        compute(90)
        return name + ":" + str(len(self.slides))
` + checkRegistrySnippet

const docxCore = `
class Document:
    def __init__(self):
        self.paragraphs = []
    def add_paragraph(self, text):
        self.paragraphs.append(text)
    def save(self, name):
        compute(80)
        return name + ":" + str(len(self.paragraphs))
` + checkRegistrySnippet

const sympyCore = `
class Symbol:
    def __init__(self, name):
        self.name = name

def expand_square(sym):
    return sym.name + "**2 + 2*" + sym.name + " + 1"

def diff_poly(coeffs):
    out = []
    for i in range(1, len(coeffs)):
        out.append(coeffs[i] * i)
    return out

def solve_linear(a, b):
    if a == 0:
        raise ValueError("not linear")
    return -b / a
` + checkRegistrySnippet

const qiskitCore = `
class QuantumCircuit:
    def __init__(self, qubits):
        self.qubits = qubits
        self.gates = []
    def h(self, q):
        self.gates.append(("h", q))
    def cx(self, a, b):
        self.gates.append(("cx", a, b))
    def measure_all(self):
        self.gates.append(("measure",))

def simulate(circuit, shots=1024):
    compute(140)
    counts = {}
    zero = "0" * circuit.qubits
    one = "1" * circuit.qubits
    counts[zero] = shots // 2
    counts[one] = shots - shots // 2
    return counts
` + checkRegistrySnippet

const qiskitNatureCore = `
import qiskit

def ground_state_energy(molecule):
    circuit = qiskit.QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    counts = qiskit.simulate(circuit, shots=1000)
    return -1.0 * len(molecule) - len(counts) * 0.05
` + checkRegistrySnippet

const shapelyCore = `
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def distance(self, other):
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5

class Polygon:
    def __init__(self, points):
        self.points = points
    def area(self):
        total = 0.0
        n = len(self.points)
        for i in range(n):
            j = (i + 1) % n
            total += self.points[i][0] * self.points[j][1]
            total -= self.points[j][0] * self.points[i][1]
        return abs(total) / 2.0
` + checkRegistrySnippet

const spacyCore = `
class Doc:
    def __init__(self, tokens):
        self.tokens = tokens
    def ents(self):
        out = []
        for t in self.tokens:
            if t[0:1] == t[0:1].upper() and t[0:1].isdigit() == False and len(t) > 1:
                out.append(t)
        return out

class Language:
    def __init__(self, name):
        self.name = name
    def __call__(self, text):
        return Doc(text.split(" "))

def load(model):
    load_native(600, 60)
    return Language(model)
` + checkRegistrySnippet

const joblibCore = `
def dump(obj, name):
    return name

def load_obj(name):
    return {"name": name}

def hash_obj(obj):
    return str(len(str(obj)))
` + checkRegistrySnippet

const genericCore = `
def configure(opts):
    return {"configured": True, "n": len(opts)}

def process(data, factor=1):
    out = []
    for x in data:
        out.append(x * factor)
    return out
` + checkRegistrySnippet
