package appcorpus

import (
	"strings"
	"testing"

	"repro/internal/pylang"
	"repro/internal/pyparser"
)

// TestCorpusPrintParseRoundTrip parses every generated source file in every
// corpus image, prints it, and re-parses — the exact path the debloater's
// write-back depends on. The printed form must be a fixed point and
// execute identically.
func TestCorpusPrintParseRoundTrip(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			app := d.Build()
			for _, path := range app.Image.List() {
				if !strings.HasSuffix(path, ".py") {
					continue
				}
				src, err := app.Image.Read(path)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				m1, perr := pyparser.Parse(path, src)
				if perr != nil {
					t.Fatalf("%s does not parse: %v", path, perr)
				}
				p1 := pylang.Print(m1)
				m2, perr := pyparser.Parse(path, p1)
				if perr != nil {
					t.Fatalf("%s: printed form does not re-parse: %v\n%s", path, perr, p1)
				}
				p2 := pylang.Print(m2)
				if p1 != p2 {
					t.Errorf("%s: print∘parse is not a fixed point", path)
				}
				if len(m1.Body) != len(m2.Body) {
					t.Errorf("%s: statement count changed %d -> %d", path, len(m1.Body), len(m2.Body))
				}
			}
		})
	}
}

// TestCorpusExecutesAfterReprint rewrites one app's entire image through
// the printer and checks behaviour is bit-identical.
func TestCorpusExecutesAfterReprint(t *testing.T) {
	app := MustBuild("lightgbm")
	reprinted := app.Clone()
	for _, path := range reprinted.Image.List() {
		if !strings.HasSuffix(path, ".py") {
			continue
		}
		src, _ := reprinted.Image.Read(path)
		m, perr := pyparser.Parse(path, src)
		if perr != nil {
			t.Fatalf("%s: %v", path, perr)
		}
		reprinted.Image.Write(path, pylang.Print(m))
	}
	_, _, _, out1 := runOnce(t, app, app.Oracle[0])
	_, _, _, out2 := runOnce(t, reprinted, reprinted.Oracle[0])
	if out1 != out2 {
		t.Errorf("reprinted image behaves differently:\n a %q\n b %q", out1, out2)
	}
}
