// Package appcorpus builds the 21-application benchmark corpus of the
// paper's Table 1 (8 apps from FaaSLight, 7 from RainbowCake, 6 new from
// popular PyPI packages), as synthetic-but-calibrated serverless
// applications over the Python-subset runtime.
//
// Real PyPI libraries are unavailable to an offline, stdlib-only build, so
// each library is generated with the three observables λ-trim's pipeline
// actually consumes (see DESIGN.md):
//
//  1. the attribute namespace of each module (attribute counts match the
//     paper's Table 3 representative modules: torch has 1414 top-level
//     attributes, transformers 3300, numpy 537, ...);
//  2. marginal import time, carried by load_native calls in module
//     initializers (calibrated to Table 1's Import column);
//  3. marginal memory, carried by load_native/native_alloc (calibrated so
//     debloating recovers the paper's Figure 8 / Table 2 reductions).
//
// Each library has a handwritten "_core" submodule with a working API that
// the application's handler actually exercises, plus generated submodules
// and padding attributes that are redundant for the app — the bloat λ-trim
// removes. Intra-module dependency clusters (a module-level registry
// validated at import time) force Delta Debugging to keep some unprotected
// attributes, as observed in the paper.
package appcorpus

import (
	"fmt"
	"strings"

	"repro/internal/vfs"
)

// GroupSpec is one generated submodule holding removable attributes and
// their share of the library's import cost.
type GroupSpec struct {
	// Name suffix of the submodule (full name "<lib>._<Name>").
	Name string
	// Attrs is the number of exported attributes.
	Attrs int
	// MS and MB are the native load cost of the submodule.
	MS float64
	MB float64
}

// LibSpec describes one synthetic library.
type LibSpec struct {
	// Name is the import name ("torch", "numpy", ...).
	Name string
	// Deps are other top-level libraries imported by this one
	// (e.g. squiggle imports numpy).
	Deps []string

	// CoreMS/CoreMB are unremovable costs paid directly in __init__
	// (interpreter-visible C extension load).
	CoreMS, CoreMB float64
	// CoreSource is the handwritten _core submodule implementing the API
	// the app uses. CoreExports are re-exported at top level.
	CoreSource  string
	CoreExports []string
	// CoreLoadMS/CoreLoadMB are native costs inside _core (also
	// unremovable as long as the app needs any core export).
	CoreLoadMS, CoreLoadMB float64

	// Groups are removable submodules.
	Groups []GroupSpec

	// PadAttrs is the number of cheap top-level padding defs; PadMemMB is
	// spread over padding table constants (removable memory).
	PadAttrs int
	PadMemMB float64

	// KeptCluster is the number of candidate attributes tied into an
	// import-time-validated registry: DD must keep them even though the
	// app never touches them (the paper's "different applications keep
	// different attribute counts of the same module").
	KeptCluster int

	// ExtraSubmodules maps submodule name -> handwritten source, for
	// semantically meaningful submodules like torch.nn.
	ExtraSubmodules map[string]string
	// ExtraInitLines are verbatim lines appended to __init__ (e.g.
	// "from torch import nn" to surface a handwritten submodule).
	ExtraInitLines []string
}

// TotalMS returns the library's full import-time cost in milliseconds
// (excluding per-statement interpreter cost and dependencies).
func (l *LibSpec) TotalMS() float64 {
	t := l.CoreMS + l.CoreLoadMS
	for _, g := range l.Groups {
		t += g.MS
	}
	return t
}

// TotalMB returns the library's full import memory in MB (excluding
// dependencies and per-object accounting).
func (l *LibSpec) TotalMB() float64 {
	m := l.CoreMB + l.CoreLoadMB + l.PadMemMB
	for _, g := range l.Groups {
		m += g.MB
	}
	return m
}

// RemovableMS returns the import-time cost hanging off removable groups.
func (l *LibSpec) RemovableMS() float64 {
	t := 0.0
	for _, g := range l.Groups {
		t += g.MS
	}
	return t
}

// RemovableMB returns the import memory hanging off removable groups and
// padding — the share debloating can recover (the complement of the core
// costs, by makeLib's calibration split).
func (l *LibSpec) RemovableMB() float64 {
	m := l.PadMemMB
	for _, g := range l.Groups {
		m += g.MB
	}
	return m
}

// TopAttrs estimates the top-level attribute count the generated module
// will expose (excluding magic attributes and machinery bindings).
func (l *LibSpec) TopAttrs() int {
	n := len(l.CoreExports) + l.PadAttrs + l.KeptCluster
	for _, g := range l.Groups {
		n += g.Attrs
	}
	if l.KeptCluster > 0 {
		n++ // the registry itself
	}
	return n
}

// WriteTo generates the library's files into the image under
// site-packages/.
func (l *LibSpec) WriteTo(fs *vfs.FS) {
	root := "site-packages/" + strings.ReplaceAll(l.Name, ".", "/")
	var sb strings.Builder

	for _, dep := range l.Deps {
		fmt.Fprintf(&sb, "import %s\n", dep)
	}
	if l.CoreMS > 0 || l.CoreMB > 0 {
		fmt.Fprintf(&sb, "load_native(%s, %s)\n", f(l.CoreMS), f(l.CoreMB))
	}

	// Needed API re-exported from _core.
	if len(l.CoreExports) > 0 {
		fmt.Fprintf(&sb, "from %s._core import %s\n", l.Name, strings.Join(l.CoreExports, ", "))
		coreSrc := fmt.Sprintf("load_native(%s, %s)\n", f(l.CoreLoadMS), f(l.CoreLoadMB)) + l.CoreSource
		fs.Write(root+"/_core/__init__.py", coreSrc)
	}

	// Removable groups.
	for _, g := range l.Groups {
		names := make([]string, g.Attrs)
		var gb strings.Builder
		fmt.Fprintf(&gb, "load_native(%s, %s)\n", f(g.MS), f(g.MB))
		for i := 0; i < g.Attrs; i++ {
			names[i] = fmt.Sprintf("%s_f%03d", g.Name, i)
			fmt.Fprintf(&gb, "def %s(x):\n    return x\n", names[i])
		}
		fs.Write(fmt.Sprintf("%s/_%s/__init__.py", root, g.Name), gb.String())
		fmt.Fprintf(&sb, "from %s._%s import %s\n", l.Name, g.Name, strings.Join(names, ", "))
	}

	// Padding attributes: cheap defs plus memory-carrying tables.
	memTables := l.PadAttrs / 4
	if memTables == 0 && l.PadMemMB > 0 {
		memTables = 1
	}
	perTable := 0.0
	if memTables > 0 {
		perTable = l.PadMemMB / float64(memTables)
	}
	tableIdx := 0
	for i := 0; i < l.PadAttrs; i++ {
		if tableIdx < memTables && i%4 == 3 {
			fmt.Fprintf(&sb, "tab_%04d = native_alloc(%s)\n", i, f(perTable))
			tableIdx++
			continue
		}
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "def pad_%04d(x):\n    return x\n", i)
		case 1:
			fmt.Fprintf(&sb, "def pad_%04d(a, b):\n    return a + b\n", i)
		default:
			fmt.Fprintf(&sb, "const_%04d = %d\n", i, i)
		}
	}

	// Handwritten submodules and extra init lines.
	for sub, src := range l.ExtraSubmodules {
		fs.Write(root+"/"+sub+"/__init__.py", src)
	}
	for _, line := range l.ExtraInitLines {
		sb.WriteString(line + "\n")
	}

	// Kept cluster: candidates that import-time validation pins down.
	if l.KeptCluster > 0 {
		names := make([]string, l.KeptCluster)
		for i := 0; i < l.KeptCluster; i++ {
			names[i] = fmt.Sprintf("kern_%03d", i)
			fmt.Fprintf(&sb, "def %s(x):\n    return x + %d\n", names[i], i)
		}
		fmt.Fprintf(&sb, "registry = [%s]\n", strings.Join(names, ", "))
		// __version__ is a magic attribute: its assignment is never a DD
		// candidate, so this reference keeps the registry (and the kernels
		// it lists) alive through debloating.
		fmt.Fprintf(&sb, "__version__ = _check_registry(\"1.0.0\", registry)\n")
	}

	fs.Write(root+"/__init__.py", sb.String())
}

// checkRegistrySnippet is appended to core sources of libraries that carry
// a kept cluster.
const checkRegistrySnippet = `
def _check_registry(version, registry):
    if len(registry) == 0:
        raise RuntimeError("empty kernel registry")
    return version
`

// f formats a float for embedding in generated Python.
func f(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// SplitGroups distributes a removable cost budget over n groups with the
// given attribute counts; earlier groups get geometrically larger shares
// (real libraries concentrate cost in a few heavy submodules).
func SplitGroups(prefix string, n int, attrsTotal int, ms, mb float64) []GroupSpec {
	if n <= 0 {
		return nil
	}
	groups := make([]GroupSpec, n)
	// Geometric weights 1, 1/2, 1/4, ... normalized.
	total := 0.0
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(int(1)<<uint(i))
		total += w[i]
	}
	attrsLeft := attrsTotal
	for i := range groups {
		attrs := attrsTotal / n
		if i == n-1 {
			attrs = attrsLeft
		}
		attrsLeft -= attrs
		if attrs < 1 {
			attrs = 1
		}
		groups[i] = GroupSpec{
			Name:  fmt.Sprintf("%s%d", prefix, i),
			Attrs: attrs,
			MS:    ms * w[i] / total,
			MB:    mb * w[i] / total,
		}
	}
	return groups
}
