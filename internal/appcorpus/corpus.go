package appcorpus

import (
	"fmt"
	"sort"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// AppDef is one corpus entry with its Table 1 calibration targets.
type AppDef struct {
	Name   string
	Source string // "FaaSLight", "RainbowCake", or "PyPI"
	// Table 1 columns.
	SizeMB  float64
	ImportS float64
	ExecS   float64
	E2ES    float64
	// MemoryMB is the calibrated runtime footprint (including the ~35 MB
	// interpreter base) the original app reaches.
	MemoryMB float64
	// RepModule is the representative module reported in Table 3.
	RepModule string
	// RepAttrs is that module's top-level attribute count (Table 3 "Pre").
	RepAttrs int

	// RemovableImportS and RemovableMemMB are the calibrated import-time
	// and memory mass hanging off removable library groups — the share
	// debloating can recover. They are summed from the generated libraries
	// during Build (zero until the app has been built at least once) and
	// parameterize the fleet replay's debloated arm without re-running the
	// DD pipeline per fleet member.
	RemovableImportS float64
	RemovableMemMB   float64

	build func() *appspec.App
}

// Build constructs a fresh instance of the application (new image).
func (d *AppDef) Build() *appspec.App { return d.build() }

// Catalog returns the 21 benchmark definitions in Table 1 order.
func Catalog() []*AppDef {
	defs := []*AppDef{
		// From FaaSLight.
		appHuggingface(), appImageResize(), appLightGBM(), appLXML(),
		appScikit(), appSkimage(), appTensorflow(), appWine(),
		// From RainbowCake.
		appDNAVisualization(), appFFmpeg(), appIgraph(), appMarkdown(),
		appResnet(), appTextblob(),
		// New applications (PyPI).
		appChdbOlap(), appEpubPdf(), appJsym(), appPandas(),
		appQiskitNature(), appShapelyNumpy(), appSpacy(),
	}
	return defs
}

// Lookup returns the definition for name.
func Lookup(name string) (*AppDef, bool) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Names returns all corpus app names, sorted.
func Names() []string {
	var out []string
	for _, d := range Catalog() {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

// MustBuild builds an app by name, panicking on unknown names.
func MustBuild(name string) *appspec.App {
	d, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("appcorpus: unknown app %q", name))
	}
	return d.Build()
}

// makeLib assembles a calibrated LibSpec. exports are the core API names
// the app (or dependent libraries) use; attrs is the target top-level
// attribute count; kept is the registry-pinned cluster size; removableMS
// and removableMB are the import cost shares that debloating can recover.
func makeLib(name string, deps, exports []string, coreSrc string, attrs, kept int,
	totalMS, totalMB, removableMS, removableMB float64) LibSpec {

	exp := make([]string, 0, len(exports)+1)
	exp = append(exp, exports...)
	if kept > 0 {
		exp = append(exp, "_check_registry")
	}
	unremovMS := totalMS - removableMS
	unremovMB := totalMB - removableMB
	if unremovMS < 0 || unremovMB < 0 {
		panic(fmt.Sprintf("appcorpus: %s removable exceeds total", name))
	}

	l := LibSpec{
		Name:        name,
		Deps:        deps,
		CoreSource:  coreSrc,
		CoreExports: exp,
		CoreMS:      0.45 * unremovMS,
		CoreMB:      0.5 * unremovMB,
		CoreLoadMS:  0.55 * unremovMS,
		CoreLoadMB:  0.5 * unremovMB,
		KeptCluster: kept,
	}

	// Account for namespace bindings created by machinery rather than by
	// the generated statements: the _core submodule, one binding per
	// group submodule, and one per dependency import.
	remaining := attrs - len(exp) - kept - 1 - len(deps)
	if kept > 0 {
		remaining-- // the registry binding
	}
	nGroups := (remaining*3/4)/60 + 2
	if nGroups > 8 {
		nGroups = 8
	}
	remaining -= nGroups
	if remaining < 4 {
		remaining = 4
	}
	pads := remaining / 4
	groupAttrs := remaining - pads
	l.Groups = SplitGroups("g", nGroups, groupAttrs, removableMS, removableMB*0.8)
	l.PadAttrs = pads
	l.PadMemMB = removableMB * 0.2
	return l
}

// assemble builds the deployable app from its parts and calibrates the
// unbilled platform delay so cold E2E matches Table 1.
func assemble(def *AppDef, handlerSrc string, libs []LibSpec, oracle []appspec.TestCase) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", handlerSrc)
	def.RemovableImportS, def.RemovableMemMB = 0, 0
	for i := range libs {
		libs[i].WriteTo(fs)
		def.RemovableImportS += libs[i].RemovableMS() / 1000
		def.RemovableMemMB += libs[i].RemovableMB()
	}
	delayMS := (def.E2ES - def.ImportS - def.ExecS) * 1000
	if delayMS < 50 {
		delayMS = 50
	}
	return &appspec.App{
		Name:         def.Name,
		Image:        fs,
		Entry:        "handler",
		Handler:      "handler",
		Oracle:       oracle,
		SetupDelayMS: delayMS,
		ImageSizeMB:  def.SizeMB,
		Tags:         map[string]string{"source": def.Source, "rep_module": def.RepModule},
	}
}
