package appcorpus

import (
	"testing"
	"time"

	"repro/internal/appspec"
	"repro/internal/pyruntime"
	"repro/internal/simtime"
)

// runOnce imports the app and invokes the handler on an oracle event,
// returning init time, init memory, exec time and stdout.
func runOnce(t *testing.T, app *appspec.App, tc appspec.TestCase) (time.Duration, float64, time.Duration, string) {
	t.Helper()
	in := pyruntime.New(app.Image)
	t0 := in.Clock.Now()
	m0 := in.Alloc.Used()
	mod, perr := in.Import(app.Entry)
	if perr != nil {
		t.Fatalf("%s: import failed: %v", app.Name, perr)
	}
	initTime := in.Clock.Now() - t0
	initMem := simtime.MBf(in.Alloc.Used() - m0)
	handler, ok := mod.Dict.Get(app.Handler)
	if !ok {
		t.Fatalf("%s: handler missing", app.Name)
	}
	event, err := pyruntime.FromGo(anyMapOrEmpty(tc.Event))
	if err != nil {
		t.Fatalf("%s: bad event: %v", app.Name, err)
	}
	ctx := pyruntime.NewDict()
	ctx.SetStr("function_name", pyruntime.StrV(app.Name))
	e0 := in.Clock.Now()
	if _, perr := in.CallFunction(handler, []pyruntime.Value{event, ctx}); perr != nil {
		t.Fatalf("%s: handler raised: %v", app.Name, perr)
	}
	return initTime, initMem, in.Clock.Now() - e0, in.OutputString()
}

func anyMapOrEmpty(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	return m
}

func TestCatalogComplete(t *testing.T) {
	defs := Catalog()
	if len(defs) != 21 {
		t.Fatalf("corpus has %d apps, want 21", len(defs))
	}
	bySource := map[string]int{}
	for _, d := range defs {
		bySource[d.Source]++
	}
	// Table 1 lists 8 FaaSLight, 6 RainbowCake and 7 new (PyPI) rows.
	if bySource["FaaSLight"] != 8 || bySource["RainbowCake"] != 6 || bySource["PyPI"] != 7 {
		t.Errorf("suite split = %v, want FaaSLight:8 RainbowCake:6 PyPI:7", bySource)
	}
}

func TestAllAppsRun(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			app := d.Build()
			if len(app.Oracle) == 0 {
				t.Fatal("no oracle cases")
			}
			for _, tc := range app.Oracle {
				_, _, _, out := runOnce(t, app, tc)
				if out == "" {
					t.Errorf("case %s produced no output", tc.Name)
				}
			}
		})
	}
}

func TestAllAppsDeterministic(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			app1 := d.Build()
			app2 := d.Build()
			_, _, _, out1 := runOnce(t, app1, app1.Oracle[0])
			_, _, _, out2 := runOnce(t, app2, app2.Oracle[0])
			if out1 != out2 {
				t.Errorf("nondeterministic output:\n a: %q\n b: %q", out1, out2)
			}
		})
	}
}

// TestCalibration verifies the corpus hits its Table 1 targets: import and
// exec times within tolerance, memory in range, rep-module attribute counts
// near the paper's values.
func TestCalibration(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			app := d.Build()
			initTime, initMem, execTime, _ := runOnce(t, app, app.Oracle[0])

			wantInit := d.ImportS
			gotInit := initTime.Seconds()
			if relErr(gotInit, wantInit) > 0.25 && absErr(gotInit, wantInit) > 0.08 {
				t.Errorf("import time = %.3fs, want ≈%.3fs", gotInit, wantInit)
			}

			wantExec := d.ExecS
			gotExec := execTime.Seconds()
			if relErr(gotExec, wantExec) > 0.30 && absErr(gotExec, wantExec) > 0.06 {
				t.Errorf("exec time = %.3fs, want ≈%.3fs", gotExec, wantExec)
			}

			// Footprint: init memory + 35 MB base should be near target.
			gotMem := initMem + 35
			if relErr(gotMem, d.MemoryMB) > 0.30 {
				t.Errorf("memory = %.1fMB, want ≈%.1fMB", gotMem, d.MemoryMB)
			}
		})
	}
}

func TestRepModuleAttrCounts(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			app := d.Build()
			in := pyruntime.New(app.Image)
			if _, perr := in.Import(app.Entry); perr != nil {
				t.Fatalf("import: %v", perr)
			}
			mod, ok := in.Modules()[d.RepModule]
			if !ok {
				// Representative module may be lazily imported; import it
				// directly.
				m, perr := in.Import(d.RepModule)
				if perr != nil {
					t.Fatalf("rep module %s: %v", d.RepModule, perr)
				}
				mod = m
			}
			count := 0
			for _, name := range mod.Dict.Names() {
				if !pyruntime.MagicAttrs[name] {
					count++
				}
			}
			if relErrInt(count, d.RepAttrs) > 0.10 {
				t.Errorf("%s attrs = %d, want ≈%d", d.RepModule, count, d.RepAttrs)
			}
		})
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff / want
}

func absErr(got, want float64) float64 {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff
}

func relErrInt(got, want int) float64 { return relErr(float64(got), float64(want)) }
