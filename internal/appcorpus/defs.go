package appcorpus

import "repro/internal/appspec"

// The 21 corpus applications. Each definition carries its Table 1 targets
// (size, import, exec, E2E), a calibrated memory footprint, the Table 3
// representative module, and a builder that generates the deployment image.
// Library cost splits are chosen so that λ-trim's removal of redundant
// attributes recovers approximately the per-app improvements reported in
// Figure 8 / Table 2 of the paper.

// ---- FaaSLight suite -------------------------------------------------------

func appHuggingface() *AppDef {
	d := &AppDef{
		Name: "huggingface", Source: "FaaSLight",
		SizeMB: 799.38, ImportS: 5.52, ExecS: 0.86, E2ES: 10.12,
		MemoryMB: 430, RepModule: "transformers", RepAttrs: 3300,
	}
	d.build = func() *appspec.App {
		torch := torchLib(2200, 160, 164, 3, 40)
		transformers := makeLib("transformers", []string{"torch"},
			[]string{"pipeline", "tokenize", "PretrainedModel"},
			transformersCore, 3300, 8, 3140, 190, 400, 6)
		handler := `
import torch
from transformers import pipeline

classifier = pipeline("sentiment-analysis")

def handler(event, context):
    text = event.get("text", "serverless is great")
    if event.get("mode", "basic") == "advanced":
        attr_name = "pad_" + "0000"
        rare = getattr(torch, attr_name)
        compute(850)
        return {"advanced": rare(text)}
    result = classifier(text)
    t = torch.tensor([result["score"], 1.0])
    s = torch.softmax(t)
    compute(850)
    print("label:", result["label"])
    return {"label": result["label"], "confidence": s.data[0]}
`
		return assemble(d, handler, []LibSpec{torch, transformers}, []appspec.TestCase{
			{Name: "positive", Event: map[string]any{"text": "good great excellent day"}},
			{Name: "negative", Event: map[string]any{"text": "terrible awful weather today"}},
		})
	}
	return d
}

func appImageResize() *AppDef {
	d := &AppDef{
		Name: "image-resize", Source: "FaaSLight",
		SizeMB: 102.05, ImportS: 0.42, ExecS: 0.95, E2ES: 1.88,
		MemoryMB: 110, RepModule: "wand.image", RepAttrs: 91,
	}
	d.build = func() *appspec.App {
		boto := boto3Lib(260, 30, 5, 1)
		wand := makeLib("wand", nil, []string{"configure", "process"},
			genericCore, 25, 4, 40, 5, 1, 0.3)
		wandImage := makeLib("wand.image", nil, []string{"Image"},
			wandImageCore, 91, 12, 120, 40, 1.6, 2)
		handler := `
import boto3
from wand.image import Image

s3 = boto3.client("s3")

def handler(event, context):
    key = event.get("key", "photo.png")
    obj = s3.get_object("images", key)
    img = Image(blob=key, width=1920, height=1080)
    img.resize(640, 360)
    blob = img.make_blob("png")
    s3.put_object("thumbnails", key, blob)
    compute(640)
    print("resized:", blob)
    return {"key": key, "thumb": blob}
`
		return assemble(d, handler, []LibSpec{boto, wand, wandImage}, []appspec.TestCase{
			{Name: "png", Event: map[string]any{"key": "cat.png"}},
			{Name: "jpg", Event: map[string]any{"key": "dog.jpg"}},
		})
	}
	return d
}

func appLightGBM() *AppDef {
	d := &AppDef{
		Name: "lightgbm", Source: "FaaSLight",
		SizeMB: 120.22, ImportS: 0.57, ExecS: 0.04, E2ES: 1.14,
		MemoryMB: 140, RepModule: "lightgbm", RepAttrs: 45,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(130, 25, 62, 10, 20)
		lgbm := makeLib("lightgbm", []string{"numpy"},
			[]string{"Dataset", "Booster", "train"},
			lightgbmCore, 45, 6, 440, 80, 250, 44)
		handler := `
import numpy
import lightgbm

def handler(event, context):
    rows = event.get("rows", [[1.0, 2.0], [3.0, 4.0]])
    labels = event.get("labels", [0.0, 1.0])
    if event.get("mode", "basic") == "advanced":
        attr_name = "pad_" + "0000"
        rare = getattr(lightgbm, attr_name)
        compute(20)
        return {"advanced": rare(rows)}
    ds = lightgbm.Dataset(rows, label=labels)
    booster = lightgbm.train({"objective": "regression"}, ds, num_rounds=5)
    preds = booster.predict(rows)
    arr = numpy.array(preds)
    compute(20)
    print("mean prediction:", numpy.mean(arr))
    return {"predictions": preds}
`
		return assemble(d, handler, []LibSpec{numpy, lgbm}, []appspec.TestCase{
			{Name: "small", Event: map[string]any{
				"rows": []any{[]any{1.0, 2.0}, []any{3.0, 4.0}}, "labels": []any{0.0, 1.0}}},
		})
	}
	return d
}

func appLXML() *AppDef {
	d := &AppDef{
		Name: "lxml", Source: "FaaSLight",
		SizeMB: 58.01, ImportS: 0.24, ExecS: 0.39, E2ES: 1.12,
		MemoryMB: 75, RepModule: "lxml.html", RepAttrs: 84,
	}
	d.build = func() *appspec.App {
		requests := makeLib("requests", nil, []string{"get", "post", "Response"},
			requestsCore, 64, 8, 100, 15, 40, 0.05)
		lxml := makeLib("lxml", nil, []string{"configure", "process"},
			genericCore, 40, 6, 60, 10, 15, 0.05)
		lxmlHTML := makeLib("lxml.html", nil, []string{"Element", "fromstring", "tostring"},
			lxmlHTMLCore, 84, 10, 80, 15, 45, 0.06)
		handler := `
import requests
from lxml import html

def handler(event, context):
    url = event.get("url", "https://example.com/page")
    resp = requests.get(url)
    tree = html.fromstring(resp.text)
    text = tree.text_content()
    compute(370)
    print("chars:", len(text))
    return {"status": resp.status_code, "length": len(text)}
`
		return assemble(d, handler, []LibSpec{requests, lxml, lxmlHTML}, []appspec.TestCase{
			{Name: "page", Event: map[string]any{"url": "https://example.com/a"}},
			{Name: "other", Event: map[string]any{"url": "https://example.org/b"}},
		})
	}
	return d
}

func appScikit() *AppDef {
	d := &AppDef{
		Name: "scikit", Source: "FaaSLight",
		SizeMB: 177.01, ImportS: 0.30, ExecS: 0.01, E2ES: 1.93,
		MemoryMB: 150, RepModule: "joblib", RepAttrs: 50,
	}
	d.build = func() *appspec.App {
		joblib := joblibLib(80, 30, 19, 4.7)
		sklearn := sklearnLib(220, 85, 40, 10)
		handler := `
import sklearn

def handler(event, context):
    xs = event.get("xs", [1.0, 2.0, 3.0, 4.0])
    ys = event.get("ys", [2.0, 4.0, 6.0, 8.0])
    model = sklearn.LinearRegression()
    model.fit(xs, ys)
    preds = model.predict([5.0, 6.0])
    print("slope:", model.slope)
    return {"predictions": preds}
`
		return assemble(d, handler, []LibSpec{joblib, sklearn}, []appspec.TestCase{
			{Name: "linear", Event: map[string]any{
				"xs": []any{1.0, 2.0, 3.0, 4.0}, "ys": []any{2.0, 4.0, 6.0, 8.0}}},
		})
	}
	return d
}

func appSkimage() *AppDef {
	d := &AppDef{
		Name: "skimage", Source: "FaaSLight",
		SizeMB: 155.37, ImportS: 1.87, ExecS: 0.10, E2ES: 2.76,
		MemoryMB: 195, RepModule: "skimage", RepAttrs: 18,
	}
	d.build = func() *appspec.App {
		ski := makeLib("skimage", nil,
			[]string{"ImageArr", "imread", "sobel", "rescale", "img_sum"},
			skimageCore, 18, 2, 1870, 160, 793, 82)
		handler := `
import skimage

def handler(event, context):
    path = event.get("path", "image.png")
    img = skimage.imread(path)
    edges = skimage.sobel(img)
    scaled = skimage.rescale(edges, 2)
    total = skimage.img_sum(scaled)
    compute(60)
    print("edge sum:", total)
    return {"sum": total, "width": scaled.width}
`
		return assemble(d, handler, []LibSpec{ski}, []appspec.TestCase{
			{Name: "img", Event: map[string]any{"path": "image.png"}},
		})
	}
	return d
}

func appTensorflow() *AppDef {
	d := &AppDef{
		Name: "tensorflow", Source: "FaaSLight",
		SizeMB: 586.13, ImportS: 4.53, ExecS: 0.04, E2ES: 5.33,
		MemoryMB: 400, RepModule: "tensorflow", RepAttrs: 355,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(130, 25, 56, 4, 30)
		tf := makeLib("tensorflow", []string{"numpy"},
			[]string{"TFTensor", "constant", "reduce_sum", "tf_matmul", "nn_softmax"},
			tensorflowCore, 355, 30, 4400, 330, 650, 32)
		handler := `
import numpy
import tensorflow

def handler(event, context):
    data = event.get("data", [1.0, 2.0, 3.0])
    t = tensorflow.constant(data)
    total = tensorflow.reduce_sum(t)
    sm = tensorflow.nn_softmax(t)
    arr = numpy.array(sm.data)
    compute(30)
    print("sum:", total)
    return {"sum": total, "mean": numpy.mean(arr)}
`
		return assemble(d, handler, []LibSpec{numpy, tf}, []appspec.TestCase{
			{Name: "vec", Event: map[string]any{"data": []any{1.0, 2.0, 3.0}}},
			{Name: "vec2", Event: map[string]any{"data": []any{4.0, 5.0}}},
		})
	}
	return d
}

func appWine() *AppDef {
	d := &AppDef{
		Name: "wine", Source: "FaaSLight",
		SizeMB: 271.01, ImportS: 1.96, ExecS: 0.29, E2ES: 2.81,
		MemoryMB: 185, RepModule: "numpy", RepAttrs: 537,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(330, 35, 33, 2, 470)
		pandas := pandasLib(660, 45, 100, 9, 10)
		joblib := joblibLib(80, 10, 6, 0.5)
		sklearn := sklearnLib(450, 35, 70, 6)
		boto := boto3Lib(440, 25, 60, 4)
		handler := `
import numpy
import pandas
import sklearn
import boto3

s3 = boto3.client("s3")

def handler(event, context):
    obj = s3.get_object("datasets", event.get("key", "wine.csv"))
    alcohol = event.get("alcohol", [12.0, 13.0, 14.0])
    quality = event.get("quality", [5.0, 6.0, 7.0])
    df = pandas.DataFrame({"alcohol": alcohol, "quality": quality})
    model = sklearn.LinearRegression()
    model.fit(df.columns["alcohol"], df.columns["quality"])
    preds = model.predict([15.0])
    arr = numpy.array(preds)
    m = numpy.mean(arr)
    sd = numpy.std(numpy.array(alcohol))
    compute(250)
    print("predicted quality:", m)
    return {"prediction": m, "std": sd}
`
		return assemble(d, handler, []LibSpec{numpy, pandas, joblib, sklearn, boto},
			[]appspec.TestCase{
				{Name: "wine", Event: map[string]any{
					"alcohol": []any{12.0, 13.0, 14.0}, "quality": []any{5.0, 6.0, 7.0}}},
			})
	}
	return d
}

// ---- RainbowCake suite -----------------------------------------------------

func appDNAVisualization() *AppDef {
	d := &AppDef{
		Name: "dna-visualization", Source: "RainbowCake",
		SizeMB: 57.01, ImportS: 0.18, ExecS: 0.02, E2ES: 0.72,
		MemoryMB: 95, RepModule: "numpy", RepAttrs: 537,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(120, 45, 50, 20, 25)
		squiggle := makeLib("squiggle", []string{"numpy"},
			[]string{"transform", "gc_content"}, squiggleCore, 30, 4, 60, 15, 15, 5)
		handler := `
import squiggle

def handler(event, context):
    dna = event.get("dna", "ATGCATGC")
    if event.get("mode", "basic") == "advanced":
        attr_name = "pad_" + "0000"
        rare = getattr(squiggle, attr_name)
        compute(15)
        return {"advanced": rare(dna)}
    xs, ys = squiggle.transform(dna)
    gc = squiggle.gc_content(dna)
    print("points:", len(xs.data))
    return {"gc": gc, "n": len(xs.data)}
`
		return assemble(d, handler, []LibSpec{numpy, squiggle}, []appspec.TestCase{
			{Name: "short", Event: map[string]any{"dna": "ATGCATGC"}},
			{Name: "long", Event: map[string]any{"dna": "GGGCCCAAATTTGGGCCC"}},
		})
	}
	return d
}

func appFFmpeg() *AppDef {
	d := &AppDef{
		Name: "ffmpeg", Source: "RainbowCake",
		SizeMB: 297.00, ImportS: 0.06, ExecS: 2.50, E2ES: 3.07,
		MemoryMB: 68, RepModule: "ffmpeg", RepAttrs: 46,
	}
	d.build = func() *appspec.App {
		ff := makeLib("ffmpeg", nil, []string{"probe", "run", "input_file"},
			ffmpegCore, 46, 6, 60, 33, 2, 0.7)
		handler := `
import ffmpeg

def handler(event, context):
    path = event.get("path", "video.mp4")
    meta = ffmpeg.probe(path)
    result = ffmpeg.run(["-i", path, "-vcodec", "h264", "out.mp4"])
    compute(50)
    print("transcoded:", meta["format"])
    return {"ok": result["ok"], "duration": meta["duration"]}
`
		return assemble(d, handler, []LibSpec{ff}, []appspec.TestCase{
			{Name: "mp4", Event: map[string]any{"path": "video.mp4"}},
		})
	}
	return d
}

func appIgraph() *AppDef {
	d := &AppDef{
		Name: "igraph", Source: "RainbowCake",
		SizeMB: 40.00, ImportS: 0.09, ExecS: 0.01, E2ES: 0.59,
		MemoryMB: 60, RepModule: "igraph", RepAttrs: 185,
	}
	d.build = func() *appspec.App {
		ig := makeLib("igraph", nil, []string{"Graph"}, igraphCore, 185, 14, 90, 25, 20, 4.8)
		handler := `
import igraph

def handler(event, context):
    n = event.get("nodes", 5)
    g = igraph.Graph()
    g.add_vertices(n)
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1))
    g.add_edges(edges)
    degrees = g.degree()
    print("degrees:", degrees)
    return {"max_degree": max(degrees)}
`
		return assemble(d, handler, []LibSpec{ig}, []appspec.TestCase{
			{Name: "path5", Event: map[string]any{"nodes": 5}},
			{Name: "path3", Event: map[string]any{"nodes": 3}},
		})
	}
	return d
}

func appMarkdown() *AppDef {
	d := &AppDef{
		Name: "markdown", Source: "RainbowCake",
		SizeMB: 32.21, ImportS: 0.04, ExecS: 0.03, E2ES: 0.54,
		MemoryMB: 48, RepModule: "markdown", RepAttrs: 28,
	}
	d.build = func() *appspec.App {
		md := makeLib("markdown", nil, []string{"markdown"}, markdownCore, 28, 4, 40, 13, 6.5, 2.4)
		handler := `
import markdown

def handler(event, context):
    text = event.get("text", "# Title\nhello world\n- item")
    html = markdown.markdown(text)
    compute(25)
    print(html)
    return {"html": html}
`
		return assemble(d, handler, []LibSpec{md}, []appspec.TestCase{
			{Name: "doc", Event: map[string]any{"text": "# Report\nbody text\n- first\n- second"}},
		})
	}
	return d
}

func appResnet() *AppDef {
	d := &AppDef{
		Name: "resnet", Source: "RainbowCake",
		SizeMB: 742.56, ImportS: 6.30, ExecS: 5.30, E2ES: 11.71,
		MemoryMB: 340, RepModule: "torch", RepAttrs: 1414,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(130, 25, 66, 6, 20)
		torch := torchLib(6000, 260, 5700, 75, 60)
		pil := makeLib("PIL", nil, []string{"Img", "image_open"}, pilCore, 68, 8, 170, 20, 30, 4)
		handler := `
import numpy
import torch
from PIL import image_open

model = torch.nn.Sequential([torch.nn.Linear(8, 1), torch.nn.ReLU()])

def handler(event, context):
    path = event.get("path", "cat.jpg")
    img = image_open(path)
    pixels = []
    for p in img.to_list():
        pixels.append(p / 255.0)
    t = torch.tensor(pixels)
    model.layers[0].weights = torch.tensor([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
    model.layers[0].bias = torch.tensor([0.5])
    out = model(t)
    arr = numpy.array(out.data)
    compute(5250)
    print("score:", out.data[0])
    return {"score": numpy.mean(arr)}
`
		return assemble(d, handler, []LibSpec{numpy, torch, pil}, []appspec.TestCase{
			{Name: "cat", Event: map[string]any{"path": "cat.jpg"}},
		})
	}
	return d
}

func appTextblob() *AppDef {
	d := &AppDef{
		Name: "textblob", Source: "RainbowCake",
		SizeMB: 104.00, ImportS: 0.42, ExecS: 0.38, E2ES: 1.28,
		MemoryMB: 105, RepModule: "nltk", RepAttrs: 560,
	}
	d.build = func() *appspec.App {
		nltk := makeLib("nltk", nil, []string{"word_tokenize", "pos_tag"},
			nltkCore, 560, 4, 300, 45, 110, 10)
		tb := makeLib("textblob", []string{"nltk"}, []string{"TextBlob"},
			textblobCore, 42, 6, 120, 25, 16, 2.6)
		handler := `
from textblob import TextBlob

def handler(event, context):
    text = event.get("text", "what a great happy day")
    blob = TextBlob(text)
    s = blob.sentiment()
    tags = blob.tags()
    compute(350)
    print("sentiment:", s)
    return {"sentiment": s, "tags": len(tags)}
`
		return assemble(d, handler, []LibSpec{nltk, tb}, []appspec.TestCase{
			{Name: "pos", Event: map[string]any{"text": "what a great happy day"}},
			{Name: "neg", Event: map[string]any{"text": "a sad and terrible outcome"}},
		})
	}
	return d
}

// ---- New applications (PyPI) -----------------------------------------------

func appChdbOlap() *AppDef {
	d := &AppDef{
		Name: "chdb-olap", Source: "PyPI",
		SizeMB: 293.64, ImportS: 1.01, ExecS: 0.08, E2ES: 1.77,
		MemoryMB: 160, RepModule: "chdb", RepAttrs: 32,
	}
	d.build = func() *appspec.App {
		ch := makeLib("chdb", nil, []string{"query"}, chdbCore, 32, 14, 1010, 125, 354, 24)
		handler := `
import chdb

def handler(event, context):
    sql = event.get("sql", "select id, sq from t limit 4")
    rows = chdb.query(sql)
    total = 0
    for row in rows:
        total += row[1]
    print("rows:", len(rows), "sum:", total)
    return {"rows": len(rows), "sum": total}
`
		return assemble(d, handler, []LibSpec{ch}, []appspec.TestCase{
			{Name: "limit4", Event: map[string]any{"sql": "select id, sq from t limit 4"}},
			{Name: "limit2", Event: map[string]any{"sql": "select id, sq from t limit 2"}},
		})
	}
	return d
}

func appEpubPdf() *AppDef {
	d := &AppDef{
		Name: "epub-pdf", Source: "PyPI",
		SizeMB: 143.68, ImportS: 0.62, ExecS: 1.43, E2ES: 2.54,
		MemoryMB: 120, RepModule: "pptx", RepAttrs: 38,
	}
	d.build = func() *appspec.App {
		rl := makeLib("reportlab", nil, []string{"Canvas"}, reportlabCore, 72, 8, 150, 22, 40, 3)
		px := makeLib("pptx", nil, []string{"Presentation"}, pptxCore, 38, 14, 130, 20, 38, 3)
		dx := makeLib("docx", nil, []string{"Document"}, docxCore, 44, 8, 110, 18, 35, 3)
		boto := boto3Lib(230, 25, 42, 3)
		handler := `
import boto3
from reportlab import Canvas
from pptx import Presentation
from docx import Document

s3 = boto3.client("s3")

def handler(event, context):
    title = event.get("title", "Quarterly Report")
    doc = Document()
    doc.add_paragraph(title)
    doc.add_paragraph("summary")
    pres = Presentation()
    pres.add_slide(title)
    canvas = Canvas("out.pdf")
    canvas.draw_string(10, 10, title)
    pdf = canvas.save()
    saved_pptx = pres.save("out.pptx")
    saved_docx = doc.save("out.docx")
    s3.put_object("documents", "out.pdf", pdf)
    compute(1100)
    print("generated:", pdf)
    return {"pdf": pdf, "pptx": saved_pptx, "docx": saved_docx}
`
		return assemble(d, handler, []LibSpec{rl, px, dx, boto}, []appspec.TestCase{
			{Name: "report", Event: map[string]any{"title": "Quarterly Report"}},
		})
	}
	return d
}

func appJsym() *AppDef {
	d := &AppDef{
		Name: "jsym", Source: "PyPI",
		SizeMB: 83.01, ImportS: 0.56, ExecS: 0.31, E2ES: 1.36,
		MemoryMB: 90, RepModule: "sympy", RepAttrs: 938,
	}
	d.build = func() *appspec.App {
		sym := makeLib("sympy", nil,
			[]string{"Symbol", "expand_square", "diff_poly", "solve_linear"},
			sympyCore, 938, 16, 560, 55, 112, 7.2)
		handler := `
import sympy

def handler(event, context):
    name = event.get("symbol", "x")
    x = sympy.Symbol(name)
    expanded = sympy.expand_square(x)
    deriv = sympy.diff_poly(event.get("coeffs", [1.0, 2.0, 3.0]))
    root = sympy.solve_linear(2.0, -8.0)
    compute(290)
    print("expanded:", expanded)
    return {"expanded": expanded, "derivative": deriv, "root": root}
`
		return assemble(d, handler, []LibSpec{sym}, []appspec.TestCase{
			{Name: "x", Event: map[string]any{"symbol": "x", "coeffs": []any{1.0, 2.0, 3.0}}},
			{Name: "y", Event: map[string]any{"symbol": "y", "coeffs": []any{2.0, 0.0, 4.0}}},
		})
	}
	return d
}

func appPandas() *AppDef {
	d := &AppDef{
		Name: "pandas", Source: "PyPI",
		SizeMB: 114.27, ImportS: 0.67, ExecS: 0.01, E2ES: 1.19,
		MemoryMB: 115, RepModule: "pandas", RepAttrs: 141,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(140, 25, 15, 2, 60)
		pandas := pandasLib(530, 55, 85, 7, 10)
		handler := `
import numpy
import pandas

def handler(event, context):
    prices = event.get("prices", [10.0, 11.0, 12.0])
    volumes = event.get("volumes", [100.0, 90.0, 110.0])
    df = pandas.DataFrame({"price": prices, "volume": volumes})
    summary = df.describe()
    arr = numpy.array(prices)
    print("mean price:", summary["price"])
    return {"summary": summary, "std": numpy.std(arr)}
`
		return assemble(d, handler, []LibSpec{numpy, pandas}, []appspec.TestCase{
			{Name: "prices", Event: map[string]any{
				"prices": []any{10.0, 11.0, 12.0}, "volumes": []any{100.0, 90.0, 110.0}}},
		})
	}
	return d
}

func appQiskitNature() *AppDef {
	d := &AppDef{
		Name: "qiskit-nature", Source: "PyPI",
		SizeMB: 281.15, ImportS: 1.96, ExecS: 0.49, E2ES: 3.05,
		MemoryMB: 170, RepModule: "qiskit", RepAttrs: 49,
	}
	d.build = func() *appspec.App {
		qk := makeLib("qiskit", nil, []string{"QuantumCircuit", "simulate"},
			qiskitCore, 49, 12, 1200, 85, 450, 14)
		qn := makeLib("qiskit_nature", []string{"qiskit"}, []string{"ground_state_energy"},
			qiskitNatureCore, 55, 8, 760, 50, 138, 6)
		handler := `
import qiskit_nature

def handler(event, context):
    molecule = event.get("molecule", "H2")
    energy = qiskit_nature.ground_state_energy(molecule)
    compute(330)
    print("energy:", energy)
    return {"molecule": molecule, "energy": energy}
`
		return assemble(d, handler, []LibSpec{qk, qn}, []appspec.TestCase{
			{Name: "h2", Event: map[string]any{"molecule": "H2"}},
			{Name: "lih", Event: map[string]any{"molecule": "LiH"}},
		})
	}
	return d
}

func appShapelyNumpy() *AppDef {
	d := &AppDef{
		Name: "shapely-numpy", Source: "PyPI",
		SizeMB: 58.42, ImportS: 0.20, ExecS: 0.01, E2ES: 0.71,
		MemoryMB: 72, RepModule: "shapely", RepAttrs: 176,
	}
	d.build = func() *appspec.App {
		numpy := numpyLib(90, 17, 12, 2, 30)
		shp := makeLib("shapely", []string{"numpy"}, []string{"Point", "Polygon"},
			shapelyCore, 176, 8, 110, 20, 28, 3.8)
		handler := `
import numpy
import shapely

def handler(event, context):
    coords = event.get("coords", [[0.0, 0.0], [4.0, 0.0], [4.0, 3.0], [0.0, 3.0]])
    poly = shapely.Polygon(coords)
    area = poly.area()
    a = shapely.Point(0.0, 0.0)
    b = shapely.Point(3.0, 4.0)
    dist = a.distance(b)
    arr = numpy.array([area, dist])
    print("area:", area, "distance:", dist)
    return {"area": area, "distance": dist, "mean": numpy.mean(arr)}
`
		return assemble(d, handler, []LibSpec{numpy, shp}, []appspec.TestCase{
			{Name: "rect", Event: map[string]any{}},
		})
	}
	return d
}

func appSpacy() *AppDef {
	d := &AppDef{
		Name: "spacy", Source: "PyPI",
		SizeMB: 202.00, ImportS: 2.06, ExecS: 0.02, E2ES: 2.60,
		MemoryMB: 210, RepModule: "spacy", RepAttrs: 60,
	}
	d.build = func() *appspec.App {
		sp := makeLib("spacy", nil, []string{"Doc", "Language", "load"},
			spacyCore, 60, 10, 1250, 90, 850, 45)
		boto := boto3Lib(210, 25, 77, 7)
		handler := `
import boto3
import spacy

nlp = spacy.load("en_core_web_sm")
s3 = boto3.client("s3")

def handler(event, context):
    text = event.get("text", "Apple opened an office in Paris")
    if event.get("mode", "basic") == "advanced":
        attr_name = "pad_" + "0000"
        rare = getattr(spacy, attr_name)
        compute(10)
        return {"advanced": rare(text)}
    doc = nlp(text)
    ents = doc.ents()
    s3.put_object("nlp-results", "ents.json", str(ents))
    print("entities:", ents)
    return {"entities": ents, "tokens": len(doc.tokens)}
`
		return assemble(d, handler, []LibSpec{sp, boto}, []appspec.TestCase{
			{Name: "apple", Event: map[string]any{"text": "Apple opened an office in Paris"}},
			{Name: "acme", Event: map[string]any{"text": "Acme hired Bob in Berlin yesterday"}},
		})
	}
	return d
}

// ---- Shared library builders ------------------------------------------------

func numpyLib(totalMS, totalMB, removableMS, removableMB float64, kept int) LibSpec {
	return makeLib("numpy", nil,
		[]string{"ndarray", "array", "zeros", "dot", "mean", "std", "argmax"},
		numpyCore, 537, kept, totalMS, totalMB, removableMS, removableMB)
}

func torchLib(totalMS, totalMB, removableMS, removableMB float64, kept int) LibSpec {
	l := makeLib("torch", nil,
		[]string{"Tensor", "tensor", "add", "matmul", "relu", "softmax"},
		torchCore, 1413, kept, totalMS, totalMB, removableMS, removableMB)
	l.ExtraSubmodules = map[string]string{"nn": torchNNSource}
	l.ExtraInitLines = []string{"from torch import nn"}
	return l
}

func boto3Lib(totalMS, totalMB, removableMS, removableMB float64) LibSpec {
	return makeLib("boto3", nil, []string{"client", "Client", "Session"},
		boto3Core, 120, 10, totalMS, totalMB, removableMS, removableMB)
}

func pandasLib(totalMS, totalMB, removableMS, removableMB float64, kept int) LibSpec {
	return makeLib("pandas", []string{"numpy"}, []string{"DataFrame", "merge_frames"},
		pandasCore, 141, kept, totalMS, totalMB, removableMS, removableMB)
}

func sklearnLib(totalMS, totalMB, removableMS, removableMB float64) LibSpec {
	return makeLib("sklearn", []string{"joblib"},
		[]string{"LinearRegression", "scale", "train_test_split"},
		sklearnCore, 150, 18, totalMS, totalMB, removableMS, removableMB)
}

func joblibLib(totalMS, totalMB, removableMS, removableMB float64) LibSpec {
	return makeLib("joblib", nil, []string{"dump", "load_obj", "hash_obj"},
		joblibCore, 50, 8, totalMS, totalMB, removableMS, removableMB)
}
