// Package baselines implements the two application-level debloaters the
// paper compares against in Table 2:
//
//   - FaaSLight (Liu et al., TOSEM'23): static reachability analysis at
//     statement granularity. It keeps every attribute the application's
//     call graph can reach, plus the transitive intra-module dependencies
//     of kept code, and removes the rest. As a safeguard it retains the
//     original code for on-demand retrieval, which costs extra memory and
//     a per-cold-start overhead (§3.1: "FaaSLight additionally retrieves
//     the original code as a safeguard, yielding additional overheads").
//   - Vulture: a dead-code detector that flags symbols never referenced
//     anywhere in the codebase. It is maximally conservative — a single
//     textual mention anywhere keeps an attribute — which is why its
//     reported improvements are small.
//
// Both operate purely statically (no oracle executions), which makes them
// fast but unable to remove attributes that are referenced yet dynamically
// dead — the gap λ-trim's DD closes.
package baselines

import (
	"errors"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/appspec"
	"repro/internal/callgraph"
	"repro/internal/debloat"
	"repro/internal/profiler"
	"repro/internal/pylang"
	"repro/internal/pyparser"
	"repro/internal/pyruntime"
)

// Result describes a baseline debloating outcome.
type Result struct {
	App      *appspec.App
	Original *appspec.App
	// RemovedPerModule maps module -> attributes removed.
	RemovedPerModule map[string][]string
	// SafeguardOverheadMS is added to every cold start (FaaSLight only).
	SafeguardOverheadMS float64
	// SafeguardMemoryMB is retained for original-code retrieval
	// (FaaSLight only).
	SafeguardMemoryMB float64
}

// TotalRemoved sums removed attributes.
func (r *Result) TotalRemoved() int {
	n := 0
	for _, rs := range r.RemovedPerModule {
		n += len(rs)
	}
	return n
}

// FaaSLightSafeguard models the safeguard's cost: loading the retained
// original-code index on every cold start.
const (
	FaaSLightSafeguardMS = 35.0
	// FaaSLightSafeguardMemFrac is the fraction of removed footprint that
	// the safeguard's retained code map keeps resident.
	FaaSLightSafeguardMemFrac = 0.15
)

// FaaSLight runs the reachability-based debloater over the app's top-K
// profiled modules (same candidate selection as λ-trim so the comparison
// isolates the mechanism, not the targeting).
func FaaSLight(app *appspec.App, k int) (*Result, error) {
	report, err := analyzer.Analyze(app.Image, app.Entry, app.Handler)
	if err != nil {
		return nil, err
	}
	prof, err := profiler.Run(app.Image, app.Entry, profiler.Options{Scoring: profiler.Combined})
	if err != nil {
		return nil, err
	}
	optimized := app.Clone()
	res := &Result{
		App:                 optimized,
		Original:            app,
		RemovedPerModule:    make(map[string][]string),
		SafeguardOverheadMS: FaaSLightSafeguardMS,
	}

	// FaaSLight's reachability is whole-program: attributes a *library*
	// imports from another module are reachable too. Union the app's
	// protected sets with per-file analyses of every library module.
	protected := make(map[string]map[string]bool)
	union := func(module, attr string) {
		set, ok := protected[module]
		if !ok {
			set = make(map[string]bool)
			protected[module] = set
		}
		set[attr] = true
	}
	for m, attrs := range report.Protected {
		for a := range attrs {
			union(m, a)
		}
	}
	for _, path := range app.Image.List() {
		if !strings.HasPrefix(path, pyruntime.SitePackages) || !strings.HasSuffix(path, ".py") {
			continue
		}
		src, err := app.Image.Read(path)
		if err != nil {
			continue
		}
		ast, err := pyparser.Parse(pathToModule(path), src)
		if err != nil {
			continue
		}
		libGraph := callgraph.Analyze(ast, "")
		for m, attrs := range libGraph.Accessed {
			for a := range attrs {
				union(m, a)
			}
		}
	}

	for _, mp := range prof.TopK(k) {
		removed, e := reachabilityTrim(optimized, mp.Name, protected[mp.Name])
		if e != nil {
			continue // modules that cannot be analyzed are left untouched
		}
		if len(removed) > 0 {
			res.RemovedPerModule[mp.Name] = removed
		}
	}
	// Safeguard: the original image is retained alongside; model its
	// resident overhead as a fraction of what was trimmed.
	res.SafeguardMemoryMB = safeguardMemory(app, optimized)
	optimized.SetupDelayMS += 0 // cold path unchanged; init overhead modeled by caller
	return res, nil
}

// reachabilityTrim removes, at statement granularity, every attribute of
// module that is (a) not protected by the app's call graph and (b) not
// referenced by any kept statement of the module itself. This is a
// fixpoint: removing an attribute may orphan others, but conservatism goes
// the other way — anything referenced stays.
func reachabilityTrim(app *appspec.App, module string, protected map[string]bool) ([]string, error) {
	path, ok := moduleFile(app, module)
	if !ok {
		return nil, errNotLibrary
	}
	src, err := app.Image.Read(path)
	if err != nil {
		return nil, err
	}
	ast, err := pyparser.Parse(module, src)
	if err != nil {
		return nil, err
	}

	// Seed: protected attributes and names referenced by non-binding
	// statements (module-level expressions, magic assignments).
	keep := make(map[string]bool, len(protected))
	for a := range protected {
		keep[a] = true
	}
	binders := make(map[string][]pylang.Stmt)
	for _, s := range ast.Body {
		names := boundNames(s)
		if len(names) == 0 || bindsMagic(names) {
			for _, ref := range referencedNames(s) {
				keep[ref] = true
			}
			continue
		}
		for _, n := range names {
			binders[n] = append(binders[n], s)
		}
	}

	// Fixpoint: a kept attribute keeps everything its binding statements
	// reference.
	for changed := true; changed; {
		changed = false
		for name := range keep {
			for _, s := range binders[name] {
				for _, ref := range referencedNames(s) {
					if _, binds := binders[ref]; binds && !keep[ref] {
						keep[ref] = true
						changed = true
					}
				}
			}
		}
	}

	var removed []string
	var kept []pylang.Stmt
	for _, s := range ast.Body {
		names := boundNames(s)
		if len(names) == 0 || bindsMagic(names) {
			kept = append(kept, s)
			continue
		}
		// Statement granularity: keep the whole statement if any bound
		// name is kept (the coarseness λ-trim's §6.1 argues against).
		anyKept := false
		for _, n := range names {
			if keep[n] {
				anyKept = true
				break
			}
		}
		if anyKept {
			kept = append(kept, s)
			continue
		}
		removed = append(removed, names...)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	app.Image.Write(path, pylang.PrintStmts(kept))
	return removed, nil
}

// Vulture removes only attributes whose names appear nowhere else in the
// entire image (application or any library). One mention anywhere keeps
// them.
func Vulture(app *appspec.App) (*Result, error) {
	optimized := app.Clone()
	res := &Result{
		App:              optimized,
		Original:         app,
		RemovedPerModule: make(map[string][]string),
	}

	// Build the set of all referenced names across every file.
	referenced := make(map[string]bool)
	for _, path := range optimized.Image.List() {
		src, err := optimized.Image.Read(path)
		if err != nil {
			continue
		}
		ast, err := pyparser.Parse(path, src)
		if err != nil {
			continue
		}
		for _, s := range ast.Body {
			binds := map[string]bool{}
			for _, n := range boundNames(s) {
				binds[n] = true
			}
			for _, ref := range referencedNames(s) {
				referenced[ref] = true
			}
			// A def's own body references count (Vulture scans text).
			_ = binds
		}
	}

	for _, path := range optimized.Image.List() {
		if !strings.HasPrefix(path, pyruntime.SitePackages) || !strings.HasSuffix(path, ".py") {
			continue
		}
		src, _ := optimized.Image.Read(path)
		ast, err := pyparser.Parse(path, src)
		if err != nil {
			continue
		}
		var kept []pylang.Stmt
		var removed []string
		for _, s := range ast.Body {
			names := boundNames(s)
			if len(names) == 0 || bindsMagic(names) {
				kept = append(kept, s)
				continue
			}
			allDead := true
			for _, n := range names {
				if referenced[n] || strings.HasPrefix(n, "__") {
					allDead = false
					break
				}
			}
			if allDead {
				removed = append(removed, names...)
			} else {
				kept = append(kept, s)
			}
		}
		if len(removed) > 0 {
			module := pathToModule(path)
			res.RemovedPerModule[module] = removed
			optimized.Image.Write(path, pylang.PrintStmts(kept))
		}
	}
	return res, nil
}

var errNotLibrary = errors.New("baselines: not a site-packages module")

func bindsMagic(names []string) bool {
	for _, n := range names {
		if pyruntime.MagicAttrs[n] {
			return true
		}
	}
	return false
}

// referencedNames returns every identifier read anywhere inside stmt,
// including in nested defs/classes (conservative textual reachability).
func referencedNames(s pylang.Stmt) []string {
	var out []string
	pylang.Walk(s, func(n pylang.Node) bool {
		switch v := n.(type) {
		case *pylang.NameExpr:
			out = append(out, v.Name)
		case *pylang.AttrExpr:
			out = append(out, v.Attr)
		case *pylang.FromImportStmt:
			for _, a := range v.Names {
				out = append(out, a.Name)
			}
		}
		return true
	})
	return out
}

// boundNames mirrors the debloater's notion of which attributes a
// statement binds.
func boundNames(s pylang.Stmt) []string {
	switch v := s.(type) {
	case *pylang.DefStmt:
		return []string{v.Name}
	case *pylang.ClassStmt:
		return []string{v.Name}
	case *pylang.AssignStmt:
		var names []string
		for _, t := range v.Targets {
			if n, ok := t.(*pylang.NameExpr); ok {
				names = append(names, n.Name)
			}
		}
		return names
	case *pylang.ImportStmt:
		names := make([]string, 0, len(v.Names))
		for _, a := range v.Names {
			names = append(names, a.Bound())
		}
		return names
	case *pylang.FromImportStmt:
		if v.Star {
			return nil
		}
		names := make([]string, 0, len(v.Names))
		for _, a := range v.Names {
			if a.AsName != "" {
				names = append(names, a.AsName)
			} else {
				names = append(names, a.Name)
			}
		}
		return names
	}
	return nil
}

func moduleFile(app *appspec.App, name string) (string, bool) {
	rel := strings.ReplaceAll(name, ".", "/")
	for _, candidate := range []string{
		pyruntime.SitePackages + rel + ".py",
		pyruntime.SitePackages + rel + "/__init__.py",
	} {
		if app.Image.Exists(candidate) {
			return candidate, true
		}
	}
	return "", false
}

func pathToModule(path string) string {
	p := strings.TrimPrefix(path, pyruntime.SitePackages)
	p = strings.TrimSuffix(p, "/__init__.py")
	p = strings.TrimSuffix(p, ".py")
	return strings.ReplaceAll(p, "/", ".")
}

// safeguardMemory estimates the resident overhead of FaaSLight's original-
// code retrieval map from the image-size delta.
func safeguardMemory(original, optimized *appspec.App) float64 {
	delta := float64(original.Image.TotalSize()-optimized.Image.TotalSize()) / (1 << 20)
	if delta < 0 {
		delta = 0
	}
	return delta * FaaSLightSafeguardMemFrac
}

// VerifyBehaviour re-runs the app's oracle against the optimized image and
// reports whether behaviour is preserved. Static baselines can break apps
// (no oracle in the loop); Table 2's comparison assumes the reported
// configurations worked.
func VerifyBehaviour(res *Result) bool {
	return debloat.VerifyApp(res.App) == nil
}
