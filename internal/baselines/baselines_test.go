package baselines

import (
	"testing"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/pyruntime"
	"repro/internal/vfs"
)

// smallApp builds an app where the expected outcomes of each baseline are
// hand-checkable: `used` is called, `dead_ref` is referenced-but-dead,
// `never` appears nowhere else.
func smallApp() *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    print(lib.used())
    return "ok"
`)
	fs.Write("site-packages/lib/__init__.py", `
load_native(40, 10)

def used():
    return 42

def dead_ref():
    return helper()

def helper():
    return 1

def never():
    return 0
`)
	return &appspec.App{
		Name: "small", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{}}},
	}
}

func TestFaaSLightRemovesUnreachable(t *testing.T) {
	res, err := FaaSLight(smallApp(), 20)
	if err != nil {
		t.Fatal(err)
	}
	removed := map[string]bool{}
	for _, names := range res.RemovedPerModule {
		for _, n := range names {
			removed[n] = true
		}
	}
	if removed["used"] {
		t.Error("FaaSLight removed a reachable attribute")
	}
	if !removed["never"] {
		t.Errorf("FaaSLight kept an unreachable attribute; removed=%v", removed)
	}
	if !VerifyBehaviour(res) {
		t.Error("FaaSLight output broke the app")
	}
	if res.SafeguardOverheadMS <= 0 {
		t.Error("FaaSLight must charge its safeguard overhead")
	}
}

func TestVultureUltraConservative(t *testing.T) {
	res, err := Vulture(smallApp())
	if err != nil {
		t.Fatal(err)
	}
	removed := map[string]bool{}
	for _, names := range res.RemovedPerModule {
		for _, n := range names {
			removed[n] = true
		}
	}
	// helper is referenced (inside dead_ref) so Vulture keeps it even
	// though it is dynamically dead — the tool's defining weakness.
	if removed["helper"] {
		t.Error("Vulture removed a textually-referenced attribute")
	}
	if removed["used"] {
		t.Error("Vulture removed a used attribute")
	}
	if !removed["never"] {
		t.Errorf("Vulture kept a never-referenced attribute; removed=%v", removed)
	}
	if !VerifyBehaviour(res) {
		t.Error("Vulture output broke the app")
	}
}

// TestOrderingOnCorpusApp checks the Table 2 ordering on a real corpus app:
// λ-trim removes the most, then FaaSLight, then Vulture.
func TestOrderingOnCorpusApp(t *testing.T) {
	app := appcorpus.MustBuild("lightgbm")

	trim, err := debloat.Run(app.Clone(), debloat.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := FaaSLight(app.Clone(), 20)
	if err != nil {
		t.Fatal(err)
	}
	vu, err := Vulture(app.Clone())
	if err != nil {
		t.Fatal(err)
	}

	if !(trim.TotalRemoved() >= fl.TotalRemoved()) {
		t.Errorf("λ-trim removed %d < FaaSLight %d", trim.TotalRemoved(), fl.TotalRemoved())
	}
	if !(fl.TotalRemoved() >= vu.TotalRemoved()) {
		t.Errorf("FaaSLight removed %d < Vulture %d", fl.TotalRemoved(), vu.TotalRemoved())
	}
	if vu.TotalRemoved() < 0 {
		t.Error("vulture removal negative?")
	}

	// Both baselines must preserve behaviour on this app.
	if !VerifyBehaviour(fl) {
		t.Error("FaaSLight broke lightgbm")
	}
	if !VerifyBehaviour(vu) {
		t.Error("Vulture broke lightgbm")
	}
}

// TestFaaSLightKeepsIntraModuleDeps: a kept attribute's dependencies must
// survive the fixpoint.
func TestFaaSLightKeepsIntraModuleDeps(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    return lib.entry()
`)
	fs.Write("site-packages/lib/__init__.py", `
def entry():
    return _impl()

def _impl():
    return _deeper()

def _deeper():
    return 7
`)
	app := &appspec.App{Name: "deps", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{}}}}
	res, err := FaaSLight(app, 20)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := res.App.Image.Read("site-packages/lib/__init__.py")
	for _, needed := range []string{"entry", "_impl", "_deeper"} {
		if !contains(src, "def "+needed) {
			t.Errorf("fixpoint dropped %s:\n%s", needed, src)
		}
	}
	if !VerifyBehaviour(res) {
		t.Error("behaviour broken")
	}
}

func TestPathToModule(t *testing.T) {
	cases := map[string]string{
		pyruntime.SitePackages + "numpy/__init__.py":    "numpy",
		pyruntime.SitePackages + "torch/nn/__init__.py": "torch.nn",
		pyruntime.SitePackages + "requests.py":          "requests",
	}
	for path, want := range cases {
		if got := pathToModule(path); got != want {
			t.Errorf("pathToModule(%q) = %q, want %q", path, got, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
