package callgraph

import (
	"testing"

	"repro/internal/pyparser"
)

func analyze(t *testing.T, src, handler string) *Result {
	t.Helper()
	mod, err := pyparser.Parse("app", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(mod, handler)
}

func TestImportsCollected(t *testing.T) {
	r := analyze(t, `
import numpy
import torch.nn as nn
from pandas import DataFrame
`, "")
	want := []string{"numpy", "torch.nn", "pandas"}
	if len(r.Imports) != len(want) {
		t.Fatalf("imports = %v", r.Imports)
	}
	for i := range want {
		if r.Imports[i] != want[i] {
			t.Fatalf("imports = %v, want %v", r.Imports, want)
		}
	}
}

func TestDirectAttributeAccess(t *testing.T) {
	r := analyze(t, `
import numpy
x = numpy.array([1])
numpy.mean(x)
`, "")
	attrs := r.Accessed["numpy"]
	if !attrs["array"] || !attrs["mean"] {
		t.Errorf("numpy accessed = %v", r.AccessedList("numpy"))
	}
}

func TestFromImportAccess(t *testing.T) {
	r := analyze(t, `from torch.nn import Linear, MSELoss as Loss`, "")
	attrs := r.Accessed["torch.nn"]
	if !attrs["Linear"] || !attrs["MSELoss"] {
		t.Errorf("torch.nn accessed = %v", r.AccessedList("torch.nn"))
	}
}

func TestDottedImportAccessesSubmoduleChain(t *testing.T) {
	r := analyze(t, `import a.b.c`, "")
	if !r.Accessed["a"]["b"] || !r.Accessed["a.b"]["c"] {
		t.Errorf("accessed = %v", r.Accessed)
	}
}

func TestSubmoduleAttributeChain(t *testing.T) {
	// torch.nn.Linear must record both nn (on torch) and Linear (on
	// torch.nn) — the case the paper's running example relies on.
	r := analyze(t, `
import torch
model = torch.nn.Linear(2, 1)
`, "")
	if !r.Accessed["torch"]["nn"] {
		t.Error("nn not recorded on torch")
	}
	if !r.Accessed["torch.nn"]["Linear"] {
		t.Error("Linear not recorded on torch.nn")
	}
}

func TestAliasTracking(t *testing.T) {
	r := analyze(t, `
import numpy as np
alias = np
alias.zeros(3)
`, "")
	if !r.Accessed["numpy"]["zeros"] {
		t.Errorf("alias flow lost: %v", r.AccessedList("numpy"))
	}
}

func TestGetattrLiteral(t *testing.T) {
	r := analyze(t, `
import numpy
fn = getattr(numpy, "argmax")
`, "")
	if !r.Accessed["numpy"]["argmax"] {
		t.Error("getattr with literal should record access")
	}
}

func TestGetattrDynamicNotRecorded(t *testing.T) {
	r := analyze(t, `
import numpy
name = "arg" + "max"
fn = getattr(numpy, name)
`, "")
	if r.Accessed["numpy"]["argmax"] {
		t.Error("dynamic getattr must not be statically protected")
	}
}

func TestReachabilityFromHandler(t *testing.T) {
	r := analyze(t, `
import numpy

def used():
    return numpy.mean(numpy.array([1]))

def unused():
    return numpy.std(numpy.array([1]))

def handler(event, context):
    return used()
`, "handler")
	if !r.Reachable["handler"] || !r.Reachable["used"] {
		t.Errorf("reachable = %v", r.Reachable)
	}
	attrs := r.Accessed["numpy"]
	if !attrs["mean"] {
		t.Error("access in reachable function lost")
	}
	// Note: "unused" is never called, but its accesses must not poison
	// the protected set... unless conservatively included. Our analysis is
	// reachability-based, so std stays unprotected.
	if attrs["std"] {
		t.Error("access in unreachable function should not be recorded")
	}
}

func TestTransitiveReachability(t *testing.T) {
	r := analyze(t, `
import lib

def a():
    return b()

def b():
    return lib.deep()

def handler(event, context):
    return a()
`, "handler")
	if !r.Reachable["b"] {
		t.Errorf("transitive reachability failed: %v", r.Reachable)
	}
	if !r.Accessed["lib"]["deep"] {
		t.Error("access through call chain lost")
	}
}

func TestTopLevelCallsAreReachable(t *testing.T) {
	r := analyze(t, `
import lib

def setup():
    return lib.connect()

conn = setup()

def handler(event, context):
    return conn
`, "handler")
	if !r.Accessed["lib"]["connect"] {
		t.Error("initialization-time call not analyzed")
	}
}

func TestStarImportConservative(t *testing.T) {
	r := analyze(t, `from lib import *`, "")
	// Star imports record the import but cannot protect attributes.
	found := false
	for _, imp := range r.Imports {
		if imp == "lib" {
			found = true
		}
	}
	if !found {
		t.Error("star import module not recorded")
	}
	if len(r.Accessed["lib"]) != 0 {
		t.Errorf("star import should protect nothing, got %v", r.AccessedList("lib"))
	}
}

func TestFunctionsListed(t *testing.T) {
	r := analyze(t, `
def f():
    pass
def g():
    pass
`, "")
	if len(r.Functions) != 2 {
		t.Errorf("functions = %v", r.Functions)
	}
}

func TestAccessedListSorted(t *testing.T) {
	r := analyze(t, `
import m
m.zz()
m.aa()
m.mm()
`, "")
	list := r.AccessedList("m")
	if len(list) != 3 || list[0] != "aa" || list[2] != "zz" {
		t.Errorf("AccessedList = %v", list)
	}
}

func TestAccessInsideControlFlow(t *testing.T) {
	r := analyze(t, `
import lib

def handler(event, context):
    if event:
        lib.when_true()
    else:
        lib.when_false()
    for x in lib.items():
        lib.each(x)
    try:
        lib.risky()
    except ValueError:
        lib.recover()
    return None
`, "handler")
	for _, attr := range []string{"when_true", "when_false", "items", "each", "risky", "recover"} {
		if !r.Accessed["lib"][attr] {
			t.Errorf("missed access %s", attr)
		}
	}
}

func TestExpressionFormsCovered(t *testing.T) {
	// Accesses buried in every expression/statement form must be found.
	r := analyze(t, `
import lib

x = 0
while lib.cond(x):
    x += lib.step()

total = lib.base() + lib.extra() * 2
flag = not lib.neg()
choice = lib.yes() if lib.check() else lib.no()
pairs = {lib.key(): lib.val()}
items = [lib.item(), (lib.t1(), lib.t2())]
fn = lambda v: lib.inner(v)
sliced = lib.data()[1:lib.high()]
del pairs[lib.k2()]
assert lib.ok(), lib.msg()
chain = lib.a() < lib.b() < lib.c()
`, "")
	for _, attr := range []string{"cond", "step", "base", "extra", "neg",
		"yes", "check", "no", "key", "val", "item", "t1", "t2", "inner",
		"data", "high", "k2", "ok", "msg", "a", "b", "c"} {
		if !r.Accessed["lib"][attr] {
			t.Errorf("missed access %q", attr)
		}
	}
}

func TestClassBodiesAnalyzed(t *testing.T) {
	r := analyze(t, `
import lib

class Service(lib.BaseService):
    default = lib.make_default()
    def run(self):
        return lib.execute()
`, "")
	for _, attr := range []string{"BaseService", "make_default", "execute"} {
		if !r.Accessed["lib"][attr] {
			t.Errorf("missed access %q in class body", attr)
		}
	}
}

func TestRaiseAndDecoratorsAnalyzed(t *testing.T) {
	r := analyze(t, `
import lib

@lib.register
def f():
    raise lib.CustomError("x")

f()
`, "")
	if !r.Accessed["lib"]["register"] {
		t.Error("decorator access missed")
	}
	if !r.Accessed["lib"]["CustomError"] {
		t.Error("raise access missed")
	}
}

func TestCallsMapAndFunctions(t *testing.T) {
	r := analyze(t, `
def a():
    return b()

def b():
    return 1

a()
`, "")
	if !r.Calls["<toplevel>"]["a"] {
		t.Errorf("top-level call edge missing: %v", r.Calls)
	}
	if !r.Calls["a"]["b"] {
		t.Errorf("a->b edge missing: %v", r.Calls)
	}
}
