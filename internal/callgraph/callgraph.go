// Package callgraph builds a static call graph and module-attribute access
// sets for applications written in the Python subset. It plays the role
// PyCG plays in the paper (§5.1): its output is the set of module
// attributes that are *definitely accessed* by the application, which the
// debloater marks as protected and excludes from Delta Debugging.
//
// The analysis is assignment-tracking and scope-aware: module objects and
// module attributes flowing through local variables, aliases and from-
// imports are followed; accesses inside functions only count when the
// function is reachable from the module's top level or the designated
// handler entry point.
package callgraph

import (
	"sort"
	"strings"

	"repro/internal/pylang"
)

// Result is the output of the analysis.
type Result struct {
	// Imports lists every module name imported by the entry module, in
	// first-occurrence order (deduplicated).
	Imports []string
	// Accessed maps module name -> attribute names definitely accessed.
	Accessed map[string]map[string]bool
	// Functions lists the functions defined in the entry module.
	Functions []string
	// Calls maps caller -> callee set, both named as "<toplevel>" or the
	// function name, for functions defined in the entry module.
	Calls map[string]map[string]bool
	// Reachable is the set of entry-module functions reachable from the
	// top level plus the handler.
	Reachable map[string]bool
}

// AccessedList returns the accessed attributes of a module, sorted.
func (r *Result) AccessedList(module string) []string {
	set := r.Accessed[module]
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// abstract value kinds tracked by the analysis.
type avKind int

const (
	avUnknown avKind = iota
	avModule         // a module object; payload = dotted module name
	avAttr           // an attribute of a module; payload = module, attr name
	avFunc           // a function defined in the entry module; payload = name
)

type abstract struct {
	kind   avKind
	module string
	attr   string
	fn     string
}

// Analyze runs the analysis over the entry module's AST. handler names the
// serverless entry point function ("handler" by convention); an empty
// handler analyzes only top-level reachability.
func Analyze(mod *pylang.Module, handler string) *Result {
	a := &analyzer{
		res: &Result{
			Accessed:  make(map[string]map[string]bool),
			Calls:     map[string]map[string]bool{"<toplevel>": {}},
			Reachable: make(map[string]bool),
		},
		funcs: make(map[string]*pylang.DefStmt),
	}

	// Pass 1: collect function definitions (top-level only; nested functions
	// belong to their parent's body and are analyzed with it).
	for _, s := range mod.Body {
		if def, ok := s.(*pylang.DefStmt); ok {
			a.funcs[def.Name] = def
			a.res.Functions = append(a.res.Functions, def.Name)
		}
	}

	// Pass 2: abstract interpretation of the top level.
	topScope := newScope(nil)
	a.execBlock(mod.Body, topScope, "<toplevel>", true)

	// Pass 3: reachability from top-level calls plus the handler.
	work := []string{"<toplevel>"}
	if handler != "" {
		if _, ok := a.funcs[handler]; ok {
			a.res.Reachable[handler] = true
			work = append(work, handler)
		}
	}
	seen := map[string]bool{"<toplevel>": true}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for callee := range a.res.Calls[cur] {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			a.res.Reachable[callee] = true
			work = append(work, callee)
		}
	}

	// Pass 4: analyze reachable function bodies. Their local scopes see the
	// top-level bindings (globals).
	analyzed := map[string]bool{}
	for {
		progress := false
		for name := range a.res.Reachable {
			if analyzed[name] {
				continue
			}
			def, ok := a.funcs[name]
			if !ok {
				analyzed[name] = true
				continue
			}
			analyzed[name] = true
			progress = true
			fnScope := newScope(topScope)
			for _, p := range def.Params {
				fnScope.set(p.Name, abstract{kind: avUnknown})
			}
			a.execBlock(def.Body, fnScope, name, true)
			// New edges may make more functions reachable.
			for callee := range a.res.Calls[name] {
				if !a.res.Reachable[callee] {
					if _, isFn := a.funcs[callee]; isFn {
						a.res.Reachable[callee] = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	return a.res
}

type scope struct {
	vars   map[string]abstract
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]abstract), parent: parent}
}

func (s *scope) get(name string) abstract {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return abstract{kind: avUnknown}
}

func (s *scope) set(name string, v abstract) { s.vars[name] = v }

type analyzer struct {
	res   *Result
	funcs map[string]*pylang.DefStmt
}

func (a *analyzer) recordImport(name string) {
	for _, existing := range a.res.Imports {
		if existing == name {
			return
		}
	}
	a.res.Imports = append(a.res.Imports, name)
}

func (a *analyzer) recordAccess(module, attr string) {
	set, ok := a.res.Accessed[module]
	if !ok {
		set = make(map[string]bool)
		a.res.Accessed[module] = set
	}
	set[attr] = true
}

func (a *analyzer) recordCall(caller, callee string) {
	set, ok := a.res.Calls[caller]
	if !ok {
		set = make(map[string]bool)
		a.res.Calls[caller] = set
	}
	set[callee] = true
}

// execBlock abstractly interprets a statement list. collectCalls controls
// whether call edges are recorded for the current context.
func (a *analyzer) execBlock(body []pylang.Stmt, sc *scope, ctx string, collectCalls bool) {
	for _, s := range body {
		a.execStmt(s, sc, ctx, collectCalls)
	}
}

func (a *analyzer) execStmt(s pylang.Stmt, sc *scope, ctx string, collectCalls bool) {
	switch v := s.(type) {
	case *pylang.ImportStmt:
		for _, alias := range v.Names {
			a.recordImport(alias.Name)
			if alias.AsName != "" {
				sc.set(alias.AsName, abstract{kind: avModule, module: alias.Name})
			} else {
				root := alias.Name
				if i := strings.IndexByte(root, '.'); i >= 0 {
					root = root[:i]
				}
				sc.set(root, abstract{kind: avModule, module: root})
			}
			// "import a.b" accesses attribute b of a.
			parts := strings.Split(alias.Name, ".")
			for i := 1; i < len(parts); i++ {
				a.recordAccess(strings.Join(parts[:i], "."), parts[i])
			}
		}
	case *pylang.FromImportStmt:
		if v.Level > 0 {
			return // relative imports occur in libraries, not app entry files
		}
		a.recordImport(v.Module)
		if v.Star {
			return // star imports defeat precise tracking; conservatively none
		}
		for _, alias := range v.Names {
			a.recordAccess(v.Module, alias.Name)
			bound := alias.Name
			if alias.AsName != "" {
				bound = alias.AsName
			}
			sc.set(bound, abstract{kind: avAttr, module: v.Module, attr: alias.Name})
		}
	case *pylang.AssignStmt:
		val := a.evalExpr(v.Value, sc, ctx, collectCalls)
		for _, t := range v.Targets {
			if name, ok := t.(*pylang.NameExpr); ok {
				sc.set(name.Name, val)
			} else {
				a.evalExpr(t, sc, ctx, false)
			}
		}
	case *pylang.AugAssignStmt:
		a.evalExpr(v.Target, sc, ctx, collectCalls)
		a.evalExpr(v.Value, sc, ctx, collectCalls)
	case *pylang.ExprStmt:
		a.evalExpr(v.Value, sc, ctx, collectCalls)
	case *pylang.DefStmt:
		// Record a binding so calls through the name are tracked; top-level
		// functions were pre-collected, nested ones are analyzed inline
		// (conservatively, as if they always run).
		sc.set(v.Name, abstract{kind: avFunc, fn: v.Name})
		if _, isTop := a.funcs[v.Name]; !isTop {
			inner := newScope(sc)
			for _, p := range v.Params {
				inner.set(p.Name, abstract{kind: avUnknown})
			}
			a.execBlock(v.Body, inner, ctx, collectCalls)
		}
		for _, d := range v.Decorators {
			a.evalExpr(d, sc, ctx, collectCalls)
		}
		for _, p := range v.Params {
			if p.Default != nil {
				a.evalExpr(p.Default, sc, ctx, collectCalls)
			}
		}
	case *pylang.ClassStmt:
		for _, b := range v.Bases {
			a.evalExpr(b, sc, ctx, collectCalls)
		}
		inner := newScope(sc)
		a.execBlock(v.Body, inner, ctx, collectCalls)
		sc.set(v.Name, abstract{kind: avUnknown})
	case *pylang.ReturnStmt:
		if v.Value != nil {
			a.evalExpr(v.Value, sc, ctx, collectCalls)
		}
	case *pylang.IfStmt:
		a.evalExpr(v.Cond, sc, ctx, collectCalls)
		a.execBlock(v.Body, sc, ctx, collectCalls)
		a.execBlock(v.Else, sc, ctx, collectCalls)
	case *pylang.WhileStmt:
		a.evalExpr(v.Cond, sc, ctx, collectCalls)
		a.execBlock(v.Body, sc, ctx, collectCalls)
		a.execBlock(v.Else, sc, ctx, collectCalls)
	case *pylang.ForStmt:
		a.evalExpr(v.Iter, sc, ctx, collectCalls)
		if name, ok := v.Target.(*pylang.NameExpr); ok {
			sc.set(name.Name, abstract{kind: avUnknown})
		}
		a.execBlock(v.Body, sc, ctx, collectCalls)
		a.execBlock(v.Else, sc, ctx, collectCalls)
	case *pylang.TryStmt:
		a.execBlock(v.Body, sc, ctx, collectCalls)
		for _, ex := range v.Excepts {
			if ex.Type != nil {
				a.evalExpr(ex.Type, sc, ctx, collectCalls)
			}
			if ex.Name != "" {
				sc.set(ex.Name, abstract{kind: avUnknown})
			}
			a.execBlock(ex.Body, sc, ctx, collectCalls)
		}
		a.execBlock(v.Else, sc, ctx, collectCalls)
		a.execBlock(v.Finally, sc, ctx, collectCalls)
	case *pylang.RaiseStmt:
		if v.Value != nil {
			a.evalExpr(v.Value, sc, ctx, collectCalls)
		}
	case *pylang.AssertStmt:
		a.evalExpr(v.Cond, sc, ctx, collectCalls)
		if v.Msg != nil {
			a.evalExpr(v.Msg, sc, ctx, collectCalls)
		}
	case *pylang.DelStmt:
		for _, t := range v.Targets {
			a.evalExpr(t, sc, ctx, false)
		}
	}
}

// evalExpr abstractly evaluates an expression, recording module-attribute
// accesses and call edges, and returns the abstract value.
func (a *analyzer) evalExpr(e pylang.Expr, sc *scope, ctx string, collectCalls bool) abstract {
	switch v := e.(type) {
	case *pylang.NameExpr:
		return sc.get(v.Name)
	case *pylang.AttrExpr:
		base := a.evalExpr(v.Value, sc, ctx, collectCalls)
		switch base.kind {
		case avModule:
			a.recordAccess(base.module, v.Attr)
			// Accessing "torch.nn" may denote the submodule torch.nn;
			// track it as a module so "torch.nn.Linear" is recorded too.
			return abstract{kind: avModule, module: base.module + "." + v.Attr}
		case avAttr:
			// attribute of an attribute — beyond the tracked depth
			return abstract{kind: avUnknown}
		}
		return abstract{kind: avUnknown}
	case *pylang.CallExpr:
		fn := a.evalExpr(v.Func, sc, ctx, collectCalls)
		if collectCalls && fn.kind == avFunc {
			a.recordCall(ctx, fn.fn)
		}
		// getattr(module, "literal") is a definite access.
		if name, ok := v.Func.(*pylang.NameExpr); ok && name.Name == "getattr" && len(v.Args) >= 2 {
			obj := a.evalExpr(v.Args[0], sc, ctx, collectCalls)
			if lit, ok := v.Args[1].(*pylang.StringLit); ok && obj.kind == avModule {
				a.recordAccess(obj.module, lit.Value)
			}
		}
		for _, arg := range v.Args {
			a.evalExpr(arg, sc, ctx, collectCalls)
		}
		for _, kw := range v.Keywords {
			a.evalExpr(kw.Value, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.IndexExpr:
		a.evalExpr(v.Value, sc, ctx, collectCalls)
		if v.Index != nil {
			a.evalExpr(v.Index, sc, ctx, collectCalls)
		}
		if v.Low != nil {
			a.evalExpr(v.Low, sc, ctx, collectCalls)
		}
		if v.High != nil {
			a.evalExpr(v.High, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.BinOp:
		a.evalExpr(v.Left, sc, ctx, collectCalls)
		a.evalExpr(v.Right, sc, ctx, collectCalls)
		return abstract{kind: avUnknown}
	case *pylang.BoolOp:
		for _, operand := range v.Values {
			a.evalExpr(operand, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.UnaryOp:
		a.evalExpr(v.Operand, sc, ctx, collectCalls)
		return abstract{kind: avUnknown}
	case *pylang.Compare:
		a.evalExpr(v.Left, sc, ctx, collectCalls)
		for _, c := range v.Comparators {
			a.evalExpr(c, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.ListExpr:
		for _, el := range v.Elems {
			a.evalExpr(el, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.TupleExpr:
		for _, el := range v.Elems {
			a.evalExpr(el, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.DictExpr:
		for _, it := range v.Items {
			a.evalExpr(it.Key, sc, ctx, collectCalls)
			a.evalExpr(it.Value, sc, ctx, collectCalls)
		}
		return abstract{kind: avUnknown}
	case *pylang.CondExpr:
		a.evalExpr(v.Cond, sc, ctx, collectCalls)
		a.evalExpr(v.Body, sc, ctx, collectCalls)
		a.evalExpr(v.OrElse, sc, ctx, collectCalls)
		return abstract{kind: avUnknown}
	case *pylang.LambdaExpr:
		inner := newScope(sc)
		for _, p := range v.Params {
			inner.set(p.Name, abstract{kind: avUnknown})
		}
		a.evalExpr(v.Body, inner, ctx, collectCalls)
		return abstract{kind: avUnknown}
	}
	return abstract{kind: avUnknown}
}
