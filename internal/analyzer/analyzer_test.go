package analyzer

import (
	"testing"

	"repro/internal/vfs"
)

func buildImage(handler string) *vfs.FS {
	fs := vfs.New()
	fs.Write("handler.py", handler)
	return fs
}

func TestAnalyzeBasic(t *testing.T) {
	fs := buildImage(`
import torch
from numpy import array

def handler(event, context):
    t = torch.tensor(array([1.0]))
    return torch.nn.functional(t)
`)
	rep, err := Analyze(fs, "handler", "handler")
	if err != nil {
		t.Fatal(err)
	}
	wantImports := map[string]bool{"torch": true, "numpy": true}
	for _, imp := range rep.Imports {
		delete(wantImports, imp)
	}
	if len(wantImports) != 0 {
		t.Errorf("missing imports: %v (got %v)", wantImports, rep.Imports)
	}
	if !rep.Protected["torch"]["tensor"] || !rep.Protected["torch"]["nn"] {
		t.Errorf("torch protection = %v", rep.ProtectedList("torch"))
	}
	if !rep.Protected["numpy"]["array"] {
		t.Errorf("numpy protection = %v", rep.ProtectedList("numpy"))
	}
	if !rep.Protected["torch.nn"]["functional"] {
		t.Errorf("torch.nn protection = %v", rep.ProtectedList("torch.nn"))
	}
}

func TestAnalyzeLazyImportsInsideFunctions(t *testing.T) {
	fs := buildImage(`
def handler(event, context):
    import heavy
    return heavy.run()
`)
	rep, err := Analyze(fs, "handler", "handler")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, imp := range rep.Imports {
		if imp == "heavy" {
			found = true
		}
	}
	if !found {
		t.Errorf("lazy import missed: %v", rep.Imports)
	}
}

func TestAnalyzeDottedImportExpansion(t *testing.T) {
	fs := buildImage("import a.b.c\n\ndef handler(event, context):\n    return None\n")
	rep, err := Analyze(fs, "handler", "handler")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "a.b": true, "a.b.c": true}
	for _, imp := range rep.Imports {
		delete(want, imp)
	}
	if len(want) != 0 {
		t.Errorf("missing expanded imports: %v (got %v)", want, rep.Imports)
	}
}

func TestAnalyzeMissingEntry(t *testing.T) {
	if _, err := Analyze(vfs.New(), "nope", "handler"); err == nil {
		t.Error("expected error for missing entry module")
	}
}

func TestAnalyzeSyntaxError(t *testing.T) {
	fs := buildImage("def broken(:\n")
	if _, err := Analyze(fs, "handler", "handler"); err == nil {
		t.Error("expected parse error")
	}
}

func TestAnalyzeImportOrderFirstOccurrence(t *testing.T) {
	fs := buildImage(`
import zzz
import aaa
import zzz

def handler(event, context):
    return None
`)
	rep, err := Analyze(fs, "handler", "handler")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Imports) != 2 || rep.Imports[0] != "zzz" || rep.Imports[1] != "aaa" {
		t.Errorf("imports = %v, want [zzz aaa]", rep.Imports)
	}
}
