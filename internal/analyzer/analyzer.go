// Package analyzer implements λ-trim's static analysis stage (§5.1 of the
// paper): a single pass over the application's AST to identify all imported
// modules, plus a PyCG-style call-graph analysis (internal/callgraph) to
// compute the module attributes that are definitely accessed by the
// application. Definitely-accessed attributes are excluded from Delta
// Debugging, which both guarantees they survive and shrinks the search
// space.
package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/pylang"
	"repro/internal/pyparser"
	"repro/internal/vfs"
)

// Report is the static analyzer's output, consumed by the profiler and
// debloater.
type Report struct {
	// Entry is the application's entry module name (e.g. "handler").
	Entry string
	// Handler is the lambda handler function name within the entry module.
	Handler string
	// Imports lists the modules imported by the entry module, in first-
	// occurrence order.
	Imports []string
	// Protected maps module name -> attributes that must not be removed
	// because the application definitely accesses them.
	Protected map[string]map[string]bool
	// Graph is the underlying call-graph result.
	Graph *callgraph.Result
}

// ProtectedList returns the protected attributes of module, sorted.
func (r *Report) ProtectedList(module string) []string {
	set := r.Protected[module]
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Analyze parses the entry module from the image and runs both analyses.
func Analyze(fs *vfs.FS, entry, handler string) (*Report, error) {
	src, err := fs.Read(entry + ".py")
	if err != nil {
		return nil, fmt.Errorf("analyzer: entry module not found: %w", err)
	}
	mod, err := pyparser.Parse(entry, src)
	if err != nil {
		return nil, fmt.Errorf("analyzer: %w", err)
	}

	// Pass 1 — imports (single AST traversal, as in the paper).
	imports := collectImports(mod)

	// Pass 2 — call graph / definitely-accessed attributes.
	graph := callgraph.Analyze(mod, handler)

	protected := make(map[string]map[string]bool, len(graph.Accessed))
	for m, attrs := range graph.Accessed {
		cp := make(map[string]bool, len(attrs))
		for a := range attrs {
			cp[a] = true
		}
		protected[m] = cp
	}

	return &Report{
		Entry:     entry,
		Handler:   handler,
		Imports:   imports,
		Protected: protected,
		Graph:     graph,
	}, nil
}

// collectImports walks the whole module AST (including function bodies, to
// catch lazy imports inside handlers) and returns imported module names in
// first-occurrence order.
func collectImports(mod *pylang.Module) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name == "" || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	pylang.Walk(mod, func(n pylang.Node) bool {
		switch v := n.(type) {
		case *pylang.ImportStmt:
			for _, alias := range v.Names {
				add(alias.Name)
				// "import a.b.c" implies a and a.b are imported too.
				parts := strings.Split(alias.Name, ".")
				for i := 1; i < len(parts); i++ {
					add(strings.Join(parts[:i], "."))
				}
			}
		case *pylang.FromImportStmt:
			if v.Level == 0 {
				add(v.Module)
			}
		}
		return true
	})
	return out
}
