package faas

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	throttle := &FailureError{Class: FailureThrottle, Function: "fn", Detail: "limit"}
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, FailureNone},
		{"direct", throttle, FailureThrottle},
		{"wrapped", fmt.Errorf("attempt 2: %w", throttle), FailureThrottle},
		{"double-wrapped", fmt.Errorf("request: %w", fmt.Errorf("attempt: %w",
			&FailureError{Class: FailureUnavailable})), FailureUnavailable},
		{"unknown", errors.New("boom"), FailureHandler},
		{"joined", errors.Join(errors.New("context"), throttle), FailureThrottle},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFailureClassStringOutOfRange(t *testing.T) {
	if got := FailureClass(42).String(); got != "failure(42)" {
		t.Errorf("FailureClass(42) = %q", got)
	}
	if got := FailureClass(-1).String(); got != "failure(-1)" {
		t.Errorf("FailureClass(-1) = %q", got)
	}
}

// TestRetryBudgetCompaction: a day-long monotone charge stream must not
// accumulate expired entries — the backing slice stays bounded by the cap,
// not by the total number of grants (the old prune leaked the expired
// prefix and held every charge of the run).
func TestRetryBudgetCompaction(t *testing.T) {
	b := NewRetryBudget(4, time.Second)
	grants := 0
	for i := 0; i < 100000; i++ {
		if b.Spend(time.Duration(i) * 300 * time.Millisecond) {
			grants++
		}
		if len(b.spent) > b.MaxRetries {
			t.Fatalf("step %d: %d resident entries exceed cap %d", i, len(b.spent), b.MaxRetries)
		}
	}
	if grants < 1000 {
		t.Fatalf("window never recovered: only %d grants", grants)
	}
	if c := cap(b.spent); c > 8 {
		t.Errorf("backing array grew to %d entries despite compaction", c)
	}
	// Whole-run budgets store nothing at all.
	whole := NewRetryBudget(2, 0)
	for i := 0; i < 1000; i++ {
		whole.Spend(time.Duration(i) * time.Second)
	}
	if whole.spent != nil {
		t.Error("whole-run budget allocated per-charge storage")
	}
}

// zeroInjector always returns the do-nothing directive. The platform
// must treat it exactly like a nil injector: directives consume no
// randomness, so wiring one in cannot perturb the fault stream.
type zeroInjector struct{}

func (zeroInjector) Directive(string, time.Duration) ChaosDirective { return ChaosDirective{} }

func TestChaosZeroDirectiveByteIdenticalToNil(t *testing.T) {
	want := faultedWorkloadChaos(42, nil)
	got := faultedWorkloadChaos(42, zeroInjector{})
	if got != want {
		t.Fatal("zero-directive injector perturbed the faulted workload log")
	}
}

// scriptInjector returns a fixed directive for every request.
type scriptInjector struct{ d ChaosDirective }

func (s scriptInjector) Directive(string, time.Duration) ChaosDirective { return s.d }

func TestChaosRejectDirective(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chaos = scriptInjector{d: ChaosDirective{Reject: true, RejectClass: FailureThrottle, Detail: "storm"}}
	p := New(cfg)
	p.Deploy(memApp("fn"))
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureThrottle {
		t.Errorf("class = %v, want throttle", inv.Class)
	}
	if inv.CostUSD != 0 || inv.BilledDuration != 0 {
		t.Errorf("rejected request billed: cost=%v dur=%v", inv.CostUSD, inv.BilledDuration)
	}
	if inv.E2E != cfg.RoutingOverhead {
		t.Errorf("E2E = %v, want routing overhead %v", inv.E2E, cfg.RoutingOverhead)
	}
	if Classify(inv.Err) != FailureThrottle {
		t.Errorf("error classifies as %v", Classify(inv.Err))
	}

	// An unset class defaults to unavailable — the zone-outage shape.
	cfg.Chaos = scriptInjector{d: ChaosDirective{Reject: true}}
	p = New(cfg)
	p.Deploy(memApp("fn"))
	inv, err = p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureUnavailable {
		t.Errorf("default reject class = %v, want unavailable", inv.Class)
	}
}

func TestChaosStretchDirectives(t *testing.T) {
	cold := func(d ChaosDirective) *Invocation {
		cfg := DefaultConfig()
		if d != (ChaosDirective{}) {
			cfg.Chaos = scriptInjector{d: d}
		}
		p := New(cfg)
		p.Deploy(memApp("fn"))
		inv, err := p.Invoke("fn", lightEvent)
		if err != nil {
			t.Fatal(err)
		}
		if inv.Kind != ColdStart {
			t.Fatalf("first invocation not cold: %v", inv.Kind)
		}
		return inv
	}
	base := cold(ChaosDirective{})
	brown := cold(ChaosDirective{InitFactor: 3})
	if brown.Init <= base.Init {
		t.Errorf("brownout init %v not above baseline %v", brown.Init, base.Init)
	}
	if brown.Exec != base.Exec {
		t.Errorf("brownout changed exec: %v vs %v", brown.Exec, base.Exec)
	}
	storm := cold(ChaosDirective{ExecFactor: 2})
	if storm.Exec <= base.Exec {
		t.Errorf("latency storm exec %v not above baseline %v", storm.Exec, base.Exec)
	}
	if storm.Init != base.Init {
		t.Errorf("latency storm changed init: %v vs %v", storm.Init, base.Init)
	}
	// Stretched phases are billed: the brownout invocation costs more.
	if brown.CostUSD <= base.CostUSD {
		t.Errorf("brownout cost %v not above baseline %v", brown.CostUSD, base.CostUSD)
	}
}
