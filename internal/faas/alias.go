package faas

import (
	"fmt"

	"repro/internal/appspec"
	"repro/internal/obs"
)

// Alias-based traffic splitting. An alias is a routable name that forwards
// each invocation to one of several deployed functions, drawn by weight.
// This is the platform half of a canary rollout: the controller adjusts the
// weights, the platform keeps the draw deterministic.

// aliasSeedSalt decorrelates the alias routing stream from the fault
// injection stream so that adding or removing an alias never shifts which
// requests fault.
const aliasSeedSalt = 0x51a5a11a5

// AliasRoute is one weighted target of an alias.
type AliasRoute struct {
	Target string
	Weight float64
}

type aliasEntry struct {
	routes []AliasRoute
	total  float64
}

// SetAlias installs (or replaces) an alias that splits traffic across the
// given routes in proportion to their weights. Every target must already be
// deployed and every weight must be positive. An alias may not shadow a
// deployed function name.
func (p *Platform) SetAlias(name string, routes ...AliasRoute) error {
	if len(routes) == 0 {
		return fmt.Errorf("faas: alias %q needs at least one route", name)
	}
	if _, exists := p.fns[name]; exists {
		return fmt.Errorf("faas: alias %q would shadow a deployed function", name)
	}
	total := 0.0
	for _, r := range routes {
		if r.Weight <= 0 {
			return fmt.Errorf("faas: alias %q route %q has non-positive weight %v", name, r.Target, r.Weight)
		}
		if _, ok := p.fns[r.Target]; !ok {
			return fmt.Errorf("faas: alias %q routes to unknown function %q", name, r.Target)
		}
		total += r.Weight
	}
	cp := make([]AliasRoute, len(routes))
	copy(cp, routes)
	p.aliases[name] = &aliasEntry{routes: cp, total: total}
	if tr := p.cfg.Tracer; tr != nil {
		tr.Emit("faas.alias.set", p.now, obs.String("alias", name), obs.Int("routes", int64(len(cp))))
	}
	return nil
}

// ClearAlias removes an alias. Clearing a name that is not an alias is a
// no-op.
func (p *Platform) ClearAlias(name string) {
	delete(p.aliases, name)
}

// AliasRoutes returns a copy of the alias's routes, or nil if the name is
// not an alias.
func (p *Platform) AliasRoutes(name string) []AliasRoute {
	e, ok := p.aliases[name]
	if !ok {
		return nil
	}
	cp := make([]AliasRoute, len(e.routes))
	copy(cp, e.routes)
	return cp
}

// resolveAlias maps an invoked name to the deployment that should serve it.
// Single-route aliases resolve without consuming a random draw, so a rollout
// pinned at 0% or 100% replays byte-identically to one with no alias at all.
func (p *Platform) resolveAlias(name string) string {
	e, ok := p.aliases[name]
	if !ok {
		return name
	}
	if len(e.routes) == 1 {
		return e.routes[0].Target
	}
	x := p.aliasRng.Float64() * e.total
	for _, r := range e.routes {
		if x < r.Weight {
			return r.Target
		}
		x -= r.Weight
	}
	return e.routes[len(e.routes)-1].Target
}

// VersionName is the deployed name of a function version: "base@version".
func VersionName(base, version string) string {
	return base + "@" + version
}

// DeployVersion deploys app under the versioned name "base@version" and
// returns that name. The app is cloned first, so the caller's copy keeps
// its own name.
func (p *Platform) DeployVersion(base, version string, app *appspec.App) string {
	clone := app.Clone()
	clone.Name = VersionName(base, version)
	p.Deploy(clone)
	return clone.Name
}

// SetFallback wires name's AttributeError fallback to an already-deployed
// function, without the deploy-both convenience of DeployWithFallback.
func (p *Platform) SetFallback(name, fallbackName string) error {
	d, ok := p.fns[name]
	if !ok {
		return fmt.Errorf("faas: no function named %q", name)
	}
	if _, ok := p.fns[fallbackName]; !ok {
		return fmt.Errorf("faas: no fallback function named %q", fallbackName)
	}
	d.fallback = fallbackName
	return nil
}
