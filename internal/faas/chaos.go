package faas

import "time"

// ChaosDirective is what a chaos injector tells the platform to do to one
// request. The zero value does nothing. Directives are computed from
// (function, virtual time) alone — the platform hands them no randomness,
// so an injector composes with the FaultConfig injector without consuming
// or perturbing any draw from the platform's fault stream (a nil injector
// and one that always returns the zero directive are byte-identical).
type ChaosDirective struct {
	// Reject fails the request up front: never billed, never assigned an
	// instance, E2E = routing overhead (the shape of a Lambda 429/5xx).
	Reject bool
	// RejectClass is the failure class of the rejection —
	// FailureUnavailable (zone outage, the default) or FailureThrottle
	// (throttle storm).
	RejectClass FailureClass
	// Detail annotates the rejection error.
	Detail string
	// InitFactor > 1 stretches Function Initialization (a dependency
	// brownout lengthening the import window). Billed like any init;
	// ignored for SnapStart restores, which do not import.
	InitFactor float64
	// ExecFactor > 1 stretches Function Execution (a latency storm).
	ExecFactor float64
}

// ChaosInjector supplies per-request chaos directives on the virtual
// clock. Implementations live outside this package (internal/chaos); the
// platform only asks, once per invocation attempt, what should happen.
type ChaosInjector interface {
	Directive(fn string, at time.Duration) ChaosDirective
}
