// Package faas simulates a serverless platform with AWS-Lambda-like
// semantics: on-demand instances, cold and warm starts, a keep-alive pool,
// and duration×memory billing (Eq. 1 of the paper):
//
//	C = Configured Memory × Billed Duration × Unit Price
//
// The lifecycle of an invocation follows Figure 1 of the paper: instance
// init and image transmission are performed by the provider and are not
// billed; Function Initialization (imports, environment setup) and Function
// Execution are billed. The simulator also implements λ-trim's fallback
// deployment (§5.4): a debloated function that raises AttributeError
// re-invokes its original as an independent serverless function.
package faas

import (
	"fmt"
	"math"
	"time"

	"repro/internal/appspec"
	"repro/internal/pyruntime"
	"repro/internal/simtime"
)

// Pricing models a platform's billing.
type Pricing struct {
	// USDPerGBSecond is the duration-memory unit price.
	USDPerGBSecond float64
	// Granularity is the billing rounding unit (1 ms on AWS; GCP rounds to
	// 100 ms, Azure to 1 s).
	Granularity time.Duration
	// MinMemoryMB is the smallest billable memory configuration.
	MinMemoryMB int
	// MemoryStepMB is the configuration step (AWS allows 1 MB steps above
	// the floor).
	MemoryStepMB int
}

// AWSPricing is AWS Lambda's x86 pricing as used in the paper
// ($0.0000162109 per GB-second, 1 ms granularity, 128 MB floor).
func AWSPricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.0000162109,
		Granularity:    time.Millisecond,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// GCPPricing approximates GCP Cloud Run functions (100 ms rounding).
func GCPPricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.0000165,
		Granularity:    100 * time.Millisecond,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// AzurePricing approximates Azure Functions consumption plan (1 s rounding).
func AzurePricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.000016,
		Granularity:    time.Second,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// Cost computes Eq. 1 for a billed duration and configured memory.
func (p Pricing) Cost(billed time.Duration, memoryMB int) float64 {
	gb := float64(memoryMB) / 1024.0
	return gb * billed.Seconds() * p.USDPerGBSecond
}

// BillDuration rounds a duration up to the billing granularity.
func (p Pricing) BillDuration(d time.Duration) time.Duration {
	if p.Granularity <= 0 {
		return d
	}
	g := p.Granularity
	return ((d + g - 1) / g) * g
}

// ConfigureMemory rounds a peak footprint up to a billable configuration.
func (p Pricing) ConfigureMemory(peakMB float64) int {
	mem := int(math.Ceil(peakMB))
	if mem < p.MinMemoryMB {
		mem = p.MinMemoryMB
	}
	if p.MemoryStepMB > 1 {
		mem = ((mem + p.MemoryStepMB - 1) / p.MemoryStepMB) * p.MemoryStepMB
	}
	return mem
}

// Config parameterizes the platform simulator.
type Config struct {
	Pricing Pricing
	// KeepAlive is how long an idle instance survives (AWS: up to
	// ~45-60 min; GCP: <15 min). Paper experiments assume 15 min.
	KeepAlive time.Duration
	// BaseRuntimeMB is the interpreter/runtime footprint added to every
	// instance (CPython ~35 MB on Lambda).
	BaseRuntimeMB float64
	// RoutingOverhead models request routing/queueing on every invocation
	// (present in E2E, never billed).
	RoutingOverhead time.Duration
	// InstanceInit and TransferRateMBps model the provider-side cold path
	// when UseAppSetupDelay is false: instance init plus image
	// transmission at the given rate (Figure 1's unbilled phases).
	InstanceInit     time.Duration
	TransferRateMBps float64
	// UseAppSetupDelay, when true, uses each app's calibrated
	// SetupDelayMS instead of the image model (matches Table 1 E2E).
	UseAppSetupDelay bool
	// FallbackSetup is the wrapper's overhead when the fallback path
	// triggers (~50 ms in §8.7).
	FallbackSetup time.Duration
}

// DefaultConfig mirrors the paper's AWS Lambda setup.
func DefaultConfig() Config {
	return Config{
		Pricing:          AWSPricing(),
		KeepAlive:        15 * time.Minute,
		BaseRuntimeMB:    35,
		RoutingOverhead:  40 * time.Millisecond,
		InstanceInit:     350 * time.Millisecond,
		TransferRateMBps: 600,
		UseAppSetupDelay: true,
		FallbackSetup:    50 * time.Millisecond,
	}
}

// StartKind distinguishes cold from warm starts.
type StartKind int

const (
	// ColdStart initializes a fresh instance on the critical path.
	ColdStart StartKind = iota
	// WarmStart reuses a kept-alive instance.
	WarmStart
)

func (k StartKind) String() string {
	if k == WarmStart {
		return "warm"
	}
	return "cold"
}

// Invocation is the full record of one function invocation.
type Invocation struct {
	Function string
	Kind     StartKind

	// Phase latencies (Figure 1). InstanceInit and ImageTransfer are zero
	// on warm starts and never billed.
	InstanceInit  time.Duration
	ImageTransfer time.Duration
	Init          time.Duration // Function Initialization (billed, cold only)
	Exec          time.Duration // Function Execution (billed)
	E2E           time.Duration

	// BilledDuration is Init+Exec (cold) or Exec (warm), rounded up.
	BilledDuration time.Duration
	// MemoryMB is the billed memory configuration.
	MemoryMB int
	// PeakMB is the measured footprint including the runtime base.
	PeakMB float64
	// CostUSD is Eq. 1 applied to this invocation.
	CostUSD float64

	// Result carries the handler's return value repr.
	Result string
	// Stdout carries printed output.
	Stdout string
	// Err is set when the handler raised and no fallback absorbed it.
	Err error
	// FallbackUsed marks invocations served by the fallback original
	// function after an AttributeError in the debloated one.
	FallbackUsed bool
	// FallbackKind is the start kind of the fallback invocation when used.
	FallbackKind StartKind

	// SnapStartRestore marks cold starts served from a checkpoint; Init
	// then holds the restore latency and RestoreFeeUSD the per-restore
	// charge (included in CostUSD).
	SnapStartRestore bool
	RestoreFeeUSD    float64
}

// instance is one warm-capable execution environment.
type instance struct {
	interp    *pyruntime.Interp
	handler   pyruntime.Value
	initTime  time.Duration
	initMemMB float64
	lastUsed  time.Duration // completion time of the last request served
	busyUntil time.Duration // instance is serving a request until then
	expired   bool
}

// SnapStartConfig enables checkpoint/restore-backed cold starts for a
// deployment: instead of re-running Function Initialization, a cold start
// restores the post-init snapshot. Restores are not billed as duration —
// they are charged per GB restored, and the checkpoint accrues cache
// storage cost for as long as the function stays deployed (AWS SnapStart
// pricing, §8.6).
type SnapStartConfig struct {
	// RestoreTime replaces Function Initialization latency on cold starts.
	RestoreTime time.Duration
	// RestoreFeeUSD is charged per cold start.
	RestoreFeeUSD float64
	// CacheUSDPerSecond accrues while deployed (surfaced via
	// FunctionStats; per-invocation records carry only the restore fee).
	CacheUSDPerSecond float64
}

// deployment is a registered function.
type deployment struct {
	app       *appspec.App
	fallback  string // name of the fallback function, if any
	snapstart *SnapStartConfig
	instances []*instance
	// configuredMB is fixed after the first invocation measures the peak
	// footprint, as operators do with AWS Lambda Power Tuning.
	configuredMB int
	invocations  int
	coldStarts   int
}

// Platform is the simulator. It is not safe for concurrent use.
type Platform struct {
	cfg   Config
	now   time.Duration
	fns   map[string]*deployment
	order []string
}

// New creates a platform.
func New(cfg Config) *Platform {
	return &Platform{cfg: cfg, fns: make(map[string]*deployment)}
}

// Now returns the platform timeline.
func (p *Platform) Now() time.Duration { return p.now }

// Advance moves the platform timeline forward (idle time between requests).
func (p *Platform) Advance(d time.Duration) {
	if d > 0 {
		p.now += d
	}
}

// Deploy registers an app under its name. Redeploying replaces the function
// and discards warm instances (AWS behaves the same on code updates — the
// paper exploits this to force cold starts).
func (p *Platform) Deploy(app *appspec.App) {
	if _, exists := p.fns[app.Name]; !exists {
		p.order = append(p.order, app.Name)
	}
	p.fns[app.Name] = &deployment{app: app}
}

// DeployWithFallback registers a debloated app plus its original as the
// fallback function (§5.4).
func (p *Platform) DeployWithFallback(debloated, original *appspec.App) {
	fallbackName := original.Name + "-fallback"
	orig := original.Clone()
	orig.Name = fallbackName
	p.Deploy(orig)
	p.Deploy(debloated)
	p.fns[debloated.Name].fallback = fallbackName
}

// DeployWithSnapStart registers an app whose cold starts restore from a
// checkpoint instead of re-initializing.
func (p *Platform) DeployWithSnapStart(app *appspec.App, cfg SnapStartConfig) {
	p.Deploy(app)
	p.fns[app.Name].snapstart = &cfg
}

// InvalidateWarm discards all warm instances of a function (the paper
// triggers this by updating the function description between invocations).
func (p *Platform) InvalidateWarm(name string) {
	if d, ok := p.fns[name]; ok {
		d.instances = nil
	}
}

// Stats summarizes a deployment's lifetime counters.
type Stats struct {
	Invocations int
	ColdStarts  int
}

// FunctionStats returns counters for a deployed function.
func (p *Platform) FunctionStats(name string) (Stats, bool) {
	d, ok := p.fns[name]
	if !ok {
		return Stats{}, false
	}
	return Stats{Invocations: d.invocations, ColdStarts: d.coldStarts}, true
}

// Invoke sends an event to a function at the current platform time.
func (p *Platform) Invoke(name string, event map[string]any) (*Invocation, error) {
	d, ok := p.fns[name]
	if !ok {
		return nil, fmt.Errorf("faas: no function named %q", name)
	}
	inv, err := p.invoke(d, event, true)
	if err != nil {
		return nil, err
	}

	// Fallback path: AttributeError in a debloated function re-invokes the
	// original as an independent serverless function (§5.4, Table 4).
	if inv.Err != nil && d.fallback != "" && isAttributeError(inv.Err) {
		fb := p.fns[d.fallback]
		fbInv, ferr := p.invoke(fb, event, true)
		if ferr != nil {
			return nil, ferr
		}
		total := *fbInv
		total.Function = name
		total.FallbackUsed = true
		total.FallbackKind = fbInv.Kind
		total.Kind = inv.Kind
		// E2E: failed primary attempt + wrapper setup + fallback E2E.
		total.E2E = inv.E2E + p.cfg.FallbackSetup + fbInv.E2E
		// The user pays for both attempts.
		total.CostUSD = inv.CostUSD + fbInv.CostUSD
		total.BilledDuration = inv.BilledDuration + fbInv.BilledDuration
		total.Err = nil
		return &total, nil
	}
	return inv, nil
}

func isAttributeError(err error) bool {
	pe, ok := err.(*pyruntime.PyErr)
	return ok && pe.ClassName() == "AttributeError"
}

func (p *Platform) invoke(d *deployment, event map[string]any, advanceClock bool) (*Invocation, error) {
	d.invocations++
	inv := &Invocation{Function: d.app.Name}

	inst := p.warmInstance(d)
	if inst == nil {
		inst = &instance{}
		inv.Kind = ColdStart
		d.coldStarts++

		// Provider-side, unbilled phases.
		if p.cfg.UseAppSetupDelay {
			delay := time.Duration(d.app.SetupDelayMS * float64(time.Millisecond))
			// Split for reporting: instance init vs image transmission,
			// 40/60 as a fixed convention.
			inv.InstanceInit = delay * 2 / 5
			inv.ImageTransfer = delay - inv.InstanceInit
		} else {
			inv.InstanceInit = p.cfg.InstanceInit
			if p.cfg.TransferRateMBps > 0 {
				inv.ImageTransfer = time.Duration(d.app.ImageSizeMB / p.cfg.TransferRateMBps * float64(time.Second))
			}
		}

		// Function Initialization: import the entry module.
		interp := pyruntime.New(d.app.Image)
		t0 := interp.Clock.Now()
		m0 := interp.Alloc.Used()
		mod, perr := interp.Import(d.app.Entry)
		if perr != nil {
			inv.Err = perr
			inv.E2E = p.cfg.RoutingOverhead + inv.InstanceInit + inv.ImageTransfer + (interp.Clock.Now() - t0)
			return inv, nil
		}
		handler, ok := mod.Dict.Get(d.app.Handler)
		if !ok {
			return nil, fmt.Errorf("faas: %s: handler %q not found", d.app.Name, d.app.Handler)
		}
		inst.interp = interp
		inst.handler = handler
		inst.initTime = interp.Clock.Now() - t0
		inst.initMemMB = simtime.MBf(interp.Alloc.Used() - m0)
		inv.Init = inst.initTime
		if d.snapstart != nil {
			// Restoring the snapshot replaces re-initialization: the
			// interpreter state is built the same way (semantics), but
			// the observable latency is the restore time and the charge
			// is the per-GB restore fee instead of billed duration.
			inv.Init = d.snapstart.RestoreTime
			inv.SnapStartRestore = true
			inv.RestoreFeeUSD = d.snapstart.RestoreFeeUSD
		}
		d.instances = append(d.instances, inst)
	} else {
		inv.Kind = WarmStart
	}

	// Function Execution.
	interp := inst.interp
	evValue, err := pyruntime.FromGo(asAny(event))
	if err != nil {
		return nil, fmt.Errorf("faas: bad event: %w", err)
	}
	ctx := contextValue(d.app)
	t0 := interp.Clock.Now()
	out0 := len(interp.OutputString())
	result, perr := interp.CallFunction(inst.handler, []pyruntime.Value{evValue, ctx})
	inv.Exec = interp.Clock.Now() - t0
	inv.Stdout = interp.OutputString()[out0:]
	if perr != nil {
		inv.Err = perr
	} else {
		inv.Result = pyruntime.Repr(result)
	}

	// Footprint & billing.
	inv.PeakMB = simtime.MBf(interp.Alloc.Peak()) + p.cfg.BaseRuntimeMB
	if d.configuredMB == 0 {
		d.configuredMB = p.cfg.Pricing.ConfigureMemory(inv.PeakMB)
	}
	inv.MemoryMB = d.configuredMB
	billed := inv.Exec
	if inv.Kind == ColdStart && !inv.SnapStartRestore {
		billed += inv.Init
	}
	inv.BilledDuration = p.cfg.Pricing.BillDuration(billed)
	inv.CostUSD = p.cfg.Pricing.Cost(inv.BilledDuration, inv.MemoryMB) + inv.RestoreFeeUSD

	inv.E2E = p.cfg.RoutingOverhead + inv.InstanceInit + inv.ImageTransfer + inv.Init + inv.Exec

	inst.busyUntil = p.now + inv.E2E
	inst.lastUsed = inst.busyUntil
	if advanceClock {
		p.now += inv.E2E
	}
	return inv, nil
}

// warmInstance returns an idle live instance or nil, expiring stale ones.
// Instances still serving a request (busyUntil in the future) are kept but
// not eligible — that is what turns a burst into a cold-start storm.
func (p *Platform) warmInstance(d *deployment) *instance {
	live := d.instances[:0]
	var found *instance
	for _, inst := range d.instances {
		if inst.busyUntil <= p.now && p.now-inst.lastUsed > p.cfg.KeepAlive {
			inst.expired = true
			continue
		}
		live = append(live, inst)
		if inst.busyUntil > p.now {
			continue // still serving a request
		}
		if found == nil {
			found = inst
		}
	}
	d.instances = live
	return found
}

// InvokeBurst delivers n copies of event concurrently at the current
// platform time — the scale-out burst the paper's introduction motivates
// ("scale-out architectures that lead to very bursty workloads"). Idle
// warm instances serve what they can; every request beyond that pays a
// full cold start. The platform clock advances by the slowest E2E.
func (p *Platform) InvokeBurst(name string, event map[string]any, n int) ([]*Invocation, error) {
	d, ok := p.fns[name]
	if !ok {
		return nil, fmt.Errorf("faas: no function named %q", name)
	}
	out := make([]*Invocation, 0, n)
	var maxE2E time.Duration
	for i := 0; i < n; i++ {
		inv, err := p.invoke(d, event, false)
		if err != nil {
			return nil, err
		}
		if inv.E2E > maxE2E {
			maxE2E = inv.E2E
		}
		out = append(out, inv)
	}
	p.now += maxE2E
	return out, nil
}

func contextValue(app *appspec.App) pyruntime.Value {
	ctx := pyruntime.NewDict()
	ctx.SetStr("function_name", pyruntime.StrV(app.Name))
	ctx.SetStr("function_version", pyruntime.StrV("$LATEST"))
	ctx.SetStr("memory_limit_in_mb", pyruntime.IntV(3008))
	return ctx
}

func asAny(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	return m
}

// MeasureColdStart deploys the app on a fresh platform and performs one
// cold invocation with the first oracle event — the basic measurement
// behind Table 1 and Figure 2.
func MeasureColdStart(app *appspec.App, cfg Config) (*Invocation, error) {
	p := New(cfg)
	p.Deploy(app)
	event := map[string]any{}
	if len(app.Oracle) > 0 {
		event = app.Oracle[0].Event
	}
	inv, err := p.Invoke(app.Name, event)
	if err != nil {
		return nil, err
	}
	if inv.Err != nil {
		return nil, fmt.Errorf("faas: %s cold start raised: %v", app.Name, inv.Err)
	}
	return inv, nil
}

// MeasureWarmStart performs one cold start to prime an instance, then one
// warm invocation, returning the warm record.
func MeasureWarmStart(app *appspec.App, cfg Config) (*Invocation, error) {
	p := New(cfg)
	p.Deploy(app)
	event := map[string]any{}
	if len(app.Oracle) > 0 {
		event = app.Oracle[0].Event
	}
	if _, err := p.Invoke(app.Name, event); err != nil {
		return nil, err
	}
	inv, err := p.Invoke(app.Name, event)
	if err != nil {
		return nil, err
	}
	if inv.Kind != WarmStart {
		return nil, fmt.Errorf("faas: expected warm start for %s", app.Name)
	}
	return inv, nil
}
