// Package faas simulates a serverless platform with AWS-Lambda-like
// semantics: on-demand instances, cold and warm starts, a keep-alive pool,
// and duration×memory billing (Eq. 1 of the paper):
//
//	C = Configured Memory × Billed Duration × Unit Price
//
// The lifecycle of an invocation follows Figure 1 of the paper: instance
// init and image transmission are performed by the provider and are not
// billed; Function Initialization (imports, environment setup) and Function
// Execution are billed. The simulator also implements λ-trim's fallback
// deployment (§5.4): a debloated function that raises AttributeError
// re-invokes its original as an independent serverless function.
package faas

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/appspec"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/pyruntime"
	"repro/internal/simtime"
)

// Pricing models a platform's billing.
type Pricing struct {
	// USDPerGBSecond is the duration-memory unit price.
	USDPerGBSecond float64
	// Granularity is the billing rounding unit (1 ms on AWS; GCP rounds to
	// 100 ms, Azure to 1 s).
	Granularity time.Duration
	// MinMemoryMB is the smallest billable memory configuration.
	MinMemoryMB int
	// MemoryStepMB is the configuration step (AWS allows 1 MB steps above
	// the floor).
	MemoryStepMB int
}

// AWSPricing is AWS Lambda's x86 pricing as used in the paper
// ($0.0000162109 per GB-second, 1 ms granularity, 128 MB floor).
func AWSPricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.0000162109,
		Granularity:    time.Millisecond,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// GCPPricing approximates GCP Cloud Run functions (100 ms rounding).
func GCPPricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.0000165,
		Granularity:    100 * time.Millisecond,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// AzurePricing approximates Azure Functions consumption plan (1 s rounding).
func AzurePricing() Pricing {
	return Pricing{
		USDPerGBSecond: 0.000016,
		Granularity:    time.Second,
		MinMemoryMB:    128,
		MemoryStepMB:   1,
	}
}

// Cost computes Eq. 1 for a billed duration and configured memory.
// Non-positive durations or memory configurations bill nothing (a killed
// invocation that never reached a billable phase must not produce a
// negative line item).
func (p Pricing) Cost(billed time.Duration, memoryMB int) float64 {
	if billed <= 0 || memoryMB <= 0 {
		return 0
	}
	gb := float64(memoryMB) / 1024.0
	return gb * billed.Seconds() * p.USDPerGBSecond
}

// BillDuration rounds a duration up to the billing granularity.
// Non-positive durations round to zero. A Granularity <= 0 disables
// rounding and passes the duration through unchanged — callers that model
// exotic providers can rely on that pass-through.
func (p Pricing) BillDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	if p.Granularity <= 0 {
		return d
	}
	g := p.Granularity
	return ((d + g - 1) / g) * g
}

// ConfigureMemory rounds a peak footprint up to a billable configuration.
func (p Pricing) ConfigureMemory(peakMB float64) int {
	mem := int(math.Ceil(peakMB))
	if mem < p.MinMemoryMB {
		mem = p.MinMemoryMB
	}
	if p.MemoryStepMB > 1 {
		mem = ((mem + p.MemoryStepMB - 1) / p.MemoryStepMB) * p.MemoryStepMB
	}
	return mem
}

// Config parameterizes the platform simulator.
type Config struct {
	Pricing Pricing
	// KeepAlive is how long an idle instance survives (AWS: up to
	// ~45-60 min; GCP: <15 min). Paper experiments assume 15 min.
	KeepAlive time.Duration
	// BaseRuntimeMB is the interpreter/runtime footprint added to every
	// instance (CPython ~35 MB on Lambda).
	BaseRuntimeMB float64
	// RoutingOverhead models request routing/queueing on every invocation
	// (present in E2E, never billed).
	RoutingOverhead time.Duration
	// InstanceInit and TransferRateMBps model the provider-side cold path
	// when UseAppSetupDelay is false: instance init plus image
	// transmission at the given rate (Figure 1's unbilled phases).
	InstanceInit     time.Duration
	TransferRateMBps float64
	// UseAppSetupDelay, when true, uses each app's calibrated
	// SetupDelayMS instead of the image model (matches Table 1 E2E).
	UseAppSetupDelay bool
	// FallbackSetup is the wrapper's overhead when the fallback path
	// triggers (~50 ms in §8.7).
	FallbackSetup time.Duration

	// EnforceMemory, when true, kills any invocation whose footprint
	// exceeds the configured memory with an OOM error, billing the partial
	// duration up to the kill (Lambda's "Runtime exited with error:
	// signal: killed" semantics). Off by default so cost-only studies keep
	// the permissive pre-failure-model behavior.
	EnforceMemory bool
	// DefaultTimeout bounds the billed window (Init+Exec) of functions
	// that do not set their own appspec TimeoutMS. Zero disables the
	// platform-wide timeout.
	DefaultTimeout time.Duration
	// FaultSeed seeds the deterministic fault injector and the retry
	// jitter. The same seed, config, and invocation sequence reproduce
	// byte-identical invocation logs.
	FaultSeed int64
	// Faults configures the injector; the zero value injects nothing.
	Faults FaultConfig

	// Tracer, when set, records every deployment and invocation as a span
	// tree over the platform's simulated clock plus a metrics stream
	// (per-phase latency histograms, fault counters, retry totals). Nil
	// (the default) disables tracing with no behavioral or billing change.
	Tracer *obs.Tracer

	// Monitor, when set, receives one sample per completed invocation
	// attempt on the platform's virtual timeline — feeding the sim-time
	// TSDB, SLO burn-rate evaluation, and the cost-attribution ledger.
	// Nil (the default) disables monitoring with no behavioral change.
	Monitor *monitor.Monitor

	// Chaos, when set, is asked for a directive on every invocation
	// attempt: scheduled incidents can reject the request up front or
	// stretch its init/exec phases. Directives carry no randomness from
	// the platform, so chaos composes with Faults without perturbing its
	// seeded stream; nil (the default) is byte-identical to an injector
	// that always returns the zero directive.
	Chaos ChaosInjector
}

// DefaultConfig mirrors the paper's AWS Lambda setup.
func DefaultConfig() Config {
	return Config{
		Pricing:          AWSPricing(),
		KeepAlive:        15 * time.Minute,
		BaseRuntimeMB:    35,
		RoutingOverhead:  40 * time.Millisecond,
		InstanceInit:     350 * time.Millisecond,
		TransferRateMBps: 600,
		UseAppSetupDelay: true,
		FallbackSetup:    50 * time.Millisecond,
	}
}

// StartKind distinguishes cold from warm starts.
type StartKind int

const (
	// ColdStart initializes a fresh instance on the critical path.
	ColdStart StartKind = iota
	// WarmStart reuses a kept-alive instance.
	WarmStart
)

func (k StartKind) String() string {
	if k == WarmStart {
		return "warm"
	}
	return "cold"
}

// Invocation is the full record of one function invocation.
type Invocation struct {
	Function string
	Kind     StartKind

	// Phase latencies (Figure 1). InstanceInit and ImageTransfer are zero
	// on warm starts and never billed.
	InstanceInit  time.Duration
	ImageTransfer time.Duration
	Init          time.Duration // Function Initialization (billed, cold only)
	Exec          time.Duration // Function Execution (billed)
	E2E           time.Duration

	// BilledDuration is Init+Exec (cold) or Exec (warm), rounded up.
	BilledDuration time.Duration
	// MemoryMB is the billed memory configuration.
	MemoryMB int
	// PeakMB is the measured footprint including the runtime base.
	PeakMB float64
	// CostUSD is Eq. 1 applied to this invocation.
	CostUSD float64

	// Result carries the handler's return value repr.
	Result string
	// Stdout carries printed output.
	Stdout string
	// Err is set when the handler raised and no fallback absorbed it.
	Err error
	// Class classifies platform-level failures (OOM, timeout, throttle,
	// init crash); FailureHandler marks application exceptions and
	// FailureNone a successful invocation. For throttled records, Kind is
	// meaningless (no instance was ever assigned).
	Class FailureClass

	// Attempt is this record's 1-based attempt index under a retrying
	// client (zero when invoked directly).
	Attempt int
	// Attempts, AttemptCostsUSD and BackoffWait are set on the final
	// record returned by InvokeWithRetry: total attempts made, the bill
	// of each attempt (failed ones included — the client pays for every
	// billed attempt), and the total client-side backoff wait. CostUSD,
	// BilledDuration and E2E then aggregate across all attempts.
	Attempts        int
	AttemptCostsUSD []float64
	BackoffWait     time.Duration
	// FallbackUsed marks invocations served by the fallback original
	// function after an AttributeError in the debloated one.
	FallbackUsed bool
	// FallbackKind is the start kind of the fallback invocation when used.
	FallbackKind StartKind

	// SnapStartRestore marks cold starts served from a checkpoint; Init
	// then holds the restore latency and RestoreFeeUSD the per-restore
	// charge (included in CostUSD).
	SnapStartRestore bool
	RestoreFeeUSD    float64
}

// instance is one warm-capable execution environment.
type instance struct {
	interp    *pyruntime.Interp
	handler   pyruntime.Value
	initTime  time.Duration
	initMemMB float64
	lastUsed  time.Duration // completion time of the last request served
	busyUntil time.Duration // instance is serving a request until then
	expired   bool
}

// SnapStartConfig enables checkpoint/restore-backed cold starts for a
// deployment: instead of re-running Function Initialization, a cold start
// restores the post-init snapshot. Restores are not billed as duration —
// they are charged per GB restored, and the checkpoint accrues cache
// storage cost for as long as the function stays deployed (AWS SnapStart
// pricing, §8.6).
type SnapStartConfig struct {
	// RestoreTime replaces Function Initialization latency on cold starts.
	RestoreTime time.Duration
	// RestoreFeeUSD is charged per cold start.
	RestoreFeeUSD float64
	// CacheUSDPerSecond accrues while deployed (surfaced via
	// FunctionStats; per-invocation records carry only the restore fee).
	CacheUSDPerSecond float64
}

// deployment is a registered function.
type deployment struct {
	app       *appspec.App
	fallback  string // name of the fallback function, if any
	snapstart *SnapStartConfig
	instances []*instance
	// configuredMB is fixed at Deploy time — from the appspec's explicit
	// MemoryMB or from a profiling invocation, as operators do with AWS
	// Lambda Power Tuning. It never changes with invocation order.
	configuredMB int
	invocations  int
	coldStarts   int
	// Failure counters (per attempt, not per client-visible request).
	oomKills    int
	timeouts    int
	throttles   int
	initCrashes int
}

// Platform is the simulator. It is not safe for concurrent use.
type Platform struct {
	cfg     Config
	now     time.Duration
	fns     map[string]*deployment
	order   []string
	aliases map[string]*aliasEntry
	// rng drives the fault injector and retry jitter; draws happen in a
	// fixed order per invocation so a fixed FaultSeed reproduces runs.
	rng *rand.Rand
	// aliasRng drives weighted alias routing from its own stream: alias
	// draws must not perturb the fault/jitter sequence, so a replay with no
	// aliases (or single-route aliases) consumes no draws and stays
	// byte-identical to an alias-free build.
	aliasRng *rand.Rand
}

// New creates a platform.
func New(cfg Config) *Platform {
	return &Platform{
		cfg:      cfg,
		fns:      make(map[string]*deployment),
		aliases:  make(map[string]*aliasEntry),
		rng:      rand.New(rand.NewSource(cfg.FaultSeed)),
		aliasRng: rand.New(rand.NewSource(cfg.FaultSeed ^ aliasSeedSalt)),
	}
}

// Now returns the platform timeline.
func (p *Platform) Now() time.Duration { return p.now }

// Advance moves the platform timeline forward (idle time between requests).
func (p *Platform) Advance(d time.Duration) {
	if d > 0 {
		p.now += d
	}
}

// Deploy registers an app under its name. Redeploying replaces the function
// and discards warm instances (AWS behaves the same on code updates — the
// paper exploits this to force cold starts).
//
// The memory configuration is fixed here: from the appspec's explicit
// MemoryMB if set, otherwise from a profiling invocation of the first
// oracle event on a scratch interpreter (not billed, not counted in
// FunctionStats). Configuring at deploy time — instead of latching the
// first invocation's peak — keeps billing and OOM enforcement independent
// of event arrival order.
func (p *Platform) Deploy(app *appspec.App) {
	if _, exists := p.fns[app.Name]; !exists {
		p.order = append(p.order, app.Name)
	}
	d := &deployment{app: app}
	if prev, exists := p.fns[app.Name]; exists {
		// Redeploying replaces the code but keeps routing config: the
		// fallback wiring survives a code update (on real platforms alias
		// routing is separate from the code artifact), so a repaired
		// artifact pushed over a fallback-equipped name keeps its safety
		// net instead of silently letting errors propagate.
		d.fallback = prev.fallback
	}
	if app.MemoryMB > 0 {
		d.configuredMB = p.cfg.Pricing.ConfigureMemory(float64(app.MemoryMB))
	} else {
		d.configuredMB = p.cfg.Pricing.ConfigureMemory(p.profilePeakMB(app))
	}
	p.fns[app.Name] = d
	if tr := p.cfg.Tracer; tr != nil {
		tr.StartChild(nil, "deploy "+app.Name, "faas", p.now).
			Add(obs.Int("memory_mb", int64(d.configuredMB))).
			Finish(p.now)
		tr.Metrics().Inc("faas.deploys", 1)
	}
}

// profilePeakMB measures the app's peak footprint (runtime base included)
// by importing the entry module and running the handler once with the
// first oracle event on a throwaway interpreter. Errors are tolerated:
// whatever peak was reached before the failure is what gets provisioned.
func (p *Platform) profilePeakMB(app *appspec.App) float64 {
	interp := pyruntime.New(app.Image)
	mod, perr := interp.Import(app.Entry)
	if perr == nil {
		if handler, ok := mod.Dict.Get(app.Handler); ok {
			event := map[string]any{}
			if len(app.Oracle) > 0 {
				event = app.Oracle[0].Event
			}
			if ev, err := pyruntime.FromGo(asAny(event)); err == nil {
				interp.CallFunction(handler, []pyruntime.Value{ev, contextValue(app)})
			}
		}
	}
	return simtime.MBf(interp.Alloc.Peak()) + p.cfg.BaseRuntimeMB
}

// DeployWithFallback registers a debloated app plus its original as the
// fallback function (§5.4).
func (p *Platform) DeployWithFallback(debloated, original *appspec.App) {
	fallbackName := original.Name + "-fallback"
	orig := original.Clone()
	orig.Name = fallbackName
	p.Deploy(orig)
	p.Deploy(debloated)
	p.fns[debloated.Name].fallback = fallbackName
}

// DeployWithSnapStart registers an app whose cold starts restore from a
// checkpoint instead of re-initializing.
func (p *Platform) DeployWithSnapStart(app *appspec.App, cfg SnapStartConfig) {
	p.Deploy(app)
	p.fns[app.Name].snapstart = &cfg
}

// InvalidateWarm discards all warm instances of a function (the paper
// triggers this by updating the function description between invocations).
func (p *Platform) InvalidateWarm(name string) {
	if d, ok := p.fns[name]; ok {
		d.instances = nil
	}
}

// Stats summarizes a deployment's lifetime counters. Failure counters are
// per attempt: a request that throttles twice and then succeeds counts
// three invocations and two throttles.
type Stats struct {
	Invocations int
	ColdStarts  int
	OOMKills    int
	Timeouts    int
	Throttles   int
	InitCrashes int
}

// Failures is the total of all platform-level failure counters.
func (s Stats) Failures() int {
	return s.OOMKills + s.Timeouts + s.Throttles + s.InitCrashes
}

// FunctionStats returns counters for a deployed function.
func (p *Platform) FunctionStats(name string) (Stats, bool) {
	d, ok := p.fns[name]
	if !ok {
		return Stats{}, false
	}
	return Stats{
		Invocations: d.invocations,
		ColdStarts:  d.coldStarts,
		OOMKills:    d.oomKills,
		Timeouts:    d.timeouts,
		Throttles:   d.throttles,
		InitCrashes: d.initCrashes,
	}, true
}

// Invoke sends an event to a function at the current platform time.
func (p *Platform) Invoke(name string, event map[string]any) (*Invocation, error) {
	return p.invokeNamed(name, event, true, nil)
}

// invokeNamed resolves the deployment, invokes it, and serves the fallback
// path when an AttributeError escapes a fallback-equipped function. The
// parent span, when tracing, groups the primary and fallback (or retry)
// invocations under one client-visible request.
func (p *Platform) invokeNamed(name string, event map[string]any, advanceClock bool, parent *obs.Span) (*Invocation, error) {
	target := p.resolveAlias(name)
	d, ok := p.fns[target]
	if !ok {
		return nil, fmt.Errorf("faas: no function named %q", target)
	}
	inv, err := p.invoke(d, event, advanceClock, parent)
	if err != nil {
		return nil, err
	}

	// Fallback path: AttributeError in a debloated function re-invokes the
	// original as an independent serverless function (§5.4, Table 4).
	if inv.Err != nil && d.fallback != "" && isAttributeError(inv.Err) {
		if tr := p.cfg.Tracer; tr != nil {
			tr.Emit("faas.fallback", p.now,
				obs.String("fn", target), obs.String("to", d.fallback))
			tr.Metrics().Inc("faas.fallbacks", 1)
		}
		fb := p.fns[d.fallback]
		fbInv, ferr := p.invoke(fb, event, advanceClock, parent)
		if ferr != nil {
			return nil, ferr
		}
		total := *fbInv
		total.Function = target
		total.FallbackUsed = true
		total.FallbackKind = fbInv.Kind
		total.Kind = inv.Kind
		// E2E: failed primary attempt + wrapper setup + fallback E2E.
		total.E2E = inv.E2E + p.cfg.FallbackSetup + fbInv.E2E
		// The user pays for both attempts.
		total.CostUSD = inv.CostUSD + fbInv.CostUSD
		total.BilledDuration = inv.BilledDuration + fbInv.BilledDuration
		total.Err = nil
		return &total, nil
	}
	return inv, nil
}

func isAttributeError(err error) bool {
	// Walk the implicit exception chain (__context__): an AttributeError
	// that application code caught and re-wrapped in a derived error still
	// means the debloated artifact is missing an attribute.
	pe, ok := err.(*pyruntime.PyErr)
	return ok && pe.HasClass("AttributeError")
}

func (p *Platform) invoke(d *deployment, event map[string]any, advanceClock bool, parent *obs.Span) (*Invocation, error) {
	d.invocations++
	inv := &Invocation{Function: d.app.Name, MemoryMB: d.configuredMB}
	start := p.now

	// Chaos: a scheduled incident may reject this request up front (zone
	// outage, throttle storm) or stretch its phases below. The directive
	// is a pure function of (function, virtual time) — no draw comes from
	// the platform's fault stream.
	var chaos ChaosDirective
	if p.cfg.Chaos != nil {
		chaos = p.cfg.Chaos.Directive(d.app.Name, p.now)
	}
	if chaos.Reject {
		class := chaos.RejectClass
		if class == FailureNone {
			class = FailureUnavailable
		}
		if class == FailureThrottle {
			d.throttles++
		}
		detail := chaos.Detail
		if detail == "" {
			detail = "chaos incident"
		}
		inv.Class = class
		inv.Err = &FailureError{Class: class, Function: d.app.Name, Detail: detail}
		inv.E2E = p.cfg.RoutingOverhead
		if advanceClock {
			p.now += inv.E2E
		}
		p.recordInvocation(parent, start, inv)
		return inv, nil
	}

	// Throttling: under a per-function concurrency limit, a request that
	// arrives while that many instances are busy is rejected up front —
	// never billed, never assigned an instance (Lambda's 429).
	if lim := p.cfg.Faults.ConcurrencyLimit; p.cfg.Faults.Enabled && lim > 0 {
		if p.busyInstances(d) >= lim {
			d.throttles++
			inv.Class = FailureThrottle
			inv.Err = &FailureError{Class: FailureThrottle, Function: d.app.Name,
				Detail: fmt.Sprintf("concurrency limit %d reached", lim)}
			inv.E2E = p.cfg.RoutingOverhead
			if advanceClock {
				p.now += inv.E2E
			}
			p.recordInvocation(parent, start, inv)
			return inv, nil
		}
	}

	inst := p.warmInstance(d)
	coldInstance := inst == nil
	if coldInstance {
		inst = &instance{}
		inv.Kind = ColdStart
		d.coldStarts++

		// Provider-side, unbilled phases.
		if p.cfg.UseAppSetupDelay {
			delay := time.Duration(d.app.SetupDelayMS * float64(time.Millisecond))
			// Split for reporting: instance init vs image transmission,
			// 40/60 as a fixed convention.
			inv.InstanceInit = delay * 2 / 5
			inv.ImageTransfer = delay - inv.InstanceInit
		} else {
			inv.InstanceInit = p.cfg.InstanceInit
			if p.cfg.TransferRateMBps > 0 {
				inv.ImageTransfer = time.Duration(d.app.ImageSizeMB / p.cfg.TransferRateMBps * float64(time.Second))
			}
		}
		// Fault draw 1 (cold): a slow cold start stretches the
		// provider-side phases (contended image cache / placement).
		if p.faultFires(p.cfg.Faults.SlowColdRate) && p.cfg.Faults.SlowColdFactor > 1 {
			inv.InstanceInit = time.Duration(float64(inv.InstanceInit) * p.cfg.Faults.SlowColdFactor)
			inv.ImageTransfer = time.Duration(float64(inv.ImageTransfer) * p.cfg.Faults.SlowColdFactor)
			p.emitFault("slow-cold", d.app.Name)
		}

		// Function Initialization: import the entry module.
		interp := pyruntime.New(d.app.Image)
		t0 := interp.Clock.Now()
		m0 := interp.Alloc.Used()
		mod, perr := interp.Import(d.app.Entry)
		if perr != nil {
			inv.Err = perr
			inv.Class = FailureHandler
			inv.E2E = p.cfg.RoutingOverhead + inv.InstanceInit + inv.ImageTransfer + (interp.Clock.Now() - t0)
			p.recordInvocation(parent, start, inv)
			return inv, nil
		}
		handler, ok := mod.Dict.Get(d.app.Handler)
		if !ok {
			return nil, fmt.Errorf("faas: %s: handler %q not found", d.app.Name, d.app.Handler)
		}
		inst.interp = interp
		inst.handler = handler
		inst.initTime = interp.Clock.Now() - t0
		inst.initMemMB = simtime.MBf(interp.Alloc.Used() - m0)
		inv.Init = inst.initTime
		if d.snapstart != nil {
			// Restoring the snapshot replaces re-initialization: the
			// interpreter state is built the same way (semantics), but
			// the observable latency is the restore time and the charge
			// is the per-GB restore fee instead of billed duration.
			inv.Init = d.snapstart.RestoreTime
			inv.SnapStartRestore = true
			inv.RestoreFeeUSD = d.snapstart.RestoreFeeUSD
		}
		// Chaos: a dependency brownout stretches the import window (billed,
		// like any initialization). SnapStart restores do not import.
		if chaos.InitFactor > 1 && !inv.SnapStartRestore {
			inv.Init = time.Duration(float64(inv.Init) * chaos.InitFactor)
		}
		// Fault draw 2 (cold): a transient init crash kills the fresh
		// environment at the end of initialization. The init duration is
		// billed (Lambda bills a failed INIT phase) and the instance never
		// joins the pool, so a client retry pays a fresh cold start.
		if p.faultFires(p.cfg.Faults.InitCrashRate) {
			p.emitFault("init-crash", d.app.Name)
			d.initCrashes++
			inv.Class = FailureInitCrash
			inv.Err = &FailureError{Class: FailureInitCrash, Function: d.app.Name,
				Detail: "transient crash during function initialization"}
			inv.PeakMB = simtime.MBf(interp.Alloc.Peak()) + p.cfg.BaseRuntimeMB
			if !inv.SnapStartRestore {
				inv.BilledDuration = p.cfg.Pricing.BillDuration(inv.Init)
			}
			inv.CostUSD = p.cfg.Pricing.Cost(inv.BilledDuration, inv.MemoryMB) + inv.RestoreFeeUSD
			inv.E2E = p.cfg.RoutingOverhead + inv.InstanceInit + inv.ImageTransfer + inv.Init
			if advanceClock {
				p.now += inv.E2E
			}
			p.recordInvocation(parent, start, inv)
			return inv, nil
		}
	} else {
		inv.Kind = WarmStart
	}

	// Function Execution.
	interp := inst.interp
	evValue, err := pyruntime.FromGo(asAny(event))
	if err != nil {
		return nil, fmt.Errorf("faas: bad event: %w", err)
	}
	ctx := contextValue(d.app)
	t0 := interp.Clock.Now()
	out0 := len(interp.OutputString())
	result, perr := interp.CallFunction(inst.handler, []pyruntime.Value{evValue, ctx})
	inv.Exec = interp.Clock.Now() - t0
	inv.Stdout = interp.OutputString()[out0:]
	if perr != nil {
		inv.Err = perr
		inv.Class = FailureHandler
	} else {
		inv.Result = pyruntime.Repr(result)
	}
	// Chaos: a latency storm stretches execution (billed; the kill logic
	// below sees the stretched window).
	if chaos.ExecFactor > 1 {
		inv.Exec = time.Duration(float64(inv.Exec) * chaos.ExecFactor)
	}

	// Footprint. Fault draw 3 (every attempt): an input-dependent memory
	// spike inflates this invocation's footprint without changing the
	// deployment's configuration.
	inv.PeakMB = simtime.MBf(interp.Alloc.Peak()) + p.cfg.BaseRuntimeMB
	if p.faultFires(p.cfg.Faults.MemorySpikeRate) && p.cfg.Faults.MemorySpikeMB > 0 {
		inv.PeakMB += p.cfg.Faults.MemorySpikeMB
		p.emitFault("memory-spike", d.app.Name)
	}

	// Failure enforcement over the billed window, in chronological order:
	// whichever of OOM (footprint crosses the configured memory, assumed
	// to grow linearly across the window) and timeout strikes first kills
	// the invocation; the partial duration up to the kill is billed.
	window := inv.Exec
	if inv.Kind == ColdStart && !inv.SnapStartRestore {
		window += inv.Init
	}
	killAt := window
	killClass := FailureNone
	var killDetail string
	if p.cfg.EnforceMemory && inv.MemoryMB > 0 && inv.PeakMB > float64(inv.MemoryMB) {
		killAt = time.Duration(float64(window) * float64(inv.MemoryMB) / inv.PeakMB)
		killClass = FailureOOM
		killDetail = fmt.Sprintf("peak %.1f MB exceeds configured %d MB", inv.PeakMB, inv.MemoryMB)
	}
	if timeout := d.timeout(p.cfg); timeout > 0 && window > timeout && timeout < killAt {
		killAt = timeout
		killClass = FailureTimeout
		killDetail = fmt.Sprintf("billed window %v exceeds timeout %v", window, timeout)
	}

	instanceDied := false
	if killClass != FailureNone {
		initBilled := window - inv.Exec // init share of the billed window
		if killAt < initBilled {
			// Killed while still initializing: the environment never
			// became serviceable.
			inv.Init = killAt
			inv.Exec = 0
			instanceDied = true
		} else {
			inv.Exec = killAt - initBilled
		}
		inv.Class = killClass
		inv.Err = &FailureError{Class: killClass, Function: d.app.Name, Detail: killDetail}
		inv.Result = ""
		switch killClass {
		case FailureOOM:
			// An OOM kill tears the whole environment down.
			d.oomKills++
			instanceDied = true
		case FailureTimeout:
			// A timeout restarts the runtime but the environment is
			// reused (unless it died during init above).
			d.timeouts++
		}
	}

	// Billing: partial duration up to the kill, full window otherwise.
	billed := inv.Exec
	if inv.Kind == ColdStart && !inv.SnapStartRestore {
		billed += inv.Init
	}
	inv.BilledDuration = p.cfg.Pricing.BillDuration(billed)
	inv.CostUSD = p.cfg.Pricing.Cost(inv.BilledDuration, inv.MemoryMB) + inv.RestoreFeeUSD

	inv.E2E = p.cfg.RoutingOverhead + inv.InstanceInit + inv.ImageTransfer + inv.Init + inv.Exec

	if instanceDied {
		if !coldInstance {
			p.dropInstance(d, inst)
		}
	} else {
		if coldInstance {
			d.instances = append(d.instances, inst)
		}
		inst.busyUntil = p.now + inv.E2E
		inst.lastUsed = inst.busyUntil
	}
	if advanceClock {
		p.now += inv.E2E
	}
	p.recordInvocation(parent, start, inv)
	return inv, nil
}

// timeout resolves the effective timeout for this deployment: the app's
// own TimeoutMS, else the platform default, else none.
func (d *deployment) timeout(cfg Config) time.Duration {
	if d.app.TimeoutMS > 0 {
		return time.Duration(d.app.TimeoutMS * float64(time.Millisecond))
	}
	return cfg.DefaultTimeout
}

// faultFires draws from the seeded injector stream. No draw is consumed
// when the injector is disabled or the rate is zero, so fault-free runs
// stay byte-identical to pre-failure-model behavior.
func (p *Platform) faultFires(rate float64) bool {
	if !p.cfg.Faults.Enabled || rate <= 0 {
		return false
	}
	return p.rng.Float64() < rate
}

// busyInstances counts instances still serving a request at the current
// platform time.
func (p *Platform) busyInstances(d *deployment) int {
	n := 0
	for _, inst := range d.instances {
		if inst.busyUntil > p.now {
			n++
		}
	}
	return n
}

// dropInstance removes a dead instance from the pool.
func (p *Platform) dropInstance(d *deployment, dead *instance) {
	live := d.instances[:0]
	for _, inst := range d.instances {
		if inst != dead {
			live = append(live, inst)
		}
	}
	d.instances = live
}

// warmInstance returns an idle live instance or nil, expiring stale ones.
// Instances still serving a request (busyUntil in the future) are kept but
// not eligible — that is what turns a burst into a cold-start storm.
func (p *Platform) warmInstance(d *deployment) *instance {
	live := d.instances[:0]
	var found *instance
	for _, inst := range d.instances {
		if inst.busyUntil <= p.now && p.now-inst.lastUsed > p.cfg.KeepAlive {
			inst.expired = true
			continue
		}
		live = append(live, inst)
		if inst.busyUntil > p.now {
			continue // still serving a request
		}
		if found == nil {
			found = inst
		}
	}
	d.instances = live
	return found
}

// InvokeBurst delivers n copies of event concurrently at the current
// platform time — the scale-out burst the paper's introduction motivates
// ("scale-out architectures that lead to very bursty workloads"). Idle
// warm instances serve what they can; every request beyond that pays a
// full cold start. The platform clock advances by the slowest E2E.
func (p *Platform) InvokeBurst(name string, event map[string]any, n int) ([]*Invocation, error) {
	d, ok := p.fns[name]
	if !ok {
		return nil, fmt.Errorf("faas: no function named %q", name)
	}
	out := make([]*Invocation, 0, n)
	var maxE2E time.Duration
	for i := 0; i < n; i++ {
		inv, err := p.invoke(d, event, false, nil)
		if err != nil {
			return nil, err
		}
		if inv.E2E > maxE2E {
			maxE2E = inv.E2E
		}
		out = append(out, inv)
	}
	p.now += maxE2E
	return out, nil
}

func contextValue(app *appspec.App) pyruntime.Value {
	ctx := pyruntime.NewDict()
	ctx.SetStr("function_name", pyruntime.StrV(app.Name))
	ctx.SetStr("function_version", pyruntime.StrV("$LATEST"))
	ctx.SetStr("memory_limit_in_mb", pyruntime.IntV(3008))
	return ctx
}

func asAny(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	return m
}

// MeasureColdStart deploys the app on a fresh platform and performs one
// cold invocation with the first oracle event — the basic measurement
// behind Table 1 and Figure 2.
func MeasureColdStart(app *appspec.App, cfg Config) (*Invocation, error) {
	p := New(cfg)
	p.Deploy(app)
	event := map[string]any{}
	if len(app.Oracle) > 0 {
		event = app.Oracle[0].Event
	}
	inv, err := p.Invoke(app.Name, event)
	if err != nil {
		return nil, err
	}
	if inv.Err != nil {
		return nil, fmt.Errorf("faas: %s cold start raised: %v", app.Name, inv.Err)
	}
	return inv, nil
}

// MeasureWarmStart performs one cold start to prime an instance, then one
// warm invocation, returning the warm record.
func MeasureWarmStart(app *appspec.App, cfg Config) (*Invocation, error) {
	p := New(cfg)
	p.Deploy(app)
	event := map[string]any{}
	if len(app.Oracle) > 0 {
		event = app.Oracle[0].Event
	}
	if _, err := p.Invoke(app.Name, event); err != nil {
		return nil, err
	}
	inv, err := p.Invoke(app.Name, event)
	if err != nil {
		return nil, err
	}
	if inv.Kind != WarmStart {
		return nil, fmt.Errorf("faas: expected warm start for %s", app.Name)
	}
	return inv, nil
}
