// Failure semantics for the platform simulator: a taxonomy of
// platform-level failures (OOM kills, timeouts, throttles, transient init
// crashes), a deterministic seed-driven fault injector, and a client-side
// retry policy with exponential backoff and per-attempt cost accounting.
//
// The model follows AWS Lambda's behavior: an invocation whose footprint
// exceeds the configured memory is killed and the partial duration billed;
// a timeout kills the billed window at the configured bound; a request
// over the concurrency limit is rejected up front (429) and never billed;
// a failed initialization is billed and destroys the fresh environment.
// Client retries are what the AWS SDKs do — capped exponential backoff
// with jitter — and every billed attempt lands on the customer's invoice.
package faas

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/obs"
)

// FailureClass classifies how an invocation ended.
type FailureClass int

const (
	// FailureNone marks a successful invocation.
	FailureNone FailureClass = iota
	// FailureHandler is an application-level exception (including the
	// AttributeError a debloated function raises on an uncovered path).
	// Retrying cannot help: the same input hits the same code.
	FailureHandler
	// FailureOOM is a kill for exceeding the configured memory.
	FailureOOM
	// FailureTimeout is a kill for exceeding the function timeout.
	FailureTimeout
	// FailureThrottle is an up-front rejection under the concurrency
	// limit (never billed).
	FailureThrottle
	// FailureInitCrash is a transient crash during Function
	// Initialization (billed; the environment is destroyed).
	FailureInitCrash
	// FailureUnavailable is an up-front rejection because the platform
	// side is down — a chaos-injected zone outage. Never billed;
	// retryable (an independent attempt may land on a healthy host).
	FailureUnavailable
)

func (c FailureClass) String() string {
	switch c {
	case FailureNone:
		return "ok"
	case FailureHandler:
		return "handler-error"
	case FailureOOM:
		return "oom"
	case FailureTimeout:
		return "timeout"
	case FailureThrottle:
		return "throttle"
	case FailureInitCrash:
		return "init-crash"
	case FailureUnavailable:
		return "unavailable"
	}
	return fmt.Sprintf("failure(%d)", int(c))
}

// FailureError is the error carried by an invocation the platform killed
// or rejected.
type FailureError struct {
	Class    FailureClass
	Function string
	Detail   string
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("faas: %s: %s: %s", e.Function, e.Class, e.Detail)
}

// Classify maps an invocation error to its failure class: platform
// failures keep their class (however deeply wrapped), interpreter
// exceptions and every other error are handler errors.
func Classify(err error) FailureClass {
	if err == nil {
		return FailureNone
	}
	var fe *FailureError
	if errors.As(err, &fe) {
		return fe.Class
	}
	return FailureHandler
}

// FaultConfig parameterizes the deterministic fault injector. All draws
// come from the platform's FaultSeed stream in a fixed per-invocation
// order (slow-cold, init-crash on cold starts; memory-spike on every
// attempt), so a fixed seed and workload reproduce byte-identical logs.
type FaultConfig struct {
	// Enabled turns the injector on; the zero value injects nothing.
	Enabled bool
	// InitCrashRate is the probability a cold start's initialization
	// transiently crashes (billed, environment destroyed, retryable).
	InitCrashRate float64
	// SlowColdRate and SlowColdFactor stretch the provider-side cold
	// phases (instance init + image transfer) by the factor — the
	// occasional pathological cold start.
	SlowColdRate   float64
	SlowColdFactor float64
	// MemorySpikeRate and MemorySpikeMB inflate an invocation's footprint
	// by an absolute amount, modeling input-dependent memory. With
	// EnforceMemory on, a spike can push an otherwise-fitting invocation
	// over its configured memory.
	MemorySpikeRate float64
	MemorySpikeMB   float64
	// ConcurrencyLimit caps busy instances per function; requests beyond
	// it are throttled. Zero means unlimited.
	ConcurrencyLimit int
}

// RetryPolicy is a client-side retry loop: capped exponential backoff with
// seeded jitter, retrying only the failure classes that can plausibly
// clear (throttles, transient crashes, timeouts, spike-induced OOMs).
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included); values < 1
	// behave as 1.
	MaxAttempts int
	// InitialBackoff is the base wait before the second attempt.
	InitialBackoff time.Duration
	// BackoffMultiplier grows the wait per attempt (2 = doubling).
	BackoffMultiplier float64
	// MaxBackoff caps a single wait.
	MaxBackoff time.Duration
	// Jitter in [0,1] randomizes that fraction of each wait, drawn from
	// the platform's seeded stream (0 = fully deterministic waits).
	Jitter float64
	// RetryOn lists the retryable classes; nil means the default set
	// (throttle, init-crash, timeout, OOM — everything but handler
	// errors, which are deterministic).
	RetryOn []FailureClass
	// Budget, when non-nil, caps the total number of retries across every
	// request sharing the budget, per sliding sim-time window. Per-request
	// backoff bounds amplification within one request; the budget bounds it
	// across the client — N throttled requests retrying in lockstep are
	// exactly the storm that re-throttles itself. Nil means unlimited
	// (prior behavior, byte-identical).
	Budget *RetryBudget
}

// RetryBudget is a sliding-window cap on total client-side retries. Share
// one budget across the requests of a logical client (a driver loop, a
// rollout arm) so injected throttling cannot amplify into a retry storm:
// once the window's retries are spent, further failures return to the
// caller immediately instead of re-entering the backoff loop.
//
// Spend times come from the platform's virtual clock, so budget decisions
// are deterministic. Not safe for concurrent use (like Platform itself).
type RetryBudget struct {
	// MaxRetries is the cap per window; values < 1 deny every retry.
	MaxRetries int
	// Window is the sliding sim-time window; <= 0 means the cap applies
	// to the whole run (spent retries never expire).
	Window time.Duration

	spent []time.Duration // sliding-window charge times, ascending (Window > 0 only)
	used  int             // whole-run charges (Window <= 0); no per-charge storage
}

// NewRetryBudget builds a budget allowing maxRetries per window.
func NewRetryBudget(maxRetries int, window time.Duration) *RetryBudget {
	return &RetryBudget{MaxRetries: maxRetries, Window: window}
}

// Spend charges one retry at the given sim time. It reports false — and
// charges nothing — when the window's cap is already spent.
func (b *RetryBudget) Spend(now time.Duration) bool {
	if b.Window <= 0 {
		if b.used >= b.MaxRetries {
			return false
		}
		b.used++
		return true
	}
	b.prune(now)
	if len(b.spent) >= b.MaxRetries {
		return false
	}
	b.spent = append(b.spent, now)
	return true
}

// Remaining reports how many retries the window has left at the given time.
func (b *RetryBudget) Remaining(now time.Duration) int {
	var n int
	if b.Window <= 0 {
		n = b.MaxRetries - b.used
	} else {
		b.prune(now)
		n = b.MaxRetries - len(b.spent)
	}
	if n > 0 {
		return n
	}
	return 0
}

// prune expires charges older than the window. Charges arrive in ascending
// time order, so expiry is a prefix cut — compacted to the front of the
// backing array so a long run keeps at most MaxRetries entries resident
// instead of leaking an ever-growing expired prefix.
func (b *RetryBudget) prune(now time.Duration) {
	cut := now - b.Window
	i := 0
	for i < len(b.spent) && b.spent[i] <= cut {
		i++
	}
	if i > 0 {
		n := copy(b.spent, b.spent[i:])
		b.spent = b.spent[:n]
	}
}

// allowRetry charges one retry to the policy's budget (nil = unlimited).
func (rp RetryPolicy) allowRetry(now time.Duration) bool {
	return rp.Budget == nil || rp.Budget.Spend(now)
}

// DefaultRetryPolicy mirrors the AWS SDK defaults: 3 attempts, 100 ms
// base, doubling, 5 s cap, half-jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       3,
		InitialBackoff:    100 * time.Millisecond,
		BackoffMultiplier: 2,
		MaxBackoff:        5 * time.Second,
		Jitter:            0.5,
	}
}

// retries reports whether the policy retries the class.
func (rp RetryPolicy) retries(c FailureClass) bool {
	if c == FailureNone {
		return false
	}
	if rp.RetryOn == nil {
		return c == FailureThrottle || c == FailureInitCrash ||
			c == FailureTimeout || c == FailureOOM || c == FailureUnavailable
	}
	for _, rc := range rp.RetryOn {
		if rc == c {
			return true
		}
	}
	return false
}

// backoff computes the wait after the given (1-based) failed attempt.
func (rp RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := rp.InitialBackoff
	if base <= 0 {
		return 0
	}
	mult := rp.BackoffMultiplier
	if mult < 1 {
		mult = 1
	}
	wait := float64(base)
	for i := 1; i < attempt; i++ {
		wait *= mult
		if rp.MaxBackoff > 0 && wait > float64(rp.MaxBackoff) {
			wait = float64(rp.MaxBackoff)
			break
		}
	}
	if rp.MaxBackoff > 0 && wait > float64(rp.MaxBackoff) {
		wait = float64(rp.MaxBackoff)
	}
	if rp.Jitter > 0 {
		j := rp.Jitter
		if j > 1 {
			j = 1
		}
		wait = wait*(1-j) + wait*j*rng.Float64()
	}
	return time.Duration(wait)
}

// retryState accumulates one logical request across attempts.
type retryState struct {
	last    *Invocation
	costs   []float64
	billed  time.Duration
	e2e     time.Duration
	backoff time.Duration
	done    bool
	span    *obs.Span // "request" span grouping the attempts (nil untraced)
}

func (st *retryState) absorb(inv *Invocation, attempt int) {
	inv.Attempt = attempt
	st.last = inv
	st.costs = append(st.costs, inv.CostUSD)
	st.billed += inv.BilledDuration
	st.e2e += inv.E2E
}

// finalize builds the aggregate client-visible record: the last attempt's
// outcome with cost, billed duration and E2E summed across every attempt
// plus the backoff waits.
func (st *retryState) finalize() *Invocation {
	out := *st.last
	out.Attempts = len(st.costs)
	out.AttemptCostsUSD = st.costs
	out.BackoffWait = st.backoff
	out.BilledDuration = st.billed
	out.E2E = st.e2e + st.backoff
	total := 0.0
	for _, c := range st.costs {
		total += c
	}
	out.CostUSD = total
	return &out
}

// InvokeWithRetry sends an event and retries platform-transient failures
// per the policy, advancing the platform clock through each backoff. The
// returned record carries the final outcome with aggregate cost, billed
// duration, E2E (attempts + waits) and the per-attempt bills.
func (p *Platform) InvokeWithRetry(name string, event map[string]any, pol RetryPolicy) (*Invocation, error) {
	maxA := pol.MaxAttempts
	if maxA < 1 {
		maxA = 1
	}
	tr := p.cfg.Tracer
	var st retryState
	if tr != nil {
		st.span = tr.StartChild(nil, "request "+name, "faas", p.now)
	}
	for attempt := 1; attempt <= maxA; attempt++ {
		inv, err := p.invokeNamed(name, event, true, st.span)
		if err != nil {
			return nil, err
		}
		st.absorb(inv, attempt)
		tr.Metrics().Inc("faas.retry.attempts", 1)
		if inv.Err == nil || !pol.retries(inv.Class) || attempt == maxA {
			break
		}
		if !pol.allowRetry(p.now) {
			p.noteBudgetExhausted(name)
			break
		}
		wait := pol.backoff(attempt, p.rng)
		st.backoff += wait
		p.recordBackoff(st.span, attempt, wait)
		p.Advance(wait)
	}
	out := st.finalize()
	st.close(p, out, p.now)
	return out, nil
}

// noteBudgetExhausted records a retry denied by an exhausted budget.
func (p *Platform) noteBudgetExhausted(name string) {
	if tr := p.cfg.Tracer; tr != nil {
		tr.Emit("faas.retry.budget_exhausted", p.now, obs.String("fn", name))
		tr.Metrics().Inc("faas.retry.budget_denied", 1)
	}
}

// recordBackoff records one backoff wait as a child span of the request,
// starting at the current platform time, plus the aggregate wait counter.
func (p *Platform) recordBackoff(req *obs.Span, attempt int, wait time.Duration) {
	tr := p.cfg.Tracer
	if tr == nil {
		return
	}
	tr.StartChild(req, "backoff", "faas", p.now).
		Add(obs.Int("after_attempt", int64(attempt))).
		Finish(p.now + wait)
}

// close finishes the request span at the request's completion time with the
// aggregate outcome, and counts requests that needed more than one attempt.
func (st *retryState) close(p *Platform, out *Invocation, end time.Duration) {
	tr := p.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Metrics().Inc("faas.retry.requests", 1)
	tr.Metrics().Inc("faas.retry.backoff_wait_us", out.BackoffWait.Microseconds())
	if out.Attempts > 1 {
		tr.Metrics().Inc("faas.retry.retried_requests", 1)
	}
	st.span.Add(
		obs.Int("attempts", int64(out.Attempts)),
		obs.String("class", out.Class.String()),
		obs.DurationUS("backoff_us", out.BackoffWait),
	).Finish(end)
}

// InvokeGroupWithRetry delivers all events concurrently at the current
// platform time (like InvokeBurst — this is what builds up the
// concurrency that trips a throttle limit), then drives each failed
// retryable request through the policy's sequential backoff-and-retry
// loop. Records are returned in event order with the same per-attempt
// accounting as InvokeWithRetry.
func (p *Platform) InvokeGroupWithRetry(name string, events []map[string]any, pol RetryPolicy) ([]*Invocation, error) {
	if len(events) == 0 {
		return nil, nil
	}
	maxA := pol.MaxAttempts
	if maxA < 1 {
		maxA = 1
	}
	tr := p.cfg.Tracer
	groupStart := p.now
	states := make([]retryState, len(events))
	var maxE2E time.Duration
	for i, ev := range events {
		st := &states[i]
		if tr != nil {
			st.span = tr.StartChild(nil, "request "+name, "faas", groupStart)
			st.span.Add(obs.Int("group_index", int64(i)))
		}
		inv, err := p.invokeNamed(name, ev, false, st.span)
		if err != nil {
			return nil, err
		}
		st.absorb(inv, 1)
		tr.Metrics().Inc("faas.retry.attempts", 1)
		st.done = inv.Err == nil || !pol.retries(inv.Class) || maxA == 1
		if inv.E2E > maxE2E {
			maxE2E = inv.E2E
		}
	}
	p.now += maxE2E

	// Stragglers retry sequentially, in event order.
	ends := make([]time.Duration, len(events))
	for i := range states {
		st := &states[i]
		ends[i] = groupStart + st.e2e
		for !st.done {
			if !pol.allowRetry(p.now) {
				p.noteBudgetExhausted(name)
				break
			}
			wait := pol.backoff(len(st.costs), p.rng)
			st.backoff += wait
			p.recordBackoff(st.span, len(st.costs), wait)
			p.Advance(wait)
			inv, err := p.invokeNamed(name, events[i], true, st.span)
			if err != nil {
				return nil, err
			}
			st.absorb(inv, len(st.costs)+1)
			tr.Metrics().Inc("faas.retry.attempts", 1)
			st.done = inv.Err == nil || !pol.retries(inv.Class) || len(st.costs) >= maxA
			ends[i] = p.now
		}
	}

	out := make([]*Invocation, len(events))
	for i := range states {
		out[i] = states[i].finalize()
		states[i].close(p, out[i], ends[i])
	}
	return out, nil
}

// logAttrs builds the invocation's canonical attribute list — the single
// source of truth behind both the k=v log line and the JSONL event log.
// Values are pre-formatted strings so every rendering agrees byte-for-byte.
func (inv *Invocation) logAttrs() []obs.Attr {
	attempts := inv.Attempts
	if attempts == 0 {
		attempts = 1
	}
	attrs := []obs.Attr{
		obs.String("fn", inv.Function),
		obs.String("kind", inv.Kind.String()),
		obs.String("class", inv.Class.String()),
		obs.Int("attempts", int64(attempts)),
		obs.DurationUS("init_us", inv.Init),
		obs.DurationUS("exec_us", inv.Exec),
		obs.DurationUS("e2e_us", inv.E2E),
		obs.DurationUS("billed_us", inv.BilledDuration),
		obs.Int("mem_mb", int64(inv.MemoryMB)),
		{Key: "peak_mb", Val: strconv.FormatFloat(inv.PeakMB, 'f', 3, 64)},
		{Key: "cost_usd", Val: strconv.FormatFloat(inv.CostUSD, 'f', 12, 64)},
	}
	if inv.FallbackUsed {
		attrs = append(attrs, obs.String("fallback", inv.FallbackKind.String()))
	}
	if inv.Err != nil {
		attrs = append(attrs, obs.String("err", inv.Err.Error()))
	}
	return attrs
}

// LogLine renders the invocation as one canonical, fully-deterministic
// log record — the unit of the "same seed ⇒ byte-identical logs"
// guarantee. It is the k=v rendering of logAttrs; the JSONL event log is
// the structured rendering of the same attributes.
func (inv *Invocation) LogLine() string {
	return obs.LogLineFromAttrs(inv.logAttrs())
}
