package faas

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// memApp's handler allocates event-dependent memory and burns
// event-dependent CPU, so footprint and duration vary per request.
func memApp(name string) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    buf = native_alloc(event.get("mb", 10))
    compute(event.get("ms", 20))
    return {"ok": True}
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(100, 50)\n")
	return &appspec.App{
		Name: name, Image: fs, Entry: "handler", Handler: "handler",
		Oracle:       []appspec.TestCase{{Name: "light", Event: map[string]any{"mb": 10, "ms": 20}}},
		SetupDelayMS: 200, ImageSizeMB: 60,
	}
}

var (
	lightEvent = map[string]any{"mb": 10, "ms": 20}
	heavyEvent = map[string]any{"mb": 300, "ms": 20}
)

// Regression for the deploy-time memory configuration: invocation order
// must not change the configured memory (the old code latched the first
// invocation's peak, so a heavy-first workload was billed differently).
func TestMemoryConfiguredAtDeployNotFirstInvocation(t *testing.T) {
	run := func(events []map[string]any) []*Invocation {
		p := New(DefaultConfig())
		p.Deploy(memApp("fn"))
		var out []*Invocation
		for _, ev := range events {
			inv, err := p.Invoke("fn", ev)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, inv)
		}
		return out
	}

	lightFirst := run([]map[string]any{lightEvent, heavyEvent})
	heavyFirst := run([]map[string]any{heavyEvent, lightEvent})

	// The profiling invocation uses the light oracle event: peak ≈
	// 50 (lib) + 10 (alloc) + 35 (base) MB, under the 128 MB floor.
	for i, inv := range append(append([]*Invocation{}, lightFirst...), heavyFirst...) {
		if inv.MemoryMB != 128 {
			t.Errorf("invocation %d configured at %d MB, want the deploy-time 128", i, inv.MemoryMB)
		}
	}
	// And therefore the heavy event's bill no longer depends on order:
	// cold heavy (heavy-first) and cold light (light-first) share the
	// configuration, so the only cost difference is duration.
	if lightFirst[1].MemoryMB != heavyFirst[0].MemoryMB {
		t.Errorf("heavy event billed at %d vs %d MB depending on order",
			lightFirst[1].MemoryMB, heavyFirst[0].MemoryMB)
	}
}

func TestExplicitMemoryOverride(t *testing.T) {
	app := memApp("fn")
	app.MemoryMB = 512
	p := New(DefaultConfig())
	p.Deploy(app)
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.MemoryMB != 512 {
		t.Errorf("MemoryMB = %d, want the explicit 512", inv.MemoryMB)
	}
}

func TestOOMKill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceMemory = true
	p := New(cfg)
	p.Deploy(memApp("fn"))

	// Light event fits in the 128 MB configuration.
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err != nil || inv.Class != FailureNone {
		t.Fatalf("light event should fit: %v", inv.Err)
	}
	full := inv.BilledDuration

	// Heavy event exceeds it: killed, partial duration billed.
	oom, err := p.Invoke("fn", heavyEvent)
	if err != nil {
		t.Fatal(err)
	}
	if oom.Class != FailureOOM || oom.Err == nil {
		t.Fatalf("heavy event should OOM, got class=%s err=%v", oom.Class, oom.Err)
	}
	if Classify(oom.Err) != FailureOOM {
		t.Error("Classify should report OOM")
	}
	if oom.MemoryMB != 128 {
		t.Errorf("OOM must not reconfigure memory: %d MB", oom.MemoryMB)
	}
	if oom.BilledDuration <= 0 {
		t.Error("OOM kill should bill the partial duration")
	}
	if oom.Exec >= 20*time.Millisecond {
		t.Errorf("exec %v should be truncated at the kill", oom.Exec)
	}
	if oom.CostUSD <= 0 {
		t.Error("partial duration must cost something")
	}
	_ = full

	// The environment is torn down: the next request cold-starts.
	after, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if after.Kind != ColdStart {
		t.Error("OOM should destroy the instance")
	}
	stats, _ := p.FunctionStats("fn")
	if stats.OOMKills != 1 {
		t.Errorf("OOMKills = %d, want 1", stats.OOMKills)
	}
}

func TestOOMDisabledKeepsPermissiveBehavior(t *testing.T) {
	p := New(DefaultConfig()) // EnforceMemory off
	p.Deploy(memApp("fn"))
	inv, err := p.Invoke("fn", heavyEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err != nil || inv.Class != FailureNone {
		t.Errorf("without enforcement the heavy event must succeed: %v", inv.Err)
	}
}

func TestTimeoutKillsBilledWindow(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    compute(5000)
    return "done"
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(200, 20)\n")
	app := &appspec.App{
		Name: "slow", Image: fs, Entry: "handler", Handler: "handler",
		SetupDelayMS: 100, TimeoutMS: 1000,
	}
	p := New(DefaultConfig())
	p.Deploy(app)

	inv, err := p.Invoke("slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureTimeout {
		t.Fatalf("class = %s, want timeout", inv.Class)
	}
	// Cold window = init (~200ms) + exec, killed at exactly 1s.
	if inv.Init+inv.Exec != time.Second {
		t.Errorf("init+exec = %v, want the 1s timeout", inv.Init+inv.Exec)
	}
	if inv.Init < 200*time.Millisecond || inv.Init > 210*time.Millisecond {
		t.Errorf("init = %v, want ~200ms (untruncated)", inv.Init)
	}
	if inv.BilledDuration != time.Second {
		t.Errorf("billed = %v, want exactly the 1s timeout", inv.BilledDuration)
	}
	if inv.Result != "" {
		t.Error("a killed invocation must not return a result")
	}

	// The environment survives a timeout: warm next time, exec-only window.
	warm, err := p.Invoke("slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Kind != WarmStart || warm.Class != FailureTimeout {
		t.Fatalf("warm timeout expected, got kind=%s class=%s", warm.Kind, warm.Class)
	}
	if warm.Exec != time.Second {
		t.Errorf("warm exec = %v, want the 1s timeout", warm.Exec)
	}
	stats, _ := p.FunctionStats("slow")
	if stats.Timeouts != 2 {
		t.Errorf("Timeouts = %d, want 2", stats.Timeouts)
	}
}

func TestTimeoutDuringInitKillsInstance(t *testing.T) {
	app := memApp("initslow")
	app.TimeoutMS = 50 // below the 100ms import time
	p := New(DefaultConfig())
	p.Deploy(app)
	inv, err := p.Invoke("initslow", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureTimeout || inv.Init != 50*time.Millisecond || inv.Exec != 0 {
		t.Fatalf("init-phase timeout wrong: %+v", inv)
	}
	next, err := p.Invoke("initslow", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if next.Kind != ColdStart {
		t.Error("an environment killed during init must not be reused")
	}
}

func TestThrottleUnderConcurrencyLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{Enabled: true, ConcurrencyLimit: 2}
	p := New(cfg)
	p.Deploy(memApp("fn"))

	invs, err := p.InvokeBurst("fn", lightEvent, 4)
	if err != nil {
		t.Fatal(err)
	}
	throttled := 0
	for _, inv := range invs {
		if inv.Class == FailureThrottle {
			throttled++
			if inv.CostUSD != 0 || inv.BilledDuration != 0 {
				t.Error("throttled requests are never billed")
			}
			if inv.E2E != cfg.RoutingOverhead {
				t.Errorf("throttle E2E = %v, want routing overhead only", inv.E2E)
			}
		}
	}
	if throttled != 2 {
		t.Errorf("throttled %d of 4, want 2 beyond the limit", throttled)
	}
	stats, _ := p.FunctionStats("fn")
	if stats.Throttles != 2 || stats.ColdStarts != 2 {
		t.Errorf("stats = %+v", stats)
	}

	// Once the burst drains, requests flow again.
	p.Advance(time.Minute)
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureNone {
		t.Errorf("post-burst request failed: %v", inv.Err)
	}
}

func TestGroupRetryRecoversThrottles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{Enabled: true, ConcurrencyLimit: 2}
	p := New(cfg)
	p.Deploy(memApp("fn"))

	pol := DefaultRetryPolicy()
	pol.Jitter = 0
	events := []map[string]any{lightEvent, lightEvent, lightEvent, lightEvent}
	invs, err := p.InvokeGroupWithRetry("fn", events, pol)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for i, inv := range invs {
		if inv.Err != nil {
			t.Errorf("request %d failed despite retries: %v", i, inv.Err)
		}
		if inv.Attempts > 1 {
			retried++
			if inv.BackoffWait <= 0 {
				t.Error("retried request should have waited")
			}
			if len(inv.AttemptCostsUSD) != inv.Attempts {
				t.Errorf("attempt costs %d != attempts %d", len(inv.AttemptCostsUSD), inv.Attempts)
			}
			// The throttled first attempt was free; the sum of attempts
			// is the aggregate bill.
			total := 0.0
			for _, c := range inv.AttemptCostsUSD {
				total += c
			}
			if total != inv.CostUSD {
				t.Errorf("cost %.12f != attempt sum %.12f", inv.CostUSD, total)
			}
		}
	}
	if retried != 2 {
		t.Errorf("retried %d requests, want the 2 throttled ones", retried)
	}
}

// findCrashSeed locates a seed whose injector stream crashes the first
// cold start but not the second — so the retry test asserts exact
// behavior rather than probabilities.
func findCrashSeed(t *testing.T, rate float64) int64 {
	t.Helper()
	for s := int64(0); s < 1000; s++ {
		r := rand.New(rand.NewSource(s))
		if r.Float64() < rate && r.Float64() >= rate {
			return s
		}
	}
	t.Fatal("no suitable seed under 1000")
	return 0
}

func TestRetryRecoversTransientInitCrash(t *testing.T) {
	const rate = 0.6
	seed := findCrashSeed(t, rate)

	cfg := DefaultConfig()
	cfg.FaultSeed = seed
	cfg.Faults = FaultConfig{Enabled: true, InitCrashRate: rate}
	p := New(cfg)
	p.Deploy(memApp("fn"))

	pol := DefaultRetryPolicy()
	pol.Jitter = 0 // exact backoff assertions
	inv, err := p.InvokeWithRetry("fn", lightEvent, pol)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err != nil || inv.Class != FailureNone {
		t.Fatalf("retry should have recovered: class=%s err=%v", inv.Class, inv.Err)
	}
	if inv.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (crash, then success)", inv.Attempts)
	}
	if inv.BackoffWait != pol.InitialBackoff {
		t.Errorf("backoff = %v, want %v", inv.BackoffWait, pol.InitialBackoff)
	}
	if len(inv.AttemptCostsUSD) != 2 {
		t.Fatalf("attempt costs = %v", inv.AttemptCostsUSD)
	}
	// The crashed INIT is billed: the failed attempt appears on the bill.
	if inv.AttemptCostsUSD[0] <= 0 {
		t.Error("failed init attempt should cost money")
	}
	if inv.AttemptCostsUSD[0]+inv.AttemptCostsUSD[1] != inv.CostUSD {
		t.Error("aggregate cost must be the attempt sum")
	}
	if inv.AttemptCostsUSD[1] <= inv.AttemptCostsUSD[0] {
		t.Error("successful attempt (init+exec) should out-bill the crashed init")
	}
	stats, _ := p.FunctionStats("fn")
	if stats.InitCrashes != 1 || stats.ColdStarts != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestHandlerErrorsAreNotRetried(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
def handler(event, context):
    raise ValueError("deterministic bug")
`)
	app := &appspec.App{Name: "bad", Image: fs, Entry: "handler", Handler: "handler", SetupDelayMS: 50}
	p := New(DefaultConfig())
	p.Deploy(app)
	inv, err := p.InvokeWithRetry("bad", nil, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if inv.Attempts != 1 {
		t.Errorf("attempts = %d; deterministic handler errors must not retry", inv.Attempts)
	}
	if inv.Class != FailureHandler {
		t.Errorf("class = %s", inv.Class)
	}
}

func TestSlowColdStartFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{Enabled: true, SlowColdRate: 1, SlowColdFactor: 4}
	p := New(cfg)
	p.Deploy(memApp("fn"))
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	// SetupDelayMS 200 split 40/60 then stretched 4x.
	if inv.InstanceInit != 320*time.Millisecond {
		t.Errorf("instance init = %v, want 4x80ms", inv.InstanceInit)
	}
	if inv.ImageTransfer != 480*time.Millisecond {
		t.Errorf("image transfer = %v, want 4x120ms", inv.ImageTransfer)
	}
}

func TestMemorySpikeCausesTransientOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceMemory = true
	cfg.Faults = FaultConfig{Enabled: true, MemorySpikeRate: 1, MemorySpikeMB: 200}
	p := New(cfg)
	p.Deploy(memApp("fn"))
	inv, err := p.Invoke("fn", lightEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Class != FailureOOM {
		t.Fatalf("spiked invocation should OOM, got %s", inv.Class)
	}
	if inv.PeakMB <= 200 {
		t.Errorf("peak %f should include the 200MB spike", inv.PeakMB)
	}
}

func TestRetryBudgetWindowSemantics(t *testing.T) {
	b := NewRetryBudget(2, 10*time.Second)
	if !b.Spend(0) || !b.Spend(1*time.Second) {
		t.Fatal("first two retries fit the budget")
	}
	if b.Spend(2 * time.Second) {
		t.Error("third retry inside the window must be denied")
	}
	if b.Remaining(2*time.Second) != 0 {
		t.Error("window should be spent")
	}
	// 11.5s: both charges (at 0s and 1s) have aged out of the 10s window.
	if b.Remaining(11500*time.Millisecond) != 2 {
		t.Errorf("remaining = %d, want a fully recovered window", b.Remaining(11500*time.Millisecond))
	}
	if !b.Spend(11500 * time.Millisecond) {
		t.Error("expired charges must free the window")
	}

	// Window <= 0: whole-run cap, charges never expire.
	whole := NewRetryBudget(1, 0)
	if !whole.Spend(0) {
		t.Fatal("first retry fits")
	}
	if whole.Spend(time.Hour) {
		t.Error("whole-run budget must stay spent")
	}
}

func TestRetryBudgetCapsThrottleStorm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{Enabled: true, ConcurrencyLimit: 1}
	p := New(cfg)
	p.Deploy(memApp("fn"))

	pol := DefaultRetryPolicy()
	pol.Jitter = 0
	pol.Budget = NewRetryBudget(2, 0)
	events := []map[string]any{
		lightEvent, lightEvent, lightEvent, lightEvent, lightEvent, lightEvent,
	}
	invs, err := p.InvokeGroupWithRetry("fn", events, pol)
	if err != nil {
		t.Fatal(err)
	}
	totalRetries, stillThrottled := 0, 0
	for _, inv := range invs {
		totalRetries += inv.Attempts - 1
		if inv.Class == FailureThrottle {
			stillThrottled++
		}
	}
	if totalRetries != 2 {
		t.Errorf("total retries = %d, want exactly the 2 budgeted", totalRetries)
	}
	// 5 of 6 throttle; the 2 budgeted retries each recover one request,
	// the other 3 return throttled without re-entering the storm.
	if stillThrottled != 3 {
		t.Errorf("still throttled = %d, want 3 (budget denied their retries)", stillThrottled)
	}
}

// Property: the budget's sliding-window invariant — within any window
// ending at a grant, at most MaxRetries grants — holds for arbitrary
// monotone charge sequences.
func TestQuickRetryBudgetWindowInvariant(t *testing.T) {
	f := func(maxRaw uint8, winRaw uint16, steps []uint16) bool {
		max := int(maxRaw%8) + 1
		win := time.Duration(winRaw%5000+1) * time.Millisecond
		b := NewRetryBudget(max, win)
		now := time.Duration(0)
		var granted []time.Duration
		for _, s := range steps {
			now += time.Duration(s) * time.Millisecond
			if b.Spend(now) {
				granted = append(granted, now)
			}
		}
		for i, gi := range granted {
			cnt := 0
			for _, gj := range granted[:i+1] {
				if gj > gi-win {
					cnt++
				}
			}
			if cnt > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: end to end, a whole-run budget bounds the retries a faulted
// workload can issue, for any fault seed.
func TestQuickRetryBudgetBoundsWorkloadRetries(t *testing.T) {
	f := func(seedRaw uint16, maxRaw uint8) bool {
		budgetMax := int(maxRaw % 5)
		cfg := DefaultConfig()
		cfg.EnforceMemory = true
		cfg.FaultSeed = int64(seedRaw)
		cfg.Faults = FaultConfig{
			Enabled: true, InitCrashRate: 0.5,
			MemorySpikeRate: 0.4, MemorySpikeMB: 150,
			ConcurrencyLimit: 1,
		}
		p := New(cfg)
		p.Deploy(memApp("fn"))
		pol := DefaultRetryPolicy()
		pol.Budget = NewRetryBudget(budgetMax, 0)
		total := 0
		for i := 0; i < 6; i++ {
			inv, err := p.InvokeWithRetry("fn", lightEvent, pol)
			if err != nil {
				return false
			}
			total += inv.Attempts - 1
		}
		invs, err := p.InvokeGroupWithRetry("fn", []map[string]any{lightEvent, lightEvent, lightEvent}, pol)
		if err != nil {
			return false
		}
		for _, inv := range invs {
			total += inv.Attempts - 1
		}
		return total <= budgetMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// faultedWorkload drives a mixed workload (singles, groups, idle gaps)
// against a fault-heavy platform and returns the canonical log.
func faultedWorkload(seed int64) string {
	return faultedWorkloadChaos(seed, nil)
}

// faultedWorkloadChaos is faultedWorkload with a chaos injector wired in,
// so the nil-vs-zero-directive byte-identity contract is testable on the
// exact workload the determinism test pins.
func faultedWorkloadChaos(seed int64, inj ChaosInjector) string {
	cfg := DefaultConfig()
	cfg.EnforceMemory = true
	cfg.FaultSeed = seed
	cfg.Chaos = inj
	cfg.Faults = FaultConfig{
		Enabled:          true,
		InitCrashRate:    0.3,
		SlowColdRate:     0.3,
		SlowColdFactor:   3,
		MemorySpikeRate:  0.25,
		MemorySpikeMB:    150,
		ConcurrencyLimit: 2,
	}
	p := New(cfg)
	p.Deploy(memApp("fn"))
	pol := DefaultRetryPolicy()

	var lines []string
	for i := 0; i < 30; i++ {
		ev := lightEvent
		if i%7 == 3 {
			ev = heavyEvent
		}
		if i%5 == 4 {
			invs, err := p.InvokeGroupWithRetry("fn", []map[string]any{ev, lightEvent, lightEvent}, pol)
			if err != nil {
				panic(err)
			}
			for _, inv := range invs {
				lines = append(lines, inv.LogLine())
			}
		} else {
			inv, err := p.InvokeWithRetry("fn", ev, pol)
			if err != nil {
				panic(err)
			}
			lines = append(lines, inv.LogLine())
		}
		p.Advance(time.Duration(i%3) * 20 * time.Second)
	}
	return strings.Join(lines, "\n")
}

// Determinism: same FaultSeed and workload ⇒ byte-identical logs; a
// different seed perturbs them.
func TestFaultInjectionDeterministic(t *testing.T) {
	a := faultedWorkload(42)
	b := faultedWorkload(42)
	if a != b {
		t.Fatal("same seed produced different invocation logs")
	}
	if !strings.Contains(a, "init-crash") && !strings.Contains(a, "oom") &&
		!strings.Contains(a, "throttle") {
		t.Error("fault-heavy workload should show injected faults in the log")
	}
	if c := faultedWorkload(1042); c == a {
		t.Error("different seeds should perturb the workload")
	}
}
