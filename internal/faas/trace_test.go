package faas

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The k=v log line must keep its pre-observability byte format: it is the
// unit of the replay-determinism guarantee and appears in golden outputs.
func TestLogLineExactFormat(t *testing.T) {
	inv := &Invocation{
		Function:       "fn",
		Kind:           ColdStart,
		Class:          FailureOOM,
		Attempts:       2,
		Init:           1500 * time.Microsecond,
		Exec:           2500 * time.Microsecond,
		E2E:            7 * time.Millisecond,
		BilledDuration: 4 * time.Millisecond,
		MemoryMB:       128,
		PeakMB:         301.25,
		CostUSD:        0.000001234567,
		FallbackUsed:   true,
		FallbackKind:   WarmStart,
		Err:            errors.New("faas: fn: oom: peak 301.2 MB exceeds 128 MB"),
	}
	want := `fn=fn kind=cold class=oom attempts=2 init_us=1500 exec_us=2500 ` +
		`e2e_us=7000 billed_us=4000 mem_mb=128 peak_mb=301.250 ` +
		`cost_usd=0.000001234567 fallback=warm ` +
		`err="faas: fn: oom: peak 301.2 MB exceeds 128 MB"`
	if got := inv.LogLine(); got != want {
		t.Errorf("LogLine:\n got %s\nwant %s", got, want)
	}
}

// tracedWorkload reruns the canonical fault-heavy workload with a tracer
// attached, returning the tracer plus the client-visible records.
func tracedWorkload(seed int64) (*obs.Tracer, *Platform, []*Invocation) {
	tr := obs.New()
	cfg := DefaultConfig()
	cfg.EnforceMemory = true
	cfg.FaultSeed = seed
	cfg.Faults = FaultConfig{
		Enabled:          true,
		InitCrashRate:    0.3,
		SlowColdRate:     0.3,
		SlowColdFactor:   3,
		MemorySpikeRate:  0.25,
		MemorySpikeMB:    150,
		ConcurrencyLimit: 2,
	}
	cfg.Tracer = tr
	p := New(cfg)
	p.Deploy(memApp("fn"))
	pol := DefaultRetryPolicy()

	var records []*Invocation
	for i := 0; i < 30; i++ {
		ev := lightEvent
		if i%7 == 3 {
			ev = heavyEvent
		}
		if i%5 == 4 {
			invs, err := p.InvokeGroupWithRetry("fn", []map[string]any{ev, lightEvent, lightEvent}, pol)
			if err != nil {
				panic(err)
			}
			records = append(records, invs...)
		} else {
			inv, err := p.InvokeWithRetry("fn", ev, pol)
			if err != nil {
				panic(err)
			}
			records = append(records, inv)
		}
		p.Advance(time.Duration(i%3) * 20 * time.Second)
	}
	return tr, p, records
}

// The metrics registry and the platform's own lifetime counters are
// independent accountings of the same run; they must agree exactly.
func TestTraceMetricsCrossCheckStats(t *testing.T) {
	tr, p, records := tracedWorkload(42)
	reg := tr.Metrics()
	st, ok := p.FunctionStats("fn")
	if !ok {
		t.Fatal("fn not deployed")
	}

	checks := []struct {
		metric string
		want   int64
	}{
		{"faas.invocations", int64(st.Invocations)},
		{"faas.cold_starts", int64(st.ColdStarts)},
		{"faas.fault.oom", int64(st.OOMKills)},
		{"faas.fault.timeout", int64(st.Timeouts)},
		{"faas.fault.throttle", int64(st.Throttles)},
		{"faas.fault.init-crash", int64(st.InitCrashes)},
	}
	for _, c := range checks {
		if got := reg.Counter(c.metric); got != c.want {
			t.Errorf("%s = %d, want %d (platform stats)", c.metric, got, c.want)
		}
	}
	if reg.Counter("faas.fault.throttle") == 0 && reg.Counter("faas.fault.init-crash") == 0 {
		t.Error("fault-heavy workload should record injected faults in metrics")
	}

	// Retry accounting: attempts and backoff waits must match the
	// client-visible aggregate records.
	var attempts, backoffUS int64
	for _, inv := range records {
		attempts += int64(inv.Attempts)
		backoffUS += inv.BackoffWait.Microseconds()
	}
	if got := reg.Counter("faas.retry.attempts"); got != attempts {
		t.Errorf("faas.retry.attempts = %d, want %d", got, attempts)
	}
	if got := reg.Counter("faas.retry.backoff_wait_us"); got != backoffUS {
		t.Errorf("faas.retry.backoff_wait_us = %d, want %d", got, backoffUS)
	}
	if got := reg.Counter("faas.retry.requests"); got != int64(len(records)) {
		t.Errorf("faas.retry.requests = %d, want %d", got, len(records))
	}

	// The e2e histogram sees every platform invocation (attempts, not
	// aggregated requests).
	if h := reg.Histogram("faas.e2e.seconds"); h == nil || h.Count() != uint64(st.Invocations) {
		t.Errorf("faas.e2e.seconds count = %v, want %d", h, st.Invocations)
	}
}

// The "invocation" events in the tracer's log are the same records the
// LogLine API renders: one source of truth, two renderings.
func TestEventLogMatchesLogLines(t *testing.T) {
	tr, _, _ := tracedWorkload(42)
	var eventLines []string
	for _, e := range tr.Events() {
		if e.Name == "invocation" {
			eventLines = append(eventLines, obs.LogLineFromAttrs(e.Attrs))
		}
	}
	if len(eventLines) == 0 {
		t.Fatal("no invocation events recorded")
	}
	// Per-attempt records: at least one per client request, and every
	// line must parse as the canonical format.
	for _, line := range eventLines {
		if !strings.HasPrefix(line, "fn=fn kind=") || !strings.Contains(line, " cost_usd=") {
			t.Fatalf("malformed invocation event line: %s", line)
		}
	}
}

// Span-tree shape: a cold invocation decomposes into the platform's
// phases, nested under its request span.
func TestInvocationSpanPhases(t *testing.T) {
	tr := obs.New()
	cfg := DefaultConfig()
	cfg.Tracer = tr
	p := New(cfg)
	p.Deploy(memApp("fn"))

	if _, err := p.InvokeWithRetry("fn", lightEvent, DefaultRetryPolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeWithRetry("fn", lightEvent, DefaultRetryPolicy()); err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	// deploy + profiling invocation happen under Deploy; then two requests.
	var requests []*obs.Span
	for _, r := range roots {
		if strings.HasPrefix(r.Name, "request ") {
			requests = append(requests, r)
		}
	}
	if len(requests) != 2 {
		t.Fatalf("want 2 request roots, got %d (roots=%d)", len(requests), len(roots))
	}

	phaseNames := func(req *obs.Span) []string {
		if len(req.Children) != 1 {
			t.Fatalf("request should hold 1 invoke span, got %d", len(req.Children))
		}
		inv := req.Children[0]
		if !strings.HasPrefix(inv.Name, "invoke ") {
			t.Fatalf("child span = %q", inv.Name)
		}
		var names []string
		for _, c := range inv.Children {
			names = append(names, c.Name)
		}
		return names
	}

	cold := phaseNames(requests[0])
	want := []string{"routing", "instance-init", "image-transfer", "init", "handler"}
	if strings.Join(cold, ",") != strings.Join(want, ",") {
		t.Errorf("cold phases = %v, want %v", cold, want)
	}
	warm := phaseNames(requests[1])
	if strings.Join(warm, ",") != "routing,handler" {
		t.Errorf("warm phases = %v", warm)
	}

	// Phases tile the invoke span: children are contiguous and end at the
	// parent's end.
	invSpan := requests[0].Children[0]
	cur := invSpan.Start
	for _, c := range invSpan.Children {
		if c.Start != cur {
			t.Errorf("phase %s starts at %v, want %v", c.Name, c.Start, cur)
		}
		cur = c.End
	}
	if cur != invSpan.End {
		t.Errorf("phases end at %v, invoke span ends at %v", cur, invSpan.End)
	}
}
