package faas

import (
	"fmt"
	"testing"
)

func TestSetAliasValidation(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("fn"))

	if err := p.SetAlias("alias"); err == nil {
		t.Error("alias with no routes should be rejected")
	}
	if err := p.SetAlias("alias", AliasRoute{Target: "ghost", Weight: 1}); err == nil {
		t.Error("alias to undeployed target should be rejected")
	}
	if err := p.SetAlias("alias", AliasRoute{Target: "fn", Weight: 0}); err == nil {
		t.Error("zero weight should be rejected")
	}
	if err := p.SetAlias("fn", AliasRoute{Target: "fn", Weight: 1}); err == nil {
		t.Error("alias shadowing a deployed function should be rejected")
	}
	if err := p.SetAlias("alias", AliasRoute{Target: "fn", Weight: 1}); err != nil {
		t.Errorf("valid alias rejected: %v", err)
	}
	if got := p.AliasRoutes("alias"); len(got) != 1 || got[0].Target != "fn" {
		t.Errorf("AliasRoutes = %v", got)
	}
}

func TestAliasWeightedSplitIsDeterministic(t *testing.T) {
	serve := func() map[string]int {
		p := New(DefaultConfig())
		a, b := testApp("fn-a"), testApp("fn-b")
		p.Deploy(a)
		p.Deploy(b)
		if err := p.SetAlias("fn", AliasRoute{Target: "fn-a", Weight: 0.9}, AliasRoute{Target: "fn-b", Weight: 0.1}); err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for i := 0; i < 200; i++ {
			inv, err := p.Invoke("fn", map[string]any{"id": i})
			if err != nil {
				t.Fatal(err)
			}
			counts[inv.Function]++
		}
		return counts
	}
	c1, c2 := serve(), serve()
	if fmt.Sprint(c1) != fmt.Sprint(c2) {
		t.Fatalf("same seed split differs: %v vs %v", c1, c2)
	}
	if c1["fn-a"] < 150 || c1["fn-b"] < 5 {
		t.Errorf("split far from 90/10: %v", c1)
	}
	if c1["fn-a"]+c1["fn-b"] != 200 {
		t.Errorf("requests lost: %v", c1)
	}
}

// A single-route alias must not consume random draws: a run routed through
// a 100% alias produces byte-identical invocation streams to a direct run.
func TestSingleRouteAliasConsumesNoDraws(t *testing.T) {
	run := func(useAlias bool) string {
		cfg := DefaultConfig()
		cfg.Faults = FaultConfig{Enabled: true, SlowColdRate: 0.5, SlowColdFactor: 3, MemorySpikeRate: 0.3, MemorySpikeMB: 64}
		cfg.FaultSeed = 11
		p := New(cfg)
		p.Deploy(testApp("fn"))
		name := "fn"
		if useAlias {
			if err := p.SetAlias("route", AliasRoute{Target: "fn", Weight: 1}); err != nil {
				t.Fatal(err)
			}
			name = "route"
		}
		out := ""
		for i := 0; i < 20; i++ {
			inv, err := p.Invoke(name, map[string]any{"id": i})
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("%s %v %v\n", inv.Function, inv.Exec, inv.CostUSD)
		}
		return out
	}
	if run(false) != run(true) {
		t.Error("single-route alias perturbed the jitter stream")
	}
}

func TestDeployVersionAndSetFallback(t *testing.T) {
	p := New(DefaultConfig())
	orig := testApp("fn")
	deb := fallbackApp("fn")

	origName := p.DeployVersion("fn", "orig", orig)
	debName := p.DeployVersion("fn", "v1", deb)
	if origName != "fn@orig" || debName != "fn@v1" {
		t.Fatalf("version names = %q, %q", origName, debName)
	}
	if orig.Name != "fn" || deb.Name != "fn" {
		t.Error("DeployVersion must not rename the caller's app")
	}
	if err := p.SetFallback(debName, "ghost"); err == nil {
		t.Error("fallback to undeployed function should be rejected")
	}
	if err := p.SetFallback(debName, origName); err != nil {
		t.Fatal(err)
	}

	inv, err := p.Invoke(debName, map[string]any{"mode": "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Error("versioned deploy should fall back on AttributeError")
	}
	if inv.Function != debName {
		t.Errorf("fallback invocation attributed to %q, want %q", inv.Function, debName)
	}
}

func TestAliasOverVersionsRoutesFallback(t *testing.T) {
	p := New(DefaultConfig())
	p.DeployVersion("fn", "orig", testApp("fn"))
	deb := p.DeployVersion("fn", "v1", fallbackApp("fn"))
	if err := p.SetFallback(deb, "fn@orig"); err != nil {
		t.Fatal(err)
	}
	if err := p.SetAlias("fn", AliasRoute{Target: deb, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke("fn", map[string]any{"mode": "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed || inv.Function != "fn@v1" {
		t.Errorf("inv = %+v, want fallback served under fn@v1", inv)
	}
	p.ClearAlias("fn")
	if _, err := p.Invoke("fn", nil); err == nil {
		t.Error("cleared alias should no longer resolve")
	}
}
