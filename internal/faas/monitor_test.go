package faas

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// monitoredWorkload is tracedWorkload with an optional monitor attached:
// the same seeded fault-heavy workload, so the two runs are comparable
// byte-for-byte.
func monitoredWorkload(seed int64, mon *monitor.Monitor) (*obs.Tracer, *Platform) {
	tr := obs.New()
	cfg := DefaultConfig()
	cfg.EnforceMemory = true
	cfg.FaultSeed = seed
	cfg.Faults = FaultConfig{
		Enabled:          true,
		InitCrashRate:    0.3,
		SlowColdRate:     0.3,
		SlowColdFactor:   3,
		MemorySpikeRate:  0.25,
		MemorySpikeMB:    150,
		ConcurrencyLimit: 2,
	}
	cfg.Tracer = tr
	cfg.Monitor = mon
	p := New(cfg)
	p.Deploy(memApp("fn"))
	pol := DefaultRetryPolicy()
	for i := 0; i < 30; i++ {
		ev := lightEvent
		if i%7 == 3 {
			ev = heavyEvent
		}
		if i%5 == 4 {
			if _, err := p.InvokeGroupWithRetry("fn", []map[string]any{ev, lightEvent, lightEvent}, pol); err != nil {
				panic(err)
			}
		} else {
			if _, err := p.InvokeWithRetry("fn", ev, pol); err != nil {
				panic(err)
			}
		}
		p.Advance(time.Duration(i%3) * 20 * time.Second)
	}
	return tr, p
}

// Attaching a monitor must not perturb the simulation or the tracer: the
// monitor is a read-only tap on completed invocation records.
func TestMonitorDoesNotPerturbReplay(t *testing.T) {
	mon := monitor.New(monitor.Config{Resolution: time.Minute})
	trOff, _ := monitoredWorkload(42, nil)
	trOn, _ := monitoredWorkload(42, mon)

	chromeOff, err := trOff.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	chromeOn, err := trOn.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chromeOff, chromeOn) {
		t.Error("Chrome trace differs with a monitor attached")
	}
	if !bytes.Equal(trOff.EventLogJSONL(), trOn.EventLogJSONL()) {
		t.Error("event log differs with a monitor attached")
	}
	jOff, _ := trOff.Metrics().Snapshot().JSON()
	jOn, _ := trOn.Metrics().Snapshot().JSON()
	if !bytes.Equal(jOff, jOn) {
		t.Error("metrics snapshot differs with a monitor attached")
	}
}

// The monitor's TSDB and ledger are a third accounting of the run; they
// must agree exactly with the platform stats and the metrics registry.
func TestMonitorCrossChecksPlatform(t *testing.T) {
	mon := monitor.New(monitor.Config{Resolution: time.Minute})
	tr, p := monitoredWorkload(42, mon)
	mon.Finish()
	st, ok := p.FunctionStats("fn")
	if !ok {
		t.Fatal("fn not deployed")
	}

	store := mon.Store()
	if got := store.Total("req.total").Count; got != uint64(st.Invocations) {
		t.Errorf("req.total = %d, want %d platform invocations", got, st.Invocations)
	}
	if got := store.Total("req.cold").Count; got != uint64(st.ColdStarts) {
		t.Errorf("req.cold = %d, want %d platform cold starts", got, st.ColdStarts)
	}

	// Every billed dollar lands in both the registry histogram and the
	// monitor's cost series and ledger.
	h := tr.Metrics().Histogram("faas.billed.usd")
	if h == nil {
		t.Fatal("faas.billed.usd histogram missing")
	}
	costs := store.Total("cost.usd")
	if costs.Count != h.Count() {
		t.Errorf("cost samples %d != registry %d", costs.Count, h.Count())
	}
	if diff := costs.Sum - h.Sum(); diff > 1e-15 || diff < -1e-15 {
		t.Errorf("cost sum %v != registry %v", costs.Sum, h.Sum())
	}
	led := mon.Ledger().Total()
	if led.Invocations != uint64(st.Invocations) {
		t.Errorf("ledger invocations %d != %d", led.Invocations, st.Invocations)
	}
	if led.ColdStarts != uint64(st.ColdStarts) {
		t.Errorf("ledger cold starts %d != %d", led.ColdStarts, st.ColdStarts)
	}
	if diff := led.CostUSD() - h.Sum(); diff > 1e-15 || diff < -1e-15 {
		t.Errorf("ledger cost %v != billed %v", led.CostUSD(), h.Sum())
	}
	// The fault-heavy workload must have produced failed attempts, and the
	// error series must see them.
	faults := st.OOMKills + st.Timeouts + st.Throttles + st.InitCrashes
	if faults == 0 {
		t.Fatal("workload produced no faults; the cross-check is vacuous")
	}
	if got := store.Total("req.error").Count; got < uint64(faults) {
		t.Errorf("req.error = %d, want >= %d platform faults", got, faults)
	}
}
