// Tracing and metrics for the platform simulator. Every span and event
// rides the platform's simulated clock, so a fixed FaultSeed and workload
// reproduce byte-identical telemetry. With Config.Tracer nil (the default)
// this file contributes one pointer check per invocation and nothing else.
package faas

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// emitFault records one injected-fault event at the current platform time.
func (p *Platform) emitFault(kind, fn string) {
	tr := p.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Emit("faas.fault-injected", p.now,
		obs.String("kind", kind), obs.String("fn", fn))
	tr.Metrics().Inc("faas.fault_injected."+kind, 1)
}

// recordInvocation reconstructs one completed platform invocation as a span
// subtree — queue/routing wait, the cold-path phases (instance init, image
// transfer, function init or snapshot restore), and handler execution —
// from the final Invocation record, whose phase durations already reflect
// any OOM/timeout truncation. It also feeds the metrics registry and
// appends the invocation's canonical record to the event log.
func (p *Platform) recordInvocation(parent *obs.Span, start time.Duration, inv *Invocation) {
	p.observeMonitor(start, inv)
	tr := p.cfg.Tracer
	if tr == nil {
		return
	}
	reg := tr.Metrics()
	end := start + inv.E2E

	sp := tr.StartChild(parent, "invoke "+inv.Function, "faas", start)
	sp.Add(
		obs.String("kind", inv.Kind.String()),
		obs.String("class", inv.Class.String()),
		obs.Int("mem_mb", int64(inv.MemoryMB)),
		obs.DurationUS("billed_us", inv.BilledDuration),
		obs.Attr{Key: "cost_usd", Val: fmt.Sprintf("%.12f", inv.CostUSD)},
	)
	if inv.SnapStartRestore {
		sp.Add(obs.Bool("snapstart", true))
	}

	reg.Inc("faas.invocations", 1)
	if inv.Class != FailureNone {
		reg.Inc("faas.fault."+inv.Class.String(), 1)
		detail := ""
		if inv.Err != nil {
			detail = inv.Err.Error()
		}
		tr.Emit("faas.failure", end,
			obs.String("fn", inv.Function),
			obs.String("class", inv.Class.String()),
			obs.String("err", detail))
	}
	reg.Observe("faas.e2e.seconds", inv.E2E.Seconds())
	reg.Observe("faas.billed.usd", inv.CostUSD)

	cur := start
	phase := func(name string, d time.Duration) {
		tr.StartChild(sp, name, "faas", cur).Finish(cur + d)
		cur += d
	}
	phase("routing", p.cfg.RoutingOverhead)
	if inv.Class == FailureThrottle {
		// Rejected up front: no instance, no further phases.
		sp.Finish(end)
		tr.Emit("invocation", end, inv.logAttrs()...)
		return
	}

	importCrash := false
	if inv.Kind == ColdStart {
		reg.Inc("faas.cold_starts", 1)
		phase("instance-init", inv.InstanceInit)
		phase("image-transfer", inv.ImageTransfer)
		initName := "init"
		if inv.SnapStartRestore {
			initName = "restore"
		}
		initDur := inv.Init
		if initDur == 0 && inv.Exec == 0 && inv.Class == FailureHandler {
			// The entry import itself raised: the record keeps no Init,
			// but E2E embeds the partial import time — recover it.
			initDur = inv.E2E - p.cfg.RoutingOverhead - inv.InstanceInit - inv.ImageTransfer
			importCrash = true
		}
		phase(initName, initDur)
		reg.Observe("faas.init.seconds", initDur.Seconds())
	}
	if inv.Class != FailureInitCrash && !importCrash {
		phase("handler", inv.Exec)
		reg.Observe("faas.exec.seconds", inv.Exec.Seconds())
	}

	sp.Finish(end)
	tr.Emit("invocation", end, inv.logAttrs()...)
}
