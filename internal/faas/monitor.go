// Monitoring feed for the platform simulator. Every completed invocation
// attempt becomes one monitor.Sample stamped with its virtual completion
// time, so SLO burn rates and cost attribution evolve on the simulated
// timeline. With Config.Monitor nil (the default) this file contributes
// one pointer check per invocation and nothing else.
package faas

import (
	"time"

	"repro/internal/obs/monitor"
)

// SampleOf converts a completed invocation into a monitor sample. Merged
// retry records should not be re-sampled (each attempt already was), and
// throttled records carry no meaningful start kind, so Cold is gated on
// the failure class.
func SampleOf(inv *Invocation) monitor.Sample {
	cold := inv.Kind == ColdStart && inv.Class != FailureThrottle
	var billedInit time.Duration
	if cold && !inv.SnapStartRestore {
		billedInit = inv.Init
	}
	billedExec := inv.Exec
	if inv.Class == FailureInitCrash {
		billedExec = 0
	}
	return monitor.Sample{
		Function:      inv.Function,
		Cold:          cold,
		Class:         inv.Class.String(),
		Init:          inv.Init,
		Exec:          inv.Exec,
		E2E:           inv.E2E,
		BilledInit:    billedInit,
		BilledExec:    billedExec,
		Billed:        inv.BilledDuration,
		MemoryMB:      inv.MemoryMB,
		CostUSD:       inv.CostUSD,
		RestoreFeeUSD: inv.RestoreFeeUSD,
	}
}

// observeMonitor feeds one completed invocation to the monitor.
func (p *Platform) observeMonitor(start time.Duration, inv *Invocation) {
	m := p.cfg.Monitor
	if m == nil {
		return
	}
	m.Observe(start+inv.E2E, SampleOf(inv))
}
