package faas

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// testApp builds a small app with known init/exec cost.
func testApp(name string) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    lib.work()
    print("handled", event.get("id", 0))
    return {"ok": True}
`)
	fs.Write("site-packages/lib/__init__.py", `
load_native(200, 50)

def work():
    compute(30)
`)
	return &appspec.App{
		Name: name, Image: fs, Entry: "handler", Handler: "handler",
		Oracle:       []appspec.TestCase{{Name: "t", Event: map[string]any{"id": 1}}},
		SetupDelayMS: 300, ImageSizeMB: 120,
	}
}

// fallbackApp is a debloated-style app whose handler raises AttributeError
// on mode=advanced.
func fallbackApp(name string) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    if event.get("mode", "basic") == "advanced":
        return lib.removed_fn()
    return {"ok": True}
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(50, 10)\n")
	return &appspec.App{
		Name: name, Image: fs, Entry: "handler", Handler: "handler",
		SetupDelayMS: 100, ImageSizeMB: 40,
	}
}

func TestColdThenWarm(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("fn"))

	inv1, err := p.Invoke("fn", map[string]any{"id": 1})
	if err != nil {
		t.Fatal(err)
	}
	if inv1.Kind != ColdStart {
		t.Error("first invocation should be cold")
	}
	if inv1.Init < 200*time.Millisecond {
		t.Errorf("init = %v, want ≥200ms", inv1.Init)
	}
	if inv1.InstanceInit == 0 || inv1.ImageTransfer == 0 {
		t.Error("cold start should include provider phases")
	}
	if inv1.Stdout != "handled 1\n" {
		t.Errorf("stdout = %q", inv1.Stdout)
	}

	inv2, err := p.Invoke("fn", map[string]any{"id": 2})
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Kind != WarmStart {
		t.Error("second invocation should be warm")
	}
	if inv2.Init != 0 || inv2.InstanceInit != 0 {
		t.Error("warm start must skip initialization")
	}
	if inv2.E2E >= inv1.E2E {
		t.Errorf("warm E2E %v should beat cold %v", inv2.E2E, inv1.E2E)
	}
	// Warm starts bill only execution.
	if inv2.BilledDuration >= inv1.BilledDuration {
		t.Error("warm billed duration should be smaller")
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepAlive = 1 * time.Minute
	p := New(cfg)
	p.Deploy(testApp("fn"))

	if _, err := p.Invoke("fn", nil); err != nil {
		t.Fatal(err)
	}
	p.Advance(2 * time.Minute) // exceed keep-alive
	inv, err := p.Invoke("fn", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Kind != ColdStart {
		t.Error("instance should have expired")
	}

	// Within keep-alive, it stays warm.
	p.Advance(30 * time.Second)
	inv, err = p.Invoke("fn", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Kind != WarmStart {
		t.Error("instance should still be warm")
	}
}

func TestInvalidateWarmForcesColdStart(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("fn"))
	if _, err := p.Invoke("fn", nil); err != nil {
		t.Fatal(err)
	}
	p.InvalidateWarm("fn") // the paper's "update function description" trick
	inv, err := p.Invoke("fn", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Kind != ColdStart {
		t.Error("invalidation should force a cold start")
	}
	stats, _ := p.FunctionStats("fn")
	if stats.Invocations != 2 || stats.ColdStarts != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBillingFormula(t *testing.T) {
	pr := AWSPricing()
	cost := pr.Cost(1*time.Second, 1024)
	if diff := cost - 0.0000162109; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("1GB-s cost = %.10f", cost)
	}
	// Rounding to 1ms.
	if pr.BillDuration(1500*time.Microsecond) != 2*time.Millisecond {
		t.Error("1ms rounding broken")
	}
	if pr.BillDuration(2*time.Millisecond) != 2*time.Millisecond {
		t.Error("exact durations must not round up")
	}
	// Azure rounds to 1s.
	if AzurePricing().BillDuration(10*time.Millisecond) != time.Second {
		t.Error("Azure rounding broken")
	}
	// Memory floor.
	if pr.ConfigureMemory(3) != 128 {
		t.Error("128MB floor not applied")
	}
	if pr.ConfigureMemory(300.2) != 301 {
		t.Errorf("ceil config = %d", pr.ConfigureMemory(300.2))
	}
}

func TestMinBillingHidesSmallFootprints(t *testing.T) {
	// Two apps under the floor bill identically per unit time — the
	// effect the paper notes for small applications.
	pr := AWSPricing()
	if pr.Cost(time.Second, pr.ConfigureMemory(40)) != pr.Cost(time.Second, pr.ConfigureMemory(90)) {
		t.Error("both sub-floor footprints should bill at 128MB")
	}
}

func TestFallbackOnAttributeError(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	debloated := fallbackApp("app")
	original := testApp("app") // original handles everything
	p.DeployWithFallback(debloated, original)

	// Normal path: no fallback.
	inv, err := p.Invoke("app", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.FallbackUsed || inv.Err != nil {
		t.Errorf("normal path used fallback: %+v", inv)
	}

	// Advanced path: AttributeError -> fallback serves the request.
	inv, err = p.Invoke("app", map[string]any{"mode": "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Fatal("fallback not used")
	}
	if inv.Err != nil {
		t.Errorf("fallback should absorb the error: %v", inv.Err)
	}
	if inv.FallbackKind != ColdStart {
		t.Error("first fallback invocation should be cold")
	}
	// E2E includes the failed attempt, wrapper setup, and the fallback.
	if inv.E2E < cfg.FallbackSetup {
		t.Error("fallback E2E too small")
	}

	// Second advanced request: fallback instance is now warm.
	inv2, err := p.Invoke("app", map[string]any{"mode": "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if inv2.FallbackKind != WarmStart {
		t.Error("second fallback should be warm")
	}
	if inv2.E2E >= inv.E2E {
		t.Errorf("warm fallback E2E %v should beat cold %v", inv2.E2E, inv.E2E)
	}
}

func TestFallbackOnWrappedAttributeError(t *testing.T) {
	// Application code that catches the AttributeError and re-raises a
	// derived error still signals an over-trimmed artifact: the fallback
	// must follow the exception chain to the root cause.
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    try:
        return lib.removed_fn()
    except AttributeError:
        raise RuntimeError("model pipeline failed")
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(50, 10)\n")
	debloated := &appspec.App{Name: "app", Image: fs, Entry: "handler", Handler: "handler", SetupDelayMS: 100}
	p := New(DefaultConfig())
	p.DeployWithFallback(debloated, testApp("app"))

	inv, err := p.Invoke("app", map[string]any{"id": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Fatal("wrapped AttributeError must trigger the fallback")
	}
	if inv.Err != nil {
		t.Errorf("fallback should absorb the error: %v", inv.Err)
	}
}

func TestFallbackOnAttributeErrorInsideHandlerClause(t *testing.T) {
	// The trimmed attribute is only touched while handling an unrelated
	// exception — the escaping error IS the AttributeError, chained onto
	// the original KeyError. The fallback must still fire.
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    try:
        return event["required"]
    except KeyError:
        return lib.removed_recovery()
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(50, 10)\n")
	debloated := &appspec.App{Name: "app", Image: fs, Entry: "handler", Handler: "handler", SetupDelayMS: 100}
	p := New(DefaultConfig())
	p.DeployWithFallback(debloated, testApp("app"))

	inv, err := p.Invoke("app", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Fatal("AttributeError raised inside an exception handler must trigger the fallback")
	}
	if inv.Err != nil {
		t.Errorf("fallback should absorb the error: %v", inv.Err)
	}
}

func TestRedeployKeepsFallbackWiring(t *testing.T) {
	// Pushing a new artifact over a fallback-equipped name (how a repaired
	// debloat lands) must not silently drop the safety net.
	p := New(DefaultConfig())
	p.DeployWithFallback(fallbackApp("app"), testApp("app"))
	inv, err := p.Invoke("app", map[string]any{"mode": "advanced"})
	if err != nil || !inv.FallbackUsed {
		t.Fatalf("precondition: fallback should fire (inv=%+v err=%v)", inv, err)
	}

	p.Deploy(fallbackApp("app")) // redeploy: still broken on mode=advanced
	inv, err = p.Invoke("app", map[string]any{"mode": "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Fatal("redeploy dropped the fallback wiring")
	}
	if inv.Err != nil {
		t.Errorf("fallback should absorb the error: %v", inv.Err)
	}
}

func TestDeployWithFallbackRedeployUsesFreshOriginal(t *testing.T) {
	// Redeploying debloated+original must route fallbacks to the NEW
	// original, not a stale clone of the first one.
	p := New(DefaultConfig())
	p.DeployWithFallback(fallbackApp("app"), testApp("app"))

	orig2 := testApp("app")
	orig2.Image.Write("handler.py", `
import lib

def handler(event, context):
    lib.work()
    print("v2 serving", event.get("id", 0))
    return {"ok": True, "v": 2}
`)
	p.DeployWithFallback(fallbackApp("app"), orig2)

	inv, err := p.Invoke("app", map[string]any{"mode": "advanced", "id": 7})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.FallbackUsed {
		t.Fatal("fallback not used after redeploy")
	}
	if inv.Stdout != "v2 serving 7\n" {
		t.Errorf("fallback served stale original: stdout = %q", inv.Stdout)
	}
}

func TestNonAttributeErrorsPropagate(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
def handler(event, context):
    raise ValueError("genuine bug")
`)
	bad := &appspec.App{Name: "bad", Image: fs, Entry: "handler", Handler: "handler", SetupDelayMS: 50}
	p := New(DefaultConfig())
	p.DeployWithFallback(bad, testApp("bad"))
	inv, err := p.Invoke("bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.FallbackUsed {
		t.Error("ValueError must not trigger the AttributeError fallback")
	}
	if inv.Err == nil {
		t.Error("error should propagate to the caller")
	}
}

func TestUnknownFunction(t *testing.T) {
	p := New(DefaultConfig())
	if _, err := p.Invoke("ghost", nil); err == nil {
		t.Error("expected error for unknown function")
	}
}

func TestMeasureHelpers(t *testing.T) {
	app := testApp("m")
	cold, err := MeasureColdStart(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Kind != ColdStart {
		t.Error("MeasureColdStart returned a warm start")
	}
	warm, err := MeasureWarmStart(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Kind != WarmStart {
		t.Error("MeasureWarmStart returned a cold start")
	}
}

func TestWarmStatePersistsAcrossInvocations(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
counter = [0]

def handler(event, context):
    counter[0] += 1
    return counter[0]
`)
	app := &appspec.App{Name: "stateful", Image: fs, Entry: "handler", Handler: "handler", SetupDelayMS: 50}
	p := New(DefaultConfig())
	p.Deploy(app)
	inv1, _ := p.Invoke("stateful", nil)
	inv2, _ := p.Invoke("stateful", nil)
	if inv1.Result != "1" || inv2.Result != "2" {
		t.Errorf("warm state lost: %q then %q", inv1.Result, inv2.Result)
	}
}

// Property: billed duration is never less than the raw duration and the
// rounding is exact-multiple idempotent.
func TestQuickBillRounding(t *testing.T) {
	pr := AWSPricing()
	f := func(us uint32) bool {
		d := time.Duration(us) * time.Microsecond
		billed := pr.BillDuration(d)
		if billed < d {
			return false
		}
		return pr.BillDuration(billed) == billed && billed-d < time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost scales linearly in duration and memory.
func TestQuickCostLinear(t *testing.T) {
	pr := AWSPricing()
	f := func(msRaw uint16, memRaw uint16) bool {
		d := time.Duration(msRaw) * time.Millisecond
		mem := int(memRaw%8192) + 128
		c1 := pr.Cost(d, mem)
		c2 := pr.Cost(2*d, mem)
		c3 := pr.Cost(d, 2*mem)
		return almost(c2, 2*c1) && almost(c3, 2*c1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestBillingEdgeCases(t *testing.T) {
	pr := AWSPricing()
	// Non-positive durations bill nothing — a kill before any billable
	// phase must not produce a negative line item.
	if pr.BillDuration(-5*time.Millisecond) != 0 {
		t.Error("negative duration should round to zero")
	}
	if pr.BillDuration(0) != 0 {
		t.Error("zero duration should bill zero")
	}
	if pr.Cost(-time.Second, 1024) != 0 {
		t.Error("negative billed duration should cost nothing")
	}
	if pr.Cost(time.Second, -128) != 0 || pr.Cost(time.Second, 0) != 0 {
		t.Error("non-positive memory should cost nothing")
	}
	// Granularity <= 0 passes durations through unchanged (documented).
	free := Pricing{USDPerGBSecond: 1, Granularity: 0}
	if free.BillDuration(123*time.Microsecond) != 123*time.Microsecond {
		t.Error("Granularity 0 must pass the duration through")
	}
	// Azure's 1 s rounding bills a 1 ms execution as a full second.
	az := AzurePricing()
	if az.BillDuration(time.Millisecond) != time.Second {
		t.Error("Azure should round 1ms up to 1s")
	}
	if got, want := az.Cost(az.BillDuration(time.Millisecond), 1024), az.Cost(time.Second, 1024); got != want {
		t.Errorf("1ms exec bills %.10f, want the full-second %.10f", got, want)
	}
}

// Property: rounding is monotone — a longer execution never bills less.
func TestQuickBillRoundingMonotone(t *testing.T) {
	for _, pr := range []Pricing{AWSPricing(), GCPPricing(), AzurePricing()} {
		f := func(aRaw, bRaw uint32) bool {
			a := time.Duration(aRaw) * time.Microsecond
			b := time.Duration(bRaw) * time.Microsecond
			if a > b {
				a, b = b, a
			}
			return pr.BillDuration(a) <= pr.BillDuration(b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("granularity %v: %v", pr.Granularity, err)
		}
	}
}

// Property: cost is non-decreasing in both duration and memory.
func TestQuickCostMonotone(t *testing.T) {
	pr := AWSPricing()
	f := func(msRaw uint16, extraMs uint16, memRaw uint16, extraMem uint16) bool {
		d := time.Duration(msRaw) * time.Millisecond
		mem := int(memRaw%8192) + 128
		longer := d + time.Duration(extraMs)*time.Millisecond
		bigger := mem + int(extraMem%4096)
		return pr.Cost(pr.BillDuration(longer), mem) >= pr.Cost(pr.BillDuration(d), mem) &&
			pr.Cost(pr.BillDuration(d), bigger) >= pr.Cost(pr.BillDuration(d), mem)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapStartDeployment(t *testing.T) {
	app := testApp("snap")
	// Plain deployment for comparison.
	plainInv, err := MeasureColdStart(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	p := New(DefaultConfig())
	p.DeployWithSnapStart(app, SnapStartConfig{
		RestoreTime:   120 * time.Millisecond,
		RestoreFeeUSD: 0.00002,
	})
	inv, err := p.Invoke("snap", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.SnapStartRestore || inv.Kind != ColdStart {
		t.Fatalf("expected a snapstart cold start: %+v", inv)
	}
	// Restore latency replaces the 200ms+ initialization.
	if inv.Init != 120*time.Millisecond {
		t.Errorf("init = %v, want the restore time", inv.Init)
	}
	if inv.E2E >= plainInv.E2E {
		t.Errorf("snapstart cold E2E %v should beat plain %v", inv.E2E, plainInv.E2E)
	}
	// Restore is not billed as duration; it is a separate fee.
	if inv.BilledDuration >= plainInv.BilledDuration {
		t.Errorf("snapstart billed %v should exclude init (plain %v)",
			inv.BilledDuration, plainInv.BilledDuration)
	}
	if inv.RestoreFeeUSD != 0.00002 {
		t.Errorf("restore fee = %v", inv.RestoreFeeUSD)
	}
	durationCost := DefaultConfig().Pricing.Cost(inv.BilledDuration, inv.MemoryMB)
	if diff := inv.CostUSD - (durationCost + inv.RestoreFeeUSD); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("cost %v != duration %v + fee %v", inv.CostUSD, durationCost, inv.RestoreFeeUSD)
	}

	// Warm starts behave normally (no restore, no fee).
	warm, err := p.Invoke("snap", nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Kind != WarmStart || warm.SnapStartRestore || warm.RestoreFeeUSD != 0 {
		t.Errorf("warm invocation wrong: %+v", warm)
	}
}

func TestInvokeBurstColdStorm(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("burst"))

	// Prime two warm instances with an initial burst of 2.
	first, err := p.InvokeBurst("burst", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range first {
		if inv.Kind != ColdStart {
			t.Error("initial burst should be all cold")
		}
	}
	stats, _ := p.FunctionStats("burst")
	if stats.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2", stats.ColdStarts)
	}

	// Wait for both to go idle, then burst 5: two warm, three cold.
	p.Advance(10 * time.Second)
	second, err := p.InvokeBurst("burst", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := 0, 0
	for _, inv := range second {
		if inv.Kind == ColdStart {
			cold++
		} else {
			warm++
		}
	}
	if warm != 2 || cold != 3 {
		t.Errorf("burst served warm=%d cold=%d, want 2/3", warm, cold)
	}
}

func TestBurstAdvancesClockBySlowest(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("b2"))
	t0 := p.Now()
	invs, err := p.InvokeBurst("b2", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	var maxE2E time.Duration
	for _, inv := range invs {
		if inv.E2E > maxE2E {
			maxE2E = inv.E2E
		}
	}
	if p.Now()-t0 != maxE2E {
		t.Errorf("clock advanced %v, want slowest E2E %v", p.Now()-t0, maxE2E)
	}
}

func TestBusyInstancesNotReused(t *testing.T) {
	p := New(DefaultConfig())
	p.Deploy(testApp("b3"))
	// A burst of 4 simultaneous requests needs 4 instances: none can be
	// shared while busy.
	invs, err := p.InvokeBurst("b3", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range invs {
		if inv.Kind != ColdStart {
			t.Error("simultaneous requests cannot share an instance")
		}
	}
}
