// Package pyparser parses the Python subset defined in internal/pylang into
// an AST. It is a hand-written recursive-descent parser with conventional
// Python operator precedence.
package pyparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pylang"
)

// ParseError reports a syntax error with its source position.
type ParseError struct {
	Module string
	Pos    pylang.Pos
	Msg    string
}

func (e *ParseError) Error() string {
	if e.Module != "" {
		return fmt.Sprintf("%s:%s: %s", e.Module, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Parse tokenizes and parses src. name is the dotted module name used in
// error messages and stored on the returned module.
func Parse(name, src string) (*pylang.Module, error) {
	toks, err := pylang.Tokenize(src)
	if err != nil {
		if le, ok := err.(*pylang.LexError); ok {
			return nil, &ParseError{Module: name, Pos: le.Pos, Msg: le.Msg}
		}
		return nil, err
	}
	p := &parser{name: name, toks: toks}
	mod := &pylang.Module{Name: name}
	for !p.at(pylang.EOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		mod.Body = append(mod.Body, s...)
	}
	return mod, nil
}

// MustParse parses src and panics on error; for tests and generated code.
func MustParse(name, src string) *pylang.Module {
	m, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (pylang.Expr, error) {
	toks, err := pylang.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.exprList()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.NEWLINE) && !p.at(pylang.EOF) {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

type parser struct {
	name string
	toks []pylang.Token
	pos  int
}

func (p *parser) cur() pylang.Token     { return p.toks[p.pos] }
func (p *parser) at(k pylang.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) peek(off int) pylang.Token {
	i := p.pos + off
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) next() pylang.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k pylang.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k pylang.Kind) (pylang.Token, error) {
	if !p.at(k) {
		return pylang.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Module: p.name, Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// statement parses one logical line, which may contain several simple
// statements separated by semicolons, or a single compound statement.
func (p *parser) statement() ([]pylang.Stmt, error) {
	switch p.cur().Kind {
	case pylang.KwIf, pylang.KwWhile, pylang.KwFor, pylang.KwDef,
		pylang.KwClass, pylang.KwTry, pylang.At:
		s, err := p.compoundStmt()
		if err != nil {
			return nil, err
		}
		return []pylang.Stmt{s}, nil
	}
	var out []pylang.Stmt
	for {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(pylang.Semicolon) {
			break
		}
		if p.at(pylang.NEWLINE) || p.at(pylang.EOF) {
			break
		}
	}
	if !p.accept(pylang.NEWLINE) && !p.at(pylang.EOF) {
		return nil, p.errf("expected newline, found %s", p.cur())
	}
	return out, nil
}

// block parses ":" NEWLINE INDENT stmt+ DEDENT, or ":" simple-stmt-line.
func (p *parser) block() ([]pylang.Stmt, error) {
	if _, err := p.expect(pylang.Colon); err != nil {
		return nil, err
	}
	if !p.at(pylang.NEWLINE) {
		// Inline suite: "if x: y = 1".
		return p.statement()
	}
	p.next() // NEWLINE
	if _, err := p.expect(pylang.INDENT); err != nil {
		return nil, err
	}
	var body []pylang.Stmt
	for !p.at(pylang.DEDENT) && !p.at(pylang.EOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s...)
	}
	p.accept(pylang.DEDENT)
	return body, nil
}

func (p *parser) compoundStmt() (pylang.Stmt, error) {
	switch p.cur().Kind {
	case pylang.KwIf:
		return p.ifStmt(pylang.KwIf)
	case pylang.KwWhile:
		return p.whileStmt()
	case pylang.KwFor:
		return p.forStmt()
	case pylang.KwDef:
		return p.defStmt(nil)
	case pylang.KwClass:
		return p.classStmt(nil)
	case pylang.KwTry:
		return p.tryStmt()
	case pylang.At:
		return p.decorated()
	}
	return nil, p.errf("unexpected %s", p.cur())
}

func (p *parser) decorated() (pylang.Stmt, error) {
	var decorators []pylang.Expr
	for p.at(pylang.At) {
		p.next()
		d, err := p.expr()
		if err != nil {
			return nil, err
		}
		decorators = append(decorators, d)
		if _, err := p.expect(pylang.NEWLINE); err != nil {
			return nil, err
		}
	}
	switch p.cur().Kind {
	case pylang.KwDef:
		return p.defStmt(decorators)
	case pylang.KwClass:
		return p.classStmt(decorators)
	}
	return nil, p.errf("expected def or class after decorator, found %s", p.cur())
}

func (p *parser) ifStmt(lead pylang.Kind) (pylang.Stmt, error) {
	tok, err := p.expect(lead)
	if err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &pylang.IfStmt{Pos: tok.Pos, Cond: cond, Body: body}
	switch p.cur().Kind {
	case pylang.KwElif:
		nested, err := p.ifStmt(pylang.KwElif)
		if err != nil {
			return nil, err
		}
		node.Else = []pylang.Stmt{nested}
	case pylang.KwElse:
		p.next()
		node.Else, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (pylang.Stmt, error) {
	tok := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &pylang.WhileStmt{Pos: tok.Pos, Cond: cond, Body: body}
	if p.accept(pylang.KwElse) {
		node.Else, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

func (p *parser) forStmt() (pylang.Stmt, error) {
	tok := p.next()
	target, err := p.targetList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pylang.KwIn); err != nil {
		return nil, err
	}
	iter, err := p.exprList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &pylang.ForStmt{Pos: tok.Pos, Target: target, Iter: iter, Body: body}
	if p.accept(pylang.KwElse) {
		node.Else, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

// targetList parses comma-separated names/attrs/subscripts used as a for
// target, producing a TupleExpr for more than one.
func (p *parser) targetList() (pylang.Expr, error) {
	first, err := p.postfixOnly()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.Comma) {
		return first, nil
	}
	elems := []pylang.Expr{first}
	for p.accept(pylang.Comma) {
		if p.at(pylang.KwIn) {
			break
		}
		e, err := p.postfixOnly()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &pylang.TupleExpr{Pos: first.Position(), Elems: elems}, nil
}

// postfixOnly parses an atom with trailers (no operators), the form valid
// as an assignment target.
func (p *parser) postfixOnly() (pylang.Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	return p.trailers(e)
}

func (p *parser) defStmt(decorators []pylang.Expr) (pylang.Stmt, error) {
	tok := p.next()
	nameTok, err := p.expect(pylang.NAME)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pylang.LParen); err != nil {
		return nil, err
	}
	params, err := p.paramList(pylang.RParen, true)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pylang.RParen); err != nil {
		return nil, err
	}
	// Optional return annotation, parsed and discarded.
	if p.accept(pylang.Arrow) {
		if _, err := p.expr(); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &pylang.DefStmt{Pos: tok.Pos, Name: nameTok.Text, Params: params,
		Body: body, Decorators: decorators}, nil
}

func (p *parser) paramList(end pylang.Kind, annotations bool) ([]pylang.Param, error) {
	var params []pylang.Param
	for !p.at(end) {
		nameTok, err := p.expect(pylang.NAME)
		if err != nil {
			return nil, err
		}
		param := pylang.Param{Name: nameTok.Text}
		// Optional type annotation, parsed and discarded. Lambdas cannot
		// carry annotations — there the colon terminates the list.
		if annotations && p.accept(pylang.Colon) {
			if _, err := p.exprNoCond(); err != nil {
				return nil, err
			}
		}
		if p.accept(pylang.Assign) {
			param.Default, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		params = append(params, param)
		if !p.accept(pylang.Comma) {
			break
		}
	}
	return params, nil
}

func (p *parser) classStmt(decorators []pylang.Expr) (pylang.Stmt, error) {
	tok := p.next()
	nameTok, err := p.expect(pylang.NAME)
	if err != nil {
		return nil, err
	}
	var bases []pylang.Expr
	if p.accept(pylang.LParen) {
		for !p.at(pylang.RParen) {
			b, err := p.expr()
			if err != nil {
				return nil, err
			}
			bases = append(bases, b)
			if !p.accept(pylang.Comma) {
				break
			}
		}
		if _, err := p.expect(pylang.RParen); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &pylang.ClassStmt{Pos: tok.Pos, Name: nameTok.Text, Bases: bases,
		Body: body, Decorators: decorators}, nil
}

func (p *parser) tryStmt() (pylang.Stmt, error) {
	tok := p.next()
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &pylang.TryStmt{Pos: tok.Pos, Body: body}
	for p.at(pylang.KwExcept) {
		exTok := p.next()
		clause := pylang.ExceptClause{Pos: exTok.Pos}
		if !p.at(pylang.Colon) {
			clause.Type, err = p.expr()
			if err != nil {
				return nil, err
			}
			if p.accept(pylang.KwAs) {
				nameTok, err := p.expect(pylang.NAME)
				if err != nil {
					return nil, err
				}
				clause.Name = nameTok.Text
			}
		}
		clause.Body, err = p.block()
		if err != nil {
			return nil, err
		}
		node.Excepts = append(node.Excepts, clause)
	}
	if p.accept(pylang.KwElse) {
		node.Else, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(pylang.KwFinally) {
		node.Finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if len(node.Excepts) == 0 && len(node.Finally) == 0 {
		return nil, p.errf("try statement needs except or finally")
	}
	return node, nil
}

func (p *parser) simpleStmt() (pylang.Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case pylang.KwImport:
		return p.importStmt()
	case pylang.KwFrom:
		return p.fromImportStmt()
	case pylang.KwReturn:
		p.next()
		node := &pylang.ReturnStmt{Pos: tok.Pos}
		if !p.at(pylang.NEWLINE) && !p.at(pylang.EOF) && !p.at(pylang.Semicolon) {
			v, err := p.exprList()
			if err != nil {
				return nil, err
			}
			node.Value = v
		}
		return node, nil
	case pylang.KwPass:
		p.next()
		return &pylang.PassStmt{Pos: tok.Pos}, nil
	case pylang.KwBreak:
		p.next()
		return &pylang.BreakStmt{Pos: tok.Pos}, nil
	case pylang.KwContinue:
		p.next()
		return &pylang.ContinueStmt{Pos: tok.Pos}, nil
	case pylang.KwRaise:
		p.next()
		node := &pylang.RaiseStmt{Pos: tok.Pos}
		if !p.at(pylang.NEWLINE) && !p.at(pylang.EOF) && !p.at(pylang.Semicolon) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Value = v
			// "raise X from Y" — parse and discard the cause.
			if p.at(pylang.KwFrom) {
				p.next()
				if _, err := p.expr(); err != nil {
					return nil, err
				}
			}
		}
		return node, nil
	case pylang.KwGlobal:
		p.next()
		var names []string
		for {
			nameTok, err := p.expect(pylang.NAME)
			if err != nil {
				return nil, err
			}
			names = append(names, nameTok.Text)
			if !p.accept(pylang.Comma) {
				break
			}
		}
		return &pylang.GlobalStmt{Pos: tok.Pos, Names: names}, nil
	case pylang.KwDel:
		p.next()
		var targets []pylang.Expr
		for {
			t, err := p.postfixOnly()
			if err != nil {
				return nil, err
			}
			targets = append(targets, t)
			if !p.accept(pylang.Comma) {
				break
			}
		}
		return &pylang.DelStmt{Pos: tok.Pos, Targets: targets}, nil
	case pylang.KwAssert:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		node := &pylang.AssertStmt{Pos: tok.Pos, Cond: cond}
		if p.accept(pylang.Comma) {
			node.Msg, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return node, nil
	}
	return p.exprOrAssign()
}

func (p *parser) importStmt() (pylang.Stmt, error) {
	tok := p.next()
	node := &pylang.ImportStmt{Pos: tok.Pos}
	for {
		name, err := p.dottedName()
		if err != nil {
			return nil, err
		}
		alias := pylang.Alias{Name: name}
		if p.accept(pylang.KwAs) {
			asTok, err := p.expect(pylang.NAME)
			if err != nil {
				return nil, err
			}
			alias.AsName = asTok.Text
		}
		node.Names = append(node.Names, alias)
		if !p.accept(pylang.Comma) {
			break
		}
	}
	return node, nil
}

func (p *parser) fromImportStmt() (pylang.Stmt, error) {
	tok := p.next()
	node := &pylang.FromImportStmt{Pos: tok.Pos}
	for p.at(pylang.Dot) {
		p.next()
		node.Level++
	}
	if p.at(pylang.NAME) {
		name, err := p.dottedName()
		if err != nil {
			return nil, err
		}
		node.Module = name
	} else if node.Level == 0 {
		return nil, p.errf("expected module name after from")
	}
	if _, err := p.expect(pylang.KwImport); err != nil {
		return nil, err
	}
	if p.accept(pylang.Star) {
		node.Star = true
		return node, nil
	}
	paren := p.accept(pylang.LParen)
	for {
		nameTok, err := p.expect(pylang.NAME)
		if err != nil {
			return nil, err
		}
		alias := pylang.Alias{Name: nameTok.Text}
		if p.accept(pylang.KwAs) {
			asTok, err := p.expect(pylang.NAME)
			if err != nil {
				return nil, err
			}
			alias.AsName = asTok.Text
		}
		node.Names = append(node.Names, alias)
		if !p.accept(pylang.Comma) {
			break
		}
		if paren && p.at(pylang.RParen) {
			break
		}
	}
	if paren {
		if _, err := p.expect(pylang.RParen); err != nil {
			return nil, err
		}
	}
	return node, nil
}

func (p *parser) dottedName() (string, error) {
	nameTok, err := p.expect(pylang.NAME)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(nameTok.Text)
	for p.at(pylang.Dot) && p.peek(1).Kind == pylang.NAME {
		p.next()
		part := p.next()
		sb.WriteByte('.')
		sb.WriteString(part.Text)
	}
	return sb.String(), nil
}

var augOps = map[pylang.Kind]pylang.Kind{
	pylang.PlusEq:        pylang.Plus,
	pylang.MinusEq:       pylang.Minus,
	pylang.StarEq:        pylang.Star,
	pylang.SlashEq:       pylang.Slash,
	pylang.PercentEq:     pylang.Percent,
	pylang.DoubleSlashEq: pylang.DoubleSlash,
	pylang.DoubleStarEq:  pylang.DoubleStar,
}

func (p *parser) exprOrAssign() (pylang.Stmt, error) {
	pos := p.cur().Pos
	first, err := p.exprList()
	if err != nil {
		return nil, err
	}
	if op, ok := augOps[p.cur().Kind]; ok {
		p.next()
		value, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return &pylang.AugAssignStmt{Pos: pos, Target: first, Op: op, Value: value}, nil
	}
	if !p.at(pylang.Assign) {
		return &pylang.ExprStmt{Pos: pos, Value: first}, nil
	}
	targets := []pylang.Expr{first}
	var value pylang.Expr
	for p.accept(pylang.Assign) {
		e, err := p.exprList()
		if err != nil {
			return nil, err
		}
		if p.at(pylang.Assign) {
			targets = append(targets, e)
		} else {
			value = e
		}
	}
	return &pylang.AssignStmt{Pos: pos, Targets: targets, Value: value}, nil
}

// exprList parses "expr (, expr)*", yielding a TupleExpr when more than one.
func (p *parser) exprList() (pylang.Expr, error) {
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.Comma) {
		return first, nil
	}
	elems := []pylang.Expr{first}
	for p.accept(pylang.Comma) {
		if p.exprListEnds() {
			break
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &pylang.TupleExpr{Pos: first.Position(), Elems: elems}, nil
}

func (p *parser) exprListEnds() bool {
	switch p.cur().Kind {
	case pylang.NEWLINE, pylang.EOF, pylang.Assign, pylang.Semicolon,
		pylang.RParen, pylang.RBracket, pylang.RBrace, pylang.Colon:
		return true
	}
	return false
}

// expr parses a full expression including conditionals and lambda.
func (p *parser) expr() (pylang.Expr, error) {
	if p.at(pylang.KwLambda) {
		return p.lambda()
	}
	body, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.KwIf) {
		return body, nil
	}
	p.next()
	cond, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pylang.KwElse); err != nil {
		return nil, err
	}
	orelse, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &pylang.CondExpr{Pos: body.Position(), Cond: cond, Body: body, OrElse: orelse}, nil
}

// exprNoCond parses an expression that stops before a trailing "if"
// (used for annotations where a conditional would be ambiguous).
func (p *parser) exprNoCond() (pylang.Expr, error) { return p.orExpr() }

func (p *parser) lambda() (pylang.Expr, error) {
	tok := p.next()
	params, err := p.paramList(pylang.Colon, false)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pylang.Colon); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &pylang.LambdaExpr{Pos: tok.Pos, Params: params, Body: body}, nil
}

func (p *parser) orExpr() (pylang.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.KwOr) {
		return left, nil
	}
	values := []pylang.Expr{left}
	for p.accept(pylang.KwOr) {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		values = append(values, right)
	}
	return &pylang.BoolOp{Pos: left.Position(), Op: pylang.KwOr, Values: values}, nil
}

func (p *parser) andExpr() (pylang.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(pylang.KwAnd) {
		return left, nil
	}
	values := []pylang.Expr{left}
	for p.accept(pylang.KwAnd) {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		values = append(values, right)
	}
	return &pylang.BoolOp{Pos: left.Position(), Op: pylang.KwAnd, Values: values}, nil
}

func (p *parser) notExpr() (pylang.Expr, error) {
	if p.at(pylang.KwNot) {
		tok := p.next()
		operand, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &pylang.UnaryOp{Pos: tok.Pos, Op: pylang.KwNot, Operand: operand}, nil
	}
	return p.comparison()
}

func isCompareOp(k pylang.Kind) bool {
	switch k {
	case pylang.Lt, pylang.Gt, pylang.Le, pylang.Ge, pylang.Eq, pylang.Ne,
		pylang.KwIn, pylang.KwNotIn, pylang.KwIs, pylang.KwIsNot:
		return true
	}
	return false
}

func (p *parser) comparison() (pylang.Expr, error) {
	left, err := p.arith()
	if err != nil {
		return nil, err
	}
	if !isCompareOp(p.cur().Kind) {
		return left, nil
	}
	node := &pylang.Compare{Pos: left.Position(), Left: left}
	for isCompareOp(p.cur().Kind) {
		op := p.next().Kind
		right, err := p.arith()
		if err != nil {
			return nil, err
		}
		node.Ops = append(node.Ops, op)
		node.Comparators = append(node.Comparators, right)
	}
	return node, nil
}

func (p *parser) arith() (pylang.Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.at(pylang.Plus) || p.at(pylang.Minus) {
		op := p.next().Kind
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = &pylang.BinOp{Pos: left.Position(), Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) term() (pylang.Expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.at(pylang.Star) || p.at(pylang.Slash) || p.at(pylang.DoubleSlash) || p.at(pylang.Percent) {
		op := p.next().Kind
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		left = &pylang.BinOp{Pos: left.Position(), Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) factor() (pylang.Expr, error) {
	if p.at(pylang.Minus) || p.at(pylang.Plus) {
		tok := p.next()
		operand, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &pylang.UnaryOp{Pos: tok.Pos, Op: tok.Kind, Operand: operand}, nil
	}
	return p.power()
}

func (p *parser) power() (pylang.Expr, error) {
	base, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.accept(pylang.DoubleStar) {
		exp, err := p.factor() // right-associative
		if err != nil {
			return nil, err
		}
		return &pylang.BinOp{Pos: base.Position(), Op: pylang.DoubleStar, Left: base, Right: exp}, nil
	}
	return base, nil
}

func (p *parser) postfix() (pylang.Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	return p.trailers(e)
}

func (p *parser) trailers(e pylang.Expr) (pylang.Expr, error) {
	for {
		switch p.cur().Kind {
		case pylang.Dot:
			p.next()
			nameTok, err := p.expect(pylang.NAME)
			if err != nil {
				return nil, err
			}
			e = &pylang.AttrExpr{Pos: e.Position(), Value: e, Attr: nameTok.Text}
		case pylang.LParen:
			p.next()
			call := &pylang.CallExpr{Pos: e.Position(), Func: e}
			for !p.at(pylang.RParen) {
				if p.at(pylang.NAME) && p.peek(1).Kind == pylang.Assign {
					nameTok := p.next()
					p.next() // =
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Keywords = append(call.Keywords, pylang.KeywordArg{Name: nameTok.Text, Value: v})
				} else {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					if len(call.Keywords) > 0 {
						return nil, p.errf("positional argument after keyword argument")
					}
					call.Args = append(call.Args, a)
				}
				if !p.accept(pylang.Comma) {
					break
				}
			}
			if _, err := p.expect(pylang.RParen); err != nil {
				return nil, err
			}
			e = call
		case pylang.LBracket:
			p.next()
			idx := &pylang.IndexExpr{Pos: e.Position(), Value: e}
			if p.at(pylang.Colon) {
				idx.Slice = true
			} else {
				first, err := p.expr()
				if err != nil {
					return nil, err
				}
				if p.at(pylang.Colon) {
					idx.Slice = true
					idx.Low = first
				} else {
					idx.Index = first
				}
			}
			if idx.Slice {
				if _, err := p.expect(pylang.Colon); err != nil {
					return nil, err
				}
				if !p.at(pylang.RBracket) {
					high, err := p.expr()
					if err != nil {
						return nil, err
					}
					idx.High = high
				}
			}
			if _, err := p.expect(pylang.RBracket); err != nil {
				return nil, err
			}
			e = idx
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (pylang.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case pylang.NAME:
		p.next()
		return &pylang.NameExpr{Pos: tok.Pos, Name: tok.Text}, nil
	case pylang.NUMBER:
		p.next()
		text := strings.ReplaceAll(tok.Text, "_", "")
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", tok.Text)
			}
			return &pylang.FloatLit{Pos: tok.Pos, Value: f}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errf("bad int literal %q", tok.Text)
		}
		return &pylang.IntLit{Pos: tok.Pos, Value: i}, nil
	case pylang.STRING:
		p.next()
		value := tok.Text
		// Adjacent string literal concatenation.
		for p.at(pylang.STRING) {
			value += p.next().Text
		}
		return &pylang.StringLit{Pos: tok.Pos, Value: value}, nil
	case pylang.KwTrue:
		p.next()
		return &pylang.BoolLit{Pos: tok.Pos, Value: true}, nil
	case pylang.KwFalse:
		p.next()
		return &pylang.BoolLit{Pos: tok.Pos, Value: false}, nil
	case pylang.KwNone:
		p.next()
		return &pylang.NoneLit{Pos: tok.Pos}, nil
	case pylang.LParen:
		p.next()
		if p.accept(pylang.RParen) {
			return &pylang.TupleExpr{Pos: tok.Pos}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.at(pylang.Comma) {
			elems := []pylang.Expr{e}
			for p.accept(pylang.Comma) {
				if p.at(pylang.RParen) {
					break
				}
				el, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, el)
			}
			e = &pylang.TupleExpr{Pos: tok.Pos, Elems: elems}
		}
		if _, err := p.expect(pylang.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case pylang.LBracket:
		p.next()
		node := &pylang.ListExpr{Pos: tok.Pos}
		for !p.at(pylang.RBracket) {
			el, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Elems = append(node.Elems, el)
			if !p.accept(pylang.Comma) {
				break
			}
		}
		if _, err := p.expect(pylang.RBracket); err != nil {
			return nil, err
		}
		return node, nil
	case pylang.LBrace:
		p.next()
		node := &pylang.DictExpr{Pos: tok.Pos}
		for !p.at(pylang.RBrace) {
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(pylang.Colon); err != nil {
				return nil, err
			}
			value, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Items = append(node.Items, pylang.DictItem{Key: key, Value: value})
			if !p.accept(pylang.Comma) {
				break
			}
		}
		if _, err := p.expect(pylang.RBrace); err != nil {
			return nil, err
		}
		return node, nil
	}
	return nil, p.errf("unexpected %s", tok)
}
