package pyparser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pylang"
)

// The parser's contract with the debloating pipeline: any input — corrupt,
// truncated, or hostile — yields a parse error or an AST, never a panic.

var seedPrograms = []string{
	`
import torch
from torch.nn import Linear, MSELoss

def handler(event, context):
    x = torch.tensor([1.0, 2.0])
    if event.get("mode") == "advanced":
        return getattr(torch, "pad_" + "0000")(x)
    return {"result": x.data}
`,
	`
class Model(Base):
    def __init__(self, n=8):
        self.layers = [Linear(n, 1) for_ = 0]
    def forward(self, t):
        return t
`,
	`
try:
    cfg = load()
except (IOError, ValueError) as e:
    cfg = {"err": str(e), "vals": [1, 2.5, (3,)]}
finally:
    ready = cfg is not None and len(cfg) > 0
`,
	"x = 1\ny = x ** 2 // 3 % 4 - -5\nprint(x < y <= 10)\n",
}

// mutate corrupts src deterministically: byte flips, truncations,
// duplications, token splices.
func mutateSource(rng *rand.Rand, src string) string {
	b := []byte(src)
	switch rng.Intn(5) {
	case 0: // flip a byte
		if len(b) > 0 {
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
	case 1: // truncate
		if len(b) > 1 {
			b = b[:rng.Intn(len(b))]
		}
	case 2: // duplicate a slice
		if len(b) > 2 {
			i, j := rng.Intn(len(b)), rng.Intn(len(b))
			if i > j {
				i, j = j, i
			}
			b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
		}
	case 3: // splice a random token
		tokens := []string{"def ", "class ", "import ", "lambda", "(", ")", ":",
			"\n    ", "**", "//", "\"", "'", "del ", "from ", "@", "=", "#"}
		tok := tokens[rng.Intn(len(tokens))]
		pos := rng.Intn(len(b) + 1)
		b = append(b[:pos], append([]byte(tok), b[pos:]...)...)
	case 4: // swap two regions
		if len(b) > 4 {
			i := rng.Intn(len(b) - 2)
			j := rng.Intn(len(b) - 2)
			b[i], b[j] = b[j], b[i]
		}
	}
	return string(b)
}

func TestParserNeverPanicsOnMutants(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 3000; trial++ {
		src := seedPrograms[rng.Intn(len(seedPrograms))]
		// Stack 1-4 mutations.
		for n := rng.Intn(4) + 1; n > 0; n-- {
			src = mutateSource(rng, src)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutant (trial %d): %v\nsource:\n%s", trial, r, src)
				}
			}()
			mod, err := Parse("mutant", src)
			if err == nil && mod == nil {
				t.Fatalf("nil module without error (trial %d)", trial)
			}
		}()
	}
}

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1500; trial++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on random bytes (trial %d): %v\n%q", trial, r, src)
				}
			}()
			Parse("random", src)
		}()
	}
}

// TestSuccessfulMutantsRoundTrip: whenever a mutant parses, the printed
// form must re-parse — the write-back invariant holds even for weird but
// valid programs.
func TestSuccessfulMutantsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	parsed := 0
	for trial := 0; trial < 3000 && parsed < 300; trial++ {
		src := seedPrograms[rng.Intn(len(seedPrograms))]
		src = mutateSource(rng, src)
		mod, err := Parse("mutant", src)
		if err != nil {
			continue
		}
		parsed++
		printed := pylang.Print(mod)
		if _, err := Parse("mutant-printed", printed); err != nil {
			t.Fatalf("printed mutant does not re-parse: %v\noriginal:\n%s\nprinted:\n%s",
				err, src, printed)
		}
	}
	if parsed < 50 {
		t.Logf("only %d mutants parsed (expected; mutations are mostly destructive)", parsed)
	}
}

func TestDeeplyNestedInput(t *testing.T) {
	// Deep expression nesting must not blow the stack unreasonably.
	deep := strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000)
	func() {
		defer func() { recover() }() // a parse error is fine; a crash is not
		Parse("deep", "x = "+deep+"\n")
	}()

	deepIndent := ""
	for i := 0; i < 500; i++ {
		deepIndent += strings.Repeat("    ", i) + "if x:\n"
	}
	deepIndent += strings.Repeat("    ", 500) + "pass\n"
	if _, err := Parse("indent", deepIndent); err != nil {
		t.Logf("deep indentation rejected cleanly: %v", err)
	}
}
