package pyparser

import (
	"strings"
	"testing"

	"repro/internal/pylang"
)

func parse(t *testing.T, src string) *pylang.Module {
	t.Helper()
	m, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return m
}

func TestParseImports(t *testing.T) {
	m := parse(t, `
import numpy
import torch.nn as nn, os
from pandas import DataFrame as DF, Series
from . import sibling
from ..pkg import thing
from mod import *
`)
	imp := m.Body[0].(*pylang.ImportStmt)
	if imp.Names[0].Name != "numpy" {
		t.Errorf("import name = %q", imp.Names[0].Name)
	}
	multi := m.Body[1].(*pylang.ImportStmt)
	if multi.Names[0].Name != "torch.nn" || multi.Names[0].AsName != "nn" || multi.Names[1].Name != "os" {
		t.Errorf("multi import = %+v", multi.Names)
	}
	from := m.Body[2].(*pylang.FromImportStmt)
	if from.Module != "pandas" || from.Names[0].AsName != "DF" || from.Names[1].Name != "Series" {
		t.Errorf("from import = %+v", from)
	}
	rel := m.Body[3].(*pylang.FromImportStmt)
	if rel.Level != 1 || rel.Module != "" || rel.Names[0].Name != "sibling" {
		t.Errorf("relative import = %+v", rel)
	}
	rel2 := m.Body[4].(*pylang.FromImportStmt)
	if rel2.Level != 2 || rel2.Module != "pkg" {
		t.Errorf("relative import 2 = %+v", rel2)
	}
	star := m.Body[5].(*pylang.FromImportStmt)
	if !star.Star {
		t.Error("star import not recognized")
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":        "1 + 2 * 3",
		"(1 + 2) * 3":      "(1 + 2) * 3",
		"-x ** 2":          "-x ** 2", // unary binds looser than **
		"2 ** 3 ** 2":      "2 ** 3 ** 2",
		"not a or b and c": "not a or b and c",
		"a < b == c":       "a < b == c",
		"x if c else y":    "x if c else y",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got := pylang.PrintExpr(e); got != want {
			t.Errorf("%q printed as %q, want %q", src, got, want)
		}
	}
}

func TestParsePowerRightAssociative(t *testing.T) {
	e, err := ParseExpr("2 ** 3 ** 2")
	if err != nil {
		t.Fatal(err)
	}
	outer := e.(*pylang.BinOp)
	if _, ok := outer.Right.(*pylang.BinOp); !ok {
		t.Error("** should be right-associative")
	}
}

func TestParseCallForms(t *testing.T) {
	e, err := ParseExpr("f(1, x, key=2, other=g())")
	if err != nil {
		t.Fatal(err)
	}
	call := e.(*pylang.CallExpr)
	if len(call.Args) != 2 || len(call.Keywords) != 2 {
		t.Errorf("args=%d kwargs=%d", len(call.Args), len(call.Keywords))
	}
	if call.Keywords[0].Name != "key" {
		t.Errorf("kw name = %q", call.Keywords[0].Name)
	}
}

func TestParsePositionalAfterKeywordError(t *testing.T) {
	if _, err := ParseExpr("f(a=1, 2)"); err == nil {
		t.Error("expected error for positional after keyword")
	}
}

func TestParseTrailerChains(t *testing.T) {
	e, err := ParseExpr("a.b[0].c(1)[2:3]")
	if err != nil {
		t.Fatal(err)
	}
	idx := e.(*pylang.IndexExpr)
	if !idx.Slice {
		t.Error("outermost should be a slice")
	}
}

func TestParseCompoundStatements(t *testing.T) {
	m := parse(t, `
def f(a, b=2, c=None):
    if a > b:
        return a
    elif a == b:
        return b
    else:
        return c

class Shape(Base):
    def area(self):
        pass

for i, v in pairs:
    total += v
else:
    done = True

while x:
    break

try:
    risky()
except (A, B) as e:
    handle(e)
except:
    pass
finally:
    cleanup()
`)
	def := m.Body[0].(*pylang.DefStmt)
	if len(def.Params) != 3 || def.Params[1].Default == nil || def.Params[0].Default != nil {
		t.Errorf("params = %+v", def.Params)
	}
	ifStmt := def.Body[0].(*pylang.IfStmt)
	if len(ifStmt.Else) != 1 {
		t.Fatalf("elif not nested")
	}
	if _, ok := ifStmt.Else[0].(*pylang.IfStmt); !ok {
		t.Error("elif should nest as IfStmt in Else")
	}
	class := m.Body[1].(*pylang.ClassStmt)
	if class.Name != "Shape" || len(class.Bases) != 1 {
		t.Errorf("class = %+v", class)
	}
	forStmt := m.Body[2].(*pylang.ForStmt)
	if _, ok := forStmt.Target.(*pylang.TupleExpr); !ok {
		t.Error("for target should be a tuple")
	}
	if len(forStmt.Else) == 0 {
		t.Error("for-else missing")
	}
	try := m.Body[4].(*pylang.TryStmt)
	if len(try.Excepts) != 2 || try.Excepts[0].Name != "e" || try.Excepts[1].Type != nil {
		t.Errorf("try = %+v", try)
	}
	if len(try.Finally) != 1 {
		t.Error("finally missing")
	}
}

func TestParseDecorators(t *testing.T) {
	m := parse(t, `
@wrap
@registry.register("name")
def f():
    pass
`)
	def := m.Body[0].(*pylang.DefStmt)
	if len(def.Decorators) != 2 {
		t.Fatalf("decorators = %d", len(def.Decorators))
	}
}

func TestParseAnnotationsDiscarded(t *testing.T) {
	m := parse(t, `
def f(a: int, b: list = None) -> str:
    return "x"
`)
	def := m.Body[0].(*pylang.DefStmt)
	if len(def.Params) != 2 || def.Params[1].Default == nil {
		t.Errorf("annotated params = %+v", def.Params)
	}
}

func TestParseLambdaNoAnnotations(t *testing.T) {
	e, err := ParseExpr("lambda a, b: a * b")
	if err != nil {
		t.Fatal(err)
	}
	lam := e.(*pylang.LambdaExpr)
	if len(lam.Params) != 2 {
		t.Errorf("lambda params = %d", len(lam.Params))
	}
}

func TestParseChainedAndMultiAssign(t *testing.T) {
	m := parse(t, "a = b = c = 1\nx, y = y, x\nd[k] = v\no.attr = 2\n")
	multi := m.Body[0].(*pylang.AssignStmt)
	if len(multi.Targets) != 3 {
		t.Errorf("chained targets = %d", len(multi.Targets))
	}
	swap := m.Body[1].(*pylang.AssignStmt)
	if _, ok := swap.Targets[0].(*pylang.TupleExpr); !ok {
		t.Error("tuple target expected")
	}
	if _, ok := swap.Value.(*pylang.TupleExpr); !ok {
		t.Error("tuple value expected")
	}
}

func TestParseSemicolons(t *testing.T) {
	m := parse(t, "a = 1; b = 2; c = 3\n")
	if len(m.Body) != 3 {
		t.Errorf("%d statements, want 3", len(m.Body))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"def f(:\n    pass\n",
		"if x\n    pass\n",
		"return 1\n2 +\n",
		"from import x\n",
		"try:\n    pass\n", // try without except/finally
		"x = (1, 2\n",
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("mod", "x = 1\ny = (\n")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Module != "mod" || pe.Pos.Line < 2 {
		t.Errorf("error position = %+v", pe)
	}
}

// TestPrintParseRoundTrip checks that printing a parsed module and parsing
// the output reaches a fixed point — the property the debloater relies on
// when writing rewritten modules back to site-packages.
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		`
import numpy as np
from torch.nn import Linear, MSELoss

__version__ = "1.0"

def compute(data, factor=2):
    out = []
    for x in data:
        if x % 2 == 0:
            out.append(x * factor)
        else:
            out.append(-x)
    return out

class Model(Base):
    def __init__(self, n):
        self.n = n
        self.weights = native_alloc(1.5)
    def forward(self, t):
        return t if self.n > 0 else None

try:
    cfg = load()
except (IOError, ValueError) as e:
    cfg = {"fallback": True, "err": str(e)}
finally:
    ready = True

items = [1, 2.5, "three", (4,), {"k": [5]}]
f = lambda a, b=1: a ** b
del items[0]
assert ready, "not ready"
while cfg:
    break
`,
	}
	for _, src := range srcs {
		m1 := parse(t, src)
		p1 := pylang.Print(m1)
		m2 := parse(t, p1)
		p2 := pylang.Print(m2)
		if p1 != p2 {
			t.Errorf("print/parse not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
		}
	}
}

// TestRoundTripPreservesStatementCount double-checks no statements are
// silently dropped or duplicated by the printer.
func TestRoundTripPreservesStatementCount(t *testing.T) {
	src := `
a = 1
b = 2
def f():
    pass
class C:
    pass
print(a)
`
	m1 := parse(t, src)
	m2 := parse(t, pylang.Print(m1))
	if len(m1.Body) != len(m2.Body) {
		t.Errorf("statement count %d -> %d", len(m1.Body), len(m2.Body))
	}
}

func TestParseAdjacentStringConcatenation(t *testing.T) {
	e, err := ParseExpr(`"abc" "def"`)
	if err != nil {
		t.Fatal(err)
	}
	lit := e.(*pylang.StringLit)
	if lit.Value != "abcdef" {
		t.Errorf("concat = %q", lit.Value)
	}
}

func TestParseRaiseFrom(t *testing.T) {
	m := parse(t, "raise ValueError(\"x\") from err\n")
	r := m.Body[0].(*pylang.RaiseStmt)
	if r.Value == nil {
		t.Error("raise value missing")
	}
}

func TestParseInlineSuite(t *testing.T) {
	m := parse(t, "if x: y = 1\n")
	ifStmt := m.Body[0].(*pylang.IfStmt)
	if len(ifStmt.Body) != 1 {
		t.Errorf("inline suite body = %d", len(ifStmt.Body))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("bad", "def (:\n")
}

func TestParseGlobalAndDel(t *testing.T) {
	m := parse(t, "global a, b\ndel x, y.z\n")
	g := m.Body[0].(*pylang.GlobalStmt)
	if strings.Join(g.Names, ",") != "a,b" {
		t.Errorf("global names = %v", g.Names)
	}
	d := m.Body[1].(*pylang.DelStmt)
	if len(d.Targets) != 2 {
		t.Errorf("del targets = %d", len(d.Targets))
	}
}
