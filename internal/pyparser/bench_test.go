package pyparser

import (
	"strings"
	"testing"

	"repro/internal/pylang"
)

var benchSrc = strings.Repeat(`
def process(data, factor=2):
    out = []
    for x in data:
        if x % 2 == 0:
            out.append(x * factor)
    return out

class Worker(Base):
    def __init__(self, n):
        self.n = n
    def run(self):
        return process(range(self.n))
`, 20)

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench", benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrint(b *testing.B) {
	mod := MustParse("bench", benchSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pylang.Print(mod)
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	for i := 0; i < b.N; i++ {
		if _, err := pylang.Tokenize(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}
