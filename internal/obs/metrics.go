package obs

import (
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Registry is the metrics side of the observability layer: named counters,
// gauges, and fixed-bucket latency histograms (stats.Histogram). All
// methods are nil-safe and safe for concurrent use; every accumulation is
// order-independent (sums and bucket counts), so concurrent writers — the
// one concurrent producer is parallel DD — cannot perturb determinism.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Inc adds delta to a counter.
func (r *Registry) Inc(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// SetGauge sets a gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Observe records v into the named histogram, creating it on first use.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = stats.NewHistogram()
		r.hists[name] = h
	}
	h.Observe(v)
}

// Counter reads a counter (0 when absent or on a nil registry).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge reads a gauge (0 when absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Histogram returns a merged copy of the named histogram (nil when absent),
// so callers can take quantiles without racing recorders.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return nil
	}
	cp := stats.NewHistogram()
	cp.Merge(h)
	return cp
}

// Merge folds another registry into r: counters sum, gauges take o's value
// (last-writer-wins, matching sequential SetGauge order when merges happen
// in that order), histograms merge bucket-wise. Order-independent for
// counters and histograms; gauge determinism relies on callers merging in a
// fixed order. Nil-safe on both sides.
//
// o's state is copied out under its own lock before r's is taken — the two
// locks are never held together, so concurrent cross-merges (worker pools
// folding results both ways) cannot deadlock on acquisition order, and a
// mid-replay Snapshot on either side sees a consistent registry.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	counters := make(map[string]int64, len(o.counters))
	for name, v := range o.counters {
		counters[name] = v
	}
	gauges := make(map[string]float64, len(o.gauges))
	for name, v := range o.gauges {
		gauges[name] = v
	}
	hists := make(map[string]*stats.Histogram, len(o.hists))
	for name, h := range o.hists {
		cp := stats.NewHistogram()
		cp.Merge(h)
		hists[name] = cp
	}
	o.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range counters {
		r.counters[name] += v
	}
	for name, v := range gauges {
		r.gauges[name] = v
	}
	for name, h := range hists {
		dst, ok := r.hists[name]
		if !ok {
			dst = stats.NewHistogram()
			r.hists[name] = dst
		}
		dst.Merge(h)
	}
}

// CounterSnapshot is one counter in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot summarizes one latency histogram with the percentiles
// the experiment tables quote.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time, deterministically-ordered (name-sorted)
// export of the registry.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: v})
	}
	for name, v := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: v})
	}
	for name, h := range r.hists {
		snap.Histograms = append(snap.Histograms, HistogramSnapshot{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// JSON renders the snapshot as indented JSON (deterministic: slices are
// name-sorted and struct field order is fixed).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
