package obs

import (
	"strconv"
	"strings"
)

// openMetricsName sanitizes a registry metric name for text exposition:
// characters outside [a-zA-Z0-9_] become '_', under the shared
// "lambdatrim_" namespace used by the monitor exposition.
func openMetricsName(s string) string {
	var b strings.Builder
	b.WriteString("lambdatrim_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func openMetricsFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// OpenMetrics renders the snapshot as an OpenMetrics text exposition:
// counters as counter families, gauges as gauge families, and histograms
// as gauge families carrying count/sum and the snapshot quantiles as
// labeled samples. The snapshot is already name-sorted, so the exposition
// is byte-stable. An empty snapshot yields just the EOF terminator.
func (s Snapshot) OpenMetrics() []byte {
	var b strings.Builder
	for _, c := range s.Counters {
		n := openMetricsName(c.Name)
		b.WriteString("# TYPE " + n + " counter\n")
		b.WriteString(n + "_total " + strconv.FormatInt(c.Value, 10) + "\n")
	}
	for _, g := range s.Gauges {
		n := openMetricsName(g.Name)
		b.WriteString("# TYPE " + n + " gauge\n")
		b.WriteString(n + " " + openMetricsFloat(g.Value) + "\n")
	}
	for _, h := range s.Histograms {
		n := openMetricsName(h.Name)
		b.WriteString("# TYPE " + n + "_count counter\n")
		b.WriteString(n + "_count " + strconv.FormatUint(h.Count, 10) + "\n")
		b.WriteString("# TYPE " + n + "_sum gauge\n")
		b.WriteString(n + "_sum " + openMetricsFloat(h.Sum) + "\n")
		b.WriteString("# TYPE " + n + " gauge\n")
		b.WriteString(n + `{quantile="0.5"} ` + openMetricsFloat(h.P50) + "\n")
		b.WriteString(n + `{quantile="0.95"} ` + openMetricsFloat(h.P95) + "\n")
		b.WriteString(n + `{quantile="0.99"} ` + openMetricsFloat(h.P99) + "\n")
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}
