package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("a", "cat", 0)
	if sp != nil {
		t.Fatal("nil tracer should return nil spans")
	}
	sp.Add(Int("k", 1)) // must not panic
	tr.End(sp, time.Second)
	tr.Emit("e", 0, String("k", "v"))
	child := tr.StartChild(nil, "b", "cat", 0)
	child.Finish(time.Second)
	if tr.Current() != nil || tr.Roots() != nil || tr.Events() != nil {
		t.Error("nil tracer accessors should return nil")
	}
	tr.Metrics().Inc("c", 1)
	tr.Metrics().Observe("h", 1)
	if tr.Metrics().Counter("c") != 0 {
		t.Error("nil registry counter should read 0")
	}
	if s := tr.Summary(); !strings.Contains(s, "disabled") {
		t.Errorf("nil summary = %q", s)
	}
	if out, err := tr.ChromeTrace(); err != nil || !json.Valid(out) {
		t.Errorf("nil ChromeTrace should still be valid JSON: %v", err)
	}
}

func TestSpanStackNesting(t *testing.T) {
	tr := New()
	root := tr.Start("root", "test", 0)
	child := tr.Start("child", "test", 10*time.Millisecond)
	grand := tr.Start("grand", "test", 20*time.Millisecond)
	tr.End(grand, 30*time.Millisecond)
	tr.End(child, 40*time.Millisecond)
	if tr.Current() != root {
		t.Fatal("stack should have unwound to root")
	}
	tr.End(root, 50*time.Millisecond)
	if tr.Current() != nil {
		t.Fatal("stack should be empty")
	}

	roots := tr.Roots()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("roots = %v", roots)
	}
	if len(root.Children) != 1 || root.Children[0] != child {
		t.Fatal("child should nest under root")
	}
	if len(child.Children) != 1 || child.Children[0] != grand {
		t.Fatal("grand should nest under child")
	}
	if grand.Dur() != 10*time.Millisecond {
		t.Errorf("grand duration = %v", grand.Dur())
	}
}

func TestStartChildExplicitParent(t *testing.T) {
	tr := New()
	root := tr.Start("root", "test", 0)
	a := tr.StartChild(root, "a", "test", 0)
	b := tr.StartChild(root, "b", "test", time.Millisecond)
	a.Finish(2 * time.Millisecond)
	b.Finish(3 * time.Millisecond)
	// StartChild must not disturb the stack.
	if tr.Current() != root {
		t.Fatal("StartChild must not push onto the stack")
	}
	tr.End(root, 4*time.Millisecond)
	if len(root.Children) != 2 || root.Children[0] != a || root.Children[1] != b {
		t.Fatalf("children order = %v", root.Children)
	}
	// Nil parent falls back to the stack top, then to a new root.
	orphan := tr.StartChild(nil, "orphan", "test", 0)
	orphan.Finish(time.Millisecond)
	if len(tr.Roots()) != 2 {
		t.Fatalf("orphan should become a root, roots = %d", len(tr.Roots()))
	}
}

func TestEndOutOfOrderPopsThrough(t *testing.T) {
	tr := New()
	root := tr.Start("root", "test", 0)
	tr.Start("inner", "test", 0) // never explicitly ended
	tr.End(root, time.Second)
	if tr.Current() != nil {
		t.Error("ending an outer span should pop inner spans too")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	root := tr.Start("root", "pipeline", 0)
	root.Add(Int("k", 42))
	tr.Start("child", "pipeline", 100*time.Microsecond)
	tr.End(tr.Current(), 300*time.Microsecond)
	tr.End(root, time.Millisecond)
	tr.Emit("fault", 200*time.Microsecond, String("class", "oom"))

	out, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("want 3 events, got %d", len(doc.TraceEvents))
	}
	first := doc.TraceEvents[0]
	if first["name"] != "root" || first["ph"] != "X" || first["dur"].(float64) != 1000 {
		t.Errorf("root event = %v", first)
	}
	if args, ok := first["args"].(map[string]any); !ok || args["k"] != "42" {
		t.Errorf("root args = %v", first["args"])
	}
	inst := doc.TraceEvents[2]
	if inst["ph"] != "i" || inst["name"] != "fault" {
		t.Errorf("instant event = %v", inst)
	}
}

func TestEventLogJSONL(t *testing.T) {
	tr := New()
	tr.Emit("invocation", 1500*time.Microsecond,
		String("fn", "app"), String("err", `faas: "quoted" detail`))
	tr.Emit("second", 2*time.Millisecond)
	out := tr.EventLogJSONL()
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["ts_us"].(float64) != 1500 || rec["name"] != "invocation" || rec["fn"] != "app" {
		t.Errorf("line 0 = %v", rec)
	}
	if rec["err"] != `faas: "quoted" detail` {
		t.Errorf("err round-trip = %q", rec["err"])
	}
}

func TestLogLineFromAttrs(t *testing.T) {
	attrs := []Attr{
		{Key: "fn", Val: "app"},
		{Key: "n", Val: "3"},
		{Key: "err", Val: "faas: app: oom: peak exceeds"},
	}
	got := LogLineFromAttrs(attrs)
	want := `fn=app n=3 err="faas: app: oom: peak exceeds"`
	if got != want {
		t.Errorf("LogLineFromAttrs = %q, want %q", got, want)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Inc("b.counter", 2)
	reg.Inc("a.counter", 1)
	reg.SetGauge("g", 1.5)
	for i := 1; i <= 100; i++ {
		reg.Observe("lat.seconds", float64(i)/100)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a.counter" {
		t.Fatalf("counters not sorted: %v", snap.Counters)
	}
	h := snap.Histograms[0]
	if h.Count != 100 || h.Min != 0.01 || h.Max != 1 {
		t.Errorf("histogram snapshot = %+v", h)
	}
	if h.P50 <= 0 || h.P50 >= h.P99 || h.P99 > h.Max {
		t.Errorf("percentiles out of order: %+v", h)
	}
	j1, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := reg.Snapshot().JSON()
	if !bytes.Equal(j1, j2) {
		t.Error("snapshot JSON not byte-stable")
	}
}

func TestSummaryContents(t *testing.T) {
	tr := New()
	s := tr.Start("invoke app", "faas", 0)
	tr.End(s, 100*time.Millisecond)
	tr.Metrics().Observe("faas.e2e.seconds", 0.1)
	tr.Metrics().Inc("faas.invocations", 1)
	sum := tr.Summary()
	for _, want := range []string{"invoke app", "faas.e2e.seconds", "faas.invocations", "1 spans"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
