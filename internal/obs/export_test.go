package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// Regression test for the Merge lock ordering: concurrent cross-merges
// (a→b while b→a) plus mid-merge snapshots must neither deadlock nor race.
// Run with -race; the pre-fix implementation held both registry locks at
// once and could deadlock on acquisition order.
func TestRegistryMergeConcurrent(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				a.Inc("n", 1)
				a.Observe("lat", 0.001)
				a.Merge(b)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Inc("n", 1)
				b.Observe("lat", 0.002)
				b.Merge(a)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = a.Snapshot()
				_ = b.Snapshot()
				_ = a.Histogram("lat")
			}
		}()
	}
	wg.Wait()
	// Sanity only — the interleaving is nondeterministic, but each side
	// must retain at least its own 200 increments.
	if got := a.Counter("n"); got < 200 {
		t.Errorf("a.n = %d, want >= 200", got)
	}
	if got := b.Counter("n"); got < 200 {
		t.Errorf("b.n = %d, want >= 200", got)
	}
}

func TestRegistryMergeSequentialSemantics(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Inc("c", 2)
	b.Inc("c", 3)
	a.SetGauge("g", 1)
	b.SetGauge("g", 7)
	a.Observe("h", 0.5)
	b.Observe("h", 1.5)
	a.Merge(b)
	a.Merge(nil)
	(*Registry)(nil).Merge(b)
	if got := a.Counter("c"); got != 5 {
		t.Errorf("counter = %d", got)
	}
	if got := a.Gauge("g"); got != 7 {
		t.Errorf("gauge = %d, want o's value", int(got))
	}
	h := a.Histogram("h")
	if h == nil || h.Count() != 2 || h.Sum() != 2.0 {
		t.Errorf("merged histogram = %+v", h)
	}
	// b is unchanged by being a merge source.
	if b.Counter("c") != 3 || b.Histogram("h").Count() != 1 {
		t.Error("merge mutated its source")
	}
}

func TestFoldedStacks(t *testing.T) {
	tr := New()
	root := tr.Start("replay", "phase", 0)
	childA := tr.StartChild(root, "init", "phase", 1*time.Millisecond)
	childA.Finish(4 * time.Millisecond)
	childB := tr.StartChild(root, "exec", "phase", 4*time.Millisecond)
	childB.Finish(6 * time.Millisecond)
	tr.End(root, 6500*time.Microsecond)

	got := string(tr.FoldedStacks())
	want := "replay 1500\nreplay;exec 2000\nreplay;init 3000\n"
	if got != want {
		t.Errorf("folded stacks:\n%s\nwant:\n%s", got, want)
	}
}

func TestFoldedStacksUnfinishedSpans(t *testing.T) {
	tr := New()
	root := tr.Start("replay", "phase", 0)
	child := tr.StartChild(root, "init", "phase", 0)
	child.Finish(2 * time.Millisecond)
	// root is never ended: Dur() is 0, so self-time clamps to zero and the
	// open span contributes no line, while its finished child still does.
	got := string(tr.FoldedStacks())
	want := "replay;init 2000\n"
	if got != want {
		t.Errorf("folded stacks with open root:\n%q\nwant %q", got, want)
	}
}

func TestFoldedStacksEmptyAndNil(t *testing.T) {
	var nilTr *Tracer
	if b := nilTr.FoldedStacks(); b != nil {
		t.Errorf("nil tracer folded stacks = %q", b)
	}
	if b := New().FoldedStacks(); len(b) != 0 {
		t.Errorf("empty tracer folded stacks = %q", b)
	}
}

func TestSnapshotOpenMetricsEmptyRegistry(t *testing.T) {
	got := string(NewRegistry().Snapshot().OpenMetrics())
	if got != "# EOF\n" {
		t.Errorf("empty registry exposition = %q", got)
	}
	var nilReg *Registry
	if got := string(nilReg.Snapshot().OpenMetrics()); got != "# EOF\n" {
		t.Errorf("nil registry exposition = %q", got)
	}
}

func TestSnapshotOpenMetricsContents(t *testing.T) {
	r := NewRegistry()
	r.Inc("faas.invocations", 3)
	r.SetGauge("pool.size", 2)
	r.Observe("faas.cold.e2e", 0.25)
	r.Observe("faas.cold.e2e", 0.75)
	om := string(r.Snapshot().OpenMetrics())
	for _, want := range []string{
		"# TYPE lambdatrim_faas_invocations counter",
		"lambdatrim_faas_invocations_total 3",
		"lambdatrim_pool_size 2",
		"lambdatrim_faas_cold_e2e_count 2",
		"lambdatrim_faas_cold_e2e_sum 1",
		`lambdatrim_faas_cold_e2e{quantile="0.95"}`,
	} {
		if !strings.Contains(om, want) {
			t.Errorf("exposition missing %q:\n%s", want, om)
		}
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("exposition must end with # EOF")
	}
	if !bytes.Equal(r.Snapshot().OpenMetrics(), r.Snapshot().OpenMetrics()) {
		t.Error("exposition is not byte-stable")
	}
}

// Zero-invocation exporters: a fresh tracer that recorded nothing must
// still produce structurally valid Chrome/JSONL/metrics output.
func TestExportersZeroInvocations(t *testing.T) {
	tr := New()
	chrome, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(chrome); got != "{\"traceEvents\":[\n]}\n" {
		t.Errorf("empty chrome trace = %q", got)
	}
	if got := tr.EventLogJSONL(); len(got) != 0 {
		t.Errorf("empty event log = %q", got)
	}
	if _, err := tr.Metrics().Snapshot().JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceUnfinishedSpan(t *testing.T) {
	tr := New()
	tr.Start("open", "phase", 0)
	b, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	// An open span exports with dur 0 — valid JSON, not a hang or panic.
	if !strings.Contains(string(b), `"dur":0`) {
		t.Errorf("open span should export dur 0:\n%s", b)
	}
}
