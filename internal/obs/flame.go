package obs

import (
	"sort"
	"strconv"
	"strings"
)

// FoldedStacks renders the span tree in Brendan Gregg's folded-stack
// format — one line per distinct span path, "root;child;leaf <self_us>" —
// loadable by speedscope, inferno, or flamegraph.pl. Self time is a span's
// duration minus its children's (clamped at zero, so overlapping child
// spans from concurrent layers cannot go negative); durations are integer
// microseconds of simulated time. Unfinished spans have zero duration
// (Span.Dur) and thus contribute no self time; paths whose self time rounds
// to zero are omitted. Lines are path-sorted, so output is byte-stable.
// Safe on a nil tracer (empty output).
func (t *Tracer) FoldedStacks() []byte {
	if t == nil {
		return nil
	}
	self := make(map[string]int64)
	var path []string
	var visit func(s *Span)
	visit = func(s *Span) {
		path = append(path, s.Name)
		d := s.Dur()
		for _, c := range s.Children {
			d -= c.Dur()
			visit(c)
		}
		if us := d.Microseconds(); us > 0 {
			self[strings.Join(path, ";")] += us
		}
		path = path[:len(path)-1]
	}
	for _, r := range t.Roots() {
		visit(r)
	}
	keys := make([]string, 0, len(self))
	for k := range self {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(self[k], 10))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
