// Package monitor is the operational-observability layer over the
// simulator: a ring-buffer time-series store on the simulated timeline, an
// SLO engine with multi-window burn-rate alerting, a cost-attribution
// ledger decomposing Eq.-1 bills into phases, and deterministic exporters
// (OpenMetrics exposition, periodic text dashboards).
//
// Where package obs answers "what happened" after a run, monitor watches a
// replay as it unfolds: every sample carries a virtual timestamp, alert
// evaluation happens at fixed resolution boundaries of that timeline, and
// all output is a pure function of the sample sequence — a fixed seed
// reproduces the alert log, dashboard, and exposition byte-for-byte. All
// entry points are nil-safe, so an unmonitored run executes the
// instrumented code paths unchanged.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Rollup is one window's (or one aggregation's) mergeable summary. Sums
// and counts are order-independent; Max is idempotent under merge — the
// three together are what keeps per-worker stores mergeable without
// perturbing determinism.
type Rollup struct {
	Count uint64
	Sum   float64
	Max   float64
}

func (r *Rollup) add(v float64) {
	if r.Count == 0 || v > r.Max {
		r.Max = v
	}
	r.Count++
	r.Sum += v
}

func (r *Rollup) merge(o Rollup) {
	if o.Count == 0 {
		return
	}
	if r.Count == 0 || o.Max > r.Max {
		r.Max = o.Max
	}
	r.Count += o.Count
	r.Sum += o.Sum
}

// Merge folds another rollup into r (sums add, max folds idempotently) —
// the same combine Store.Merge applies window-wise, exported for callers
// accumulating window scans outside the package.
func (r *Rollup) Merge(o Rollup) { r.merge(o) }

// Mean is the windowed average (0 when empty).
func (r Rollup) Mean() float64 {
	if r.Count == 0 {
		return 0
	}
	return r.Sum / float64(r.Count)
}

// series is one named metric's ring of fixed-resolution windows plus its
// cumulative (ring-independent) total.
type series struct {
	ring    []Rollup
	latest  int64 // highest absolute window index written; -1 when empty
	total   Rollup
	dropped uint64 // samples older than the ring reach at write time
}

// Store is a deterministic time-series database over simulated time:
// samples land in fixed-resolution windows held in a per-series ring
// buffer, with sum/count/max rollups. Two stores with the same geometry
// merge window-wise, so per-worker stores can be folded in a fixed order
// without changing any queryable value. All methods are nil-safe and safe
// for concurrent use.
type Store struct {
	mu     sync.Mutex
	res    time.Duration
	cap    int
	series map[string]*series
}

// DefaultResolution and DefaultWindows keep a day of one-minute windows.
const (
	DefaultResolution = time.Minute
	DefaultWindows    = 24 * 60
)

// NewStore creates a store with the given window resolution and ring
// capacity; non-positive arguments take the defaults.
func NewStore(resolution time.Duration, windows int) *Store {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	if windows <= 0 {
		windows = DefaultWindows
	}
	return &Store{res: resolution, cap: windows, series: make(map[string]*series)}
}

// Resolution returns the window size.
func (s *Store) Resolution() time.Duration {
	if s == nil {
		return 0
	}
	return s.res
}

// windowIndex maps a timestamp to its absolute window index. Negative
// timestamps clamp to window 0: the simulated timeline starts at zero, so a
// negative `at` can only come from caller arithmetic underflow (e.g. a
// trailing window reaching before the run began), and folding it into the
// first window keeps such samples queryable instead of corrupting the ring
// with a negative index (int64 division would otherwise round toward zero
// and alias windows -res..res onto index 0 while windows further back went
// negative).
func (s *Store) windowIndex(at time.Duration) int64 {
	if at < 0 {
		at = 0
	}
	return int64(at / s.res)
}

func (s *Store) getSeries(name string) *series {
	se, ok := s.series[name]
	if !ok {
		se = &series{ring: make([]Rollup, s.cap), latest: -1}
		s.series[name] = se
	}
	return se
}

// Record lands one sample in the window containing `at`. Samples newer
// than the latest window advance the ring (zeroing skipped windows);
// samples older than the ring's reach are counted as dropped but still
// accumulate into the cumulative total.
func (s *Store) Record(name string, at time.Duration, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.getSeries(name)
	se.total.add(v)
	w := s.windowIndex(at)
	if se.latest >= 0 && w <= se.latest-int64(s.cap) {
		se.dropped++
		return
	}
	if w > se.latest {
		// Zero the windows the timeline skipped over (ring slots are
		// reused, so stale rollups must not leak into new windows).
		from := se.latest + 1
		if w-from >= int64(s.cap) {
			from = w - int64(s.cap) + 1
		}
		for i := from; i <= w; i++ {
			se.ring[i%int64(s.cap)] = Rollup{}
		}
		se.latest = w
	}
	se.ring[w%int64(s.cap)].add(v)
}

// Range aggregates the windows fully covered by [from, to). Windows that
// have slid out of the ring contribute nothing (their samples remain in
// Total). A missing series yields a zero rollup.
func (s *Store) Range(name string, from, to time.Duration) Rollup {
	var out Rollup
	if s == nil || to <= from {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.series[name]
	if !ok || se.latest < 0 {
		return out
	}
	lo := s.windowIndex(from)
	hi := s.windowIndex(to - 1) // inclusive window of the last covered instant
	if min := se.latest - int64(s.cap) + 1; lo < min {
		lo = min
	}
	if lo < 0 {
		lo = 0
	}
	if hi > se.latest {
		hi = se.latest
	}
	for w := lo; w <= hi; w++ {
		out.merge(se.ring[w%int64(s.cap)])
	}
	return out
}

// Scan visits the in-ring windows of a series intersecting [from, to) in
// ascending time order, calling fn with each window's start offset and its
// rollup (empty windows included — a window the timeline skipped is a real
// zero observation, which is what per-window quantiles need). Windows that
// slid out of the ring and windows past the series' latest write are not
// visited. fn runs under the store lock: it must not call back into the
// store (record rule output after the scan returns, not inside it). This
// is the query engine's window-scan primitive; Range is the fused
// aggregate of the same walk.
func (s *Store) Scan(name string, from, to time.Duration, fn func(start time.Duration, r Rollup)) {
	if s == nil || to <= from {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.series[name]
	if !ok || se.latest < 0 {
		return
	}
	lo := s.windowIndex(from)
	hi := s.windowIndex(to - 1)
	if min := se.latest - int64(s.cap) + 1; lo < min {
		lo = min
	}
	if lo < 0 {
		lo = 0
	}
	if hi > se.latest {
		hi = se.latest
	}
	for w := lo; w <= hi; w++ {
		fn(time.Duration(w)*s.res, se.ring[w%int64(s.cap)])
	}
}

// Total returns the series' cumulative rollup across the whole run,
// including samples that have slid out of the ring.
func (s *Store) Total(name string) Rollup {
	if s == nil {
		return Rollup{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.series[name]
	if !ok {
		return Rollup{}
	}
	return se.total
}

// Dropped returns how many samples arrived too old for the ring.
func (s *Store) Dropped(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.series[name]
	if !ok {
		return 0
	}
	return se.dropped
}

// Names returns the recorded series names, sorted.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Merge folds another store window-wise into s by absolute window index.
// Both stores must share resolution and capacity (the caller constructs
// per-worker stores from one config); mismatched geometry returns an
// explicit error with nothing folded — absolute window indices only line up
// when both rings share a resolution, so a silent partial merge would
// corrupt every series. A nil s or o is a no-op (nil monitor semantics).
// o must not be written concurrently.
func (s *Store) Merge(o *Store) error {
	if s == nil || o == nil {
		return nil
	}
	// Copy o's state out under its own lock, then fold under ours —
	// never holding both (see Registry.Merge for the deadlock this
	// avoids).
	o.mu.Lock()
	if o.res != s.res || o.cap != s.cap {
		ores, ocap := o.res, o.cap
		o.mu.Unlock()
		return fmt.Errorf("monitor: Store.Merge geometry mismatch: %v×%d windows into %v×%d",
			ores, ocap, s.res, s.cap)
	}
	type snap struct {
		name string
		se   series
	}
	snaps := make([]snap, 0, len(o.series))
	for name, se := range o.series {
		cp := *se
		cp.ring = append([]Rollup(nil), se.ring...)
		snaps = append(snaps, snap{name, cp})
	}
	o.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sn := range snaps {
		dst := s.getSeries(sn.name)
		dst.total.merge(sn.se.total)
		dst.dropped += sn.se.dropped
		if sn.se.latest < 0 {
			continue
		}
		if sn.se.latest > dst.latest {
			from := dst.latest + 1
			if sn.se.latest-from >= int64(s.cap) {
				from = sn.se.latest - int64(s.cap) + 1
			}
			for i := from; i <= sn.se.latest; i++ {
				dst.ring[i%int64(s.cap)] = Rollup{}
			}
			dst.latest = sn.se.latest
		}
		lo := sn.se.latest - int64(s.cap) + 1
		if min := dst.latest - int64(s.cap) + 1; lo < min {
			lo = min
		}
		if lo < 0 {
			lo = 0
		}
		for w := lo; w <= sn.se.latest; w++ {
			dst.ring[w%int64(s.cap)].merge(sn.se.ring[w%int64(s.cap)])
		}
	}
	return nil
}
