package monitor

import "time"

// FoldSample records one invocation sample into a bare Store exactly the way
// Monitor.Observe does: the shared req.total/req.error/req.cold/cost.usd
// series plus one bad-event series per objective that carries its own
// threshold. It is the streaming half of the monitor split out for sharded
// replay: per-worker stores fed through FoldSample and merged in a fixed
// order hold byte-for-byte the same rollups a single Monitor observing the
// global sample sequence would hold, because every series value is a
// per-sample add and windows partition samples by time.
//
// slos should already carry their final parameters (withDefaults does not
// affect which series a sample lands in, so applying it is optional here).
func FoldSample(st *Store, at time.Duration, s Sample, slos []SLO) {
	if st == nil {
		return
	}
	st.Record(seriesTotal, at, s.E2E.Seconds())
	if s.Class != "ok" {
		st.Record(seriesErrors, at, 1)
	}
	if s.Cold {
		st.Record(seriesCold, at, 1)
	}
	st.Record(seriesCost, at, s.CostUSD)
	for _, def := range slos {
		switch def.Kind {
		case KindErrorRate, KindColdFraction, KindCostRate:
			// shared series above
		default:
			if def.bad(s) {
				st.Record(def.badSeries(), at, 1)
			}
		}
	}
}

// SeriesNames binds the built-in sample series to one precomputed label
// set: high-rate producers (the fleet replay folds millions of samples) pay
// the LabeledSeries encoding once per label set instead of once per sample.
type SeriesNames struct {
	Total, Errors, Cold, Cost string
}

// NamedSeries precomputes the built-in series names for a label set.
func NamedSeries(labels ...Label) SeriesNames {
	return SeriesNames{
		Total:  LabeledSeries(seriesTotal, labels...),
		Errors: LabeledSeries(seriesErrors, labels...),
		Cold:   LabeledSeries(seriesCold, labels...),
		Cost:   LabeledSeries(seriesCost, labels...),
	}
}

// FoldSampleInto records one sample into a precomputed labeled series set,
// mirroring FoldSample's built-in series. Per-SLO bad series stay
// unlabeled (objectives are fleet-wide), so they are not duplicated here.
func FoldSampleInto(st *Store, at time.Duration, s Sample, names SeriesNames) {
	if st == nil {
		return
	}
	st.Record(names.Total, at, s.E2E.Seconds())
	if s.Class != "ok" {
		st.Record(names.Errors, at, 1)
	}
	if s.Cold {
		st.Record(names.Cold, at, 1)
	}
	st.Record(names.Cost, at, s.CostUSD)
}

// burnOver computes an objective's burn rate over the trailing window ending
// at boundary T, reading the given store. Windows are clipped at the start
// of the run so early evaluations use the data that exists instead of
// diluting it with emptiness. This is the one burn-rate implementation: the
// live Monitor and the post-hoc EvaluateSLOs sweep both call it, so the two
// evaluation modes cannot drift apart.
func burnOver(st *Store, def SLO, T, window time.Duration) float64 {
	from := T - window
	if from < 0 {
		from = 0
	}
	if def.Kind == KindCostRate {
		if def.BudgetUSD <= 0 {
			return 0
		}
		hours := (T - from).Hours()
		if hours <= 0 {
			return 0
		}
		cost := st.Range(seriesCost, from, T)
		return (cost.Sum / hours) / def.BudgetUSD
	}
	total := st.Range(seriesTotal, from, T)
	if total.Count == 0 {
		return 0
	}
	bad := st.Range(def.badSeries(), from, T)
	frac := float64(bad.Count) / float64(total.Count)
	return frac / def.Budget
}

// EvaluateSLOs replays the boundary-tick evaluation over a finished store:
// every resolution boundary from the first one through the boundary that
// closes the window holding `latest` (the newest sample time) is evaluated
// in order, exactly as a live Monitor would have evaluated it while the
// samples streamed in. The two are equivalent because a boundary at T only
// reads windows strictly before T, and windows partition samples by
// timestamp — so evaluating after the fact sees the same rollups the online
// evaluation saw, provided the ring capacity covers the whole replay (size
// the store so nothing slides out).
//
// This is what makes sharded replay's telemetry exact rather than
// approximate: workers fold samples into private stores with FoldSample,
// the stores merge window-wise in a fixed order, and the alert log is
// recovered from the merged result byte-identically to a sequential run.
func EvaluateSLOs(st *Store, slos []SLO, latest time.Duration) ([]AlertEvent, []SLOFireCount) {
	res := st.Resolution()
	if res <= 0 || len(slos) == 0 {
		return nil, nil
	}
	states := make([]sloState, 0, len(slos))
	for _, def := range slos {
		states = append(states, sloState{def: def.withDefaults(res)})
	}
	if latest < 0 {
		latest = 0
	}
	end := (latest/res + 1) * res
	var alerts []AlertEvent
	for T := res; T <= end; T += res {
		for i := range states {
			st_ := &states[i]
			burnS := burnOver(st, st_.def, T, st_.def.ShortWindow)
			burnL := burnOver(st, st_.def, T, st_.def.LongWindow)
			firing := burnS >= st_.def.Burn && burnL >= st_.def.Burn
			if firing != st_.firing {
				st_.firing = firing
				if firing {
					st_.fired++
				}
				alerts = append(alerts, AlertEvent{
					At: T, SLO: st_.def.Name, Firing: firing,
					BurnShort: burnS, BurnLong: burnL,
				})
			}
		}
	}
	counts := make([]SLOFireCount, 0, len(states))
	for i := range states {
		counts = append(counts, SLOFireCount{
			Name: states[i].def.Name, Kind: states[i].def.Kind,
			Fired: states[i].fired, Firing: states[i].firing,
		})
	}
	return alerts, counts
}

// RenderAlertLog renders alert transitions as the canonical text log, one
// line per event ("" when no transitions occurred) — the same format
// Monitor.AlertLog produces.
func RenderAlertLog(alerts []AlertEvent) string {
	var b []byte
	for _, e := range alerts {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}
