package monitor

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStoreRecordRangeTotal(t *testing.T) {
	s := NewStore(time.Second, 10)
	s.Record("x", 500*time.Millisecond, 1)
	s.Record("x", 1500*time.Millisecond, 2)
	s.Record("x", 1700*time.Millisecond, 4)

	if got := s.Range("x", 0, time.Second); got.Count != 1 || got.Sum != 1 {
		t.Errorf("window 0 = %+v", got)
	}
	if got := s.Range("x", time.Second, 2*time.Second); got.Count != 2 || got.Sum != 6 || got.Max != 4 {
		t.Errorf("window 1 = %+v", got)
	}
	if got := s.Range("x", 0, 2*time.Second); got.Count != 3 || got.Sum != 7 {
		t.Errorf("full range = %+v", got)
	}
	if got := s.Total("x"); got.Count != 3 || got.Sum != 7 || got.Max != 4 {
		t.Errorf("total = %+v", got)
	}
	// Missing series and empty ranges are zero.
	if got := s.Range("y", 0, time.Minute); got.Count != 0 {
		t.Errorf("missing series = %+v", got)
	}
	if got := s.Range("x", time.Second, time.Second); got.Count != 0 {
		t.Errorf("empty range = %+v", got)
	}
}

func TestStoreRingEviction(t *testing.T) {
	s := NewStore(time.Second, 4)
	s.Record("x", 0, 1)
	// Jump far ahead: the ring slides, old windows fall off.
	s.Record("x", 10*time.Second, 2)
	if got := s.Range("x", 0, time.Second); got.Count != 0 {
		t.Errorf("evicted window still visible: %+v", got)
	}
	if got := s.Total("x"); got.Count != 2 || got.Sum != 3 {
		t.Errorf("total lost evicted samples: %+v", got)
	}
	// A sample older than the ring's reach is dropped from windows but
	// kept in the total.
	s.Record("x", time.Second, 8)
	if got := s.Dropped("x"); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if got := s.Total("x"); got.Count != 3 || got.Sum != 11 {
		t.Errorf("total after drop: %+v", got)
	}
	// Stale ring slots must not leak into reused windows.
	if got := s.Range("x", 8*time.Second, 11*time.Second); got.Count != 1 || got.Sum != 2 {
		t.Errorf("reused windows = %+v", got)
	}
}

func TestStoreMergeMatchesSequential(t *testing.T) {
	seq := NewStore(time.Second, 8)
	a := NewStore(time.Second, 8)
	b := NewStore(time.Second, 8)
	type sample struct {
		at time.Duration
		v  float64
	}
	samples := []sample{
		{0, 1}, {1500 * time.Millisecond, 2}, {2 * time.Second, 3},
		{5 * time.Second, 4}, {5500 * time.Millisecond, 5}, {7 * time.Second, 6},
	}
	for i, smp := range samples {
		seq.Record("x", smp.at, smp.v)
		if i%2 == 0 {
			a.Record("x", smp.at, smp.v)
		} else {
			b.Record("x", smp.at, smp.v)
		}
	}
	a.Merge(b)
	for w := time.Duration(0); w < 8*time.Second; w += time.Second {
		want := seq.Range("x", w, w+time.Second)
		got := a.Range("x", w, w+time.Second)
		if got != want {
			t.Errorf("window %v: merged %+v != sequential %+v", w, got, want)
		}
	}
	if a.Total("x") != seq.Total("x") {
		t.Errorf("merged total %+v != %+v", a.Total("x"), seq.Total("x"))
	}
	// Geometry mismatch is an explicit error, with nothing folded.
	other := NewStore(time.Minute, 8)
	other.Record("x", 0, 100)
	if err := a.Merge(other); err == nil {
		t.Error("geometry-mismatched merge should error")
	}
	if a.Total("x") != seq.Total("x") {
		t.Error("geometry-mismatched merge changed the store")
	}
}

// Satellite regression: every geometry mismatch (resolution, capacity, or
// both) must be rejected with an error and leave the destination untouched,
// while matched geometry merges cleanly.
func TestStoreMergeGeometryMismatch(t *testing.T) {
	mk := func(res time.Duration, windows int) *Store {
		st := NewStore(res, windows)
		st.Record("x", 0, 1)
		return st
	}
	dst := mk(time.Second, 8)
	want := dst.Total("x")
	cases := []*Store{
		mk(time.Minute, 8),  // resolution differs
		mk(time.Second, 16), // capacity differs
		mk(time.Minute, 16), // both differ
	}
	for i, src := range cases {
		if err := dst.Merge(src); err == nil {
			t.Errorf("case %d: mismatched merge returned nil error", i)
		}
		if dst.Total("x") != want {
			t.Errorf("case %d: mismatched merge mutated the destination", i)
		}
	}
	if err := dst.Merge(mk(time.Second, 8)); err != nil {
		t.Errorf("matched-geometry merge errored: %v", err)
	}
	if got := dst.Total("x").Count; got != 2 {
		t.Errorf("matched merge count = %d, want 2", got)
	}
	// Nil receiver/operand keep the nil-monitor no-op semantics.
	var nilStore *Store
	if err := nilStore.Merge(dst); err != nil {
		t.Errorf("nil receiver merge errored: %v", err)
	}
	if err := dst.Merge(nil); err != nil {
		t.Errorf("nil operand merge errored: %v", err)
	}
}

// Satellite regression: negative timestamps clamp into window 0 — they stay
// queryable (first window, cumulative total) instead of aliasing ring slots
// through negative index arithmetic.
func TestStoreNegativeTimestampsClampToWindowZero(t *testing.T) {
	st := NewStore(time.Second, 8)
	st.Record("x", -5*time.Second, 3)
	st.Record("x", -time.Nanosecond, 4)
	st.Record("x", 0, 5)
	first := st.Range("x", 0, time.Second)
	if first.Count != 3 || first.Sum != 12 {
		t.Errorf("window 0 = %+v, want all three clamped samples", first)
	}
	if tot := st.Total("x"); tot.Count != 3 || tot.Sum != 12 {
		t.Errorf("total = %+v, want 3 samples", tot)
	}
	if d := st.Dropped("x"); d != 0 {
		t.Errorf("dropped = %d, want 0 (clamped, not dropped)", d)
	}
	// A negative `from` in Range clamps the same way.
	if got := st.Range("x", -time.Minute, time.Second); got != first {
		t.Errorf("negative-from range %+v != window-0 range %+v", got, first)
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	s.Record("x", 0, 1)
	s.Merge(NewStore(0, 0))
	if s.Range("x", 0, time.Hour).Count != 0 || s.Total("x").Count != 0 {
		t.Error("nil store should read zero")
	}
	if s.Names() != nil || s.Resolution() != 0 || s.Dropped("x") != 0 {
		t.Error("nil store accessors should be zero")
	}
}

// alertScenario drives a monitor through a bad burst followed by recovery
// and returns it finished.
func alertScenario() *Monitor {
	m := New(Config{
		Resolution: time.Second,
		SLOs: []SLO{{
			Name: "lat", Kind: KindLatency, Threshold: 100 * time.Millisecond,
			Budget: 0.1, ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second,
		}},
		DashboardEvery: 5 * time.Second,
	})
	at := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	// Seconds 0-3: every request violates the threshold → burn 10.
	for i := 0; i < 8; i++ {
		m.Observe(at(0.5*float64(i)), Sample{Function: "f", Class: "ok", E2E: 500 * time.Millisecond, CostUSD: 1e-7})
	}
	// Seconds 4-9: all fast → burn decays to 0.
	for i := 0; i < 12; i++ {
		m.Observe(at(4+0.5*float64(i)), Sample{Function: "f", Class: "ok", E2E: 10 * time.Millisecond, CostUSD: 1e-8})
	}
	m.Finish()
	return m
}

func TestSLOAlertFiresAndResolves(t *testing.T) {
	m := alertScenario()
	alerts := m.Alerts()
	if len(alerts) < 2 {
		t.Fatalf("want fire+resolve, got %d alerts: %q", len(alerts), m.AlertLog())
	}
	if !alerts[0].Firing || alerts[0].SLO != "lat" {
		t.Errorf("first transition should fire lat: %+v", alerts[0])
	}
	last := alerts[len(alerts)-1]
	if last.Firing {
		t.Errorf("final transition should resolve: %+v", last)
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].At < alerts[i-1].At {
			t.Errorf("alerts out of order: %v after %v", alerts[i].At, alerts[i-1].At)
		}
	}
	fc := m.FireCounts()
	if len(fc) != 1 || fc[0].Fired < 1 || fc[0].Firing {
		t.Errorf("fire counts = %+v", fc)
	}
}

// The sharded-replay contract: folding the same sample stream into a bare
// store with FoldSample and sweeping it post-hoc with EvaluateSLOs must
// reproduce the live Monitor's alert transitions and fire counts exactly —
// boundary evaluation at T only reads windows strictly before T, so online
// and after-the-fact evaluation see identical rollups.
func TestEvaluateSLOsMatchesLiveMonitor(t *testing.T) {
	slos := []SLO{
		{Name: "lat", Kind: KindLatency, Threshold: 100 * time.Millisecond,
			Budget: 0.1, ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second},
		{Name: "errs", Kind: KindErrorRate, Budget: 0.2,
			ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second},
		{Name: "spend", Kind: KindCostRate, BudgetUSD: 1e-4,
			ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second},
	}
	m := New(Config{Resolution: time.Second, SLOs: slos})
	st := NewStore(time.Second, DefaultWindows)
	at := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	var latest time.Duration
	feed := func(ts time.Duration, smp Sample) {
		m.Observe(ts, smp)
		FoldSample(st, ts, smp, slos)
		if ts > latest {
			latest = ts
		}
	}
	for i := 0; i < 8; i++ {
		class := "ok"
		if i%3 == 0 {
			class = "handler-error"
		}
		feed(at(0.5*float64(i)), Sample{Function: "f", Class: class,
			E2E: 500 * time.Millisecond, CostUSD: 2e-7})
	}
	for i := 0; i < 12; i++ {
		feed(at(4+0.5*float64(i)), Sample{Function: "f", Class: "ok",
			E2E: 10 * time.Millisecond, CostUSD: 1e-9})
	}
	m.Finish()

	alerts, counts := EvaluateSLOs(st, slos, latest)
	if got, want := RenderAlertLog(alerts), m.AlertLog(); got != want {
		t.Errorf("post-hoc alert log differs from live monitor:\ngot:\n%s\nwant:\n%s", got, want)
	}
	live := m.FireCounts()
	if len(counts) != len(live) {
		t.Fatalf("fire counts: %d vs live %d", len(counts), len(live))
	}
	for i := range counts {
		if counts[i] != live[i] {
			t.Errorf("fire count %d: %+v vs live %+v", i, counts[i], live[i])
		}
	}
	if RenderAlertLog(alerts) == "" {
		t.Error("scenario should produce at least one transition")
	}
}

func TestMonitorDeterministicOutput(t *testing.T) {
	a, b := alertScenario(), alertScenario()
	if a.AlertLog() != b.AlertLog() {
		t.Error("alert log differs across identical runs")
	}
	if a.Dashboard() != b.Dashboard() {
		t.Error("dashboard differs across identical runs")
	}
	if !bytes.Equal(a.OpenMetrics(), b.OpenMetrics()) {
		t.Error("OpenMetrics differs across identical runs")
	}
	if a.Dashboard() == "" {
		t.Error("dashboard should have frames")
	}
	om := string(a.OpenMetrics())
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics not terminated: %q", om[len(om)-20:])
	}
	for _, want := range []string{
		"lambdatrim_req_total_count", "lambdatrim_cost_usd_sum",
		"lambdatrim_slo_fired_total", `lambdatrim_latency_seconds{quantile="0.95"}`,
		"lambdatrim_cost_phase_usd",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics missing %q", want)
		}
	}
}

func TestMultiWindowSuppressesShortBurst(t *testing.T) {
	// One bad second inside a long good history: the short window burns,
	// but the long window stays under threshold — no alert.
	m := New(Config{
		Resolution: time.Second,
		SLOs: []SLO{{
			Name: "lat", Kind: KindLatency, Threshold: 100 * time.Millisecond,
			Budget: 0.5, ShortWindow: time.Second, LongWindow: 10 * time.Second,
		}},
	})
	for i := 0; i < 20; i++ {
		m.Observe(time.Duration(i)*500*time.Millisecond, Sample{Function: "f", Class: "ok", E2E: 10 * time.Millisecond})
	}
	m.Observe(10500*time.Millisecond, Sample{Function: "f", Class: "ok", E2E: time.Second})
	for i := 23; i < 40; i++ {
		m.Observe(time.Duration(i)*500*time.Millisecond, Sample{Function: "f", Class: "ok", E2E: 10 * time.Millisecond})
	}
	m.Finish()
	if log := m.AlertLog(); log != "" {
		t.Errorf("short burst should not page through the long window:\n%s", log)
	}
}

func TestLedgerDecomposition(t *testing.T) {
	l := NewLedger()
	l.Record(Sample{
		Function: "f", Cold: true, Class: "ok",
		BilledInit: 600 * time.Millisecond, BilledExec: 300 * time.Millisecond,
		Billed: time.Second, CostUSD: 1e-6,
	})
	ph := l.Function("f")
	if ph.Invocations != 1 || ph.ColdStarts != 1 || ph.Errors != 0 {
		t.Errorf("counts = %+v", ph)
	}
	// 60/30/10 split of the duration bill.
	if got := ph.InitUSD; got < 5.9e-7 || got > 6.1e-7 {
		t.Errorf("InitUSD = %v", got)
	}
	if got := ph.ExecUSD; got < 2.9e-7 || got > 3.1e-7 {
		t.Errorf("ExecUSD = %v", got)
	}
	if got := ph.IdleUSD; got < 0.9e-7 || got > 1.1e-7 {
		t.Errorf("IdleUSD = %v", got)
	}
	if total := ph.CostUSD(); total != 1e-6 {
		t.Errorf("phases do not sum to the bill: %v", total)
	}
	// Restore fee is attributed separately from duration dollars.
	l.Record(Sample{Function: "g", Cold: true, Class: "ok",
		BilledExec: time.Second, Billed: time.Second, CostUSD: 3e-7, RestoreFeeUSD: 1e-7})
	g := l.Function("g")
	if g.RestoreUSD != 1e-7 {
		t.Errorf("RestoreUSD = %v", g.RestoreUSD)
	}
	if got := g.ExecUSD; got < 1.9e-7 || got > 2.1e-7 {
		t.Errorf("ExecUSD with restore fee = %v", got)
	}

	tot := l.Total()
	if tot.Invocations != 2 || tot.ColdStarts != 2 {
		t.Errorf("total = %+v", tot)
	}
	table := l.RenderTable()
	if !strings.Contains(table, "TOTAL") || !strings.Contains(table, "f") {
		t.Errorf("table missing rows:\n%s", table)
	}
}

func TestLedgerMergeAndAttribution(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	s := Sample{Function: "f", Cold: true, Class: "oom",
		BilledInit: time.Second, Billed: time.Second, CostUSD: 2e-6}
	a.Record(s)
	b.Record(s)
	a.Merge(b)
	ph := a.Function("f")
	if ph.Invocations != 2 || ph.Errors != 2 || ph.CostUSD() != 4e-6 {
		t.Errorf("merged = %+v", ph)
	}

	mods := a.AttributeInit("f", []ModuleWeight{
		{Name: "numpy", Weight: 3}, {Name: "json", Weight: 1}, {Name: "neg", Weight: -1},
	})
	if len(mods) != 2 {
		t.Fatalf("module rows = %+v", mods)
	}
	if mods[0].Name != "numpy" || mods[0].Share != 0.75 {
		t.Errorf("top module = %+v", mods[0])
	}
	sum := mods[0].USD + mods[1].USD
	if diff := sum - (ph.InitUSD + ph.RestoreUSD); diff > 1e-18 || diff < -1e-18 {
		t.Errorf("module dollars %v != init dollars %v", sum, ph.InitUSD+ph.RestoreUSD)
	}
	if a.AttributeInit("missing", []ModuleWeight{{Name: "x", Weight: 1}}) != nil {
		t.Error("attribution of an unknown function should be nil")
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("p95=800ms, err=2%, cold=30%, costinv=2e-7, costrate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 5 {
		t.Fatalf("parsed %d SLOs", len(slos))
	}
	if slos[0].Kind != KindLatency || slos[0].Threshold != 800*time.Millisecond {
		t.Errorf("p95 = %+v", slos[0])
	}
	if slos[1].Kind != KindErrorRate || slos[1].Budget != 0.02 {
		t.Errorf("err = %+v", slos[1])
	}
	if slos[2].Kind != KindColdFraction || slos[2].Budget != 0.3 {
		t.Errorf("cold = %+v", slos[2])
	}
	if slos[3].Kind != KindCostPerInvocation || slos[3].BudgetUSD != 2e-7 {
		t.Errorf("costinv = %+v", slos[3])
	}
	if slos[4].Kind != KindCostRate || slos[4].BudgetUSD != 0.5 {
		t.Errorf("costrate = %+v", slos[4])
	}
	if empty, err := ParseSLOs(""); err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
	for _, bad := range []string{"p95", "p95=abc", "err=200%", "err=0", "nope=1", "costinv=x"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.Observe(0, Sample{})
	m.Finish()
	if m.AlertLog() != "" || m.Dashboard() != "" || m.Alerts() != nil {
		t.Error("nil monitor should be empty")
	}
	if m.Store() != nil || m.Ledger() != nil || m.FireCounts() != nil {
		t.Error("nil monitor accessors should be nil")
	}
	if got := string(m.OpenMetrics()); got != "# EOF\n" {
		t.Errorf("nil OpenMetrics = %q", got)
	}
	var l *Ledger
	l.Record(Sample{})
	l.Merge(NewLedger())
	if l.RenderTable() != "" || l.Functions() != nil {
		t.Error("nil ledger should be empty")
	}
}

func TestMonitorFinishIdempotent(t *testing.T) {
	m := alertScenario()
	before := m.Dashboard()
	m.Finish()
	m.Finish()
	if m.Dashboard() != before {
		t.Error("repeated Finish must not add frames")
	}
}

func TestCostRateBurn(t *testing.T) {
	m := New(Config{
		Resolution: time.Minute,
		SLOs: []SLO{{
			Name: "burnrate", Kind: KindCostRate, BudgetUSD: 0.001, // $/hour
			ShortWindow: 5 * time.Minute, LongWindow: 10 * time.Minute, Burn: 1,
		}},
	})
	// $0.0001 per minute = $0.006/hour = 6× the budgeted rate.
	for i := 0; i < 12; i++ {
		m.Observe(time.Duration(i)*time.Minute, Sample{Function: "f", Class: "ok", CostUSD: 1e-4})
	}
	m.Finish()
	alerts := m.Alerts()
	if len(alerts) == 0 || !alerts[0].Firing {
		t.Fatalf("cost-rate SLO should fire: %q", m.AlertLog())
	}
	if alerts[0].BurnShort < 5 || alerts[0].BurnShort > 7 {
		t.Errorf("burn = %v, want ~6", alerts[0].BurnShort)
	}
}
