package monitor

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind selects what an SLO measures. Ratio kinds (everything but
// KindCostRate) follow the SRE formulation: an error budget is the allowed
// fraction of bad events, and the burn rate is the observed bad fraction
// divided by that budget — burn 1.0 spends the budget exactly, burn N
// exhausts it N× too fast. KindCostRate burns a monetary budget instead:
// observed USD per hour over the window divided by the budgeted rate.
type Kind int

const (
	// KindLatency counts an invocation bad when its E2E latency exceeds
	// Threshold. With Budget 0.05 this is a p95 objective: at most 5% of
	// requests may be slower than the threshold.
	KindLatency Kind = iota
	// KindErrorRate counts an invocation bad when it failed (any failure
	// class, platform or handler).
	KindErrorRate
	// KindColdFraction counts cold starts as bad events — FaaSLight's
	// framing of cold-start latency as the service-level signal.
	KindColdFraction
	// KindCostPerInvocation counts an invocation bad when its Eq.-1 bill
	// exceeds BudgetUSD.
	KindCostPerInvocation
	// KindCostRate burns a monetary budget: observed USD/hour over the
	// window divided by BudgetUSD (the budgeted USD/hour).
	KindCostRate
	// KindAvailability counts an invocation bad when the platform failed
	// it: any class other than "ok" — except "shed", which is the client
	// deliberately dropping load to protect the rest (counting sheds as
	// unavailability would penalize the mitigation that preserves it).
	KindAvailability
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindErrorRate:
		return "error-rate"
	case KindColdFraction:
		return "cold-fraction"
	case KindCostPerInvocation:
		return "cost-per-invocation"
	case KindCostRate:
		return "cost-rate"
	case KindAvailability:
		return "availability"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// SLO is one service-level objective with multi-window burn-rate alerting:
// the alert fires only when BOTH the short and the long window burn above
// the threshold — the short window makes alerts responsive, the long
// window keeps one bad burst from paging (Google SRE workbook, ch. 5).
type SLO struct {
	// Name identifies the objective in alerts and expositions.
	Name string
	Kind Kind
	// Threshold is the per-invocation latency bound (KindLatency).
	Threshold time.Duration
	// BudgetUSD is the per-invocation cost bound (KindCostPerInvocation)
	// or the budgeted USD/hour (KindCostRate).
	BudgetUSD float64
	// Budget is the allowed bad-event fraction for ratio kinds
	// (default 0.05).
	Budget float64
	// ShortWindow and LongWindow are the two trailing evaluation windows
	// (defaults: 5 and 30 store resolutions).
	ShortWindow, LongWindow time.Duration
	// Burn is the firing threshold on the burn rate (default 1).
	Burn float64
}

// WithDefaults fills zero fields from the store resolution — the exact
// parameter set a Monitor at that resolution would evaluate. Idempotent,
// so callers may pre-apply it before FoldSample/EvaluateSLOs (which
// applies it again internally).
func (s SLO) WithDefaults(res time.Duration) SLO { return s.withDefaults(res) }

// withDefaults fills zero fields from the store resolution.
func (s SLO) withDefaults(res time.Duration) SLO {
	if s.Budget <= 0 {
		s.Budget = 0.05
	}
	if s.ShortWindow <= 0 {
		s.ShortWindow = 5 * res
	}
	if s.LongWindow <= 0 {
		s.LongWindow = 30 * res
	}
	if s.LongWindow < s.ShortWindow {
		s.LongWindow = s.ShortWindow
	}
	if s.Burn <= 0 {
		s.Burn = 1
	}
	return s
}

// badSeries is the store series counting this SLO's bad events. Latency
// and per-invocation-cost objectives carry their threshold, so each gets a
// per-SLO series; error and cold objectives share the generic ones.
func (s SLO) badSeries() string {
	switch s.Kind {
	case KindErrorRate:
		return seriesErrors
	case KindColdFraction:
		return seriesCold
	default:
		return "slo." + s.Name + ".bad"
	}
}

// bad reports whether a sample violates the objective (ratio kinds only).
func (s SLO) bad(sample Sample) bool {
	switch s.Kind {
	case KindLatency:
		return sample.E2E > s.Threshold
	case KindErrorRate:
		return sample.Class != "ok"
	case KindColdFraction:
		return sample.Cold
	case KindCostPerInvocation:
		return sample.CostUSD > s.BudgetUSD
	case KindAvailability:
		return sample.Class != "ok" && sample.Class != "shed"
	}
	return false
}

// AlertEvent is one deterministic alert transition on the virtual
// timeline. Firing events carry the burn rates that tripped the
// threshold; resolve events the rates that cleared it.
type AlertEvent struct {
	At        time.Duration
	SLO       string
	Firing    bool
	BurnShort float64
	BurnLong  float64
}

// String renders the canonical alert-log line.
func (e AlertEvent) String() string {
	state := "RESOLVED"
	if e.Firing {
		state = "FIRING"
	}
	return fmt.Sprintf("%-9s %-24s at=%-12s burn_short=%.2f burn_long=%.2f",
		state, e.SLO, fmtOffset(e.At), e.BurnShort, e.BurnLong)
}

// fmtOffset renders a virtual-time offset as +HHhMMmSSs.
// FmtOffset renders a virtual-time offset in the canonical log form used
// across alert and rollout event logs.
func FmtOffset(d time.Duration) string { return fmtOffset(d) }

func fmtOffset(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	return fmt.Sprintf("+%02dh%02dm%02ds", h, m, s)
}

// sloState tracks one objective's evaluation state.
type sloState struct {
	def    SLO
	firing bool
	fired  int // fire transitions, for summaries
}

// burn computes the burn rate over the trailing window ending at T — the
// shared implementation lives in burnOver (eval.go) so the live monitor and
// the post-hoc sharded-replay sweep evaluate identically.
func (m *Monitor) burn(def SLO, T, window time.Duration) float64 {
	return burnOver(m.store, def, T, window)
}

// ParseSLOs parses a compact SLO spec of comma-separated key=value pairs:
//
//	p95=800ms     latency objective: 95% of requests under 800 ms
//	err=2%        error-rate objective: at most 2% failed requests
//	cold=30%      cold-fraction objective: at most 30% cold starts
//	costinv=2e-7  per-invocation cost objective: 95% of bills under $2e-7
//	costrate=0.5  budget objective: at most $0.50 per hour
//	avail=2%      availability objective: at most 2% of requests failed
//	              (shed requests are excluded; see KindAvailability)
//
// Windows and burn thresholds take the engine defaults. An empty spec
// yields no objectives.
func ParseSLOs(spec string) ([]SLO, error) {
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("monitor: bad SLO %q (want key=value)", part)
		}
		switch key {
		case "p95":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("monitor: bad latency threshold %q: %v", val, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("monitor: latency threshold %q must be positive", val)
			}
			out = append(out, SLO{Name: "latency-p95", Kind: KindLatency, Threshold: d, Budget: 0.05})
		case "err":
			f, err := parseFraction(val)
			if err != nil {
				return nil, err
			}
			out = append(out, SLO{Name: "error-rate", Kind: KindErrorRate, Budget: f})
		case "cold":
			f, err := parseFraction(val)
			if err != nil {
				return nil, err
			}
			out = append(out, SLO{Name: "cold-fraction", Kind: KindColdFraction, Budget: f})
		case "costinv":
			f, err := parseBudgetUSD(val)
			if err != nil {
				return nil, fmt.Errorf("monitor: bad cost threshold %q: %v", val, err)
			}
			out = append(out, SLO{Name: "cost-per-invocation", Kind: KindCostPerInvocation, BudgetUSD: f, Budget: 0.05})
		case "costrate":
			f, err := parseBudgetUSD(val)
			if err != nil {
				return nil, fmt.Errorf("monitor: bad cost rate %q: %v", val, err)
			}
			out = append(out, SLO{Name: "cost-burn", Kind: KindCostRate, BudgetUSD: f})
		case "avail":
			f, err := parseFraction(val)
			if err != nil {
				return nil, err
			}
			out = append(out, SLO{Name: "availability", Kind: KindAvailability, Budget: f})
		default:
			return nil, fmt.Errorf("monitor: unknown SLO key %q (known: p95 err cold costinv costrate avail)", key)
		}
	}
	return out, nil
}

// parseBudgetUSD parses a dollar amount that must be positive and finite.
func parseBudgetUSD(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		return 0, fmt.Errorf("want a positive finite amount, got %v", f)
	}
	return f, nil
}

func parseFraction(val string) (float64, error) {
	pct := strings.HasSuffix(val, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("monitor: bad fraction %q: %v", val, err)
	}
	if pct {
		f /= 100
	}
	// Written as a positive check so NaN (incomparable) is rejected too.
	if !(f > 0 && f <= 1) {
		return 0, fmt.Errorf("monitor: fraction %q out of (0, 1]", val)
	}
	return f, nil
}

// sortedFiring returns the names of currently-firing SLOs, sorted.
func sortedFiring(states []sloState) []string {
	var out []string
	for i := range states {
		if states[i].firing {
			out = append(out, states[i].def.Name)
		}
	}
	sort.Strings(out)
	return out
}
