package monitor

import (
	"math"
	"testing"
)

// FuzzParseSLOs: the SLO spec parser must never panic, and every objective
// it accepts must be well-formed — a known kind, budgets inside (0, 1],
// positive finite dollar amounts, positive latency thresholds. The NaN
// fraction bug ("err=NaN" slipping through the range check) is the class
// of hole this guards against.
func FuzzParseSLOs(f *testing.F) {
	f.Add("p95=800ms,err=2%,cold=30%,costinv=2e-7,costrate=0.5")
	f.Add("err=0.05")
	f.Add(" p95 = 1s ")
	f.Add("")
	f.Add(",,,")
	f.Add("err=NaN")
	f.Add("err=NaN%")
	f.Add("costinv=-1")
	f.Add("costrate=+Inf")
	f.Add("p95=-5s")
	f.Add("p95=0s")
	f.Add("err=101%")
	f.Add("bogus=1")
	f.Add("err")
	f.Fuzz(func(t *testing.T, spec string) {
		slos, err := ParseSLOs(spec)
		if err != nil {
			return
		}
		for _, s := range slos {
			if s.Name == "" {
				t.Fatalf("%q: accepted SLO with empty name: %+v", spec, s)
			}
			switch s.Kind {
			case KindLatency:
				if s.Threshold <= 0 {
					t.Fatalf("%q: latency threshold %v not positive", spec, s.Threshold)
				}
				fallthrough
			case KindErrorRate, KindColdFraction, KindCostPerInvocation:
				if !(s.Budget > 0 && s.Budget <= 1) {
					t.Fatalf("%q: budget %v outside (0, 1]", spec, s.Budget)
				}
			case KindCostRate:
				// no event budget; dollar rate checked below
			default:
				t.Fatalf("%q: unknown kind %v", spec, s.Kind)
			}
			if s.Kind == KindCostPerInvocation || s.Kind == KindCostRate {
				if math.IsNaN(s.BudgetUSD) || math.IsInf(s.BudgetUSD, 0) || s.BudgetUSD <= 0 {
					t.Fatalf("%q: BudgetUSD %v not positive finite", spec, s.BudgetUSD)
				}
			}
		}
	})
}
