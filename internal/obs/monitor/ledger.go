package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase is one aggregation bucket of the cost-attribution ledger: Eq.-1
// dollars decomposed into the billed phases of Figure 1. For every
// invocation,
//
//	CostUSD = InitUSD + ExecUSD + IdleUSD + RestoreUSD
//
// where Init and Exec split the duration bill pro rata over the billed
// init and handler durations, Idle is the rounding waste the provider's
// billing granularity adds on top (billed duration minus measured
// duration — zero on AWS's 1 ms rounding, up to a second on Azure's), and
// Restore is SnapStart's per-restore fee.
type Phase struct {
	Invocations uint64
	ColdStarts  uint64
	Errors      uint64

	BilledInit time.Duration
	BilledExec time.Duration
	BilledIdle time.Duration

	InitUSD    float64
	ExecUSD    float64
	IdleUSD    float64
	RestoreUSD float64
}

// CostUSD is the bucket's total bill.
func (p Phase) CostUSD() float64 {
	return p.InitUSD + p.ExecUSD + p.IdleUSD + p.RestoreUSD
}

func (p *Phase) add(s Sample) {
	p.Invocations++
	if s.Cold {
		p.ColdStarts++
	}
	if s.Class != "ok" {
		p.Errors++
	}
	idle := s.Billed - s.BilledInit - s.BilledExec
	if idle < 0 {
		idle = 0
	}
	p.BilledInit += s.BilledInit
	p.BilledExec += s.BilledExec
	p.BilledIdle += idle
	durUSD := s.CostUSD - s.RestoreFeeUSD
	if durUSD < 0 {
		durUSD = 0
	}
	if s.Billed > 0 && durUSD > 0 {
		init := durUSD * float64(s.BilledInit) / float64(s.Billed)
		exec := durUSD * float64(s.BilledExec) / float64(s.Billed)
		p.InitUSD += init
		p.ExecUSD += exec
		p.IdleUSD += durUSD - init - exec
	}
	p.RestoreUSD += s.RestoreFeeUSD
}

func (p *Phase) merge(o Phase) {
	p.Invocations += o.Invocations
	p.ColdStarts += o.ColdStarts
	p.Errors += o.Errors
	p.BilledInit += o.BilledInit
	p.BilledExec += o.BilledExec
	p.BilledIdle += o.BilledIdle
	p.InitUSD += o.InitUSD
	p.ExecUSD += o.ExecUSD
	p.IdleUSD += o.IdleUSD
	p.RestoreUSD += o.RestoreUSD
}

// Ledger aggregates per-invocation cost decompositions per function,
// answering "where does the money go" as a first-class query. Safe for
// concurrent use; all read-out is name-sorted and deterministic.
type Ledger struct {
	mu    sync.Mutex
	perFn map[string]*Phase
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{perFn: make(map[string]*Phase)} }

// Record attributes one invocation sample.
func (l *Ledger) Record(s Sample) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ph, ok := l.perFn[s.Function]
	if !ok {
		ph = &Phase{}
		l.perFn[s.Function] = ph
	}
	ph.add(s)
}

// Functions returns the attributed function names, sorted.
func (l *Ledger) Functions() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.perFn))
	for name := range l.perFn {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Function returns one function's bucket (zero when absent).
func (l *Ledger) Function(name string) Phase {
	if l == nil {
		return Phase{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ph, ok := l.perFn[name]; ok {
		return *ph
	}
	return Phase{}
}

// Total folds every function's bucket into one, in name order — the fold
// order is fixed so the floating-point dollar sums are reproducible across
// processes rather than subject to map iteration order.
func (l *Ledger) Total() Phase {
	if l == nil {
		return Phase{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.perFn))
	for name := range l.perFn {
		names = append(names, name)
	}
	sort.Strings(names)
	var out Phase
	for _, name := range names {
		out.merge(*l.perFn[name])
	}
	return out
}

// Merge folds another ledger into l (for per-worker ledgers; fold in a
// fixed order). o's data is copied out under its own lock first.
func (l *Ledger) Merge(o *Ledger) {
	if l == nil || o == nil {
		return
	}
	o.mu.Lock()
	type snap struct {
		name string
		ph   Phase
	}
	snaps := make([]snap, 0, len(o.perFn))
	for name, ph := range o.perFn {
		snaps = append(snaps, snap{name, *ph})
	}
	o.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, sn := range snaps {
		ph, ok := l.perFn[sn.name]
		if !ok {
			ph = &Phase{}
			l.perFn[sn.name] = ph
		}
		ph.merge(sn.ph)
	}
}

// ModuleWeight is a caller-supplied share of a function's initialization
// (typically a profiler module's marginal import time). Weights need not
// be normalized.
type ModuleWeight struct {
	Name   string
	Weight float64
}

// ModuleCost is one module's share of a function's init-phase dollars.
type ModuleCost struct {
	Name  string
	USD   float64
	Share float64 // fraction of the init bill
}

// AttributeInit splits a function's init-phase dollars (init + restore)
// across modules proportionally to the given weights — the per-module
// "where does the init money go" view, with weights from the profiler's
// marginal import measurements. Rows come back largest-first with a
// deterministic name tiebreak; non-positive weights are dropped.
func (l *Ledger) AttributeInit(fn string, weights []ModuleWeight) []ModuleCost {
	ph := l.Function(fn)
	initUSD := ph.InitUSD + ph.RestoreUSD
	var totalW float64
	for _, w := range weights {
		if w.Weight > 0 {
			totalW += w.Weight
		}
	}
	if totalW <= 0 || initUSD <= 0 {
		return nil
	}
	out := make([]ModuleCost, 0, len(weights))
	for _, w := range weights {
		if w.Weight <= 0 {
			continue
		}
		share := w.Weight / totalW
		out = append(out, ModuleCost{Name: w.Name, USD: initUSD * share, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].USD != out[j].USD {
			return out[i].USD > out[j].USD
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderTable renders the per-function phase decomposition as an aligned
// text table, functions sorted by total bill (largest first, name
// tiebreak), with a totals row.
func (l *Ledger) RenderTable() string {
	if l == nil {
		return ""
	}
	names := l.Functions()
	type row struct {
		name string
		ph   Phase
	}
	rows := make([]row, 0, len(names))
	for _, n := range names {
		rows = append(rows, row{n, l.Function(n)})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ci, cj := rows[i].ph.CostUSD(), rows[j].ph.CostUSD()
		if ci != cj {
			return ci > cj
		}
		return rows[i].name < rows[j].name
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %5s %4s %12s %12s %12s %12s %12s %6s\n",
		"Function", "Invoc", "Cold", "Err", "Init$", "Handler$", "Idle$", "Restore$", "Total$", "Init%")
	write := func(name string, ph Phase) {
		total := ph.CostUSD()
		initShare := 0.0
		if total > 0 {
			initShare = (ph.InitUSD + ph.RestoreUSD) / total
		}
		fmt.Fprintf(&b, "%-24s %6d %5d %4d %12.9f %12.9f %12.9f %12.9f %12.9f %5.1f%%\n",
			name, ph.Invocations, ph.ColdStarts, ph.Errors,
			ph.InitUSD, ph.ExecUSD, ph.IdleUSD, ph.RestoreUSD, total, 100*initShare)
	}
	for _, r := range rows {
		write(r.name, r.ph)
	}
	if len(rows) > 1 {
		write("TOTAL", l.Total())
	}
	return b.String()
}
