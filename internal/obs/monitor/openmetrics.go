package monitor

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// metricName sanitizes a series name into an OpenMetrics metric name:
// every character outside [a-zA-Z0-9_] becomes '_', and the exposition
// namespace prefix is applied.
// MetricName exposes the exposition name mangling to other packages that
// render OpenMetrics families alongside the monitor's.
func MetricName(s string) string { return metricName(s) }

func metricName(s string) string {
	var b strings.Builder
	b.WriteString("lambdatrim_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeFamily(b *strings.Builder, name, typ string, lines ...string) {
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}

// labelBlock renders a decoded label set as an OpenMetrics label block
// ("" for unlabeled series). Keys arrive sorted (SplitSeries preserves the
// canonical encoding's order) and values are written verbatim, mirroring
// the LabeledSeries producer contract.
func labelBlock(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Val)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ExemplarAnnotation renders an OpenMetrics exemplar suffix for a metric
// line: " # {labels} value timestamp", with the timestamp in seconds of
// simulated time. Appended verbatim by StoreFamilies exemplar callbacks.
func ExemplarAnnotation(labels []Label, value float64, ts time.Duration) string {
	var b strings.Builder
	b.WriteString(" # ")
	b.WriteString(labelBlock(labels))
	if len(labels) == 0 {
		b.WriteString("{}")
	}
	b.WriteByte(' ')
	b.WriteString(fmtFloat(value))
	b.WriteByte(' ')
	b.WriteString(fmtFloat(ts.Seconds()))
	return b.String()
}

// StoreFamilies renders every series in a store as OpenMetrics
// count/sum/max families. Labeled series (the LabeledSeries encoding) are
// grouped under their family's TYPE lines with proper OpenMetrics label
// blocks — within a family the unlabeled series (if any) comes first,
// labeled series follow in canonical-name order, and families are emitted
// in sorted order, so a store holding only unlabeled series renders
// byte-identically to the historical per-series writer. The optional
// exemplar callback receives each (store series name, kind) pair — kind is
// "count", "sum", or "max" — and returns an annotation suffix (typically
// ExemplarAnnotation output) or "".
func StoreFamilies(b *strings.Builder, st *Store, exemplar func(series, kind string) string) {
	type member struct {
		name   string // full store series name
		labels []Label
	}
	byFam := make(map[string][]member)
	var fams []string
	// Names() is sorted, which within one family already yields the order
	// we emit (the bare family name is a strict prefix of every labeled
	// variant); families themselves are re-sorted below because '{' sorts
	// above letters and could interleave prefix families.
	for _, name := range st.Names() {
		fam, labels := SplitSeries(name)
		if _, ok := byFam[fam]; !ok {
			fams = append(fams, fam)
		}
		byFam[fam] = append(byFam[fam], member{name, labels})
	}
	sort.Strings(fams)
	kinds := []struct {
		kind, suffix, typ string
	}{
		{"count", "_count", "counter"},
		{"sum", "_sum", "gauge"},
		{"max", "_max", "gauge"},
	}
	for _, fam := range fams {
		mn := metricName(fam)
		for _, k := range kinds {
			lines := make([]string, 0, len(byFam[fam]))
			for _, m := range byFam[fam] {
				tot := st.Total(m.name)
				var val string
				switch k.kind {
				case "count":
					val = strconv.FormatUint(tot.Count, 10)
				case "sum":
					val = fmtFloat(tot.Sum)
				default:
					val = fmtFloat(tot.Max)
				}
				line := mn + k.suffix + labelBlock(m.labels) + " " + val
				if exemplar != nil {
					line += exemplar(m.name, k.kind)
				}
				lines = append(lines, line)
			}
			writeFamily(b, mn+k.suffix, k.typ, lines...)
		}
	}
}

// OpenMetrics renders the monitor state as an OpenMetrics text exposition:
// per-series cumulative count/sum/max, per-objective firing state and fire
// counts, cumulative E2E latency quantiles, and the ledger's per-phase
// dollar decomposition. Series, label values, and quantiles are emitted in
// sorted/fixed order, so the exposition is byte-stable for a fixed sample
// sequence. Safe on a nil monitor (empty exposition, still terminated).
func (m *Monitor) OpenMetrics() []byte {
	var b strings.Builder
	if m == nil {
		b.WriteString("# EOF\n")
		return []byte(b.String())
	}
	StoreFamilies(&b, m.store, nil)

	counts := m.FireCounts()
	if len(counts) > 0 {
		firing := make([]string, 0, len(counts))
		fired := make([]string, 0, len(counts))
		for _, c := range counts {
			v := "0"
			if c.Firing {
				v = "1"
			}
			firing = append(firing, `lambdatrim_slo_firing{slo="`+c.Name+`"} `+v)
			fired = append(fired, `lambdatrim_slo_fired_total{slo="`+c.Name+`"} `+strconv.Itoa(c.Fired))
		}
		writeFamily(&b, "lambdatrim_slo_firing", "gauge", firing...)
		writeFamily(&b, "lambdatrim_slo_fired_total", "counter", fired...)
	}

	hist := m.Latency()
	if hist.Count() > 0 {
		qs := []struct {
			q float64
			s string
		}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}
		lines := make([]string, 0, len(qs))
		for _, q := range qs {
			lines = append(lines,
				`lambdatrim_latency_seconds{quantile="`+q.s+`"} `+fmtFloat(hist.Quantile(q.q)))
		}
		writeFamily(&b, "lambdatrim_latency_seconds", "gauge", lines...)
	}

	total := m.Ledger().Total()
	if total.Invocations > 0 {
		writeFamily(&b, "lambdatrim_cost_phase_usd", "gauge",
			`lambdatrim_cost_phase_usd{phase="init"} `+fmtFloat(total.InitUSD),
			`lambdatrim_cost_phase_usd{phase="handler"} `+fmtFloat(total.ExecUSD),
			`lambdatrim_cost_phase_usd{phase="idle"} `+fmtFloat(total.IdleUSD),
			`lambdatrim_cost_phase_usd{phase="restore"} `+fmtFloat(total.RestoreUSD))
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}
