package monitor

import (
	"strconv"
	"strings"
)

// metricName sanitizes a series name into an OpenMetrics metric name:
// every character outside [a-zA-Z0-9_] becomes '_', and the exposition
// namespace prefix is applied.
// MetricName exposes the exposition name mangling to other packages that
// render OpenMetrics families alongside the monitor's.
func MetricName(s string) string { return metricName(s) }

func metricName(s string) string {
	var b strings.Builder
	b.WriteString("lambdatrim_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeFamily(b *strings.Builder, name, typ string, lines ...string) {
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}

// OpenMetrics renders the monitor state as an OpenMetrics text exposition:
// per-series cumulative count/sum/max, per-objective firing state and fire
// counts, cumulative E2E latency quantiles, and the ledger's per-phase
// dollar decomposition. Series, label values, and quantiles are emitted in
// sorted/fixed order, so the exposition is byte-stable for a fixed sample
// sequence. Safe on a nil monitor (empty exposition, still terminated).
func (m *Monitor) OpenMetrics() []byte {
	var b strings.Builder
	if m == nil {
		b.WriteString("# EOF\n")
		return []byte(b.String())
	}
	for _, name := range m.store.Names() {
		tot := m.store.Total(name)
		mn := metricName(name)
		writeFamily(&b, mn+"_count", "counter",
			mn+"_count "+strconv.FormatUint(tot.Count, 10))
		writeFamily(&b, mn+"_sum", "gauge",
			mn+"_sum "+fmtFloat(tot.Sum))
		writeFamily(&b, mn+"_max", "gauge",
			mn+"_max "+fmtFloat(tot.Max))
	}

	counts := m.FireCounts()
	if len(counts) > 0 {
		firing := make([]string, 0, len(counts))
		fired := make([]string, 0, len(counts))
		for _, c := range counts {
			v := "0"
			if c.Firing {
				v = "1"
			}
			firing = append(firing, `lambdatrim_slo_firing{slo="`+c.Name+`"} `+v)
			fired = append(fired, `lambdatrim_slo_fired_total{slo="`+c.Name+`"} `+strconv.Itoa(c.Fired))
		}
		writeFamily(&b, "lambdatrim_slo_firing", "gauge", firing...)
		writeFamily(&b, "lambdatrim_slo_fired_total", "counter", fired...)
	}

	hist := m.Latency()
	if hist.Count() > 0 {
		qs := []struct {
			q float64
			s string
		}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}
		lines := make([]string, 0, len(qs))
		for _, q := range qs {
			lines = append(lines,
				`lambdatrim_latency_seconds{quantile="`+q.s+`"} `+fmtFloat(hist.Quantile(q.q)))
		}
		writeFamily(&b, "lambdatrim_latency_seconds", "gauge", lines...)
	}

	total := m.Ledger().Total()
	if total.Invocations > 0 {
		writeFamily(&b, "lambdatrim_cost_phase_usd", "gauge",
			`lambdatrim_cost_phase_usd{phase="init"} `+fmtFloat(total.InitUSD),
			`lambdatrim_cost_phase_usd{phase="handler"} `+fmtFloat(total.ExecUSD),
			`lambdatrim_cost_phase_usd{phase="idle"} `+fmtFloat(total.IdleUSD),
			`lambdatrim_cost_phase_usd{phase="restore"} `+fmtFloat(total.RestoreUSD))
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}
