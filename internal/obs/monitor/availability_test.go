package monitor

import "testing"

// TestAvailabilityBadPredicate pins the availability objective's bad set:
// every platform failure class counts, shed does not — sheds are the
// client deliberately dropping load to protect the rest, and counting
// them would penalize the mitigation that preserves availability.
func TestAvailabilityBadPredicate(t *testing.T) {
	slo := SLO{Name: "avail", Kind: KindAvailability, Budget: 0.02}
	cases := []struct {
		class string
		want  bool
	}{
		{"ok", false},
		{"shed", false},
		{"unavailable", true},
		{"throttle", true},
		{"timeout", true},
		{"handler-error", true},
	}
	for _, tc := range cases {
		if got := slo.bad(Sample{Class: tc.class}); got != tc.want {
			t.Errorf("availability bad(%q) = %v, want %v", tc.class, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if got := KindAvailability.String(); got != "availability" {
		t.Errorf("KindAvailability = %q", got)
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("Kind(99) = %q", got)
	}
}

func TestParseSLOsAvailability(t *testing.T) {
	slos, err := ParseSLOs("avail=2%")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 1 || slos[0].Kind != KindAvailability || slos[0].Budget != 0.02 {
		t.Fatalf("ParseSLOs(avail=2%%) = %+v", slos)
	}
	if _, err := ParseSLOs("avail=bogus"); err == nil {
		t.Error("bad availability budget accepted")
	}
}
