package monitor

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Built-in series fed by every observed sample. Additional per-SLO bad
// series ("slo.<name>.bad") appear as objectives require them.
const (
	seriesTotal  = "req.total" // every invocation; value = E2E seconds
	seriesErrors = "req.error" // failed invocations; value = 1
	seriesCold   = "req.cold"  // cold starts; value = 1
	seriesCost   = "cost.usd"  // every invocation; value = Eq.-1 bill in USD
)

// Sample is one completed invocation as the monitor sees it: the virtual
// phase durations, the billing decomposition, and the outcome class. The
// producer (internal/faas, or the keep-alive pool replay) builds samples;
// the monitor never reaches back into simulator types.
type Sample struct {
	// Function names the deployed function (or fleet member).
	Function string
	// Cold marks invocations that paid an init phase.
	Cold bool
	// Class is the faas failure class string ("ok" when successful).
	Class string
	// Init, Exec, and E2E are the measured virtual durations.
	Init, Exec, E2E time.Duration
	// BilledInit, BilledExec, and Billed decompose the billed duration:
	// Billed is the provider-rounded billed window, BilledInit/BilledExec
	// the measured phases inside it (their shortfall vs Billed is the
	// granularity rounding the ledger attributes to idle).
	BilledInit, BilledExec, Billed time.Duration
	// MemoryMB is the configured memory size.
	MemoryMB int
	// CostUSD is the invocation's Eq.-1 bill; RestoreFeeUSD the SnapStart
	// per-restore component inside it.
	CostUSD, RestoreFeeUSD float64
}

// Config parameterizes a Monitor.
type Config struct {
	// Resolution is the TSDB window size (default DefaultResolution).
	Resolution time.Duration
	// Windows is the TSDB ring capacity (default DefaultWindows).
	Windows int
	// SLOs are the objectives to evaluate; zero fields take engine
	// defaults derived from Resolution.
	SLOs []SLO
	// DashboardEvery renders a text dashboard frame at this virtual-time
	// interval (0 disables frames).
	DashboardEvery time.Duration
	// LabelSeries additionally records the built-in series under a
	// {function="..."} label per sample (the LabeledSeries encoding), which
	// is what mql label matchers select on. Off by default: labeled series
	// multiply store cardinality by the function count.
	LabelSeries bool
}

// Monitor watches a replay on the simulated timeline: samples land in the
// TSDB and ledger as they are observed, and SLO evaluation runs at every
// resolution boundary the virtual clock crosses — so alerts fire at
// deterministic virtual times, independent of host scheduling. All methods
// are nil-safe; a nil *Monitor is "monitoring disabled".
type Monitor struct {
	mu     sync.Mutex
	cfg    Config
	store  *Store
	ledger *Ledger
	states []sloState
	defs   []SLO // states[i].def, for FoldSample
	alerts []AlertEvent
	frames []string
	hist   *stats.Histogram // cumulative E2E seconds

	labeled map[string]SeriesNames // per-function labeled series names (LabelSeries)

	nextTick  time.Duration
	nextFrame time.Duration // negative when frames are disabled
	latest    time.Duration
	finished  bool
}

// New creates a monitor. Zero-value config fields take defaults.
func New(cfg Config) *Monitor {
	if cfg.Resolution <= 0 {
		cfg.Resolution = DefaultResolution
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindows
	}
	m := &Monitor{
		cfg:       cfg,
		store:     NewStore(cfg.Resolution, cfg.Windows),
		ledger:    NewLedger(),
		hist:      stats.NewHistogram(),
		nextTick:  cfg.Resolution,
		nextFrame: -1,
	}
	if cfg.DashboardEvery > 0 {
		m.nextFrame = cfg.DashboardEvery
	}
	for _, def := range cfg.SLOs {
		full := def.withDefaults(cfg.Resolution)
		m.states = append(m.states, sloState{def: full})
		m.defs = append(m.defs, full)
	}
	return m
}

// Observe records one completed invocation at virtual time `at` (typically
// the invocation's completion time). Boundary crossings between the
// previous sample and this one are evaluated first, so alert and dashboard
// output depend only on the (at, sample) sequence.
func (m *Monitor) Observe(at time.Duration, s Sample) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advanceLocked(at)
	if at > m.latest {
		m.latest = at
	}
	FoldSample(m.store, at, s, m.defs)
	if m.cfg.LabelSeries && s.Function != "" {
		names, ok := m.labeled[s.Function]
		if !ok {
			names = NamedSeries(Label{Key: "function", Val: s.Function})
			if m.labeled == nil {
				m.labeled = make(map[string]SeriesNames)
			}
			m.labeled[s.Function] = names
		}
		FoldSampleInto(m.store, at, s, names)
	}
	m.ledger.Record(s)
	m.hist.Observe(s.E2E.Seconds())
}

// Finish flushes pending boundary evaluations past the last observed
// sample and renders the final dashboard frame. Idempotent.
func (m *Monitor) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished {
		return
	}
	m.finished = true
	// Evaluate every boundary up to and including the one that closes the
	// window holding the last sample.
	res := m.cfg.Resolution
	end := (m.latest/res + 1) * res
	m.advanceLocked(end)
	if m.nextFrame >= 0 {
		m.frameLocked(end)
	}
}

// advanceLocked replays boundary crossings (SLO ticks and dashboard
// frames, interleaved in time order) up to and including `at`.
func (m *Monitor) advanceLocked(at time.Duration) {
	for {
		tick := m.nextTick <= at
		frame := m.nextFrame >= 0 && m.nextFrame <= at
		switch {
		case tick && (!frame || m.nextTick <= m.nextFrame):
			m.evalTickLocked(m.nextTick)
			m.nextTick += m.cfg.Resolution
		case frame:
			m.frameLocked(m.nextFrame)
			m.nextFrame += m.cfg.DashboardEvery
		default:
			return
		}
	}
}

// evalTickLocked evaluates every objective at boundary T and records alert
// transitions.
func (m *Monitor) evalTickLocked(T time.Duration) {
	for i := range m.states {
		st := &m.states[i]
		burnS := m.burn(st.def, T, st.def.ShortWindow)
		burnL := m.burn(st.def, T, st.def.LongWindow)
		firing := burnS >= st.def.Burn && burnL >= st.def.Burn
		if firing != st.firing {
			st.firing = firing
			if firing {
				st.fired++
			}
			m.alerts = append(m.alerts, AlertEvent{
				At: T, SLO: st.def.Name, Firing: firing,
				BurnShort: burnS, BurnLong: burnL,
			})
		}
	}
}

// frameLocked renders one dashboard frame at virtual time T: cumulative
// request/error/cold counts, E2E percentiles, the Eq.-1 bill so far, and
// the currently-firing objectives.
func (m *Monitor) frameLocked(T time.Duration) {
	total := m.store.Total(seriesTotal)
	errs := m.store.Total(seriesErrors)
	cold := m.store.Total(seriesCold)
	cost := m.store.Total(seriesCost)
	coldPct := 0.0
	if total.Count > 0 {
		coldPct = 100 * float64(cold.Count) / float64(total.Count)
	}
	firing := sortedFiring(m.states)
	firingStr := "-"
	if len(firing) > 0 {
		firingStr = strings.Join(firing, ",")
	}
	m.frames = append(m.frames, fmt.Sprintf(
		"[%s] req=%-6d err=%-4d cold=%-5d cold%%=%-5.1f p50=%.3fs p95=%.3fs max=%.3fs cost=$%.9f firing=%s\n",
		fmtOffset(T), total.Count, errs.Count, cold.Count, coldPct,
		m.hist.Quantile(0.50), m.hist.Quantile(0.95), total.Max,
		cost.Sum, firingStr))
}

// Alerts returns a copy of the alert transitions so far, in virtual-time
// order.
func (m *Monitor) Alerts() []AlertEvent {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AlertEvent(nil), m.alerts...)
}

// AlertLog renders the alert transitions as the canonical text log, one
// line per event ("" when no transitions occurred).
func (m *Monitor) AlertLog() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range m.Alerts() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Dashboard returns the concatenated dashboard frames rendered so far.
func (m *Monitor) Dashboard() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return strings.Join(m.frames, "")
}

// SLOFireCount summarizes one objective's outcome over the run.
type SLOFireCount struct {
	Name   string
	Kind   Kind
	Fired  int  // fire transitions over the run
	Firing bool // still firing at the end
}

// FireCounts reports per-objective fire counts in configuration order.
func (m *Monitor) FireCounts() []SLOFireCount {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SLOFireCount, 0, len(m.states))
	for i := range m.states {
		st := &m.states[i]
		out = append(out, SLOFireCount{
			Name: st.def.Name, Kind: st.def.Kind,
			Fired: st.fired, Firing: st.firing,
		})
	}
	return out
}

// Store exposes the underlying TSDB (nil when monitoring is disabled).
func (m *Monitor) Store() *Store {
	if m == nil {
		return nil
	}
	return m.store
}

// Ledger exposes the cost-attribution ledger (nil when monitoring is
// disabled).
func (m *Monitor) Ledger() *Ledger {
	if m == nil {
		return nil
	}
	return m.ledger
}

// Latency returns a merged copy of the cumulative E2E histogram.
func (m *Monitor) Latency() *stats.Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := stats.NewHistogram()
	cp.Merge(m.hist)
	return cp
}
