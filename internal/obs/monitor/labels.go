package monitor

import (
	"sort"
	"strings"
)

// Labeled series.
//
// The Store keys every series by a flat name; label sets ride inside that
// name under a canonical encoding so labeled series inherit the store's
// whole contract (ring windows, rollups, window-wise Merge) without a
// second data model. The encoding is
//
//	family{k="v",k2="v2"}
//
// with keys sorted and values written verbatim — producers build names
// through LabeledSeries so two series with the same label set always
// collide onto the same string, and consumers (the mql query engine, the
// OpenMetrics exposition) split them back with SplitSeries. A name with no
// '{' is an unlabeled series whose family is the whole name.

// Label is one key=value pair of a labeled series name.
type Label struct {
	Key string
	Val string
}

// LabeledSeries canonically encodes a family plus labels as a store series
// name: keys are sorted, values written verbatim (producers must not put
// '"' or newlines in label values). No labels returns the bare family.
func LabeledSeries(family string, labels ...Label) string {
	if len(labels) == 0 {
		return family
	}
	ls := append([]Label(nil), labels...)
	// Order by (key, value): a total order, so the canonical form does not
	// depend on sort stability even for degenerate duplicate keys.
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Val < ls[j].Val
	})
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Val)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitSeries decodes a canonical series name into its family and label
// set. Names without a label block (or with one that does not parse) come
// back as a bare family with nil labels, so unlabeled series and foreign
// names degrade gracefully.
func SplitSeries(name string) (family string, labels []Label) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil
	}
	if !strings.HasSuffix(name, "}") {
		return name, nil
	}
	family = name[:i]
	body := name[i+1 : len(name)-1]
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return name, nil // not the canonical encoding; treat as opaque
		}
		labels = append(labels, Label{Key: k, Val: v[1 : len(v)-1]})
	}
	return family, labels
}
