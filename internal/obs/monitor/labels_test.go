package monitor

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestLabeledSeriesCanonical(t *testing.T) {
	if got := LabeledSeries("req.total"); got != "req.total" {
		t.Fatalf("no labels: got %q", got)
	}
	a := LabeledSeries("req.total", Label{"function", "f1"}, Label{"arm", "debloated"})
	b := LabeledSeries("req.total", Label{"arm", "debloated"}, Label{"function", "f1"})
	if a != b {
		t.Fatalf("label order changed encoding: %q vs %q", a, b)
	}
	want := `req.total{arm="debloated",function="f1"}`
	if a != want {
		t.Fatalf("encoding = %q, want %q", a, want)
	}
}

func TestSplitSeriesRoundTrip(t *testing.T) {
	name := LabeledSeries("cost.usd", Label{"function", "fn-007"}, Label{"phase", "init"})
	fam, labels := SplitSeries(name)
	if fam != "cost.usd" {
		t.Fatalf("family = %q", fam)
	}
	if len(labels) != 2 || labels[0] != (Label{"function", "fn-007"}) || labels[1] != (Label{"phase", "init"}) {
		t.Fatalf("labels = %v", labels)
	}
	if re := LabeledSeries(fam, labels...); re != name {
		t.Fatalf("re-encode = %q, want %q", re, name)
	}
}

func TestSplitSeriesDegenerate(t *testing.T) {
	for _, name := range []string{
		"req.total",        // unlabeled
		"req.total{",       // unterminated
		"req.total{x}",     // no '='
		`req.total{x=y}`,   // unquoted value
		`req.total{x="y}`,  // half-quoted
		"weird{name=\"v\"", // no closing brace
	} {
		fam, labels := SplitSeries(name)
		if fam != name || labels != nil {
			t.Fatalf("SplitSeries(%q) = %q, %v; want opaque passthrough", name, fam, labels)
		}
	}
}

func TestStoreScan(t *testing.T) {
	st := NewStore(time.Minute, 10)
	st.Record("s", 30*time.Second, 1) // window 0
	st.Record("s", 3*time.Minute, 2)  // window 3 (1 and 2 skipped → zero)
	var starts []time.Duration
	var counts []uint64
	st.Scan("s", 0, 4*time.Minute, func(start time.Duration, r Rollup) {
		starts = append(starts, start)
		counts = append(counts, r.Count)
	})
	if len(starts) != 4 {
		t.Fatalf("visited %d windows, want 4 (%v)", len(starts), starts)
	}
	for i, want := range []time.Duration{0, time.Minute, 2 * time.Minute, 3 * time.Minute} {
		if starts[i] != want {
			t.Fatalf("window %d starts at %v, want %v", i, starts[i], want)
		}
	}
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("counts = %v, want [1 0 0 1]", counts)
	}

	// Windows past the latest write and before `from` are not visited.
	starts = nil
	st.Scan("s", 2*time.Minute, time.Hour, func(start time.Duration, _ Rollup) {
		starts = append(starts, start)
	})
	if len(starts) != 2 || starts[0] != 2*time.Minute || starts[1] != 3*time.Minute {
		t.Fatalf("clamped scan visited %v", starts)
	}

	// Nil store, missing series, and empty ranges are all no-ops.
	var nilStore *Store
	nilStore.Scan("s", 0, time.Hour, func(time.Duration, Rollup) { t.Fatal("nil store scanned") })
	st.Scan("missing", 0, time.Hour, func(time.Duration, Rollup) { t.Fatal("missing series scanned") })
	st.Scan("s", time.Hour, time.Hour, func(time.Duration, Rollup) { t.Fatal("empty range scanned") })
}

func TestStoreScanEviction(t *testing.T) {
	st := NewStore(time.Minute, 4)
	for w := 0; w < 10; w++ {
		st.Record("s", time.Duration(w)*time.Minute, float64(w))
	}
	var starts []time.Duration
	st.Scan("s", 0, time.Hour, func(start time.Duration, _ Rollup) {
		starts = append(starts, start)
	})
	// Only the last 4 windows (6..9) remain in the ring.
	if len(starts) != 4 || starts[0] != 6*time.Minute || starts[3] != 9*time.Minute {
		t.Fatalf("post-eviction scan visited %v", starts)
	}
}

func TestStoreScanMatchesRange(t *testing.T) {
	st := NewStore(time.Minute, 60)
	for i := 0; i < 500; i++ {
		at := time.Duration(i*7) * time.Second
		st.Record("s", at, float64(i%13))
	}
	from, to := 3*time.Minute, 40*time.Minute
	want := st.Range("s", from, to)
	var got Rollup
	st.Scan("s", from, to, func(_ time.Duration, r Rollup) { got.Merge(r) })
	if got != want {
		t.Fatalf("Scan fold %+v != Range %+v", got, want)
	}
}

func TestStoreFamiliesGroupsLabels(t *testing.T) {
	st := NewStore(time.Minute, 10)
	st.Record("req.total", time.Second, 2)
	st.Record(LabeledSeries("req.total", Label{"function", "a"}), time.Second, 2)
	st.Record(LabeledSeries("req.total", Label{"function", "b"}), 2*time.Second, 5)
	st.Record("other", time.Second, 1)
	var b strings.Builder
	StoreFamilies(&b, st, func(series, kind string) string {
		if series == `req.total{function="b"}` && kind == "max" {
			return ExemplarAnnotation([]Label{{"span_id", "deadbeef"}}, 5, 2*time.Second)
		}
		return ""
	})
	got := b.String()
	want := `# TYPE lambdatrim_other_count counter
lambdatrim_other_count 1
# TYPE lambdatrim_other_sum gauge
lambdatrim_other_sum 1
# TYPE lambdatrim_other_max gauge
lambdatrim_other_max 1
# TYPE lambdatrim_req_total_count counter
lambdatrim_req_total_count 1
lambdatrim_req_total_count{function="a"} 1
lambdatrim_req_total_count{function="b"} 1
# TYPE lambdatrim_req_total_sum gauge
lambdatrim_req_total_sum 2
lambdatrim_req_total_sum{function="a"} 2
lambdatrim_req_total_sum{function="b"} 5
# TYPE lambdatrim_req_total_max gauge
lambdatrim_req_total_max 2
lambdatrim_req_total_max{function="a"} 2
lambdatrim_req_total_max{function="b"} 5 # {span_id="deadbeef"} 5 2
`
	if got != want {
		t.Fatalf("grouped exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The grouped writer must keep unlabeled stores byte-identical to the
// historical per-series writer (goldens and smoke checks depend on it).
func TestStoreFamiliesUnlabeledCompat(t *testing.T) {
	st := NewStore(time.Minute, 10)
	st.Record("req.total", time.Second, 1.5)
	st.Record("cost.usd", time.Second, 0.25)
	var b strings.Builder
	StoreFamilies(&b, st, nil)
	var legacy strings.Builder
	for _, name := range st.Names() {
		tot := st.Total(name)
		mn := metricName(name)
		writeFamily(&legacy, mn+"_count", "counter",
			mn+"_count "+strconv.FormatUint(tot.Count, 10))
		writeFamily(&legacy, mn+"_sum", "gauge",
			mn+"_sum "+fmtFloat(tot.Sum))
		writeFamily(&legacy, mn+"_max", "gauge",
			mn+"_max "+fmtFloat(tot.Max))
	}
	if b.String() != legacy.String() {
		t.Fatalf("unlabeled exposition drifted:\ngot:\n%s\nwant:\n%s", b.String(), legacy.String())
	}
}

func TestLabeledObserve(t *testing.T) {
	m := New(Config{Resolution: time.Minute, Windows: 60, LabelSeries: true})
	m.Observe(time.Second, Sample{Function: "f1", Class: "ok", E2E: 2 * time.Second, CostUSD: 0.5})
	m.Observe(2*time.Second, Sample{Function: "f2", Class: "error", Cold: true, E2E: time.Second, CostUSD: 0.25})
	m.Finish()
	if got := m.Store().Total(LabeledSeries("req.total", Label{"function", "f1"})); got.Count != 1 {
		t.Fatalf("f1 labeled total = %+v", got)
	}
	if got := m.Store().Total(LabeledSeries("req.error", Label{"function", "f2"})); got.Count != 1 {
		t.Fatalf("f2 labeled errors = %+v", got)
	}
	if got := m.Store().Total(LabeledSeries("req.cold", Label{"function", "f2"})); got.Count != 1 {
		t.Fatalf("f2 labeled cold = %+v", got)
	}
	if got := m.Store().Total("req.total"); got.Count != 2 {
		t.Fatalf("unlabeled total = %+v (labeled series must not displace it)", got)
	}
}
