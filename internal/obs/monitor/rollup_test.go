package monitor

import (
	"math/rand"
	"testing"
)

// Rollup.Merge is the combine applied window-wise by Store.Merge, so the
// fleet's any-worker-count byte-identity rests on its algebra: it must be
// commutative and associative with the empty rollup as identity, and safe
// to apply to a value merged with itself (the aliasing shape that bit
// Histogram.Merge in PR 6). Test values are small multiples of 1/64 —
// exactly representable in a float64 — so associativity holds bitwise, not
// just approximately; the store's merge order is fixed (block-index order)
// precisely because float addition is not associative for arbitrary
// values.

func randRollup(rng *rand.Rand) Rollup {
	if rng.Intn(8) == 0 {
		return Rollup{}
	}
	var r Rollup
	n := rng.Intn(6) + 1
	for i := 0; i < n; i++ {
		r.add(float64(rng.Intn(256)) / 64)
	}
	return r
}

func TestRollupMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := randRollup(rng), randRollup(rng)
		ab, ba := a, b
		ab.Merge(b)
		ba.Merge(a)
		if ab != ba {
			t.Fatalf("merge not commutative: %+v ∪ %+v → %+v vs %+v", a, b, ab, ba)
		}
	}
}

func TestRollupMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a, b, c := randRollup(rng), randRollup(rng), randRollup(rng)
		// (a ∪ b) ∪ c
		left := a
		left.Merge(b)
		left.Merge(c)
		// a ∪ (b ∪ c)
		bc := b
		bc.Merge(c)
		right := a
		right.Merge(bc)
		if left != right {
			t.Fatalf("merge not associative for %+v, %+v, %+v: %+v vs %+v", a, b, c, left, right)
		}
	}
}

func TestRollupMergeEmptyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := randRollup(rng)
		left := Rollup{}
		left.Merge(a)
		right := a
		right.Merge(Rollup{})
		if left != a || right != a {
			t.Fatalf("empty not identity for %+v: left %+v right %+v", a, left, right)
		}
	}
}

func TestRollupMergeSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a := randRollup(rng)
		got := a
		got.Merge(got) // argument is a copy: self-merge must double, not corrupt
		want := Rollup{Count: 2 * a.Count, Sum: a.Sum + a.Sum, Max: a.Max}
		if a.Count == 0 {
			want = Rollup{}
		}
		if got != want {
			t.Fatalf("self-merge of %+v = %+v, want %+v", a, got, want)
		}
	}
}
