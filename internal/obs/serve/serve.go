// Package serve exposes a finished replay (or any compatible telemetry
// producer) over HTTP: the OpenMetrics exposition, the mql query engine,
// the alert log, a server-sent-events dashboard stream, and span lookup
// by exemplar ID. The server is read-only — it renders artifacts that are
// already deterministic, so responses are byte-stable for a fixed replay
// and the server adds no observable state of its own.
//
// The Site struct decouples the server from the fleet package (fleet
// imports query; a server type inside fleet or query would bend the
// import graph): callers hand over closures and values, typically wired
// from a fleet.Result.
package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/query"
)

// Site is the bundle of artifacts the server exposes. Any field may be
// zero: the corresponding endpoint degrades (empty exposition, 404 span
// lookups) instead of panicking.
type Site struct {
	// OpenMetrics returns the exposition body (already "# EOF" terminated).
	OpenMetrics func() []byte
	// Engine answers /query. A nil engine evaluates everything to zero.
	Engine *query.Engine
	// AlertLog is the rendered alert transition log for /alerts.
	AlertLog string
	// Frames are the dashboard frames streamed by /dashboard.
	Frames []string
	// FindSpan resolves a span ID for /span (nil disables lookup).
	FindSpan func(id string) *obs.Span
	// FrameDelay paces the SSE dashboard stream (0 streams immediately,
	// which is what tests want).
	FrameDelay time.Duration
}

// Handler builds the site's HTTP mux:
//
//	GET /metrics            OpenMetrics exposition
//	GET /query?q=<mql>      instant query, JSON
//	GET /query?q=&step=<d>  range query over the whole replay, JSON
//	GET /alerts             alert transition log, plain text
//	GET /dashboard          dashboard frames as an SSE stream
//	GET /span?id=<hex>      span subtree behind an exemplar, plain text
//	GET /                   tiny plain-text index
func (s *Site) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/query", s.query)
	mux.HandleFunc("/alerts", s.alerts)
	mux.HandleFunc("/dashboard", s.dashboard)
	mux.HandleFunc("/span", s.span)
	mux.HandleFunc("/", s.index)
	return mux
}

// ListenAndServe serves the site on addr until the server errors. The
// caller owns process lifetime; there is no graceful-shutdown dance
// because the server is a read-only viewer over an immutable result.
func (s *Site) ListenAndServe(addr string) error {
	return (&http.Server{Addr: addr, Handler: s.Handler()}).ListenAndServe()
}

func (s *Site) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("lambdatrim observability server\n" +
		"  /metrics            OpenMetrics exposition\n" +
		"  /query?q=<mql>      instant query (add &step=1m for a range)\n" +
		"  /alerts             alert transition log\n" +
		"  /dashboard          SSE dashboard stream\n" +
		"  /span?id=<hex>      exemplar span subtree\n"))
}

func (s *Site) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type",
		"application/openmetrics-text; version=1.0.0; charset=utf-8")
	if s.OpenMetrics != nil {
		w.Write(s.OpenMetrics())
		return
	}
	w.Write([]byte("# EOF\n"))
}

func (s *Site) query(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	var out string
	var err error
	if stepStr := r.URL.Query().Get("step"); stepStr != "" {
		var step time.Duration
		step, err = time.ParseDuration(stepStr)
		if err != nil || step <= 0 {
			http.Error(w, "bad step: "+stepStr, http.StatusBadRequest)
			return
		}
		out, err = s.Engine.RangeJSON(q, 0, -1, step)
	} else {
		at := time.Duration(-1)
		if atStr := r.URL.Query().Get("at"); atStr != "" {
			at, err = time.ParseDuration(atStr)
			if err != nil {
				http.Error(w, "bad at: "+atStr, http.StatusBadRequest)
				return
			}
		}
		out, err = s.Engine.InstantJSON(q, at)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(out + "\n"))
}

func (s *Site) alerts(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(s.AlertLog))
}

// dashboard streams the replay's dashboard frames as server-sent events,
// one frame per event, then a terminal "done" event. SSE data lines must
// not contain raw newlines, so multi-line frames become consecutive
// data: lines (the SSE way to send one multi-line payload).
func (s *Site) dashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	for i, frame := range s.Frames {
		w.Write([]byte("id: " + strconv.Itoa(i) + "\nevent: frame\n"))
		for _, line := range strings.Split(strings.TrimRight(frame, "\n"), "\n") {
			w.Write([]byte("data: " + line + "\n"))
		}
		w.Write([]byte("\n"))
		if fl != nil {
			fl.Flush()
		}
		if s.FrameDelay > 0 && i < len(s.Frames)-1 {
			select {
			case <-time.After(s.FrameDelay):
			case <-r.Context().Done():
				return
			}
		}
	}
	w.Write([]byte("event: done\ndata: " + strconv.Itoa(len(s.Frames)) + " frames\n\n"))
}

func (s *Site) span(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	if s.FindSpan == nil {
		http.Error(w, "span lookup not available", http.StatusNotFound)
		return
	}
	sp := s.FindSpan(id)
	if sp == nil {
		http.Error(w, "no span with id "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(sp.Subtree()))
}
