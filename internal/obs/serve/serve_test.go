package serve

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
)

func testSite() *Site {
	st := monitor.NewStore(time.Minute, 60)
	for i := 0; i < 10; i++ {
		at := time.Duration(i)*time.Minute + 30*time.Second
		st.Record("req.total", at, float64(i+1))
		st.Record("cost.usd", at, float64(i+1)/8)
	}
	tr := obs.New()
	root := tr.StartChild(nil, "fleet.exemplars", "fleet", 0)
	child := tr.StartChild(root, "fn-00042", "fleet.exemplar", time.Second)
	child.ID = "00000000deadbeef"
	tr.End(child, 3*time.Second)
	tr.End(root, 3*time.Second)
	return &Site{
		OpenMetrics: func() []byte { return []byte("# TYPE x gauge\nx 1\n# EOF\n") },
		Engine:      &query.Engine{Store: st, Latest: 9*time.Minute + 30*time.Second},
		AlertLog:    "[0h00m] FIRING cold-fraction\n",
		Frames:      []string{"frame one\n", "frame two\nsecond line\n"},
		FindSpan:    tr.FindSpan,
	}
}

func get(t *testing.T, s *Site, url string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body), res.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	code, body, ct := get(t, testSite(), "/metrics")
	if code != 200 || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestQueryEndpointInstant(t *testing.T) {
	code, body, ct := get(t, testSite(), "/query?q=cost.usd+%2F+req.total")
	if code != 200 {
		t.Fatalf("code=%d body=%q", code, body)
	}
	want := `{"query":"cost.usd / req.total","type":"instant","at_us":600000000,"value":0.125}` + "\n"
	if body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestQueryEndpointRange(t *testing.T) {
	code, body, _ := get(t, testSite(), "/query?q=count(req.total%5B1m%5D)&step=5m")
	if code != 200 || !strings.Contains(body, `"type":"range"`) {
		t.Fatalf("code=%d body=%q", code, body)
	}
	if !strings.Contains(body, `"step_us":300000000`) {
		t.Fatalf("body = %q", body)
	}
}

func TestQueryEndpointAt(t *testing.T) {
	_, body, _ := get(t, testSite(), "/query?q=req.total&at=3m")
	if !strings.Contains(body, `"value":6`) { // 1+2+3 before the 3m boundary
		t.Fatalf("body = %q", body)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	for _, url := range []string{
		"/query",
		"/query?q=frob(x%5B1m%5D)",
		"/query?q=req.total&step=bogus",
		"/query?q=req.total&at=bogus",
	} {
		if code, body, _ := get(t, testSite(), url); code != 400 {
			t.Errorf("%s: code=%d body=%q, want 400", url, code, body)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	code, body, _ := get(t, testSite(), "/alerts")
	if code != 200 || !strings.Contains(body, "FIRING cold-fraction") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestDashboardSSE(t *testing.T) {
	code, body, ct := get(t, testSite(), "/dashboard")
	if code != 200 || ct != "text/event-stream" {
		t.Fatalf("code=%d ct=%q", code, ct)
	}
	want := "id: 0\nevent: frame\ndata: frame one\n\n" +
		"id: 1\nevent: frame\ndata: frame two\ndata: second line\n\n" +
		"event: done\ndata: 2 frames\n\n"
	if body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
}

func TestSpanEndpoint(t *testing.T) {
	code, body, _ := get(t, testSite(), "/span?id=00000000deadbeef")
	if code != 200 || !strings.Contains(body, "fn-00042") {
		t.Fatalf("code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, testSite(), "/span?id=ffff"); code != 404 {
		t.Fatalf("unknown span code=%d, want 404", code)
	}
	if code, _, _ := get(t, testSite(), "/span"); code != 400 {
		t.Fatalf("missing id code=%d, want 400", code)
	}
}

func TestEmptySiteDegrades(t *testing.T) {
	s := &Site{}
	if code, body, _ := get(t, s, "/metrics"); code != 200 || body != "# EOF\n" {
		t.Fatalf("empty metrics code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, s, "/span?id=x"); code != 404 {
		t.Fatalf("empty span code=%d", code)
	}
	if code, body, _ := get(t, s, "/query?q=req.total"); code != 200 || !strings.Contains(body, `"value":0`) {
		t.Fatalf("empty query code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, s, "/nope"); code != 404 {
		t.Fatalf("unknown path code=%d", code)
	}
	if code, body, _ := get(t, s, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index code=%d body=%q", code, body)
	}
}
