// Package obs is the deterministic observability layer for the simulator
// and the λ-trim pipeline: hierarchical spans and a metrics registry driven
// entirely by simulated clocks (never time.Now()), so that identical seeds
// produce byte-identical telemetry.
//
// Every timestamp entering this package is an offset on some caller-owned
// simulated timeline (the platform clock, an interpreter clock, or the
// debloater's virtual time); the tracer itself never reads a clock. All
// entry points are nil-safe: a nil *Tracer (the default in every Config)
// makes every call a no-op, so untraced runs execute the instrumented code
// paths unchanged.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Attr is one key/value attribute on a span or event. Values are
// pre-formatted strings so that rendering is deterministic and the same
// attribute list can back both the JSONL event log and the k=v log lines.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: fmt.Sprintf("%d", v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: fmt.Sprintf("%t", v)} }

// DurationUS builds a duration attribute rendered as integer microseconds
// (the canonical duration unit of the event log).
func DurationUS(k string, d time.Duration) Attr {
	return Attr{Key: k, Val: fmt.Sprintf("%d", d.Microseconds())}
}

// Span is one node of the trace tree: a named interval of simulated time
// with attributes and children. Fields are exported for exporters and
// tests; mutate through the Tracer while a trace is being recorded.
type Span struct {
	Name  string
	Cat   string
	Start time.Duration
	End   time.Duration
	// ID optionally names the span for cross-referencing from outside the
	// trace tree (OpenMetrics exemplars carry span IDs). Producers derive
	// IDs deterministically from their own seeds; "" means unindexed.
	ID    string
	Attrs []Attr
	// Children are in creation order, which instrumentation keeps
	// deterministic (concurrent layers create child spans only at
	// deterministic synchronization points).
	Children []*Span
}

// Add appends attributes to the span. Nil-safe; returns s for chaining.
func (s *Span) Add(attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, attrs...)
	return s
}

// Finish closes a span created with StartChild by setting its end time.
// Nil-safe. Spans opened with Tracer.Start should be closed with
// Tracer.End instead so the span stack unwinds.
func (s *Span) Finish(at time.Duration) {
	if s == nil {
		return
	}
	s.End = at
}

// Dur is the span's duration (0 while open or for instant spans).
func (s *Span) Dur() time.Duration {
	if s == nil || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Event is one instant record on the timeline (fault injections, throttle
// rejections, cache hits, and the canonical per-invocation log records).
type Event struct {
	Name  string
	Time  time.Duration
	Attrs []Attr
}

// Tracer records a per-run trace tree, an event log, and a metrics
// registry. A single tracer may span several simulated timelines (the
// debloat pipeline's virtual time, then each platform's clock); exporters
// preserve timestamps as given.
//
// Single-threaded layers use the Start/End stack discipline; concurrent
// layers attach spans to explicit parents with StartChild at deterministic
// points. The tracer serializes all mutation internally.
type Tracer struct {
	mu     sync.Mutex
	roots  []*Span
	stack  []*Span
	events []Event
	reg    *Registry
}

// New returns an empty tracer with a fresh metrics registry.
func New() *Tracer { return &Tracer{reg: NewRegistry()} }

// Metrics returns the tracer's registry (nil for a nil tracer; the
// registry's methods are nil-safe in turn).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Start opens a span at simulated time `at` as a child of the innermost
// open span (or as a new root) and pushes it on the span stack.
func (t *Tracer) Start(name, cat string, at time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Cat: cat, Start: at, End: at}
	t.attach(s, nil)
	t.stack = append(t.stack, s)
	return s
}

// End closes a span and pops the stack down through it. If s was created
// with StartChild (not on the stack), only its end time is set. Nil-safe.
func (t *Tracer) End(s *Span, at time.Duration) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.End = at
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			return
		}
	}
}

// StartChild opens a span under an explicit parent without touching the
// span stack — for layers that interleave several logical flows (retry
// groups) or record subtrees at synchronization points (parallel DD
// waves). A nil parent attaches to the innermost open span, or as a root.
// Close with (*Span).Finish.
func (t *Tracer) StartChild(parent *Span, name, cat string, at time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Cat: cat, Start: at, End: at}
	t.attach(s, parent)
	return s
}

// attach links s under parent, the stack top, or the root list.
// Callers hold t.mu.
func (t *Tracer) attach(s *Span, parent *Span) {
	if parent == nil && len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	if parent != nil {
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
}

// Current returns the innermost open stack span (nil when none).
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return nil
	}
	return t.stack[len(t.stack)-1]
}

// Emit appends one instant event to the event log.
func (t *Tracer) Emit(name string, at time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Name: name, Time: at, Attrs: attrs})
}

// Absorb appends another tracer's recorded roots and events onto t and
// merges its metrics registry, preserving o's internal order. It is the
// deterministic join point for per-worker tracers: workers record into
// private tracers concurrently, then the scheduler absorbs them in a fixed
// (corpus) order, producing the same trace tree as a sequential run.
// Absorbing an open tracer (non-empty span stack) is a caller bug; the
// spans are taken as-is. Nil-safe on both sides; o must not be used after.
func (t *Tracer) Absorb(o *Tracer) {
	if t == nil || o == nil {
		return
	}
	o.mu.Lock()
	roots, events, reg := o.roots, o.events, o.reg
	o.mu.Unlock()
	t.mu.Lock()
	t.roots = append(t.roots, roots...)
	t.events = append(t.events, events...)
	t.mu.Unlock()
	t.reg.Merge(reg)
}

// Roots returns the recorded root spans (the live slice; callers must not
// mutate while recording continues).
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.roots
}

// Events returns the recorded event log.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Walk visits every span depth-first in deterministic (creation) order.
func (t *Tracer) Walk(fn func(s *Span, depth int)) {
	if t == nil {
		return
	}
	for _, r := range t.Roots() {
		walkSpan(r, 0, fn)
	}
}

func walkSpan(s *Span, depth int, fn func(*Span, int)) {
	fn(s, depth)
	for _, c := range s.Children {
		walkSpan(c, depth+1, fn)
	}
}

// FindSpan returns the first span (depth-first, creation order) whose ID
// matches, or nil. This is the exemplar join: an exemplar annotation in the
// exposition carries a span ID, and FindSpan resolves it back to the trace
// subtree that explains the outlier. Linear in the trace size — exemplar
// lookups are interactive-path only.
func (t *Tracer) FindSpan(id string) *Span {
	if t == nil || id == "" {
		return nil
	}
	var found *Span
	t.Walk(func(s *Span, _ int) {
		if found == nil && s.ID == id {
			found = s
		}
	})
	return found
}

// Subtree renders the span and its descendants as indented text, one span
// per line with timing and attributes — the human-readable answer to "what
// was this exemplar doing". Deterministic for a deterministic trace.
func (s *Span) Subtree() string {
	var b []byte
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		b = append(b, sp.Name...)
		if sp.Cat != "" {
			b = append(b, " ["...)
			b = append(b, sp.Cat...)
			b = append(b, ']')
		}
		b = append(b, fmt.Sprintf(" %s +%s", sp.Start, sp.Dur())...)
		if sp.ID != "" {
			b = append(b, " id="...)
			b = append(b, sp.ID...)
		}
		for _, a := range sp.Attrs {
			b = append(b, ' ')
			b = append(b, a.Key...)
			b = append(b, '=')
			b = append(b, a.Val...)
		}
		b = append(b, '\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	if s == nil {
		return ""
	}
	walk(s, 0)
	return string(b)
}
