package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/monitor"
)

// Parse parses one mql expression. The whole input must be consumed; a
// trailing range selector outside an aggregation call (`x[5m]` bare) is
// therefore rejected, matching the language rule that window reads always
// go through an aggregation function.
func Parse(q string) (Expr, error) {
	p := &parser{s: q}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.i < len(p.s) {
		return nil, p.errf("unexpected %q", p.s[p.i:])
	}
	return x, nil
}

// functions are the range aggregations; an identifier followed by '(' must
// be one of these.
var functions = map[string]bool{
	"sum": true, "count": true, "max": true, "mean": true, "rate": true,
	"p50": true, "p90": true, "p95": true, "p99": true,
}

type parser struct {
	s string
	i int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("mql: %s (at offset %d of %q)", fmt.Sprintf(format, args...), p.i, p.s)
}

func (p *parser) ws() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.i >= len(p.s) {
		return 0
	}
	return p.s[p.i]
}

func (p *parser) expect(c byte) error {
	p.ws()
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.i++
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.' || c == ':'
}

func (p *parser) ident() string {
	start := p.i
	for p.i < len(p.s) && isIdentByte(p.s[p.i]) {
		p.i++
	}
	return p.s[start:p.i]
}

// stringLit scans a double-quoted literal. No escape sequences: the
// canonical renderer never needs them ('"', '{', and '}' are rejected
// where they would be ambiguous), which keeps parse→String→parse exact.
func (p *parser) stringLit() (string, error) {
	p.i++ // opening quote, already peeked
	start := p.i
	for p.i < len(p.s) {
		if p.s[p.i] == '"' {
			v := p.s[start:p.i]
			p.i++
			return v, nil
		}
		if p.s[p.i] == '\n' {
			break
		}
		p.i++
	}
	return "", p.errf("unterminated string")
}

func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		op := p.peek()
		if op != '+' && op != '-' {
			return l, nil
		}
		p.i++
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) term() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		op := p.peek()
		if op != '*' && op != '/' {
			return l, nil
		}
		p.i++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	p.ws()
	if p.peek() == '-' {
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	p.ws()
	switch c := p.peek(); {
	case c == '(':
		p.i++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return x, nil
	case c >= '0' && c <= '9' || c == '.':
		return p.number()
	case c == '"':
		return p.selector()
	case isIdentStart(c):
		save := p.i
		name := p.ident()
		p.ws()
		if p.peek() == '(' {
			if !functions[name] {
				return nil, p.errf("unknown function %q", name)
			}
			return p.call(name)
		}
		p.i = save
		return p.selector()
	case c == 0:
		return nil, p.errf("unexpected end of query")
	default:
		return nil, p.errf("unexpected %q", string(c))
	}
}

func (p *parser) number() (Expr, error) {
	start := p.i
	for p.i < len(p.s) && (p.s[p.i] >= '0' && p.s[p.i] <= '9' || p.s[p.i] == '.') {
		p.i++
	}
	if p.i < len(p.s) && (p.s[p.i] == 'e' || p.s[p.i] == 'E') {
		p.i++
		if p.i < len(p.s) && (p.s[p.i] == '+' || p.s[p.i] == '-') {
			p.i++
		}
		for p.i < len(p.s) && p.s[p.i] >= '0' && p.s[p.i] <= '9' {
			p.i++
		}
	}
	v, err := strconv.ParseFloat(p.s[start:p.i], 64)
	if err != nil {
		return nil, p.errf("bad number %q", p.s[start:p.i])
	}
	return Number(v), nil
}

// call parses the argument list of a range aggregation:
// "(" selector "[" duration "]" ")".
func (p *parser) call(fn string) (Expr, error) {
	p.i++ // '(' already peeked
	sel, err := p.selector()
	if err != nil {
		return nil, err
	}
	if err := p.expect('['); err != nil {
		return nil, err
	}
	end := strings.IndexByte(p.s[p.i:], ']')
	if end < 0 {
		return nil, p.errf("unterminated range selector")
	}
	raw := strings.TrimSpace(p.s[p.i : p.i+end])
	d, derr := time.ParseDuration(raw)
	if derr != nil || d <= 0 {
		return nil, p.errf("bad window %q (want a positive Go duration)", raw)
	}
	p.i += end + 1
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return Call{Fn: fn, Sel: sel, Window: d}, nil
}

func (p *parser) selector() (Selector, error) {
	p.ws()
	var fam string
	switch c := p.peek(); {
	case c == '"':
		v, err := p.stringLit()
		if err != nil {
			return Selector{}, err
		}
		// A brace in a quoted family would collide with the canonical
		// label encoding and with label blocks; reject rather than
		// produce a selector that cannot round-trip.
		if strings.ContainsAny(v, "{}") {
			return Selector{}, p.errf("series name %q must not contain braces", v)
		}
		fam = v
	case isIdentStart(c):
		fam = p.ident()
	default:
		return Selector{}, p.errf("expected a series name")
	}
	var labels []monitor.Label
	p.ws()
	if p.peek() == '{' {
		p.i++
		for {
			p.ws()
			if p.peek() == '}' {
				p.i++
				break
			}
			if len(labels) > 0 {
				if err := p.expect(','); err != nil {
					return Selector{}, err
				}
				p.ws()
			}
			if !isIdentStart(p.peek()) {
				return Selector{}, p.errf("expected a label name")
			}
			key := p.ident()
			if err := p.expect('='); err != nil {
				return Selector{}, err
			}
			p.ws()
			if p.peek() != '"' {
				return Selector{}, p.errf("label value must be a quoted string")
			}
			val, err := p.stringLit()
			if err != nil {
				return Selector{}, err
			}
			if strings.ContainsAny(val, "{},") {
				return Selector{}, p.errf("label value %q must not contain braces or commas", val)
			}
			labels = append(labels, monitor.Label{Key: key, Val: val})
		}
	}
	return Selector{Name: monitor.LabeledSeries(fam, labels...)}, nil
}
