package query

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, q string) Expr {
	t.Helper()
	x, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return x
}

func TestParseShapes(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() form
	}{
		{"req.total", "req.total"},
		{"  req.total  ", "req.total"},
		{"42", "42"},
		{"4.5e3", "4500"},
		{"-3", "(-3)"},
		{`req.total{function="f1"}`, `req.total{function="f1"}`},
		{`req.total{function="f1",arm="debloated"}`, `req.total{arm="debloated",function="f1"}`},
		{`"slo.fleet-cold-fraction.bad"`, `"slo.fleet-cold-fraction.bad"`},
		{`"slo.x.bad"{arm="a"}`, `slo.x.bad{arm="a"}`}, // dots are ident-safe: canonical form drops the quotes
		{"sum(cost.usd[5m])", "sum(cost.usd[5m0s])"},
		{"rate(req.error[1h])", "rate(req.error[1h0m0s])"},
		{"p95(req.total[30m])", "p95(req.total[30m0s])"},
		{"cost.usd / req.total", "(cost.usd / req.total)"},
		{"a + b * c", "(a + (b * c))"},
		{"(a + b) * c", "((a + b) * c)"},
		{"a - b - c", "((a - b) - c)"},
		{"-a * b", "((-a) * b)"},
		{"fleet:cost_usd:rate1h", "fleet:cost_usd:rate1h"},
		{`sum(req.total{function="f"}[2m])`, `sum(req.total{function="f"}[2m0s])`},
		{"max(req.total[1m])/mean(req.total[1m])", "(max(req.total[1m0s]) / mean(req.total[1m0s]))"},
		{`req.total{}`, "req.total"},
	}
	for _, c := range cases {
		x := mustParse(t, c.in)
		if got := x.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	for _, q := range []string{
		"req.total",
		`req.total{arm="debloated",function="f1"}`,
		"sum(cost.usd[5m])",
		"(rate(cost.usd[1h]) / rate(req.total[1h]))",
		"((-3) + (a * 2))",
		`"weird name!"{x="1"}`,
	} {
		x := mustParse(t, q)
		once := x.String()
		twice := mustParse(t, once).String()
		if once != twice {
			t.Errorf("canonical form not stable: %q → %q → %q", q, once, twice)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"   ",
		"req.total[5m]",       // bare range selector: windows go through aggregations
		"sum(req.total)",      // aggregation without a window
		"frob(req.total[1m])", // unknown function
		"sum(req.total[0s])",  // non-positive window
		"sum(req.total[xyz])",
		"sum(req.total[5m)",
		"a +",
		"(a",
		"a)",
		"1.2.3",
		`req.total{function}`,
		`req.total{function=}`,
		`req.total{function=f}`,  // unquoted label value
		`req.total{function="f"`, // unterminated block
		`"unterminated`,
		`"no{braces}"`, // braces in quoted family
		`x{k="a,b"}`,   // comma in label value
		`x{k="a{b"}`,   // brace in label value
		"a $ b",
		"req total",
	} {
		if x, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) = %v, want error", q, x)
		}
	}
}

func TestParseWindow(t *testing.T) {
	x := mustParse(t, "sum(cost.usd[1h30m])")
	c, ok := x.(Call)
	if !ok || c.Window != 90*time.Minute {
		t.Fatalf("parsed %#v, want 90m window call", x)
	}
	if c.Sel.Name != "cost.usd" {
		t.Fatalf("selector = %q", c.Sel.Name)
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse("sum(req.total[5m]) + frob(x[1m])")
	if err == nil || !strings.Contains(err.Error(), "frob") {
		t.Fatalf("err = %v, want mention of the unknown function", err)
	}
}
