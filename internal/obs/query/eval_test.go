package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs/monitor"
)

// buildStore seeds a store with a deterministic minute-resolution workload:
// one req.total sample per minute for 10 minutes (values 1..10 seconds of
// E2E), cost.usd at an exactly-representable eighth of the value (so ratio
// expectations hold bitwise), and a labeled variant for f1.
func buildStore() *monitor.Store {
	st := monitor.NewStore(time.Minute, 60)
	for i := 0; i < 10; i++ {
		at := time.Duration(i)*time.Minute + 30*time.Second
		v := float64(i + 1)
		st.Record("req.total", at, v)
		st.Record("cost.usd", at, v/8)
		if i%2 == 0 {
			st.Record(monitor.LabeledSeries("req.total", monitor.Label{Key: "function", Val: "f1"}), at, v)
		}
	}
	return st
}

func evalAt(t *testing.T, e *Engine, q string, at time.Duration) float64 {
	t.Helper()
	x, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return e.Instant(x, at)
}

func TestInstantEval(t *testing.T) {
	e := &Engine{Store: buildStore(), Latest: 9*time.Minute + 30*time.Second}
	end := e.End()
	if end != 10*time.Minute {
		t.Fatalf("End() = %v", end)
	}
	cases := []struct {
		q    string
		want float64
	}{
		{"req.total", 55},                           // cumulative sum 1..10
		{"count(req.total[10m])", 10},               //
		{"sum(req.total[5m])", 6 + 7 + 8 + 9 + 10},  // trailing 5 windows
		{"max(req.total[10m])", 10},                 //
		{"mean(req.total[2m])", 9.5},                //
		{"rate(req.total[5m])", 40.0 / 300},         // sum/seconds
		{"cost.usd / req.total", 0.125},             // ratio of cumulatives
		{"p50(req.total[10m])", 5},                  // nearest-rank over window means
		{"p99(req.total[10m])", 10},                 //
		{`count(req.total{function="f1"}[10m])`, 5}, // labeled selector
		{"req.total - 55", 0},                       //
		{"req.total / 0", 0},                        // div-by-zero is total
		{"missing.series", 0},                       //
		{"2 * 3 + 1", 7},                            //
		{"-req.total", -55},                         //
	}
	for _, c := range cases {
		if got := evalAt(t, e, c.q, -1); got != c.want {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
	// Evaluation at an earlier boundary sees only earlier windows.
	if got := evalAt(t, e, "req.total", 3*time.Minute); got != 1+2+3 {
		t.Errorf("req.total @3m = %v, want 6", got)
	}
}

func TestRangeEval(t *testing.T) {
	e := &Engine{Store: buildStore(), Latest: 9*time.Minute + 30*time.Second}
	x := mustParse(t, "count(req.total[1m])")
	pts := e.Range(x, 0, -1, 0)
	if len(pts) != 11 { // boundaries 0m..10m
		t.Fatalf("got %d points: %v", len(pts), pts)
	}
	if pts[0].V != 0 || pts[1].V != 1 || pts[10].V != 1 {
		t.Fatalf("points = %v", pts)
	}
	// Non-boundary endpoints snap up.
	pts = e.Range(x, 90*time.Second, 3*time.Minute, 0)
	if len(pts) != 2 || pts[0].T != 2*time.Minute || pts[1].T != 3*time.Minute {
		t.Fatalf("snapped points = %v", pts)
	}
}

func TestInstantJSONShape(t *testing.T) {
	e := &Engine{Store: buildStore(), Latest: 9*time.Minute + 30*time.Second}
	got, err := e.InstantJSON("cost.usd / req.total", -1)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"query":"cost.usd / req.total","type":"instant","at_us":600000000,"value":0.125}`
	if got != want {
		t.Fatalf("InstantJSON = %s, want %s", got, want)
	}
	if _, err := e.InstantJSON("frob(x[1m])", -1); err == nil {
		t.Fatal("bad query did not error")
	}
}

func TestRangeJSONShape(t *testing.T) {
	e := &Engine{Store: buildStore(), Latest: 9*time.Minute + 30*time.Second}
	got, err := e.RangeJSON("count(req.total[1m])", 0, 2*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"query":"count(req.total[1m])","type":"range","step_us":60000000,` +
		`"points":[{"t_us":0,"v":0},{"t_us":60000000,"v":1},{"t_us":120000000,"v":1}]}`
	if got != want {
		t.Fatalf("RangeJSON = %s, want %s", got, want)
	}
	if strings.Contains(got, "NaN") {
		t.Fatal("NaN leaked into JSON")
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if got := e.Instant(Number(3), 0); got != 0 {
		t.Fatalf("nil engine instant = %v", got)
	}
	if pts := e.Range(Number(3), 0, time.Minute, 0); pts != nil {
		t.Fatalf("nil engine range = %v", pts)
	}
}
