package query

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs/monitor"
)

// Recording rules.
//
// A rule `name = expr` materializes expr as a new store series: during
// fleet replay each shard evaluates the rule at every window boundary its
// block reached and records the value into its private store, and the
// shards merge in block-index order like every other fleet artifact. For
// the merged series to mean anything — and to be byte-identical at any
// worker count — the rule body must distribute over the shard partition:
//
//	expr(merged store) == Σ over blocks of expr(block store)
//
// which holds exactly for the linear fragment of mql: selectors, sum/
// count/rate range calls (rate divides by a window length that is the same
// in every shard), sums and differences of linear terms, scalar multiples,
// and division by a constant. It does not hold for max, mean, quantiles,
// or ratios of linears (a sum of per-shard ratios is not the global
// ratio), so ParseRules rejects those bodies up front — ad-hoc queries,
// which run after the merge, still have the full language. This is the
// same aggregation-pushdown restriction streaming systems place on
// pre-computed standing queries.

// Rule is one parsed, validated recording rule.
type Rule struct {
	// Name is the series the rule records into (Prometheus convention:
	// colon-separated, e.g. "fleet:cost_usd:rate1h").
	Name string
	// Expr is the rule body, restricted to the linear fragment.
	Expr Expr
}

// String renders the canonical rule statement.
func (r Rule) String() string { return r.Name + " = " + r.Expr.String() }

// ParseRules parses a rule set: statements separated by ';' or newlines,
// '#' starting a comment line, each statement `name = expr`. Bodies are
// validated to the distributive fragment (see the package comment above)
// and rule names must be fresh identifiers; later rules may reference
// earlier ones.
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for _, stmt := range strings.FieldsFunc(src, func(r rune) bool { return r == ';' || r == '\n' }) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "#") {
			continue
		}
		name, body, ok := strings.Cut(stmt, "=")
		name = strings.TrimSpace(name)
		if !ok || !isIdent(name) {
			return nil, fmt.Errorf("mql: bad rule statement %q (want `name = expr`)", stmt)
		}
		if seen[name] {
			return nil, fmt.Errorf("mql: duplicate rule %q", name)
		}
		x, err := Parse(body)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", name, err)
		}
		if classify(x) != classLinear {
			return nil, fmt.Errorf("mql: rule %q body %s is not distributive over shards "+
				"(allowed: selectors, sum/count/rate, +, -, scalar *, / by a constant)", name, x)
		}
		seen[name] = true
		rules = append(rules, Rule{Name: name, Expr: x})
	}
	return rules, nil
}

// classify sorts an expression into the merge algebra: classConst values
// are shard-independent scalars, classLinear values distribute over the
// shard partition, classOther values do neither.
type class int

const (
	classConst class = iota
	classLinear
	classOther
)

func classify(x Expr) class {
	switch v := x.(type) {
	case Number:
		return classConst
	case Selector:
		return classLinear
	case Call:
		switch v.Fn {
		case "sum", "count", "rate":
			return classLinear
		default: // max, mean, quantiles: not distributive
			return classOther
		}
	case Unary:
		return classify(v.X)
	case Binary:
		l, r := classify(v.L), classify(v.R)
		switch v.Op {
		case '+', '-':
			if l == classLinear && r == classLinear {
				return classLinear
			}
			if l == classConst && r == classConst {
				return classConst
			}
			// linear ± constant would re-add the constant per shard
		case '*':
			if l == classConst && r == classConst {
				return classConst
			}
			if l == classLinear && r == classConst || l == classConst && r == classLinear {
				return classLinear
			}
		case '/':
			if r == classConst {
				if l == classLinear {
					return classLinear
				}
				if l == classConst {
					return classConst
				}
			}
		}
		return classOther
	}
	return classOther
}

// EvalRules sweeps every window boundary from the first through the one
// closing the window holding `latest`, evaluating each rule in order and
// recording nonzero values into the store under the rule's name, stamped
// inside the window the boundary closes. Rules see earlier rules' output
// for preceding windows (an evaluation at T reads windows strictly before
// T), so chained rules are well defined and evaluate identically in every
// shard. The fleet calls this once per block after the block's functions
// replay; Monitor users can call it post-Finish with Monitor latest time.
func EvalRules(st *monitor.Store, rules []Rule, latest time.Duration) {
	if st == nil || len(rules) == 0 {
		return
	}
	res := st.Resolution()
	if res <= 0 {
		return
	}
	if latest < 0 {
		latest = 0
	}
	end := (latest/res + 1) * res
	for T := res; T <= end; T += res {
		for _, r := range rules {
			if v := r.Expr.eval(st, T); v != 0 {
				st.Record(r.Name, T-res, v)
			}
		}
	}
}
