package query

import (
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/monitor"
)

// Engine evaluates parsed expressions against one store. The zero value is
// unusable; construct with the store a replay produced (fleet.Result.Store
// or Monitor.Store).
type Engine struct {
	Store *monitor.Store
	// Latest is the newest sample time the producer observed; instant
	// queries with at<0 and range queries with to<0 default to End().
	Latest time.Duration
}

// End returns the default evaluation boundary: the one that closes the
// window holding Latest — the same boundary the SLO sweep ends on, so a
// default instant query sees every sample. Zero for a nil engine or
// store (the DisableTelemetry shape).
func (e *Engine) End() time.Duration {
	if e == nil || e.Store == nil {
		return 0
	}
	res := e.Store.Resolution()
	if res <= 0 {
		return 0
	}
	return (e.Latest/res + 1) * res
}

// Instant evaluates x at boundary `at` (at<0 means End()).
func (e *Engine) Instant(x Expr, at time.Duration) float64 {
	if e == nil || e.Store == nil {
		return 0
	}
	if at < 0 {
		at = e.End()
	}
	return x.eval(e.Store, at)
}

// Point is one range-query evaluation.
type Point struct {
	T time.Duration
	V float64
}

// Range evaluates x at every boundary from..to inclusive, stepping by
// `step` (0 means the store resolution; to<0 means End()). Endpoints snap
// up to the next resolution boundary so every evaluation point is a
// boundary.
func (e *Engine) Range(x Expr, from, to, step time.Duration) []Point {
	if e == nil || e.Store == nil {
		return nil
	}
	res := e.Store.Resolution()
	if res <= 0 {
		return nil
	}
	if step <= 0 {
		step = res
	}
	if to < 0 {
		to = e.End()
	}
	if from < 0 {
		from = 0
	}
	snap := func(d time.Duration) time.Duration { return ((d + res - 1) / res) * res }
	from, to, step = snap(from), snap(to), snap(step)
	var pts []Point
	for t := from; t <= to; t += step {
		pts = append(pts, Point{T: t, V: x.eval(e.Store, t)})
	}
	return pts
}

// jsonFloat renders v as a JSON number: shortest round-trip form, with the
// non-finite values (which no mql expression should produce — division by
// zero is defined as 0) clamped to 0 so the output is always valid JSON.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// InstantJSON parses and evaluates q at boundary `at` (<0: End()) and
// renders the result as one canonical JSON object. The rendering is
// hand-built and byte-stable: CLI goldens and the live /query endpoint
// share it, so a served response and the smoke artifact compare with cmp.
func (e *Engine) InstantJSON(q string, at time.Duration) (string, error) {
	x, err := Parse(q)
	if err != nil {
		return "", err
	}
	if at < 0 {
		at = e.End()
	}
	v := e.Instant(x, at)
	var b strings.Builder
	b.WriteString(`{"query":`)
	b.WriteString(strconv.Quote(q))
	b.WriteString(`,"type":"instant","at_us":`)
	b.WriteString(strconv.FormatInt(at.Microseconds(), 10))
	b.WriteString(`,"value":`)
	b.WriteString(jsonFloat(v))
	b.WriteString("}")
	return b.String(), nil
}

// RangeJSON parses and evaluates q over [from, to] stepping by step (see
// Range for defaulting) and renders the canonical JSON object.
func (e *Engine) RangeJSON(q string, from, to, step time.Duration) (string, error) {
	x, err := Parse(q)
	if err != nil {
		return "", err
	}
	pts := e.Range(x, from, to, step)
	if step <= 0 {
		if e != nil && e.Store != nil {
			step = e.Store.Resolution()
		} else {
			step = 0
		}
	}
	var b strings.Builder
	b.WriteString(`{"query":`)
	b.WriteString(strconv.Quote(q))
	b.WriteString(`,"type":"range","step_us":`)
	b.WriteString(strconv.FormatInt(step.Microseconds(), 10))
	b.WriteString(`,"points":[`)
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"t_us":`)
		b.WriteString(strconv.FormatInt(p.T.Microseconds(), 10))
		b.WriteString(`,"v":`)
		b.WriteString(jsonFloat(p.V))
		b.WriteByte('}')
	}
	b.WriteString("]}")
	return b.String(), nil
}
