package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs/monitor"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(`
		# cost per window and a chained scaling
		fleet:cost_usd:sum1m = sum(cost.usd[1m])
		fleet:cost_usd:cents = fleet:cost_usd:sum1m * 100; fleet:req:rate5m = rate(req.total[5m])
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules: %v", len(rules), rules)
	}
	if rules[0].Name != "fleet:cost_usd:sum1m" || rules[1].Name != "fleet:cost_usd:cents" {
		t.Fatalf("rule names: %v, %v", rules[0].Name, rules[1].Name)
	}
	if got := rules[1].String(); got != "fleet:cost_usd:cents = (fleet:cost_usd:sum1m * 100)" {
		t.Fatalf("canonical rule = %q", got)
	}
}

func TestParseRulesRejectsNonDistributive(t *testing.T) {
	for _, src := range []string{
		"r = max(req.total[5m])",                     // max does not distribute
		"r = mean(req.total[5m])",                    // neither does mean
		"r = p95(req.total[5m])",                     // nor quantiles
		"r = sum(cost.usd[1m]) / sum(req.total[1m])", // ratio of linears
		"r = sum(cost.usd[1m]) + 3",                  // constant re-added per shard
		"r = 5",                                      // constants alone
		"r = 3 / sum(req.total[1m])",                 // constant over linear
		"r = sum(cost.usd[1m]) * sum(req.total[1m])", // product of linears
		"bad name = req.total",                       // name must be an identifier
		"r = req.total\nr = req.error",               // duplicate
		"r",                                          // no '='
		"r = frob(x[1m])",                            // parse error propagates
	} {
		if rules, err := ParseRules(src); err == nil {
			t.Errorf("ParseRules(%q) = %v, want error", src, rules)
		}
	}
}

func TestParseRulesAcceptsLinearFragment(t *testing.T) {
	for _, src := range []string{
		"r = req.total",
		"r = sum(cost.usd[1m])",
		"r = count(req.error[5m]) + count(req.cold[5m])",
		"r = rate(cost.usd[1h]) * 3600",
		"r = sum(cost.usd[1m]) / 2",
		"r = -sum(cost.usd[1m])",
		`r = sum(req.total{function="f1"}[1m]) - sum(req.error[1m])`,
	} {
		if _, err := ParseRules(src); err != nil {
			t.Errorf("ParseRules(%q): %v", src, err)
		}
	}
}

func TestEvalRulesRecordsBoundaries(t *testing.T) {
	st := buildStore() // windows 0..9 hold req.total values 1..10
	rules, err := ParseRules("r:sum1m = sum(req.total[1m])")
	if err != nil {
		t.Fatal(err)
	}
	EvalRules(st, rules, 9*time.Minute+30*time.Second)
	// Boundary T records into window T-res: window i holds value i+1.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Minute
		r := st.Range("r:sum1m", at, at+time.Minute)
		if r.Count != 1 || r.Sum != float64(i+1) {
			t.Fatalf("rule window %d = %+v, want count 1 sum %d", i, r, i+1)
		}
	}
}

func TestEvalRulesChained(t *testing.T) {
	st := buildStore()
	rules, err := ParseRules("a = sum(req.total[1m]); b = a * 2")
	if err != nil {
		t.Fatal(err)
	}
	EvalRules(st, rules, 9*time.Minute+30*time.Second)
	// b at boundary T reads a's cumulative sum over [0,T): a's windows
	// 0..T-1 hold 1..T, so b's window T-1 holds 2*(1+..+T).
	got := st.Range("b", 4*time.Minute, 5*time.Minute) // window 4 → boundary T=5m
	if got.Sum != 2*(1+2+3+4+5) {
		t.Fatalf("chained rule window = %+v, want sum 30", got)
	}
}

// The merge-distributivity contract: evaluating rules per shard and
// merging window-wise must equal evaluating them on the merged store.
// This is the property the fleet's any-worker-count byte-identity rests
// on, checked here at the store level with an exactly-representable
// workload split across two shards.
func TestEvalRulesDistributesOverMerge(t *testing.T) {
	mk := func() (*monitor.Store, *monitor.Store) {
		a := monitor.NewStore(time.Minute, 60)
		b := monitor.NewStore(time.Minute, 60)
		for i := 0; i < 12; i++ {
			at := time.Duration(i)*time.Minute + 15*time.Second
			a.Record("req.total", at, float64(i)/4)
			b.Record("req.total", at, float64(i)/8)
			if i%3 == 0 {
				a.Record("cost.usd", at, float64(i)/16)
			}
			if i%2 == 0 {
				b.Record("cost.usd", at, float64(i)/2)
			}
		}
		return a, b
	}
	latest := 11*time.Minute + 15*time.Second
	// Power-of-two scalars keep every product and quotient exact, so the
	// sharded and global evaluations agree bitwise, not just approximately
	// (scalar ops only distribute exactly when no rounding occurs — which
	// the fleet does not rely on: its identity comes from the fixed block
	// partition, making this test strictly stronger than what it needs).
	rules, err := ParseRules(`
		r:req = sum(req.total[3m]) - count(req.total[3m])
		r:mix = sum(cost.usd[5m]) * 4 + sum(req.total[1m]) / 2
		r:chain = r:req * 2
	`)
	if err != nil {
		t.Fatal(err)
	}

	// Sharded: evaluate per shard, then merge shard stores.
	a, b := mk()
	EvalRules(a, rules, latest)
	EvalRules(b, rules, latest)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	// Global: merge first, then evaluate.
	ga, gb := mk()
	if err := ga.Merge(gb); err != nil {
		t.Fatal(err)
	}
	EvalRules(ga, rules, latest)

	for _, rule := range rules {
		for w := 0; w < 13; w++ {
			at := time.Duration(w) * time.Minute
			sharded := a.Range(rule.Name, at, at+time.Minute)
			global := ga.Range(rule.Name, at, at+time.Minute)
			if sharded.Sum != global.Sum {
				t.Errorf("%s window %d: sharded sum %v != global %v",
					rule.Name, w, sharded.Sum, global.Sum)
			}
		}
	}
}

func TestRuleErrorNamesRule(t *testing.T) {
	_, err := ParseRules("good = req.total; cpr = sum(cost.usd[1m]) / sum(req.total[1m])")
	if err == nil || !strings.Contains(err.Error(), "cpr") {
		t.Fatalf("err = %v, want mention of the offending rule", err)
	}
}
