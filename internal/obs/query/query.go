// Package query is mql, a small PromQL-subset language over the monitor
// TSDB: instant and range queries against monitor.Store series, with
// selectors by metric family and label matchers, range aggregations over
// window scans, binary arithmetic for ratios, and recording rules that the
// fleet replay evaluates incrementally per shard.
//
// The grammar, informally:
//
//	expr      = term { ("+" | "-") term }
//	term      = unary { ("*" | "/") unary }
//	unary     = "-" unary | primary
//	primary   = number | call | selector | "(" expr ")"
//	call      = fn "(" selector "[" duration "]" ")"
//	selector  = (ident | string) [ "{" ident "=" string { "," ... } "}" ]
//	fn        = "sum" | "count" | "max" | "mean" | "rate"
//	          | "p50" | "p90" | "p95" | "p99"
//
// Identifiers are [a-zA-Z_][a-zA-Z0-9_.:]* (dots for the monitor's series
// names, colons for Prometheus-style rule names); series whose names fall
// outside that set are written as double-quoted strings (no escapes).
// Durations use Go syntax ("5m", "1h30m"). Label matchers are equality
// only, and compose with the family through the monitor package's
// canonical labeled-series encoding, so `req.total{function="f1"}` selects
// exactly the series the fleet recorded under that label set.
//
// Evaluation semantics (see DESIGN.md §14): everything evaluates at a
// window boundary T. A bare selector is the cumulative sum over [0, T); a
// range call reads the trailing window [max(0, T−d), T). rate is
// sum/covered-seconds, mean is sum/count, and the pNN functions are
// nearest-rank quantiles over the per-window means of non-empty windows
// (quantile_over_time style — the store keeps rollups, not raw samples).
// Division by zero yields 0, keeping JSON output total.
//
// Expr.String() renders a canonical, fully parenthesized form; parsing
// that form yields the same tree, which is what FuzzParseQuery pins.
package query

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/monitor"
)

// Expr is a parsed mql expression. Implementations are the AST: Number,
// Selector, Call, Unary, Binary.
type Expr interface {
	// String renders the canonical form (fully parenthesized, labels in
	// canonical order); Parse(x.String()) reproduces the tree.
	String() string
	// eval computes the expression at boundary time `at` against a store.
	eval(st *monitor.Store, at time.Duration) float64
}

// Number is a literal scalar.
type Number float64

func (n Number) String() string { return strconv.FormatFloat(float64(n), 'g', -1, 64) }

func (n Number) eval(*monitor.Store, time.Duration) float64 { return float64(n) }

// Selector names one store series by its canonical (label-encoded) name.
// At boundary T it evaluates to the cumulative sum over [0, T).
type Selector struct {
	Name string
}

// isIdent reports whether s lexes as a single mql identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '.' || c == ':'):
		default:
			return false
		}
	}
	return true
}

func (s Selector) String() string {
	fam, labels := monitor.SplitSeries(s.Name)
	var b strings.Builder
	if isIdent(fam) {
		b.WriteString(fam)
	} else {
		b.WriteByte('"')
		b.WriteString(fam)
		b.WriteByte('"')
	}
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(l.Val)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	return b.String()
}

func (s Selector) eval(st *monitor.Store, at time.Duration) float64 {
	return st.Range(s.Name, 0, at).Sum
}

// Call is a range aggregation: Fn over the selector's trailing Window.
type Call struct {
	Fn     string
	Sel    Selector
	Window time.Duration
}

func (c Call) String() string {
	return c.Fn + "(" + c.Sel.String() + "[" + c.Window.String() + "])"
}

func (c Call) eval(st *monitor.Store, at time.Duration) float64 {
	from := at - c.Window
	if from < 0 {
		from = 0
	}
	switch c.Fn {
	case "sum":
		return st.Range(c.Sel.Name, from, at).Sum
	case "count":
		return float64(st.Range(c.Sel.Name, from, at).Count)
	case "max":
		return st.Range(c.Sel.Name, from, at).Max
	case "mean":
		return st.Range(c.Sel.Name, from, at).Mean()
	case "rate":
		secs := (at - from).Seconds()
		if secs <= 0 {
			return 0
		}
		return st.Range(c.Sel.Name, from, at).Sum / secs
	default: // pNN quantiles over per-window means
		q, ok := quantiles[c.Fn]
		if !ok {
			return 0 // unreachable: the parser rejects unknown functions
		}
		var means []float64
		st.Scan(c.Sel.Name, from, at, func(_ time.Duration, r monitor.Rollup) {
			if r.Count > 0 {
				means = append(means, r.Mean())
			}
		})
		return nearestRank(means, q)
	}
}

var quantiles = map[string]float64{"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99}

// nearestRank is the nearest-rank quantile of vs (0 when empty). vs is
// sorted in place.
func nearestRank(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	rank := int(math.Ceil(q * float64(len(vs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vs) {
		rank = len(vs)
	}
	return vs[rank-1]
}

// Unary is arithmetic negation.
type Unary struct {
	X Expr
}

func (u Unary) String() string { return "(-" + u.X.String() + ")" }

func (u Unary) eval(st *monitor.Store, at time.Duration) float64 { return -u.X.eval(st, at) }

// Binary is one arithmetic operation ('+', '-', '*', '/').
type Binary struct {
	Op   byte
	L, R Expr
}

func (b Binary) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

func (b Binary) eval(st *monitor.Store, at time.Duration) float64 {
	l, r := b.L.eval(st, at), b.R.eval(st, at)
	switch b.Op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	default: // '/'
		if r == 0 {
			return 0
		}
		return l / r
	}
}
