package query

import (
	"testing"
	"time"

	"repro/internal/obs/monitor"
)

// FuzzParseQuery pins the parser's two hard guarantees: it never panics on
// arbitrary input, and accepted input has a stable canonical form —
// Parse(x.String()) succeeds and re-renders to the same string (the
// fixpoint the grammar's quoting/label-canonicalization rules exist for).
// Accepted expressions are also evaluated to check the engine is total.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"req.total",
		`req.total{function="f1",arm="debloated"}`,
		`"slo.fleet-cold-fraction.bad"`,
		"sum(cost.usd[5m])",
		"rate(req.error[1h30m])",
		"p95(req.total[30m])",
		"cost.usd / req.total",
		"(a + b) * -c - 2.5e-3",
		"fleet:cost_usd:rate1h = x", // not an expression: must error, not panic
		"sum(req.total[5m]) / count(req.total[5m])",
		`x{k="v"} + y{}`,
		"((((1))))",
		"-(-(-1))",
	} {
		f.Add(seed)
	}
	st := monitor.NewStore(time.Minute, 16)
	st.Record("req.total", time.Second, 1)
	e := &Engine{Store: st, Latest: time.Second}
	f.Fuzz(func(t *testing.T, q string) {
		x, err := Parse(q)
		if err != nil {
			return
		}
		once := x.String()
		y, err := Parse(once)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", once, q, err)
		}
		if twice := y.String(); twice != once {
			t.Fatalf("canonical form not a fixpoint: %q → %q → %q", q, once, twice)
		}
		e.Instant(x, -1) // must not panic
	})
}
