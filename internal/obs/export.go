package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Exporters. All three outputs are deterministic functions of the recorded
// trace: span order is creation order (itself deterministic), event order
// is emission order, and every map is sorted before rendering.

// chromeEvent is one Chrome trace-event ("X" complete span or "i" instant).
// Field order is fixed by the struct, and encoding/json sorts the Args map,
// so marshaling is byte-stable.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"` // microseconds of simulated time
	Dur   *float64          `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

func usFloat(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// ChromeTrace renders the trace tree plus instant events as Chrome
// trace-event JSON ({"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing. Spans are emitted depth-first so nesting reconstructs
// on one track. Safe on a nil tracer (empty trace).
func (t *Tracer) ChromeTrace() ([]byte, error) {
	events := []chromeEvent{}
	t.Walk(func(s *Span, depth int) {
		dur := usFloat(s.Dur())
		args := attrArgs(s.Attrs)
		if s.ID != "" {
			if args == nil {
				args = make(map[string]string, 1)
			}
			args["span_id"] = s.ID
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: usFloat(s.Start), Dur: &dur,
			Pid: 1, Tid: 1,
			Args: args,
		})
	})
	for _, e := range t.Events() {
		events = append(events, chromeEvent{
			Name: e.Name, Cat: "event", Ph: "i",
			Ts: usFloat(e.Time), Pid: 1, Tid: 1, Scope: "t",
			Args: attrArgs(e.Attrs),
		})
	}
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[\n")
	for i, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		if i < len(events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]}\n")
	return buf.Bytes(), nil
}

// EventLogJSONL renders the event log as one JSON object per line, keys in
// emission order: {"ts_us":..., "name":..., <attr>:..., ...}. Attribute
// values are written as JSON strings (they are pre-formatted). This is the
// structured superset of the k=v invocation log lines.
func (t *Tracer) EventLogJSONL() []byte {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString("{\"ts_us\":")
		b.WriteString(strconv.FormatInt(e.Time.Microseconds(), 10))
		b.WriteString(",\"name\":")
		b.WriteString(strconv.Quote(e.Name))
		for _, a := range e.Attrs {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(a.Key))
			b.WriteByte(':')
			b.WriteString(strconv.Quote(a.Val))
		}
		b.WriteString("}\n")
	}
	return []byte(b.String())
}

// LogLineFromAttrs renders an attribute list in the canonical k=v log-line
// format: values containing spaces or quotes are quoted with %q, everything
// else is written bare. The invocation log lines and the JSONL event log
// share their attribute builders, making this the single rendering of the
// "same seed ⇒ byte-identical logs" guarantee.
func LogLineFromAttrs(attrs []Attr) string {
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		if strings.ContainsAny(a.Val, " \"") {
			b.WriteString(strconv.Quote(a.Val))
		} else {
			b.WriteString(a.Val)
		}
	}
	return b.String()
}

// WriteFiles exports the recorded telemetry to the requested paths (an
// empty path skips that exporter): Chrome trace-event JSON, the JSONL
// event log, a JSON metrics snapshot, a folded-stack flamegraph, and an
// OpenMetrics text exposition of the registry.
func (t *Tracer) WriteFiles(tracePath, eventsPath, metricsPath, flamePath, openMetricsPath string) error {
	if tracePath != "" {
		b, err := t.ChromeTrace()
		if err != nil {
			return fmt.Errorf("rendering trace: %w", err)
		}
		if err := os.WriteFile(tracePath, b, 0o644); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if eventsPath != "" {
		if err := os.WriteFile(eventsPath, t.EventLogJSONL(), 0o644); err != nil {
			return fmt.Errorf("writing event log: %w", err)
		}
	}
	if metricsPath != "" {
		b, err := t.Metrics().Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("rendering metrics: %w", err)
		}
		if err := os.WriteFile(metricsPath, b, 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if flamePath != "" {
		if err := os.WriteFile(flamePath, t.FoldedStacks(), 0o644); err != nil {
			return fmt.Errorf("writing flamegraph: %w", err)
		}
	}
	if openMetricsPath != "" {
		if err := os.WriteFile(openMetricsPath, t.Metrics().Snapshot().OpenMetrics(), 0o644); err != nil {
			return fmt.Errorf("writing openmetrics: %w", err)
		}
	}
	return nil
}

// Summary renders a text digest: span counts, the top spans by cumulative
// simulated time (aggregated by span name), and per-phase latency
// percentiles from the registry's histograms.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace: disabled\n"
	}
	type agg struct {
		name  string
		cat   string
		count int
		total time.Duration
		max   time.Duration
	}
	byName := make(map[string]*agg)
	spans := 0
	t.Walk(func(s *Span, depth int) {
		spans++
		key := s.Cat + "\x00" + s.Name
		a, ok := byName[key]
		if !ok {
			a = &agg{name: s.Name, cat: s.Cat}
			byName[key] = a
		}
		a.count++
		a.total += s.Dur()
		if s.Dur() > a.max {
			a.max = s.Dur()
		}
	})
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].total != aggs[j].total {
			return aggs[i].total > aggs[j].total
		}
		if aggs[i].name != aggs[j].name {
			return aggs[i].name < aggs[j].name
		}
		return aggs[i].cat < aggs[j].cat
	})

	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d spans, %d events\n", spans, len(t.Events()))
	b.WriteString("top spans by cumulative sim-time:\n")
	limit := 20
	if len(aggs) < limit {
		limit = len(aggs)
	}
	for _, a := range aggs[:limit] {
		mean := time.Duration(0)
		if a.count > 0 {
			mean = a.total / time.Duration(a.count)
		}
		fmt.Fprintf(&b, "  %-32s %-10s n=%-6d total=%-14s mean=%-12s max=%s\n",
			a.name, a.cat, a.count, a.total, mean, a.max)
	}
	snap := t.Metrics().Snapshot()
	if len(snap.Histograms) > 0 {
		b.WriteString("phase latency percentiles (seconds):\n")
		for _, h := range snap.Histograms {
			fmt.Fprintf(&b, "  %-32s n=%-6d p50=%-12.6f p95=%-12.6f p99=%-12.6f max=%.6f\n",
				h.Name, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if len(snap.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(&b, "  %-32s %d\n", c.Name, c.Value)
		}
	}
	return b.String()
}
