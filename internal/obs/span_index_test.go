package obs

import (
	"strings"
	"testing"
	"time"
)

func TestFindSpanByID(t *testing.T) {
	tr := New()
	root := tr.Start("root", "test", 0)
	a := tr.StartChild(root, "a", "test", time.Second)
	a.ID = "aaaa000011112222"
	a.Finish(2 * time.Second)
	b := tr.StartChild(root, "b", "test", 2*time.Second)
	b.ID = "bbbb000011112222"
	b.Finish(3 * time.Second)
	tr.End(root, 3*time.Second)

	if got := tr.FindSpan("bbbb000011112222"); got != b {
		t.Fatalf("FindSpan returned %v, want span b", got)
	}
	if got := tr.FindSpan("aaaa000011112222"); got != a {
		t.Fatalf("FindSpan returned %v, want span a", got)
	}
	if got := tr.FindSpan("missing"); got != nil {
		t.Fatalf("FindSpan(missing) = %v, want nil", got)
	}
	if got := tr.FindSpan(""); got != nil {
		t.Fatalf("FindSpan(\"\") = %v, want nil (unindexed spans have empty IDs)", got)
	}
	var nilT *Tracer
	if got := nilT.FindSpan("x"); got != nil {
		t.Fatalf("nil tracer FindSpan = %v", got)
	}
}

func TestSpanSubtree(t *testing.T) {
	tr := New()
	root := tr.Start("invocation", "exemplar", time.Second)
	root.ID = "cafe000011112222"
	root.Add(String("function", "fn-1"))
	child := tr.StartChild(root, "init", "phase", time.Second)
	child.Finish(1500 * time.Millisecond)
	tr.End(root, 2*time.Second)

	out := root.Subtree()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("subtree has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "invocation [exemplar]") ||
		!strings.Contains(lines[0], "id=cafe000011112222") ||
		!strings.Contains(lines[0], "function=fn-1") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  init") {
		t.Fatalf("child line not indented: %q", lines[1])
	}
	var nilSpan *Span
	if nilSpan.Subtree() != "" {
		t.Fatal("nil span subtree not empty")
	}
}

func TestChromeTraceSpanID(t *testing.T) {
	tr := New()
	s := tr.Start("x", "test", 0)
	s.ID = "feed000011112222"
	tr.End(s, time.Second)
	b, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"span_id":"feed000011112222"`) {
		t.Fatalf("trace missing span_id arg:\n%s", b)
	}
}
