package trace

import (
	"reflect"
	"testing"
	"time"
)

func gateArrivals() []time.Duration {
	var out []time.Duration
	for at := time.Duration(0); at < time.Hour; at += 37 * time.Second {
		out = append(out, at)
	}
	return out
}

// TestPassThroughGateMatchesStream: a gate whose hooks are all identity
// functions must reproduce the ungated pool event-for-event — the zero
// gate's bit-for-bit contract, exercised through non-nil hooks.
func TestPassThroughGateMatchesStream(t *testing.T) {
	arrivals := gateArrivals()
	const busy = 800 * time.Millisecond
	const keepAlive = 2 * time.Minute

	var plainEvents []PoolEvent
	plain := SimulatePoolObserved(arrivals, busy, keepAlive, func(e PoolEvent) {
		plainEvents = append(plainEvents, e)
	})

	i := 0
	next := func() (time.Duration, bool) {
		if i >= len(arrivals) {
			return 0, false
		}
		at := arrivals[i]
		i++
		return at, true
	}
	gate := PoolGate{
		Admit: func(time.Duration) bool { return true },
		Busy:  func(time.Duration, bool) time.Duration { return busy },
		Flush: func(time.Duration) time.Duration { return -1 },
	}
	var gatedEvents []PoolEvent
	gated := SimulatePoolGated(next, busy, keepAlive, gate, func(e PoolEvent) {
		gatedEvents = append(gatedEvents, e)
	})

	if plain != gated {
		t.Fatalf("results differ: %+v vs %+v", plain, gated)
	}
	if !reflect.DeepEqual(plainEvents, gatedEvents) {
		t.Fatal("event streams differ under a pass-through gate")
	}
}

// TestGateAdmitDrops: a dropped arrival never reaches the pool — not
// counted, not assigned, not observed.
func TestGateAdmitDrops(t *testing.T) {
	arrivals := gateArrivals()
	kept := 0
	gate := PoolGate{Admit: func(at time.Duration) bool { return at >= 10*time.Minute }}
	i := 0
	next := func() (time.Duration, bool) {
		if i >= len(arrivals) {
			return 0, false
		}
		at := arrivals[i]
		i++
		return at, true
	}
	res := SimulatePoolGated(next, time.Second, time.Minute, gate, func(e PoolEvent) {
		kept++
		if e.At < 10*time.Minute {
			t.Fatalf("dropped arrival observed at %v", e.At)
		}
	})
	want := 0
	for _, at := range arrivals {
		if at >= 10*time.Minute {
			want++
		}
	}
	if res.Invocations != want || kept != want {
		t.Fatalf("served %d, observed %d, want %d", res.Invocations, kept, want)
	}
}

// TestGateFlushCut: instances freed at or before the flush cut are gone
// (the churn wave's host recycle), so an arrival that would have been warm
// pays a cold start instead.
func TestGateFlushCut(t *testing.T) {
	arrivals := []time.Duration{0, 5 * time.Second}
	run := func(cut time.Duration) PoolResult {
		i := 0
		next := func() (time.Duration, bool) {
			if i >= len(arrivals) {
				return 0, false
			}
			at := arrivals[i]
			i++
			return at, true
		}
		gate := PoolGate{Flush: func(time.Duration) time.Duration { return cut }}
		return SimulatePoolGated(next, time.Second, time.Hour, gate, nil)
	}
	// No cut: the instance freed at 1s serves the 5s arrival warm.
	if res := run(-1); res.WarmStarts != 1 || res.ColdStarts != 1 {
		t.Fatalf("uncut: %+v, want 1 cold + 1 warm", res)
	}
	// Cut at 2s: the instance freed at 1s is recycled; both arrivals cold.
	if res := run(2 * time.Second); res.ColdStarts != 2 || res.WarmStarts != 0 {
		t.Fatalf("cut at 2s: %+v, want 2 cold", res)
	}
	// Cut at 500ms: the instance was busy across the cut and survives.
	if res := run(500 * time.Millisecond); res.WarmStarts != 1 {
		t.Fatalf("cut at 500ms: %+v, want the busy instance to survive", res)
	}
}
