package trace

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Functions: 50, Period: 24 * time.Hour, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Functions) != len(b.Functions) {
		t.Fatal("function counts differ")
	}
	for i := range a.Functions {
		if len(a.Functions[i].Arrivals) != len(b.Functions[i].Arrivals) {
			t.Fatalf("fn %d arrivals differ", i)
		}
		if a.Functions[i].MemoryMB != b.Functions[i].MemoryMB {
			t.Fatalf("fn %d memory differs", i)
		}
	}
	c := Generate(GenConfig{Functions: 50, Period: 24 * time.Hour, Seed: 8})
	same := true
	for i := range a.Functions {
		if len(a.Functions[i].Arrivals) != len(c.Functions[i].Arrivals) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	tr := Generate(DefaultGenConfig())
	if len(tr.Functions) != DefaultGenConfig().Functions {
		t.Fatalf("functions = %d", len(tr.Functions))
	}
	var counts []int
	for _, f := range tr.Functions {
		counts = append(counts, len(f.Arrivals))
		if f.MemoryMB < 128 || f.MemoryMB > 4096 {
			t.Errorf("memory out of range: %f", f.MemoryMB)
		}
		if f.DurationMS < 1 || f.DurationMS > 60000 {
			t.Errorf("duration out of range: %f", f.DurationMS)
		}
		// Arrivals sorted within the period.
		for i := 1; i < len(f.Arrivals); i++ {
			if f.Arrivals[i] < f.Arrivals[i-1] {
				t.Fatal("arrivals not sorted")
			}
		}
		if len(f.Arrivals) > 0 && f.Arrivals[len(f.Arrivals)-1] >= tr.Period {
			t.Error("arrival past the period")
		}
	}
	// Heavy tail: the mean daily count far exceeds the median (the
	// defining skew of the Azure trace), and the hottest function dwarfs
	// the typical one.
	maxC, total := 0, 0
	zero := 0
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	median := sorted[len(sorted)/2]
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		if c == 0 {
			zero++
		}
		total += c
	}
	mean := total / len(counts)
	if mean < 3*(median+1) {
		t.Errorf("tail too light: mean %d vs median %d", mean, median)
	}
	if maxC < 10*(median+1) {
		t.Errorf("hottest function %d not far above median %d", maxC, median)
	}
	if zero > len(counts)/2 {
		t.Errorf("%d of %d functions never fire", zero, len(counts))
	}
}

func TestSimulatePoolAllWarmWhenDense(t *testing.T) {
	arrivals := []time.Duration{0, time.Minute, 2 * time.Minute, 3 * time.Minute}
	res := SimulatePool(arrivals, time.Second, 10*time.Minute)
	if res.ColdStarts != 1 || res.WarmStarts != 3 {
		t.Errorf("res = %+v, want 1 cold 3 warm", res)
	}
	if res.MaxInstances != 1 {
		t.Errorf("max instances = %d", res.MaxInstances)
	}
}

func TestSimulatePoolAllColdWhenSparse(t *testing.T) {
	arrivals := []time.Duration{0, time.Hour, 2 * time.Hour}
	res := SimulatePool(arrivals, time.Second, time.Minute)
	if res.ColdStarts != 3 || res.WarmStarts != 0 {
		t.Errorf("res = %+v, want all cold", res)
	}
}

func TestSimulatePoolConcurrency(t *testing.T) {
	// Two overlapping requests need two instances.
	arrivals := []time.Duration{0, time.Millisecond}
	res := SimulatePool(arrivals, time.Second, 10*time.Minute)
	if res.ColdStarts != 2 {
		t.Errorf("overlapping arrivals should both be cold: %+v", res)
	}
	if res.MaxInstances != 2 {
		t.Errorf("max instances = %d, want 2", res.MaxInstances)
	}
	// A third request after both finish reuses one.
	arrivals = append(arrivals, 2*time.Second)
	res = SimulatePool(arrivals, time.Second, 10*time.Minute)
	if res.WarmStarts != 1 {
		t.Errorf("third arrival should be warm: %+v", res)
	}
}

func TestSimulatePoolKeepAliveBoundary(t *testing.T) {
	arrivals := []time.Duration{0, time.Second + 5*time.Minute}
	dur := time.Second
	// Second arrival lands exactly at the keep-alive horizon: still warm.
	res := SimulatePool(arrivals, dur, 5*time.Minute)
	if res.WarmStarts != 1 {
		t.Errorf("boundary arrival should be warm: %+v", res)
	}
	// One nanosecond later: cold.
	res = SimulatePool([]time.Duration{0, time.Second + 5*time.Minute + 1}, dur, 5*time.Minute)
	if res.ColdStarts != 2 {
		t.Errorf("past-boundary arrival should be cold: %+v", res)
	}
}

func TestNearestFunction(t *testing.T) {
	tr := &Trace{
		Period: time.Hour,
		Functions: []Function{
			{ID: 0, MemoryMB: 128, DurationMS: 100, Arrivals: []time.Duration{0}},
			{ID: 1, MemoryMB: 1000, DurationMS: 5000, Arrivals: []time.Duration{0}},
			{ID: 2, MemoryMB: 500, DurationMS: 900, Arrivals: nil}, // never fires
		},
	}
	if fn := tr.NearestFunction(130, 110); fn.ID != 0 {
		t.Errorf("nearest to small = %d", fn.ID)
	}
	if fn := tr.NearestFunction(900, 4500); fn.ID != 1 {
		t.Errorf("nearest to big = %d", fn.ID)
	}
	// Functions without arrivals are never matched.
	if fn := tr.NearestFunction(500, 900); fn.ID == 2 {
		t.Error("matched a function that never fires")
	}
}

func TestSortedArrivals(t *testing.T) {
	f := Function{Arrivals: []time.Duration{3, 1, 2}}
	sorted := f.SortedArrivals()
	if sorted[0] != 1 || sorted[2] != 3 {
		t.Errorf("sorted = %v", sorted)
	}
	// Original untouched.
	if f.Arrivals[0] != 3 {
		t.Error("SortedArrivals mutated the function")
	}
}

// Property: pool accounting always balances, and instance count never
// exceeds the number of arrivals.
func TestQuickPoolInvariants(t *testing.T) {
	f := func(raw []uint32, durMS uint16, kaSec uint16) bool {
		arrivals := make([]time.Duration, len(raw))
		var acc time.Duration
		for i, r := range raw {
			acc += time.Duration(r%100000) * time.Millisecond
			arrivals[i] = acc
		}
		dur := time.Duration(durMS) * time.Millisecond
		ka := time.Duration(kaSec) * time.Second
		res := SimulatePool(arrivals, dur, ka)
		if res.ColdStarts+res.WarmStarts != len(arrivals) {
			return false
		}
		if res.MaxInstances > len(arrivals) {
			return false
		}
		if len(arrivals) > 0 && res.ColdStarts < 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: longer keep-alive never increases cold starts.
func TestQuickKeepAliveMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		arrivals := make([]time.Duration, len(raw))
		var acc time.Duration
		for i, r := range raw {
			acc += time.Duration(r) * time.Second / 4
			arrivals[i] = acc
		}
		short := SimulatePool(arrivals, time.Second, time.Minute)
		long := SimulatePool(arrivals, time.Second, time.Hour)
		return long.ColdStarts <= short.ColdStarts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSimulatePoolObservedMatchesResult(t *testing.T) {
	arrivals := []time.Duration{0, time.Millisecond, 2 * time.Second, time.Hour}
	var events []PoolEvent
	obs := SimulatePoolObserved(arrivals, time.Second, 5*time.Minute, func(ev PoolEvent) {
		events = append(events, ev)
	})
	plain := SimulatePool(arrivals, time.Second, 5*time.Minute)
	if obs != plain {
		t.Errorf("observer changed the result: %+v vs %+v", obs, plain)
	}
	if len(events) != len(arrivals) {
		t.Fatalf("events = %d, want one per arrival", len(events))
	}
	cold := 0
	for i, ev := range events {
		if ev.At != arrivals[i] {
			t.Errorf("event %d at %v, want arrival order %v", i, ev.At, arrivals[i])
		}
		if ev.Cold {
			cold++
		}
		if ev.Live < 1 {
			t.Errorf("event %d live = %d, want >= 1", i, ev.Live)
		}
	}
	if cold != obs.ColdStarts {
		t.Errorf("observed %d colds, result says %d", cold, obs.ColdStarts)
	}
	// The overlapping pair needs two live instances.
	if events[1].Live != 2 {
		t.Errorf("second overlapping arrival live = %d, want 2", events[1].Live)
	}
}

func TestSimulatePoolStreamMatchesSlice(t *testing.T) {
	tr := Generate(GenConfig{Functions: 12, Period: 2 * time.Hour, Seed: 3})
	for _, f := range tr.Functions {
		dur := time.Duration(f.DurationMS * float64(time.Millisecond))
		var sliceEvents, streamEvents []PoolEvent
		want := SimulatePoolObserved(f.Arrivals, dur, 10*time.Minute, func(ev PoolEvent) {
			sliceEvents = append(sliceEvents, ev)
		})
		i := 0
		got := SimulatePoolStream(func() (time.Duration, bool) {
			if i >= len(f.Arrivals) {
				return 0, false
			}
			at := f.Arrivals[i]
			i++
			return at, true
		}, dur, 10*time.Minute, func(ev PoolEvent) {
			streamEvents = append(streamEvents, ev)
		})
		if got != want {
			t.Fatalf("fn %d: stream result %+v != slice result %+v", f.ID, got, want)
		}
		if len(streamEvents) != len(sliceEvents) {
			t.Fatalf("fn %d: %d stream events vs %d slice events", f.ID, len(streamEvents), len(sliceEvents))
		}
		for j := range streamEvents {
			if streamEvents[j] != sliceEvents[j] {
				t.Fatalf("fn %d event %d: %+v != %+v", f.ID, j, streamEvents[j], sliceEvents[j])
			}
		}
	}
}

func TestArrivalStreamDeterministicAndSorted(t *testing.T) {
	collect := func() []time.Duration {
		next := ArrivalStream(42, 500, 6*time.Hour)
		var out []time.Duration
		for {
			at, ok := next()
			if !ok {
				return out
			}
			out = append(out, at)
		}
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("expected arrivals from a 500-expected stream")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d: %v != %v (same seed)", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals out of order at %d: %v < %v", i, a[i], a[i-1])
		}
		if a[i] < 0 || a[i] >= 6*time.Hour {
			t.Fatalf("arrival %d = %v outside the period", i, a[i])
		}
	}
	// Count should be in the right ballpark for the expected rate.
	if len(a) < 300 || len(a) > 800 {
		t.Errorf("arrival count %d implausible for expected 500", len(a))
	}
	// Exhausted streams keep returning false.
	next := ArrivalStream(42, 0, time.Hour)
	if _, ok := next(); ok {
		t.Error("zero-rate stream should be empty")
	}
	// Different seeds diverge.
	c := ArrivalStream(43, 500, 6*time.Hour)
	c0, _ := c()
	if c0 == a[0] {
		t.Error("different seeds should produce different first arrivals")
	}
}
