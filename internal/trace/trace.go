// Package trace generates synthetic serverless invocation traces with the
// statistical shape of the Microsoft Azure Functions trace (Shahrad et al.,
// ATC'20) and simulates keep-alive instance pools over them. The paper uses
// the real trace to quantify SnapStart's checkpoint storage and restore
// costs (Figures 13 and 14); this reproduction substitutes a generator that
// preserves the properties those figures depend on:
//
//   - per-function daily invocation counts are extremely heavy-tailed (most
//     functions run a handful of times a day, a few run millions);
//   - arrivals follow a diurnally-modulated Poisson process;
//   - per-function durations and memory footprints are log-normally
//     distributed around sub-second / low-hundreds-of-MB modes.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Function is one synthetic serverless function with its invocation times.
type Function struct {
	ID         int
	MemoryMB   float64
	DurationMS float64
	// Arrivals are invocation offsets from the trace start, sorted.
	Arrivals []time.Duration
}

// Trace is a set of functions over a common period.
type Trace struct {
	Period    time.Duration
	Functions []Function
}

// GenConfig parameterizes trace generation.
type GenConfig struct {
	Functions int
	Period    time.Duration
	Seed      int64
}

// DefaultGenConfig is a day-long trace of 250 functions, the scale at which
// the CDF of Figure 13 is smooth while the pool simulation stays fast.
func DefaultGenConfig() GenConfig {
	return GenConfig{Functions: 250, Period: 24 * time.Hour, Seed: 1}
}

// Generate builds a synthetic trace.
func Generate(cfg GenConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Period: cfg.Period}
	for i := 0; i < cfg.Functions; i++ {
		fn := Function{ID: i}
		// Log-normal daily rate: median ~2000 invocations/day with σ=3.0
		// gives the extreme skew observed by Shahrad et al. — most
		// functions fire a handful of times an hour, the hottest reach
		// millions/day (capped to keep simulation tractable; the cap only
		// flattens ratios that are already near zero).
		daily := math.Exp(rng.NormFloat64()*3.0 + math.Log(2000))
		scaled := daily * cfg.Period.Hours() / 24
		if scaled > 100000 {
			scaled = 100000
		}
		if scaled < 0.2 {
			scaled = 0.2
		}
		// Duration: log-normal, median 1.5 s.
		fn.DurationMS = math.Exp(rng.NormFloat64()*1.1 + math.Log(1500))
		if fn.DurationMS > 60000 {
			fn.DurationMS = 60000
		}
		if fn.DurationMS < 1 {
			fn.DurationMS = 1
		}
		// Memory: log-normal, median 170 MB, floored at Lambda's minimum.
		fn.MemoryMB = math.Exp(rng.NormFloat64()*0.7 + math.Log(170))
		if fn.MemoryMB < 128 {
			fn.MemoryMB = 128
		}
		if fn.MemoryMB > 4096 {
			fn.MemoryMB = 4096
		}
		fn.Arrivals = poissonArrivals(rng, scaled, cfg.Period)
		tr.Functions = append(tr.Functions, fn)
	}
	return tr
}

// poissonArrivals samples a diurnally-modulated Poisson process with the
// given expected total count over the period, by thinning.
func poissonArrivals(rng *rand.Rand, expected float64, period time.Duration) []time.Duration {
	var out []time.Duration
	next := poissonStream(rng, expected, period)
	for {
		at, ok := next()
		if !ok {
			return out
		}
		out = append(out, at)
	}
}

// poissonStream is the streaming core of poissonArrivals: it yields the
// same thinned, diurnally-modulated arrival sequence one offset at a time
// (peak mid-period at 1.6x, trough at 0.4x — the day/night swing in the
// Azure trace) without materializing the sequence.
func poissonStream(rng *rand.Rand, expected float64, period time.Duration) func() (time.Duration, bool) {
	base := expected / period.Seconds()
	maxRate := base * 1.6
	t := 0.0
	limit := period.Seconds()
	return func() (time.Duration, bool) {
		if maxRate <= 0 {
			return 0, false
		}
		for {
			t += rng.ExpFloat64() / maxRate
			if t >= limit {
				return 0, false
			}
			phase := 2 * math.Pi * t / limit
			rate := base * (1 + 0.6*math.Sin(phase-math.Pi/2))
			if rng.Float64() < rate/maxRate {
				return time.Duration(t * float64(time.Second)), true
			}
		}
	}
}

// ArrivalStream returns a deterministic generator of diurnally-modulated
// Poisson arrivals for one function, seeded independently of any shared
// RNG. Successive calls yield sorted offsets within [0, period) and then
// (0, false) forever. Because each stream owns its seed, a sharded fleet
// replay can generate per-function workloads on any number of workers in
// any order and still produce exactly the arrivals a sequential generation
// would have produced — and it never materializes the sequence, so memory
// stays flat no matter how hot the function is.
func ArrivalStream(seed int64, expected float64, period time.Duration) func() (time.Duration, bool) {
	return poissonStream(rand.New(rand.NewSource(seed)), expected, period)
}

// PoolResult summarizes a keep-alive simulation of one function.
type PoolResult struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	// MaxInstances is the peak concurrent instance count.
	MaxInstances int
}

// PoolEvent describes one served arrival during a keep-alive simulation:
// its offset on the trace timeline, whether it paid a cold start, and the
// live instance count right after assignment. Events are delivered in
// arrival order, which the fleet monitor relies on for its virtual-time
// feed.
type PoolEvent struct {
	At   time.Duration
	Cold bool
	Live int
}

// SimulatePool runs the keep-alive instance-pool dynamics: each arrival is
// served warm when a non-expired idle instance exists, cold otherwise.
// Arrivals must be sorted.
func SimulatePool(arrivals []time.Duration, duration time.Duration, keepAlive time.Duration) PoolResult {
	return SimulatePoolObserved(arrivals, duration, keepAlive, nil)
}

// SimulatePoolObserved is SimulatePool with an observer invoked once per
// served arrival, in arrival order. A nil observer reproduces SimulatePool
// exactly; the observer cannot perturb the pool dynamics either way.
func SimulatePoolObserved(arrivals []time.Duration, duration time.Duration, keepAlive time.Duration, observe func(PoolEvent)) PoolResult {
	i := 0
	return SimulatePoolStream(func() (time.Duration, bool) {
		if i >= len(arrivals) {
			return 0, false
		}
		at := arrivals[i]
		i++
		return at, true
	}, duration, keepAlive, observe)
}

// SimulatePoolStream runs the keep-alive pool dynamics over an arrival
// iterator instead of a materialized slice: next() yields sorted offsets
// and then (0, false). The pool state is bounded by the function's peak
// concurrency, so a stream of millions of arrivals simulates in flat
// memory — the substrate the sharded fleet replay engine runs on. The
// dynamics are identical to SimulatePoolObserved (which wraps this).
func SimulatePoolStream(next func() (time.Duration, bool), duration time.Duration, keepAlive time.Duration, observe func(PoolEvent)) PoolResult {
	return SimulatePoolGated(next, duration, keepAlive, PoolGate{}, observe)
}

// PoolGate hooks the pool dynamics for a chaos layer. Every hook is
// optional; the zero gate reproduces SimulatePoolStream bit-for-bit.
type PoolGate struct {
	// Admit decides whether the arrival reaches the platform at all. A
	// false return drops the arrival: it is not counted, not assigned an
	// instance, and not observed (the gate owner accounts for it).
	Admit func(at time.Duration) bool
	// Busy returns how long the assigned instance is held for this
	// arrival (nil: the fixed duration argument). Called once per served
	// arrival, after the cold/warm decision.
	Busy func(at time.Duration, cold bool) time.Duration
	// Flush returns the latest instance-recycle instant at or before the
	// arrival (negative: none): instances freed at or before the cut are
	// gone — a churn wave's staggered host recycle. Instances busy across
	// the cut survive (they are running, not idle).
	Flush func(at time.Duration) time.Duration
}

// SimulatePoolGated is SimulatePoolStream with a chaos gate over
// admission, hold time, and instance churn.
func SimulatePoolGated(next func() (time.Duration, bool), duration time.Duration, keepAlive time.Duration, gate PoolGate, observe func(PoolEvent)) PoolResult {
	type inst struct {
		freeAt time.Duration
	}
	var pool []inst
	var res PoolResult
	for {
		at, ok := next()
		if !ok {
			return res
		}
		if gate.Admit != nil && !gate.Admit(at) {
			continue
		}
		cut := time.Duration(-1)
		if gate.Flush != nil {
			cut = gate.Flush(at)
		}
		res.Invocations++
		// Find the most-recently-freed idle, non-expired instance (greedy
		// MRU assignment minimizes cold starts for a single function).
		best := -1
		for i := range pool {
			if pool[i].freeAt <= at && at-pool[i].freeAt <= keepAlive && pool[i].freeAt > cut {
				if best < 0 || pool[i].freeAt > pool[best].freeAt {
					best = i
				}
			}
		}
		cold := best < 0
		busy := duration
		if gate.Busy != nil {
			busy = gate.Busy(at, cold)
		}
		if !cold {
			res.WarmStarts++
			pool[best].freeAt = at + busy
		} else {
			res.ColdStarts++
			// Expired (or churned-away) idle instances can be dropped
			// opportunistically.
			live := pool[:0]
			for _, p := range pool {
				if (p.freeAt > at || at-p.freeAt <= keepAlive) && p.freeAt > cut {
					live = append(live, p)
				}
			}
			pool = append(live, inst{freeAt: at + busy})
		}
		if len(pool) > res.MaxInstances {
			res.MaxInstances = len(pool)
		}
		if observe != nil {
			observe(PoolEvent{At: at, Cold: cold, Live: len(pool)})
		}
	}
}

// NearestFunction returns the trace function minimizing the L2 norm of
// (memoryMB, durationMS) distance to the target — the paper's matching rule
// for Figure 14 ("similarity is quantified as the L2 norm of memory and
// duration"). Both axes are normalized by the trace's own scale so neither
// dominates.
func (t *Trace) NearestFunction(memoryMB, durationMS float64) *Function {
	if len(t.Functions) == 0 {
		return nil
	}
	var memScale, durScale float64
	for _, f := range t.Functions {
		memScale += f.MemoryMB
		durScale += f.DurationMS
	}
	memScale /= float64(len(t.Functions))
	durScale /= float64(len(t.Functions))

	var best *Function
	bestD := math.Inf(1)
	for i := range t.Functions {
		f := &t.Functions[i]
		if len(f.Arrivals) == 0 {
			continue // a function that never fires cannot drive a simulation
		}
		dm := (f.MemoryMB - memoryMB) / memScale
		dd := (f.DurationMS - durationMS) / durScale
		d := dm*dm + dd*dd
		if d < bestD {
			bestD = d
			best = f
		}
	}
	return best
}

// SortedArrivals ensures a function's arrivals are sorted (generation
// already emits sorted times; this is a safety for hand-built traces).
func (f *Function) SortedArrivals() []time.Duration {
	out := make([]time.Duration, len(f.Arrivals))
	copy(out, f.Arrivals)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
