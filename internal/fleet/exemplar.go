package fleet

import (
	"strconv"
	"time"
)

// Exemplar is one concrete invocation kept as evidence behind the
// aggregates: the rollups say "p99 got worse", an exemplar names a
// function, a time, and a bill you can go look at. The engine keeps three
// small sets — the slowest invocations, the most expensive ones, and a
// seed-keyed uniform sample — all selected under total orders so the
// chosen sets are properties of the sample multiset, not of the fold
// schedule.
type Exemplar struct {
	Function  string
	Archetype string
	Arm       string
	// At is the completion time on the virtual timeline; Init the init
	// phase the invocation paid (0 warm).
	At      time.Duration
	Init    time.Duration
	E2E     time.Duration
	CostUSD float64
	Cold    bool

	// seq is the invocation's index within its function; (Function, seq)
	// is unique, which is what makes every comparator a total order.
	seq uint64
	// key is the invocation's sampling key: a seed-keyed hash, uniform
	// over invocations and independent of sharding, so "keep the k
	// smallest keys" is a uniform random sample that every worker count
	// agrees on.
	key uint64
	// span is the invocation's span identity (a further hash round off
	// key, so sampling order and identity stay uncorrelated); SpanID is
	// its rendered form.
	span uint64
}

// SpanID renders the invocation's stable span identity as 16 hex digits.
// The span tree EmitSpans builds for the exemplar sets carries the same
// IDs, so an exemplar annotation in the OpenMetrics exposition resolves
// via obs.Tracer.FindSpan to the subtree explaining the outlier. Derived
// from (replay seed, function ID, seq) only — identical at any worker
// count, like every other replay artifact.
func (e Exemplar) SpanID() string {
	if e.span == 0 {
		return ""
	}
	s := strconv.FormatUint(e.span, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// exemplarSpanKey derives the span identity from the sampling key with one
// more mix round (never 0, which SpanID reserves for "no identity").
func exemplarSpanKey(sampleKey uint64) uint64 {
	k := splitmix64(sampleKey ^ 0xD6E8FEB86659FD93)
	if k == 0 {
		k = 1
	}
	return k
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation (Steele et al., "Fast splittable pseudorandom number
// generators").
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// exemplarFnKey mixes the replay seed with a function ID; the per-sample
// key then mixes in the invocation's sequence number. Two hash rounds
// keep consecutive (ID, seq) pairs uncorrelated.
func exemplarFnKey(seed int64, fnID int) uint64 {
	return splitmix64(uint64(seed) ^ uint64(fnID)*0x9E3779B97F4A7C15)
}

func exemplarSampleKey(fnKey uint64, seq uint64) uint64 {
	return splitmix64(fnKey ^ seq)
}

// exemplarSet keeps the k best exemplars under a strict total order,
// sorted best-first. Offering every element of one set into another
// yields the k best of the union, so sets merge associatively and
// order-independently.
type exemplarSet struct {
	k     int
	less  func(a, b *Exemplar) bool // a ranks strictly ahead of b
	items []Exemplar
}

func (s *exemplarSet) offer(e Exemplar) {
	if len(s.items) == s.k && !s.less(&e, &s.items[s.k-1]) {
		return // worse than the current worst: the common case, one compare
	}
	lo, hi := 0, len(s.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.less(&e, &s.items[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if len(s.items) < s.k {
		s.items = append(s.items, Exemplar{})
	}
	copy(s.items[lo+1:], s.items[lo:])
	s.items[lo] = e
}

func (s *exemplarSet) mergeFrom(o *exemplarSet) {
	for _, e := range o.items {
		s.offer(e)
	}
}

// sorted returns the kept exemplars, best first.
func (s *exemplarSet) sorted() []Exemplar {
	return append([]Exemplar(nil), s.items...)
}

// tiebreak orders two exemplars by (At, Function, seq) — a strict total
// order used to break primary-criterion ties deterministically.
func tiebreak(a, b *Exemplar) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Function != b.Function {
		return a.Function < b.Function
	}
	return a.seq < b.seq
}

// exemplars bundles the three per-shard sets.
type exemplars struct {
	slowest  exemplarSet
	priciest exemplarSet
	sampled  exemplarSet
}

func newExemplars(k int, seed int64) *exemplars {
	return &exemplars{
		slowest: exemplarSet{k: k, less: func(a, b *Exemplar) bool {
			if a.E2E != b.E2E {
				return a.E2E > b.E2E
			}
			return tiebreak(a, b)
		}},
		priciest: exemplarSet{k: k, less: func(a, b *Exemplar) bool {
			if a.CostUSD != b.CostUSD {
				return a.CostUSD > b.CostUSD
			}
			return tiebreak(a, b)
		}},
		sampled: exemplarSet{k: k, less: func(a, b *Exemplar) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return tiebreak(a, b)
		}},
	}
}

func (x *exemplars) offer(e Exemplar) {
	x.slowest.offer(e)
	x.priciest.offer(e)
	x.sampled.offer(e)
}

func (x *exemplars) merge(o *exemplars) {
	if o == nil {
		return
	}
	x.slowest.mergeFrom(&o.slowest)
	x.priciest.mergeFrom(&o.priciest)
	x.sampled.mergeFrom(&o.sampled)
}
