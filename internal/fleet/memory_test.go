package fleet

import (
	"runtime"
	"testing"
	"time"
)

// replayPeakGrowth replays pop and returns (peak GC'd heap growth over
// the pre-replay baseline, invocations). The peak is sampled at block
// merge boundaries via the engine's blockDone hook — the points where a
// leak proportional to invocation volume would be visible.
func replayPeakGrowth(t *testing.T, pop []Function) (uint64, uint64) {
	t.Helper()
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	peak := base.HeapAlloc

	cfg := Config{
		Workers:    2,
		Blocks:     32,
		Period:     24 * time.Hour,
		Resolution: time.Minute,
		Seed:       1,
		blockDone: func(merged int) {
			if merged%4 != 0 {
				return // a GC per merge would dominate the test's runtime
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		},
	}
	res, err := Replay(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if end.HeapAlloc > peak {
		peak = end.HeapAlloc
	}
	return peak - base.HeapAlloc, res.Invocations
}

// TestReplayMemoryFlat pins the streaming contract: a replay with ~10x
// the arrivals may not grow the peak resident heap meaningfully beyond
// the smaller run's — memory is bounded by blocks × windows (plus the
// merged result), not by invocation volume. A per-invocation leak of even
// 16 bytes would add ~14 MB at the large scale and fail the bound.
func TestReplayMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-flatness run skipped under -short")
	}
	mkPop := func(median float64) []Function {
		return GeneratePopulation(PopConfig{
			Functions: 2000, Period: 24 * time.Hour, Seed: 6,
			DebloatedFraction: 0.5, RateMedian: median, RateSigma: 2.0, RateCap: 30000,
		}, testArchetypes())
	}
	smallGrowth, smallInv := replayPeakGrowth(t, mkPop(6))
	largeGrowth, largeInv := replayPeakGrowth(t, mkPop(60))
	t.Logf("small: %d invocations, peak growth %.1f MB", smallInv, float64(smallGrowth)/(1<<20))
	t.Logf("large: %d invocations, peak growth %.1f MB", largeInv, float64(largeGrowth)/(1<<20))

	if smallInv < 80_000 {
		t.Fatalf("small run too small to compare: %d invocations", smallInv)
	}
	if largeInv < 8*smallInv {
		t.Fatalf("large run not large enough: %d vs %d invocations", largeInv, smallInv)
	}
	// Identical blocks/windows/population size → near-identical footprint.
	// The slack absorbs GC timing noise, nothing more: it stays far below
	// what any per-invocation retention would cost.
	limit := smallGrowth + smallGrowth/2 + 8<<20
	if largeGrowth > limit {
		t.Errorf("peak heap grew with invocation volume: %d -> %d bytes (limit %d)",
			smallGrowth, largeGrowth, limit)
	}
}
