package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// testIncidents compresses the canonical incident day into the 6-hour
// test period: every kind fires, and every window ends well before the
// period so recovery is observable.
func testIncidents(t *testing.T) []chaos.Incident {
	t.Helper()
	ins, err := chaos.ParseIncidents(
		"churn@30m+15m,sev=0.8; throttle-storm@1h15m+20m,sev=0.6; " +
			"zone-outage@2h+15m,zone=1; brownout@3h+20m,sev=3,frac=0.6; " +
			"latency-storm@4h30m+15m,sev=4,frac=0.35")
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func chaosTestPopulation() []Function {
	return GeneratePopulation(PopConfig{
		Functions: 600, Period: 6 * time.Hour, Seed: 3,
		RateMedian: 30, RateSigma: 1.8, RateCap: 20000,
		ArmMix: []ArmShare{
			{Arm: chaos.ArmDebloated, Frac: 0.25},
			{Arm: chaos.ArmFallback, Frac: 0.25},
			{Arm: chaos.ArmBreaker, Frac: 0.25},
		},
	}, testArchetypes())
}

// TestChaosReplayByteIdenticalAcrossWorkers extends the engine's core
// contract to chaos replays: with a fixed seed and incident schedule, the
// report, exposition, alert log, and resilience scorecard are
// byte-identical at workers 1, 2, and 8.
func TestChaosReplayByteIdenticalAcrossWorkers(t *testing.T) {
	pop := chaosTestPopulation()
	ins := testIncidents(t)

	var base map[string]string
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig(workers)
		cfg.SLOs = DefaultChaosSLOs()
		cfg.Chaos = &chaos.Config{Incidents: ins, Mitigations: chaos.AllMitigations()}
		res, err := Replay(cfg, pop)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Chaos == nil {
			t.Fatalf("workers=%d: no scorecard", workers)
		}
		if res.Chaos.Total.Demand == 0 || res.Chaos.Total.Served == 0 {
			t.Fatalf("workers=%d: empty scorecard totals: %+v", workers, res.Chaos.Total)
		}
		got := artifacts(t, res)
		got["scorecard"] = res.Scorecard()
		if base == nil {
			base = got
			continue
		}
		for name, want := range base {
			if got[name] != want {
				t.Errorf("workers=%d: %s differs from workers=1\n--- workers=1\n%s\n--- workers=%d\n%s",
					workers, name, clip(want), workers, clip(got[name]))
			}
		}
	}
}

// TestChaosScorecardShape pins the semantics the scorecard aggregates:
// demand splits exactly into served + shed + unavailable + throttled
// drops, every scheduled incident appears in order, and the mitigations
// actually engage (hedges fire, drops occur during the outage).
func TestChaosScorecardShape(t *testing.T) {
	pop := chaosTestPopulation()
	ins := testIncidents(t)
	cfg := testConfig(4)
	cfg.SLOs = DefaultChaosSLOs()
	cfg.Chaos = &chaos.Config{Incidents: ins, Mitigations: chaos.AllMitigations()}
	res, err := Replay(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Chaos
	tot := sc.Total
	if got := tot.Served + tot.Shed + tot.Unavailable + tot.ThrottledDrops; got != tot.Demand {
		t.Errorf("demand %d != served %d + shed %d + unavailable %d + throttled %d",
			tot.Demand, tot.Served, tot.Shed, tot.Unavailable, tot.ThrottledDrops)
	}
	if tot.Unavailable == 0 {
		t.Error("zone outage produced no unavailability")
	}
	if tot.Hedges == 0 || tot.HedgeWins == 0 {
		t.Errorf("hedging never engaged: hedges=%d wins=%d", tot.Hedges, tot.HedgeWins)
	}
	if tot.HedgeWins > tot.Hedges {
		t.Errorf("hedge wins %d exceed hedges %d", tot.HedgeWins, tot.Hedges)
	}
	if len(sc.Incidents) != len(ins) {
		t.Fatalf("scorecard has %d incidents, schedule has %d", len(sc.Incidents), len(ins))
	}
	for i, io := range sc.Incidents {
		if io.Incident != ins[i] {
			t.Errorf("incident %d: scorecard %v != schedule %v", i, io.Incident, ins[i])
		}
	}
	// Arm accounting: four arms, function counts sum to the population,
	// demand sums to the total.
	if len(sc.Arms) != 4 {
		t.Fatalf("want 4 arm rows, got %d", len(sc.Arms))
	}
	var fns int
	var demand uint64
	for _, row := range sc.Arms {
		fns += row.Functions
		demand += row.Demand
	}
	if fns != len(pop) {
		t.Errorf("arm function counts sum to %d, population is %d", fns, len(pop))
	}
	if demand != tot.Demand {
		t.Errorf("arm demand sums to %d, total is %d", demand, tot.Demand)
	}
	// The render embeds the scorecard and the chaos series reached the
	// exposition.
	if !strings.Contains(res.Render(), "resilience scorecard") {
		t.Error("fleet report lacks the scorecard section")
	}
	if om := string(res.OpenMetrics()); !strings.Contains(om, "chaos_demand") {
		t.Error("exposition lacks chaos series")
	}
}

// TestChaosMitigationsReduceUnavailability replays the same population
// and schedule with mechanisms off and on: the mechanisms must strictly
// reduce unavailable drops, and the static-fallback arm must show a
// larger brownout cost amplification than the plain debloated arm (the
// double-billing effect the chaos experiment exists to expose).
func TestChaosMitigationsReduceUnavailability(t *testing.T) {
	pop := chaosTestPopulation()
	ins := testIncidents(t)
	run := func(m chaos.Mitigations) *chaos.Scorecard {
		cfg := testConfig(4)
		cfg.SLOs = DefaultChaosSLOs()
		cfg.Chaos = &chaos.Config{Incidents: ins, Mitigations: m}
		res, err := Replay(cfg, pop)
		if err != nil {
			t.Fatal(err)
		}
		return res.Chaos
	}
	off := run(chaos.Mitigations{})
	on := run(chaos.AllMitigations())
	if off.Total.Hedges != 0 || off.Total.Shed != 0 || off.Total.RetriesDenied != 0 {
		t.Errorf("mitigations=none still engaged mechanisms: %+v", off.Total)
	}
	if on.Total.Unavailability() >= off.Total.Unavailability() {
		t.Errorf("mitigations did not reduce unavailability: off %.4f on %.4f",
			off.Total.Unavailability(), on.Total.Unavailability())
	}
	amp := func(sc *chaos.Scorecard, arm string) float64 {
		for _, row := range sc.Arms {
			if row.Arm == arm {
				return row.BrownoutAmplification()
			}
		}
		t.Fatalf("no %s arm row", arm)
		return 0
	}
	fb, db := amp(on, chaos.ArmFallback), amp(on, chaos.ArmDebloated)
	if fb <= db {
		t.Errorf("fallback brownout amplification %.2fx not above debloated %.2fx", fb, db)
	}
}

// TestArmMixMatchesDebloatedFraction: an ArmMix of {debloated: 0.5} is
// the same population as DebloatedFraction 0.5 — the mix path must not
// perturb any per-member draw.
func TestArmMixMatchesDebloatedFraction(t *testing.T) {
	pc := PopConfig{
		Functions: 300, Period: 6 * time.Hour, Seed: 9,
		DebloatedFraction: 0.5, RateMedian: 30, RateSigma: 1.8, RateCap: 20000,
	}
	frac := GeneratePopulation(pc, testArchetypes())
	pc.DebloatedFraction = 0
	pc.ArmMix = []ArmShare{{Arm: "debloated", Frac: 0.5}}
	mix := GeneratePopulation(pc, testArchetypes())
	if !reflect.DeepEqual(frac, mix) {
		t.Fatal("ArmMix{debloated:0.5} population differs from DebloatedFraction 0.5")
	}
}

// TestChaosOffLeavesReplayUntouched: a nil Chaos config must take the
// exact pre-chaos replay path — same artifacts as the seed contract test
// expects — and a non-nil config must be the only thing that changes
// outputs. (The byte-level seed goldens live in make chaos-smoke; here we
// assert the cheap invariant that Chaos=nil produces no scorecard.)
func TestChaosOffLeavesReplayUntouched(t *testing.T) {
	pop := chaosTestPopulation()
	res, err := Replay(testConfig(2), pop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos != nil {
		t.Fatal("Chaos=nil produced a scorecard")
	}
	if res.Scorecard() != "" {
		t.Fatal("Scorecard() non-empty without chaos")
	}
	if strings.Contains(res.Render(), "resilience scorecard") {
		t.Fatal("report mentions scorecard without chaos")
	}
}
