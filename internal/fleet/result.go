package fleet

import (
	"container/heap"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
	"repro/internal/stats"
)

// Result is the merged outcome of a fleet replay. Every field is a pure
// function of (Config minus Workers, fns): rendering, exposition, spans,
// and alerts are byte-identical across worker counts.
type Result struct {
	Functions int
	Workers   int
	Blocks    int

	Period     time.Duration
	Resolution time.Duration
	KeepAlive  time.Duration
	Seed       int64

	Invocations uint64
	ColdStarts  uint64
	Errors      uint64
	// PeakLive is the largest per-function instance pool seen.
	PeakLive int
	// Latest is the newest sample completion time.
	Latest time.Duration

	// Store is the merged TSDB; Ledger/Arms/Archetypes the cost ledgers
	// keyed by function, arm, and "archetype/arm"; Registry the merged
	// shard counters; Latency the cumulative E2E histogram. All nil when
	// the replay ran with DisableTelemetry.
	Store      *monitor.Store
	Ledger     *monitor.Ledger
	Arms       *monitor.Ledger
	Archetypes *monitor.Ledger
	Registry   *obs.Registry
	Latency    *stats.Histogram

	SLOs       []monitor.SLO
	Alerts     []monitor.AlertEvent
	FireCounts []monitor.SLOFireCount
	Frames     []string

	// Slowest, Priciest, and Sampled are the exemplar sets, best-first.
	Slowest  []Exemplar
	Priciest []Exemplar
	Sampled  []Exemplar

	// ArmFns counts fleet members per arm.
	ArmFns map[string]int

	// Chaos is the resilience scorecard — non-nil only when the replay
	// ran with Config.Chaos and telemetry enabled.
	Chaos *chaos.Scorecard

	topK int
}

// Scorecard renders the resilience scorecard, empty outside chaos
// replays.
func (r *Result) Scorecard() string {
	if r.Chaos == nil {
		return ""
	}
	return r.Chaos.Render()
}

// CostUSD is the fleet's total Eq.-1 bill (0 with telemetry disabled).
func (r *Result) CostUSD() float64 { return r.Ledger.Total().CostUSD() }

// AlertsFired sums fire transitions across objectives.
func (r *Result) AlertsFired() int {
	n := 0
	for _, fc := range r.FireCounts {
		n += fc.Fired
	}
	return n
}

// AlertLog renders the alert transitions in the canonical log format.
func (r *Result) AlertLog() string { return monitor.RenderAlertLog(r.Alerts) }

// QueryEngine returns an mql engine over the merged store, anchored at the
// replay's newest sample. Nil-store results evaluate to zero, matching the
// DisableTelemetry contract.
func (r *Result) QueryEngine() *query.Engine {
	return &query.Engine{Store: r.Store, Latest: r.Latest}
}

// Dashboard returns the concatenated dashboard frames.
func (r *Result) Dashboard() string { return strings.Join(r.Frames, "") }

// Spender is one row of the top-spender table.
type Spender struct {
	Function string
	Phase    monitor.Phase
}

// spenderHeap is a min-heap on (cost asc, name desc): the root is the
// weakest kept candidate, so pushing every function and popping overflow
// keeps the k costliest with a deterministic name tiebreak.
type spenderHeap []Spender

func (h spenderHeap) Len() int { return len(h) }
func (h spenderHeap) Less(i, j int) bool {
	ci, cj := h[i].Phase.CostUSD(), h[j].Phase.CostUSD()
	if ci != cj {
		return ci < cj
	}
	return h[i].Function > h[j].Function
}
func (h spenderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spenderHeap) Push(x any)   { *h = append(*h, x.(Spender)) }
func (h *spenderHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopSpenders returns the k costliest functions, largest bill first with
// a name tiebreak (k <= 0 uses the configured table size). The selection
// runs over the merged ledger with a bounded heap, so fleets of any size
// produce the table without sorting every function.
func (r *Result) TopSpenders(k int) []Spender {
	if k <= 0 {
		k = r.topK
	}
	if r.Ledger == nil || k <= 0 {
		return nil
	}
	h := make(spenderHeap, 0, k+1)
	for _, name := range r.Ledger.Functions() {
		heap.Push(&h, Spender{Function: name, Phase: r.Ledger.Function(name)})
		if len(h) > k {
			heap.Pop(&h)
		}
	}
	out := make([]Spender, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Spender)
	}
	return out
}

// renderFrames sweeps the merged windows at DashboardEvery boundaries and
// renders cumulative counters, the interval request rate, and the firing
// objectives at each boundary. Firing state comes from the alert
// transitions: a boundary tick at T precedes a frame at T (the live
// monitor's tie order), so transitions with At <= T are in effect.
func renderFrames(cfg *Config, p *partial, alerts []monitor.AlertEvent) []string {
	res := cfg.Resolution
	end := (p.latest/res + 1) * res
	var frames []string
	var req, errs, cold monitor.Rollup
	var cost monitor.Rollup
	firing := map[string]bool{}
	ai := 0
	prev := time.Duration(0)
	emit := func(T time.Duration) {
		prevReq := req.Count
		req.Merge(p.store.Range("req.total", prev, T))
		errs.Merge(p.store.Range("req.error", prev, T))
		cold.Merge(p.store.Range("req.cold", prev, T))
		cost.Merge(p.store.Range("cost.usd", prev, T))
		for ai < len(alerts) && alerts[ai].At <= T {
			firing[alerts[ai].SLO] = alerts[ai].Firing
			ai++
		}
		coldPct := 0.0
		if req.Count > 0 {
			coldPct = 100 * float64(cold.Count) / float64(req.Count)
		}
		rate := 0.0
		if T > prev {
			rate = float64(req.Count-prevReq) / (T - prev).Seconds()
		}
		var names []string
		for name, on := range firing {
			if on {
				names = append(names, name)
			}
		}
		firingStr := "-"
		if len(names) > 0 {
			sortStrings(names)
			firingStr = strings.Join(names, ",")
		}
		frames = append(frames, fmt.Sprintf(
			"[%s] req=%-9d err=%-5d cold=%-7d cold%%=%-5.1f rate=%8.1f/s cost=$%.6f firing=%s\n",
			monitor.FmtOffset(T), req.Count, errs.Count, cold.Count, coldPct,
			rate, cost.Sum, firingStr))
		prev = T
	}
	for T := cfg.DashboardEvery; T < end; T += cfg.DashboardEvery {
		emit(T)
	}
	emit(end)
	return frames
}

// sortStrings is a tiny insertion sort: firing sets hold a handful of
// names, not worth pulling sort into the hot path's import graph twice.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// armNames returns the arm labels, sorted.
func (r *Result) armNames() []string {
	names := make([]string, 0, len(r.ArmFns))
	for arm := range r.ArmFns {
		names = append(names, arm)
	}
	sortStrings(names)
	return names
}

// Render produces the fleet replay's text report: population and
// partition header, the headline counters, per-arm cost attribution, SLO
// outcomes with the alert log, dashboard frames, the top-spender table,
// and the three exemplar sets.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet replay — %d functions over %s (seed %d, blocks %d)\n",
		r.Functions, r.Period, r.Seed, r.Blocks)
	fmt.Fprintf(&b, "policy: keep-alive %s, resolution %s; peak pool %d instances\n",
		r.KeepAlive, r.Resolution, r.PeakLive)
	coldPct := 0.0
	if r.Invocations > 0 {
		coldPct = 100 * float64(r.ColdStarts) / float64(r.Invocations)
	}
	fmt.Fprintf(&b, "invocations=%d cold=%d (%.1f%%) errors=%d cost=$%.6f\n",
		r.Invocations, r.ColdStarts, coldPct, r.Errors, r.CostUSD())

	if len(r.ArmFns) > 0 {
		b.WriteString("arms:\n")
		for _, arm := range r.armNames() {
			ph := r.Arms.Function(arm)
			armCold := 0.0
			if ph.Invocations > 0 {
				armCold = 100 * float64(ph.ColdStarts) / float64(ph.Invocations)
			}
			fmt.Fprintf(&b, "  %-10s fns=%-6d invoc=%-9d cold=%-7d (%4.1f%%) init$=%.6f handler$=%.6f total$=%.6f\n",
				arm, r.ArmFns[arm], ph.Invocations, ph.ColdStarts, armCold,
				ph.InitUSD, ph.ExecUSD, ph.CostUSD())
		}
		if o, d := r.Arms.Function("original"), r.Arms.Function("debloated"); o.Invocations > 0 && d.Invocations > 0 {
			perInvO := o.CostUSD() / float64(o.Invocations)
			perInvD := d.CostUSD() / float64(d.Invocations)
			fmt.Fprintf(&b, "  %-10s init$/inv %.12f -> %.12f, total$/inv %.12f -> %.12f\n",
				"delta", o.InitUSD/float64(o.Invocations), d.InitUSD/float64(d.Invocations),
				perInvO, perInvD)
		}
	}

	if len(r.SLOs) > 0 {
		b.WriteString("slo objectives:\n")
		for _, s := range r.SLOs {
			fmt.Fprintf(&b, "  %-24s kind=%s burn>=%.1f windows=%s/%s\n",
				s.Name, s.Kind, s.Burn, s.ShortWindow, s.LongWindow)
		}
		fmt.Fprintf(&b, "alerts fired=%d:\n", r.AlertsFired())
		if len(r.Alerts) == 0 {
			b.WriteString("  (none)\n")
		}
		for _, e := range r.Alerts {
			b.WriteString("  " + e.String() + "\n")
		}
	}

	if len(r.Frames) > 0 {
		b.WriteString("dashboard:\n")
		for _, f := range r.Frames {
			b.WriteString("  " + f)
		}
	}

	spenders := r.TopSpenders(0)
	if len(spenders) > 0 {
		b.WriteString("top spenders:\n")
		for _, row := range spenders {
			ph := row.Phase
			fmt.Fprintf(&b, "  %-14s invoc=%-8d cold=%-6d init$=%.6f handler$=%.6f total$=%.6f\n",
				row.Function, ph.Invocations, ph.ColdStarts, ph.InitUSD, ph.ExecUSD, ph.CostUSD())
		}
	}

	writeExemplars := func(title string, xs []Exemplar) {
		if len(xs) == 0 {
			return
		}
		fmt.Fprintf(&b, "exemplars (%s):\n", title)
		for _, e := range xs {
			label := e.Function
			if e.Archetype != "" {
				label += " " + e.Archetype + "/" + e.Arm
			}
			cold := "warm"
			if e.Cold {
				cold = "cold"
			}
			fmt.Fprintf(&b, "  %-32s at=%s e2e=%-12s %s cost=$%.12f\n",
				label, monitor.FmtOffset(e.At), e.E2E, cold, e.CostUSD)
		}
	}
	writeExemplars("slowest", r.Slowest)
	writeExemplars("priciest", r.Priciest)
	writeExemplars("seed-keyed sample", r.Sampled)
	if r.Chaos != nil {
		b.WriteString(r.Chaos.Render())
	}
	return b.String()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeFamily(b *strings.Builder, name, typ string, lines ...string) {
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}

// exemplarFor attaches OpenMetrics exemplars to the exposition: the
// slowest invocation rides req.total's max line and the priciest rides
// cost.usd's, each carrying the function name and the span ID that
// resolves (via obs.Tracer.FindSpan after EmitSpans) to the invocation's
// span subtree. Exemplar sets are fold-order independent, so the
// annotations inherit the exposition's byte stability.
func (r *Result) exemplarFor(series, kind string) string {
	if kind != "max" {
		return ""
	}
	pick := func(xs []Exemplar, v func(Exemplar) float64) string {
		if len(xs) == 0 {
			return ""
		}
		e := xs[0]
		return monitor.ExemplarAnnotation([]monitor.Label{
			{Key: "function", Val: e.Function},
			{Key: "span_id", Val: e.SpanID()},
		}, v(e), e.At)
	}
	switch series {
	case "req.total":
		return pick(r.Slowest, func(e Exemplar) float64 { return e.E2E.Seconds() })
	case "cost.usd":
		return pick(r.Priciest, func(e Exemplar) float64 { return e.CostUSD })
	}
	return ""
}

// OpenMetrics renders the merged result in the monitor's exposition
// format — per-series cumulative rollups (with exemplar annotations on
// the outlier families), SLO firing state, latency quantiles, phase
// dollars — plus fleet-level families: member and invocation counts and
// per-arm attribution. Byte-stable for a fixed (Config minus Workers,
// fns).
func (r *Result) OpenMetrics() []byte {
	var b strings.Builder
	monitor.StoreFamilies(&b, r.Store, r.exemplarFor)

	if len(r.FireCounts) > 0 {
		firing := make([]string, 0, len(r.FireCounts))
		fired := make([]string, 0, len(r.FireCounts))
		for _, c := range r.FireCounts {
			v := "0"
			if c.Firing {
				v = "1"
			}
			firing = append(firing, `lambdatrim_slo_firing{slo="`+c.Name+`"} `+v)
			fired = append(fired, `lambdatrim_slo_fired_total{slo="`+c.Name+`"} `+strconv.Itoa(c.Fired))
		}
		writeFamily(&b, "lambdatrim_slo_firing", "gauge", firing...)
		writeFamily(&b, "lambdatrim_slo_fired_total", "counter", fired...)
	}

	if r.Latency != nil && r.Latency.Count() > 0 {
		qs := []struct {
			q float64
			s string
		}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}
		lines := make([]string, 0, len(qs))
		for _, q := range qs {
			lines = append(lines,
				`lambdatrim_latency_seconds{quantile="`+q.s+`"} `+fmtFloat(r.Latency.Quantile(q.q)))
		}
		writeFamily(&b, "lambdatrim_latency_seconds", "gauge", lines...)
	}

	total := r.Ledger.Total()
	if total.Invocations > 0 {
		writeFamily(&b, "lambdatrim_cost_phase_usd", "gauge",
			`lambdatrim_cost_phase_usd{phase="init"} `+fmtFloat(total.InitUSD),
			`lambdatrim_cost_phase_usd{phase="handler"} `+fmtFloat(total.ExecUSD),
			`lambdatrim_cost_phase_usd{phase="idle"} `+fmtFloat(total.IdleUSD),
			`lambdatrim_cost_phase_usd{phase="restore"} `+fmtFloat(total.RestoreUSD))
	}

	writeFamily(&b, "lambdatrim_fleet_functions", "gauge",
		"lambdatrim_fleet_functions "+strconv.Itoa(r.Functions))
	writeFamily(&b, "lambdatrim_fleet_invocations_total", "counter",
		"lambdatrim_fleet_invocations_total "+strconv.FormatUint(r.Invocations, 10))
	writeFamily(&b, "lambdatrim_fleet_cold_starts_total", "counter",
		"lambdatrim_fleet_cold_starts_total "+strconv.FormatUint(r.ColdStarts, 10))
	if len(r.ArmFns) > 0 {
		fns := make([]string, 0, len(r.ArmFns))
		cost := make([]string, 0, len(r.ArmFns))
		invs := make([]string, 0, len(r.ArmFns))
		for _, arm := range r.armNames() {
			ph := r.Arms.Function(arm)
			fns = append(fns, `lambdatrim_fleet_arm_functions{arm="`+arm+`"} `+strconv.Itoa(r.ArmFns[arm]))
			invs = append(invs, `lambdatrim_fleet_arm_invocations_total{arm="`+arm+`"} `+strconv.FormatUint(ph.Invocations, 10))
			cost = append(cost, `lambdatrim_fleet_arm_cost_usd{arm="`+arm+`"} `+fmtFloat(ph.CostUSD()))
		}
		writeFamily(&b, "lambdatrim_fleet_arm_functions", "gauge", fns...)
		writeFamily(&b, "lambdatrim_fleet_arm_invocations_total", "counter", invs...)
		writeFamily(&b, "lambdatrim_fleet_arm_cost_usd", "gauge", cost...)
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

// EmitSpans records a bounded span tree onto tr for the flamegraph
// exporter: one root span covering the fleet's total billed time, one
// child per "archetype/arm" bucket (widest first) sized by its billed
// duration, with init/exec/idle leaf phases — "where does the billed time
// go" at a glance, a few dozen spans no matter how many invocations
// replayed. The merged shard registry is folded into tr's metrics.
func (r *Result) EmitSpans(tr *obs.Tracer) {
	if tr == nil || r.Archetypes == nil {
		return
	}
	type bucket struct {
		name   string
		ph     monitor.Phase
		billed time.Duration
	}
	var buckets []bucket
	var total time.Duration
	for _, name := range r.Archetypes.Functions() {
		ph := r.Archetypes.Function(name)
		billed := ph.BilledInit + ph.BilledExec + ph.BilledIdle
		buckets = append(buckets, bucket{name, ph, billed})
		total += billed
	}
	// Widest-first layout with a name tiebreak.
	for i := 1; i < len(buckets); i++ {
		for j := i; j > 0 && (buckets[j].billed > buckets[j-1].billed ||
			(buckets[j].billed == buckets[j-1].billed && buckets[j].name < buckets[j-1].name)); j-- {
			buckets[j], buckets[j-1] = buckets[j-1], buckets[j]
		}
	}
	root := tr.StartChild(nil, "fleet.replay", "fleet", 0)
	cursor := time.Duration(0)
	for _, bk := range buckets {
		s := tr.StartChild(root, bk.name, "fleet.archetype", cursor)
		at := cursor
		phase := func(name string, d time.Duration) {
			if d <= 0 {
				return
			}
			ps := tr.StartChild(s, name, "fleet.phase", at)
			at += d
			tr.End(ps, at)
		}
		phase("init", bk.ph.BilledInit)
		phase("exec", bk.ph.BilledExec)
		phase("idle", bk.ph.BilledIdle)
		cursor += bk.billed
		tr.End(s, cursor)
	}
	tr.End(root, total)
	r.emitExemplarSpans(tr)
	tr.Metrics().Merge(r.Registry)
}

// emitExemplarSpans records a second root holding one span per kept
// exemplar on the real replay timeline ([At-E2E, At], init/exec phase
// children), each carrying the span ID that the OpenMetrics exemplar
// annotations reference — FindSpan(id) on the receiving tracer lands on
// the invocation behind the annotation. The three sets are deduplicated
// by span identity and laid out in (At, Function, seq) order, so the
// subtree is a pure function of the merged exemplar sets.
func (r *Result) emitExemplarSpans(tr *obs.Tracer) {
	var xs []Exemplar
	seen := map[uint64]bool{}
	for _, set := range [][]Exemplar{r.Slowest, r.Priciest, r.Sampled} {
		for _, e := range set {
			if e.span != 0 && !seen[e.span] {
				seen[e.span] = true
				xs = append(xs, e)
			}
		}
	}
	if len(xs) == 0 {
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && tiebreak(&xs[j], &xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	first := xs[0].At - xs[0].E2E
	last := xs[0].At
	root := tr.StartChild(nil, "fleet.exemplars", "fleet", first)
	for _, e := range xs {
		start := e.At - e.E2E
		if start < first {
			first = start
		}
		if e.At > last {
			last = e.At
		}
		s := tr.StartChild(root, e.Function, "fleet.exemplar", start)
		s.ID = e.SpanID()
		s.Add(
			obs.String("archetype", e.Archetype),
			obs.String("arm", e.Arm),
			obs.Bool("cold", e.Cold),
			obs.Attr{Key: "cost_usd", Val: fmtFloat(e.CostUSD)},
		)
		if e.Init > 0 {
			tr.StartChild(s, "init", "fleet.phase", start).Finish(start + e.Init)
		}
		tr.StartChild(s, "exec", "fleet.phase", start+e.Init).Finish(e.At)
		tr.End(s, e.At)
	}
	root.Start = first
	tr.End(root, last)
}
