package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/appcorpus"
	"repro/internal/faas"
)

// Archetype is one corpus application reduced to the four observables the
// fleet replay needs: cold-init latency and memory for each deployment
// arm, and the handler duration. The debloated arm subtracts the
// calibrated removable import time and memory mass — what λ-trim's
// pipeline recovers — without re-running the debloater per fleet member.
type Archetype struct {
	Name           string
	InitOriginal   time.Duration
	InitDebloated  time.Duration
	Exec           time.Duration
	MemOriginalMB  float64
	MemDebloatedMB float64
}

// Archetypes derives the fleet archetypes from the 21-app corpus. Each
// definition is built once to populate its removable-mass calibration
// (appcorpus sums it from the generated libraries during assembly).
func Archetypes() []Archetype {
	var out []Archetype
	for _, d := range appcorpus.Catalog() {
		d.Build()
		trimInit := d.ImportS - d.RemovableImportS
		if trimInit < 0.01 {
			trimInit = 0.01
		}
		trimMem := d.MemoryMB - d.RemovableMemMB
		if trimMem < 40 {
			trimMem = 40 // the interpreter base never debloats away
		}
		out = append(out, Archetype{
			Name:           d.Name,
			InitOriginal:   time.Duration(d.ImportS * float64(time.Second)),
			InitDebloated:  time.Duration(trimInit * float64(time.Second)),
			Exec:           time.Duration(d.ExecS * float64(time.Second)),
			MemOriginalMB:  d.MemoryMB,
			MemDebloatedMB: trimMem,
		})
	}
	return out
}

// PopConfig shapes a synthetic fleet population.
type PopConfig struct {
	// Functions is the fleet size; Period the replay day.
	Functions int
	Period    time.Duration
	// Seed keys every per-function draw; function i's parameters depend
	// only on (Seed, i), so populations are stable under resizing.
	Seed int64
	// DebloatedFraction is the probability a member deploys the debloated
	// arm of its archetype.
	DebloatedFraction float64
	// ArmMix, when non-empty, replaces DebloatedFraction with an explicit
	// arm distribution (shares summing to at most 1; the remainder
	// deploys "original"). The chaos experiment uses it to field the
	// fallback and breaker wrapper arms alongside the paper's two. Any
	// arm other than "original" uses the archetype's debloated init and
	// memory; "fallback" and "breaker" additionally carry FallbackInit,
	// the original image's cold init paid on uncovered paths.
	ArmMix []ArmShare
	// RateMedian and RateSigma shape the log-normal per-function daily
	// invocation rate (the Azure trace's heavy tail: most functions fire
	// a handful of times, a few carry most of the volume). RateCap bounds
	// the hottest function's expected daily count.
	RateMedian float64
	RateSigma  float64
	RateCap    float64
	// Pricing rounds memory configurations.
	Pricing faas.Pricing
}

// DefaultPopConfig is a 10k-function day: with the heavy-tailed rate
// shape below it expects on the order of 1-2 million arrivals.
func DefaultPopConfig() PopConfig {
	return PopConfig{
		Functions:         10000,
		Period:            24 * time.Hour,
		Seed:              1,
		DebloatedFraction: 0.5,
		RateMedian:        12,
		RateSigma:         2.2,
		RateCap:           40000,
		Pricing:           faas.AWSPricing(),
	}
}

// GeneratePopulation builds the fleet members. Each function draws its
// archetype, arm, rate, and jittered parameters from a private RNG seeded
// by (Seed, ID) — generation order, sharding, and fleet size do not
// perturb any member's identity. Arrivals are NOT materialized here; each
// member carries only its expected rate and stream seed.
func GeneratePopulation(pc PopConfig, archs []Archetype) []Function {
	if len(archs) == 0 {
		archs = Archetypes()
	}
	if pc.Pricing == (faas.Pricing{}) {
		pc.Pricing = faas.AWSPricing()
	}
	fns := make([]Function, 0, pc.Functions)
	for id := 0; id < pc.Functions; id++ {
		h := exemplarFnKey(pc.Seed, id)
		rng := rand.New(rand.NewSource(int64(h >> 1)))
		a := archs[rng.Intn(len(archs))]
		// One arm draw regardless of mix shape, so switching between
		// DebloatedFraction and an equivalent ArmMix leaves every other
		// per-member parameter untouched (and the default two-arm path is
		// byte-identical to the pre-ArmMix generator).
		arm := "original"
		armDraw := rng.Float64()
		if len(pc.ArmMix) > 0 {
			arm = armFromMix(pc.ArmMix, armDraw)
		} else if armDraw < pc.DebloatedFraction {
			arm = "debloated"
		}
		init, mem := a.InitOriginal, a.MemOriginalMB
		if arm != "original" {
			init, mem = a.InitDebloated, a.MemDebloatedMB
		}
		daily := math.Exp(rng.NormFloat64()*pc.RateSigma + math.Log(pc.RateMedian))
		if pc.RateCap > 0 && daily > pc.RateCap {
			daily = pc.RateCap
		}
		if daily < 0.2 {
			daily = 0.2
		}
		rate := daily * pc.Period.Hours() / 24

		// Mild per-member jitter: two deployments of the same archetype
		// are similar, not identical.
		exec := jitter(rng, a.Exec, 0.25, time.Millisecond, 2*time.Minute)
		coldInit := jitter(rng, init, 0.10, time.Millisecond, 5*time.Minute)
		memMB := pc.Pricing.ConfigureMemory(mem * math.Exp(rng.NormFloat64()*0.10))

		// The wrapper arms pay the original image's cold init when the
		// fallback path fires. Derive it from the member's own jittered
		// debloated init by the archetype ratio — no extra draw, so the
		// stream stays aligned with the two-arm generator.
		var fallbackInit time.Duration
		if arm == "fallback" || arm == "breaker" {
			ratio := float64(a.InitOriginal) / float64(a.InitDebloated)
			fallbackInit = clampDuration(time.Duration(float64(coldInit)*ratio),
				time.Millisecond, 5*time.Minute)
		}

		fns = append(fns, Function{
			ID:           id,
			Name:         fmt.Sprintf("fleet-%05d", id),
			Archetype:    a.Name,
			Arm:          arm,
			ColdInit:     coldInit,
			Exec:         exec,
			FallbackInit: fallbackInit,
			MemoryMB:     memMB,
			Rate:         rate,
			Seed:         int64(splitmix64(h^0xA5A5A5A5A5A5A5A5) >> 1),
		})
	}
	return fns
}

// jitter scales d log-normally with the given sigma, clamped to
// [lo, hi].
func jitter(rng *rand.Rand, d time.Duration, sigma float64, lo, hi time.Duration) time.Duration {
	return clampDuration(time.Duration(float64(d)*math.Exp(rng.NormFloat64()*sigma)), lo, hi)
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// ArmShare is one entry of PopConfig.ArmMix.
type ArmShare struct {
	Arm  string
	Frac float64
}

// armFromMix walks the cumulative shares; the leftover mass deploys the
// original arm.
func armFromMix(mix []ArmShare, draw float64) string {
	cum := 0.0
	for _, s := range mix {
		cum += s.Frac
		if draw < cum {
			return s.Arm
		}
	}
	return "original"
}
