// Package fleet is the sharded virtual-time fleet replay engine: it
// partitions a population of thousands of serverless functions into
// contiguous ID-ordered blocks, replays each block's keep-alive pool
// dynamics on a private worker shard — each shard feeding its own
// monitor.Store, cost ledgers, and obs.Registry — and folds the shard
// results back together in block order at the end of the replay.
//
// The engine's contract is byte-identity across worker counts. Every
// accumulator is either order-independent (integer counters, window
// counts, histogram buckets, max-folds, top-K selections under a total
// order) or folded in a fixed order that does not depend on scheduling:
// functions fold sequentially in ID order within their block, and blocks
// merge in index order — so the net floating-point fold order is function
// ID order no matter how many workers ran or how the OS scheduled them.
// The number of blocks (not workers) is what pins the partition, and it
// is part of the replay configuration.
//
// Telemetry is streaming: no per-invocation record is ever materialized.
// Arrivals come from seeded per-function Poisson streams
// (trace.ArrivalStream), pool state is bounded by peak concurrency
// (trace.SimulatePoolStream), and every observation lands in mergeable
// rollups (monitor.Store windows), phase ledgers, log-scale histograms,
// and small fixed-size exemplar sets. Resident memory is therefore
// proportional to blocks × windows, flat in the invocation count — a day
// of millions of arrivals replays in seconds within a few tens of MB.
//
// SLO alerting over the merged result is exact, not approximate: a
// monitor boundary at T reads only windows strictly before T and windows
// partition samples by timestamp, so monitor.EvaluateSLOs over the merged
// store reproduces the alert log a single live Monitor observing the
// globally-ordered sample sequence would have produced (see
// monitor/eval.go for the full argument).
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Function is one fleet member. Arrivals may be given explicitly (small
// hand-built or pre-generated fleets) or generated on the fly from a
// seeded Poisson stream when Arrivals is nil — the streaming form is what
// keeps memory flat at fleet scale.
type Function struct {
	// ID orders the function inside the corpus; the block partition and
	// every floating-point fold follow this order.
	ID int
	// Name labels the function in the ledger and exemplars.
	Name string
	// Archetype and Arm classify the member for attribution (corpus app
	// it was derived from, and "original" vs "debloated"). Either may be
	// empty for unclassified fleets.
	Archetype string
	Arm       string
	// ColdInit is the init latency a cold start pays; Exec the handler
	// duration; MemoryMB the billed memory configuration.
	ColdInit time.Duration
	Exec     time.Duration
	// FallbackInit is the original image's cold init, paid on top of the
	// debloated attempt when a fallback-arm member hits an uncovered path
	// under a chaos replay (zero: the chaos engine derives a default).
	// Ignored outside chaos replays and for non-fallback arms.
	FallbackInit time.Duration
	MemoryMB     int
	// Arrivals, when non-nil, are explicit sorted invocation offsets.
	// When nil, arrivals stream from ArrivalStream(Seed, Rate, Period).
	Arrivals []time.Duration
	// Rate is the expected arrival count over the replay period; Seed
	// keys the function's private arrival stream.
	Rate float64
	Seed int64
}

// Config parameterizes a fleet replay.
type Config struct {
	// Workers is the worker-goroutine count. It affects wall-clock time
	// only — never any byte of the result (default GOMAXPROCS).
	Workers int
	// Blocks is the merge-partition count. It is part of the replay's
	// identity: the same Blocks value yields bit-identical results at any
	// worker count, while changing it may perturb last-bit floating-point
	// rollup sums (default 64, clamped to the function count).
	Blocks int
	// Period is the replay horizon for streamed arrivals.
	Period time.Duration
	// Resolution and Windows size the per-shard stores. Windows defaults
	// to cover Period plus six hours of completion tail so nothing slides
	// out of the ring and post-hoc SLO evaluation stays exact.
	Resolution time.Duration
	Windows    int
	// KeepAlive is the pool keep-alive policy (default 15 minutes).
	KeepAlive time.Duration
	// SLOs are evaluated over the merged store after the replay.
	SLOs []monitor.SLO
	// DashboardEvery renders a dashboard frame at this virtual interval
	// from the merged windows (0 disables frames).
	DashboardEvery time.Duration
	// TopSpenders and Exemplars size the top-K tables (defaults 5).
	TopSpenders int
	Exemplars   int
	// Seed keys the deterministic exemplar sampler.
	Seed int64
	// Pricing bills each invocation (default AWS).
	Pricing faas.Pricing
	// DisableTelemetry replays only the pool dynamics and counters — the
	// overhead baseline for benchmarking the telemetry plane.
	DisableTelemetry bool
	// LabelSeries additionally records labeled series into the shard
	// stores for mql label matchers: the built-in series under {arm="..."}
	// per arm, and the cost series split pro rata into
	// cost.usd{phase="init"} / cost.usd{phase="handler"} (the ledger's
	// decomposition, as queryable time series). Label cardinality is
	// bounded by the arm count, never the function count, so shard memory
	// stays flat.
	LabelSeries bool
	// Rules are recording rules (query.ParseRules) evaluated incrementally
	// during the replay: each shard sweeps its block's window boundaries
	// after the block replays and records the rule series into its private
	// store, and the shards merge in block-index order like every other
	// artifact. ParseRules restricts bodies to the distributive fragment,
	// which is exactly what makes the merged rule series independent of
	// the worker count.
	Rules []query.Rule
	// Chaos, when non-nil, replays every function through the chaos
	// engine: incident-window admission rejections, latency/brownout
	// stretches, churn flushes, graceful-degradation mechanisms, and the
	// chaos.* telemetry series feeding the resilience scorecard. The
	// engine's seed defaults to Seed and its pricing to Pricing. A nil
	// Chaos leaves every artifact byte-identical to a build without the
	// chaos layer (the gate hooks are bypassed entirely).
	Chaos *chaos.Config

	// chaosEngine is the validated engine built once per Replay from
	// Chaos; shared read-only across worker shards.
	chaosEngine *chaos.Engine

	// blockDone, when set, runs on the merge goroutine after each block
	// has been folded and released (test hook for memory-flatness
	// assertions).
	blockDone func(merged int)
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 64
	}
	if cfg.Resolution <= 0 {
		cfg.Resolution = monitor.DefaultResolution
	}
	if cfg.Windows <= 0 {
		cfg.Windows = int(cfg.Period/cfg.Resolution) + int(6*time.Hour/cfg.Resolution) + 1
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 15 * time.Minute
	}
	if cfg.TopSpenders <= 0 {
		cfg.TopSpenders = 5
	}
	if cfg.Exemplars <= 0 {
		cfg.Exemplars = 5
	}
	if cfg.Pricing == (faas.Pricing{}) {
		cfg.Pricing = faas.AWSPricing()
	}
	return cfg
}

// DefaultSLOs are the objectives a CLI fleet replay evaluates when the
// operator gives none: the cold-start budget FaaSLight motivates (at most
// 15% of invocations may pay an init) and an hourly spend budget sized to
// a 10k-function day. Both use the standard multi-window burn-rate
// parameters (SLO.WithDefaults).
func DefaultSLOs() []monitor.SLO {
	return []monitor.SLO{
		{Name: "fleet-cold-fraction", Kind: monitor.KindColdFraction, Budget: 0.15},
		{Name: "fleet-cost-burn", Kind: monitor.KindCostRate, BudgetUSD: 12},
	}
}

// DefaultChaosSLOs are the chaos-replay objectives: the standard fleet
// pair plus an availability budget (at most 2% of requests may fail;
// deliberately shed load is excluded — see monitor.KindAvailability).
func DefaultChaosSLOs() []monitor.SLO {
	return append(DefaultSLOs(),
		monitor.SLO{Name: "fleet-availability", Kind: monitor.KindAvailability, Budget: 0.02})
}

// partial is one block's private telemetry shard. A partial is owned by
// exactly one worker goroutine while its block replays, then handed to
// the merger; no accumulator is ever written from two goroutines.
type partial struct {
	store  *monitor.Store
	ledger *monitor.Ledger // per function
	arms   *monitor.Ledger // per arm
	arch   *monitor.Ledger // per "archetype/arm"
	reg    *obs.Registry
	hist   *stats.Histogram
	ex     *exemplars

	invocations uint64
	coldStarts  uint64
	errors      uint64
	latest      time.Duration
	peakLive    int
	armFns      map[string]int
	// chaosArms accumulates per-arm resilience counters under a chaos
	// replay (nil otherwise). Integer counters and independent per-key
	// float sums, so the block-index merge order keeps it reproducible.
	chaosArms map[string]*chaos.ArmStats
}

func newPartial(cfg *Config) *partial {
	p := &partial{armFns: make(map[string]int)}
	if cfg.chaosEngine != nil {
		p.chaosArms = make(map[string]*chaos.ArmStats)
	}
	if cfg.DisableTelemetry {
		return p
	}
	p.store = monitor.NewStore(cfg.Resolution, cfg.Windows)
	p.ledger = monitor.NewLedger()
	p.arms = monitor.NewLedger()
	p.arch = monitor.NewLedger()
	p.reg = obs.NewRegistry()
	p.hist = stats.NewHistogram()
	p.ex = newExemplars(cfg.Exemplars, cfg.Seed)
	return p
}

// merge folds o into p. Call order across partials must be block-index
// order: that is the only scheduling-independent total order, and it is
// what makes every floating-point sum reproducible.
func (p *partial) merge(o *partial) error {
	if err := p.store.Merge(o.store); err != nil {
		return err
	}
	p.ledger.Merge(o.ledger)
	p.arms.Merge(o.arms)
	p.arch.Merge(o.arch)
	p.reg.Merge(o.reg)
	if p.hist != nil {
		p.hist.Merge(o.hist)
	}
	if p.ex != nil {
		p.ex.merge(o.ex)
	}
	p.invocations += o.invocations
	p.coldStarts += o.coldStarts
	p.errors += o.errors
	if o.latest > p.latest {
		p.latest = o.latest
	}
	if o.peakLive > p.peakLive {
		p.peakLive = o.peakLive
	}
	for arm, n := range o.armFns {
		p.armFns[arm] += n
	}
	for arm, s := range o.chaosArms {
		p.chaosArm(arm).Merge(s)
	}
	return nil
}

// chaosArm returns the arm's resilience accumulator, creating it on first
// touch.
func (p *partial) chaosArm(arm string) *chaos.ArmStats {
	if p.chaosArms == nil {
		p.chaosArms = make(map[string]*chaos.ArmStats)
	}
	s, ok := p.chaosArms[arm]
	if !ok {
		s = &chaos.ArmStats{}
		p.chaosArms[arm] = s
	}
	return s
}

// Phase-labeled cost series (LabelSeries): the ledger's pro-rata init/
// handler split, re-recorded as queryable time series. Package-level so
// the canonical encoding is paid once per process, not per invocation.
var (
	costInitSeries = monitor.LabeledSeries("cost.usd", monitor.Label{Key: "phase", Val: "init"})
	costExecSeries = monitor.LabeledSeries("cost.usd", monitor.Label{Key: "phase", Val: "handler"})
)

// replayFunction streams one function's arrivals through the keep-alive
// pool and folds every served invocation into the block's shard. Under a
// chaos replay the gated variant runs instead.
func replayFunction(cfg *Config, fn *Function, p *partial) {
	if cfg.chaosEngine != nil {
		replayChaosFunction(cfg, fn, p)
		return
	}
	next := fn.arrivalSource(cfg.Period)
	var seq uint64
	fnKey := exemplarFnKey(cfg.Seed, fn.ID)
	// Labeled series names are per label set, not per sample: build them
	// before the arrival loop so the replay's hot path never allocates a
	// name.
	var armNames *monitor.SeriesNames
	if cfg.LabelSeries && !cfg.DisableTelemetry && fn.Arm != "" {
		names := monitor.NamedSeries(monitor.Label{Key: "arm", Val: fn.Arm})
		armNames = &names
	}
	res := trace.SimulatePoolStream(next, fn.Exec, cfg.KeepAlive, func(ev trace.PoolEvent) {
		var init time.Duration
		if ev.Cold {
			init = fn.ColdInit
		}
		e2e := init + fn.Exec
		at := ev.At + e2e // samples land at completion time
		p.invocations++
		if ev.Cold {
			p.coldStarts++
		}
		if at > p.latest {
			p.latest = at
		}
		if cfg.DisableTelemetry {
			seq++
			return
		}
		billed := cfg.Pricing.BillDuration(e2e)
		s := monitor.Sample{
			Function:   fn.Name,
			Cold:       ev.Cold,
			Class:      "ok",
			Init:       init,
			Exec:       fn.Exec,
			E2E:        e2e,
			BilledInit: init,
			BilledExec: fn.Exec,
			Billed:     billed,
			MemoryMB:   fn.MemoryMB,
			CostUSD:    cfg.Pricing.Cost(billed, fn.MemoryMB),
		}
		monitor.FoldSample(p.store, at, s, cfg.SLOs)
		if cfg.LabelSeries {
			if armNames != nil {
				monitor.FoldSampleInto(p.store, at, s, *armNames)
			}
			// Pro-rata duration-bill split, mirroring Phase.add: the
			// same dollars the ledger attributes to init/handler, as
			// series mql can window and ratio.
			if s.Billed > 0 && s.CostUSD > 0 {
				if s.BilledInit > 0 {
					p.store.Record(costInitSeries, at, s.CostUSD*float64(s.BilledInit)/float64(s.Billed))
				}
				if s.BilledExec > 0 {
					p.store.Record(costExecSeries, at, s.CostUSD*float64(s.BilledExec)/float64(s.Billed))
				}
			}
		}
		p.ledger.Record(s)
		if fn.Arm != "" {
			armed := s
			armed.Function = fn.Arm
			p.arms.Record(armed)
			if fn.Archetype != "" {
				armed.Function = fn.Archetype + "/" + fn.Arm
				p.arch.Record(armed)
			}
		}
		p.hist.Observe(s.E2E.Seconds())
		p.reg.Inc("fleet.invocations", 1)
		if ev.Cold {
			p.reg.Inc("fleet.cold_starts", 1)
		}
		key := exemplarSampleKey(fnKey, seq)
		p.ex.offer(Exemplar{
			Function:  fn.Name,
			Archetype: fn.Archetype,
			Arm:       fn.Arm,
			At:        at,
			Init:      init,
			E2E:       e2e,
			CostUSD:   s.CostUSD,
			Cold:      ev.Cold,
			seq:       seq,
			key:       key,
			span:      exemplarSpanKey(key),
		})
		seq++
	})
	if res.MaxInstances > p.peakLive {
		p.peakLive = res.MaxInstances
	}
	if fn.Arm != "" {
		p.armFns[fn.Arm]++
	}
}

// arrivalSource returns the function's arrival iterator: the explicit
// slice when present, the seeded Poisson stream otherwise.
func (fn *Function) arrivalSource(period time.Duration) func() (time.Duration, bool) {
	if fn.Arrivals != nil {
		arr := fn.Arrivals
		i := 0
		return func() (time.Duration, bool) {
			if i >= len(arr) {
				return 0, false
			}
			at := arr[i]
			i++
			return at, true
		}
	}
	return trace.ArrivalStream(fn.Seed, fn.Rate, period)
}

func validate(cfg *Config, fns []Function) error {
	if cfg.Period <= 0 {
		streamed := false
		for i := range fns {
			if fns[i].Arrivals == nil {
				streamed = true
				break
			}
		}
		if streamed {
			return fmt.Errorf("fleet: streamed arrivals need a positive Period")
		}
	}
	for i := range fns {
		fn := &fns[i]
		if fn.Name == "" {
			return fmt.Errorf("fleet: function %d has no name", i)
		}
		if fn.Exec <= 0 {
			return fmt.Errorf("fleet: function %q has non-positive Exec", fn.Name)
		}
		if fn.MemoryMB <= 0 {
			return fmt.Errorf("fleet: function %q has non-positive MemoryMB", fn.Name)
		}
		if !sort.SliceIsSorted(fn.Arrivals, func(a, b int) bool { return fn.Arrivals[a] < fn.Arrivals[b] }) {
			return fmt.Errorf("fleet: function %q has unsorted arrivals", fn.Name)
		}
	}
	return nil
}

// Replay runs the sharded replay and returns the merged result. fns must
// be in corpus order (ascending ID is conventional; what matters is that
// the caller presents the same order every run — the slice order IS the
// fold order).
func Replay(cfg Config, fns []Function) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(&cfg, fns); err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		cc := *cfg.Chaos
		if cc.Seed == 0 {
			cc.Seed = cfg.Seed
		}
		if cc.Pricing == (faas.Pricing{}) {
			cc.Pricing = cfg.Pricing
		}
		eng, err := chaos.NewEngine(cc)
		if err != nil {
			return nil, err
		}
		cfg.chaosEngine = eng
	}
	// Pre-apply SLO defaults once: FoldSample needs the final parameters
	// to route per-SLO bad series, and EvaluateSLOs applies the same
	// idempotent defaults again.
	slos := make([]monitor.SLO, 0, len(cfg.SLOs))
	for _, def := range cfg.SLOs {
		slos = append(slos, def.WithDefaults(cfg.Resolution))
	}
	cfg.SLOs = slos

	n := len(fns)
	blocks := cfg.Blocks
	if blocks > n {
		blocks = n
	}
	if blocks < 1 {
		blocks = 1
	}
	workers := cfg.Workers
	if workers > blocks {
		workers = blocks
	}

	// Contiguous ID-ordered block ranges: block b replays fns[b*n/B,
	// (b+1)*n/B). The partition depends only on (n, Blocks), never on
	// Workers.
	parts := make([]*partial, blocks)
	done := make([]chan struct{}, blocks)
	for b := range done {
		done[b] = make(chan struct{})
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for b := range jobs {
				p := newPartial(&cfg)
				lo, hi := b*n/blocks, (b+1)*n/blocks
				for i := lo; i < hi; i++ {
					replayFunction(&cfg, &fns[i], p)
				}
				// Recording rules run here, on the worker, while the
				// block's shard is still private: each shard sweeps the
				// boundaries its own block reached, and the per-shard rule
				// series then merge window-wise like any other series.
				// Rule bodies are restricted to the distributive fragment
				// (query.ParseRules), so the merged series equals the
				// global rule value — and the sweep depends only on the
				// block partition, never on the worker count.
				if len(cfg.Rules) > 0 && !cfg.DisableTelemetry {
					query.EvalRules(p.store, cfg.Rules, p.latest)
				}
				parts[b] = p
				close(done[b])
			}
		}()
	}
	go func() {
		for b := 0; b < blocks; b++ {
			jobs <- b
		}
		close(jobs)
	}()

	// Fold shards in block-index order as they complete, releasing each
	// one immediately — live telemetry is bounded by the merged result
	// plus the shards still in flight, regardless of invocation volume.
	final := newPartial(&cfg)
	for b := 0; b < blocks; b++ {
		<-done[b]
		if err := final.merge(parts[b]); err != nil {
			return nil, err
		}
		parts[b] = nil
		if cfg.blockDone != nil {
			cfg.blockDone(b + 1)
		}
	}

	res := &Result{
		Functions:   n,
		Workers:     workers,
		Blocks:      blocks,
		Period:      cfg.Period,
		Resolution:  cfg.Resolution,
		KeepAlive:   cfg.KeepAlive,
		Seed:        cfg.Seed,
		Invocations: final.invocations,
		ColdStarts:  final.coldStarts,
		Errors:      final.errors,
		PeakLive:    final.peakLive,
		Latest:      final.latest,
		SLOs:        cfg.SLOs,
		Store:       final.store,
		Ledger:      final.ledger,
		Arms:        final.arms,
		Archetypes:  final.arch,
		Registry:    final.reg,
		Latency:     final.hist,
		ArmFns:      final.armFns,
		topK:        cfg.TopSpenders,
	}
	if !cfg.DisableTelemetry {
		res.Alerts, res.FireCounts = monitor.EvaluateSLOs(final.store, cfg.SLOs, final.latest)
		if cfg.chaosEngine != nil {
			res.Chaos = chaos.BuildScorecard(cfg.chaosEngine, final.store,
				final.latest, final.chaosArms, final.armFns)
		}
		if cfg.DashboardEvery > 0 {
			res.Frames = renderFrames(&cfg, final, res.Alerts)
		}
		if final.ex != nil {
			res.Slowest = final.ex.slowest.sorted()
			res.Priciest = final.ex.priciest.sorted()
			res.Sampled = final.ex.sampled.sorted()
		}
	}
	return res, nil
}
