package fleet

import (
	"time"

	"repro/internal/chaos"
	"repro/internal/obs/monitor"
	"repro/internal/trace"
)

// replayChaosFunction is replayFunction's gated variant: arrivals pass
// through the chaos engine's admission loop before reaching the pool,
// served requests take their phase durations (and billing) from the
// engine's outcome instead of the member's static parameters, and churn
// waves flush the member's pool instances. Dropped arrivals fold a failed
// sample (no cost, no ledger row — the ledgers attribute dollars, and a
// drop bills nothing) plus the chaos.* series the scorecard windows over.
//
// Determinism: the engine's per-function state is driven sequentially by
// this function in arrival order, every chaos decision is a pure hash of
// (seed, function, sequence, purpose), and every accumulator below is the
// same kind the ungated path uses — so the worker-count byte-identity
// argument carries over unchanged.
func replayChaosFunction(cfg *Config, fn *Function, p *partial) {
	st := cfg.chaosEngine.Function(chaos.FnView{
		ID:           fn.ID,
		Arm:          fn.Arm,
		ColdInit:     fn.ColdInit,
		Exec:         fn.Exec,
		FallbackInit: fn.FallbackInit,
		MemoryMB:     fn.MemoryMB,
	})
	as := p.chaosArm(fn.Arm)
	next := fn.arrivalSource(cfg.Period)
	var seq uint64
	fnKey := exemplarFnKey(cfg.Seed, fn.ID)
	var armNames *monitor.SeriesNames
	if cfg.LabelSeries && !cfg.DisableTelemetry && fn.Arm != "" {
		names := monitor.NamedSeries(monitor.Label{Key: "arm", Val: fn.Arm})
		armNames = &names
	}

	gate := trace.PoolGate{
		Admit: func(at time.Duration) bool {
			as.Demand++
			admitted := st.Admit(at)
			if !cfg.DisableTelemetry {
				p.store.Record(chaos.SeriesDemand, at, 1)
			}
			if admitted {
				return true
			}
			d := st.Drop()
			switch d.Class {
			case "shed":
				as.Shed++
			case "unavailable":
				as.Unavailable++
			default:
				as.ThrottledDrops++
			}
			as.Retries += uint64(d.Retries)
			as.RetriesDenied += uint64(d.RetriesDenied)
			as.ThrottledAttempts += uint64(d.ThrottledAttempts)
			if d.Class != "shed" {
				p.errors++
			}
			end := at + d.E2E
			if end > p.latest {
				p.latest = end
			}
			if cfg.DisableTelemetry {
				return false
			}
			if d.Class == "shed" {
				p.store.Record(chaos.SeriesShed, at, 1)
			} else {
				p.store.Record(chaos.SeriesBad, at, 1)
			}
			if d.ThrottledAttempts > 0 {
				p.store.Record(chaos.SeriesThrottled, at, float64(d.ThrottledAttempts))
			}
			if d.RetriesDenied > 0 {
				p.store.Record(chaos.SeriesRetryDenied, at, float64(d.RetriesDenied))
			}
			s := monitor.Sample{
				Function: fn.Name,
				Class:    d.Class,
				E2E:      d.E2E,
				MemoryMB: fn.MemoryMB,
			}
			monitor.FoldSample(p.store, end, s, cfg.SLOs)
			if cfg.LabelSeries && armNames != nil {
				monitor.FoldSampleInto(p.store, end, s, *armNames)
			}
			return false
		},
		Busy:  st.Serve,
		Flush: st.FlushCut,
	}

	res := trace.SimulatePoolGated(next, fn.Exec, cfg.KeepAlive, gate, func(ev trace.PoolEvent) {
		out := st.Outcome()
		as.Served++
		as.Retries += uint64(out.Retries)
		as.RetriesDenied += uint64(out.RetriesDenied)
		as.ThrottledAttempts += uint64(out.ThrottledAttempts)
		if out.Fallback {
			as.Fallbacks++
		}
		if out.Routed {
			as.Routed++
		}
		if out.BreakerOpened {
			as.BreakerOpens++
		}
		if out.Hedged {
			as.Hedges++
			if out.HedgeWon {
				as.HedgeWins++
			}
		}
		as.CostUSD += out.CostUSD
		if out.Brownout {
			as.BrownoutServed++
			as.BrownoutCostUSD += out.CostUSD
		}

		at := ev.At + out.E2E
		p.invocations++
		if ev.Cold {
			p.coldStarts++
		}
		if at > p.latest {
			p.latest = at
		}
		if cfg.DisableTelemetry {
			seq++
			return
		}
		s := monitor.Sample{
			Function:   fn.Name,
			Cold:       ev.Cold,
			Class:      "ok",
			Init:       out.Init,
			Exec:       out.Exec,
			E2E:        out.E2E,
			BilledInit: out.BilledInit,
			BilledExec: out.BilledExec,
			Billed:     out.Billed,
			MemoryMB:   fn.MemoryMB,
			CostUSD:    out.CostUSD,
		}
		monitor.FoldSample(p.store, at, s, cfg.SLOs)
		if cfg.LabelSeries {
			if armNames != nil {
				monitor.FoldSampleInto(p.store, at, s, *armNames)
			}
			if s.Billed > 0 && s.CostUSD > 0 {
				if s.BilledInit > 0 {
					p.store.Record(costInitSeries, at, s.CostUSD*float64(s.BilledInit)/float64(s.Billed))
				}
				if s.BilledExec > 0 {
					p.store.Record(costExecSeries, at, s.CostUSD*float64(s.BilledExec)/float64(s.Billed))
				}
			}
		}
		p.store.Record(chaos.SeriesServed, at, out.E2E.Seconds())
		if out.ThrottledAttempts > 0 {
			p.store.Record(chaos.SeriesThrottled, at, float64(out.ThrottledAttempts))
		}
		if out.RetriesDenied > 0 {
			p.store.Record(chaos.SeriesRetryDenied, at, float64(out.RetriesDenied))
		}
		if out.Fallback {
			p.store.Record(chaos.SeriesFallback, at, 1)
		}
		if out.Hedged {
			p.store.Record(chaos.SeriesHedge, at, 1)
			if out.HedgeWon {
				p.store.Record(chaos.SeriesHedgeWin, at, 1)
			}
		}
		if out.BreakerOpened {
			p.store.Record(chaos.SeriesBreakerOpen, at, 1)
		}
		p.ledger.Record(s)
		if fn.Arm != "" {
			armed := s
			armed.Function = fn.Arm
			p.arms.Record(armed)
			if fn.Archetype != "" {
				armed.Function = fn.Archetype + "/" + fn.Arm
				p.arch.Record(armed)
			}
		}
		p.hist.Observe(s.E2E.Seconds())
		p.reg.Inc("fleet.invocations", 1)
		if ev.Cold {
			p.reg.Inc("fleet.cold_starts", 1)
		}
		key := exemplarSampleKey(fnKey, seq)
		p.ex.offer(Exemplar{
			Function:  fn.Name,
			Archetype: fn.Archetype,
			Arm:       fn.Arm,
			At:        at,
			Init:      out.Init,
			E2E:       out.E2E,
			CostUSD:   s.CostUSD,
			Cold:      ev.Cold,
			seq:       seq,
			key:       key,
			span:      exemplarSpanKey(key),
		})
		seq++
	})
	if res.MaxInstances > p.peakLive {
		p.peakLive = res.MaxInstances
	}
	if fn.Arm != "" {
		p.armFns[fn.Arm]++
	}
}
