package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/obs/query"
	"repro/internal/trace"
)

// testPopulation builds a small heavy-tailed population without touching
// the appcorpus (cheap archetypes keep the unit tests fast).
func testArchetypes() []Archetype {
	return []Archetype{
		{Name: "tiny", InitOriginal: 300 * time.Millisecond, InitDebloated: 80 * time.Millisecond,
			Exec: 40 * time.Millisecond, MemOriginalMB: 256, MemDebloatedMB: 128},
		{Name: "medium", InitOriginal: 1200 * time.Millisecond, InitDebloated: 300 * time.Millisecond,
			Exec: 200 * time.Millisecond, MemOriginalMB: 512, MemDebloatedMB: 256},
		{Name: "heavy", InitOriginal: 4 * time.Second, InitDebloated: 900 * time.Millisecond,
			Exec: 900 * time.Millisecond, MemOriginalMB: 1024, MemDebloatedMB: 512},
	}
}

func testConfig(workers int) Config {
	rules, err := query.ParseRules(`
		fleet:cost_usd:sum5m = sum(cost.usd[5m])
		fleet:req:rate1m = rate(req.total[1m])
		fleet:cost_cold = sum(cost.usd[5m]) - count(req.cold[5m])
	`)
	if err != nil {
		panic(err)
	}
	return Config{
		Workers:        workers,
		Blocks:         16,
		Period:         6 * time.Hour,
		Resolution:     time.Minute,
		KeepAlive:      10 * time.Minute,
		DashboardEvery: time.Hour,
		Seed:           42,
		LabelSeries:    true,
		Rules:          rules,
		SLOs: []monitor.SLO{
			{Name: "cold-fraction", Kind: monitor.KindColdFraction, Budget: 0.25},
			{Name: "cost-burn", Kind: monitor.KindCostRate, BudgetUSD: 0.02},
		},
	}
}

func artifacts(t *testing.T, r *Result) map[string]string {
	t.Helper()
	e := r.QueryEngine()
	var queries strings.Builder
	for _, q := range []string{
		"cost.usd / req.total",
		"fleet:cost_usd:sum5m",
		`sum(cost.usd{phase="init"}[1h]) / sum(cost.usd[1h])`,
		`rate(req.total{arm="debloated"}[30m])`,
	} {
		out, err := e.InstantJSON(q, -1)
		if err != nil {
			t.Fatalf("InstantJSON(%q): %v", q, err)
		}
		queries.WriteString(out + "\n")
	}
	rng, err := e.RangeJSON("fleet:req:rate1m", 0, -1, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	queries.WriteString(rng + "\n")
	return map[string]string{
		"render":      r.Render(),
		"openmetrics": string(r.OpenMetrics()),
		"alertlog":    r.AlertLog(),
		"dashboard":   r.Dashboard(),
		"ledger":      r.Ledger.RenderTable(),
		"queries":     queries.String(),
	}
}

// TestReplayByteIdenticalAcrossWorkers is the engine's core contract:
// every artifact — report, exposition, alert log, dashboard, per-function
// ledger, flamegraph span tree — is byte-identical at workers 1, 2, and 8.
func TestReplayByteIdenticalAcrossWorkers(t *testing.T) {
	pop := GeneratePopulation(PopConfig{
		Functions: 700, Period: 6 * time.Hour, Seed: 3,
		DebloatedFraction: 0.5, RateMedian: 30, RateSigma: 1.8, RateCap: 20000,
	}, testArchetypes())

	var base map[string]string
	var baseSpans string
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig(workers)
		res, err := Replay(cfg, pop)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Invocations == 0 {
			t.Fatalf("workers=%d: no invocations", workers)
		}
		got := artifacts(t, res)
		tr := obs.New()
		res.EmitSpans(tr)
		spans := renderSpans(tr.Roots(), 0)
		if base == nil {
			base, baseSpans = got, spans
			continue
		}
		for name, want := range base {
			if got[name] != want {
				t.Errorf("workers=%d: %s differs from workers=1\n--- workers=1\n%s\n--- workers=%d\n%s",
					workers, name, clip(want), workers, clip(got[name]))
			}
		}
		if spans != baseSpans {
			t.Errorf("workers=%d: span tree differs\n%s\nvs\n%s", workers, baseSpans, spans)
		}
	}
}

func renderSpans(spans []*obs.Span, depth int) string {
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "%*s%s [%d,%d] id=%s\n", depth*2, "", s.Name, s.Start, s.End, s.ID)
		b.WriteString(renderSpans(s.Children, depth+1))
	}
	return b.String()
}

// TestExemplarSpanResolves closes the loop the exemplars exist for: the
// span ID carried by an OpenMetrics exemplar annotation must resolve, via
// FindSpan on a tracer that received EmitSpans, to a real span in the
// trace tree (and survive the Chrome trace export).
func TestExemplarSpanResolves(t *testing.T) {
	pop := GeneratePopulation(PopConfig{
		Functions: 200, Period: 2 * time.Hour, Seed: 7,
		DebloatedFraction: 0.5, RateMedian: 30, RateSigma: 1.8, RateCap: 20000,
	}, testArchetypes())
	res, err := Replay(testConfig(4), pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowest) == 0 {
		t.Fatal("no exemplars kept")
	}

	// The exposition carries at least one exemplar annotation with the
	// slowest invocation's span ID.
	om := string(res.OpenMetrics())
	want := `span_id="` + res.Slowest[0].SpanID() + `"`
	if !strings.Contains(om, want) {
		t.Fatalf("exposition lacks exemplar %s:\n%s", want, clip(om))
	}

	tr := obs.New()
	res.EmitSpans(tr)
	for _, e := range []Exemplar{res.Slowest[0], res.Priciest[0], res.Sampled[0]} {
		s := tr.FindSpan(e.SpanID())
		if s == nil {
			t.Fatalf("span %s (function %s) not found in trace", e.SpanID(), e.Function)
		}
		if s.Name != e.Function || s.End != e.At || s.Dur() != e.E2E {
			t.Errorf("span %s = %s [%v,%v], want %s ending %v spanning %v",
				e.SpanID(), s.Name, s.Start, s.End, e.Function, e.At, e.E2E)
		}
		if e.Init > 0 && (len(s.Children) != 2 || s.Children[0].Name != "init" ||
			s.Children[0].Dur() != e.Init) {
			t.Errorf("span %s children = %v, want init/exec phases", e.SpanID(), s.Children)
		}
	}

	// And the ID survives the Chrome trace export.
	chromeBytes, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(chromeBytes), `"span_id":"`+res.Slowest[0].SpanID()+`"`) {
		t.Error("chrome trace export lost the exemplar span ID")
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "..."
	}
	return s
}

// TestReplayFullScale is the acceptance-scale run: 10k functions, over a
// million invocations, byte-identical across worker counts, replayed in
// seconds. Skipped under -short.
func TestReplayFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale replay skipped under -short")
	}
	pop := GeneratePopulation(DefaultPopConfig(), nil)
	if len(pop) != 10000 {
		t.Fatalf("population size = %d, want 10000", len(pop))
	}
	cfg := Config{
		Period:         24 * time.Hour,
		Resolution:     time.Minute,
		KeepAlive:      15 * time.Minute,
		DashboardEvery: 4 * time.Hour,
		Seed:           1,
		SLOs: []monitor.SLO{
			{Name: "cold-fraction", Kind: monitor.KindColdFraction, Budget: 0.30},
		},
	}
	var base map[string]string
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		start := time.Now()
		res, err := Replay(cfg, pop)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		elapsed := time.Since(start)
		t.Logf("workers=%d: %d invocations in %s (%.0f inv/s)",
			workers, res.Invocations, elapsed.Round(time.Millisecond),
			float64(res.Invocations)/elapsed.Seconds())
		if res.Invocations < 1_000_000 {
			t.Fatalf("workers=%d: %d invocations, want >= 1M", workers, res.Invocations)
		}
		if elapsed > 30*time.Second {
			t.Errorf("workers=%d: replay took %s, want seconds", workers, elapsed)
		}
		got := artifacts(t, res)
		if base == nil {
			base = got
			continue
		}
		for name, want := range base {
			if got[name] != want {
				t.Errorf("workers=%d: %s differs from workers=1", workers, name)
			}
		}
	}
}

// TestReplayMatchesLiveMonitor checks the sharded engine against the
// reference implementation: every pool event globally sorted by
// (completion, function ID) and fed to one live Monitor.
func TestReplayMatchesLiveMonitor(t *testing.T) {
	pricing := faas.AWSPricing()
	gen := trace.Generate(trace.GenConfig{Functions: 24, Period: 2 * time.Hour, Seed: 9})
	keepAlive := 12 * time.Minute
	coldInit := 350 * time.Millisecond
	slos := []monitor.SLO{{Name: "cold-fraction", Kind: monitor.KindColdFraction, Budget: 0.30}}

	fns := make([]Function, 0, len(gen.Functions))
	for i := range gen.Functions {
		f := &gen.Functions[i]
		fns = append(fns, Function{
			ID:       f.ID,
			Name:     fmt.Sprintf("fn-%03d", f.ID),
			ColdInit: coldInit,
			Exec:     time.Duration(f.DurationMS * float64(time.Millisecond)),
			MemoryMB: pricing.ConfigureMemory(f.MemoryMB),
			Arrivals: f.Arrivals,
		})
	}

	res, err := Replay(Config{
		Workers: 4, Blocks: 5, Period: 2 * time.Hour,
		Resolution: time.Minute, Windows: monitor.DefaultWindows,
		KeepAlive: keepAlive, Pricing: pricing, SLOs: slos,
	}, fns)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: global (completion, ID) order through one live Monitor.
	type event struct {
		at time.Duration
		id int
		s  monitor.Sample
	}
	var events []event
	for i := range fns {
		fn := &fns[i]
		trace.SimulatePoolObserved(fn.Arrivals, fn.Exec, keepAlive, func(ev trace.PoolEvent) {
			var init time.Duration
			if ev.Cold {
				init = coldInit
			}
			e2e := init + fn.Exec
			billed := pricing.BillDuration(e2e)
			events = append(events, event{at: ev.At + e2e, id: fn.ID, s: monitor.Sample{
				Function: fn.Name, Cold: ev.Cold, Class: "ok",
				Init: init, Exec: fn.Exec, E2E: e2e,
				BilledInit: init, BilledExec: fn.Exec, Billed: billed,
				MemoryMB: fn.MemoryMB, CostUSD: pricing.Cost(billed, fn.MemoryMB),
			}})
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].id < events[j].id
	})
	mon := monitor.New(monitor.Config{Resolution: time.Minute, SLOs: slos})
	for _, ev := range events {
		mon.Observe(ev.at, ev.s)
	}
	mon.Finish()

	if got, want := res.AlertLog(), mon.AlertLog(); got != want {
		t.Errorf("alert log differs:\nengine:\n%s\nmonitor:\n%s", got, want)
	}
	if got, want := fmt.Sprint(res.FireCounts), fmt.Sprint(mon.FireCounts()); got != want {
		t.Errorf("fire counts differ: %s vs %s", got, want)
	}
	// Per-function phases fold in the same (arrival) order either way, so
	// even the dollar sums are bit-identical.
	if got, want := res.Ledger.RenderTable(), mon.Ledger().RenderTable(); got != want {
		t.Errorf("ledger differs:\n%s\nvs\n%s", got, want)
	}
	if got, want := res.Invocations, uint64(len(events)); got != want {
		t.Errorf("invocations = %d, want %d", got, want)
	}
	// Store window counts are integers — exact. Sums may differ in fold
	// order from the time-ordered reference, so allow relative epsilon.
	for _, name := range []string{"req.total", "req.cold", "cost.usd"} {
		g, w := res.Store.Total(name), mon.Store().Total(name)
		if g.Count != w.Count || g.Max != w.Max {
			t.Errorf("series %s: count/max %v/%v, want %v/%v", name, g.Count, g.Max, w.Count, w.Max)
		}
		if diff := math.Abs(g.Sum - w.Sum); diff > 1e-9*math.Abs(w.Sum) {
			t.Errorf("series %s: sum %v, want %v", name, g.Sum, w.Sum)
		}
	}
}

func TestGeneratePopulationDeterministicAndShaped(t *testing.T) {
	pc := PopConfig{Functions: 500, Period: 24 * time.Hour, Seed: 11,
		DebloatedFraction: 0.5, RateMedian: 12, RateSigma: 2.2, RateCap: 40000}
	a := GeneratePopulation(pc, testArchetypes())
	b := GeneratePopulation(pc, testArchetypes())
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same PopConfig produced different populations")
	}
	arms := map[string]int{}
	archs := map[string]bool{}
	var totalRate float64
	for i, fn := range a {
		if fn.ID != i {
			t.Fatalf("fn %d has ID %d", i, fn.ID)
		}
		arms[fn.Arm]++
		archs[fn.Archetype] = true
		if fn.Rate > pc.RateCap {
			t.Fatalf("fn %d rate %.1f exceeds cap", i, fn.Rate)
		}
		if fn.Exec <= 0 || fn.ColdInit <= 0 || fn.MemoryMB < 128 {
			t.Fatalf("fn %d has degenerate parameters: %+v", i, fn)
		}
		totalRate += fn.Rate
	}
	if arms["original"] == 0 || arms["debloated"] == 0 {
		t.Fatalf("arm split degenerate: %v", arms)
	}
	if len(archs) < 2 {
		t.Fatalf("only %d archetypes drawn", len(archs))
	}
	if totalRate < float64(pc.Functions) {
		t.Fatalf("total expected rate %.0f implausibly low", totalRate)
	}

	// A different seed reshapes the population.
	pc2 := pc
	pc2.Seed = 12
	if fmt.Sprint(GeneratePopulation(pc2, testArchetypes())) == fmt.Sprint(a) {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestExemplarSetsOrderIndependent(t *testing.T) {
	mk := func(i int) Exemplar {
		key := splitmix64(uint64(i) * 0x9E3779B97F4A7C15)
		return Exemplar{
			Function: fmt.Sprintf("fn-%03d", i%37),
			At:       time.Duration(i) * time.Second,
			E2E:      time.Duration(key%5000) * time.Millisecond,
			CostUSD:  float64(key%977) * 1e-9,
			seq:      uint64(i),
			key:      key,
		}
	}
	const n = 4000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	fwd, shuf := newExemplars(7, 1), newExemplars(7, 1)
	for i := 0; i < n; i++ {
		fwd.offer(mk(i))
		shuf.offer(mk(perm[i]))
	}
	// A third copy built by merging two halves.
	left, right := newExemplars(7, 1), newExemplars(7, 1)
	for i := 0; i < n/2; i++ {
		left.offer(mk(i))
	}
	for i := n / 2; i < n; i++ {
		right.offer(mk(i))
	}
	left.merge(right)
	for _, pair := range []struct {
		name string
		a, b []Exemplar
	}{
		{"shuffled/slowest", fwd.slowest.sorted(), shuf.slowest.sorted()},
		{"shuffled/priciest", fwd.priciest.sorted(), shuf.priciest.sorted()},
		{"shuffled/sampled", fwd.sampled.sorted(), shuf.sampled.sorted()},
		{"merged/slowest", fwd.slowest.sorted(), left.slowest.sorted()},
		{"merged/priciest", fwd.priciest.sorted(), left.priciest.sorted()},
		{"merged/sampled", fwd.sampled.sorted(), left.sampled.sorted()},
	} {
		if fmt.Sprint(pair.a) != fmt.Sprint(pair.b) {
			t.Errorf("%s: selection depends on offer order:\n%v\nvs\n%v", pair.name, pair.a, pair.b)
		}
	}
	if len(fwd.slowest.sorted()) != 7 {
		t.Fatalf("kept %d slowest exemplars, want 7", len(fwd.slowest.sorted()))
	}
}

func TestTopSpendersMatchesFullSort(t *testing.T) {
	pop := GeneratePopulation(PopConfig{
		Functions: 120, Period: 2 * time.Hour, Seed: 8,
		DebloatedFraction: 0.4, RateMedian: 40, RateSigma: 1.5, RateCap: 5000,
	}, testArchetypes())
	res, err := Replay(Config{Workers: 3, Blocks: 7, Period: 2 * time.Hour}, pop)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		name string
		cost float64
	}
	var rows []row
	for _, name := range res.Ledger.Functions() {
		rows = append(rows, row{name, res.Ledger.Function(name).CostUSD()})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].cost != rows[j].cost {
			return rows[i].cost > rows[j].cost
		}
		return rows[i].name < rows[j].name
	})
	got := res.TopSpenders(9)
	if len(got) != 9 {
		t.Fatalf("got %d spenders, want 9", len(got))
	}
	for i, sp := range got {
		if sp.Function != rows[i].name {
			t.Fatalf("spender %d = %s, full sort says %s", i, sp.Function, rows[i].name)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	ok := Function{ID: 0, Name: "f", Exec: time.Millisecond, MemoryMB: 128,
		Arrivals: []time.Duration{1, 2, 3}}
	cases := []struct {
		name string
		cfg  Config
		fns  []Function
	}{
		{"no name", Config{}, []Function{func() Function { f := ok; f.Name = ""; return f }()}},
		{"bad exec", Config{}, []Function{func() Function { f := ok; f.Exec = 0; return f }()}},
		{"bad memory", Config{}, []Function{func() Function { f := ok; f.MemoryMB = 0; return f }()}},
		{"unsorted", Config{}, []Function{func() Function {
			f := ok
			f.Arrivals = []time.Duration{3, 1}
			return f
		}()}},
		{"stream without period", Config{}, []Function{{ID: 0, Name: "f", Exec: time.Millisecond, MemoryMB: 128, Rate: 5}}},
	}
	for _, tc := range cases {
		if _, err := Replay(tc.cfg, tc.fns); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}

	// Telemetry-disabled replay still counts.
	res, err := Replay(Config{DisableTelemetry: true}, []Function{ok})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invocations != 3 || res.Store != nil || res.CostUSD() != 0 {
		t.Fatalf("telemetry-off replay: %+v", res)
	}
}
