package debloat

import (
	"strings"
	"testing"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
)

// TestFuzzFindsAdvancedModeDivergence: the corpus Table-4 apps have a
// rarely-used branch that dynamically accesses an attribute DD removes
// (invisible to static protection). Differential fuzzing with the
// source-string dictionary must surface the divergence.
func TestFuzzFindsAdvancedModeDivergence(t *testing.T) {
	app := appcorpus.MustBuild("dna-visualization")
	res, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := Fuzz(res.Original, res.App, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Trials == 0 {
		t.Fatal("fuzzer executed no trials")
	}
	found := false
	for _, tc := range report.Failing {
		if v, ok := tc.Event["mode"]; ok && v == "advanced" {
			found = true
		}
	}
	if !found {
		t.Errorf("fuzzer missed the advanced-mode divergence; failing=%d", len(report.Failing))
	}
}

// TestFuzzCleanOnEquivalentApps: fuzzing an app against itself never
// reports divergences.
func TestFuzzCleanOnEquivalentApps(t *testing.T) {
	app := appcorpus.MustBuild("markdown")
	report, err := Fuzz(app, app.Clone(), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failing) != 0 {
		t.Errorf("self-fuzz reported %d divergences", len(report.Failing))
	}
}

// TestRerunRepairsFallbackInput implements the paper's §5.4 loop: fallback
// (or fuzzing) finds a failing input → add it to the oracle → rerun λ-trim
// → the new optimized app handles the input natively.
func TestRerunRepairsFallbackInput(t *testing.T) {
	app := appcorpus.MustBuild("dna-visualization")
	first, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// The advanced-mode input diverges on the first optimized app.
	advanced := appspec.TestCase{Name: "advanced", Event: map[string]any{
		"dna": "ATGC", "mode": "advanced",
	}}
	if executeForFuzz(first.Original, advanced.Event) == executeForFuzz(first.App, advanced.Event) {
		t.Fatal("expected the advanced input to diverge before the rerun")
	}

	second, err := Rerun(first, []appspec.TestCase{advanced}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if executeForFuzz(second.Original, advanced.Event) != executeForFuzz(second.App, advanced.Event) {
		t.Error("rerun did not repair the advanced input")
	}

	// The repaired image must retain the dynamically-needed attribute.
	src, _ := second.App.Image.Read("site-packages/squiggle/__init__.py")
	if !strings.Contains(src, "pad_0000") {
		t.Error("rerun removed the attribute the new oracle case needs")
	}

	// And the rerun must still debloat: other redundant attributes stay
	// removed.
	if second.TotalRemoved() == 0 {
		t.Error("rerun removed nothing")
	}
}

// TestRerunFastPathReusesPriorReductions: with an unchanged oracle, every
// previously reduced module revalidates instead of re-running DD, so the
// rerun needs far fewer oracle executions.
func TestRerunFastPathReusesPriorReductions(t *testing.T) {
	app := appcorpus.MustBuild("lightgbm")
	first, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Rerun(first, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if second.OracleRuns*3 > first.OracleRuns {
		t.Errorf("rerun used %d oracle runs vs %d initially — fast path not engaged",
			second.OracleRuns, first.OracleRuns)
	}
	if second.TotalRemoved() < first.TotalRemoved() {
		t.Errorf("rerun lost reductions: %d vs %d", second.TotalRemoved(), first.TotalRemoved())
	}
}

// TestParallelDebloatMatchesSequential: intra-module parallel DD (the §9
// future-work feature) produces byte-identical optimized images.
func TestParallelDebloatMatchesSequential(t *testing.T) {
	seqRes, err := Run(appcorpus.MustBuild("lightgbm"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	parCfg := DefaultConfig()
	parCfg.Workers = 4
	parRes, err := Run(appcorpus.MustBuild("lightgbm"), parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.TotalRemoved() != parRes.TotalRemoved() {
		t.Errorf("removed attrs differ: seq=%d par=%d", seqRes.TotalRemoved(), parRes.TotalRemoved())
	}
	for _, path := range seqRes.App.Image.List() {
		seqSrc, _ := seqRes.App.Image.Read(path)
		parSrc, err := parRes.App.Image.Read(path)
		if err != nil {
			t.Fatalf("parallel image missing %s", path)
		}
		if seqSrc != parSrc {
			t.Errorf("image diverges at %s", path)
		}
	}
}
