package debloat

import (
	"strings"
	"testing"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// Failure-injection coverage: the pipeline must fail loudly, not produce a
// broken "optimized" app, when its inputs are unusable.

func TestRunRejectsEmptyOracle(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", "def handler(event, context):\n    return 1\n")
	app := &appspec.App{Name: "x", Image: fs, Entry: "handler", Handler: "handler"}
	if _, err := Run(app, DefaultConfig()); err == nil {
		t.Error("empty oracle must be rejected")
	}
}

func TestRunRejectsFailingOracle(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
def handler(event, context):
    raise ValueError("always broken")
`)
	app := &appspec.App{Name: "x", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{}}}}
	_, err := Run(app, DefaultConfig())
	if err == nil {
		t.Fatal("an app failing its own oracle must be rejected")
	}
	if !strings.Contains(err.Error(), "fails its own oracle") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRunRejectsMissingHandler(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", "x = 1\n")
	app := &appspec.App{Name: "x", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{}}}}
	if _, err := Run(app, DefaultConfig()); err == nil {
		t.Error("missing handler must be rejected")
	}
}

func TestRunRejectsMissingEntry(t *testing.T) {
	app := &appspec.App{Name: "x", Image: vfs.New(), Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{}}}}
	if _, err := Run(app, DefaultConfig()); err == nil {
		t.Error("missing entry module must be rejected")
	}
}

func TestModulesWithoutSourceAreSkipped(t *testing.T) {
	// An app whose profiler candidates include a module that does not live
	// in site-packages (the entry itself) — debloating must skip it with a
	// reason rather than fail.
	app := torchExampleApp()
	res, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Modules {
		if m.Module == "handler" && m.Skipped == "" {
			t.Error("application code must never be debloated")
		}
	}
}

func TestUnparseableLibraryIsSkippedNotFatal(t *testing.T) {
	app := torchExampleApp()
	// Inject a broken library that the app never imports but which sits in
	// site-packages; it cannot become a profiler candidate (never loaded),
	// so the run succeeds and leaves it untouched.
	app.Image.Write("site-packages/broken.py", "def oops(:\n")
	if _, err := Run(app, DefaultConfig()); err != nil {
		t.Fatalf("broken unrelated library should not break the pipeline: %v", err)
	}
}

func TestVerifyApp(t *testing.T) {
	good := torchExampleApp()
	if err := VerifyApp(good); err != nil {
		t.Errorf("good app failed verification: %v", err)
	}
	bad := torchExampleApp()
	bad.Image.Write("site-packages/torch/__init__.py", "raise RuntimeError(\"corrupt\")\n")
	if err := VerifyApp(bad); err == nil {
		t.Error("corrupted app passed verification")
	}
}

// TestOracleComparesRemoteJournal: removing an attribute that changes the
// app's external side effects must fail the oracle even when stdout and
// the return value are unchanged (§5.3: "serverless state and side effects
// are comprised of external calls to remote services"; the oracle
// intercepts and compares them).
//
// The library registers itself with a license server at import time. The
// app never references the involved attributes, so PyCG cannot protect
// them and DD will try to remove them; only the remote-call journal
// comparison keeps them alive. A sibling attribute with no side effect is
// removed, proving DD did consider this module.
func TestOracleComparesRemoteJournal(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    return lib.work(event.get("id", 0))
`)
	fs.Write("site-packages/lib/__init__.py", `
def _register():
    return remote_call("license-server", "register", {"product": "lib"})

_lease = _register()

def work(id):
    return id * 2

def unused_helper(x):
    return x
`)
	app := &appspec.App{Name: "audit", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t", Event: map[string]any{"id": 7}}}}

	res, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, _ := res.App.Image.Read("site-packages/lib/__init__.py")
	if !strings.Contains(src, "_register") || !strings.Contains(src, "_lease") {
		t.Errorf("import-time remote side effect was removed:\n%s", src)
	}
	if strings.Contains(src, "unused_helper") {
		t.Errorf("side-effect-free dead attribute survived:\n%s", src)
	}
}
