package debloat

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/appspec"
	"repro/internal/profiler"
	"repro/internal/pylang"
	"repro/internal/pyparser"
)

// Rerun implements the continuous debloating pipeline the paper sketches
// as future work (§9): when the fallback mechanism collects a failing
// input — or the function is updated — λ-trim re-runs with an extended
// oracle set, using the previous run's reductions to drive the new one
// efficiently. Each previously-reduced module is first revalidated as-is
// against the extended oracle (a handful of runs); only modules whose
// reductions no longer pass go through full Delta Debugging again.
func Rerun(prev *Result, newCases []appspec.TestCase, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	app := prev.Original.Clone()
	app.Oracle = append(app.Oracle, newCases...)

	report, err := analyzer.Analyze(app.Image, app.Entry, app.Handler)
	if err != nil {
		return nil, err
	}
	prof, err := profiler.Run(app.Image, app.Entry, profiler.Options{
		Scoring: cfg.Scoring, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	run, err := newRunner(app)
	if err != nil {
		return nil, err
	}

	// Index the previous run's accepted reductions by module.
	prevReduced := make(map[string]bool)
	for _, m := range prev.Modules {
		if m.Skipped == "" && len(m.Removed) > 0 {
			prevReduced[m.Module] = true
		}
	}

	res := &Result{Original: app, Report: report, Profile: prof}
	for _, mp := range prof.TopK(cfg.K) {
		name := mp.Name
		if prevReduced[name] {
			// Fast path: does the previous reduction still satisfy the
			// (extended) oracle?
			if candidate, ok := previousReduction(prev, name); ok && run.test(name, candidate) {
				run.overrides[name] = candidate
				mr := ModuleResult{Module: name}
				for _, m := range prev.Modules {
					if m.Module == name {
						mr = m
						break
					}
				}
				res.Modules = append(res.Modules, mr)
				continue
			}
		}
		// Slow path: full DD against the extended oracle.
		res.Modules = append(res.Modules, debloatModule(run, report, name, cfg))
	}

	optimized := app.Clone()
	for name, ast := range run.overrides {
		path, ok := moduleFile(app, name)
		if !ok {
			continue
		}
		optimized.Image.Write(path, pylang.Print(ast))
	}
	res.App = optimized
	res.DebloatTime = run.virtual
	res.OracleRuns = run.runs

	final, err := newRunner(optimized)
	if err != nil {
		return nil, fmt.Errorf("debloat: rerun output fails verification: %w", err)
	}
	for i := range final.golden {
		if final.golden[i].stdout != run.golden[i].stdout ||
			final.golden[i].result != run.golden[i].result {
			return nil, fmt.Errorf("debloat: rerun output diverges on oracle case %d", i)
		}
	}
	return res, nil
}

// previousReduction parses the prior optimized image's version of module.
func previousReduction(prev *Result, name string) (*pylang.Module, bool) {
	path, ok := moduleFile(prev.App, name)
	if !ok {
		return nil, false
	}
	src, err := prev.App.Image.Read(path)
	if err != nil {
		return nil, false
	}
	ast, perr := pyparser.Parse(name, src)
	if perr != nil {
		return nil, false
	}
	return ast, true
}
