package debloat

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/appspec"
	"repro/internal/dd"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/pylang"
	"repro/internal/pyparser"
	"repro/internal/pyruntime"
)

// Config parameterizes a debloating run. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// K is the number of top-ranked modules to debloat (paper default 20).
	K int
	// Scoring is the profiler ranking method (paper default Combined).
	Scoring profiler.Scoring
	// Seed drives the Random scoring ablation.
	Seed int64
	// Granularity selects attribute (default) or statement DD.
	Granularity Granularity
	// DisableCallGraph skips PyCG protection (ablation): every non-magic
	// attribute becomes a DD candidate.
	DisableCallGraph bool
	// Workers enables intra-module parallel DD (the paper's §9 future
	// work): each DD round evaluates its candidate subsets with up to
	// Workers concurrent oracle runs. 0 or 1 is sequential. Results are
	// identical to sequential DD (the round accepts the lowest-indexed
	// passing subset).
	Workers int
	// Tracer, when non-nil, records the pipeline as a span tree on the
	// debloating virtual timeline (profiling first, then accumulated
	// oracle time): analyze → profile → golden → per-module DD →
	// materialize → verify. Nil disables tracing with no behavioral
	// change.
	Tracer *obs.Tracer
	// Snapshots, when non-nil, is a shared content-addressed import
	// snapshot cache: oracle runs replay the recorded virtual cost and
	// namespace of untouched modules instead of re-interpreting them.
	// When nil (and DisableMemo is false) the run uses a private cache, so
	// memoization is on by default. Caching never changes any simulated
	// observable — virtual clocks, Stats, traces and results are
	// byte-identical with it on or off (DESIGN.md §9).
	Snapshots *pyruntime.SnapshotCache
	// ASTCache, when non-nil, shares a parse cache across runs (the suite
	// passes one cache for the whole corpus); nil uses a private cache.
	ASTCache *pyruntime.ASTCache
	// DisableMemo turns snapshot memoization off entirely (the uncached
	// arm of the golden determinism test and of the memo benchmarks).
	DisableMemo bool
	// Engine selects the runtime execution engine for every interpreter
	// the pipeline spawns (profiler, oracle runs, attribute loading). The
	// zero value resolves the process-wide default (compiled). Both
	// engines produce byte-identical simulated observables, so Results
	// are engine-independent (DESIGN.md §12); the knob exists for the
	// differential tests and the engine benchmark arms.
	Engine pyruntime.Engine
}

// DefaultConfig mirrors the paper's evaluation settings (§8: "we use K = 20
// and rank modules using their approximate marginal monetary cost").
func DefaultConfig() Config {
	return Config{K: 20, Scoring: profiler.Combined}
}

// ModuleResult reports the outcome of debloating one module.
type ModuleResult struct {
	Module      string
	File        string
	AttrsBefore int // namespace size before debloating
	AttrsAfter  int // namespace size after debloating
	Removed     []string
	DD          dd.Stats
	Skipped     string // non-empty reason when the module was not debloated
}

// Result is the outcome of a full debloating run.
type Result struct {
	// App is the optimized application (fresh image with rewritten
	// site-packages), deployable as-is.
	App *appspec.App
	// Original points back to the input application.
	Original *appspec.App
	// Modules holds per-module outcomes in debloating order.
	Modules []ModuleResult
	// DebloatTime is the simulated wall time of the debloating process
	// itself (dominated by repeated oracle executions, as in Table 3).
	DebloatTime time.Duration
	// OracleRuns counts isolated oracle executions.
	OracleRuns int
	// Report and Profile expose the upstream pipeline outputs.
	Report  *analyzer.Report
	Profile *profiler.Profile
}

// TotalRemoved sums removed attributes across modules.
func (r *Result) TotalRemoved() int {
	n := 0
	for _, m := range r.Modules {
		n += len(m.Removed)
	}
	return n
}

// VerifyApp checks that an app passes its own oracle set (every test case
// runs without raising). Used as a behaviour check for optimized images.
func VerifyApp(app *appspec.App) error {
	_, err := newRunner(app)
	return err
}

// Run executes the full λ-trim pipeline on app: static analysis, cost
// profiling, and per-module Delta Debugging, returning the optimized app.
func Run(app *appspec.App, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	snap := cfg.Snapshots
	if cfg.DisableMemo {
		snap = nil
	} else if snap == nil {
		snap = pyruntime.NewSnapshotCache()
	}
	astc := cfg.ASTCache
	if astc == nil {
		astc = pyruntime.NewASTCache()
	}
	memoBefore := snap.Stats()
	tr := cfg.Tracer
	root := tr.Start("debloat "+app.Name, "pipeline", 0)

	// Static analysis consumes no simulated time: a zero-duration span
	// marks the stage on the timeline.
	report, err := analyzer.Analyze(app.Image, app.Entry, app.Handler)
	if err != nil {
		tr.End(root, 0)
		return nil, err
	}
	tr.StartChild(root, "analyze", "pipeline", 0).Finish(0)

	prof, err := profiler.Run(app.Image, app.Entry, profiler.Options{
		Scoring: cfg.Scoring, Seed: cfg.Seed, Tracer: tr, Engine: cfg.Engine,
	})
	if err != nil {
		tr.End(root, 0)
		return nil, err
	}

	// Everything downstream of profiling rides the runner's virtual
	// clock, offset by the profiling time already spent.
	run, err := newTracedRunner(app, tr, prof.TotalTime, snap, astc, cfg.Engine)
	if err != nil {
		tr.End(root, prof.TotalTime)
		return nil, err
	}
	if tr != nil {
		tr.StartChild(root, "golden", "pipeline", prof.TotalTime).
			Add(obs.Int("cases", int64(len(app.Oracle)))).
			Finish(run.nowVirtual())
	}

	res := &Result{
		App:      nil,
		Original: app,
		Report:   report,
		Profile:  prof,
	}

	for _, mp := range prof.TopK(cfg.K) {
		mr := debloatModule(run, report, mp.Name, cfg)
		res.Modules = append(res.Modules, mr)
	}

	// Materialize the optimized image: print each accepted reduction back
	// to its file (the paper copies the rewritten __init__.py back into
	// site-packages before building the deployment container).
	matAt := run.nowVirtual()
	optimized := app.Clone()
	for name, ast := range run.overrides {
		path, ok := moduleFile(app, name)
		if !ok {
			continue
		}
		optimized.Image.Write(path, pylang.PrintCached(ast))
	}
	if tr != nil {
		tr.StartChild(root, "materialize", "pipeline", matAt).
			Add(obs.Int("rewritten", int64(len(run.overrides)))).
			Finish(matAt)
	}
	optimized.Name = app.Name
	res.App = optimized
	res.DebloatTime = run.virtual
	res.OracleRuns = run.runs

	// Final safety check: the optimized image (parsed from the printed
	// source, not the in-memory ASTs) must still pass the oracle. The
	// caches are shared: the rewritten modules hash to new keys while the
	// untouched library chain still replays.
	final, err := newTracedRunner(optimized, nil, 0, snap, astc, cfg.Engine)
	if err != nil {
		tr.End(root, matAt)
		return nil, fmt.Errorf("debloat: optimized app fails verification: %w", err)
	}
	if tr != nil {
		tr.StartChild(root, "verify", "pipeline", matAt).Finish(matAt + final.virtual)
	}
	for i := range final.golden {
		if final.golden[i].stdout != run.golden[i].stdout ||
			final.golden[i].result != run.golden[i].result {
			tr.End(root, matAt+final.virtual)
			return nil, fmt.Errorf("debloat: optimized app diverges on oracle case %d", i)
		}
	}
	if tr != nil {
		root.Add(
			obs.Int("oracle_runs", int64(res.OracleRuns)),
			obs.Int("removed_attrs", int64(res.TotalRemoved())),
			obs.DurationUS("debloat_us", res.DebloatTime),
		)
		tr.End(root, matAt+final.virtual)
		tr.Metrics().Inc("debloat.runs", 1)
		if snap != nil {
			// Real-clock observability only. With a suite-shared cache and
			// parallel scheduling these deltas are schedule-dependent; they
			// are excluded from the byte-identity invariant (DESIGN.md §9).
			memoAfter := snap.Stats()
			tr.Metrics().Inc("memo.snapshot.hits", memoAfter.Hits-memoBefore.Hits)
			tr.Metrics().Inc("memo.snapshot.misses", memoAfter.Misses-memoBefore.Misses)
		}
	}
	return res, nil
}

// debloatModule runs attribute-granularity DD over one module.
func debloatModule(run *runner, report *analyzer.Report, name string, cfg Config) ModuleResult {
	mr := ModuleResult{Module: name}

	// The module span is pushed on the tracer stack so the DD run's own
	// spans nest under it.
	sp := run.tr.Start("module "+name, "debloat", run.nowVirtual())
	defer func() {
		if run.tr == nil {
			return
		}
		sp.Add(
			obs.Int("candidates_removed", int64(len(mr.Removed))),
			obs.Int("oracle_tests", int64(mr.DD.Tests)),
		)
		if mr.Skipped != "" {
			sp.Add(obs.String("skipped", mr.Skipped))
		}
		run.tr.End(sp, run.nowVirtual())
		run.tr.Metrics().Inc("debloat.modules", 1)
		run.tr.Metrics().Inc("debloat.removed_attrs", int64(len(mr.Removed)))
		if mr.Skipped != "" {
			run.tr.Metrics().Inc("debloat.modules_skipped", 1)
		}
	}()

	path, ok := moduleFile(run.app, name)
	if !ok {
		mr.Skipped = "not a site-packages module"
		return mr
	}
	mr.File = path

	src, err := run.app.Image.Read(path)
	if err != nil {
		mr.Skipped = "source unavailable"
		return mr
	}
	ast, perr := pyparser.Parse(name, src)
	if perr != nil {
		mr.Skipped = "unparseable: " + perr.Error()
		return mr
	}
	// If a previous module's debloating already rewrote this module (it
	// can appear once per granularity arm), start from that.
	if prior, ok := run.overrides[name]; ok {
		ast = prior
	}

	// Step 1 (paper §6.3): load the module to access its attributes.
	attrs, ok := loadAttrs(run, name)
	if !ok {
		mr.Skipped = "module does not import standalone"
		return mr
	}
	mr.AttrsBefore = len(attrs)

	// Step 3: candidate set = attributes minus PyCG-protected minus magic,
	// and only those actually bound by a top-level statement (others are
	// not expressible as source removals).
	protected := report.Protected[name]
	if cfg.DisableCallGraph {
		protected = nil
	}
	prov := providers(ast.Body)
	var candidates []string
	for _, a := range attrs {
		if pyruntime.MagicAttrs[a] || protected[a] {
			continue
		}
		if _, bound := prov[a]; !bound {
			continue
		}
		candidates = append(candidates, a)
	}
	if len(candidates) == 0 {
		mr.Skipped = "no removable candidates"
		mr.AttrsAfter = mr.AttrsBefore
		return mr
	}

	if cfg.Granularity == StmtGranularity {
		mr = debloatModuleStmts(run, name, ast, candidates, mr, cfg)
		return mr
	}

	// Step 4: DD over the candidate attributes.
	oracle := func(keepAttrs []string) bool {
		removed := make(map[string]bool, len(candidates))
		for _, c := range candidates {
			removed[c] = true
		}
		for _, k := range keepAttrs {
			delete(removed, k)
		}
		candidate := &pylang.Module{Name: name, Body: rewriteWithoutAttrs(ast.Body, removed)}
		return run.test(name, candidate)
	}
	keep, stats := minimize(run, candidates, oracle, cfg)
	mr.DD = stats

	removed := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		removed[c] = true
	}
	for _, k := range keep {
		delete(removed, k)
	}
	mr.Removed = sortedNames(removed)
	mr.AttrsAfter = mr.AttrsBefore - len(mr.Removed)
	if len(mr.Removed) > 0 {
		run.overrides[name] = &pylang.Module{Name: name, Body: rewriteWithoutAttrs(ast.Body, removed)}
	}
	return mr
}

// minimize dispatches DD with the run's worker count, tracer, and virtual
// clock.
func minimize[T any](run *runner, items []T, oracle dd.Oracle[T], cfg Config) ([]T, dd.Stats) {
	return dd.MinimizeWith(items, oracle, dd.Options{
		Workers: cfg.Workers,
		Tracer:  run.tr,
		Now:     run.nowVirtual,
	})
}

// debloatModuleStmts is the statement-granularity ablation arm.
func debloatModuleStmts(run *runner, name string, ast *pylang.Module, candidates []string, mr ModuleResult, cfg Config) ModuleResult {
	// Components are the indices of binding, non-magic statements.
	var idxs []int
	for i, s := range ast.Body {
		if stmtIsCandidate(s) {
			idxs = append(idxs, i)
		}
	}
	keep, stats := minimize(run, idxs, func(keepIdxs []int) bool {
		keepSet := make(map[int]bool, len(keepIdxs))
		for _, i := range keepIdxs {
			keepSet[i] = true
		}
		candidate := &pylang.Module{Name: name, Body: rewriteKeepStmts(ast.Body, keepSet)}
		return run.test(name, candidate)
	}, cfg)
	mr.DD = stats

	keepSet := make(map[int]bool, len(keep))
	for _, i := range keep {
		keepSet[i] = true
	}
	removedAttrs := make(map[string]bool)
	for _, i := range idxs {
		if !keepSet[i] {
			for _, n := range boundNames(ast.Body[i]) {
				removedAttrs[n] = true
			}
		}
	}
	mr.Removed = sortedNames(removedAttrs)
	mr.AttrsAfter = mr.AttrsBefore - len(mr.Removed)
	if len(mr.Removed) > 0 {
		run.overrides[name] = &pylang.Module{Name: name, Body: rewriteKeepStmts(ast.Body, keepSet)}
	}
	return mr
}

// loadAttrs imports the module in an isolated interpreter (with accepted
// overrides applied) and returns its namespace attribute names.
func loadAttrs(run *runner, name string) ([]string, bool) {
	in := pyruntime.New(run.app.Image)
	in.SetEngine(run.engine)
	in.SetASTCache(run.astCache)
	if run.snap != nil {
		in.SetSnapshots(run.snap)
	}
	for n, ast := range run.overrides {
		in.SetOverride(n, ast)
	}
	mod, perr := in.Import(name)
	run.account(in.Clock.Now())
	if perr != nil {
		return nil, false
	}
	return mod.Dict.Names(), true
}

// moduleFile resolves a module name to its site-packages path inside the
// app image. Only library code is debloated; application code and modules
// without source are skipped.
func moduleFile(app *appspec.App, name string) (string, bool) {
	rel := strings.ReplaceAll(name, ".", "/")
	for _, candidate := range []string{
		pyruntime.SitePackages + rel + ".py",
		pyruntime.SitePackages + rel + "/__init__.py",
	} {
		if app.Image.Exists(candidate) {
			return candidate, true
		}
	}
	return "", false
}
