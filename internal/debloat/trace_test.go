package debloat

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// A traced pipeline run must cover every stage as spans on the virtual
// timeline, with DD rounds nested under their module spans, and its
// metrics must agree with the result's own accounting.
func TestTracedPipelineSpansAndMetrics(t *testing.T) {
	app := torchExampleApp()
	tr := obs.New()
	cfg := DefaultConfig()
	cfg.Tracer = tr
	res, err := Run(app, cfg)
	if err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != 1 || !strings.HasPrefix(roots[0].Name, "debloat ") {
		t.Fatalf("want a single pipeline root, got %v", roots)
	}
	root := roots[0]
	if root.End <= root.Start {
		t.Errorf("pipeline root span is empty: [%v, %v]", root.Start, root.End)
	}

	stages := map[string]int{}
	rounds, oracles, modules := 0, 0, 0
	tr.Walk(func(s *obs.Span, depth int) {
		switch s.Cat {
		case "pipeline", "profiler":
			stages[s.Name]++
		case "dd":
			switch s.Name {
			case "round":
				rounds++
			case "oracle":
				oracles++
			}
		case "debloat":
			if strings.HasPrefix(s.Name, "module ") {
				modules++
			}
		}
	})
	for _, want := range []string{"analyze", "golden", "materialize", "verify"} {
		if stages[want] != 1 {
			t.Errorf("stage %q spans = %d, want 1", want, stages[want])
		}
	}
	if stages["profile "+app.Entry] != 1 {
		t.Errorf("missing profile span, stages = %v", stages)
	}
	if modules != len(res.Modules) {
		t.Errorf("module spans = %d, want %d", modules, len(res.Modules))
	}
	if rounds == 0 {
		t.Error("no DD round spans recorded")
	}

	// Sequential DD records one span per executed (non-memoized) oracle
	// call; cross-check against the dd.Stats the pipeline reports.
	wantTests := 0
	for _, m := range res.Modules {
		wantTests += m.DD.Tests
	}
	if oracles != wantTests {
		t.Errorf("oracle spans = %d, want %d (sum of DD.Tests)", oracles, wantTests)
	}

	reg := tr.Metrics()
	if got := reg.Counter("debloat.oracle_runs"); got != int64(res.OracleRuns) {
		t.Errorf("debloat.oracle_runs = %d, want %d", got, res.OracleRuns)
	}
	if got := reg.Counter("debloat.removed_attrs"); got != int64(res.TotalRemoved()) {
		t.Errorf("debloat.removed_attrs = %d, want %d", got, res.TotalRemoved())
	}
	if got := reg.Counter("dd.tests"); got != int64(wantTests) {
		t.Errorf("dd.tests = %d, want %d", got, wantTests)
	}
	if h := reg.Histogram("debloat.oracle.seconds"); h == nil || h.Count() != uint64(res.OracleRuns) {
		t.Errorf("debloat.oracle.seconds histogram count != %d", res.OracleRuns)
	}

	// Spans never run backwards, and the root bounds every descendant.
	tr.Walk(func(s *obs.Span, depth int) {
		if s.End < s.Start {
			t.Errorf("span %q runs backwards: [%v, %v]", s.Name, s.Start, s.End)
		}
	})
}

// Tracing must not perturb the pipeline: identical results with and
// without a tracer, and parallel DD traces only deterministic wave
// boundaries while producing the sequential result.
func TestTracedPipelineMatchesUntraced(t *testing.T) {
	base, err := Run(torchExampleApp(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 4} {
		tr := obs.New()
		cfg := DefaultConfig()
		cfg.Tracer = tr
		cfg.Workers = workers
		res, err := Run(torchExampleApp(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalRemoved() != base.TotalRemoved() {
			t.Errorf("workers=%d: removed %d attrs traced, %d untraced",
				workers, res.TotalRemoved(), base.TotalRemoved())
		}
		if workers == 0 && res.DebloatTime != base.DebloatTime {
			t.Errorf("tracing changed DebloatTime: %v vs %v", res.DebloatTime, base.DebloatTime)
		}
		oracleSpans := 0
		waves := 0
		tr.Walk(func(s *obs.Span, depth int) {
			if s.Cat == "dd" && s.Name == "oracle" {
				oracleSpans++
			}
			if s.Cat == "dd" && s.Name == "wave" {
				waves++
			}
		})
		if workers > 1 {
			if oracleSpans != 0 {
				t.Errorf("parallel DD must not record per-oracle spans, got %d", oracleSpans)
			}
			if waves == 0 {
				t.Error("parallel DD should record wave spans")
			}
		} else if waves != 0 {
			t.Errorf("sequential DD recorded %d wave spans", waves)
		}
	}
}
