package debloat

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/appspec"
	"repro/internal/obs"
	"repro/internal/pylang"
	"repro/internal/pyruntime"
)

// SpawnOverhead is the simulated cost of spawning a fresh isolated process
// for one oracle run (the paper spawns a new process per DD iteration for
// module isolation, §7).
const SpawnOverhead = 120 * time.Millisecond

// goldenRecord captures the observable behaviour of one oracle test case:
// stdout, the handler's return value, and the journal of external calls.
// Local side effects are deliberately ignored (§5.3 — serverless functions
// are stateless; only remote effects matter).
type goldenRecord struct {
	stdout string
	result string
	remote []pyruntime.RemoteCall
}

// runner executes oracle runs against the application image with a stack of
// accepted module reductions (overrides) plus one candidate overlay, and
// accumulates the simulated debloating time.
type runner struct {
	app       *appspec.App
	astCache  *pyruntime.ASTCache
	snap      *pyruntime.SnapshotCache // nil disables import memoization
	engine    pyruntime.Engine         // execution engine for every spawned interpreter
	overrides map[string]*pylang.Module
	golden    []goldenRecord

	// mu guards the accounting fields; the oracle itself is safe for
	// concurrent execution (fresh interpreter per run, shared state
	// read-only), which parallel DD relies on.
	mu      sync.Mutex
	virtual time.Duration
	runs    int

	// tr and base place the runner on the pipeline's virtual timeline:
	// nowVirtual() = base (time already spent upstream, i.e. profiling)
	// + accumulated oracle time. Both are set once by Run before any
	// traced work; a nil tr disables tracing entirely.
	tr   *obs.Tracer
	base time.Duration
}

// account records one oracle run's simulated duration.
func (r *runner) account(d time.Duration) {
	r.mu.Lock()
	r.virtual += d + SpawnOverhead
	r.runs++
	r.mu.Unlock()
	if r.tr != nil {
		reg := r.tr.Metrics()
		reg.Inc("debloat.oracle_runs", 1)
		reg.Observe("debloat.oracle.seconds", (d + SpawnOverhead).Seconds())
	}
}

// nowVirtual is the runner's position on the pipeline timeline; it is the
// span clock for everything downstream of profiling. Reads are only
// deterministic at sequential points (between oracle runs, or at parallel
// DD's wave boundaries, where the accumulated sum is schedule-independent).
func (r *runner) nowVirtual() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base + r.virtual
}

// newRunner records the golden behaviour of the unmodified application.
func newRunner(app *appspec.App) (*runner, error) {
	return newTracedRunner(app, nil, 0, nil, nil, pyruntime.EngineDefault)
}

// newTracedRunner is newRunner on the pipeline timeline: the golden runs
// it performs are already metered into tr's registry. snap and astc are the
// (possibly suite-shared) snapshot and parse caches; a nil snap disables
// import memoization and a nil astc falls back to a private parse cache.
// Neither cache affects any simulated observable — see DESIGN.md §9.
func newTracedRunner(app *appspec.App, tr *obs.Tracer, base time.Duration, snap *pyruntime.SnapshotCache, astc *pyruntime.ASTCache, engine pyruntime.Engine) (*runner, error) {
	if astc == nil {
		astc = pyruntime.NewASTCache()
	}
	r := &runner{
		app:       app,
		astCache:  astc,
		snap:      snap,
		engine:    engine,
		overrides: make(map[string]*pylang.Module),
		tr:        tr,
		base:      base,
	}
	if len(app.Oracle) == 0 {
		return nil, fmt.Errorf("debloat: app %s has an empty oracle set", app.Name)
	}
	for i, tc := range app.Oracle {
		rec, ok, d := r.execute(tc, "", nil)
		r.account(d)
		if !ok {
			return nil, fmt.Errorf("debloat: app %s fails its own oracle case %d (%s)", app.Name, i, tc.Name)
		}
		r.golden = append(r.golden, rec)
	}
	return r, nil
}

// test runs every oracle case with the candidate overlay for extraName and
// reports whether all observable behaviour matches the golden records.
func (r *runner) test(extraName string, extraAST *pylang.Module) bool {
	for i, tc := range r.app.Oracle {
		rec, ok, d := r.execute(tc, extraName, extraAST)
		r.account(d)
		if !ok {
			return false
		}
		g := r.golden[i]
		if rec.stdout != g.stdout || rec.result != g.result {
			return false
		}
		if len(rec.remote) != len(g.remote) {
			return false
		}
		for j := range rec.remote {
			if rec.remote[j] != g.remote[j] {
				return false
			}
		}
	}
	return true
}

// execute performs one isolated run: fresh interpreter (own module cache —
// the paper's per-iteration process spawn), shared parse cache, accepted
// overrides plus the candidate overlay. It returns the observed behaviour,
// whether the run completed without an exception, and the virtual time the
// run consumed.
func (r *runner) execute(tc appspec.TestCase, extraName string, extraAST *pylang.Module) (goldenRecord, bool, time.Duration) {
	in := pyruntime.New(r.app.Image)
	in.SetEngine(r.engine)
	in.SetASTCache(r.astCache)
	if r.snap != nil {
		in.SetSnapshots(r.snap)
	}
	for name, ast := range r.overrides {
		in.SetOverride(name, ast)
	}
	if extraAST != nil {
		in.SetOverride(extraName, extraAST)
		// The candidate overlay changes on every DD probe; recording import
		// windows around it would only fill the snapshot cache with entries
		// that can never validate again.
		in.SetVolatile(extraName)
	}

	mod, perr := in.Import(r.app.Entry)
	if perr != nil {
		return goldenRecord{}, false, in.Clock.Now()
	}
	handler, ok := mod.Dict.Get(r.app.Handler)
	if !ok {
		return goldenRecord{}, false, in.Clock.Now()
	}
	event, err := pyruntime.FromGo(anyMap(tc.Event))
	if err != nil {
		return goldenRecord{}, false, in.Clock.Now()
	}
	result, perr := in.CallFunction(handler, []Value{event, NewContext(r.app, tc.Name)})
	if perr != nil {
		return goldenRecord{}, false, in.Clock.Now()
	}
	return goldenRecord{
		stdout: in.OutputString(),
		result: pyruntime.Repr(result),
		remote: in.RemoteLog,
	}, true, in.Clock.Now()
}

// Value aliases keep call sites below readable.
type Value = pyruntime.Value

func anyMap(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	return m
}

// NewContext builds the lambda context object passed as the handler's
// second argument.
func NewContext(app *appspec.App, requestID string) Value {
	ctx := pyruntime.NewDict()
	ctx.SetStr("function_name", pyruntime.StrV(app.Name))
	ctx.SetStr("function_version", pyruntime.StrV("$LATEST"))
	ctx.SetStr("request_id", pyruntime.StrV(requestID))
	ctx.SetStr("memory_limit_in_mb", pyruntime.IntV(3008))
	return ctx
}
