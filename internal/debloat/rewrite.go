// Package debloat implements λ-trim's debloater (§5.3 and §6 of the paper):
// attribute-granularity Delta Debugging over the __init__ files of the
// top-K modules selected by the profiler, validated by an oracle that
// re-runs the application on its test cases and compares observable
// behaviour (stdout, handler result, and the journal of external calls).
package debloat

import (
	"sort"

	"repro/internal/pylang"
	"repro/internal/pyruntime"
)

// Granularity selects the DD component granularity. The paper argues for
// attribute granularity (§6.1): compared to statements it is coarser for
// def/class (whole definitions) but finer for "from m import a, b, c",
// where individual names can be dropped. Statement granularity is kept as
// an ablation arm.
type Granularity int

const (
	// AttrGranularity removes module attributes (the paper's choice).
	AttrGranularity Granularity = iota
	// StmtGranularity removes whole top-level statements (ablation).
	StmtGranularity
)

func (g Granularity) String() string {
	if g == StmtGranularity {
		return "statement"
	}
	return "attribute"
}

// providers maps each module attribute to the indices of top-level
// statements that bind it. Statements that bind no attribute (bare
// expressions, control flow) are never removed at attribute granularity.
func providers(body []pylang.Stmt) map[string][]int {
	out := make(map[string][]int)
	add := func(name string, idx int) {
		out[name] = append(out[name], idx)
	}
	for i, s := range body {
		for _, name := range boundNames(s) {
			add(name, i)
		}
	}
	return out
}

// boundNames returns the module attributes a top-level statement binds.
func boundNames(s pylang.Stmt) []string {
	switch v := s.(type) {
	case *pylang.DefStmt:
		return []string{v.Name}
	case *pylang.ClassStmt:
		return []string{v.Name}
	case *pylang.AssignStmt:
		var names []string
		for _, t := range v.Targets {
			if n, ok := t.(*pylang.NameExpr); ok {
				names = append(names, n.Name)
			}
		}
		return names
	case *pylang.ImportStmt:
		names := make([]string, 0, len(v.Names))
		for _, a := range v.Names {
			names = append(names, a.Bound())
		}
		return names
	case *pylang.FromImportStmt:
		if v.Star {
			return nil
		}
		names := make([]string, 0, len(v.Names))
		for _, a := range v.Names {
			if a.AsName != "" {
				names = append(names, a.AsName)
			} else {
				names = append(names, a.Name)
			}
		}
		return names
	}
	return nil
}

// rewriteWithoutAttrs builds a new module body with the given attributes
// removed, at attribute granularity:
//
//   - def / class statements whose name is removed are dropped entirely;
//   - assignments are dropped when every name target is removed;
//   - "import a, b" drops individual aliases;
//   - "from m import a, b" drops individual names — the fine-grained case
//     the paper highlights (Figure 7: "from torch.nn import Linear, MSELoss"
//     becomes "from torch.nn import Linear");
//   - everything else is kept untouched.
func rewriteWithoutAttrs(body []pylang.Stmt, removed map[string]bool) []pylang.Stmt {
	out := make([]pylang.Stmt, 0, len(body))
	for _, s := range body {
		switch v := s.(type) {
		case *pylang.DefStmt:
			if removed[v.Name] {
				continue
			}
		case *pylang.ClassStmt:
			if removed[v.Name] {
				continue
			}
		case *pylang.AssignStmt:
			names := boundNames(v)
			if len(names) > 0 && allRemoved(names, removed) {
				continue
			}
		case *pylang.ImportStmt:
			kept := make([]pylang.Alias, 0, len(v.Names))
			for _, a := range v.Names {
				if !removed[a.Bound()] {
					kept = append(kept, a)
				}
			}
			if len(kept) == 0 {
				continue
			}
			if len(kept) != len(v.Names) {
				out = append(out, &pylang.ImportStmt{Pos: v.Pos, Names: kept})
				continue
			}
		case *pylang.FromImportStmt:
			if !v.Star {
				kept := make([]pylang.Alias, 0, len(v.Names))
				for _, a := range v.Names {
					bound := a.Name
					if a.AsName != "" {
						bound = a.AsName
					}
					if !removed[bound] {
						kept = append(kept, a)
					}
				}
				if len(kept) == 0 {
					// The import disappears entirely — and with it the
					// submodule's own initialization cost.
					continue
				}
				if len(kept) != len(v.Names) {
					out = append(out, &pylang.FromImportStmt{
						Pos: v.Pos, Level: v.Level, Module: v.Module, Names: kept,
					})
					continue
				}
			}
		}
		out = append(out, s)
	}
	return out
}

func allRemoved(names []string, removed map[string]bool) bool {
	for _, n := range names {
		if !removed[n] {
			return false
		}
	}
	return true
}

// rewriteKeepStmts builds a module body keeping only the statements whose
// index is in keep (statement-granularity ablation). Statements that bind
// no attribute — or that bind a magic attribute — are always kept, matching
// the attribute arm's exclusion of magic attributes from DD.
func rewriteKeepStmts(body []pylang.Stmt, keep map[int]bool) []pylang.Stmt {
	out := make([]pylang.Stmt, 0, len(body))
	for i, s := range body {
		if !stmtIsCandidate(s) || keep[i] {
			out = append(out, s)
		}
	}
	return out
}

// stmtIsCandidate reports whether a statement is a valid DD component at
// statement granularity: it binds at least one attribute and none of them
// is magic.
func stmtIsCandidate(s pylang.Stmt) bool {
	names := boundNames(s)
	if len(names) == 0 {
		return false
	}
	for _, n := range names {
		if pyruntime.MagicAttrs[n] {
			return false
		}
	}
	return true
}

// sortedNames returns the keys of a string set, sorted.
func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
