package debloat

import (
	"strings"
	"testing"

	"repro/internal/appspec"
	"repro/internal/profiler"
	"repro/internal/pyruntime"
	"repro/internal/vfs"
)

// torchExampleApp reconstructs the paper's running example (§6.2,
// Figures 5-7): a simplified torch library with six attributes, of which
// the application uses four. DD should remove MSELoss and SGD, and with
// them the import of torch.optim.
func torchExampleApp() *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import torch

def handler(event, context):
    x = torch.tensor([1.0, 2.0])
    y = torch.tensor([3.0, 4.0])
    z = torch.view(torch.add(x, y), 2, 1)
    model = torch.nn.Linear(2, 1)
    model.weights = torch.tensor([4.0, 6.0])
    model.bias = torch.tensor([3.0])
    out = model(z)
    print(out.data)
    return "ok"
`)
	fs.Write("site-packages/torch/__init__.py", `
from torch.nn import Linear, MSELoss
from torch.optim import SGD
load_native(30, 12)

class tensor:
    def __init__(self, data):
        self.data = data

def add(t1, t2):
    out = []
    for pair in zip(t1.data, t2.data):
        out.append(pair[0] + pair[1])
    return tensor(out)

def view(t, dim1, dim2):
    return tensor(t.data)
`)
	fs.Write("site-packages/torch/nn/__init__.py", `
load_native(60, 30)

class Linear:
    def __init__(self, n_in, n_out):
        self.n_in = n_in
        self.n_out = n_out
        self.weights = None
        self.bias = None
    def __call__(self, t):
        total = 0.0
        for pair in zip(t.data, self.weights.data):
            total += pair[0] * pair[1]
        return type(t)([total + self.bias.data[0]])

class MSELoss:
    def __init__(self):
        load_native(15, 8)
`)
	fs.Write("site-packages/torch/optim/__init__.py", `
load_native(45, 25)

class SGD:
    def __init__(self, params, lr=0.01):
        self.params = params
        self.lr = lr
`)
	return &appspec.App{
		Name: "torch-example", Image: fs, Entry: "handler", Handler: "handler",
		Oracle: []appspec.TestCase{{Name: "t0", Event: map[string]any{}}},
	}
}

func TestDebloatTorchExample(t *testing.T) {
	app := torchExampleApp()
	res, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatalf("debloat: %v", err)
	}

	var torchResult *ModuleResult
	for i := range res.Modules {
		if res.Modules[i].Module == "torch" {
			torchResult = &res.Modules[i]
		}
	}
	if torchResult == nil {
		t.Fatalf("torch was not among debloated modules: %+v", res.Modules)
	}
	removed := strings.Join(torchResult.Removed, ",")
	if !strings.Contains(removed, "MSELoss") || !strings.Contains(removed, "SGD") {
		t.Errorf("expected MSELoss and SGD removed, got %q", removed)
	}
	for _, keepName := range []string{"tensor", "add", "view"} {
		if strings.Contains(removed, keepName) {
			t.Errorf("needed attribute %s was removed", keepName)
		}
	}

	// The optimized image must no longer import torch.optim at all.
	src, err2 := res.App.Image.Read("site-packages/torch/__init__.py")
	if err2 != nil {
		t.Fatalf("optimized torch missing: %v", err2)
	}
	if strings.Contains(src, "optim") {
		t.Errorf("optimized torch still references optim:\n%s", src)
	}
	if strings.Contains(src, "MSELoss") {
		t.Errorf("optimized torch still references MSELoss:\n%s", src)
	}
	if !strings.Contains(src, "Linear") {
		t.Errorf("optimized torch lost the needed Linear import:\n%s", src)
	}

	// Behaviour must be preserved end to end.
	origOut := runApp(t, app)
	optOut := runApp(t, res.App)
	if origOut != optOut {
		t.Errorf("behaviour diverged:\n orig %q\n opt  %q", origOut, optOut)
	}

	// And the trimmed app must be cheaper to initialize.
	origInit, origMem := measureInit(t, app)
	optInit, optMem := measureInit(t, res.App)
	if optInit >= origInit {
		t.Errorf("init time did not improve: %v -> %v", origInit, optInit)
	}
	if optMem >= origMem {
		t.Errorf("init memory did not improve: %d -> %d", origMem, optMem)
	}
}

func TestDebloatStatementGranularityCoarser(t *testing.T) {
	// At statement granularity, "from torch.nn import Linear, MSELoss" is
	// all-or-none: MSELoss cannot be removed because Linear is needed. The
	// attribute arm removes it. This is the paper's §6.1 argument.
	attrCfg := DefaultConfig()
	attrRes, err := Run(torchExampleApp(), attrCfg)
	if err != nil {
		t.Fatalf("attr debloat: %v", err)
	}
	stmtCfg := DefaultConfig()
	stmtCfg.Granularity = StmtGranularity
	stmtRes, err := Run(torchExampleApp(), stmtCfg)
	if err != nil {
		t.Fatalf("stmt debloat: %v", err)
	}
	if attrRes.TotalRemoved() <= stmtRes.TotalRemoved() {
		t.Errorf("attribute granularity should remove more: attr=%d stmt=%d",
			attrRes.TotalRemoved(), stmtRes.TotalRemoved())
	}
	// Specifically MSELoss survives the statement arm.
	stmtSrc, _ := stmtRes.App.Image.Read("site-packages/torch/__init__.py")
	if !strings.Contains(stmtSrc, "MSELoss") {
		t.Errorf("statement granularity unexpectedly removed MSELoss:\n%s", stmtSrc)
	}
}

func TestDebloatRespectsProtectedAttrs(t *testing.T) {
	app := torchExampleApp()
	res, err := Run(app, DefaultConfig())
	if err != nil {
		t.Fatalf("debloat: %v", err)
	}
	protected := res.Report.Protected["torch"]
	for _, m := range res.Modules {
		if m.Module != "torch" {
			continue
		}
		for _, r := range m.Removed {
			if protected[r] {
				t.Errorf("protected attribute %s was removed", r)
			}
		}
	}
}

func TestDebloatRandomScoringStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scoring = profiler.Random
	cfg.Seed = 7
	app := torchExampleApp()
	res, err := Run(app, cfg)
	if err != nil {
		t.Fatalf("debloat: %v", err)
	}
	if runApp(t, app) != runApp(t, res.App) {
		t.Error("random scoring broke behaviour")
	}
}

func TestDebloatTimeAccounting(t *testing.T) {
	res, err := Run(torchExampleApp(), DefaultConfig())
	if err != nil {
		t.Fatalf("debloat: %v", err)
	}
	if res.OracleRuns < 5 {
		t.Errorf("suspiciously few oracle runs: %d", res.OracleRuns)
	}
	if res.DebloatTime < SpawnOverhead*5 {
		t.Errorf("debloat time %v inconsistent with %d runs", res.DebloatTime, res.OracleRuns)
	}
}

// runApp imports the entry module and calls the handler once, returning
// stdout + result repr.
func runApp(t *testing.T, app *appspec.App) string {
	t.Helper()
	in := pyruntime.New(app.Image)
	mod, perr := in.Import(app.Entry)
	if perr != nil {
		t.Fatalf("%s: import: %v", app.Name, perr)
	}
	handler, ok := mod.Dict.Get(app.Handler)
	if !ok {
		t.Fatalf("%s: no handler", app.Name)
	}
	event := pyruntime.MustFromGo(map[string]any{})
	res, perr := in.CallFunction(handler, []pyruntime.Value{event, NewContext(app, "r")})
	if perr != nil {
		t.Fatalf("%s: handler: %v", app.Name, perr)
	}
	return in.OutputString() + "|" + pyruntime.Repr(res)
}

// measureInit returns simulated import time and memory of initialization.
func measureInit(t *testing.T, app *appspec.App) (int64, int64) {
	t.Helper()
	in := pyruntime.New(app.Image)
	if _, perr := in.Import(app.Entry); perr != nil {
		t.Fatalf("%s: import: %v", app.Name, perr)
	}
	return int64(in.Clock.Now()), in.Alloc.Used()
}

// TestDebloatDeterministic: two runs over independently built copies of the
// same app must produce byte-identical optimized images — the property that
// makes every experiment in this repository reproducible.
func TestDebloatDeterministic(t *testing.T) {
	a, err := Run(torchExampleApp(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(torchExampleApp(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.OracleRuns != b.OracleRuns || a.TotalRemoved() != b.TotalRemoved() {
		t.Errorf("run stats differ: %d/%d runs, %d/%d removed",
			a.OracleRuns, b.OracleRuns, a.TotalRemoved(), b.TotalRemoved())
	}
	listA := a.App.Image.List()
	listB := b.App.Image.List()
	if len(listA) != len(listB) {
		t.Fatalf("image file counts differ: %d vs %d", len(listA), len(listB))
	}
	for i, path := range listA {
		if path != listB[i] {
			t.Fatalf("file lists diverge at %d: %s vs %s", i, path, listB[i])
		}
		ca, _ := a.App.Image.Read(path)
		cb, _ := b.App.Image.Read(path)
		if ca != cb {
			t.Errorf("content differs at %s", path)
		}
	}
}
