package debloat

import (
	"math/rand"
	"sort"

	"repro/internal/appspec"
	"repro/internal/pylang"
	"repro/internal/pyparser"
	"repro/internal/pyruntime"
)

// FuzzReport is the outcome of differential fuzzing between the original
// and the debloated application.
type FuzzReport struct {
	// Trials is the number of mutated inputs executed.
	Trials int
	// Failing lists inputs on which the two applications diverge
	// (different output, result, remote journal, or an error only on the
	// debloated side). Adding these to the oracle set and re-running
	// λ-trim (Rerun) repairs the reduction, per §5.4 of the paper:
	// "running a fuzzer against the optimized program ... if the fuzzer
	// finds a failing input, the user can add the input to the oracle set
	// and rerun".
	Failing []appspec.TestCase
}

// Fuzz mutates the application's oracle events and executes both variants
// on each mutant, reporting divergences. Mutations are seeded and
// deterministic. The mutation dictionary includes every string literal in
// the entry module — the standard trick that lets the fuzzer reach
// string-guarded branches (like a rarely-used "mode": "advanced" path).
func Fuzz(original, optimized *appspec.App, trials int, seed int64) (*FuzzReport, error) {
	rng := rand.New(rand.NewSource(seed))
	dict := sourceStrings(original)
	report := &FuzzReport{}

	seen := make(map[string]bool)
	for trial := 0; trial < trials; trial++ {
		seedCase := original.Oracle[rng.Intn(len(original.Oracle))]
		event := mutate(rng, seedCase.Event, dict)
		key := canonical(event)
		if seen[key] {
			continue
		}
		seen[key] = true
		report.Trials++

		origRec := executeForFuzz(original, event)
		optRec := executeForFuzz(optimized, event)
		if origRec != optRec {
			report.Failing = append(report.Failing, appspec.TestCase{
				Name:  "fuzz-" + key,
				Event: event,
			})
		}
	}
	return report, nil
}

// fuzzRecord is the comparable behaviour snapshot for differential runs.
type fuzzRecord struct {
	stdout string
	result string
	errCls string
	remote string
}

func executeForFuzz(app *appspec.App, event map[string]any) fuzzRecord {
	in := pyruntime.New(app.Image)
	mod, perr := in.Import(app.Entry)
	if perr != nil {
		return fuzzRecord{errCls: perr.ClassName()}
	}
	handler, ok := mod.Dict.Get(app.Handler)
	if !ok {
		return fuzzRecord{errCls: "NoHandler"}
	}
	ev, err := pyruntime.FromGo(anyMap(event))
	if err != nil {
		return fuzzRecord{errCls: "BadEvent"}
	}
	result, perr := in.CallFunction(handler, []Value{ev, NewContext(app, "fuzz")})
	rec := fuzzRecord{stdout: in.OutputString()}
	if perr != nil {
		rec.errCls = perr.ClassName()
		return rec
	}
	rec.result = pyruntime.Repr(result)
	for _, rc := range in.RemoteLog {
		rec.remote += rc.Service + "/" + rc.Op + "/" + rc.Payload + ";"
	}
	return rec
}

// mutate produces a variant of the event: overwrite a key with a
// dictionary string or number, delete a key, or add a dictionary-derived
// key.
func mutate(rng *rand.Rand, event map[string]any, dict []string) map[string]any {
	out := make(map[string]any, len(event)+1)
	for k, v := range event {
		out[k] = v
	}
	keys := sortedKeys(out)
	pick := func() string { return dict[rng.Intn(len(dict))] }
	switch rng.Intn(4) {
	case 0: // overwrite a key with a dictionary string
		if len(keys) > 0 {
			out[keys[rng.Intn(len(keys))]] = pick()
		}
	case 1: // overwrite with a number
		if len(keys) > 0 {
			out[keys[rng.Intn(len(keys))]] = rng.Intn(100)
		}
	case 2: // delete a key
		if len(keys) > 0 {
			delete(out, keys[rng.Intn(len(keys))])
		}
	case 3: // add a dictionary key with a dictionary value
		out[pick()] = pick()
	}
	return out
}

// sourceStrings extracts every string literal from the entry module.
func sourceStrings(app *appspec.App) []string {
	set := map[string]bool{"": true}
	src, err := app.Image.Read(app.Entry + ".py")
	if err == nil {
		if mod, perr := pyparser.Parse(app.Entry, src); perr == nil {
			pylang.Walk(mod, func(n pylang.Node) bool {
				if lit, ok := n.(*pylang.StringLit); ok && len(lit.Value) < 64 {
					set[lit.Value] = true
				}
				return true
			})
		}
	}
	delete(set, "")
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	if len(out) == 0 {
		out = []string{"fuzz"}
	}
	return out
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// canonical renders an event deterministically for dedup and naming.
func canonical(event map[string]any) string {
	s := ""
	for _, k := range sortedKeys(event) {
		s += k + "=" + pyruntime.Repr(pyruntime.MustFromGo(event[k])) + ","
	}
	return s
}
