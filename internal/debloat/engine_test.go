package debloat

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/pyruntime"
)

// engineRunSummary flattens every simulated observable of one debloat run:
// the pipeline accounting, per-module DD outcomes, the golden records, and
// the optimized image's rewritten sources.
func engineRunSummary(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "oracle_runs=%d debloat_time=%s removed=%d\n",
		r.OracleRuns, r.DebloatTime, r.TotalRemoved())
	for _, m := range r.Modules {
		fmt.Fprintf(&b, "module %s %d->%d removed=%v dd_tests=%d skipped=%q\n",
			m.Module, m.AttrsBefore, m.AttrsAfter, m.Removed, m.DD.Tests, m.Skipped)
	}
	for _, mp := range r.Profile.Modules {
		fmt.Fprintf(&b, "profile %s t=%s m=%.6f score=%.9f order=%d\n",
			mp.Name, mp.ImportTime, mp.MemoryMB, mp.Score, mp.Order)
	}
	for _, path := range r.App.Image.List() {
		src, err := r.App.Image.Read(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		fmt.Fprintf(&b, "file %s %d bytes\n%s\n", path, len(src), src)
	}
	return b.String()
}

// TestEngineByteIdentity is the tentpole invariant at pipeline scale: a full
// debloat run — profiler ranking, every oracle run, DD decisions, and the
// materialized optimized image — must be byte-identical between the compiled
// engine and the AST walker, with and without parallel DD.
func TestEngineByteIdentity(t *testing.T) {
	apps := []func() *appspec.App{
		torchExampleApp,
		func() *appspec.App { return appcorpus.MustBuild("markdown") },
		func() *appspec.App { return appcorpus.MustBuild("dna-visualization") },
	}
	if !testing.Short() {
		apps = append(apps,
			func() *appspec.App { return appcorpus.MustBuild("lightgbm") },
			func() *appspec.App { return appcorpus.MustBuild("igraph") },
		)
	}
	for _, build := range apps {
		app := build()
		// Oracle-run accounting is deterministic per worker count but not
		// across worker counts (parallel DD evaluates whole waves; see
		// Config.Workers), so engine identity is asserted within each
		// workers setting.
		for _, workers := range []int{1, 4} {
			var golden string
			for _, engine := range []pyruntime.Engine{pyruntime.EngineWalker, pyruntime.EngineCompiled} {
				cfg := DefaultConfig()
				cfg.Engine = engine
				cfg.Workers = workers
				res, err := Run(build(), cfg)
				if err != nil {
					t.Fatalf("%s/%v/w%d: %v", app.Name, engine, workers, err)
				}
				sum := engineRunSummary(t, res)
				if golden == "" {
					golden = sum
					continue
				}
				if sum != golden {
					gl, sl := strings.Split(golden, "\n"), strings.Split(sum, "\n")
					for i := 0; i < len(gl) && i < len(sl); i++ {
						if gl[i] != sl[i] {
							t.Fatalf("%s w%d: compiled diverges from walker at line %d:\n  walker:   %s\n  compiled: %s",
								app.Name, workers, i+1, gl[i], sl[i])
						}
					}
					t.Fatalf("%s w%d: compiled diverges from walker (lengths %d vs %d)",
						app.Name, workers, len(gl), len(sl))
				}
			}
		}
	}
}
