// Package appspec defines the serverless application description shared by
// the λ-trim pipeline (which optimizes apps) and the platform simulator
// (which deploys and invokes them).
package appspec

import "repro/internal/vfs"

// TestCase is one oracle input: the event (JSON-like) passed to the handler
// and a name for reporting. The context object is synthesized by the
// harness. This mirrors the paper's oracle specification — "a JSON file
// containing the input test cases ... each test must contain an event and a
// context" (§5).
type TestCase struct {
	Name  string
	Event map[string]any
}

// App is a deployable serverless application: a deployment image holding
// the entry module plus site-packages, the handler entry point, and the
// oracle set used for debloating.
type App struct {
	// Name identifies the application (e.g. "resnet").
	Name string
	// Image is the deployment image (entry file at the root, libraries
	// under site-packages/).
	Image *vfs.FS
	// Entry is the entry module name; the file is Entry+".py" at the image
	// root.
	Entry string
	// Handler is the handler function name inside the entry module.
	Handler string
	// Oracle is the test-case set used by the debloater (1-3 cases per
	// app in the paper's evaluation).
	Oracle []TestCase

	// SetupDelayMS is the calibrated, non-billed platform delay for a cold
	// start (instance init + image transmission) in milliseconds. Apps
	// calibrated from the paper's Table 1 carry E2E − Import − Exec here.
	SetupDelayMS float64
	// ImageSizeMB is the nominal deployment image size used for
	// image-transmission and checkpoint modeling (the synthetic library
	// text is far smaller than the binaries it stands in for).
	ImageSizeMB float64
	// MemoryMB, when positive, is the operator-chosen memory configuration
	// for this function. Zero means "configure from a profiling invocation
	// at deploy time" (the platform rounds either choice up to a billable
	// configuration).
	MemoryMB int
	// TimeoutMS, when positive, bounds an invocation's billed window
	// (Function Initialization + Execution); the platform kills and bills
	// the partial duration when it is exceeded. Zero defers to the
	// platform's default timeout (which may itself be disabled).
	TimeoutMS float64
	// Tags carries corpus metadata (source benchmark suite, etc.).
	Tags map[string]string
}

// Clone deep-copies the app (including the image) so optimizers can mutate
// site-packages without touching the original deployment.
func (a *App) Clone() *App {
	cp := *a
	cp.Image = a.Image.Clone()
	cp.Oracle = make([]TestCase, len(a.Oracle))
	copy(cp.Oracle, a.Oracle)
	if a.Tags != nil {
		cp.Tags = make(map[string]string, len(a.Tags))
		for k, v := range a.Tags {
			cp.Tags[k] = v
		}
	}
	return &cp
}
