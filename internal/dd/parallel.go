package dd

import "sync"

// MinimizeParallel is Minimize with concurrent oracle evaluation — the
// intra-module parallelization the paper's §9 proposes as future work
// ("multiple sets of attributes of the same module in parallel").
//
// At each DD round, the candidate partitions (and, if none passes, the
// complements) are tested concurrently with up to `workers` goroutines.
// To keep results identical to the sequential algorithm, the round accepts
// the *lowest-indexed* passing subset, regardless of goroutine completion
// order; the extra oracle calls for higher-indexed subsets in the same
// wave are the price of the speedup (they are counted in Stats.Tests).
//
// Candidates are launched in index-ordered waves of `workers`: once a wave
// contains a passing candidate, no later wave is launched, so a passing
// subset early in the round cancels the (potentially expensive) oracle
// runs for everything beyond its wave. Because a wave always runs to
// completion and wave boundaries depend only on `workers`, both the
// accepted subset and Stats.Tests are deterministic for a fixed worker
// count — never on goroutine scheduling.
//
// The oracle must be safe for concurrent invocation.
func MinimizeParallel[T any](items []T, oracle Oracle[T], workers int) ([]T, Stats) {
	return MinimizeWith(items, oracle, Options{Workers: workers})
}

func minimizeParallel[T any](items []T, oracle Oracle[T], opts Options) ([]T, Stats) {
	workers := opts.Workers
	if workers <= 1 {
		return minimize(items, oracle, opts)
	}
	var stats Stats
	var mu sync.Mutex
	memo := make(map[string]bool)
	// Tracing records rounds and waves only: a wave's boundaries are the
	// run's deterministic synchronization points, while per-oracle timing
	// inside a wave depends on goroutine scheduling.
	t := newTrace(opts, len(items))

	// test evaluates one subset, consulting/updating the memo table.
	test := func(keep []int) bool {
		key := indexKey(keep)
		mu.Lock()
		if v, ok := memo[key]; ok {
			stats.CacheHits++
			mu.Unlock()
			return v
		}
		mu.Unlock()

		subset := make([]T, len(keep))
		for i, idx := range keep {
			subset[i] = items[idx]
		}
		v := oracle(subset)

		mu.Lock()
		stats.Tests++
		memo[key] = v
		mu.Unlock()
		return v
	}

	// firstPassing tests candidates concurrently in index-ordered waves of
	// `workers` and returns the lowest index that passes, or -1. Waves
	// after the first passing one are never launched.
	firstPassing := func(candidates [][]int) int {
		for start := 0; start < len(candidates); start += workers {
			end := start + workers
			if end > len(candidates) {
				end = len(candidates)
			}
			results := make([]bool, end-start)
			t.wave(start, end-start, func() {
				var wg sync.WaitGroup
				for i := start; i < end; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i-start] = test(candidates[i])
					}(i)
				}
				wg.Wait()
			})
			for i := start; i < end; i++ {
				if results[i-start] {
					t.waveCancel(len(candidates) - end)
					return i
				}
			}
		}
		return -1
	}

	all := make([]int, len(items))
	for i := range all {
		all[i] = i
	}
	if len(items) == 0 {
		t.finish(0, stats)
		return nil, stats
	}
	if !test(all) {
		t.finish(len(items), stats)
		return items, stats
	}
	if test(nil) {
		stats.Reductions++
		t.finish(0, stats)
		return nil, stats
	}

	current := all
	n := 2
	round := 0
	for {
		if n > len(current) {
			n = len(current)
		}
		if stats.MaxGranularity < n {
			stats.MaxGranularity = n
		}
		round++
		rs := t.startRound(round, n, len(current))
		parts := split(current, n)

		reduced := false
		if idx := firstPassing(parts); idx >= 0 {
			current = parts[idx]
			n = 2
			reduced = true
			stats.Reductions++
		}
		if !reduced && n > 1 {
			comps := make([][]int, len(parts))
			for i := range parts {
				comps[i] = complement(current, parts[i])
			}
			if idx := firstPassing(comps); idx >= 0 {
				current = comps[idx]
				n = n - 1
				if n < 2 {
					n = 2
				}
				reduced = true
				stats.Reductions++
			}
		}
		t.endRound(rs, reduced, len(current))
		if !reduced {
			if n >= len(current) {
				break
			}
			n = 2 * n
			if n > len(current) {
				n = len(current)
			}
		}
		if len(current) <= 1 {
			if len(current) == 1 && test(nil) {
				current = nil
				stats.Reductions++
			}
			break
		}
	}

	out := make([]T, len(current))
	for i, idx := range current {
		out[i] = items[idx]
	}
	t.finish(len(out), stats)
	return out, stats
}
