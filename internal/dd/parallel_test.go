package dd

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelMatchesSequential(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{9},
		{3, 4, 5},
		{0, 5, 9},
		seq(10),
		{2, 3, 7, 8},
	}
	for _, needed := range cases {
		items := seq(10)
		seqMin, _ := Minimize(items, subsetOracle(needed))
		parMin, _ := MinimizeParallel(items, subsetOracle(needed), 4)
		if len(seqMin) != len(parMin) {
			t.Errorf("needed %v: sequential %v vs parallel %v", needed, seqMin, parMin)
			continue
		}
		for i := range seqMin {
			if seqMin[i] != parMin[i] {
				t.Errorf("needed %v: sequential %v vs parallel %v", needed, seqMin, parMin)
				break
			}
		}
	}
}

func TestParallelLargerSet(t *testing.T) {
	items := seq(120)
	needed := []int{7, 33, 34, 35, 90}
	seqMin, _ := Minimize(items, subsetOracle(needed))
	parMin, parStats := MinimizeParallel(items, subsetOracle(needed), 8)
	if len(parMin) != len(needed) || len(seqMin) != len(needed) {
		t.Fatalf("seq=%v par=%v", seqMin, parMin)
	}
	for i := range seqMin {
		if seqMin[i] != parMin[i] {
			t.Fatalf("results differ: seq=%v par=%v", seqMin, parMin)
		}
	}
	if parStats.Tests == 0 || parStats.Reductions == 0 {
		t.Errorf("stats = %+v", parStats)
	}
}

func TestParallelWorkerCap(t *testing.T) {
	var inFlight, maxInFlight int64
	oracle := func(keep []int) bool {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			prev := atomic.LoadInt64(&maxInFlight)
			if cur <= prev || atomic.CompareAndSwapInt64(&maxInFlight, prev, cur) {
				break
			}
		}
		defer atomic.AddInt64(&inFlight, -1)
		return subsetOracle([]int{1, 14})(keep)
	}
	MinimizeParallel(seq(30), oracle, 3)
	if atomic.LoadInt64(&maxInFlight) > 3 {
		t.Errorf("concurrency %d exceeded worker cap 3", maxInFlight)
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	calls := 0
	oracle := func(keep []int) bool {
		calls++ // safe: workers<=1 must be fully sequential
		return subsetOracle([]int{2})(keep)
	}
	min, stats := MinimizeParallel(seq(8), oracle, 1)
	if len(min) != 1 || min[0] != 2 {
		t.Errorf("min = %v", min)
	}
	if stats.Tests != calls {
		t.Errorf("tests=%d calls=%d", stats.Tests, calls)
	}
}

// recordingOracle wraps an oracle and records every evaluated subset.
func recordingOracle(needed []int) (Oracle[int], *map[string]bool) {
	seen := make(map[string]bool)
	var mu sync.Mutex
	inner := subsetOracle(needed)
	return func(keep []int) bool {
		mu.Lock()
		seen[indexKey(keep)] = true
		mu.Unlock()
		return inner(keep)
	}, &seen
}

// Wave cancellation: once a lower-indexed candidate passes, candidates in
// later waves are never launched. With items 0..7 and minimal set {0,7},
// the n=4 complement round's second complement (index 1) passes inside the
// first 2-worker wave, so complements 2 and 3 must never reach the oracle
// — while a 4-worker run launches the whole round as one wave and does
// evaluate complement 2.
func TestParallelWaveCancellation(t *testing.T) {
	needed := []int{0, 7}
	skipped := []string{
		indexKey([]int{0, 1, 2, 3, 6, 7}), // complement of {4,5}
		indexKey([]int{0, 1, 2, 3, 4, 5}), // complement of {6,7}
	}

	oracle2, seen2 := recordingOracle(needed)
	min2, _ := MinimizeParallel(seq(8), oracle2, 2)
	if len(min2) != 2 || min2[0] != 0 || min2[1] != 7 {
		t.Fatalf("minimized to %v, want [0 7]", min2)
	}
	for _, key := range skipped {
		if (*seen2)[key] {
			t.Errorf("workers=2 evaluated %q after a lower-indexed pass", key)
		}
	}

	oracle4, seen4 := recordingOracle(needed)
	min4, _ := MinimizeParallel(seq(8), oracle4, 4)
	if len(min4) != 2 {
		t.Fatalf("minimized to %v", min4)
	}
	if !(*seen4)[skipped[0]] {
		t.Error("workers=4 should launch the whole round as one wave")
	}
}

// Stats accounting must depend only on the worker count, never on
// goroutine scheduling: repeated runs agree exactly, and the minimized
// output matches sequential Minimize.
func TestParallelStatsDeterministic(t *testing.T) {
	items := seq(60)
	needed := []int{3, 31, 32, 55}
	seqMin, _ := Minimize(items, subsetOracle(needed))
	var first Stats
	for run := 0; run < 5; run++ {
		parMin, stats := MinimizeParallel(items, subsetOracle(needed), 4)
		if len(parMin) != len(seqMin) {
			t.Fatalf("run %d: parallel %v vs sequential %v", run, parMin, seqMin)
		}
		for i := range seqMin {
			if parMin[i] != seqMin[i] {
				t.Fatalf("run %d: parallel %v vs sequential %v", run, parMin, seqMin)
			}
		}
		if run == 0 {
			first = stats
			continue
		}
		if stats != first {
			t.Fatalf("run %d stats %+v differ from first run %+v", run, stats, first)
		}
	}
}

func TestParallelEmptyAndBroken(t *testing.T) {
	min, _ := MinimizeParallel(nil, func(keep []string) bool { return true }, 4)
	if len(min) != 0 {
		t.Error("empty input should minimize to nothing")
	}
	items := seq(5)
	min2, _ := MinimizeParallel(items, func(keep []int) bool { return false }, 4)
	if len(min2) != 5 {
		t.Error("broken baseline should return the full set")
	}
}

func BenchmarkMinimizeSequential(b *testing.B) {
	items := seq(150)
	needed := []int{10, 70, 71, 140}
	for i := 0; i < b.N; i++ {
		Minimize(items, subsetOracle(needed))
	}
}

func BenchmarkMinimizeParallel4(b *testing.B) {
	items := seq(150)
	needed := []int{10, 70, 71, 140}
	for i := 0; i < b.N; i++ {
		MinimizeParallel(items, subsetOracle(needed), 4)
	}
}
