package dd

import (
	"sync/atomic"
	"testing"
)

func TestParallelMatchesSequential(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{9},
		{3, 4, 5},
		{0, 5, 9},
		seq(10),
		{2, 3, 7, 8},
	}
	for _, needed := range cases {
		items := seq(10)
		seqMin, _ := Minimize(items, subsetOracle(needed))
		parMin, _ := MinimizeParallel(items, subsetOracle(needed), 4)
		if len(seqMin) != len(parMin) {
			t.Errorf("needed %v: sequential %v vs parallel %v", needed, seqMin, parMin)
			continue
		}
		for i := range seqMin {
			if seqMin[i] != parMin[i] {
				t.Errorf("needed %v: sequential %v vs parallel %v", needed, seqMin, parMin)
				break
			}
		}
	}
}

func TestParallelLargerSet(t *testing.T) {
	items := seq(120)
	needed := []int{7, 33, 34, 35, 90}
	seqMin, _ := Minimize(items, subsetOracle(needed))
	parMin, parStats := MinimizeParallel(items, subsetOracle(needed), 8)
	if len(parMin) != len(needed) || len(seqMin) != len(needed) {
		t.Fatalf("seq=%v par=%v", seqMin, parMin)
	}
	for i := range seqMin {
		if seqMin[i] != parMin[i] {
			t.Fatalf("results differ: seq=%v par=%v", seqMin, parMin)
		}
	}
	if parStats.Tests == 0 || parStats.Reductions == 0 {
		t.Errorf("stats = %+v", parStats)
	}
}

func TestParallelWorkerCap(t *testing.T) {
	var inFlight, maxInFlight int64
	oracle := func(keep []int) bool {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			prev := atomic.LoadInt64(&maxInFlight)
			if cur <= prev || atomic.CompareAndSwapInt64(&maxInFlight, prev, cur) {
				break
			}
		}
		defer atomic.AddInt64(&inFlight, -1)
		return subsetOracle([]int{1, 14})(keep)
	}
	MinimizeParallel(seq(30), oracle, 3)
	if atomic.LoadInt64(&maxInFlight) > 3 {
		t.Errorf("concurrency %d exceeded worker cap 3", maxInFlight)
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	calls := 0
	oracle := func(keep []int) bool {
		calls++ // safe: workers<=1 must be fully sequential
		return subsetOracle([]int{2})(keep)
	}
	min, stats := MinimizeParallel(seq(8), oracle, 1)
	if len(min) != 1 || min[0] != 2 {
		t.Errorf("min = %v", min)
	}
	if stats.Tests != calls {
		t.Errorf("tests=%d calls=%d", stats.Tests, calls)
	}
}

func TestParallelEmptyAndBroken(t *testing.T) {
	min, _ := MinimizeParallel(nil, func(keep []string) bool { return true }, 4)
	if len(min) != 0 {
		t.Error("empty input should minimize to nothing")
	}
	items := seq(5)
	min2, _ := MinimizeParallel(items, func(keep []int) bool { return false }, 4)
	if len(min2) != 5 {
		t.Error("broken baseline should return the full set")
	}
}

func BenchmarkMinimizeSequential(b *testing.B) {
	items := seq(150)
	needed := []int{10, 70, 71, 140}
	for i := 0; i < b.N; i++ {
		Minimize(items, subsetOracle(needed))
	}
}

func BenchmarkMinimizeParallel4(b *testing.B) {
	items := seq(150)
	needed := []int{10, 70, 71, 140}
	for i := 0; i < b.N; i++ {
		MinimizeParallel(items, subsetOracle(needed), 4)
	}
}
