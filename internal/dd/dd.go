// Package dd implements the generic Delta Debugging program-minimization
// algorithm (Algorithm 1 of the paper, after Zeller's ddmin adapted to
// debloating by Heo et al.).
//
// Given a list of components A and an oracle O, DD finds a 1-minimal subset
// A* such that O(A*) = true: removing any single component from A* makes
// the oracle fail. Finding the true minimum is NP-complete, so 1-minimality
// is the practical target.
package dd

import (
	"strconv"
	"strings"
)

// Oracle tests whether a candidate subset of components satisfies the
// target property (for debloating: "the program still behaves correctly
// with only these components present").
type Oracle[T any] func(keep []T) bool

// Stats reports the work performed by one minimization.
type Stats struct {
	// Tests is the number of oracle invocations actually executed.
	Tests int
	// CacheHits counts oracle invocations answered from the memo table
	// (the paper's Figure 6 walkthrough notes that repeated subsets need
	// not be re-tested).
	CacheHits int
	// Reductions counts accepted reductions of the candidate set.
	Reductions int
	// MaxGranularity is the largest partition count n reached.
	MaxGranularity int
}

// Minimize runs DD over items and returns a 1-minimal subset, along with
// statistics. The oracle must accept the full set; if it does not, the full
// set is returned unchanged with Stats.Tests == 1 (nothing can be proven
// removable against a broken baseline).
//
// Indices into the original item list are used internally so memoization
// keys are stable and the returned subset preserves original order.
func Minimize[T any](items []T, oracle Oracle[T]) ([]T, Stats) {
	return MinimizeWith(items, oracle, Options{})
}

// MinimizeWith runs DD with explicit options: worker count (parallel
// oracle evaluation) and an optional tracer recording rounds, oracle
// calls, and waves over the caller's simulated clock.
func MinimizeWith[T any](items []T, oracle Oracle[T], opts Options) ([]T, Stats) {
	if opts.Workers > 1 {
		return minimizeParallel(items, oracle, opts)
	}
	return minimize(items, oracle, opts)
}

func minimize[T any](items []T, oracle Oracle[T], opts Options) ([]T, Stats) {
	var stats Stats
	memo := make(map[string]bool)
	t := newTrace(opts, len(items))

	test := func(keep []int) bool {
		key := indexKey(keep)
		if v, ok := memo[key]; ok {
			stats.CacheHits++
			t.cacheHit()
			return v
		}
		subset := make([]T, len(keep))
		for i, idx := range keep {
			subset[i] = items[idx]
		}
		stats.Tests++
		v := t.oracleCall(len(keep), func() bool { return oracle(subset) })
		memo[key] = v
		return v
	}

	all := make([]int, len(items))
	for i := range all {
		all[i] = i
	}

	// Degenerate cases.
	if len(items) == 0 {
		t.finish(0, stats)
		return nil, stats
	}
	if !test(all) {
		t.finish(len(items), stats)
		return items, stats
	}
	// Fast path: if the empty set passes, everything is removable.
	if test(nil) {
		stats.Reductions++
		t.finish(0, stats)
		return nil, stats
	}

	current := all
	n := 2
	round := 0
	for {
		if n > len(current) {
			n = len(current)
		}
		if stats.MaxGranularity < n {
			stats.MaxGranularity = n
		}
		round++
		rs := t.startRound(round, n, len(current))
		parts := split(current, n)

		// Step 1: does some partition alone satisfy the oracle?
		reduced := false
		for _, p := range parts {
			if test(p) {
				current = p
				n = 2
				reduced = true
				stats.Reductions++
				break
			}
		}

		// Step 2: does some complement satisfy the oracle?
		if !reduced && n > 1 {
			for i := range parts {
				comp := complement(current, parts[i])
				if test(comp) {
					current = comp
					n = n - 1
					if n < 2 {
						n = 2
					}
					reduced = true
					stats.Reductions++
					break
				}
			}
		}
		t.endRound(rs, reduced, len(current))

		// Step 3: refine granularity or stop.
		if !reduced {
			if n >= len(current) {
				break
			}
			n = 2 * n
			if n > len(current) {
				n = len(current)
			}
		}
		if len(current) <= 1 {
			// A single remaining component: it is needed (empty set was
			// tested above or will be covered by partition tests).
			if len(current) == 1 && test(nil) {
				current = nil
				stats.Reductions++
			}
			break
		}
	}

	out := make([]T, len(current))
	for i, idx := range current {
		out[i] = items[idx]
	}
	t.finish(len(out), stats)
	return out, stats
}

// split divides idxs into n contiguous, near-equal partitions.
func split(idxs []int, n int) [][]int {
	if n <= 0 {
		n = 1
	}
	parts := make([][]int, 0, n)
	size := len(idxs) / n
	rem := len(idxs) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		if end > start {
			parts = append(parts, idxs[start:end])
		}
		start = end
	}
	return parts
}

// complement returns current minus part (both sorted index slices).
func complement(current, part []int) []int {
	inPart := make(map[int]bool, len(part))
	for _, i := range part {
		inPart[i] = true
	}
	out := make([]int, 0, len(current)-len(part))
	for _, i := range current {
		if !inPart[i] {
			out = append(out, i)
		}
	}
	return out
}

func indexKey(keep []int) string {
	var sb strings.Builder
	for _, i := range keep {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte(',')
	}
	return sb.String()
}
