package dd

import (
	"time"

	"repro/internal/obs"
)

// Options configures a minimization run beyond the algorithm's inputs.
type Options struct {
	// Workers > 1 evaluates candidate subsets concurrently (see
	// MinimizeParallel); 0 or 1 runs the sequential algorithm.
	Workers int
	// Tracer, when non-nil, records the minimization as a span tree:
	// one root per run, one span per DD round, and — sequentially —
	// one span per executed oracle call. Parallel runs record wave
	// spans instead of per-oracle spans: only wave boundaries are
	// deterministic synchronization points (virtual time accumulated
	// inside a wave is a sum, so its value after the wave join is
	// schedule-independent, but mid-wave reads would not be).
	Tracer *obs.Tracer
	// Now supplies the simulated timestamp for spans (e.g. the debloat
	// pipeline's virtual clock). Nil pins all spans to 0 but keeps the
	// structural tree and the metrics.
	Now func() time.Duration
}

// trace carries the per-run tracing state; a nil *trace disables
// everything, mirroring the nil-safety of obs itself.
type trace struct {
	tr   *obs.Tracer
	now  func() time.Duration
	root *obs.Span
	cur  *obs.Span // parent for oracle/wave spans (current round, else root)
}

func newTrace(opts Options, items int) *trace {
	if opts.Tracer == nil {
		return nil
	}
	t := &trace{tr: opts.Tracer, now: opts.Now}
	t.root = t.tr.StartChild(nil, "dd minimize", "dd", t.clock())
	t.root.Add(obs.Int("items", int64(items)))
	t.cur = t.root
	return t
}

func (t *trace) clock() time.Duration {
	if t == nil || t.now == nil {
		return 0
	}
	return t.now()
}

// finish closes the run root and records the run-level counters.
func (t *trace) finish(kept int, stats Stats) {
	if t == nil {
		return
	}
	t.root.Add(
		obs.Int("kept", int64(kept)),
		obs.Int("tests", int64(stats.Tests)),
		obs.Int("cache_hits", int64(stats.CacheHits)),
		obs.Int("reductions", int64(stats.Reductions)),
	).Finish(t.clock())
	reg := t.tr.Metrics()
	reg.Inc("dd.runs", 1)
	reg.Inc("dd.tests", int64(stats.Tests))
	reg.Inc("dd.cache_hits", int64(stats.CacheHits))
	reg.Inc("dd.reductions", int64(stats.Reductions))
}

// startRound opens one DD round span at granularity n.
func (t *trace) startRound(round, n, current int) *obs.Span {
	if t == nil {
		return nil
	}
	sp := t.tr.StartChild(t.root, "round", "dd", t.clock())
	sp.Add(
		obs.Int("round", int64(round)),
		obs.Int("granularity", int64(n)),
		obs.Int("candidates", int64(current)),
	)
	t.cur = sp
	t.tr.Metrics().Inc("dd.rounds", 1)
	return sp
}

func (t *trace) endRound(sp *obs.Span, reduced bool, current int) {
	if t == nil {
		return
	}
	sp.Add(obs.Bool("reduced", reduced), obs.Int("remaining", int64(current))).
		Finish(t.clock())
	t.cur = t.root
}

// oracleCall records one executed (non-memoized) sequential oracle call.
// It must bracket the call so the span extent covers the virtual time the
// oracle itself consumed.
func (t *trace) oracleCall(keep int, run func() bool) bool {
	if t == nil {
		return run()
	}
	start := t.clock()
	sp := t.tr.StartChild(t.cur, "oracle", "dd", start)
	pass := run()
	end := t.clock()
	sp.Add(obs.Int("keep", int64(keep)), obs.Bool("pass", pass)).Finish(end)
	t.tr.Metrics().Observe("dd.oracle.seconds", (end - start).Seconds())
	return pass
}

// cacheHit counts a memo-table answer (no span: nothing executed).
func (t *trace) cacheHit() {
	if t == nil {
		return
	}
	t.tr.Emit("dd.cache-hit", t.clock())
}

// wave brackets one index-ordered parallel wave. Both timestamps are read
// at the wave's synchronization points (launch and join), the only places
// where the shared virtual clock has a schedule-independent value.
func (t *trace) wave(start, size int, run func()) {
	if t == nil {
		run()
		return
	}
	begin := t.clock()
	run()
	t.tr.StartChild(t.cur, "wave", "dd", begin).
		Add(obs.Int("first", int64(start)), obs.Int("size", int64(size))).
		Finish(t.clock())
	t.tr.Metrics().Inc("dd.waves", 1)
}

// waveCancel records that a passing candidate in an earlier wave made the
// remaining candidates' oracle runs unnecessary.
func (t *trace) waveCancel(skipped int) {
	if t == nil || skipped <= 0 {
		return
	}
	t.tr.Emit("dd.wave-cancel", t.clock(), obs.Int("skipped", int64(skipped)))
	t.tr.Metrics().Inc("dd.wave_cancelled_candidates", int64(skipped))
}
