package dd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// subsetOracle builds an oracle that passes iff all of `needed` are present
// in the candidate.
func subsetOracle(needed []int) Oracle[int] {
	return func(keep []int) bool {
		have := make(map[int]bool, len(keep))
		for _, k := range keep {
			have[k] = true
		}
		for _, n := range needed {
			if !have[n] {
				return false
			}
		}
		return true
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMinimizeFindsExactNeededSet(t *testing.T) {
	cases := [][]int{
		{},           // everything removable
		{0},          // first
		{9},          // last
		{3, 4, 5},    // contiguous cluster
		{0, 5, 9},    // scattered
		seq(10),      // nothing removable
		{2, 3, 7, 8}, // two clusters
	}
	for _, needed := range cases {
		items := seq(10)
		min, stats := Minimize(items, subsetOracle(needed))
		if len(min) != len(needed) {
			t.Errorf("needed %v: got %v (stats %+v)", needed, min, stats)
			continue
		}
		have := map[int]bool{}
		for _, m := range min {
			have[m] = true
		}
		for _, n := range needed {
			if !have[n] {
				t.Errorf("needed %v: result %v missing %d", needed, min, n)
			}
		}
	}
}

func TestMinimizeEmptyInput(t *testing.T) {
	min, stats := Minimize(nil, func(keep []string) bool { return true })
	if len(min) != 0 || stats.Tests != 0 {
		t.Errorf("min=%v stats=%+v", min, stats)
	}
}

func TestMinimizeBrokenBaseline(t *testing.T) {
	// If even the full set fails, DD returns it unchanged.
	items := seq(6)
	min, stats := Minimize(items, func(keep []int) bool { return false })
	if len(min) != len(items) {
		t.Errorf("broken baseline should return full set, got %v", min)
	}
	if stats.Tests != 1 {
		t.Errorf("tests = %d, want 1", stats.Tests)
	}
}

func TestMinimizeSingleItem(t *testing.T) {
	min, _ := Minimize([]int{7}, subsetOracle([]int{7}))
	if len(min) != 1 {
		t.Errorf("needed single item removed: %v", min)
	}
	min, _ = Minimize([]int{7}, subsetOracle(nil))
	if len(min) != 0 {
		t.Errorf("removable single item kept: %v", min)
	}
}

func TestMinimizePreservesOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	min, _ := Minimize(items, func(keep []string) bool {
		have := map[string]bool{}
		for _, k := range keep {
			have[k] = true
		}
		return have["b"] && have["d"]
	})
	if len(min) != 2 || min[0] != "b" || min[1] != "d" {
		t.Errorf("min = %v, want [b d]", min)
	}
}

func TestMinimizeMemoization(t *testing.T) {
	calls := 0
	items := seq(8)
	oracle := func(keep []int) bool {
		calls++
		return subsetOracle([]int{1, 6})(keep)
	}
	_, stats := Minimize(items, oracle)
	if stats.Tests != calls {
		t.Errorf("stats.Tests=%d but oracle called %d times", stats.Tests, calls)
	}
}

// Property: for any monotone oracle defined by a needed subset, Minimize
// returns exactly that subset — 1-minimality coincides with global
// minimality for monotone properties.
func TestQuickMinimizeMonotone(t *testing.T) {
	f := func(nRaw uint8, mask uint16) bool {
		n := int(nRaw%40) + 1
		var needed []int
		for i := 0; i < n && i < 16; i++ {
			if mask&(1<<uint(i)) != 0 {
				needed = append(needed, i)
			}
		}
		min, _ := Minimize(seq(n), subsetOracle(needed))
		if len(min) != len(needed) {
			return false
		}
		have := map[int]bool{}
		for _, m := range min {
			have[m] = true
		}
		for _, nd := range needed {
			if !have[nd] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the result always satisfies the oracle, and is 1-minimal —
// removing any single element breaks it — even for non-monotone oracles.
func TestQuickMinimizeOneMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(24) + 1
		// Random "pair dependency" oracle: needs set A, and element x only
		// if element y is present (non-monotone-ish but still satisfiable
		// by the full set).
		needed := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				needed[i] = true
			}
		}
		oracle := func(keep []int) bool {
			have := map[int]bool{}
			for _, k := range keep {
				have[k] = true
			}
			for nd := range needed {
				if !have[nd] {
					return false
				}
			}
			return true
		}
		min, _ := Minimize(seq(n), oracle)
		if !oracle(min) {
			t.Fatalf("trial %d: result %v fails oracle", trial, min)
		}
		// 1-minimality.
		for drop := range min {
			reduced := make([]int, 0, len(min)-1)
			reduced = append(reduced, min[:drop]...)
			reduced = append(reduced, min[drop+1:]...)
			if oracle(reduced) {
				t.Fatalf("trial %d: result %v not 1-minimal (can drop %d)", trial, min, min[drop])
			}
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	idxs := seq(10)
	for n := 1; n <= 10; n++ {
		parts := split(idxs, n)
		total := 0
		for _, p := range parts {
			if len(p) == 0 {
				t.Errorf("n=%d: empty partition", n)
			}
			total += len(p)
		}
		if total != 10 {
			t.Errorf("n=%d: partitions cover %d items", n, total)
		}
	}
}

func TestComplement(t *testing.T) {
	cur := []int{1, 3, 5, 7}
	comp := complement(cur, []int{3, 7})
	if len(comp) != 2 || comp[0] != 1 || comp[1] != 5 {
		t.Errorf("complement = %v", comp)
	}
}

// TestMinimizeStatsReasonable bounds the oracle-call count: ddmin on a
// monotone oracle over n items with k needed should stay well under the
// quadratic worst case.
func TestMinimizeStatsReasonable(t *testing.T) {
	items := seq(200)
	_, stats := Minimize(items, subsetOracle([]int{10, 100, 190}))
	if stats.Tests > 600 {
		t.Errorf("ddmin used %d tests for n=200, k=3 — too many", stats.Tests)
	}
	if stats.Reductions == 0 {
		t.Error("no reductions recorded")
	}
}
