package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Errorf("fresh clock reads %v", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(250 * time.Microsecond)
	if c.Now() != 5*time.Millisecond+250*time.Microsecond {
		t.Errorf("clock = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("reset failed")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	NewClock().Advance(-time.Nanosecond)
}

func TestAllocatorAccounting(t *testing.T) {
	a := NewAllocator()
	a.Alloc(100)
	a.Alloc(50)
	if a.Used() != 150 || a.Peak() != 150 {
		t.Errorf("used=%d peak=%d", a.Used(), a.Peak())
	}
	a.Free(120)
	if a.Used() != 30 {
		t.Errorf("used after free = %d", a.Used())
	}
	if a.Peak() != 150 {
		t.Errorf("peak should persist: %d", a.Peak())
	}
	a.Alloc(40)
	if a.Peak() != 150 {
		t.Errorf("peak moved unexpectedly: %d", a.Peak())
	}
	a.Alloc(200)
	if a.Peak() != 270 {
		t.Errorf("peak = %d, want 270", a.Peak())
	}
}

func TestAllocatorFreeClamps(t *testing.T) {
	a := NewAllocator()
	a.Alloc(10)
	a.Free(100)
	if a.Used() != 0 {
		t.Errorf("over-free should clamp at 0, got %d", a.Used())
	}
}

func TestAllocatorNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative alloc should panic")
		}
	}()
	NewAllocator().Alloc(-1)
}

func TestMBf(t *testing.T) {
	if MBf(MB) != 1 || MBf(3*MB/2) != 1.5 {
		t.Errorf("MBf conversions wrong: %f %f", MBf(MB), MBf(3*MB/2))
	}
}

// Property: Peak is always >= Used, and Used equals the running sum of
// allocs minus frees (clamped at zero).
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		a := NewAllocator()
		model := int64(0)
		for _, op := range ops {
			n := int64(op) // widen before negating: int16 min would overflow
			if n >= 0 {
				a.Alloc(n)
				model += n
			} else {
				a.Free(-n)
				model -= -n
				if model < 0 {
					model = 0
				}
			}
			if a.Used() != model || a.Peak() < a.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the clock is monotone under any sequence of non-negative
// advances.
func TestQuickClockMonotone(t *testing.T) {
	f := func(deltas []uint16) bool {
		c := NewClock()
		prev := c.Now()
		for _, d := range deltas {
			c.Advance(time.Duration(d))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
