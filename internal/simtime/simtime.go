// Package simtime provides the deterministic virtual clock and simulated
// memory allocator that every "measurement" in this repository runs on.
//
// The paper measures wall-clock import time (via patched import machinery)
// and memory footprint (via psutil). Both are noisy and hardware-dependent;
// this reproduction replaces them with a virtual clock advanced by the
// interpreter's cost model and an allocator that tracks simulated bytes.
// The marginal-cost arithmetic of the paper (Eq. 2) is unchanged — only the
// source of the numbers differs, which makes all experiments bit-
// reproducible.
package simtime

import (
	"fmt"
	"time"
)

// Clock is a deterministic virtual clock. The zero value reads 0.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock reading zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances panic: virtual
// time is monotonic by construction, so a negative delta is always a bug in
// the caller's cost accounting.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.now += d
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

// Allocator tracks simulated memory. Like the clock, it is deterministic:
// object creation in the interpreter and load_native calls in synthetic
// libraries account bytes here.
type Allocator struct {
	used int64 // bytes currently allocated
	peak int64 // high-water mark
}

// NewAllocator returns an empty allocator.
func NewAllocator() *Allocator { return &Allocator{} }

// Alloc accounts n bytes. Negative n panics.
func (a *Allocator) Alloc(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simtime: negative alloc %d", n))
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
}

// Free releases n bytes. Frees are clamped at zero so imperfect bookkeeping
// in callers can never produce a negative footprint.
func (a *Allocator) Free(n int64) {
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
}

// Used returns the bytes currently allocated.
func (a *Allocator) Used() int64 { return a.used }

// Peak returns the high-water mark.
func (a *Allocator) Peak() int64 { return a.peak }

// Reset empties the allocator and clears the peak.
func (a *Allocator) Reset() { a.used, a.peak = 0, 0 }

// Common sizes for converting between units in cost models.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// MBf converts a byte count to megabytes as a float.
func MBf(bytes int64) float64 { return float64(bytes) / float64(MB) }
