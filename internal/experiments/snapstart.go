package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faas"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 12 — initialization time: λ-trim vs C/R vs C/R + λ-trim
// ---------------------------------------------------------------------------

// Figure12Row is one app's four-variant comparison.
type Figure12Row struct {
	App         string
	Original    time.Duration
	OriginalCR  time.Duration
	Trimmed     time.Duration
	TrimmedCR   time.Duration
	CkptOrigMB  float64
	CkptTrimMB  float64
	CkptSavings float64
}

// Figure12Result aggregates rows.
type Figure12Result struct {
	Rows []Figure12Row
	// AvgCkptSaving mirrors Table 3's checkpoint column (paper: ~11%).
	AvgCkptSaving float64
}

// Figure12 compares initialization latency across the four variants.
func (s *Suite) Figure12() (*Figure12Result, error) {
	out := &Figure12Result{}
	var savings []float64
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		cmp, err := checkpoint.CompareInit(res.Original, res.App)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure12Row{
			App:         name,
			Original:    cmp.Original,
			OriginalCR:  cmp.OriginalCR,
			Trimmed:     cmp.Debloated,
			TrimmedCR:   cmp.DebloatedCR,
			CkptOrigMB:  cmp.OriginalCkptMB,
			CkptTrimMB:  cmp.DebloatedCkptMB,
			CkptSavings: cmp.CkptSizeSavings,
		})
		savings = append(savings, cmp.CkptSizeSavings)
	}
	out.AvgCkptSaving = stats.Mean(savings)
	return out, nil
}

// Render prints the comparison.
func (f *Figure12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — initialization time: original vs C/R vs λ-trim vs C/R+λ-trim\n")
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %12s %16s\n",
		"Application", "Original", "C/R", "λ-trim", "C/R+λ-trim", "Ckpt MB(o->t)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %9.2fs %9.2fs %9.2fs %11.2fs %8.0f ->%5.0f\n",
			r.App, r.Original.Seconds(), r.OriginalCR.Seconds(),
			r.Trimmed.Seconds(), r.TrimmedCR.Seconds(), r.CkptOrigMB, r.CkptTrimMB)
	}
	fmt.Fprintf(&b, "average checkpoint shrink from debloating: %.1f%%\n", 100*f.AvgCkptSaving)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 13 — CDF of SnapStart cost share over the simulated Azure trace
// ---------------------------------------------------------------------------

// Figure13KeepAlives are the paper's three keep-alive settings.
var Figure13KeepAlives = []time.Duration{1 * time.Minute, 15 * time.Minute, 100 * time.Minute}

// Figure13Curve is one keep-alive setting's CDF.
type Figure13Curve struct {
	KeepAlive time.Duration
	// Ratios are each function's SnapStart-cost share of total cost.
	Ratios []float64
	CDF    []stats.CDFPoint
	Median float64
}

// Figure13Result holds all curves.
type Figure13Result struct {
	Curves []Figure13Curve
}

// Figure13 simulates every trace function under SnapStart and computes the
// CDF of snapstart-cost / total-cost per keep-alive setting.
func (s *Suite) Figure13() (*Figure13Result, error) {
	tr := trace.Generate(trace.DefaultGenConfig())
	pricing := s.Platform.Pricing
	out := &Figure13Result{}
	for _, ka := range Figure13KeepAlives {
		var ratios []float64
		for i := range tr.Functions {
			fn := &tr.Functions[i]
			if len(fn.Arrivals) == 0 {
				continue
			}
			dur := time.Duration(fn.DurationMS * float64(time.Millisecond))
			pool := trace.SimulatePool(fn.Arrivals, dur, ka)

			// Function state checkpoint: process base plus its working set.
			ckptMB := checkpoint.ProcessBaseMB + fn.MemoryMB*0.9
			ckptGB := ckptMB / 1024

			memMB := pricing.ConfigureMemory(fn.MemoryMB)
			billed := pricing.BillDuration(dur)
			invocationUSD := float64(pool.Invocations) * pricing.Cost(billed, memMB)

			snapUSD := ckptGB*checkpoint.CacheUSDPerGBSecond*tr.Period.Seconds() +
				float64(pool.ColdStarts)*ckptGB*checkpoint.RestoreUSDPerGB

			ratios = append(ratios, snapUSD/(snapUSD+invocationUSD))
		}
		out.Curves = append(out.Curves, Figure13Curve{
			KeepAlive: ka,
			Ratios:    ratios,
			CDF:       stats.CDF(ratios),
			Median:    stats.Median(ratios),
		})
	}
	return out, nil
}

// Render prints CDF samples per curve.
func (f *Figure13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — CDF of SnapStart cost over total cost (simulated Azure trace)\n")
	quantiles := []float64{10, 25, 50, 75, 90}
	fmt.Fprintf(&b, "%-16s", "Keep-alive")
	for _, q := range quantiles {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("p%.0f", q))
	}
	b.WriteString("\n")
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "%-16s", c.KeepAlive)
		for _, q := range quantiles {
			fmt.Fprintf(&b, " %7.1f%%", 100*stats.Percentile(c.Ratios, q))
		}
		b.WriteString("\n")
	}
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "median SnapStart share at keep-alive %v: %.0f%%\n", c.KeepAlive, 100*c.Median)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 14 — amortized invocation and SnapStart costs per benchmarked app
// ---------------------------------------------------------------------------

// Figure14Row is one app's amortized cost breakdown, original vs λ-trim.
type Figure14Row struct {
	App string
	// MatchedFn is the ID of the most similar trace function.
	MatchedFn   int
	Invocations int
	ColdStarts  int

	// Per-invocation amortized USD.
	InvocationOrig, CacheRestoreOrig float64
	InvocationTrim, CacheRestoreTrim float64

	// TotalSaving is the λ-trim reduction of (invocation + cache+restore).
	TotalSaving float64
}

// Figure14Result aggregates rows.
type Figure14Result struct {
	Rows []Figure14Row
	// AvgSaving / MaxSaving across apps (paper: avg ~11%, up to 42%).
	AvgSaving, MaxSaving float64
}

// Figure14 simulates each benchmarked app over 24 hours of its most
// similar trace function's arrivals, with SnapStart.
func (s *Suite) Figure14() (*Figure14Result, error) {
	tr := trace.Generate(trace.DefaultGenConfig())
	pricing := s.Platform.Pricing
	const keepAlive = 15 * time.Minute

	out := &Figure14Result{}
	var savings []float64
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		origInv, err := faas.MeasureColdStart(res.Original, s.Platform)
		if err != nil {
			return nil, err
		}
		trimInv, err := faas.MeasureColdStart(res.App, s.Platform)
		if err != nil {
			return nil, err
		}
		origCkpt, err := checkpoint.Take(res.Original)
		if err != nil {
			return nil, err
		}
		trimCkpt, err := checkpoint.Take(res.App)
		if err != nil {
			return nil, err
		}

		fn := tr.NearestFunction(origInv.PeakMB, origInv.Exec.Seconds()*1000)
		if fn == nil || len(fn.Arrivals) == 0 {
			continue
		}
		dur := origInv.Exec
		pool := trace.SimulatePool(fn.Arrivals, dur, keepAlive)
		n := float64(pool.Invocations)

		amortize := func(inv *faas.Invocation, ckpt *checkpoint.Checkpoint) (float64, float64) {
			memMB := pricing.ConfigureMemory(inv.PeakMB)
			billed := pricing.BillDuration(inv.Exec)
			invocationUSD := n * pricing.Cost(billed, memMB)
			snapUSD := ckpt.CacheCostUSD(tr.Period) +
				float64(pool.ColdStarts)*ckpt.RestoreCostUSD()
			return invocationUSD / n, snapUSD / n
		}
		invO, snapO := amortize(origInv, origCkpt)
		invT, snapT := amortize(trimInv, trimCkpt)
		saving := stats.Improvement(invO+snapO, invT+snapT)
		savings = append(savings, saving)
		out.Rows = append(out.Rows, Figure14Row{
			App: name, MatchedFn: fn.ID,
			Invocations: pool.Invocations, ColdStarts: pool.ColdStarts,
			InvocationOrig: invO, CacheRestoreOrig: snapO,
			InvocationTrim: invT, CacheRestoreTrim: snapT,
			TotalSaving: saving,
		})
	}
	out.AvgSaving = stats.Mean(savings)
	out.MaxSaving = stats.Max(savings)
	return out, nil
}

// Render prints the amortized breakdown.
func (f *Figure14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14 — amortized per-invocation costs with SnapStart (24h simulated trace)\n")
	fmt.Fprintf(&b, "%-18s %6s %6s %14s %14s %14s %14s %8s\n",
		"Application", "Invoc", "Cold", "Inv(orig)$", "C+R(orig)$", "Inv(trim)$", "C+R(trim)$", "Saving")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %6d %6d %14.3g %14.3g %14.3g %14.3g %7.1f%%\n",
			r.App, r.Invocations, r.ColdStarts,
			r.InvocationOrig, r.CacheRestoreOrig, r.InvocationTrim, r.CacheRestoreTrim,
			100*r.TotalSaving)
	}
	fmt.Fprintf(&b, "total-cost reduction: avg %.1f%%, max %.1f%% (paper: avg 11%%, up to 42%%)\n",
		100*f.AvgSaving, 100*f.MaxSaving)
	return b.String()
}
