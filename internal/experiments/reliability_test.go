package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestReliabilityExperiment(t *testing.T) {
	res, err := suite.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byName := map[string]ReliabilityRow{}
	for i, want := range []string{"original", "debloated", "fallback"} {
		if res.Rows[i].Deployment != want {
			t.Fatalf("row %d = %q, want %q", i, res.Rows[i].Deployment, want)
		}
		byName[want] = res.Rows[i]
	}

	orig, trim, fb := byName["original"], byName["debloated"], byName["fallback"]

	// All three replay the same workload.
	for name, row := range byName {
		if row.Requests == 0 || row.Requests != orig.Requests {
			t.Errorf("%s: requests = %d, want %d (shared workload)", name, row.Requests, orig.Requests)
		}
		if row.CostUSD <= 0 {
			t.Errorf("%s: cost = %v, want > 0", name, row.CostUSD)
		}
		if row.RetryAmplification() < 1 {
			t.Errorf("%s: retry amplification %v < 1", name, row.RetryAmplification())
		}
	}

	// Debloating shrinks the provisioned memory configuration.
	if trim.MemoryMB >= orig.MemoryMB {
		t.Errorf("debloated MemoryMB %d !< original %d", trim.MemoryMB, orig.MemoryMB)
	}

	// Injected faults actually fire somewhere in the replay.
	if orig.OOMKills == 0 {
		t.Error("no OOM kills despite memory-spike injection")
	}
	if orig.Throttles == 0 {
		t.Error("no throttles despite concurrency limit")
	}
	if orig.InitCrashes+trim.InitCrashes+fb.InitCrashes == 0 {
		t.Error("no init crashes despite injection")
	}

	// The original handles every code path; retries absorb the transient
	// faults, so it ends fault-tolerant. The bare debloated deployment
	// fails on the uncovered advanced path (handler errors are never
	// retried); the fallback wrapper absorbs those.
	if orig.Failures != 0 {
		t.Errorf("original failures = %d, want 0 after retries", orig.Failures)
	}
	if trim.Failures == 0 {
		t.Error("bare debloated deployment should fail on uncovered paths")
	}
	if fb.FallbackServed == 0 {
		t.Error("fallback deployment never used its fallback")
	}
	if fb.Failures >= trim.Failures {
		t.Errorf("fallback failures %d !< bare debloated %d", fb.Failures, trim.Failures)
	}

	// The wrapper's insurance premium: fallback costs more than bare
	// debloated (double invocations on uncovered paths) but the debloated
	// variants stay cheaper than the original.
	if fb.CostUSD <= trim.CostUSD {
		t.Errorf("fallback cost %v !> bare debloated %v", fb.CostUSD, trim.CostUSD)
	}
	if trim.CostUSD >= orig.CostUSD {
		t.Errorf("debloated cost %v !< original %v", trim.CostUSD, orig.CostUSD)
	}

	out := res.Render()
	for _, want := range []string{"Reliability", "original", "debloated", "fallback", "RetryAmp"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// A fixed seed reproduces the experiment byte-for-byte.
func TestReliabilityDeterministic(t *testing.T) {
	a, err := suite.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed rendered differently:\n%s\nvs\n%s", a.Render(), b.Render())
	}

	cfg := DefaultReliabilityConfig()
	cfg.Seed = 99
	c, err := suite.ReliabilityWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Render() == a.Render() {
		t.Error("different seeds rendered identically")
	}
}

// A timeout between the debloated and original cold-start windows shows
// the λ-trim reliability win the cost tables cannot: the original's
// heavyweight initialization blows the deadline on every cold start,
// while the debloated function's trimmed import finishes in time.
func TestReliabilityTimeoutPressure(t *testing.T) {
	cfg := DefaultReliabilityConfig()
	cfg.Timeout = 500 * time.Millisecond
	res, err := suite.ReliabilityWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var orig, trim ReliabilityRow
	for _, row := range res.Rows {
		switch row.Deployment {
		case "original":
			orig = row
		case "debloated":
			trim = row
		}
	}
	if orig.Timeouts == 0 {
		t.Error("original should time out on cold starts under a 500ms deadline")
	}
	if orig.Failures == 0 {
		t.Error("repeated cold-start timeouts should exhaust retries")
	}
	if trim.Timeouts != 0 {
		t.Errorf("debloated timeouts = %d, want 0 (trimmed init fits the deadline)", trim.Timeouts)
	}
}
