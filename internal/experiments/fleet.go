package experiments

import (
	"time"

	"repro/internal/fleet"
)

// FleetConfig parameterizes the fleet-scale replay target: a synthetic
// Azure-trace-shaped population drawn from the corpus archetypes, replayed
// through the sharded virtual-time engine (internal/fleet). Workers only
// changes wall-clock time; every rendered byte is a pure function of the
// remaining fields.
type FleetConfig struct {
	// Functions is the population size; Seed keys both the population
	// draw and every per-function arrival stream.
	Functions int
	Seed      int64
	// Workers is the shard count (0: GOMAXPROCS).
	Workers int
	// DashboardEvery is the dashboard frame interval over the replayed day.
	DashboardEvery time.Duration
}

// DefaultFleetConfig is the paper-scale default: 10k functions, on the
// order of 1-2 million invocations over one day.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Functions: 10000, Seed: 1, DashboardEvery: 4 * time.Hour}
}

// Fleet runs the fleet target under the suite's knobs (FleetFunctions,
// FleetWorkers; zero values take the defaults).
func (s *Suite) Fleet() (*fleet.Result, error) {
	cfg := DefaultFleetConfig()
	if s.FleetFunctions > 0 {
		cfg.Functions = s.FleetFunctions
	}
	cfg.Workers = s.FleetWorkers
	return s.FleetWith(cfg)
}

// FleetWith generates the population and replays it. The corpus archetypes
// parameterize each member's cold-init, handler, and memory observables —
// half the fleet deploys the original arm, half the λ-trim-debloated arm —
// so the report quantifies debloating at fleet scale without re-running
// the DD pipeline per member. When the suite carries a tracer, the
// replay's bounded span tree and merged shard counters fold into it for
// the flamegraph and metrics exporters.
func (s *Suite) FleetWith(cfg FleetConfig) (*fleet.Result, error) {
	pc := fleet.DefaultPopConfig()
	pc.Functions = cfg.Functions
	pc.Seed = cfg.Seed
	pc.Pricing = s.Platform.Pricing
	pop := fleet.GeneratePopulation(pc, nil)
	res, err := fleet.Replay(fleet.Config{
		Workers:        cfg.Workers,
		Period:         pc.Period,
		SLOs:           fleet.DefaultSLOs(),
		DashboardEvery: cfg.DashboardEvery,
		Seed:           cfg.Seed,
		Pricing:        pc.Pricing,
	}, pop)
	if err != nil {
		return nil, err
	}
	res.EmitSpans(s.Platform.Tracer)
	return res, nil
}
