package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/debloat"
	"repro/internal/obs"
	"repro/internal/pyruntime"
)

// goldenRenderer matches every driver's Render method.
type goldenRenderer interface{ Render() string }

// goldenDrivers lists every table and figure, in presentation order —
// the same set cmd/experiments renders for "all".
var goldenDrivers = []struct {
	name string
	run  func(*Suite) (goldenRenderer, error)
}{
	{"fig1", func(s *Suite) (goldenRenderer, error) { return s.Figure1() }},
	{"table1", func(s *Suite) (goldenRenderer, error) { return s.Table1() }},
	{"fig2", func(s *Suite) (goldenRenderer, error) { return s.Figure2() }},
	{"fig8", func(s *Suite) (goldenRenderer, error) { return s.Figure8() }},
	{"table2", func(s *Suite) (goldenRenderer, error) { return s.Table2() }},
	{"table2x", func(s *Suite) (goldenRenderer, error) { return s.Table2Ext() }},
	{"fig9", func(s *Suite) (goldenRenderer, error) { return s.Figure9() }},
	{"table3", func(s *Suite) (goldenRenderer, error) { return s.Table3() }},
	{"fig10", func(s *Suite) (goldenRenderer, error) { return s.Figure10() }},
	{"fig11", func(s *Suite) (goldenRenderer, error) { return s.Figure11() }},
	{"fig12", func(s *Suite) (goldenRenderer, error) { return s.Figure12() }},
	{"fig13", func(s *Suite) (goldenRenderer, error) { return s.Figure13() }},
	{"fig14", func(s *Suite) (goldenRenderer, error) { return s.Figure14() }},
	{"table4", func(s *Suite) (goldenRenderer, error) { return s.Table4() }},
	{"ext-tune", func(s *Suite) (goldenRenderer, error) { return s.ExtPowerTune() }},
	{"reliability", func(s *Suite) (goldenRenderer, error) { return s.Reliability() }},
	{"monitor", func(s *Suite) (goldenRenderer, error) { return s.Monitor() }},
	{"rollout", func(s *Suite) (goldenRenderer, error) { return s.Rollout() }},
	{"fleet", func(s *Suite) (goldenRenderer, error) { return s.Fleet() }},
}

func renderEverything(t *testing.T, s *Suite) string {
	t.Helper()
	var b strings.Builder
	for _, d := range goldenDrivers {
		r, err := d.run(s)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", d.name, r.Render())
	}
	return b.String()
}

// stripMemoCounters drops the memo.snapshot.* counter lines from a trace
// summary: with a shared cache and a worker pool, which run hits and which
// misses is schedule-dependent (the documented carve-out in DESIGN.md §9).
// Everything else in the summary must match byte for byte.
func stripMemoCounters(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.Contains(l, "memo.snapshot.") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// resultSummary flattens a debloat result's observables for comparison.
func resultSummary(r *debloat.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle_runs=%d debloat_time=%s removed=%d\n",
		r.OracleRuns, r.DebloatTime, r.TotalRemoved())
	for _, m := range r.Modules {
		fmt.Fprintf(&b, "  %s %d->%d removed=%v dd_tests=%d skipped=%q\n",
			m.Module, m.AttrsBefore, m.AttrsAfter, m.Removed, m.DD.Tests, m.Skipped)
	}
	return b.String()
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestDebloatAllGoldenDeterminism is the PR's hard invariant: a suite
// primed by DebloatAll(8) with shared memoization caches must render every
// table and figure — and the trace summary — byte-identically to a
// sequential, memoization-disabled run. Parallelism and caching may only
// change real wall-clock time.
func TestDebloatAllGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		// Fast variant: a small corpus subset, comparing the debloat
		// results' observables instead of every rendered figure.
		subset := []string{"markdown", "igraph", "dna-visualization", "lightgbm"}
		seq := NewSuite()
		seq.DisableMemo = true
		if err := seq.DebloatAll(1, subset...); err != nil {
			t.Fatal(err)
		}
		par := NewSuite()
		if err := par.DebloatAll(8, subset...); err != nil {
			t.Fatal(err)
		}
		for _, name := range subset {
			a, err := seq.Debloat(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Debloat(name)
			if err != nil {
				t.Fatal(err)
			}
			if sa, sb := resultSummary(a), resultSummary(b); sa != sb {
				t.Errorf("%s diverged:\n%s", name, firstDiff(sa, sb))
			}
		}
		return
	}

	seq := NewSuite()
	seq.DisableMemo = true
	seq.Platform.Tracer = obs.New()
	if err := seq.DebloatAll(1); err != nil {
		t.Fatal(err)
	}
	golden := renderEverything(t, seq)

	par := NewSuite()
	par.Platform.Tracer = obs.New()
	if err := par.DebloatAll(8); err != nil {
		t.Fatal(err)
	}
	got := renderEverything(t, par)

	if golden != got {
		t.Fatalf("rendered output diverged between sequential-uncached and parallel-memoized runs:\n%s",
			firstDiff(golden, got))
	}
	gs := stripMemoCounters(seq.Platform.Tracer.Summary())
	ps := stripMemoCounters(par.Platform.Tracer.Summary())
	if gs != ps {
		t.Fatalf("trace summaries diverged:\n%s", firstDiff(gs, ps))
	}
}

// TestSnapshotCacheSharedAcrossSuites exercises one snapshot cache shared
// by concurrent suites (the -race CI job's main target): no data races, and
// the second wave of work reuses entries recorded by the first.
func TestSnapshotCacheSharedAcrossSuites(t *testing.T) {
	shared := pyruntime.NewSnapshotCache()
	subset := []string{"markdown", "igraph"}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewSuite()
			s.Snapshots = shared
			if err := s.DebloatAll(4, subset...); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := shared.Stats()
	if st.Misses == 0 {
		t.Fatalf("shared cache recorded nothing: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("shared cache was never reused: %+v", st)
	}
}
