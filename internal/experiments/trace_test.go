package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// replayTelemetry debloats markdown and replays the reliability experiment
// under a tracer, returning both telemetry renderings.
func replayTelemetry(t *testing.T, seed int64) (chrome, jsonl []byte) {
	t.Helper()
	tr := obs.New()
	s := NewSuite()
	s.Platform.Tracer = tr

	res, err := s.Debloat("markdown")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultReliabilityConfig()
	cfg.App = "markdown"
	cfg.Seed = seed
	cfg.MaxRequests = 40
	if _, err := ReliabilityCompare(res.Original, res.App, s.Platform, cfg); err != nil {
		t.Fatal(err)
	}

	chrome, err = tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	return chrome, tr.EventLogJSONL()
}

// The telemetry determinism guarantee, end to end: a fixed fault seed
// reproduces the full trace byte-for-byte — spans, events, ordering, and
// formatting — while a different seed perturbs it.
func TestReplayTelemetryGoldenDeterminism(t *testing.T) {
	chromeA, jsonlA := replayTelemetry(t, 7)
	chromeB, jsonlB := replayTelemetry(t, 7)
	if !bytes.Equal(chromeA, chromeB) {
		t.Error("same seed produced different Chrome traces")
	}
	if !bytes.Equal(jsonlA, jsonlB) {
		t.Error("same seed produced different JSONL event logs")
	}

	chromeC, jsonlC := replayTelemetry(t, 1007)
	if bytes.Equal(chromeA, chromeC) {
		t.Error("different seeds produced identical Chrome traces")
	}
	if bytes.Equal(jsonlA, jsonlC) {
		t.Error("different seeds produced identical JSONL event logs")
	}

	// The trace must be loadable Chrome trace-event JSON with the
	// platform's failure events present.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeA, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
	}
	for _, want := range []string{"invoke markdown", "request markdown", "invocation", "faas.fault-injected"} {
		if !seen[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}
