package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/obs/monitor"
	"repro/internal/rollout"
)

// ---------------------------------------------------------------------------
// Rollout — closed-loop deployment of debloated functions (extension)
// ---------------------------------------------------------------------------
//
// The paper ships a debloated artifact and a fallback wrapper (§5.4) and
// leaves the operational loop — how the artifact reaches production, what
// happens when the wrapper starts firing, who re-runs λ-trim (§9) — to the
// operator. This experiment closes that loop and prices it. A fleet of
// corpus apps replays a seeded bursty trace under three deployment
// regimes:
//
//	fallback-only   the paper's static wrapper: every over-trim miss runs
//	                the debloated attempt to its AttributeError, then the
//	                original on top — two Eq.-1 bills per request, forever
//	rollout         the closed-loop controller: staged canary behind a
//	                weighted alias, SLO-gated advancement, a fallback-storm
//	                circuit breaker that routes storms straight to the
//	                original, and self-healing re-debloat from the storm's
//	                failing inputs
//	oracle-clean    the counterfactual: artifacts debloated with the
//	                advanced-mode input in the oracle from day one
//
// Mid-trace, storm members' traffic shifts to the advanced mode whose
// attribute λ-trim removed. The fallback-only arm double-bills every such
// request to the end of the trace; the controller opens the breaker within
// a window, re-debloats, canaries the repaired artifact back to 100%, and
// its steady-state $/invocation converges to the oracle-clean level.

// RolloutConfig parameterizes the closed-loop replay.
type RolloutConfig struct {
	// StormApps get advanced-mode traffic after StormFrac of the trace;
	// their debloated artifacts carry the latent over-trim.
	StormApps []string
	// CleanApps receive only oracle traffic throughout.
	CleanApps []string
	// Seed drives the trace generator and the alias routing draws.
	Seed int64
	// MaxRequests caps replayed arrivals; BurstWindow groups arrivals
	// closer than this into one concurrent burst.
	MaxRequests int
	BurstWindow time.Duration
	// StormFrac and SteadyFrac position the storm onset and the
	// steady-state costing window as fractions of the trace span.
	StormFrac, SteadyFrac float64
	// Stages is the canary ramp; GateResolution the health-gate tick.
	Stages         []rollout.Stage
	GateResolution time.Duration
	// Breaker tunes the fallback-storm circuit breaker.
	Breaker rollout.BreakerConfig
	// Retry is the client-side retry policy for every arm.
	Retry faas.RetryPolicy
}

// DefaultRolloutConfig sizes the loop to the seeded trace: second-scale
// bakes so the initial canary promotes before the storm, and a breaker
// window matching the storm request rate.
func DefaultRolloutConfig() RolloutConfig {
	return RolloutConfig{
		StormApps:   []string{"lightgbm", "dna-visualization"},
		CleanApps:   []string{"markdown"},
		Seed:        7,
		MaxRequests: 360,
		BurstWindow: 2 * time.Second,
		StormFrac:   0.35,
		SteadyFrac:  0.80,
		Stages: []rollout.Stage{
			{Weight: 0.05, Bake: 30 * time.Second},
			{Weight: 0.25, Bake: 30 * time.Second},
			{Weight: 1.00, Bake: time.Minute},
		},
		GateResolution: 10 * time.Second,
		Breaker: rollout.BreakerConfig{
			Window:       time.Minute,
			MinRequests:  6,
			FallbackRate: 0.5,
			Consecutive:  4,
			Cooldown:     10 * time.Minute,
			Probes:       3,
		},
		Retry: faas.DefaultRetryPolicy(),
	}
}

// RolloutArmRow is one deployment regime's outcome.
type RolloutArmRow struct {
	Arm       string
	Requests  int
	Fallbacks int
	Opens     int
	Heals     int
	CostUSD   float64
	// Steady* cover requests completing inside the steady-state window.
	SteadyReqs    int
	SteadyCold    int
	SteadyCostUSD float64
}

// CostPerInv is the arm's overall $/invocation.
func (r RolloutArmRow) CostPerInv() float64 {
	if r.Requests == 0 {
		return 0
	}
	return r.CostUSD / float64(r.Requests)
}

// SteadyCostPerInv is the arm's steady-state $/invocation.
func (r RolloutArmRow) SteadyCostPerInv() float64 {
	if r.SteadyReqs == 0 {
		return 0
	}
	return r.SteadyCostUSD / float64(r.SteadyReqs)
}

// RolloutResult aggregates the three-arm comparison.
type RolloutResult struct {
	Config            RolloutConfig
	Members           []string // replay order; storm members flagged in render
	Storm             map[string]bool
	Groups            int
	Span              time.Duration
	StormAt, SteadyAt time.Duration
	Rows              []RolloutArmRow
	// EventLog is the controller arm's transition log — the loop itself.
	EventLog string
	// Statuses is the controller arm's final per-function state.
	Statuses []rollout.Status
	// OpenMetrics is the controller's lambdatrim_rollout_* exposition.
	OpenMetrics []byte
}

// Rollout runs the closed-loop replay with the default configuration.
func (s *Suite) Rollout() (*RolloutResult, error) {
	return s.RolloutWith(DefaultRolloutConfig())
}

// RolloutWith runs the closed-loop replay with a custom configuration,
// reusing the suite's cached debloating results.
func (s *Suite) RolloutWith(cfg RolloutConfig) (*RolloutResult, error) {
	var storm, clean []*debloat.Result
	for _, name := range cfg.StormApps {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		storm = append(storm, res)
	}
	for _, name := range cfg.CleanApps {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		clean = append(clean, res)
	}
	return RolloutCompare(storm, clean, s.Platform, s.fillConfig(debloat.DefaultConfig()), cfg)
}

// rolloutMember is one fleet member of the replay.
type rolloutMember struct {
	name   string
	storm  bool
	basic  map[string]any
	res    *debloat.Result
	healed *debloat.Result // oracle-clean artifact (storm members)
}

// RolloutCompare replays the seeded fleet trace under the three deployment
// regimes. The debloat config is used for the controller's self-heal rerun
// and for the oracle-clean counterfactual artifacts.
func RolloutCompare(storm, clean []*debloat.Result, platform faas.Config, dcfg debloat.Config, cfg RolloutConfig) (*RolloutResult, error) {
	advCase := appspec.TestCase{Name: "advanced", Event: advancedEvent}
	var members []*rolloutMember
	for _, res := range storm {
		healed, err := debloat.Rerun(res, []appspec.TestCase{advCase}, dcfg)
		if err != nil {
			return nil, fmt.Errorf("rollout: oracle-clean rerun for %s: %w", res.Original.Name, err)
		}
		members = append(members, &rolloutMember{
			name: res.Original.Name, storm: true,
			basic: res.Original.Oracle[0].Event, res: res, healed: healed,
		})
	}
	for _, res := range clean {
		members = append(members, &rolloutMember{
			name:  res.Original.Name,
			basic: res.Original.Oracle[0].Event, res: res,
		})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("rollout: no members")
	}

	groups := burstGroups(cfg.Seed, cfg.MaxRequests, cfg.BurstWindow)
	span := groups[len(groups)-1].start
	out := &RolloutResult{
		Config:   cfg,
		Groups:   len(groups),
		Span:     span,
		StormAt:  time.Duration(float64(span) * cfg.StormFrac),
		SteadyAt: time.Duration(float64(span) * cfg.SteadyFrac),
		Storm:    make(map[string]bool),
	}
	for _, m := range members {
		out.Members = append(out.Members, m.name)
		out.Storm[m.name] = m.storm
	}

	// replay drives the shared trace through one arm's invoke function.
	replay := func(label string, p *faas.Platform,
		invoke func(m *rolloutMember, events []map[string]any) ([]*faas.Invocation, error)) (RolloutArmRow, error) {
		row := RolloutArmRow{Arm: label}
		for gi, g := range groups {
			m := members[gi%len(members)]
			if gap := g.start - p.Now(); gap > 0 {
				p.Advance(gap)
			}
			ev := m.basic
			if m.storm && g.start >= out.StormAt {
				ev = advancedEvent
			}
			events := make([]map[string]any, g.size)
			for i := range events {
				events[i] = ev
			}
			start := p.Now()
			invs, err := invoke(m, events)
			if err != nil {
				return row, fmt.Errorf("rollout %s %s: %w", label, m.name, err)
			}
			for _, inv := range invs {
				row.Requests++
				row.CostUSD += inv.CostUSD
				if inv.FallbackUsed {
					row.Fallbacks++
				}
				if start+inv.E2E >= out.SteadyAt {
					row.SteadyReqs++
					row.SteadyCostUSD += inv.CostUSD
					if inv.Kind == faas.ColdStart {
						row.SteadyCold++
					}
				}
			}
		}
		return row, nil
	}

	// Arm 1: the paper's static fallback wrapper, no controller.
	{
		p := faas.New(platform)
		for _, m := range members {
			if m.storm {
				p.DeployWithFallback(m.res.App, m.res.Original)
			} else {
				p.Deploy(m.res.App)
			}
		}
		row, err := replay("fallback-only", p, func(m *rolloutMember, events []map[string]any) ([]*faas.Invocation, error) {
			return p.InvokeGroupWithRetry(m.res.App.Name, events, cfg.Retry)
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}

	// Arm 2: the closed-loop controller.
	{
		p := faas.New(platform)
		ctrl := rollout.New(p, rollout.Config{
			Stages:         cfg.Stages,
			Gate:           []monitor.SLO{{Name: "canary-err", Kind: monitor.KindErrorRate, Budget: 0.05}},
			GateResolution: cfg.GateResolution,
			Breaker:        cfg.Breaker,
			SelfHeal:       true,
			Debloat:        dcfg,
			Retry:          cfg.Retry,
			Tracer:         platform.Tracer,
		})
		for _, m := range members {
			if err := ctrl.Manage(m.res); err != nil {
				return nil, fmt.Errorf("rollout: manage %s: %w", m.name, err)
			}
		}
		row, err := replay("rollout", p, func(m *rolloutMember, events []map[string]any) ([]*faas.Invocation, error) {
			return ctrl.InvokeGroup(m.name, events)
		})
		if err != nil {
			return nil, err
		}
		for _, name := range out.Members {
			st, _ := ctrl.Status(name)
			row.Opens += st.Opens
			row.Heals += st.Heals
			out.Statuses = append(out.Statuses, st)
		}
		out.EventLog = ctrl.EventLog()
		out.OpenMetrics = ctrl.OpenMetrics()
		out.Rows = append(out.Rows, row)
	}

	// Arm 3: the oracle-clean counterfactual.
	{
		p := faas.New(platform)
		for _, m := range members {
			if m.storm {
				p.Deploy(m.healed.App)
			} else {
				p.Deploy(m.res.App)
			}
		}
		row, err := replay("oracle-clean", p, func(m *rolloutMember, events []map[string]any) ([]*faas.Invocation, error) {
			return p.InvokeGroupWithRetry(m.res.App.Name, events, cfg.Retry)
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the closed-loop comparison: the controller's transition
// log, final per-function state, the three-arm cost table, and the
// controller's OpenMetrics exposition.
func (r *RolloutResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rollout — closed-loop canary, breaker, and self-heal over a seeded trace (seed %d)\n", r.Config.Seed)
	var names []string
	for _, name := range r.Members {
		tag := "clean"
		if r.Storm[name] {
			tag = "storm"
		}
		names = append(names, fmt.Sprintf("%s (%s)", name, tag))
	}
	fmt.Fprintf(&b, "members: %s; %d burst groups over %s\n",
		strings.Join(names, ", "), r.Groups, r.Span.Round(time.Second))
	fmt.Fprintf(&b, "storm: advanced-mode traffic to storm members from %s; steady-state window from %s\n",
		monitor.FmtOffset(r.StormAt), monitor.FmtOffset(r.SteadyAt))
	br := r.Config.Breaker
	fmt.Fprintf(&b, "canary: %s; breaker: rate ≥%.2f over %s (min %d) or %d consecutive; gate: error burn on %s ticks\n\n",
		rollout.FormatStages(r.Config.Stages), br.FallbackRate, br.Window, br.MinRequests, br.Consecutive, r.Config.GateResolution)

	b.WriteString("controller events:\n")
	if r.EventLog == "" {
		b.WriteString("  (none)\n")
	} else {
		for _, line := range strings.Split(strings.TrimRight(r.EventLog, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteString("\nfinal controller state:\n")
	for _, st := range r.Statuses {
		fmt.Fprintf(&b, "  %-18s active=%-22s version=%d breaker=%-6s opens=%d heals=%d\n",
			st.Function, st.Active, st.Version, st.Breaker, st.Opens, st.Heals)
	}

	fmt.Fprintf(&b, "\n%-14s %6s %6s %6s %6s %14s %14s %10s\n",
		"Arm", "Reqs", "Fallb", "Opens", "Heals", "$/inv(all)", "$/inv(steady)", "SteadyCold")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %6d %6d %6d %6d %14.9f %14.9f %10d\n",
			row.Arm, row.Requests, row.Fallbacks, row.Opens, row.Heals,
			row.CostPerInv(), row.SteadyCostPerInv(), row.SteadyCold)
	}
	b.WriteString("\nthe fallback-only arm double-bills every storm request to the end of the trace; the controller breaks the storm, re-debloats with the failing inputs, and its steady-state $/inv converges to the oracle-clean level\n")

	b.WriteString("\nrollout metrics:\n")
	for _, line := range strings.Split(strings.TrimRight(string(r.OpenMetrics), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
