package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/faas"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 1 — cold/warm start phase breakdown for a PyTorch ResNet invocation
// ---------------------------------------------------------------------------

// Figure1Result is the phase breakdown of one cold and one warm resnet
// invocation under the large-image cold path.
type Figure1Result struct {
	App           string
	InstanceInit  time.Duration
	ImageTransfer time.Duration
	FunctionInit  time.Duration
	FunctionExec  time.Duration
	ColdE2E       time.Duration
	WarmE2E       time.Duration
	// InitLatencyShare is Function Initialization / cold E2E.
	InitLatencyShare float64
	// InitBillShare is Function Initialization / billed duration.
	InitBillShare float64
}

// Figure1 reproduces the paper's Figure 1 using the published provider-side
// constants (instance init 5.64 s; image transmission at the rate implied
// by 742 MB / 4.44 s).
func (s *Suite) Figure1() (*Figure1Result, error) {
	cfg := s.Platform
	cfg.UseAppSetupDelay = false
	cfg.InstanceInit = 5640 * time.Millisecond
	cfg.TransferRateMBps = 742.56 / 4.44

	app := s.App("resnet")
	cold, err := faas.MeasureColdStart(app, cfg)
	if err != nil {
		return nil, err
	}
	warm, err := faas.MeasureWarmStart(app, cfg)
	if err != nil {
		return nil, err
	}
	billed := cold.Init + cold.Exec
	return &Figure1Result{
		App:              app.Name,
		InstanceInit:     cold.InstanceInit,
		ImageTransfer:    cold.ImageTransfer,
		FunctionInit:     cold.Init,
		FunctionExec:     cold.Exec,
		ColdE2E:          cold.E2E,
		WarmE2E:          warm.E2E,
		InitLatencyShare: cold.Init.Seconds() / cold.E2E.Seconds(),
		InitBillShare:    cold.Init.Seconds() / billed.Seconds(),
	}, nil
}

// Render prints the breakdown.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — %s cold/warm start breakdown\n", r.App)
	fmt.Fprintf(&b, "  Instance Init      %8.2fs   (not billed)\n", r.InstanceInit.Seconds())
	fmt.Fprintf(&b, "  Image Transmission %8.2fs   (not billed)\n", r.ImageTransfer.Seconds())
	fmt.Fprintf(&b, "  Function Init      %8.2fs   (billed)\n", r.FunctionInit.Seconds())
	fmt.Fprintf(&b, "  Function Exec      %8.2fs   (billed)\n", r.FunctionExec.Seconds())
	fmt.Fprintf(&b, "  Cold E2E           %8.2fs\n", r.ColdE2E.Seconds())
	fmt.Fprintf(&b, "  Warm E2E           %8.2fs\n", r.WarmE2E.Seconds())
	fmt.Fprintf(&b, "  Init share: %.0f%% of cold latency, %.0f%% of the bill\n",
		100*r.InitLatencyShare, 100*r.InitBillShare)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 1 — benchmarked applications
// ---------------------------------------------------------------------------

// Table1Row is one application's measured profile.
type Table1Row struct {
	App     string
	Source  string
	SizeMB  float64
	ImportS float64
	ExecS   float64
	E2ES    float64
}

// Table1Result holds all rows.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures every corpus app's cold start.
func (s *Suite) Table1() (*Table1Result, error) {
	out := &Table1Result{}
	for _, name := range AllNames() {
		app := s.App(name)
		inv, err := faas.MeasureColdStart(app, s.Platform)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", name, err)
		}
		out.Rows = append(out.Rows, Table1Row{
			App:     name,
			Source:  app.Tags["source"],
			SizeMB:  app.ImageSizeMB,
			ImportS: inv.Init.Seconds(),
			ExecS:   inv.Exec.Seconds(),
			E2ES:    inv.E2E.Seconds(),
		})
	}
	return out, nil
}

// Render prints the table.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — benchmarked applications (measured)\n")
	fmt.Fprintf(&b, "%-18s %-12s %9s %8s %8s %8s\n",
		"Application", "Suite", "Size(MB)", "Import", "Exec", "E2E")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %-12s %9.2f %7.2fs %7.2fs %7.2fs\n",
			r.App, r.Source, r.SizeMB, r.ImportS, r.ExecS, r.E2ES)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2 — billed duration and monetary cost of cold starts
// ---------------------------------------------------------------------------

// Figure2Row is the cold-start billing profile of one application.
type Figure2Row struct {
	App            string
	ImportS        float64
	ExecS          float64
	BilledS        float64
	ImportShare    float64 // fraction of billed duration spent importing
	MemoryMB       int
	CostPer100KUSD float64
}

// Figure2Result aggregates the rows plus the headline statistics.
type Figure2Result struct {
	Rows        []Figure2Row
	MedianShare float64
}

// Figure2 reproduces the cold-start cost breakdown.
func (s *Suite) Figure2() (*Figure2Result, error) {
	out := &Figure2Result{}
	var shares []float64
	for _, name := range AllNames() {
		inv, err := faas.MeasureColdStart(s.App(name), s.Platform)
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", name, err)
		}
		share := inv.Init.Seconds() / inv.BilledDuration.Seconds()
		shares = append(shares, share)
		out.Rows = append(out.Rows, Figure2Row{
			App:            name,
			ImportS:        inv.Init.Seconds(),
			ExecS:          inv.Exec.Seconds(),
			BilledS:        inv.BilledDuration.Seconds(),
			ImportShare:    share,
			MemoryMB:       inv.MemoryMB,
			CostPer100KUSD: inv.CostUSD * Invocations100K,
		})
	}
	out.MedianShare = stats.Median(shares)
	return out, nil
}

// Render prints the figure data.
func (f *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — billed duration and cost of cold starts (100K invocations)\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %7s %8s %12s\n",
		"Application", "Import", "Exec", "Billed", "Imp%", "Mem(MB)", "Cost($/100K)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %7.2fs %7.2fs %7.2fs %6.1f%% %8d %12.2f\n",
			r.App, r.ImportS, r.ExecS, r.BilledS, 100*r.ImportShare, r.MemoryMB, r.CostPer100KUSD)
	}
	fmt.Fprintf(&b, "median import share of billed duration: %.1f%%\n", 100*f.MedianShare)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8 — λ-trim's E2E latency, memory and cost improvements
// ---------------------------------------------------------------------------

// Figure8Row compares one app before and after λ-trim.
type Figure8Row struct {
	App string

	E2EOrigS, E2ETrimS       float64
	ImportOrigS, ImportTrimS float64
	MemOrigMB, MemTrimMB     float64
	CostOrigUSD, CostTrimUSD float64 // per 100K cold invocations

	Speedup     float64 // E2E orig / trim
	MemImprove  float64 // fraction
	CostImprove float64 // fraction
}

// Figure8Result aggregates rows plus the paper's headline averages.
type Figure8Result struct {
	Rows []Figure8Row

	AvgSpeedup     float64
	MaxSpeedup     float64
	AvgMemImprove  float64
	MaxMemImprove  float64
	AvgCostImprove float64
	MaxCostImprove float64
}

// Figure8 runs the full pipeline on every app and measures both variants.
func (s *Suite) Figure8() (*Figure8Result, error) {
	out := &Figure8Result{}
	var speedups, mems, costs []float64
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		orig, err := faas.MeasureColdStart(res.Original, s.Platform)
		if err != nil {
			return nil, fmt.Errorf("figure8 %s original: %w", name, err)
		}
		trim, err := faas.MeasureColdStart(res.App, s.Platform)
		if err != nil {
			return nil, fmt.Errorf("figure8 %s trimmed: %w", name, err)
		}
		row := Figure8Row{
			App:         name,
			E2EOrigS:    orig.E2E.Seconds(),
			E2ETrimS:    trim.E2E.Seconds(),
			ImportOrigS: orig.Init.Seconds(),
			ImportTrimS: trim.Init.Seconds(),
			MemOrigMB:   orig.PeakMB,
			MemTrimMB:   trim.PeakMB,
			CostOrigUSD: orig.CostUSD * Invocations100K,
			CostTrimUSD: trim.CostUSD * Invocations100K,
		}
		row.Speedup = stats.Speedup(row.E2EOrigS, row.E2ETrimS)
		row.MemImprove = stats.Improvement(row.MemOrigMB, row.MemTrimMB)
		row.CostImprove = stats.Improvement(row.CostOrigUSD, row.CostTrimUSD)
		out.Rows = append(out.Rows, row)
		speedups = append(speedups, row.Speedup)
		mems = append(mems, row.MemImprove)
		costs = append(costs, row.CostImprove)
	}
	out.AvgSpeedup = stats.Mean(speedups)
	out.MaxSpeedup = stats.Max(speedups)
	out.AvgMemImprove = stats.Mean(mems)
	out.MaxMemImprove = stats.Max(mems)
	out.AvgCostImprove = stats.Mean(costs)
	out.MaxCostImprove = stats.Max(costs)
	return out, nil
}

// Render prints the figure data.
func (f *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — λ-trim improvements (cold starts)\n")
	fmt.Fprintf(&b, "%-18s %17s %17s %19s %7s %6s %6s\n",
		"Application", "E2E orig->trim", "Mem orig->trim", "Cost/100K o->t", "Speedup", "Mem%", "Cost%")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %7.2fs ->%6.2fs %7.0f ->%6.0fMB %8.2f ->%7.2f %6.2fx %5.1f%% %5.1f%%\n",
			r.App, r.E2EOrigS, r.E2ETrimS, r.MemOrigMB, r.MemTrimMB,
			r.CostOrigUSD, r.CostTrimUSD, r.Speedup, 100*r.MemImprove, 100*r.CostImprove)
	}
	fmt.Fprintf(&b, "average speedup %.2fx (max %.2fx); memory -%.1f%% (max -%.1f%%); cost -%.1f%% (max -%.1f%%)\n",
		f.AvgSpeedup, f.MaxSpeedup, 100*f.AvgMemImprove, 100*f.MaxMemImprove,
		100*f.AvgCostImprove, 100*f.MaxCostImprove)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 11 — warm start impact
// ---------------------------------------------------------------------------

// Figure11Row compares warm-start E2E before and after λ-trim.
type Figure11Row struct {
	App        string
	WarmOrigS  float64
	WarmTrimS  float64
	ImpactFrac float64 // (orig-trim)/orig; near zero expected
}

// Figure11Result aggregates rows.
type Figure11Result struct {
	Rows []Figure11Row
	// MaxAbsImpact is the largest |impact| across apps; the paper reports
	// <10% for all applications.
	MaxAbsImpact float64
}

// Figure11 measures warm-start E2E for both variants.
func (s *Suite) Figure11() (*Figure11Result, error) {
	out := &Figure11Result{}
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		orig, err := faas.MeasureWarmStart(res.Original, s.Platform)
		if err != nil {
			return nil, fmt.Errorf("figure11 %s original: %w", name, err)
		}
		trim, err := faas.MeasureWarmStart(res.App, s.Platform)
		if err != nil {
			return nil, fmt.Errorf("figure11 %s trimmed: %w", name, err)
		}
		impact := stats.Improvement(orig.E2E.Seconds(), trim.E2E.Seconds())
		out.Rows = append(out.Rows, Figure11Row{
			App: name, WarmOrigS: orig.E2E.Seconds(), WarmTrimS: trim.E2E.Seconds(),
			ImpactFrac: impact,
		})
		abs := impact
		if abs < 0 {
			abs = -abs
		}
		if abs > out.MaxAbsImpact {
			out.MaxAbsImpact = abs
		}
	}
	return out, nil
}

// Render prints the figure data.
func (f *Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — warm start E2E impact of λ-trim\n")
	fmt.Fprintf(&b, "%-18s %10s %10s %8s\n", "Application", "Original", "λ-trim", "Impact")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %9.3fs %9.3fs %7.1f%%\n", r.App, r.WarmOrigS, r.WarmTrimS, 100*r.ImpactFrac)
	}
	fmt.Fprintf(&b, "max |impact| %.1f%% (paper: <10%% for all apps)\n", 100*f.MaxAbsImpact)
	return b.String()
}
