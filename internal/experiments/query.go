package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/query"
)

// QueryReport is the query-engine demonstration target: a fleet replay
// with labeled series and recording rules enabled, a canned mql query set
// evaluated over the merged store, and an exemplar resolved back to its
// span subtree. The replay runs twice — at 1 worker and at 4 — and every
// rendered byte is checked equal across the two before rendering, making
// the report double as a determinism proof for the query surface.
type QueryReport struct {
	Functions int
	Rules     []query.Rule
	Instant   []string // canned instant queries, JSON lines
	Range     string   // one canned range query, JSON line
	Exemplar  string   // the slowest invocation's exemplar line + subtree
}

// queryRules are the canned recording rules: each one is in the linear
// fragment, so per-shard evaluation merged in block order equals global
// evaluation (DESIGN.md §14).
const queryRules = `
	fleet:cost_usd:sum5m = sum(cost.usd[5m])
	fleet:req:rate5m = rate(req.total[5m])
	fleet:init_usd:sum1h = sum(cost.usd{phase="init"}[1h])
`

// queryInstant is the canned instant-query set, exercising selectors,
// range aggregations, label matching, rule series, and binary ratios.
var queryInstant = []string{
	`cost.usd / req.total`,
	`sum(cost.usd{phase="init"}[24h]) / sum(cost.usd[24h])`,
	`rate(req.total{arm="debloated"}[6h]) / rate(req.total{arm="original"}[6h])`,
	`p95(req.total[24h])`,
	`fleet:cost_usd:sum5m`,
	`max(fleet:req:rate5m[24h])`,
}

const queryRange = `fleet:init_usd:sum1h`

// Query runs the query target (population size from FleetFunctions; the
// default keeps the cross-worker double replay under a second).
func (s *Suite) Query() (*QueryReport, error) {
	functions := 2000
	if s.FleetFunctions > 0 {
		functions = s.FleetFunctions
	}
	rules, err := query.ParseRules(queryRules)
	if err != nil {
		return nil, err
	}

	pc := fleet.DefaultPopConfig()
	pc.Functions = functions
	pc.Seed = 1
	pc.Pricing = s.Platform.Pricing
	pop := fleet.GeneratePopulation(pc, nil)

	render := func(workers int) (string, error) {
		res, err := fleet.Replay(fleet.Config{
			Workers:        workers,
			Period:         pc.Period,
			SLOs:           fleet.DefaultSLOs(),
			DashboardEvery: 4 * time.Hour,
			Seed:           pc.Seed,
			Pricing:        pc.Pricing,
			LabelSeries:    true,
			Rules:          rules,
		}, pop)
		if err != nil {
			return "", err
		}
		eng := res.QueryEngine()
		var b strings.Builder
		for _, q := range queryInstant {
			line, err := eng.InstantJSON(q, -1)
			if err != nil {
				return "", fmt.Errorf("query %q: %w", q, err)
			}
			b.WriteString(line + "\n")
		}
		line, err := eng.RangeJSON(queryRange, 0, -1, 4*time.Hour)
		if err != nil {
			return "", err
		}
		b.WriteString(line + "\n")
		b.WriteByte(0) // section separator inside the compared blob

		// The exemplar round trip: exposition annotation → span subtree.
		tr := obs.New()
		res.EmitSpans(tr)
		e := res.Slowest[0]
		sp := tr.FindSpan(e.SpanID())
		if sp == nil {
			return "", fmt.Errorf("exemplar span %s not found in trace", e.SpanID())
		}
		fmt.Fprintf(&b, "slowest exemplar: %s e2e=%s span_id=%s\n%s",
			e.Function, e.E2E, e.SpanID(), sp.Subtree())
		return b.String(), nil
	}

	one, err := render(1)
	if err != nil {
		return nil, err
	}
	four, err := render(4)
	if err != nil {
		return nil, err
	}
	if one != four {
		return nil, fmt.Errorf("query output differs between 1 and 4 workers:\n--- 1\n%s\n--- 4\n%s", one, four)
	}

	parts := strings.SplitN(one, "\x00", 2)
	lines := strings.Split(strings.TrimRight(parts[0], "\n"), "\n")
	return &QueryReport{
		Functions: functions,
		Rules:     rules,
		Instant:   lines[:len(lines)-1],
		Range:     lines[len(lines)-1],
		Exemplar:  parts[1],
	}, nil
}

// Render prints the canned rules, the query results, and the resolved
// exemplar subtree.
func (r *QueryReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics query engine — fleet replay of %d functions, byte-identical at 1 and 4 workers\n",
		r.Functions)
	b.WriteString("recording rules (evaluated per shard, merged in block order):\n")
	for _, rule := range r.Rules {
		b.WriteString("  " + rule.String() + "\n")
	}
	b.WriteString("instant queries:\n")
	for _, line := range r.Instant {
		b.WriteString("  " + line + "\n")
	}
	b.WriteString("range query (4h step):\n  " + r.Range + "\n")
	b.WriteString(r.Exemplar)
	return b.String()
}
