package experiments

import (
	"fmt"
	"strings"

	"repro/internal/faas"
)

// Table4Apps are the paper's representative apps for the fallback study:
// small, medium and two large ones.
var Table4Apps = []string{"dna-visualization", "lightgbm", "spacy", "huggingface"}

// advancedEvent triggers the rarely-used code path that accesses a
// debloated attribute dynamically (getattr with a computed name), which
// λ-trim cannot protect statically — exactly the case the fallback wrapper
// exists for.
var advancedEvent = map[string]any{"mode": "advanced"}

// Table4Row is one app's E2E latency matrix (seconds).
type Table4Row struct {
	App string

	// Baselines without errors.
	OrigCold, OrigWarm float64
	TrimCold, TrimWarm float64

	// Fallback-triggered latencies: primary state x fallback state.
	ColdPrimaryWarmFallback float64
	ColdPrimaryColdFallback float64
	WarmPrimaryWarmFallback float64
	WarmPrimaryColdFallback float64

	// FallbackTriggered confirms the AttributeError path actually fired.
	FallbackTriggered bool
}

// Table4Result aggregates the rows.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 measures fallback overheads in every warm/cold combination.
func (s *Suite) Table4() (*Table4Result, error) {
	out := &Table4Result{}
	for _, name := range Table4Apps {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		normalEvent := res.Original.Oracle[0].Event

		orig := res.Original
		trim := res.App

		origCold, err := faas.MeasureColdStart(orig, s.Platform)
		if err != nil {
			return nil, err
		}
		origWarm, err := faas.MeasureWarmStart(orig, s.Platform)
		if err != nil {
			return nil, err
		}
		trimCold, err := faas.MeasureColdStart(trim, s.Platform)
		if err != nil {
			return nil, err
		}
		trimWarm, err := faas.MeasureWarmStart(trim, s.Platform)
		if err != nil {
			return nil, err
		}

		row := Table4Row{
			App:      name,
			OrigCold: origCold.E2E.Seconds(), OrigWarm: origWarm.E2E.Seconds(),
			TrimCold: trimCold.E2E.Seconds(), TrimWarm: trimWarm.E2E.Seconds(),
			FallbackTriggered: true,
		}

		// measureFallback runs the advanced event with the primary and
		// fallback pools in the requested states.
		measureFallback := func(primaryWarm, fallbackWarm bool) (float64, error) {
			p := faas.New(s.Platform)
			p.DeployWithFallback(trim, orig)
			if fallbackWarm {
				if _, err := p.Invoke(orig.Name+"-fallback", normalEvent); err != nil {
					return 0, err
				}
			}
			if primaryWarm {
				if _, err := p.Invoke(trim.Name, normalEvent); err != nil {
					return 0, err
				}
			}
			inv, err := p.Invoke(trim.Name, advancedEvent)
			if err != nil {
				return 0, err
			}
			if !inv.FallbackUsed {
				row.FallbackTriggered = false
			}
			return inv.E2E.Seconds(), nil
		}

		if row.ColdPrimaryWarmFallback, err = measureFallback(false, true); err != nil {
			return nil, fmt.Errorf("table4 %s cold/warm: %w", name, err)
		}
		if row.ColdPrimaryColdFallback, err = measureFallback(false, false); err != nil {
			return nil, fmt.Errorf("table4 %s cold/cold: %w", name, err)
		}
		if row.WarmPrimaryWarmFallback, err = measureFallback(true, true); err != nil {
			return nil, fmt.Errorf("table4 %s warm/warm: %w", name, err)
		}
		if row.WarmPrimaryColdFallback, err = measureFallback(true, false); err != nil {
			return nil, fmt.Errorf("table4 %s warm/cold: %w", name, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the latency matrix in the paper's layout.
func (t *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4 — E2E latencies (s) when triggering the fallback\n")
	fmt.Fprintf(&b, "%-18s %-5s %9s %8s %14s %14s\n",
		"Application", "", "Original", "λ-trim", "Fallback Warm", "Fallback Cold")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %-5s %9.2f %8.2f %14.2f %14.2f\n",
			r.App, "Cold", r.OrigCold, r.TrimCold, r.ColdPrimaryWarmFallback, r.ColdPrimaryColdFallback)
		fmt.Fprintf(&b, "%-18s %-5s %9.2f %8.2f %14.2f %14.2f\n",
			"", "Warm", r.OrigWarm, r.TrimWarm, r.WarmPrimaryWarmFallback, r.WarmPrimaryColdFallback)
	}
	return b.String()
}
