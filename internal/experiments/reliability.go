package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/appspec"
	"repro/internal/faas"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Reliability — failure semantics under injected faults (extension)
// ---------------------------------------------------------------------------
//
// The paper's fallback wrapper (§5.4, §8.7) exists because debloating is a
// risk: an oracle-uncovered path raises AttributeError in production. This
// experiment replays a bursty trace workload against a platform with the
// failure model enabled — OOM enforcement, timeouts, throttling under a
// concurrency limit, transient init crashes, slow cold starts, and
// input-dependent memory spikes — and compares three deployments of the
// same application:
//
//	original   the un-optimized function
//	debloated  λ-trim's output, deployed bare
//	fallback   λ-trim's output wrapped with the original as fallback
//
// measuring failure rate, retry amplification, per-class fault counts,
// and total cost. It answers the reliability questions the cost tables
// cannot: what do the uncovered paths cost without the wrapper, what does
// the wrapper's insurance cost under faults, and how does the smaller
// footprint shift OOM and throttle exposure.

// ReliabilityConfig parameterizes the replay.
type ReliabilityConfig struct {
	// App is the corpus application to study.
	App string
	// Seed drives trace generation AND the platform fault injector, so a
	// fixed seed reproduces the experiment byte-for-byte.
	Seed int64
	// MaxRequests caps the replayed arrivals.
	MaxRequests int
	// AdvancedEvery routes every Nth request to the rarely-used code path
	// the oracle does not cover (0 disables). This is the λ-trim risk the
	// fallback wrapper absorbs.
	AdvancedEvery int
	// Headroom provisions each deployment's memory at this factor over
	// its own profiled peak (the operator's safety margin).
	Headroom float64
	// BurstWindow groups arrivals closer than this into one concurrent
	// burst — what builds the concurrency that trips the throttle limit.
	BurstWindow time.Duration
	// Timeout, when positive, bounds every invocation's billed window
	// (the platform's default timeout for the replay).
	Timeout time.Duration
	// Faults is the injected fault mix.
	Faults faas.FaultConfig
	// Retry is the client-side retry policy.
	Retry faas.RetryPolicy
}

// DefaultReliabilityConfig is a fault mix aggressive enough that every
// failure class fires within a ~150-request replay, while success still
// dominates.
func DefaultReliabilityConfig() ReliabilityConfig {
	return ReliabilityConfig{
		App:           "lightgbm",
		Seed:          7,
		MaxRequests:   150,
		AdvancedEvery: 9,
		Headroom:      1.2,
		BurstWindow:   2 * time.Second,
		Timeout:       time.Second,
		Faults: faas.FaultConfig{
			Enabled:          true,
			InitCrashRate:    0.15,
			SlowColdRate:     0.20,
			SlowColdFactor:   3,
			MemorySpikeRate:  0.12,
			MemorySpikeMB:    96,
			ConcurrencyLimit: 3,
		},
		Retry: faas.DefaultRetryPolicy(),
	}
}

// ReliabilityRow is one deployment's outcome over the replay.
type ReliabilityRow struct {
	Deployment string
	// MemoryMB is the provisioned configuration (peak × headroom).
	MemoryMB int
	Requests int
	// Attempts counts platform invocations including retries (fallback
	// re-invocations are not attempts — they are part of one attempt).
	Attempts int
	// Failures counts requests that still failed after all retries.
	Failures int
	// Per-class platform fault counts (per attempt).
	OOMKills    int
	Timeouts    int
	Throttles   int
	InitCrashes int
	ColdStarts  int
	// FallbackServed counts requests the fallback function absorbed.
	FallbackServed int
	// CostUSD is the aggregate bill, failed and retried attempts included.
	CostUSD float64
}

// FailureRate is the post-retry request failure fraction.
func (r ReliabilityRow) FailureRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Requests)
}

// RetryAmplification is attempts per request (1.0 = no retries).
func (r ReliabilityRow) RetryAmplification() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Attempts) / float64(r.Requests)
}

// ReliabilityResult aggregates the three deployments.
type ReliabilityResult struct {
	App    string
	Seed   int64
	Config ReliabilityConfig
	Rows   []ReliabilityRow
}

// Reliability runs the replay with the default configuration.
func (s *Suite) Reliability() (*ReliabilityResult, error) {
	return s.ReliabilityWith(DefaultReliabilityConfig())
}

// ReliabilityWith runs the replay with a custom configuration, reusing
// the suite's cached debloating result.
func (s *Suite) ReliabilityWith(cfg ReliabilityConfig) (*ReliabilityResult, error) {
	res, err := s.Debloat(cfg.App)
	if err != nil {
		return nil, err
	}
	return ReliabilityCompare(res.Original, res.App, s.Platform, cfg)
}

// ReliabilityCompare replays the faulted workload against the original,
// debloated, and fallback-wrapped deployments of one app. The platform
// config is the fault-free baseline; the fault model from cfg is layered
// on top.
func ReliabilityCompare(orig, trim *appspec.App, platform faas.Config, cfg ReliabilityConfig) (*ReliabilityResult, error) {
	// Profile each variant's peak under the clean config to provision
	// memory at the operator's headroom factor.
	origProbe, err := faas.MeasureColdStart(orig, platform)
	if err != nil {
		return nil, fmt.Errorf("reliability: profiling original: %w", err)
	}
	trimProbe, err := faas.MeasureColdStart(trim, platform)
	if err != nil {
		return nil, fmt.Errorf("reliability: profiling debloated: %w", err)
	}
	provision := func(app *appspec.App, peakMB float64) *appspec.App {
		cp := app.Clone()
		cp.MemoryMB = int(math.Ceil(peakMB * cfg.Headroom))
		return cp
	}

	// The workload: the synthetic Azure-shaped trace's hottest arrival
	// process — the adversarial case for throttling and cold-start storms.
	groups := arrivalGroups(cfg)

	faulted := platform
	faulted.EnforceMemory = true
	faulted.DefaultTimeout = cfg.Timeout
	faulted.FaultSeed = cfg.Seed
	faulted.Faults = cfg.Faults

	normalEvent := map[string]any{}
	if len(orig.Oracle) > 0 {
		normalEvent = orig.Oracle[0].Event
	}

	out := &ReliabilityResult{App: orig.Name, Seed: cfg.Seed, Config: cfg}
	type variant struct {
		label  string
		deploy func(p *faas.Platform) (invokeName string, statNames []string, memMB int)
	}
	variants := []variant{
		{"original", func(p *faas.Platform) (string, []string, int) {
			a := provision(orig, origProbe.PeakMB)
			p.Deploy(a)
			return a.Name, []string{a.Name}, a.MemoryMB
		}},
		{"debloated", func(p *faas.Platform) (string, []string, int) {
			a := provision(trim, trimProbe.PeakMB)
			p.Deploy(a)
			return a.Name, []string{a.Name}, a.MemoryMB
		}},
		{"fallback", func(p *faas.Platform) (string, []string, int) {
			a := provision(trim, trimProbe.PeakMB)
			fb := provision(orig, origProbe.PeakMB)
			p.DeployWithFallback(a, fb)
			return a.Name, []string{a.Name, fb.Name + "-fallback"}, a.MemoryMB
		}},
	}

	for _, v := range variants {
		p := faas.New(faulted)
		name, statNames, memMB := v.deploy(p)
		row := ReliabilityRow{Deployment: v.label, MemoryMB: memMB}

		reqIdx := 0
		event := func() map[string]any {
			reqIdx++
			if cfg.AdvancedEvery > 0 && reqIdx%cfg.AdvancedEvery == 0 {
				return advancedEvent
			}
			return normalEvent
		}
		absorb := func(inv *faas.Invocation) {
			row.Requests++
			attempts := inv.Attempts
			if attempts == 0 {
				attempts = 1
			}
			row.Attempts += attempts
			if inv.Err != nil {
				row.Failures++
			}
			if inv.FallbackUsed {
				row.FallbackServed++
			}
			row.CostUSD += inv.CostUSD
		}

		for _, g := range groups {
			if gap := g.start - p.Now(); gap > 0 {
				p.Advance(gap)
			}
			if g.size == 1 {
				inv, err := p.InvokeWithRetry(name, event(), cfg.Retry)
				if err != nil {
					return nil, fmt.Errorf("reliability %s: %w", v.label, err)
				}
				absorb(inv)
				continue
			}
			events := make([]map[string]any, g.size)
			for i := range events {
				events[i] = event()
			}
			invs, err := p.InvokeGroupWithRetry(name, events, cfg.Retry)
			if err != nil {
				return nil, fmt.Errorf("reliability %s: %w", v.label, err)
			}
			for _, inv := range invs {
				absorb(inv)
			}
		}

		for _, sn := range statNames {
			if st, ok := p.FunctionStats(sn); ok {
				row.OOMKills += st.OOMKills
				row.Timeouts += st.Timeouts
				row.Throttles += st.Throttles
				row.InitCrashes += st.InitCrashes
				row.ColdStarts += st.ColdStarts
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// arrivalGroup is a burst of near-simultaneous arrivals.
type arrivalGroup struct {
	start time.Duration
	size  int
}

// arrivalGroups generates the replay workload for the reliability
// experiment (shared with the monitor driver via burstGroups).
func arrivalGroups(cfg ReliabilityConfig) []arrivalGroup {
	return burstGroups(cfg.Seed, cfg.MaxRequests, cfg.BurstWindow)
}

// burstGroups generates the synthetic Azure-shaped trace, picks the
// hottest function — the adversarial case for throttling and cold-start
// storms — and clusters its first maxRequests arrivals into window-sized
// burst groups.
func burstGroups(seed int64, maxRequests int, window time.Duration) []arrivalGroup {
	tr := trace.Generate(trace.GenConfig{Functions: 60, Period: 24 * time.Hour, Seed: seed})
	var hottest *trace.Function
	for i := range tr.Functions {
		f := &tr.Functions[i]
		if hottest == nil || len(f.Arrivals) > len(hottest.Arrivals) {
			hottest = f
		}
	}
	arrivals := hottest.SortedArrivals()
	if len(arrivals) > maxRequests {
		arrivals = arrivals[:maxRequests]
	}
	var groups []arrivalGroup
	for _, at := range arrivals {
		if n := len(groups); n > 0 && at-groups[n-1].start <= window {
			groups[n-1].size++
			continue
		}
		groups = append(groups, arrivalGroup{start: at, size: 1})
	}
	return groups
}

// Render prints the comparison table.
func (r *ReliabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reliability — %s under injected faults (seed %d)\n", r.App, r.Seed)
	f := r.Config.Faults
	fmt.Fprintf(&b, "faults: init-crash %.0f%%, slow-cold %.0f%% (%.0fx), mem-spike %.0f%% (+%.0f MB), concurrency limit %d; retries: %d attempts\n",
		100*f.InitCrashRate, 100*f.SlowColdRate, f.SlowColdFactor,
		100*f.MemorySpikeRate, f.MemorySpikeMB, f.ConcurrencyLimit, r.Config.Retry.MaxAttempts)
	fmt.Fprintf(&b, "%-10s %6s %6s %8s %8s %9s %5s %5s %6s %6s %5s %9s %11s\n",
		"Deployment", "MemMB", "Reqs", "Attempts", "RetryAmp", "Fail%", "OOM", "Thr", "Crash", "TOut", "Fallb", "Cold", "Cost$")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %6d %6d %8d %8.2f %8.1f%% %5d %5d %6d %6d %5d %9d %11.6f\n",
			row.Deployment, row.MemoryMB, row.Requests, row.Attempts,
			row.RetryAmplification(), 100*row.FailureRate(),
			row.OOMKills, row.Throttles, row.InitCrashes, row.Timeouts,
			row.FallbackServed, row.ColdStarts, row.CostUSD)
	}
	b.WriteString("fallback rows absorb the debloated function's uncovered-path errors at the cost of double invocations\n")
	return b.String()
}
