package experiments

import (
	"strings"
	"testing"
	"time"
)

// suite is shared across tests in this package: debloating the corpus once
// is the expensive step, and every figure reuses it, exactly as the
// artifact workflow does.
var suite = NewSuite()

func TestFigure1Shape(t *testing.T) {
	r, err := suite.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Function Initialization is a large minority of cold-start latency
	// (paper: up to 29%) and roughly half the bill (paper: up to 45%).
	if r.InitLatencyShare < 0.15 || r.InitLatencyShare > 0.45 {
		t.Errorf("init latency share = %.2f, want 0.15..0.45", r.InitLatencyShare)
	}
	if r.InitBillShare < 0.35 || r.InitBillShare > 0.70 {
		t.Errorf("init bill share = %.2f, want 0.35..0.70", r.InitBillShare)
	}
	// The unbilled provider phases must be nonzero and the image transfer
	// should be near the published 4.44 s for the 742 MB resnet image.
	if r.ImageTransfer < 4*time.Second || r.ImageTransfer > 5*time.Second {
		t.Errorf("image transfer = %v, want ≈4.44s", r.ImageTransfer)
	}
	if r.WarmE2E >= r.ColdE2E/2 {
		t.Errorf("warm start (%v) should be far cheaper than cold (%v)", r.WarmE2E, r.ColdE2E)
	}
	if !strings.Contains(r.Render(), "resnet") {
		t.Error("render missing app name")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r, err := suite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows, want 21", len(r.Rows))
	}
	// Spot-check the calibration anchors.
	byApp := map[string]Table1Row{}
	for _, row := range r.Rows {
		byApp[row.App] = row
	}
	checks := []struct {
		app     string
		importS float64
		e2eS    float64
	}{
		{"resnet", 6.30, 11.71},
		{"huggingface", 5.52, 10.12},
		{"markdown", 0.04, 0.54},
		{"tensorflow", 4.53, 5.33},
	}
	for _, c := range checks {
		row := byApp[c.app]
		if rel(row.ImportS, c.importS) > 0.15 {
			t.Errorf("%s import %.2fs, want ≈%.2fs", c.app, row.ImportS, c.importS)
		}
		if rel(row.E2ES, c.e2eS) > 0.15 {
			t.Errorf("%s E2E %.2fs, want ≈%.2fs", c.app, row.E2ES, c.e2eS)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := suite.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure2Row{}
	for _, row := range r.Rows {
		byApp[row.App] = row
	}
	// The worst offenders spend >90% of billed duration on initialization.
	for _, app := range []string{"spacy", "tensorflow"} {
		if byApp[app].ImportShare < 0.90 {
			t.Errorf("%s import share %.2f, want >0.90", app, byApp[app].ImportShare)
		}
	}
	// Initialization is the majority of the bill for the median app.
	if r.MedianShare < 0.50 {
		t.Errorf("median import share %.2f, want >0.50", r.MedianShare)
	}
	// ffmpeg is exec-bound (wraps an external binary).
	if byApp["ffmpeg"].ImportShare > 0.10 {
		t.Errorf("ffmpeg import share %.2f, want <0.10", byApp["ffmpeg"].ImportShare)
	}
	// Small apps hit the 128 MB billing floor, hiding memory benefits.
	if byApp["markdown"].MemoryMB != 128 || byApp["igraph"].MemoryMB != 128 {
		t.Error("small apps should be billed at the 128 MB floor")
	}
}

func TestFigure8MatchesPaperClaims(t *testing.T) {
	r, err := suite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows, want 21", len(r.Rows))
	}
	// Paper: average 1.2x E2E speedup, max 2x (resnet).
	if r.AvgSpeedup < 1.10 || r.AvgSpeedup > 1.35 {
		t.Errorf("avg speedup %.2f, want ≈1.2", r.AvgSpeedup)
	}
	if r.MaxSpeedup < 1.7 || r.MaxSpeedup > 2.3 {
		t.Errorf("max speedup %.2f, want ≈2", r.MaxSpeedup)
	}
	// Paper: ~10.3% average memory improvement, max 42% (skimage).
	if r.AvgMemImprove < 0.07 || r.AvgMemImprove > 0.25 {
		t.Errorf("avg memory improvement %.2f, want ≈0.10", r.AvgMemImprove)
	}
	if r.MaxMemImprove < 0.30 {
		t.Errorf("max memory improvement %.2f, want ≥0.30", r.MaxMemImprove)
	}
	// Paper: ~19.7% average cost reduction, many apps >50%.
	if r.AvgCostImprove < 0.15 {
		t.Errorf("avg cost improvement %.2f, want ≥0.15", r.AvgCostImprove)
	}
	over50 := 0
	for _, row := range r.Rows {
		if row.CostImprove > 0.50 {
			over50++
		}
	}
	if over50 < 3 {
		t.Errorf("%d apps cut cost >50%%, want several", over50)
	}
	// resnet is the headline speedup; ffmpeg/image-resize barely move
	// (bottlenecked on external executables).
	for _, row := range r.Rows {
		switch row.App {
		case "resnet":
			if row.Speedup < 1.7 {
				t.Errorf("resnet speedup %.2f, want ≈2", row.Speedup)
			}
		case "ffmpeg", "image-resize":
			if row.Speedup > 1.08 {
				t.Errorf("%s speedup %.2f, want ≈1.0", row.App, row.Speedup)
			}
		}
		// Correctness: improvements can never be negative enough to matter.
		if row.CostImprove < -0.02 {
			t.Errorf("%s cost regressed by %.1f%%", row.App, -100*row.CostImprove)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		// λ-trim (ours) should improve import time on every FaaSLight app
		// (negative percent change).
		if row.ImportTrim > 0 {
			t.Errorf("%s: λ-trim import regressed: %+.2f%%", row.App, row.ImportTrim)
		}
		// And beat Vulture's reported (tiny) improvements everywhere
		// except noise cases.
		if row.ImportTrim > row.ImportVulture+1 {
			t.Errorf("%s: λ-trim (%.2f%%) should beat Vulture (%.2f%%)",
				row.App, row.ImportTrim, row.ImportVulture)
		}
	}
	// lightgbm is a λ-trim blowout in the paper; confirm ours outperforms
	// FaaSLight's reported number there.
	for _, row := range r.Rows {
		if row.App == "lightgbm" && row.ImportTrim > row.ImportFaaSLight {
			t.Errorf("lightgbm: λ-trim %.2f%% should beat FaaSLight %.2f%%",
				row.ImportTrim, row.ImportFaaSLight)
		}
	}
}

func TestFigure9CombinedScoringWins(t *testing.T) {
	r, err := suite.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(Figure9Apps)*4 {
		t.Fatalf("%d cells, want %d", len(r.Cells), len(Figure9Apps)*4)
	}
	if !r.CombinedWins() {
		t.Errorf("combined scoring should match or beat all other methods:\n%s", r.Render())
	}
}

func TestFigure10PlateauAt20(t *testing.T) {
	r, err := suite.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if !r.PlateausAt20(0.01) {
		t.Errorf("improvements should plateau by K=20:\n%s", r.Render())
	}
	// Improvements are monotonically non-decreasing in K (more modules
	// debloated can only help, within noise).
	byApp := map[string][]Figure10Cell{}
	for _, c := range r.Cells {
		byApp[c.App] = append(byApp[c.App], c)
	}
	for app, cells := range byApp {
		for i := 1; i < len(cells); i++ {
			if cells[i].Cost < cells[i-1].Cost-0.02 {
				t.Errorf("%s: cost improvement dropped from K=%d (%.3f) to K=%d (%.3f)",
					app, cells[i-1].K, cells[i-1].Cost, cells[i].K, cells[i].Cost)
			}
		}
	}
}

func TestFigure11WarmStartsUnaffected(t *testing.T) {
	r, err := suite.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows, want 21", len(r.Rows))
	}
	if r.MaxAbsImpact > 0.10 {
		t.Errorf("max warm-start impact %.1f%%, paper claims <10%%:\n%s",
			100*r.MaxAbsImpact, r.Render())
	}
}

func TestFigure12CheckpointCrossover(t *testing.T) {
	r, err := suite.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Figure12Row{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	// Small apps (<0.2s init): λ-trim beats C/R because of CRIU's fixed
	// ~0.1s restore overhead.
	for _, app := range []string{"markdown", "igraph", "ffmpeg"} {
		row := rows[app]
		if row.Trimmed >= row.OriginalCR {
			t.Errorf("%s: λ-trim init (%v) should beat C/R restore (%v)",
				app, row.Trimmed, row.OriginalCR)
		}
	}
	// Large apps: pure C/R beats pure λ-trim (restore loads pages faster
	// than re-import).
	for _, app := range []string{"huggingface", "tensorflow", "spacy"} {
		row := rows[app]
		if row.OriginalCR >= row.Trimmed {
			t.Errorf("%s: C/R restore (%v) should beat λ-trim re-import (%v)",
				app, row.OriginalCR, row.Trimmed)
		}
	}
	for app, row := range rows {
		// Combining always at least matches pure C/R (smaller checkpoint).
		if row.TrimmedCR > row.OriginalCR {
			t.Errorf("%s: C/R+λ-trim (%v) slower than C/R (%v)", app, row.TrimmedCR, row.OriginalCR)
		}
		// Debloating shrinks every checkpoint.
		if row.CkptTrimMB >= row.CkptOrigMB {
			t.Errorf("%s: checkpoint grew %f -> %f MB", app, row.CkptOrigMB, row.CkptTrimMB)
		}
	}
	if r.AvgCkptSaving < 0.05 {
		t.Errorf("avg checkpoint saving %.1f%%, want ≥5%% (paper ~11%%)", 100*r.AvgCkptSaving)
	}
}

func TestFigure13SnapStartDominatesCosts(t *testing.T) {
	r, err := suite.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(r.Curves))
	}
	var medians []float64
	for _, c := range r.Curves {
		medians = append(medians, c.Median)
		if len(c.Ratios) < 100 {
			t.Errorf("keep-alive %v: only %d functions simulated", c.KeepAlive, len(c.Ratios))
		}
	}
	// Paper: at 15 min keep-alive the median app spends >60% of its budget
	// on C/R support, i.e. SnapStart doubles the majority's cost.
	if medians[1] < 0.50 {
		t.Errorf("median SnapStart share at 15min = %.2f, want >0.50", medians[1])
	}
	// Longer keep-alive -> fewer cold starts -> lower (or equal) share.
	if !(medians[0] >= medians[1] && medians[1] >= medians[2]) {
		t.Errorf("medians should decrease with keep-alive: %v", medians)
	}
}

func TestFigure14TrimReducesTotalCosts(t *testing.T) {
	r, err := suite.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 20 {
		t.Fatalf("%d rows, want ≈21", len(r.Rows))
	}
	if r.AvgSaving < 0.03 {
		t.Errorf("avg saving %.1f%%, want positive (paper ~11%%)", 100*r.AvgSaving)
	}
	if r.MaxSaving < 0.15 {
		t.Errorf("max saving %.1f%%, want substantial (paper up to 42%%)", 100*r.MaxSaving)
	}
	for _, row := range r.Rows {
		if row.InvocationTrim > row.InvocationOrig*1.01 {
			t.Errorf("%s: invocation cost regressed", row.App)
		}
		if row.CacheRestoreTrim > row.CacheRestoreOrig*1.01 {
			t.Errorf("%s: cache+restore cost regressed", row.App)
		}
	}
}

func TestTable4FallbackOverheads(t *testing.T) {
	r, err := suite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.FallbackTriggered {
			t.Errorf("%s: fallback never triggered", row.App)
			continue
		}
		// Cold fallback costs more than warm fallback, in both primary
		// states.
		if row.ColdPrimaryColdFallback <= row.ColdPrimaryWarmFallback {
			t.Errorf("%s: cold fallback (%.2f) should exceed warm fallback (%.2f)",
				row.App, row.ColdPrimaryColdFallback, row.ColdPrimaryWarmFallback)
		}
		if row.WarmPrimaryColdFallback <= row.WarmPrimaryWarmFallback {
			t.Errorf("%s: cold fallback (warm primary) ordering wrong", row.App)
		}
		// A cold fallback roughly doubles a cold λ-trim invocation
		// (paper §8.7: "cold fallback overhead doubles the E2E latency").
		if row.ColdPrimaryColdFallback < row.TrimCold*1.5 {
			t.Errorf("%s: cold/cold fallback %.2fs should be ≈2x λ-trim cold %.2fs",
				row.App, row.ColdPrimaryColdFallback, row.TrimCold)
		}
		// Normal operation is unaffected: λ-trim ≤ original.
		if row.TrimCold > row.OrigCold*1.02 {
			t.Errorf("%s: trimmed cold start slower than original", row.App)
		}
	}
}

func TestTable3Efficacy(t *testing.T) {
	r, err := suite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows, want 21", len(r.Rows))
	}
	rows := map[string]Table3Row{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	// resnet removes the lion's share of torch's 1414 attributes.
	resnet := rows["resnet"]
	if resnet.AttrsPre < 1300 {
		t.Errorf("resnet torch attrs pre = %d, want ≈1414", resnet.AttrsPre)
	}
	if removed := resnet.AttrsPre - resnet.AttrsPost; removed < 1000 {
		t.Errorf("resnet removed %d torch attrs, want >1000 (paper: 1306)", removed)
	}
	// huggingface removes nearly all of transformers' 3300 attributes.
	hf := rows["huggingface"]
	if removed := hf.AttrsPre - hf.AttrsPost; removed < 2800 {
		t.Errorf("huggingface removed %d transformers attrs, want >2800 (paper: 3291)", removed)
	}
	// Same module, different apps: dna-visualization strips numpy far more
	// than wine does (paper: 496 vs 33).
	dna := rows["dna-visualization"]
	wine := rows["wine"]
	dnaRemoved := dna.AttrsPre - dna.AttrsPost
	wineRemoved := wine.AttrsPre - wine.AttrsPost
	if dnaRemoved <= wineRemoved*3 {
		t.Errorf("numpy removal: dna-visualization %d vs wine %d — expected a large gap",
			dnaRemoved, wineRemoved)
	}
	// Debloating time ordering: the ML apps dominate.
	if rows["huggingface"].DebloatTime < rows["markdown"].DebloatTime*10 {
		t.Errorf("huggingface debloat (%v) should dwarf markdown (%v)",
			rows["huggingface"].DebloatTime, rows["markdown"].DebloatTime)
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestTable2ExtendedOrdering(t *testing.T) {
	r, err := suite.Table2Ext()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		// λ-trim removes at least as much as FaaSLight, which removes at
		// least as much as Vulture.
		if row.RemovedTrim < row.RemovedFaaSLight || row.RemovedFaaSLight < row.RemovedVulture {
			t.Errorf("%s: removal ordering broken: %d / %d / %d",
				row.App, row.RemovedTrim, row.RemovedFaaSLight, row.RemovedVulture)
		}
		// λ-trim's cost improvement matches or beats both baselines
		// (more negative is better; allow a small tolerance).
		if row.CostTrim > row.CostFaaSLight+0.5 {
			t.Errorf("%s: λ-trim cost %.2f%% worse than FaaSLight %.2f%%",
				row.App, row.CostTrim, row.CostFaaSLight)
		}
		if row.CostTrim > row.CostVulture+0.5 {
			t.Errorf("%s: λ-trim cost %.2f%% worse than Vulture %.2f%%",
				row.App, row.CostTrim, row.CostVulture)
		}
		// Vulture stays timid: single-digit import improvements except on
		// apps with genuinely unreferenced code.
		if row.ImportVulture < -30 {
			t.Errorf("%s: Vulture suspiciously strong (%.2f%%)", row.App, row.ImportVulture)
		}
	}
}

func TestExtPowerTuneCompounds(t *testing.T) {
	r, err := suite.ExtPowerTune()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 21 {
		t.Fatalf("%d rows, want 21", len(r.Rows))
	}
	// Power-tuning compounds with debloating: the tuned saving exceeds the
	// untuned Figure 8 average.
	fig8, err := suite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgTunedSaving < fig8.AvgCostImprove {
		t.Errorf("tuned saving %.1f%% should be >= untuned %.1f%%",
			100*r.AvgTunedSaving, 100*fig8.AvgCostImprove)
	}
	// Some apps drop under the 128 MB floor only after debloating.
	if r.FloorUnlocked < 2 {
		t.Errorf("floor unlocked for %d apps, want ≥2", r.FloorUnlocked)
	}
	for _, row := range r.Rows {
		if row.TrimCheapestMB > row.OrigCheapestMB {
			t.Errorf("%s: trimmed app needs more memory (%d > %d MB)",
				row.App, row.TrimCheapestMB, row.OrigCheapestMB)
		}
		if row.Saving < -0.02 {
			t.Errorf("%s: tuned cost regressed %.1f%%", row.App, -100*row.Saving)
		}
	}
}
