package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/faas"
	"repro/internal/stats"
)

// Table2Extended goes beyond the paper's Table 2: instead of only quoting
// the baselines' reported numbers, it *runs* this repository's FaaSLight-
// style and Vulture-style implementations on the same apps and measures
// them on the same platform, so all three systems are compared
// apples-to-apples. FaaSLight's safeguard (retaining the original code for
// on-demand retrieval) is charged on every cold start.
type Table2Extended struct {
	Rows []Table2ExtRow
}

// Table2ExtRow holds measured percent-changes (negative = improvement).
type Table2ExtRow struct {
	App string

	// Import-time change.
	ImportTrim, ImportFaaSLight, ImportVulture float64
	// Memory change.
	MemTrim, MemFaaSLight, MemVulture float64
	// Cost change (per cold invocation).
	CostTrim, CostFaaSLight, CostVulture float64

	// Attribute-removal counts.
	RemovedTrim, RemovedFaaSLight, RemovedVulture int
}

// Table2Ext measures all three debloaters on the FaaSLight suite.
func (s *Suite) Table2Ext() (*Table2Extended, error) {
	out := &Table2Extended{}
	for _, name := range []string{"huggingface", "image-resize", "lightgbm", "lxml",
		"scikit", "skimage", "tensorflow", "wine"} {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		orig, err := faas.MeasureColdStart(res.Original, s.Platform)
		if err != nil {
			return nil, err
		}
		trim, err := faas.MeasureColdStart(res.App, s.Platform)
		if err != nil {
			return nil, err
		}

		fl, err := baselines.FaaSLight(s.App(name).Clone(), 20)
		if err != nil {
			return nil, fmt.Errorf("table2ext %s faaslight: %w", name, err)
		}
		flInv, err := faas.MeasureColdStart(fl.App, s.Platform)
		if err != nil {
			return nil, err
		}
		// Charge the safeguard: extra init latency and resident memory on
		// every cold start.
		flInit := flInv.Init + time.Duration(fl.SafeguardOverheadMS*float64(time.Millisecond))
		flMem := flInv.PeakMB + fl.SafeguardMemoryMB
		flBilled := s.Platform.Pricing.BillDuration(flInit + flInv.Exec)
		flCost := s.Platform.Pricing.Cost(flBilled, s.Platform.Pricing.ConfigureMemory(flMem))

		vu, err := baselines.Vulture(s.App(name).Clone())
		if err != nil {
			return nil, fmt.Errorf("table2ext %s vulture: %w", name, err)
		}
		vuInv, err := faas.MeasureColdStart(vu.App, s.Platform)
		if err != nil {
			return nil, err
		}

		pct := func(old, new float64) float64 { return -100 * stats.Improvement(old, new) }
		out.Rows = append(out.Rows, Table2ExtRow{
			App:              name,
			ImportTrim:       pct(orig.Init.Seconds(), trim.Init.Seconds()),
			ImportFaaSLight:  pct(orig.Init.Seconds(), flInit.Seconds()),
			ImportVulture:    pct(orig.Init.Seconds(), vuInv.Init.Seconds()),
			MemTrim:          pct(orig.PeakMB, trim.PeakMB),
			MemFaaSLight:     pct(orig.PeakMB, flMem),
			MemVulture:       pct(orig.PeakMB, vuInv.PeakMB),
			CostTrim:         pct(orig.CostUSD, trim.CostUSD),
			CostFaaSLight:    pct(orig.CostUSD, flCost),
			CostVulture:      pct(orig.CostUSD, vuInv.CostUSD),
			RemovedTrim:      res.TotalRemoved(),
			RemovedFaaSLight: fl.TotalRemoved(),
			RemovedVulture:   vu.TotalRemoved(),
		})
	}
	return out, nil
}

// Render prints the apples-to-apples grid.
func (t *Table2Extended) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 (extended) — all three debloaters run and measured here\n")
	fmt.Fprintf(&b, "%-14s | %-26s | %-26s | %-26s | %s\n",
		"", "Import Time %", "Memory %", "Cost %", "Attrs removed")
	fmt.Fprintf(&b, "%-14s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s | %5s %5s %5s\n",
		"Application",
		"λ-trim", "FaaSLt", "Vult",
		"λ-trim", "FaaSLt", "Vult",
		"λ-trim", "FaaSLt", "Vult",
		"λt", "FL", "Vu")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %5d %5d %5d\n",
			r.App,
			r.ImportTrim, r.ImportFaaSLight, r.ImportVulture,
			r.MemTrim, r.MemFaaSLight, r.MemVulture,
			r.CostTrim, r.CostFaaSLight, r.CostVulture,
			r.RemovedTrim, r.RemovedFaaSLight, r.RemovedVulture)
	}
	return b.String()
}
