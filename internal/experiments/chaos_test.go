package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
)

// TestChaosExperiment runs a scaled-down incident day and asserts the two
// claims the experiment exists to demonstrate: the graceful-degradation
// mechanisms reduce unavailability, and the static fallback wrapper's
// brownout cost amplification exceeds the plain debloated arm's.
func TestChaosExperiment(t *testing.T) {
	s := NewSuite()
	cfg := DefaultChaosConfig()
	cfg.Functions = 500
	res, err := s.ChaosWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.Off.Chaos, res.On.Chaos
	if off == nil || on == nil {
		t.Fatal("replay produced no scorecards")
	}
	if on.Total.Unavailability() >= off.Total.Unavailability() {
		t.Errorf("mitigations did not reduce unavailability: off %.4f on %.4f",
			off.Total.Unavailability(), on.Total.Unavailability())
	}
	amp := func(sc *chaos.Scorecard, arm string) float64 {
		for _, row := range sc.Arms {
			if row.Arm == arm {
				return row.BrownoutAmplification()
			}
		}
		t.Fatalf("no %s arm", arm)
		return 0
	}
	if fb, db := amp(on, chaos.ArmFallback), amp(on, chaos.ArmDebloated); fb <= db {
		t.Errorf("fallback brownout amplification %.2fx not above debloated %.2fx", fb, db)
	}

	out := res.Render()
	for _, want := range []string{
		"chaos incident day", "mitigations=none", "mitigations=all",
		"deltas (none -> all)", "unavailability", "mttr",
		"brownout $/served amplification",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}
