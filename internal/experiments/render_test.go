package experiments

import (
	"strings"
	"testing"
)

// Render-output smoke tests: every driver's text rendering must contain
// the rows and headline lines cmd/experiments users rely on. These reuse
// the shared suite, so they add no pipeline cost.

func TestRenderTable1(t *testing.T) {
	r, err := suite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, needle := range []string{"Table 1", "resnet", "huggingface", "RainbowCake", "PyPI"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 22 {
		t.Errorf("render has %d lines, want ≥22", lines)
	}
}

func TestRenderFigure8(t *testing.T) {
	r, err := suite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, needle := range []string{"Figure 8", "average speedup", "max", "Cost/100K"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestRenderFigure13(t *testing.T) {
	r, err := suite.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, needle := range []string{"Figure 13", "p50", "median SnapStart share", "15m"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestRenderTable4(t *testing.T) {
	r, err := suite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, needle := range []string{"Table 4", "Fallback Warm", "Fallback Cold", "Cold", "Warm", "spacy"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestRenderAllNonEmpty(t *testing.T) {
	renders := []func() (interface{ Render() string }, error){
		func() (interface{ Render() string }, error) { return suite.Figure1() },
		func() (interface{ Render() string }, error) { return suite.Figure2() },
		func() (interface{ Render() string }, error) { return suite.Table2() },
		func() (interface{ Render() string }, error) { return suite.Figure9() },
		func() (interface{ Render() string }, error) { return suite.Table3() },
		func() (interface{ Render() string }, error) { return suite.Figure10() },
		func() (interface{ Render() string }, error) { return suite.Figure11() },
		func() (interface{ Render() string }, error) { return suite.Figure12() },
		func() (interface{ Render() string }, error) { return suite.Figure14() },
	}
	for i, fn := range renders {
		r, err := fn()
		if err != nil {
			t.Fatalf("driver %d: %v", i, err)
		}
		if len(r.Render()) < 80 {
			t.Errorf("driver %d render suspiciously short", i)
		}
	}
}
