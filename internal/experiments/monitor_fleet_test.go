package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faas"
)

// TestFleetSectionGolden pins the monitor experiment's rendered fleet
// section against the output the pre-engine implementation produced (a
// hand-rolled loop feeding one live Monitor from a globally time-sorted
// event list). The section must stay byte-identical now that the replay
// runs through the sharded fleet engine — and at any worker count.
func TestFleetSectionGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "fleet_section.golden"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMonitorConfig()
	for _, workers := range []int{1, 4} {
		cfg.FleetWorkers = workers
		sum, err := replayFleet(faas.AWSPricing(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		renderFleetSection(&b, sum, cfg)
		if got := b.String(); got != string(golden) {
			t.Errorf("workers=%d: fleet section drifted from golden:\n--- got\n%s--- want\n%s",
				workers, got, golden)
		}
	}
}
