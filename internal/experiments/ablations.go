package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/profiler"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Table 2 — comparison with FaaSLight and Vulture (reported numbers)
// ---------------------------------------------------------------------------

// reportedBaseline holds the numbers Table 2 transcribes from the
// FaaSLight paper and the Vulture measurements (improvement percentages;
// negative means reduction).
type reportedBaseline struct {
	MemFaaSLight, ImportFaaSLight, ImportVulture, E2EFaaSLight float64
}

// reportedTable2 is indexed by FaaSLight app name.
var reportedTable2 = map[string]reportedBaseline{
	"huggingface":  {-16.06, -21.07, -2.30, -17.69},
	"image-resize": {-3.23, -7.77, -1.02, -11.10},
	"lightgbm":     {-6.92, -20.73, -1.03, -18.66},
	"lxml":         {-3.23, -10.84, -1.54, -6.63},
	"scikit":       {-1.41, -13.53, -3.02, -12.83},
	"skimage":      {-42.98, -69.27, -2.24, -42.05},
	"tensorflow":   {-3.17, -13.36, -1.40, -11.77},
	"wine":         {-6.09, -17.94, 0.22, -14.72},
}

// Table2Row compares λ-trim's measured improvements with the baselines'
// reported ones for one FaaSLight application.
type Table2Row struct {
	App string
	// Measured by this reproduction (percent change; negative = better).
	MemTrim, ImportTrim, E2ETrim float64
	// Reported by the respective papers.
	MemFaaSLight, ImportFaaSLight, ImportVulture, E2EFaaSLight float64
}

// Table2Result aggregates the comparison.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 computes λ-trim's improvements on the 8 FaaSLight apps and places
// them next to the reported baseline numbers (the paper likewise compares
// against reported values — "we were unable to run the original tools").
func (s *Suite) Table2() (*Table2Result, error) {
	out := &Table2Result{}
	for _, name := range []string{"huggingface", "image-resize", "lightgbm", "lxml",
		"scikit", "skimage", "tensorflow", "wine"} {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		orig, err := faas.MeasureColdStart(res.Original, s.Platform)
		if err != nil {
			return nil, err
		}
		trim, err := faas.MeasureColdStart(res.App, s.Platform)
		if err != nil {
			return nil, err
		}
		rep := reportedTable2[name]
		out.Rows = append(out.Rows, Table2Row{
			App:             name,
			MemTrim:         -100 * stats.Improvement(orig.PeakMB, trim.PeakMB),
			ImportTrim:      -100 * stats.Improvement(orig.Init.Seconds(), trim.Init.Seconds()),
			E2ETrim:         -100 * stats.Improvement(orig.E2E.Seconds(), trim.E2E.Seconds()),
			MemFaaSLight:    rep.MemFaaSLight,
			ImportFaaSLight: rep.ImportFaaSLight,
			ImportVulture:   rep.ImportVulture,
			E2EFaaSLight:    rep.E2EFaaSLight,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — λ-trim (measured) vs FaaSLight & Vulture (reported)\n")
	fmt.Fprintf(&b, "%-14s %22s %32s %20s\n", "", "Memory", "Import Time", "E2E Latency")
	fmt.Fprintf(&b, "%-14s %10s %11s %10s %10s %10s %10s %9s\n",
		"Application", "FaaSLight", "λ-trim", "FaaSLight", "λ-trim", "Vulture", "FaaSLight", "λ-trim")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %9.2f%% %10.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%% %8.2f%%\n",
			r.App, r.MemFaaSLight, r.MemTrim, r.ImportFaaSLight, r.ImportTrim,
			r.ImportVulture, r.E2EFaaSLight, r.E2ETrim)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9 — profiler scoring-method ablation
// ---------------------------------------------------------------------------

// Figure9Apps are the representative applications the paper ablates.
var Figure9Apps = []string{"dna-visualization", "lightgbm", "spacy"}

// Figure9Cell is one (app, scoring method) outcome.
type Figure9Cell struct {
	App     string
	Scoring profiler.Scoring
	// Improvements as fractions (positive = better).
	Cost, Memory, E2E float64
}

// Figure9Result holds all cells.
type Figure9Result struct {
	Cells []Figure9Cell
}

// Figure9 runs λ-trim under each scoring method with a reduced K (the
// ablation's point is ranking quality: with small K, ranking decides what
// gets debloated at all). The random arm is averaged over several seeds,
// matching the paper's repeated-trial boxplots.
func (s *Suite) Figure9() (*Figure9Result, error) {
	const ablationK = 3
	randomSeeds := []int64{3, 11, 29, 47, 71}
	out := &Figure9Result{}
	for _, name := range Figure9Apps {
		orig, err := faas.MeasureColdStart(s.App(name), s.Platform)
		if err != nil {
			return nil, err
		}
		measure := func(sc profiler.Scoring, seed int64) (Figure9Cell, error) {
			cfg := debloat.DefaultConfig()
			cfg.K = ablationK
			cfg.Scoring = sc
			cfg.Seed = seed
			res, err := s.DebloatWith(name, cfg)
			if err != nil {
				return Figure9Cell{}, fmt.Errorf("figure9 %s %s: %w", name, sc, err)
			}
			trim, err := faas.MeasureColdStart(res.App, s.Platform)
			if err != nil {
				return Figure9Cell{}, err
			}
			return Figure9Cell{
				App:     name,
				Scoring: sc,
				Cost:    stats.Improvement(orig.CostUSD, trim.CostUSD),
				Memory:  stats.Improvement(orig.PeakMB, trim.PeakMB),
				E2E:     stats.Improvement(orig.E2E.Seconds(), trim.E2E.Seconds()),
			}, nil
		}
		for _, sc := range []profiler.Scoring{profiler.TimeOnly, profiler.MemoryOnly, profiler.Combined} {
			cell, err := measure(sc, 0)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, cell)
		}
		avg := Figure9Cell{App: name, Scoring: profiler.Random}
		for _, seed := range randomSeeds {
			cell, err := measure(profiler.Random, seed)
			if err != nil {
				return nil, err
			}
			avg.Cost += cell.Cost / float64(len(randomSeeds))
			avg.Memory += cell.Memory / float64(len(randomSeeds))
			avg.E2E += cell.E2E / float64(len(randomSeeds))
		}
		out.Cells = append(out.Cells, avg)
	}
	return out, nil
}

// CombinedWins reports whether the combined scoring method matches or beats
// every other method on cost for each app (the paper's conclusion).
func (f *Figure9Result) CombinedWins() bool {
	best := map[string]float64{}
	combined := map[string]float64{}
	for _, c := range f.Cells {
		if c.Cost > best[c.App] {
			best[c.App] = c.Cost
		}
		if c.Scoring == profiler.Combined {
			combined[c.App] = c.Cost
		}
	}
	for app, b := range best {
		if combined[app] < b-1e-9 {
			return false
		}
	}
	return true
}

// Render prints the ablation grid.
func (f *Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — scoring-method ablation (improvement over original)\n")
	fmt.Fprintf(&b, "%-18s %-10s %8s %8s %8s\n", "Application", "Scoring", "Cost", "Memory", "E2E")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-18s %-10s %7.1f%% %7.1f%% %7.1f%%\n",
			c.App, c.Scoring, 100*c.Cost, 100*c.Memory, 100*c.E2E)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — debloating time and efficacy
// ---------------------------------------------------------------------------

// Table3Row is one app's debloating outcome.
type Table3Row struct {
	App         string
	DebloatTime time.Duration // simulated
	OracleRuns  int
	RepModule   string
	AttrsPre    int
	AttrsPost   int
	CkptPreMB   float64
	CkptPostMB  float64
}

// Table3Result aggregates the rows.
type Table3Result struct {
	Rows []Table3Row
	// AvgCkptSaving is the mean checkpoint-size reduction (paper: ~11%).
	AvgCkptSaving float64
}

// Table3 reproduces the debloating-time/efficacy table including the C/R
// checkpoint-size columns.
func (s *Suite) Table3() (*Table3Result, error) {
	out := &Table3Result{}
	var savings []float64
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		rep := res.Original.Tags["rep_module"]
		row := Table3Row{
			App: name, DebloatTime: res.DebloatTime, OracleRuns: res.OracleRuns,
			RepModule: rep,
		}
		for _, m := range res.Modules {
			if m.Module == rep {
				row.AttrsPre = m.AttrsBefore
				row.AttrsPost = m.AttrsAfter
				break
			}
		}
		cmp, err := checkpoint.CompareInit(res.Original, res.App)
		if err != nil {
			return nil, err
		}
		row.CkptPreMB = cmp.OriginalCkptMB
		row.CkptPostMB = cmp.DebloatedCkptMB
		savings = append(savings, cmp.CkptSizeSavings)
		out.Rows = append(out.Rows, row)
	}
	out.AvgCkptSaving = stats.Mean(savings)
	return out, nil
}

// Render prints the table.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — debloating time (simulated), attribute efficacy, checkpoint size\n")
	fmt.Fprintf(&b, "%-18s %12s %8s %-14s %13s %15s\n",
		"Application", "Debloat(s)", "Oracle", "Module", "Attrs(post/pre)", "Ckpt MB(post/pre)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %12.0f %8d %-14s %6d/%-6d %8.0f/%-6.0f\n",
			r.App, r.DebloatTime.Seconds(), r.OracleRuns, r.RepModule,
			r.AttrsPost, r.AttrsPre, r.CkptPostMB, r.CkptPreMB)
	}
	fmt.Fprintf(&b, "average checkpoint-size reduction: %.1f%% (paper: ~11%%)\n", 100*t.AvgCkptSaving)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 10 — varying K
// ---------------------------------------------------------------------------

// Figure10Ks is the sweep of the paper's Figure 10.
var Figure10Ks = []int{1, 5, 10, 15, 20, 30, 40, 50}

// Figure10Cell is one (app, K) outcome.
type Figure10Cell struct {
	App               string
	K                 int
	Cost, Memory, E2E float64 // improvement fractions
}

// Figure10Result holds the sweep.
type Figure10Result struct {
	Cells []Figure10Cell
}

// Figure10 sweeps the number of modules to debloat for the three
// representative apps.
func (s *Suite) Figure10() (*Figure10Result, error) {
	out := &Figure10Result{}
	for _, name := range Figure9Apps {
		orig, err := faas.MeasureColdStart(s.App(name), s.Platform)
		if err != nil {
			return nil, err
		}
		for _, k := range Figure10Ks {
			cfg := debloat.DefaultConfig()
			cfg.K = k
			res, err := s.DebloatWith(name, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure10 %s k=%d: %w", name, k, err)
			}
			trim, err := faas.MeasureColdStart(res.App, s.Platform)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Figure10Cell{
				App: name, K: k,
				Cost:   stats.Improvement(orig.CostUSD, trim.CostUSD),
				Memory: stats.Improvement(orig.PeakMB, trim.PeakMB),
				E2E:    stats.Improvement(orig.E2E.Seconds(), trim.E2E.Seconds()),
			})
		}
	}
	return out, nil
}

// PlateausAt20 reports whether improvements at K=20 are within eps of the
// best seen at any K (the paper observes a plateau from K=20 onward).
func (f *Figure10Result) PlateausAt20(eps float64) bool {
	bestCost := map[string]float64{}
	at20 := map[string]float64{}
	for _, c := range f.Cells {
		if c.Cost > bestCost[c.App] {
			bestCost[c.App] = c.Cost
		}
		if c.K == 20 {
			at20[c.App] = c.Cost
		}
	}
	for app, best := range bestCost {
		if at20[app] < best-eps {
			return false
		}
	}
	return true
}

// Render prints the sweep.
func (f *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 — varying K (number of modules to debloat)\n")
	fmt.Fprintf(&b, "%-18s %4s %8s %8s %8s\n", "Application", "K", "Cost", "Memory", "E2E")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-18s %4d %7.1f%% %7.1f%% %7.1f%%\n",
			c.App, c.K, 100*c.Cost, 100*c.Memory, 100*c.E2E)
	}
	return b.String()
}
