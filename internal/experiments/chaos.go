package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/fleet"
)

// ChaosConfig parameterizes the chaos incident-day experiment: a four-arm
// population (original, debloated, debloated-with-fallback, and
// debloated-with-breaker) replayed twice through the same scripted
// incident schedule — once with every graceful-degradation mechanism off,
// once with all of them on — so the report isolates what the mechanisms
// buy and what the static fallback wrapper costs under correlated faults.
type ChaosConfig struct {
	// Functions is the population size; Seed keys the population, the
	// arrival streams, and every chaos draw.
	Functions int
	Seed      int64
	// Workers is the shard count (0: GOMAXPROCS; wall-clock only).
	Workers int
	// Incidents is the scripted schedule (default: the canonical incident
	// day, chaos.DefaultIncidentDay).
	Incidents []chaos.Incident
}

// DefaultChaosConfig replays 4000 functions (the experiment runs the day
// twice, so it halves the fleet target's default scale) through the
// canonical incident day.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Functions: 4000, Seed: 1, Incidents: chaos.DefaultIncidentDay()}
}

// ChaosResult pairs the mechanisms-off and mechanisms-on replays.
type ChaosResult struct {
	Config ChaosConfig
	// Off ran with Mitigations none; On with all of hedge/shed/breaker/
	// budget. Both carry full fleet results including scorecards.
	Off, On *fleet.Result
}

// Chaos runs the chaos incident-day experiment under the suite's knobs
// (FleetFunctions, FleetWorkers; zero values take the defaults).
func (s *Suite) Chaos() (*ChaosResult, error) {
	cfg := DefaultChaosConfig()
	if s.FleetFunctions > 0 {
		cfg.Functions = s.FleetFunctions
	}
	cfg.Workers = s.FleetWorkers
	return s.ChaosWith(cfg)
}

// ChaosWith generates the four-arm population and replays the incident
// day twice. Both replays share the population, schedule, seed, and
// pricing; the only difference is the mitigation toggles, so every delta
// in the report is attributable to the mechanisms.
func (s *Suite) ChaosWith(cfg ChaosConfig) (*ChaosResult, error) {
	if len(cfg.Incidents) == 0 {
		cfg.Incidents = chaos.DefaultIncidentDay()
	}
	pc := fleet.DefaultPopConfig()
	pc.Functions = cfg.Functions
	pc.Seed = cfg.Seed
	pc.Pricing = s.Platform.Pricing
	pc.ArmMix = []fleet.ArmShare{
		{Arm: chaos.ArmDebloated, Frac: 0.25},
		{Arm: chaos.ArmFallback, Frac: 0.25},
		{Arm: chaos.ArmBreaker, Frac: 0.25},
	}
	pop := fleet.GeneratePopulation(pc, nil)

	run := func(m chaos.Mitigations) (*fleet.Result, error) {
		return fleet.Replay(fleet.Config{
			Workers: cfg.Workers,
			Period:  pc.Period,
			SLOs:    fleet.DefaultChaosSLOs(),
			Seed:    cfg.Seed,
			Pricing: pc.Pricing,
			Chaos: &chaos.Config{
				Seed:        cfg.Seed,
				Incidents:   cfg.Incidents,
				Mitigations: m,
			},
		}, pop)
	}
	off, err := run(chaos.Mitigations{})
	if err != nil {
		return nil, err
	}
	on, err := run(chaos.AllMitigations())
	if err != nil {
		return nil, err
	}
	return &ChaosResult{Config: cfg, Off: off, On: on}, nil
}

// Render produces the incident-day report: the schedule, both replays'
// scorecards, and the headline deltas — unavailability and MTTR bought by
// the mechanisms, and the brownout cost amplification the static fallback
// wrapper exhibits against the breaker-protected arm.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos incident day — %d functions, 4 arms (original/debloated/fallback/breaker), seed %d\n",
		r.Config.Functions, r.Config.Seed)
	fmt.Fprintf(&b, "schedule: %s\n\n", chaos.FormatIncidents(r.Config.Incidents))

	b.WriteString("mitigations=none:\n")
	b.WriteString(indent(r.Off.Scorecard()))
	b.WriteString("mitigations=all:\n")
	b.WriteString(indent(r.On.Scorecard()))

	off, on := r.Off.Chaos, r.On.Chaos
	if off == nil || on == nil {
		return b.String()
	}
	b.WriteString("\ndeltas (none -> all):\n")
	uo, un := 100*off.Total.Unavailability(), 100*on.Total.Unavailability()
	fmt.Fprintf(&b, "  unavailability %.3f%% -> %.3f%% (%+.3fpp)\n", uo, un, un-uo)
	fmt.Fprintf(&b, "  alerts fired   %d -> %d\n", r.Off.AlertsFired(), r.On.AlertsFired())
	for i := range off.Incidents {
		if i >= len(on.Incidents) {
			break
		}
		io, in := off.Incidents[i], on.Incidents[i]
		fmt.Fprintf(&b, "  mttr %-40s %s -> %s\n",
			io.Incident.String(), fmtMTTR(io), fmtMTTR(in))
	}
	ampRow := func(res *fleet.Result, arm string) float64 {
		for _, row := range res.Chaos.Arms {
			if row.Arm == arm {
				return row.BrownoutAmplification()
			}
		}
		return 0
	}
	fmt.Fprintf(&b, "  brownout $/served amplification (mitigations=all): fallback %.2fx, breaker %.2fx, debloated %.2fx\n",
		ampRow(r.On, chaos.ArmFallback), ampRow(r.On, chaos.ArmBreaker), ampRow(r.On, chaos.ArmDebloated))
	return b.String()
}

func fmtMTTR(io chaos.IncidentOutcome) string {
	if io.Impacted == 0 {
		return "-"
	}
	return io.MTTR.String()
}

func indent(s string) string {
	if s == "" {
		return s
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
