package experiments

import (
	"fmt"
	"strings"

	"repro/internal/powertune"
	"repro/internal/stats"
)

// ExtPowerTuneResult is an extension experiment (not in the paper): how
// λ-trim's footprint reductions interact with memory power-tuning. Two
// effects compound:
//
//   - smaller footprints admit smaller (cheaper) memory configurations,
//     sometimes unlocking the 128 MB floor entirely;
//   - shorter initialization shrinks the billed duration at every
//     configuration.
type ExtPowerTuneResult struct {
	Rows []ExtPowerTuneRow
	// AvgTunedSaving is the mean cost reduction comparing each variant at
	// its own cheapest configuration.
	AvgTunedSaving float64
	// FloorUnlocked counts apps whose cheapest configuration drops to the
	// 128 MB floor only after debloating.
	FloorUnlocked int
}

// ExtPowerTuneRow is one app's tuned comparison.
type ExtPowerTuneRow struct {
	App            string
	OrigCheapestMB int
	TrimCheapestMB int
	OrigCostUSD    float64 // per cold invocation at the cheapest config
	TrimCostUSD    float64
	Saving         float64
}

// ExtPowerTune sweeps every corpus app before and after debloating.
func (s *Suite) ExtPowerTune() (*ExtPowerTuneResult, error) {
	out := &ExtPowerTuneResult{}
	var savings []float64
	ladder := powertune.DefaultLadder()
	for _, name := range AllNames() {
		res, err := s.Debloat(name)
		if err != nil {
			return nil, err
		}
		orig, err := powertune.Sweep(res.Original, s.Platform, ladder, 0.7)
		if err != nil {
			return nil, fmt.Errorf("ext-tune %s original: %w", name, err)
		}
		trim, err := powertune.Sweep(res.App, s.Platform, ladder, 0.7)
		if err != nil {
			return nil, fmt.Errorf("ext-tune %s trimmed: %w", name, err)
		}
		origBest := costAt(orig, orig.OptimalMB)
		trimBest := costAt(trim, trim.OptimalMB)
		saving := stats.Improvement(origBest, trimBest)
		savings = append(savings, saving)
		if trim.OptimalMB == 128 && orig.OptimalMB > 128 {
			out.FloorUnlocked++
		}
		out.Rows = append(out.Rows, ExtPowerTuneRow{
			App:            name,
			OrigCheapestMB: orig.OptimalMB,
			TrimCheapestMB: trim.OptimalMB,
			OrigCostUSD:    origBest,
			TrimCostUSD:    trimBest,
			Saving:         saving,
		})
	}
	out.AvgTunedSaving = stats.Mean(savings)
	return out, nil
}

func costAt(res *powertune.Result, mem int) float64 {
	for _, row := range res.Rows {
		if row.MemoryMB == mem {
			return row.CostUSD
		}
	}
	return 0
}

// Render prints the tuned comparison.
func (r *ExtPowerTuneResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — power-tuned cost, original vs λ-trim (cheapest feasible config each)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s %14s %8s\n",
		"Application", "Orig cfg", "Trim cfg", "Orig $/inv", "Trim $/inv", "Saving")
	for _, row := range r.Rows {
		marker := ""
		if row.TrimCheapestMB == 128 && row.OrigCheapestMB > 128 {
			marker = "  <- floor unlocked"
		}
		fmt.Fprintf(&b, "%-18s %10dMB %10dMB %14.3g %14.3g %7.1f%%%s\n",
			row.App, row.OrigCheapestMB, row.TrimCheapestMB,
			row.OrigCostUSD, row.TrimCostUSD, 100*row.Saving, marker)
	}
	fmt.Fprintf(&b, "average tuned-cost saving %.1f%%; %d apps unlock the 128 MB floor\n",
		100*r.AvgTunedSaving, r.FloorUnlocked)
	return b.String()
}
