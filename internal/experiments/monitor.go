package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/appspec"
	"repro/internal/faas"
	"repro/internal/fleet"
	"repro/internal/obs/monitor"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Monitor — operational observability over a fleet replay (extension)
// ---------------------------------------------------------------------------
//
// The cost tables answer "what does debloating save"; this experiment
// answers "what does an operator watching the service see". It replays the
// same seeded bursty workload against the original and the debloated
// deployment of one app, each under a monitor with identical SLOs — a p95
// latency objective, a per-invocation cost objective, and an error-rate
// objective, with thresholds derived from the two deployments' probed cold
// starts so the original burns its budget where the debloated one does
// not. Alerts fire at deterministic virtual times via multi-window
// burn-rate evaluation, and the cost-attribution ledger decomposes each
// deployment's Eq.-1 bill into init / handler / idle dollars — the
// per-phase view that explains *why* the original pages and the debloated
// deployment stays quiet.
//
// A second section replays a synthetic Azure-shaped fleet through the
// keep-alive pool simulation, feeding every served arrival to one fleet
// monitor: cold-fraction burn alerts plus a top-spender table, showing the
// subsystem at trace scale rather than app scale.

// MonitorConfig parameterizes the monitored replay.
type MonitorConfig struct {
	// App is the corpus application to study.
	App string
	// Seed drives trace generation for both the app replay and the fleet
	// section; a fixed seed reproduces every byte of output.
	Seed int64
	// MaxRequests caps the replayed arrivals.
	MaxRequests int
	// BurstWindow groups arrivals closer than this into one concurrent
	// burst.
	BurstWindow time.Duration
	// Headroom provisions each deployment's memory at this factor over its
	// own profiled peak.
	Headroom float64
	// Resolution is the monitor's TSDB window (and SLO tick) size.
	Resolution time.Duration
	// DashboardEvery renders a dashboard frame at this virtual interval.
	DashboardEvery time.Duration
	// LatencyBudget and CostBudget are the allowed bad fractions of the
	// latency and per-invocation cost objectives; ErrorBudget the allowed
	// failure fraction.
	LatencyBudget, CostBudget, ErrorBudget float64
	// SLOs, when non-empty, replaces the probe-derived objective set
	// entirely (e.g. parsed from a -slo flag). Both deployments still
	// share the same set.
	SLOs []monitor.SLO
	// Retry is the client-side retry policy for the replay.
	Retry faas.RetryPolicy

	// FleetFunctions/FleetPeriod shape the fleet trace; FleetKeepAlive the
	// pool policy; FleetColdInit the modeled init latency of a fleet cold
	// start; FleetColdBudget the fleet cold-fraction SLO budget.
	FleetFunctions  int
	FleetPeriod     time.Duration
	FleetKeepAlive  time.Duration
	FleetColdInit   time.Duration
	FleetColdBudget float64
	// FleetResolution is the fleet monitor's TSDB window size.
	FleetResolution time.Duration
	// FleetWorkers shards the fleet replay across worker goroutines via
	// the fleet engine (0 or 1 replays sequentially). The rendered output
	// is byte-identical at any worker count.
	FleetWorkers int
}

// DefaultMonitorConfig replays ~150 requests of the hottest seeded trace
// function (a few minutes of virtual time, so seconds-scale windows) and a
// two-hour sixty-function fleet.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		App:            "lightgbm",
		Seed:           7,
		MaxRequests:    150,
		BurstWindow:    2 * time.Second,
		Headroom:       1.2,
		Resolution:     5 * time.Second,
		DashboardEvery: 30 * time.Second,
		LatencyBudget:  0.05,
		CostBudget:     0.05,
		ErrorBudget:    0.02,
		Retry:          faas.DefaultRetryPolicy(),

		FleetFunctions:  60,
		FleetPeriod:     2 * time.Hour,
		FleetKeepAlive:  15 * time.Minute,
		FleetColdInit:   400 * time.Millisecond,
		FleetColdBudget: 0.30,
		FleetResolution: time.Minute,
	}
}

// MonitorVariantRow is one deployment's monitored outcome.
type MonitorVariantRow struct {
	Deployment string
	MemoryMB   int
	Requests   int
	// Phase is the ledger's cost decomposition for the deployment.
	Phase monitor.Phase
	// FireCounts summarizes each objective's alerting outcome.
	FireCounts []monitor.SLOFireCount
	// AlertLog, Dashboard, and OpenMetrics are the monitor's deterministic
	// text artifacts.
	AlertLog    string
	Dashboard   string
	OpenMetrics []byte
}

// AlertsFired sums fire transitions across objectives.
func (r MonitorVariantRow) AlertsFired() int {
	n := 0
	for _, fc := range r.FireCounts {
		n += fc.Fired
	}
	return n
}

// FleetFunctionRow is one fleet function's ledger summary.
type FleetFunctionRow struct {
	Function string
	Phase    monitor.Phase
}

// FleetSummary is the fleet replay's outcome.
type FleetSummary struct {
	Functions   int
	Invocations uint64
	ColdStarts  uint64
	CostUSD     float64
	AlertsFired int
	AlertLog    string
	// TopSpenders are the costliest functions, largest bill first.
	TopSpenders []FleetFunctionRow
}

// MonitorResult aggregates the monitored comparison.
type MonitorResult struct {
	App    string
	Seed   int64
	Config MonitorConfig
	// LatencySLO and CostSLO are the probe-derived thresholds applied
	// identically to both deployments (informational when Config.SLOs
	// overrode the derived set).
	LatencySLO time.Duration
	CostSLO    float64
	// SLOs is the objective set actually evaluated.
	SLOs []monitor.SLO
	Rows []MonitorVariantRow
	// ModuleCosts attributes the original deployment's init-phase dollars
	// to its profiled modules (largest share first).
	ModuleCosts []monitor.ModuleCost
	Fleet       FleetSummary
}

// Monitor runs the monitored replay with the default configuration.
func (s *Suite) Monitor() (*MonitorResult, error) {
	return s.MonitorWith(DefaultMonitorConfig())
}

// MonitorWith runs the monitored replay with a custom configuration,
// reusing the suite's cached debloating result.
func (s *Suite) MonitorWith(cfg MonitorConfig) (*MonitorResult, error) {
	res, err := s.Debloat(cfg.App)
	if err != nil {
		return nil, err
	}
	return MonitorCompare(res.Original, res.App, res.Profile, s.Platform, cfg)
}

// MonitorCompare replays the seeded workload against the original and
// debloated deployments of one app, each watched by a monitor with the
// same probe-derived SLO set, then replays the synthetic fleet through the
// keep-alive pool under a fleet monitor.
func MonitorCompare(orig, trim *appspec.App, profile *profiler.Profile, platform faas.Config, cfg MonitorConfig) (*MonitorResult, error) {
	origProbe, err := faas.MeasureColdStart(orig, platform)
	if err != nil {
		return nil, fmt.Errorf("monitor: probing original: %w", err)
	}
	trimProbe, err := faas.MeasureColdStart(trim, platform)
	if err != nil {
		return nil, fmt.Errorf("monitor: probing debloated: %w", err)
	}

	// Thresholds sit at the geometric midpoint of the two probed cold
	// starts: the original's cold invocations violate them, the debloated
	// one's never do — under one SLO config shared by both deployments.
	latSLO := time.Duration(math.Sqrt(float64(origProbe.E2E) * float64(trimProbe.E2E)))
	costSLO := math.Sqrt(origProbe.CostUSD * trimProbe.CostUSD)
	slos := cfg.SLOs
	if len(slos) == 0 {
		slos = []monitor.SLO{
			{Name: "latency-p95", Kind: monitor.KindLatency, Threshold: latSLO, Budget: cfg.LatencyBudget},
			{Name: "cost-per-invocation", Kind: monitor.KindCostPerInvocation, BudgetUSD: costSLO, Budget: cfg.CostBudget},
			{Name: "error-rate", Kind: monitor.KindErrorRate, Budget: cfg.ErrorBudget},
		}
	}

	groups := burstGroups(cfg.Seed, cfg.MaxRequests, cfg.BurstWindow)
	event := map[string]any{}
	if len(orig.Oracle) > 0 {
		event = orig.Oracle[0].Event
	}
	provision := func(app *appspec.App, peakMB float64) *appspec.App {
		cp := app.Clone()
		cp.MemoryMB = int(math.Ceil(peakMB * cfg.Headroom))
		return cp
	}

	out := &MonitorResult{App: orig.Name, Seed: cfg.Seed, Config: cfg,
		LatencySLO: latSLO, CostSLO: costSLO, SLOs: slos}
	variants := []struct {
		label string
		app   *appspec.App
		peak  float64
	}{
		{"original", orig, origProbe.PeakMB},
		{"debloated", trim, trimProbe.PeakMB},
	}
	for _, v := range variants {
		mon := monitor.New(monitor.Config{
			Resolution:     cfg.Resolution,
			SLOs:           slos,
			DashboardEvery: cfg.DashboardEvery,
		})
		mcfg := platform
		mcfg.Monitor = mon
		p := faas.New(mcfg)
		app := provision(v.app, v.peak)
		p.Deploy(app)

		row := MonitorVariantRow{Deployment: v.label, MemoryMB: app.MemoryMB}
		for _, g := range groups {
			if gap := g.start - p.Now(); gap > 0 {
				p.Advance(gap)
			}
			events := make([]map[string]any, g.size)
			for i := range events {
				events[i] = event
			}
			invs, err := p.InvokeGroupWithRetry(app.Name, events, cfg.Retry)
			if err != nil {
				return nil, fmt.Errorf("monitor %s: %w", v.label, err)
			}
			row.Requests += len(invs)
		}
		mon.Finish()

		row.Phase = mon.Ledger().Function(app.Name)
		row.FireCounts = mon.FireCounts()
		row.AlertLog = mon.AlertLog()
		row.Dashboard = mon.Dashboard()
		row.OpenMetrics = mon.OpenMetrics()
		out.Rows = append(out.Rows, row)

		if v.label == "original" && profile != nil {
			weights := make([]monitor.ModuleWeight, 0, len(profile.Modules))
			for _, m := range profile.Modules {
				weights = append(weights, monitor.ModuleWeight{
					Name:   m.Name,
					Weight: m.ImportTime.Seconds(),
				})
			}
			out.ModuleCosts = mon.Ledger().AttributeInit(app.Name, weights)
		}
	}

	out.Fleet, err = replayFleet(platform.Pricing, cfg)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replayFleet generates the Azure-shaped fleet trace and replays it
// through the sharded fleet engine (internal/fleet) with the same pool
// policy, billing, and cold-fraction objective the hand-rolled loop used
// to apply. The engine's block-ordered merge plus post-hoc SLO sweep
// reproduce the globally-sorted live-monitor feed byte-for-byte (see
// monitor/eval.go), so the rendered section is pinned by a golden test.
// cfg.FleetWorkers > 1 shards the replay across workers without changing
// a byte of the output.
func replayFleet(pricing faas.Pricing, cfg MonitorConfig) (FleetSummary, error) {
	tr := trace.Generate(trace.GenConfig{
		Functions: cfg.FleetFunctions, Period: cfg.FleetPeriod, Seed: cfg.Seed,
	})
	fns := make([]fleet.Function, 0, len(tr.Functions))
	for i := range tr.Functions {
		f := &tr.Functions[i]
		fns = append(fns, fleet.Function{
			ID:       f.ID,
			Name:     fmt.Sprintf("fleet-%03d", f.ID),
			ColdInit: cfg.FleetColdInit,
			Exec:     time.Duration(f.DurationMS * float64(time.Millisecond)),
			MemoryMB: pricing.ConfigureMemory(f.MemoryMB),
			Arrivals: f.SortedArrivals(),
		})
	}
	workers := cfg.FleetWorkers
	if workers <= 0 {
		workers = 1
	}
	res, err := fleet.Replay(fleet.Config{
		Workers:    workers,
		Period:     cfg.FleetPeriod,
		Resolution: cfg.FleetResolution,
		Windows:    monitor.DefaultWindows,
		KeepAlive:  cfg.FleetKeepAlive,
		Pricing:    pricing,
		Seed:       cfg.Seed,
		SLOs: []monitor.SLO{
			{Name: "fleet-cold-fraction", Kind: monitor.KindColdFraction, Budget: cfg.FleetColdBudget},
		},
	}, fns)
	if err != nil {
		return FleetSummary{}, fmt.Errorf("fleet replay: %w", err)
	}

	sum := FleetSummary{
		Functions:   res.Functions,
		Invocations: res.Invocations,
		ColdStarts:  res.ColdStarts,
		CostUSD:     res.CostUSD(),
		AlertsFired: res.AlertsFired(),
		AlertLog:    res.AlertLog(),
	}
	for _, sp := range res.TopSpenders(5) {
		sum.TopSpenders = append(sum.TopSpenders, FleetFunctionRow{Function: sp.Function, Phase: sp.Phase})
	}
	return sum, nil
}

// describeSLO renders one objective's parameters for the result header.
func describeSLO(s monitor.SLO) string {
	budget := s.Budget
	if budget <= 0 {
		budget = 0.05
	}
	switch s.Kind {
	case monitor.KindLatency:
		return fmt.Sprintf("E2E ≤ %s for %.0f%% of requests", s.Threshold.Round(time.Millisecond), 100*(1-budget))
	case monitor.KindErrorRate:
		return fmt.Sprintf("failures ≤ %.0f%% of requests", 100*budget)
	case monitor.KindColdFraction:
		return fmt.Sprintf("cold starts ≤ %.0f%% of requests", 100*budget)
	case monitor.KindCostPerInvocation:
		return fmt.Sprintf("bill ≤ $%.9f for %.0f%% of requests", s.BudgetUSD, 100*(1-budget))
	case monitor.KindCostRate:
		return fmt.Sprintf("spend ≤ $%.6f/hour", s.BudgetUSD)
	}
	return s.Kind.String()
}

// Render prints the monitored comparison: the shared SLO set, each
// deployment's alerts and phase-attributed bill, the original's per-module
// init attribution, and the fleet section.
func (r *MonitorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Monitor — %s replay under SLO burn-rate alerting (seed %d)\n", r.App, r.Seed)
	b.WriteString("SLOs (identical for both deployments):\n")
	for _, s := range r.SLOs {
		fmt.Fprintf(&b, "  %-22s %s\n", s.Name, describeSLO(s))
	}
	fmt.Fprintf(&b, "windows: %s resolution, burn≥1 on both 5× and 30× trailing windows\n\n", r.Config.Resolution)

	fmt.Fprintf(&b, "%-10s %6s %6s %6s %7s %12s %12s %12s %12s %6s %7s\n",
		"Deployment", "MemMB", "Reqs", "Cold", "Err", "Init$", "Handler$", "Idle$", "Total$", "Init%", "Alerts")
	for _, row := range r.Rows {
		ph := row.Phase
		total := ph.CostUSD()
		initShare := 0.0
		if total > 0 {
			initShare = 100 * (ph.InitUSD + ph.RestoreUSD) / total
		}
		fmt.Fprintf(&b, "%-10s %6d %6d %6d %7d %12.9f %12.9f %12.9f %12.9f %5.1f%% %7d\n",
			row.Deployment, row.MemoryMB, row.Requests, ph.ColdStarts, ph.Errors,
			ph.InitUSD, ph.ExecUSD, ph.IdleUSD, total, initShare, row.AlertsFired())
	}
	if len(r.Rows) == 2 {
		o, t := r.Rows[0].Phase, r.Rows[1].Phase
		fmt.Fprintf(&b, "%-10s %6s %6s %6s %7s %12.9f %12.9f %12.9f %12.9f\n",
			"delta", "", "", "", "", o.InitUSD-t.InitUSD, o.ExecUSD-t.ExecUSD,
			o.IdleUSD-t.IdleUSD, o.CostUSD()-t.CostUSD())
	}
	b.WriteByte('\n')

	for _, row := range r.Rows {
		fmt.Fprintf(&b, "alerts (%s):\n", row.Deployment)
		if row.AlertLog == "" {
			b.WriteString("  (none)\n")
		} else {
			for _, line := range strings.Split(strings.TrimRight(row.AlertLog, "\n"), "\n") {
				b.WriteString("  " + line + "\n")
			}
		}
		fmt.Fprintf(&b, "dashboard (%s):\n", row.Deployment)
		for _, line := range strings.Split(strings.TrimRight(row.Dashboard, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteByte('\n')

	if len(r.ModuleCosts) > 0 {
		b.WriteString("original init-phase dollars by module (profiler-weighted):\n")
		limit := 8
		if len(r.ModuleCosts) < limit {
			limit = len(r.ModuleCosts)
		}
		for _, mc := range r.ModuleCosts[:limit] {
			fmt.Fprintf(&b, "  %-28s $%.12f (%5.1f%%)\n", mc.Name, mc.USD, 100*mc.Share)
		}
		b.WriteByte('\n')
	}

	renderFleetSection(&b, r.Fleet, r.Config)
	b.WriteString("the original pages on latency and cost where the debloated deployment stays inside budget; the delta row is init-phase dollars debloating removed\n")
	return b.String()
}

// renderFleetSection renders the fleet replay's lines of the monitor
// report. Split out so the golden test can pin the section (and only the
// section) against the pre-engine output byte-for-byte.
func renderFleetSection(b *strings.Builder, f FleetSummary, cfg MonitorConfig) {
	fmt.Fprintf(b, "fleet replay: %d functions over %s, keep-alive %s\n",
		f.Functions, cfg.FleetPeriod, cfg.FleetKeepAlive)
	coldPct := 0.0
	if f.Invocations > 0 {
		coldPct = 100 * float64(f.ColdStarts) / float64(f.Invocations)
	}
	fmt.Fprintf(b, "  invocations=%d cold=%d (%.1f%%) cost=$%.6f alerts=%d\n",
		f.Invocations, f.ColdStarts, coldPct, f.CostUSD, f.AlertsFired)
	if f.AlertLog != "" {
		for _, line := range strings.Split(strings.TrimRight(f.AlertLog, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteString("  top spenders:\n")
	for _, row := range f.TopSpenders {
		ph := row.Phase
		fmt.Fprintf(b, "    %-12s invoc=%-6d cold=%-5d init$=%.6f handler$=%.6f total$=%.6f\n",
			row.Function, ph.Invocations, ph.ColdStarts, ph.InitUSD, ph.ExecUSD, ph.CostUSD())
	}
}
