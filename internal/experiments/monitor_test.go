package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs/monitor"
)

// The headline acceptance scenario: under one probe-derived SLO set shared
// by both deployments, the original burns its budgets and pages while the
// debloated deployment stays quiet, and the ledger's phase decomposition
// explains the delta as init-phase dollars.
func TestMonitorOriginalPagesDebloatedDoesNot(t *testing.T) {
	res, err := suite.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	orig, trim := res.Rows[0], res.Rows[1]
	if orig.Deployment != "original" || trim.Deployment != "debloated" {
		t.Fatalf("row order = %q, %q", orig.Deployment, trim.Deployment)
	}

	if orig.AlertsFired() == 0 {
		t.Error("original should fire at least one burn-rate alert")
	}
	if trim.AlertsFired() != 0 {
		t.Errorf("debloated fired %d alerts under the shared SLOs:\n%s",
			trim.AlertsFired(), trim.AlertLog)
	}
	if orig.AlertLog == "" || trim.AlertLog != "" {
		t.Error("alert logs should mirror the fire counts")
	}

	// Both replay the same workload; the bill explains the paging asymmetry.
	if orig.Requests == 0 || orig.Requests != trim.Requests {
		t.Errorf("requests: %d vs %d, want equal shared workload", orig.Requests, trim.Requests)
	}
	if trim.MemoryMB >= orig.MemoryMB {
		t.Errorf("debloated MemMB %d !< original %d", trim.MemoryMB, orig.MemoryMB)
	}
	op, tp := orig.Phase, trim.Phase
	if op.CostUSD() <= tp.CostUSD() {
		t.Errorf("original bill %v !> debloated %v", op.CostUSD(), tp.CostUSD())
	}
	if op.InitUSD <= tp.InitUSD {
		t.Errorf("original init$ %v !> debloated %v", op.InitUSD, tp.InitUSD)
	}
	// Init dollars dominate the saving — the paper's Figure-2 claim seen
	// through the ledger.
	if initSaved, total := op.InitUSD-tp.InitUSD, op.CostUSD()-tp.CostUSD(); initSaved < total/2 {
		t.Errorf("init$ saving %v < half the total saving %v", initSaved, total)
	}
	// Phase dollars must reconstruct the exact bill for both variants.
	for _, row := range res.Rows {
		ph := row.Phase
		sum := ph.InitUSD + ph.ExecUSD + ph.IdleUSD + ph.RestoreUSD
		if diff := sum - ph.CostUSD(); diff > 1e-15 || diff < -1e-15 {
			t.Errorf("%s: phases %v != bill %v", row.Deployment, sum, ph.CostUSD())
		}
	}

	// Module attribution covers the original's init+restore dollars.
	if len(res.ModuleCosts) == 0 {
		t.Fatal("no module attribution for the original")
	}
	var modSum, shareSum float64
	for _, mc := range res.ModuleCosts {
		modSum += mc.USD
		shareSum += mc.Share
	}
	if diff := modSum - (op.InitUSD + op.RestoreUSD); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("module dollars %v != init dollars %v", modSum, op.InitUSD+op.RestoreUSD)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("module shares sum to %v", shareSum)
	}

	// Fleet section sanity.
	f := res.Fleet
	if f.Functions == 0 || f.Invocations == 0 || f.CostUSD <= 0 {
		t.Errorf("fleet summary empty: %+v", f)
	}
	if len(f.TopSpenders) == 0 {
		t.Error("no fleet top spenders")
	}
	for i := 1; i < len(f.TopSpenders); i++ {
		if f.TopSpenders[i].Phase.CostUSD() > f.TopSpenders[i-1].Phase.CostUSD() {
			t.Error("top spenders not sorted by bill")
		}
	}

	out := res.Render()
	for _, want := range []string{
		"Monitor", "latency-p95", "cost-per-invocation", "error-rate",
		"original", "debloated", "delta", "FIRING", "dashboard",
		"by module", "fleet replay", "top spenders",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// Fixed seed + SLO config ⇒ byte-identical monitor artifacts: the rendered
// report, the OpenMetrics expositions, the alert logs, and the dashboards.
func TestMonitorGoldenDeterminism(t *testing.T) {
	a, err := suite.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("same seed rendered differently")
	}
	for i := range a.Rows {
		if !bytes.Equal(a.Rows[i].OpenMetrics, b.Rows[i].OpenMetrics) {
			t.Errorf("%s: OpenMetrics not byte-identical", a.Rows[i].Deployment)
		}
		if a.Rows[i].AlertLog != b.Rows[i].AlertLog {
			t.Errorf("%s: alert log not byte-identical", a.Rows[i].Deployment)
		}
		if a.Rows[i].Dashboard != b.Rows[i].Dashboard {
			t.Errorf("%s: dashboard not byte-identical", a.Rows[i].Deployment)
		}
	}

	// A different seed shifts the workload and therefore the artifacts.
	cfg := DefaultMonitorConfig()
	cfg.Seed = 99
	c, err := suite.MonitorWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Render() == a.Render() {
		t.Error("different seeds rendered identically")
	}
}

// The monitor artifacts may not depend on the corpus-priming worker count:
// a suite primed sequentially and one primed on a pool must replay to the
// same bytes. (The full-corpus variant of this invariant lives in
// TestDebloatAllGoldenDeterminism, which renders the monitor driver too.)
func TestMonitorDeterministicAcrossWorkers(t *testing.T) {
	seq := NewSuite()
	if err := seq.DebloatAll(1, DefaultMonitorConfig().App); err != nil {
		t.Fatal(err)
	}
	par := NewSuite()
	if err := par.DebloatAll(4, DefaultMonitorConfig().App); err != nil {
		t.Fatal(err)
	}
	a, err := seq.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("monitor output depends on the priming worker count")
	}
	for i := range a.Rows {
		if !bytes.Equal(a.Rows[i].OpenMetrics, b.Rows[i].OpenMetrics) {
			t.Errorf("%s: OpenMetrics differs across workers", a.Rows[i].Deployment)
		}
	}
}

// A -slo style override replaces the probe-derived set for both variants.
func TestMonitorSLOOverride(t *testing.T) {
	slos, err := monitor.ParseSLOs("err=50%")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMonitorConfig()
	cfg.SLOs = slos
	res, err := suite.MonitorWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLOs) != 1 || res.SLOs[0].Kind != monitor.KindErrorRate {
		t.Fatalf("SLO set = %+v", res.SLOs)
	}
	// The fault-free replay never violates a 50% error budget.
	for _, row := range res.Rows {
		if row.AlertsFired() != 0 {
			t.Errorf("%s fired %d alerts on a loose error SLO", row.Deployment, row.AlertsFired())
		}
		if len(row.FireCounts) != 1 {
			t.Errorf("%s fire counts = %+v", row.Deployment, row.FireCounts)
		}
	}
}
