// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) from the simulated substrate. Each driver returns typed
// rows plus a Render method producing an aligned text table, so results can
// be consumed programmatically (benchmarks, tests) or read directly
// (cmd/experiments).
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
)

// Suite caches corpus builds and debloating results so that regenerating
// several figures does not re-run the (expensive) DD pipeline per figure —
// mirroring the artifact's workflow, where the debloating experiment runs
// once and later experiments reuse its outputs.
type Suite struct {
	Platform faas.Config

	mu        sync.Mutex
	apps      map[string]*appspec.App
	debloated map[string]*debloat.Result
}

// NewSuite creates a suite with the paper's default platform configuration.
func NewSuite() *Suite {
	return &Suite{
		Platform:  faas.DefaultConfig(),
		apps:      make(map[string]*appspec.App),
		debloated: make(map[string]*debloat.Result),
	}
}

// App returns the original (un-optimized) app, built once.
func (s *Suite) App(name string) *appspec.App {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.apps[name]; ok {
		return a
	}
	a := appcorpus.MustBuild(name)
	s.apps[name] = a
	return a
}

// Debloat returns the cached λ-trim result for the app under the paper's
// default configuration (K=20, combined scoring).
func (s *Suite) Debloat(name string) (*debloat.Result, error) {
	s.mu.Lock()
	if r, ok := s.debloated[name]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	app := s.App(name).Clone()
	cfg := debloat.DefaultConfig()
	cfg.Tracer = s.Platform.Tracer
	res, err := debloat.Run(app, cfg)
	if err != nil {
		return nil, fmt.Errorf("debloat %s: %w", name, err)
	}
	s.mu.Lock()
	s.debloated[name] = res
	s.mu.Unlock()
	return res, nil
}

// DebloatWith runs λ-trim with a custom configuration (not cached).
func (s *Suite) DebloatWith(name string, cfg debloat.Config) (*debloat.Result, error) {
	app := s.App(name).Clone()
	return debloat.Run(app, cfg)
}

// AllNames returns the corpus app names in Table 1 order.
func AllNames() []string {
	var out []string
	for _, d := range appcorpus.Catalog() {
		out = append(out, d.Name)
	}
	return out
}

// Invocations100K is the invocation count the paper prices (Figure 2:
// "priced for 100K invocations").
const Invocations100K = 100_000
