// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) from the simulated substrate. Each driver returns typed
// rows plus a Render method producing an aligned text table, so results can
// be consumed programmatically (benchmarks, tests) or read directly
// (cmd/experiments).
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/pyruntime"
)

// Suite caches corpus builds and debloating results so that regenerating
// several figures does not re-run the (expensive) DD pipeline per figure —
// mirroring the artifact's workflow, where the debloating experiment runs
// once and later experiments reuse its outputs.
//
// Caching contract (shared by Debloat, DebloatWith, and DebloatAll):
//
//   - The debloat.Result cache holds default-configuration results only.
//     Debloat fills and reads it; DebloatWith never touches it, so ablation
//     configurations cannot pollute the figures that assume defaults.
//   - Snapshots and ASTs are real-clock caches shared by every debloat run
//     in the suite (both entry points, all workers). They are keyed by
//     module content, so sharing them across differing configurations is
//     sound, and by construction they do not affect any simulated
//     observable — see DESIGN.md §9.
//   - Every run records into s.Platform.Tracer unless the caller supplies
//     its own cfg.Tracer.
type Suite struct {
	Platform faas.Config

	// Snapshots memoizes module-import outcomes across every oracle run in
	// the suite; ASTs shares parsed module sources. Both only change real
	// wall-clock time. Replace or nil them before the first Debloat call if
	// isolation is needed; DisableMemo turns snapshot replay off entirely
	// (parsing is still cached).
	Snapshots   *pyruntime.SnapshotCache
	ASTs        *pyruntime.ASTCache
	DisableMemo bool

	// FleetFunctions and FleetWorkers parameterize the fleet target
	// (cmd/experiments -fleet-functions/-fleet-workers). Zero values take
	// the defaults: a 10k-function population on GOMAXPROCS worker shards.
	// The worker count never changes a byte of the rendered result.
	FleetFunctions int
	FleetWorkers   int

	mu        sync.Mutex
	apps      map[string]*appspec.App
	debloated map[string]*debloat.Result
}

// NewSuite creates a suite with the paper's default platform configuration
// and fresh shared caches.
func NewSuite() *Suite {
	return &Suite{
		Platform:  faas.DefaultConfig(),
		Snapshots: pyruntime.NewSnapshotCache(),
		ASTs:      pyruntime.NewASTCache(),
		apps:      make(map[string]*appspec.App),
		debloated: make(map[string]*debloat.Result),
	}
}

// App returns the original (un-optimized) app, built once.
func (s *Suite) App(name string) *appspec.App {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.apps[name]; ok {
		return a
	}
	a := appcorpus.MustBuild(name)
	s.apps[name] = a
	return a
}

// Debloat returns the cached λ-trim result for the app under the paper's
// default configuration (K=20, combined scoring).
func (s *Suite) Debloat(name string) (*debloat.Result, error) {
	s.mu.Lock()
	if r, ok := s.debloated[name]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	res, err := s.DebloatWith(name, debloat.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("debloat %s: %w", name, err)
	}
	s.mu.Lock()
	s.debloated[name] = res
	s.mu.Unlock()
	return res, nil
}

// DebloatWith runs λ-trim with a custom configuration. Results are not
// cached (see the Suite caching contract), but the run shares the suite's
// tracer and real-clock caches: a nil cfg.Tracer inherits
// s.Platform.Tracer, nil cfg.Snapshots/cfg.ASTCache inherit the suite
// caches, and s.DisableMemo forces memoization off regardless of cfg.
func (s *Suite) DebloatWith(name string, cfg debloat.Config) (*debloat.Result, error) {
	app := s.App(name).Clone()
	return debloat.Run(app, s.fillConfig(cfg))
}

// fillConfig applies the suite-sharing defaults to a run configuration.
func (s *Suite) fillConfig(cfg debloat.Config) debloat.Config {
	if cfg.Tracer == nil {
		cfg.Tracer = s.Platform.Tracer
	}
	if cfg.Snapshots == nil {
		cfg.Snapshots = s.Snapshots
	}
	if cfg.ASTCache == nil {
		cfg.ASTCache = s.ASTs
	}
	if s.DisableMemo {
		cfg.DisableMemo = true
	}
	return cfg
}

// DebloatAll primes the default-configuration result cache for every corpus
// app on a bounded pool of `workers` goroutines (values < 1 mean 1). Apps
// already cached are skipped; the rest run concurrently against the shared
// real-clock caches.
//
// Determinism: each worker records into a private tracer; completed traces
// are absorbed into s.Platform.Tracer in corpus (Table 1) order, and
// results are committed in that same order, so the cache contents, span
// tree, event log, and every simulated observable are byte-identical to a
// sequential Debloat loop regardless of worker count or schedule. (The
// memo.snapshot.* counters are the one carve-out: with a shared snapshot
// cache, which run misses and which hits depends on the schedule, though
// their totals still describe the same work — see DESIGN.md §9.)
//
// On failure the error for the first failing app in corpus order is
// returned; results and traces for apps before it are committed, those
// after it are discarded, matching where a sequential loop would stop.
//
// A non-empty names list restricts priming to those apps (in the given
// order); the default is the whole corpus.
func (s *Suite) DebloatAll(workers int, names ...string) error {
	if workers < 1 {
		workers = 1
	}
	if len(names) == 0 {
		names = AllNames()
	}

	var pending []int
	s.mu.Lock()
	for i, name := range names {
		if _, ok := s.debloated[name]; !ok {
			pending = append(pending, i)
		}
	}
	s.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}

	type slot struct {
		res *debloat.Result
		tr  *obs.Tracer
		err error
	}
	slots := make([]slot, len(names))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, i := range pending {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := s.fillConfig(debloat.DefaultConfig())
			if s.Platform.Tracer != nil {
				slots[i].tr = obs.New()
				cfg.Tracer = slots[i].tr
			}
			app := s.App(names[i]).Clone()
			slots[i].res, slots[i].err = debloat.Run(app, cfg)
		}(i)
	}
	wg.Wait()

	for _, i := range pending {
		if slots[i].err != nil {
			return fmt.Errorf("debloat %s: %w", names[i], slots[i].err)
		}
		s.Platform.Tracer.Absorb(slots[i].tr)
		s.mu.Lock()
		s.debloated[names[i]] = slots[i].res
		s.mu.Unlock()
	}
	return nil
}

// AllNames returns the corpus app names in Table 1 order.
func AllNames() []string {
	var out []string
	for _, d := range appcorpus.Catalog() {
		out = append(out, d.Name)
	}
	return out
}

// Invocations100K is the invocation count the paper prices (Figure 2:
// "priced for 100K invocations").
const Invocations100K = 100_000
