package powertune

import (
	"strings"
	"testing"

	"repro/internal/appcorpus"
	"repro/internal/appspec"
	"repro/internal/faas"
	"repro/internal/vfs"
)

// cpuHeavyApp has a big CPU-bound exec relative to its footprint, so the
// cost curve has an interior optimum above the 128 MB floor.
func cpuHeavyApp() *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    lib.crunch()
    return "ok"
`)
	fs.Write("site-packages/lib/__init__.py", `
load_native(150, 120)

def crunch():
    compute(2500)
`)
	return &appspec.App{
		Name: "cpu-heavy", Image: fs, Entry: "handler", Handler: "handler",
		Oracle:       []appspec.TestCase{{Name: "t", Event: map[string]any{}}},
		SetupDelayMS: 200,
	}
}

func TestSweepShape(t *testing.T) {
	res, err := Sweep(cpuHeavyApp(), faas.DefaultConfig(), DefaultLadder(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DefaultLadder()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Below the ~155 MB peak: infeasible.
	if res.Rows[0].MemoryMB != 128 || res.Rows[0].Feasible {
		t.Errorf("128 MB should be infeasible for a 155 MB footprint: %+v", res.Rows[0])
	}
	// Durations shrink monotonically with memory (more vCPU share).
	var lastExec float64 = -1
	for _, row := range res.Rows {
		if !row.Feasible {
			continue
		}
		if lastExec >= 0 && row.ExecS > lastExec+1e-9 {
			t.Errorf("exec time rose with memory at %d MB", row.MemoryMB)
		}
		lastExec = row.ExecS
	}
	// With linear CPU scaling, the CPU share of the bill is constant while
	// the fixed share grows, so the cheapest configuration is the smallest
	// feasible one — and the speed/balanced strategies justify paying more.
	feasible := feasibleRows(res)
	if res.OptimalMB != feasible[0].MemoryMB {
		t.Errorf("cheapest = %d MB, want smallest feasible %d", res.OptimalMB, feasible[0].MemoryMB)
	}
	if res.FastestMB <= res.OptimalMB {
		t.Errorf("fastest %d MB should exceed cheapest %d MB for a CPU-bound app",
			res.FastestMB, res.OptimalMB)
	}
	if res.BalancedMB < res.OptimalMB || res.BalancedMB > res.FastestMB {
		t.Errorf("balanced %d MB should sit between cheapest %d and fastest %d",
			res.BalancedMB, res.OptimalMB, res.FastestMB)
	}
	// The reported cheapest really is the cost minimum.
	for _, row := range feasible {
		opt := rowFor(res, res.OptimalMB)
		if row.CostUSD < opt.CostUSD-1e-15 {
			t.Errorf("config %d MB cheaper than reported optimum", row.MemoryMB)
		}
	}
}

func TestSweepDoublingMemoryHalvesCPUTime(t *testing.T) {
	// With cpuBoundFrac=1, durations scale exactly inversely with memory
	// below the vCPU cap.
	res, err := Sweep(cpuHeavyApp(), faas.DefaultConfig(), []int{256, 512}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowFor(res, 256), rowFor(res, 512)
	if !a.Feasible || !b.Feasible {
		t.Fatal("expected both feasible")
	}
	ratio := a.ExecS / b.ExecS
	if ratio < 1.95 || ratio > 2.05 {
		t.Errorf("512MB should halve 256MB exec: ratio %.3f", ratio)
	}
}

func TestSweepIOOnlyAppPrefersSmallest(t *testing.T) {
	// cpuBoundFrac=0: duration never improves, so the smallest feasible
	// configuration wins on cost.
	res, err := Sweep(cpuHeavyApp(), faas.DefaultConfig(), DefaultLadder(), 0.0)
	if err != nil {
		t.Fatal(err)
	}
	feasible := feasibleRows(res)
	if res.OptimalMB != feasible[0].MemoryMB {
		t.Errorf("I/O-bound app optimal %d, want smallest feasible %d",
			res.OptimalMB, feasible[0].MemoryMB)
	}
}

func TestSweepOnCorpusApp(t *testing.T) {
	app := appcorpus.MustBuild("resnet")
	res, err := Sweep(app, faas.DefaultConfig(), DefaultLadder(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalMB < 343 {
		t.Errorf("optimal %d MB below resnet's footprint", res.OptimalMB)
	}
	out := res.Render()
	if !strings.Contains(out, "optimal") || !strings.Contains(out, "OOM") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(cpuHeavyApp(), faas.DefaultConfig(), DefaultLadder(), 1.5); err == nil {
		t.Error("bad cpuBoundFrac should fail")
	}
	if _, err := Sweep(cpuHeavyApp(), faas.DefaultConfig(), []int{128}, 0.7); err == nil {
		t.Error("no feasible configuration should fail")
	}
}

func feasibleRows(res *Result) []Row {
	var out []Row
	for _, r := range res.Rows {
		if r.Feasible {
			out = append(out, r)
		}
	}
	return out
}

func rowFor(res *Result, mem int) Row {
	for _, r := range res.Rows {
		if r.MemoryMB == mem {
			return r
		}
	}
	return Row{}
}
