// Package powertune finds cost-optimal memory configurations, modeling the
// tradeoff the paper lays out in §2.1: "Configuring the memory too large is
// a waste of resources and money. Configuring it too small would result in
// memory swapping... the optimal configuration should be above the
// application's peak memory footprint."
//
// Like AWS Lambda Power Tuning (which the paper cites for its memory-
// setting methodology), the sweep exploits the platform's CPU allocation
// rule: AWS grants vCPU proportionally to configured memory, one full vCPU
// at 1769 MB. More memory therefore makes CPU-bound phases faster — up to
// the point where the larger memory price outweighs the shorter duration.
package powertune

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/appspec"
	"repro/internal/faas"
)

// FullVCPUAtMB is the configured memory granting one full vCPU on AWS.
const FullVCPUAtMB = 1769.0

// MaxVCPUs caps the CPU scaling (AWS tops out at 6 vCPUs at 10240 MB).
const MaxVCPUs = 6.0

// Row is one memory configuration's outcome.
type Row struct {
	MemoryMB int
	// Feasible is false below the app's peak footprint (the function
	// would be OOM-killed or swap-degraded; the paper treats this as
	// unusable).
	Feasible bool
	InitS    float64
	ExecS    float64
	E2ES     float64
	// CostUSD is the per-cold-invocation bill at this configuration.
	CostUSD float64
}

// Result is a full sweep. Because AWS scales vCPU linearly with memory,
// the CPU-bound part of the bill (duration × memory) is roughly constant
// across configurations while the fixed part grows — so the *cheapest*
// feasible configuration is usually the smallest one, and the real
// decision is the cost/latency tradeoff. The three summary picks mirror
// AWS Lambda Power Tuning's strategies.
type Result struct {
	App  string
	Rows []Row
	// PeakMB is the measured footprint that feasibility is judged against.
	PeakMB float64
	// OptimalMB is the cost-minimizing feasible configuration ("cost"
	// strategy).
	OptimalMB int
	// FastestMB is the E2E-minimizing configuration ("speed" strategy).
	FastestMB int
	// BalancedMB minimizes cost × E2E ("balanced" strategy).
	BalancedMB int
}

// Sweep measures the app once at its natural configuration, then projects
// init/exec time and cost across the candidate memory settings.
// cpuBoundFrac is the fraction of the measured durations that scales with
// CPU allocation (imports and handlers are a mix of CPU work and I/O;
// 0.6-0.8 matches AWS power-tuning experience).
func Sweep(app *appspec.App, cfg faas.Config, memories []int, cpuBoundFrac float64) (*Result, error) {
	if cpuBoundFrac < 0 || cpuBoundFrac > 1 {
		return nil, fmt.Errorf("powertune: cpuBoundFrac %f out of [0,1]", cpuBoundFrac)
	}
	base, err := faas.MeasureColdStart(app, cfg)
	if err != nil {
		return nil, err
	}
	refMB := float64(base.MemoryMB)
	refFactor := cpuFactor(refMB)

	res := &Result{App: app.Name, PeakMB: base.PeakMB}
	sorted := append([]int(nil), memories...)
	sort.Ints(sorted)

	bestCost, bestE2E, bestBal := -1.0, -1.0, -1.0
	for _, mem := range sorted {
		row := Row{MemoryMB: mem}
		if float64(mem) < base.PeakMB {
			res.Rows = append(res.Rows, row) // infeasible: OOM
			continue
		}
		row.Feasible = true
		scale := cpuBoundFrac*(refFactor/cpuFactor(float64(mem))) + (1 - cpuBoundFrac)
		init := base.Init.Seconds() * scale
		exec := base.Exec.Seconds() * scale
		row.InitS = init
		row.ExecS = exec
		row.E2ES = base.E2E.Seconds() - base.Init.Seconds() - base.Exec.Seconds() + init + exec
		billed := cfg.Pricing.BillDuration(time.Duration((init + exec) * float64(time.Second)))
		row.CostUSD = cfg.Pricing.Cost(billed, mem)
		res.Rows = append(res.Rows, row)
		if bestCost < 0 || row.CostUSD < bestCost {
			bestCost = row.CostUSD
			res.OptimalMB = mem
		}
		if bestE2E < 0 || row.E2ES < bestE2E {
			bestE2E = row.E2ES
			res.FastestMB = mem
		}
		if bal := row.CostUSD * row.E2ES; bestBal < 0 || bal < bestBal {
			bestBal = bal
			res.BalancedMB = mem
		}
	}
	if res.OptimalMB == 0 {
		return nil, fmt.Errorf("powertune: no feasible configuration (peak %.0f MB)", res.PeakMB)
	}
	return res, nil
}

// cpuFactor returns the vCPU share at a configuration.
func cpuFactor(memMB float64) float64 {
	f := memMB / FullVCPUAtMB
	if f > MaxVCPUs {
		return MaxVCPUs
	}
	if f < 0.05 {
		return 0.05
	}
	return f
}

// DefaultLadder is the common power-tuning candidate set.
func DefaultLadder() []int {
	return []int{128, 256, 512, 768, 1024, 1536, 2048, 3008, 4096, 6144, 8192, 10240}
}

// Render prints a sweep as text.
func (r *Result) Render() string {
	out := fmt.Sprintf("power tuning %s (peak %.0f MB; cheapest %d MB, balanced %d MB, fastest %d MB)\n",
		r.App, r.PeakMB, r.OptimalMB, r.BalancedMB, r.FastestMB)
	out += fmt.Sprintf("%8s %9s %8s %8s %12s\n", "Mem(MB)", "Feasible", "Init(s)", "Exec(s)", "Cost($/inv)")
	for _, row := range r.Rows {
		if !row.Feasible {
			out += fmt.Sprintf("%8d %9s %8s %8s %12s\n", row.MemoryMB, "OOM", "-", "-", "-")
			continue
		}
		marker := ""
		if row.MemoryMB == r.OptimalMB {
			marker = "  <- optimal"
		}
		out += fmt.Sprintf("%8d %9s %8.3f %8.3f %12.3g%s\n",
			row.MemoryMB, "yes", row.InitS, row.ExecS, row.CostUSD, marker)
	}
	return out
}
