// Package rollout is a closed-loop deployment controller for debloated
// functions, layered on the faas simulator. It drives the full lifecycle
// the paper leaves to operators: deploy a debloated artifact as a new
// version, canary it behind a weighted alias, gate each stage on SLO burn
// rates over the canary's own traffic, trip a circuit breaker when the
// §5.4 fallback wrapper turns into a storm, and — when the storm is caused
// by over-trimming — collect the failing inputs as new oracle cases,
// re-debloat (§9), and canary the repaired artifact through the same
// pipeline. Everything runs on virtual time and seeded draws, so a replay
// is byte-identical across runs and worker counts.
package rollout

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Stage is one canary step: route Weight of the traffic to the candidate
// and hold for Bake of quiet gate time before advancing.
type Stage struct {
	// Weight is the candidate's traffic fraction in (0, 1].
	Weight float64
	// Bake is how long the health gate must stay quiet at this weight.
	Bake time.Duration
}

// DefaultStages is the classic 1% → 10% → 50% → 100% ramp.
func DefaultStages() []Stage {
	return []Stage{
		{Weight: 0.01, Bake: 2 * time.Minute},
		{Weight: 0.10, Bake: 2 * time.Minute},
		{Weight: 0.50, Bake: 5 * time.Minute},
		{Weight: 1.00, Bake: 5 * time.Minute},
	}
}

// ParseStages parses a canary ramp spec of the form
// "1%:2m,10%:2m,50%:5m,100%:5m" — comma-separated percent:bake pairs.
// Weights must be strictly ascending, in (0, 100], and end at 100%.
func ParseStages(spec string) ([]Stage, error) {
	var out []Stage
	prev := 0.0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pctStr, bakeStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("rollout: bad stage %q (want percent:bake)", part)
		}
		pctStr = strings.TrimSpace(pctStr)
		if !strings.HasSuffix(pctStr, "%") {
			return nil, fmt.Errorf("rollout: bad weight %q (want e.g. 10%%)", pctStr)
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(pctStr, "%"), 64)
		if err != nil {
			return nil, fmt.Errorf("rollout: bad weight %q: %v", pctStr, err)
		}
		if pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("rollout: weight %v%% outside (0, 100]", pct)
		}
		if pct <= prev {
			return nil, fmt.Errorf("rollout: weights must ascend, %v%% after %v%%", pct, prev)
		}
		prev = pct
		bake, err := time.ParseDuration(strings.TrimSpace(bakeStr))
		if err != nil {
			return nil, fmt.Errorf("rollout: bad bake %q: %v", bakeStr, err)
		}
		if bake <= 0 {
			return nil, fmt.Errorf("rollout: bake %v must be positive", bake)
		}
		out = append(out, Stage{Weight: pct / 100, Bake: bake})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rollout: empty stage spec")
	}
	if out[len(out)-1].Weight != 1 {
		return nil, fmt.Errorf("rollout: final stage must be 100%%, got %v%%", out[len(out)-1].Weight*100)
	}
	return out, nil
}

// FormatStages renders stages back into the ParseStages spec form.
func FormatStages(stages []Stage) string {
	parts := make([]string, len(stages))
	for i, s := range stages {
		parts[i] = fmt.Sprintf("%g%%:%s", s.Weight*100, s.Bake)
	}
	return strings.Join(parts, ",")
}
