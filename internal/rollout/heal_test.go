package rollout

import (
	"strings"
	"testing"
	"time"

	"repro/internal/appcorpus"
	"repro/internal/debloat"
	"repro/internal/faas"
)

// TestSelfHealLoop drives the whole closed loop on a real corpus app:
// λ-trim over-trims the dynamically-accessed attribute, the advanced-mode
// storm trips the breaker, the controller reruns debloating with the
// failing input as a new oracle case, and the repaired artifact canaries
// back to 100% — after which advanced traffic is served natively by the
// healed version, no fallback, no double bill.
func TestSelfHealLoop(t *testing.T) {
	app := appcorpus.MustBuild("dna-visualization")
	res, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	name := app.Name
	basic := res.Original.Oracle[0].Event
	adv := map[string]any{"mode": "advanced"}

	cfg := DefaultConfig()
	cfg.Stages = []Stage{{Weight: 1, Bake: 30 * time.Second}}
	cfg.Breaker = BreakerConfig{Window: time.Minute, MinRequests: 100,
		FallbackRate: 1, Consecutive: 3, Cooldown: time.Hour, Probes: 2}
	p := faas.New(faas.DefaultConfig())
	c := New(p, cfg)
	if err := c.Manage(res); err != nil {
		t.Fatal(err)
	}

	// Quiet basic traffic bakes v1 through its single stage.
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(name, basic); err != nil {
			t.Fatal(err)
		}
		p.Advance(10 * time.Second)
	}
	s, _ := c.Status(name)
	if s.Active != name+"@v1" {
		t.Fatalf("v1 not promoted: %+v", s)
	}

	// Advanced-mode storm: v1 lost the dynamically-accessed attribute, so
	// every request falls back — until the breaker opens and the rerun
	// starts.
	for i := 0; i < 3; i++ {
		inv, err := c.Invoke(name, adv)
		if err != nil {
			t.Fatal(err)
		}
		if !inv.FallbackUsed {
			t.Fatalf("storm request %d did not fall back (served %s)", i, inv.Function)
		}
		p.Advance(time.Second)
	}
	s, _ = c.Status(name)
	if s.Opens != 1 {
		t.Fatalf("breaker opens = %d, want 1", s.Opens)
	}

	// While the repair bakes, the breaker serves the original — advanced
	// mode works, nothing double-bills.
	inv, err := c.Invoke(name, adv)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != name+"@orig" || inv.FallbackUsed {
		t.Fatalf("open-breaker request: served %s fallback=%v", inv.Function, inv.FallbackUsed)
	}

	// Give the (simulated) rerun time to finish, then bake the healed
	// canary through with mixed traffic.
	p.Advance(time.Hour)
	for i := 0; i < 8; i++ {
		ev := basic
		if i%2 == 1 {
			ev = adv
		}
		if _, err := c.Invoke(name, ev); err != nil {
			t.Fatal(err)
		}
		p.Advance(10 * time.Second)
	}

	s, _ = c.Status(name)
	if s.Heals != 1 || s.Version != 2 || s.Active != name+"@v2" {
		t.Fatalf("heal did not promote v2: %+v", s)
	}
	inv, err = c.Invoke(name, adv)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != name+"@v2" || inv.FallbackUsed {
		t.Errorf("healed artifact: served %s fallback=%v, want native v2", inv.Function, inv.FallbackUsed)
	}

	log := c.EventLog()
	for _, want := range []string{"breaker OPEN", "heal rerun cases=1", "heal deploy", "canary PROMOTE " + name + "@v2"} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}
