package rollout

import (
	"testing"
)

// FuzzParseStages: the stage-spec parser must never panic, and any spec it
// accepts must satisfy the ramp invariants (ascending weights in (0,1],
// positive bakes, final stage 100%) and round-trip through FormatStages.
func FuzzParseStages(f *testing.F) {
	f.Add("1%:2m,10%:2m,50%:5m,100%:5m")
	f.Add("100%:1s")
	f.Add("0.5%:90s,100%:1h")
	f.Add(" 25% : 3m ,100%:10m")
	f.Add("")
	f.Add("100%:")
	f.Add("%:1m")
	f.Add("1e2%:1m")
	f.Add("50%:2m,50%:2m,100%:1m")
	f.Add("∞%:1m,100%:1m")
	f.Fuzz(func(t *testing.T, spec string) {
		stages, err := ParseStages(spec)
		if err != nil {
			return
		}
		prev := 0.0
		for i, s := range stages {
			if s.Weight <= prev || s.Weight > 1 {
				t.Fatalf("%q: stage %d weight %v breaks ascent from %v", spec, i, s.Weight, prev)
			}
			if s.Bake <= 0 {
				t.Fatalf("%q: stage %d bake %v not positive", spec, i, s.Bake)
			}
			prev = s.Weight
		}
		if stages[len(stages)-1].Weight != 1 {
			t.Fatalf("%q: accepted without a 100%% final stage", spec)
		}
		again, err := ParseStages(FormatStages(stages))
		if err != nil {
			t.Fatalf("%q: formatted spec rejected: %v", spec, err)
		}
		if len(again) != len(stages) {
			t.Fatalf("%q: round trip changed stage count %d → %d", spec, len(stages), len(again))
		}
		for i := range again {
			if again[i] != stages[i] {
				t.Fatalf("%q: round trip changed stage %d: %+v → %+v", spec, i, stages[i], again[i])
			}
		}
	})
}
