package rollout

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
)

// Config tunes the controller. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Stages is the canary ramp (DefaultStages if empty).
	Stages []Stage
	// Gate is the per-stage health gate: SLOs evaluated over the
	// candidate's own samples. A FIRING gate rolls the canary back.
	Gate []monitor.SLO
	// GateResolution is the gate monitor's evaluation tick.
	GateResolution time.Duration
	// Breaker tunes the fallback-storm circuit breaker.
	Breaker BreakerConfig
	// SelfHeal re-debloats with the storm's failing inputs as new oracle
	// cases and canaries the repaired artifact.
	SelfHeal bool
	// Debloat configures the self-heal Rerun.
	Debloat debloat.Config
	// MaxHealCases caps collected failing inputs per heal round.
	MaxHealCases int
	// Retry is the client-side retry policy used for managed invokes.
	Retry faas.RetryPolicy
	// Tracer receives rollout.* events (nil disables).
	Tracer *obs.Tracer
}

// DefaultConfig returns a controller config sized for the experiment
// traces: second-scale gates, minute-scale bakes.
func DefaultConfig() Config {
	return Config{
		Stages:         DefaultStages(),
		Gate:           []monitor.SLO{{Name: "canary-err", Kind: monitor.KindErrorRate, Budget: 0.05}},
		GateResolution: 30 * time.Second,
		Breaker:        DefaultBreakerConfig(),
		SelfHeal:       true,
		Debloat:        debloat.DefaultConfig(),
		MaxHealCases:   8,
	}
}

// fnState is the controller's per-function record.
type fnState struct {
	name string
	orig string // name@orig deployment

	active    string          // promoted debloated deployment ("" if none)
	activeRes *debloat.Result // debloat result behind active

	candidate string          // canarying deployment ("" if none)
	candRes   *debloat.Result // debloat result behind candidate
	version   int             // last deployed debloated version number

	stage      int
	stageStart time.Duration
	gate       *monitor.Monitor
	gateSeen   int // alerts already consumed from the gate

	breaker *breaker
	opens   int // opens carried over from retired breakers

	healing     bool
	healedRes   *debloat.Result
	healReadyAt time.Duration
	healCases   []appspec.TestCase
	healSeen    map[string]bool
	heals       int

	routeSig string
}

// Controller is the closed-loop deployment controller. It is driven
// entirely by the invocations routed through it: state transitions happen
// on the platform's virtual clock, never on wall time, so replays are
// deterministic. Not safe for concurrent use (neither is the platform).
type Controller struct {
	p     *faas.Platform
	cfg   Config
	fns   map[string]*fnState
	order []string
	log   []string
	store *monitor.Store
}

// New wraps a platform with a rollout controller.
func New(p *faas.Platform, cfg Config) *Controller {
	if len(cfg.Stages) == 0 {
		cfg.Stages = DefaultStages()
	}
	if cfg.GateResolution <= 0 {
		cfg.GateResolution = 30 * time.Second
	}
	if cfg.Breaker == (BreakerConfig{}) {
		cfg.Breaker = DefaultBreakerConfig()
	}
	if cfg.MaxHealCases <= 0 {
		cfg.MaxHealCases = 8
	}
	return &Controller{
		p:     p,
		cfg:   cfg,
		fns:   make(map[string]*fnState),
		store: monitor.NewStore(cfg.GateResolution, 0),
	}
}

// Manage takes ownership of a debloat result: the original deploys as
// <name>@orig, the debloated artifact as <name>@v1 with its fallback wired
// to the original, and a canary starts at stage one. Invocations of <name>
// through the controller are routed by the rollout state from here on.
func (c *Controller) Manage(res *debloat.Result) error {
	name := res.Original.Name
	if _, dup := c.fns[name]; dup {
		return fmt.Errorf("rollout: %q already managed", name)
	}
	st := &fnState{
		name:     name,
		breaker:  newBreaker(c.cfg.Breaker),
		healSeen: make(map[string]bool),
	}
	st.orig = c.p.DeployVersion(name, "orig", res.Original)
	c.fns[name] = st
	c.order = append(c.order, name)
	c.startCanary(st, res)
	return c.route(st)
}

// startCanary deploys the next version of the artifact and begins the ramp.
func (c *Controller) startCanary(st *fnState, res *debloat.Result) {
	st.version++
	v := "v" + strconv.Itoa(st.version)
	st.candidate = c.p.DeployVersion(st.name, v, res.App)
	// The fallback must be wired before any traffic: the original IS the
	// safety net that makes canarying an over-trimmed artifact survivable.
	if err := c.p.SetFallback(st.candidate, st.orig); err != nil {
		panic("rollout: " + err.Error()) // both deployed above; unreachable
	}
	st.candRes = res
	st.stage = 0
	st.stageStart = c.p.Now()
	st.gate = monitor.New(monitor.Config{
		Resolution: c.cfg.GateResolution,
		SLOs:       append([]monitor.SLO(nil), c.cfg.Gate...),
	})
	st.gateSeen = 0
	stage := c.cfg.Stages[0]
	c.eventf(st, "canary %s stage 1/%d weight %s bake %s",
		st.candidate, len(c.cfg.Stages), pct(stage.Weight), stage.Bake)
	c.emit(st, "rollout.canary.start", obs.String("candidate", st.candidate))
	c.record(st, "canary_start")
}

// Invoke routes one request through the rollout state for name. Unmanaged
// names pass straight through to the platform.
func (c *Controller) Invoke(name string, event map[string]any) (*faas.Invocation, error) {
	st, ok := c.fns[name]
	if !ok {
		return c.p.InvokeWithRetry(name, event, c.cfg.Retry)
	}
	if err := c.stepAndRoute(st); err != nil {
		return nil, err
	}
	start := c.p.Now()
	inv, err := c.p.InvokeWithRetry(name, event, c.cfg.Retry)
	if err != nil {
		return nil, err
	}
	c.observe(st, event, inv, start+inv.E2E)
	return inv, nil
}

// InvokeGroup delivers a burst concurrently (routing fixed at the burst's
// start), then observes each outcome.
func (c *Controller) InvokeGroup(name string, events []map[string]any) ([]*faas.Invocation, error) {
	st, ok := c.fns[name]
	if !ok {
		return c.p.InvokeGroupWithRetry(name, events, c.cfg.Retry)
	}
	if err := c.stepAndRoute(st); err != nil {
		return nil, err
	}
	start := c.p.Now()
	invs, err := c.p.InvokeGroupWithRetry(name, events, c.cfg.Retry)
	if err != nil {
		return nil, err
	}
	for i, inv := range invs {
		c.observe(st, events[i], inv, start+inv.E2E)
	}
	return invs, nil
}

func (c *Controller) stepAndRoute(st *fnState) error {
	c.step(st)
	return c.route(st)
}

// step applies every time-based transition due at the platform clock.
func (c *Controller) step(st *fnState) {
	now := c.p.Now()

	// A repaired artifact whose (simulated) re-debloat has finished gets
	// deployed and canaried like any other candidate. The broken artifact
	// is retired outright — the breaker guarding it resets with the ramp.
	if st.healing && st.healedRes != nil && now >= st.healReadyAt {
		res := st.healedRes
		st.healedRes = nil
		st.healing = false
		st.active = ""
		st.activeRes = nil
		st.opens += st.breaker.opens
		st.breaker = newBreaker(c.cfg.Breaker)
		st.heals++
		c.eventf(st, "heal deploy oracle=%d cases", len(res.Original.Oracle))
		c.emit(st, "rollout.heal.deploy")
		c.record(st, "heal")
		c.startCanary(st, res)
	}

	// Open breakers cool down into probing — unless a heal is in flight,
	// in which case the replacement artifact supersedes the probe.
	if !st.healing && st.breaker.tryHalfOpen(now) {
		c.eventf(st, "breaker HALF_OPEN probes=%d", c.cfg.Breaker.Probes)
		c.emit(st, "rollout.breaker.half_open")
	}

	// Canary gate: FIRING rolls back immediately; a full bake of quiet
	// gate time advances the ramp. Both are frozen while the breaker is
	// away from CLOSED — storm handling outranks the ramp.
	if st.candidate == "" || st.breaker.state != breakerClosed {
		return
	}
	alerts := st.gate.Alerts()
	fired := ""
	for _, a := range alerts[st.gateSeen:] {
		if a.Firing {
			fired = a.SLO
			break
		}
	}
	st.gateSeen = len(alerts)
	if fired != "" {
		c.eventf(st, "canary ROLLBACK %s gate %s firing", st.candidate, fired)
		c.emit(st, "rollout.canary.rollback", obs.String("gate", fired))
		c.record(st, "rollback")
		st.candidate = ""
		st.candRes = nil
		st.gate = nil
		return
	}
	if now-st.stageStart < c.cfg.Stages[st.stage].Bake {
		return
	}
	st.stage++
	st.stageStart = now
	if st.stage >= len(c.cfg.Stages) {
		st.active = st.candidate
		st.activeRes = st.candRes
		st.candidate = ""
		st.candRes = nil
		st.gate = nil
		c.eventf(st, "canary PROMOTE %s", st.active)
		c.emit(st, "rollout.canary.promote", obs.String("active", st.active))
		c.record(st, "promote")
		return
	}
	stage := c.cfg.Stages[st.stage]
	c.eventf(st, "canary stage %d/%d weight %s bake %s",
		st.stage+1, len(c.cfg.Stages), pct(stage.Weight), stage.Bake)
	c.emit(st, "rollout.canary.advance", obs.String("weight", pct(stage.Weight)))
}

// route reprograms the alias whenever the desired split changed.
func (c *Controller) route(st *fnState) error {
	baseline := st.orig
	if st.active != "" {
		baseline = st.active
	}
	var routes []faas.AliasRoute
	switch {
	case st.breaker.state == breakerOpen:
		// Storm: skip the doomed debloated attempt (and its double bill)
		// entirely and serve the original.
		routes = []faas.AliasRoute{{Target: st.orig, Weight: 1}}
	case st.breaker.state == breakerHalfOpen:
		probe := st.candidate
		if probe == "" {
			probe = st.active
		}
		if probe == "" {
			probe = st.orig
		}
		routes = []faas.AliasRoute{{Target: probe, Weight: 1}}
	case st.candidate != "":
		w := c.cfg.Stages[st.stage].Weight
		if w >= 1 {
			routes = []faas.AliasRoute{{Target: st.candidate, Weight: 1}}
		} else {
			routes = []faas.AliasRoute{
				{Target: st.candidate, Weight: w},
				{Target: baseline, Weight: 1 - w},
			}
		}
	default:
		routes = []faas.AliasRoute{{Target: baseline, Weight: 1}}
	}
	sig := fmt.Sprint(routes)
	if sig == st.routeSig {
		return nil
	}
	st.routeSig = sig
	return c.p.SetAlias(st.name, routes...)
}

// observe feeds one completed request back into the loop.
func (c *Controller) observe(st *fnState, event map[string]any, inv *faas.Invocation, at time.Duration) {
	c.record(st, "req")
	served := inv.Function
	debloated := (st.candidate != "" && served == st.candidate) ||
		(st.active != "" && served == st.active) ||
		(st.breaker.state == breakerHalfOpen && served != st.orig)
	if !debloated {
		return
	}
	c.record(st, "deb_req")
	if inv.FallbackUsed {
		c.record(st, "fallback")
		c.collectHealCase(st, event)
	}
	if st.candidate != "" && served == st.candidate {
		st.gate.Observe(at, faas.SampleOf(inv))
	}
	switch st.breaker.observe(at, inv.FallbackUsed) {
	case "open":
		c.eventf(st, "breaker OPEN %s fallback_rate=%.2f window_n=%d",
			served, st.breaker.rate, st.breaker.count)
		c.emit(st, "rollout.breaker.open", obs.String("target", served))
		c.record(st, "breaker_open")
		c.selfHeal(st, at)
	case "reopen":
		c.eventf(st, "breaker OPEN %s (probe failed)", served)
		c.emit(st, "rollout.breaker.open", obs.String("target", served), obs.String("cause", "probe"))
		c.record(st, "breaker_open")
		c.selfHeal(st, at)
	case "close":
		st.stageStart = at // a fresh quiet period starts the bake over
		c.eventf(st, "breaker CLOSED after %d clean probes", c.cfg.Breaker.Probes)
		c.emit(st, "rollout.breaker.close")
		c.record(st, "breaker_close")
	}
}

// collectHealCase keeps the failing input as a future oracle case.
func (c *Controller) collectHealCase(st *fnState, event map[string]any) {
	if !c.cfg.SelfHeal || len(st.healCases) >= c.cfg.MaxHealCases {
		return
	}
	// fmt formats maps with sorted keys, so this key is deterministic.
	key := fmt.Sprintf("%v", event)
	if st.healSeen[key] {
		return
	}
	st.healSeen[key] = true
	st.healCases = append(st.healCases, appspec.TestCase{
		Name:  fmt.Sprintf("heal-%d", len(st.healSeen)),
		Event: event,
	})
}

// selfHeal launches a re-debloat from the storm's collected inputs. The
// Rerun models its own simulated duration; the repaired artifact deploys
// once that much virtual time has passed.
func (c *Controller) selfHeal(st *fnState, at time.Duration) {
	if !c.cfg.SelfHeal || st.healing || len(st.healCases) == 0 {
		return
	}
	base := st.activeRes
	if st.candidate != "" {
		base = st.candRes
	}
	if base == nil {
		return
	}
	cases := st.healCases
	st.healCases = nil
	res, err := debloat.Rerun(base, cases, c.cfg.Debloat)
	if err != nil {
		c.eventf(st, "heal FAILED: %v", err)
		c.emit(st, "rollout.heal.failed", obs.String("err", err.Error()))
		return
	}
	st.healing = true
	st.healedRes = res
	st.healReadyAt = at + res.DebloatTime
	// The storming candidate is retired immediately; the breaker keeps
	// traffic on the original until the repaired artifact is ready.
	if st.candidate != "" {
		st.candidate = ""
		st.candRes = nil
		st.gate = nil
	}
	c.eventf(st, "heal rerun cases=%d ready_in=%s", len(cases), res.DebloatTime.Round(time.Millisecond))
	c.emit(st, "rollout.heal.rerun", obs.Int("cases", int64(len(cases))))
}

// Status summarizes one managed function for tables and tests.
type Status struct {
	Function  string
	Orig      string
	Active    string
	Candidate string
	Stage     int // 1-based; 0 when no canary in flight
	Breaker   string
	Opens     int
	Heals     int
	Version   int
}

// Status reports the state of a managed function.
func (c *Controller) Status(name string) (Status, bool) {
	st, ok := c.fns[name]
	if !ok {
		return Status{}, false
	}
	stage := 0
	if st.candidate != "" {
		stage = st.stage + 1
	}
	return Status{
		Function:  st.name,
		Orig:      st.orig,
		Active:    st.active,
		Candidate: st.candidate,
		Stage:     stage,
		Breaker:   st.breaker.state.String(),
		Opens:     st.opens + st.breaker.opens,
		Heals:     st.heals,
		Version:   st.version,
	}, true
}

// EventLog renders the controller's transition log, one line per event.
func (c *Controller) EventLog() string {
	if len(c.log) == 0 {
		return ""
	}
	return strings.Join(c.log, "\n") + "\n"
}

// OpenMetrics renders the controller's counters as an OpenMetrics
// exposition, namespaced lambdatrim_rollout_*.
func (c *Controller) OpenMetrics() []byte {
	var b strings.Builder
	for _, series := range c.store.Names() {
		tot := c.store.Total(series)
		mn := monitor.MetricName("rollout_" + series)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", mn, mn, tot.Count)
	}
	names := append([]string(nil), c.order...)
	sort.Strings(names)
	var stage, breakerOpenG []string
	for _, name := range names {
		s, _ := c.Status(name)
		open := 0
		if s.Breaker == "OPEN" {
			open = 1
		}
		label := "{fn=\"" + name + "\"}"
		stage = append(stage, monitor.MetricName("rollout_canary_stage")+label+" "+strconv.Itoa(s.Stage))
		breakerOpenG = append(breakerOpenG, monitor.MetricName("rollout_breaker_open_state")+label+" "+strconv.Itoa(open))
	}
	writeGauge(&b, monitor.MetricName("rollout_canary_stage"), stage)
	writeGauge(&b, monitor.MetricName("rollout_breaker_open_state"), breakerOpenG)
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

func writeGauge(b *strings.Builder, name string, lines []string) {
	if len(lines) == 0 {
		return
	}
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}
}

// eventf appends one line to the transition log.
func (c *Controller) eventf(st *fnState, format string, args ...any) {
	line := monitor.FmtOffset(c.p.Now()) + " fn=" + st.name + " " + fmt.Sprintf(format, args...)
	c.log = append(c.log, line)
}

// emit forwards a transition to the tracer's event log (nil-safe).
func (c *Controller) emit(st *fnState, name string, attrs ...obs.Attr) {
	attrs = append([]obs.Attr{obs.String("fn", st.name)}, attrs...)
	c.cfg.Tracer.Emit(name, c.p.Now(), attrs...)
	c.cfg.Tracer.Metrics().Inc(name, 1)
}

// record bumps a per-function counter series in the rollout store.
func (c *Controller) record(st *fnState, series string) {
	c.store.Record(series+"."+st.name, c.p.Now(), 1)
}

func pct(w float64) string {
	return strconv.FormatFloat(w*100, 'g', -1, 64) + "%"
}
