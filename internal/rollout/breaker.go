package rollout

import (
	"time"
)

// The fallback-storm circuit breaker. The §5.4 wrapper makes over-trimmed
// functions fail soft: every storm request runs the debloated artifact to
// its AttributeError and then the original on top, billing both (Eq. 1
// twice). The breaker notices the storm — a sliding-window fallback rate
// or a run of consecutive fallbacks — and opens, routing traffic straight
// to the original so the doomed attempt (and its bill) is skipped. After a
// cooldown it half-opens and probes; enough clean probes close it again.

// BreakerConfig tunes the fallback-storm breaker.
type BreakerConfig struct {
	// Window is the sliding sim-time window for the fallback rate.
	Window time.Duration
	// MinRequests is the minimum samples in the window before the rate
	// can trip (avoids opening on one unlucky request).
	MinRequests int
	// FallbackRate opens the breaker when the windowed rate reaches it.
	FallbackRate float64
	// Consecutive opens the breaker on this many fallbacks in a row,
	// regardless of rate.
	Consecutive int
	// Cooldown is how long the breaker stays open before probing.
	Cooldown time.Duration
	// Probes is the number of consecutive clean half-open requests
	// needed to close.
	Probes int
}

// DefaultBreakerConfig matches the experiment's traffic scale: storms of a
// few requests per minute trip within a window or two.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:       2 * time.Minute,
		MinRequests:  8,
		FallbackRate: 0.5,
		Consecutive:  5,
		Cooldown:     5 * time.Minute,
		Probes:       3,
	}
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "OPEN"
	case breakerHalfOpen:
		return "HALF_OPEN"
	default:
		return "CLOSED"
	}
}

type breakerSample struct {
	at       time.Duration
	fallback bool
}

type breaker struct {
	cfg      BreakerConfig
	state    breakerState
	window   []breakerSample
	consec   int // consecutive fallbacks while closed
	probes   int // consecutive clean probes while half-open
	openedAt time.Duration
	opens    int
	// rate and count capture the window at the moment of the last trip,
	// for the event log.
	rate  float64
	count int
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg}
}

// prune drops window samples older than Window.
func (b *breaker) prune(now time.Duration) {
	cut := now - b.cfg.Window
	i := 0
	for i < len(b.window) && b.window[i].at <= cut {
		i++
	}
	b.window = b.window[i:]
}

// observe records one request served by the debloated artifact and returns
// the transition it caused: "open", "reopen", "close", or "".
func (b *breaker) observe(at time.Duration, fallback bool) string {
	switch b.state {
	case breakerOpen:
		// Shouldn't happen (open routes away from the artifact), but a
		// request already in flight when the breaker opened is harmless.
		return ""
	case breakerHalfOpen:
		if fallback {
			b.state = breakerOpen
			b.openedAt = at
			b.opens++
			b.probes = 0
			return "reopen"
		}
		b.probes++
		if b.probes >= b.cfg.Probes {
			b.state = breakerClosed
			b.window = nil
			b.consec = 0
			b.probes = 0
			return "close"
		}
		return ""
	}
	// Closed: maintain the window and the consecutive run.
	b.prune(at)
	b.window = append(b.window, breakerSample{at: at, fallback: fallback})
	if fallback {
		b.consec++
	} else {
		b.consec = 0
	}
	fallbacks := 0
	for _, s := range b.window {
		if s.fallback {
			fallbacks++
		}
	}
	rate := float64(fallbacks) / float64(len(b.window))
	trip := (b.cfg.Consecutive > 0 && b.consec >= b.cfg.Consecutive) ||
		(b.cfg.MinRequests > 0 && len(b.window) >= b.cfg.MinRequests && rate >= b.cfg.FallbackRate)
	if trip {
		b.state = breakerOpen
		b.openedAt = at
		b.opens++
		b.rate = rate
		b.count = len(b.window)
		b.window = nil
		b.consec = 0
		return "open"
	}
	return ""
}

// tryHalfOpen moves open → half-open once the cooldown has elapsed.
func (b *breaker) tryHalfOpen(now time.Duration) bool {
	if b.state != breakerOpen || now < b.openedAt+b.cfg.Cooldown {
		return false
	}
	b.state = breakerHalfOpen
	b.probes = 0
	return true
}
