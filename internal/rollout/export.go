package rollout

import "time"

// Breaker exports the fallback-storm circuit breaker for use outside the
// rollout controller (the chaos engine wires one per breaker-arm function
// as a storm dampener). It is the same state machine the canary
// controller drives; see breaker.go for the semantics.
type Breaker struct {
	b *breaker
}

// NewBreaker builds a breaker with the given config (zero fields are not
// defaulted; use DefaultBreakerConfig as the base).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{b: newBreaker(cfg)}
}

// Observe records one request served by the debloated artifact and
// returns the transition it caused: "open", "reopen", "close", or "".
func (br *Breaker) Observe(at time.Duration, fallback bool) string {
	return br.b.observe(at, fallback)
}

// TryHalfOpen moves open → half-open once the cooldown has elapsed,
// reporting whether it did.
func (br *Breaker) TryHalfOpen(now time.Duration) bool {
	return br.b.tryHalfOpen(now)
}

// State reports the current state: "CLOSED", "OPEN", or "HALF_OPEN".
func (br *Breaker) State() string { return br.b.state.String() }

// Opens counts trips (open + reopen) so far.
func (br *Breaker) Opens() int { return br.b.opens }
