package rollout

import (
	"strings"
	"testing"
	"time"

	"repro/internal/appspec"
	"repro/internal/debloat"
	"repro/internal/faas"
	"repro/internal/vfs"
)

// fullApp is an "original": it serves both basic and advanced events.
func fullApp(name string) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    if event.get("mode", "basic") == "advanced":
        return lib.advanced()
    return {"ok": True}
`)
	fs.Write("site-packages/lib/__init__.py", `
load_native(150, 40)

def advanced():
    return {"ok": True, "advanced": True}
`)
	return &appspec.App{
		Name: name, Image: fs, Entry: "handler", Handler: "handler",
		Oracle:       []appspec.TestCase{{Name: "basic", Event: map[string]any{"id": 1}}},
		SetupDelayMS: 200, ImageSizeMB: 100,
	}
}

// trimmedApp is an over-trimmed "debloated" artifact: lib.advanced was
// removed, so advanced-mode events raise AttributeError.
func trimmedApp(name string) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    if event.get("mode", "basic") == "advanced":
        return lib.advanced()
    return {"ok": True}
`)
	fs.Write("site-packages/lib/__init__.py", "load_native(40, 10)\n")
	return &appspec.App{
		Name: name, Image: fs, Entry: "handler", Handler: "handler",
		Oracle:       []appspec.TestCase{{Name: "basic", Event: map[string]any{"id": 1}}},
		SetupDelayMS: 80, ImageSizeMB: 30,
	}
}

// cleanApp is a well-trimmed artifact: smaller, still complete.
func cleanApp(name string) *appspec.App {
	a := fullApp(name)
	a.SetupDelayMS = 80
	a.ImageSizeMB = 30
	return a
}

func fakeResult(orig, deb *appspec.App) *debloat.Result {
	return &debloat.Result{App: deb, Original: orig, DebloatTime: 3 * time.Second}
}

var basicEvent = map[string]any{"id": 1}
var advEvent = map[string]any{"mode": "advanced"}

func TestParseStages(t *testing.T) {
	got, err := ParseStages("1%:2m, 10%:2m ,50%:5m,100%:5m")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultStages()
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("stage %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if spec := FormatStages(got); spec != "1%:2m0s,10%:2m0s,50%:5m0s,100%:5m0s" {
		t.Errorf("FormatStages = %q", spec)
	}
	if back, err := ParseStages(FormatStages(got)); err != nil || len(back) != len(got) {
		t.Errorf("round trip failed: %v %v", back, err)
	}

	for _, bad := range []string{
		"", "50%:2m", "10%:2m,5%:2m,100%:1m", "0%:1m,100%:1m", "101%:1m",
		"100%:-1m", "100%:0s", "100%", "abc%:1m,100%:1m", "100%:xyz", "100:1m",
	} {
		if _, err := ParseStages(bad); err == nil {
			t.Errorf("ParseStages(%q) accepted", bad)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Window: time.Minute, MinRequests: 4, FallbackRate: 0.5,
		Consecutive: 3, Cooldown: 2 * time.Minute, Probes: 2}
	b := newBreaker(cfg)

	// Consecutive trip.
	at := time.Second
	for i := 0; i < 2; i++ {
		if tr := b.observe(at, true); tr != "" {
			t.Fatalf("tripped early: %s", tr)
		}
		at += time.Second
	}
	if tr := b.observe(at, true); tr != "open" {
		t.Fatalf("3rd consecutive fallback: %s, state %s", tr, b.state)
	}
	// Cooldown must elapse before probing.
	if b.tryHalfOpen(at + time.Minute) {
		t.Error("half-open before cooldown")
	}
	if !b.tryHalfOpen(at + 3*time.Minute) {
		t.Error("half-open after cooldown refused")
	}
	// A failed probe re-opens.
	if tr := b.observe(at+3*time.Minute, true); tr != "reopen" {
		t.Errorf("failed probe: %s", tr)
	}
	if !b.tryHalfOpen(at + 6*time.Minute) {
		t.Error("second half-open refused")
	}
	// Clean probes close.
	if tr := b.observe(at+6*time.Minute, false); tr != "" {
		t.Errorf("1st probe: %s", tr)
	}
	if tr := b.observe(at+6*time.Minute+time.Second, false); tr != "close" {
		t.Errorf("2nd probe: %s", tr)
	}
	if b.opens != 2 {
		t.Errorf("opens = %d", b.opens)
	}

	// Rate trip: mixed traffic, over threshold within the window.
	b2 := newBreaker(cfg)
	at = time.Second
	seq := []bool{true, false, true, false} // 50% of 4 >= MinRequests
	tripped := ""
	for _, fb := range seq {
		tripped = b2.observe(at, fb)
		at += time.Second
	}
	if tripped != "open" {
		t.Errorf("rate trip = %q, state %s", tripped, b2.state)
	}

	// Samples outside the window roll off: old fallbacks can't feed the
	// rate rule once they age out (a clean request first breaks the
	// consecutive run, which deliberately ignores the window).
	b3 := newBreaker(cfg)
	b3.observe(0, true)
	b3.observe(1*time.Second, true)
	at = 2 * time.Minute // both samples aged out
	for i := 0; i < 6; i++ {
		if tr := b3.observe(at, i == 1); tr != "" {
			t.Errorf("stale samples tripped breaker: %s", tr)
		}
		at += time.Second
	}
}

func controllerFor(t *testing.T, cfg Config, orig, deb *appspec.App) (*faas.Platform, *Controller) {
	t.Helper()
	p := faas.New(faas.DefaultConfig())
	c := New(p, cfg)
	if err := c.Manage(fakeResult(orig, deb)); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestCanaryPromotesThroughQuietGates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = []Stage{{Weight: 0.1, Bake: time.Minute}, {Weight: 1, Bake: time.Minute}}
	cfg.SelfHeal = false
	p, c := controllerFor(t, cfg, fullApp("fn"), cleanApp("fn"))

	for i := 0; i < 30; i++ {
		if _, err := c.Invoke("fn", basicEvent); err != nil {
			t.Fatal(err)
		}
		p.Advance(10 * time.Second)
	}
	s, ok := c.Status("fn")
	if !ok {
		t.Fatal("fn not managed")
	}
	if s.Active != "fn@v1" || s.Candidate != "" {
		t.Fatalf("status = %+v, want promoted fn@v1", s)
	}
	if !strings.Contains(c.EventLog(), "canary PROMOTE fn@v1") {
		t.Errorf("log missing promote:\n%s", c.EventLog())
	}
	inv, err := c.Invoke("fn", basicEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != "fn@v1" {
		t.Errorf("steady state served by %s", inv.Function)
	}
}

func TestBreakerOpensOnStormAndRoutesToOriginal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = []Stage{{Weight: 1, Bake: time.Hour}} // hold at 100% canary
	cfg.SelfHeal = false
	cfg.Breaker = BreakerConfig{Window: time.Minute, MinRequests: 100,
		FallbackRate: 1, Consecutive: 3, Cooldown: 2 * time.Minute, Probes: 2}
	p, c := controllerFor(t, cfg, fullApp("fn"), trimmedApp("fn"))

	// Storm: every request needs the removed attribute.
	var fallbacks int
	for i := 0; i < 3; i++ {
		inv, err := c.Invoke("fn", advEvent)
		if err != nil {
			t.Fatal(err)
		}
		if inv.FallbackUsed {
			fallbacks++
		}
		p.Advance(time.Second)
	}
	if fallbacks != 3 {
		t.Fatalf("fallbacks = %d, want 3", fallbacks)
	}
	s, _ := c.Status("fn")
	if s.Breaker != "OPEN" || s.Opens != 1 {
		t.Fatalf("breaker = %s opens=%d, want OPEN/1", s.Breaker, s.Opens)
	}

	// While open, traffic goes straight to the original: no fallback, no
	// double bill, still serves the advanced mode.
	inv, err := c.Invoke("fn", advEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != "fn@orig" || inv.FallbackUsed {
		t.Fatalf("open-breaker request served by %s fallback=%v", inv.Function, inv.FallbackUsed)
	}

	// After the cooldown, probes with basic traffic close the breaker.
	p.Advance(3 * time.Minute)
	for i := 0; i < 2; i++ {
		inv, err := c.Invoke("fn", basicEvent)
		if err != nil {
			t.Fatal(err)
		}
		if inv.Function != "fn@v1" {
			t.Fatalf("probe served by %s", inv.Function)
		}
		p.Advance(time.Second)
	}
	s, _ = c.Status("fn")
	if s.Breaker != "CLOSED" {
		t.Fatalf("breaker = %s after clean probes", s.Breaker)
	}
	log := c.EventLog()
	for _, want := range []string{"breaker OPEN", "breaker HALF_OPEN", "breaker CLOSED"} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestControllerReplayIsDeterministic(t *testing.T) {
	run := func() (string, string) {
		cfg := DefaultConfig()
		cfg.Stages = []Stage{{Weight: 0.5, Bake: 30 * time.Second}, {Weight: 1, Bake: 30 * time.Second}}
		cfg.SelfHeal = false
		p, c := controllerFor(t, cfg, fullApp("fn"), trimmedApp("fn"))
		for i := 0; i < 40; i++ {
			ev := basicEvent
			if i%5 == 4 {
				ev = advEvent
			}
			if _, err := c.Invoke("fn", ev); err != nil {
				t.Fatal(err)
			}
			p.Advance(7 * time.Second)
		}
		return c.EventLog(), string(c.OpenMetrics())
	}
	log1, om1 := run()
	log2, om2 := run()
	if log1 != log2 {
		t.Errorf("event logs differ:\n%s\n---\n%s", log1, log2)
	}
	if om1 != om2 {
		t.Errorf("openmetrics differ:\n%s\n---\n%s", om1, om2)
	}
	if !strings.Contains(om1, "lambdatrim_rollout_") {
		t.Errorf("openmetrics missing namespace:\n%s", om1)
	}
}

func TestUnmanagedNamePassesThrough(t *testing.T) {
	p := faas.New(faas.DefaultConfig())
	c := New(p, DefaultConfig())
	p.Deploy(fullApp("plain"))
	inv, err := c.Invoke("plain", basicEvent)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Function != "plain" {
		t.Errorf("served by %s", inv.Function)
	}
	if c.EventLog() != "" {
		t.Errorf("unmanaged invoke logged: %q", c.EventLog())
	}
}

func TestManageRejectsDuplicates(t *testing.T) {
	p := faas.New(faas.DefaultConfig())
	c := New(p, DefaultConfig())
	if err := c.Manage(fakeResult(fullApp("fn"), cleanApp("fn"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Manage(fakeResult(fullApp("fn"), cleanApp("fn"))); err == nil {
		t.Error("duplicate Manage accepted")
	}
	_ = p
}
