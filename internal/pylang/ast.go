package pylang

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Module is the root of a parsed file.
type Module struct {
	Name string // dotted module name, informational
	Body []Stmt
}

func (m *Module) Position() Pos {
	if len(m.Body) > 0 {
		return m.Body[0].Position()
	}
	return Pos{1, 1}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Alias is one "name as asname" clause in an import.
type Alias struct {
	Name   string // dotted for plain imports
	AsName string // empty when no alias
}

// Bound returns the name the alias binds in the importing namespace.
func (a Alias) Bound() string {
	if a.AsName != "" {
		return a.AsName
	}
	// "import a.b.c" binds "a".
	for i := 0; i < len(a.Name); i++ {
		if a.Name[i] == '.' {
			return a.Name[:i]
		}
	}
	return a.Name
}

// ImportStmt is "import a.b as c, d".
type ImportStmt struct {
	Pos   Pos
	Names []Alias
}

// FromImportStmt is "from .mod import a as b, c" or "from mod import *".
type FromImportStmt struct {
	Pos    Pos
	Level  int    // number of leading dots (0 = absolute)
	Module string // may be empty for "from . import x"
	Names  []Alias
	Star   bool // "from mod import *"
}

// Param is one formal parameter with an optional default.
type Param struct {
	Name    string
	Default Expr // nil when required
}

// DefStmt is a function definition.
type DefStmt struct {
	Pos        Pos
	Name       string
	Params     []Param
	Body       []Stmt
	Decorators []Expr
}

// ClassStmt is a class definition with at most one base.
type ClassStmt struct {
	Pos        Pos
	Name       string
	Bases      []Expr
	Body       []Stmt
	Decorators []Expr
}

// ReturnStmt is "return [expr]".
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for bare return
}

// IfStmt is an if/elif/else chain; Elifs are flattened by the parser into
// nested IfStmts in Else, so this node carries a single condition.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is "while cond:".
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
	Else []Stmt
}

// ForStmt is "for target in iter:". Target is a name or tuple of names.
type ForStmt struct {
	Pos    Pos
	Target Expr
	Iter   Expr
	Body   []Stmt
	Else   []Stmt
}

// AssignStmt is "t1 = t2 = value". Targets may be names, attributes,
// subscripts, or tuples thereof.
type AssignStmt struct {
	Pos     Pos
	Targets []Expr
	Value   Expr
}

// AugAssignStmt is "target op= value".
type AugAssignStmt struct {
	Pos    Pos
	Target Expr
	Op     Kind // Plus, Minus, Star, Slash, Percent
	Value  Expr
}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	Pos   Pos
	Value Expr
}

// PassStmt is "pass".
type PassStmt struct{ Pos Pos }

// BreakStmt is "break".
type BreakStmt struct{ Pos Pos }

// ContinueStmt is "continue".
type ContinueStmt struct{ Pos Pos }

// RaiseStmt is "raise [expr]".
type RaiseStmt struct {
	Pos   Pos
	Value Expr // nil re-raises the active exception
}

// ExceptClause is one "except [Type [as name]]:" arm.
type ExceptClause struct {
	Pos  Pos
	Type Expr   // nil catches everything
	Name string // empty when unbound
	Body []Stmt
}

// TryStmt is try/except/else/finally.
type TryStmt struct {
	Pos     Pos
	Body    []Stmt
	Excepts []ExceptClause
	Else    []Stmt
	Finally []Stmt
}

// GlobalStmt is "global a, b".
type GlobalStmt struct {
	Pos   Pos
	Names []string
}

// DelStmt is "del target, ...".
type DelStmt struct {
	Pos     Pos
	Targets []Expr
}

// AssertStmt is "assert cond [, msg]".
type AssertStmt struct {
	Pos  Pos
	Cond Expr
	Msg  Expr // nil when absent
}

func (s *ImportStmt) Position() Pos     { return s.Pos }
func (s *FromImportStmt) Position() Pos { return s.Pos }
func (s *DefStmt) Position() Pos        { return s.Pos }
func (s *ClassStmt) Position() Pos      { return s.Pos }
func (s *ReturnStmt) Position() Pos     { return s.Pos }
func (s *IfStmt) Position() Pos         { return s.Pos }
func (s *WhileStmt) Position() Pos      { return s.Pos }
func (s *ForStmt) Position() Pos        { return s.Pos }
func (s *AssignStmt) Position() Pos     { return s.Pos }
func (s *AugAssignStmt) Position() Pos  { return s.Pos }
func (s *ExprStmt) Position() Pos       { return s.Pos }
func (s *PassStmt) Position() Pos       { return s.Pos }
func (s *BreakStmt) Position() Pos      { return s.Pos }
func (s *ContinueStmt) Position() Pos   { return s.Pos }
func (s *RaiseStmt) Position() Pos      { return s.Pos }
func (s *TryStmt) Position() Pos        { return s.Pos }
func (s *GlobalStmt) Position() Pos     { return s.Pos }
func (s *DelStmt) Position() Pos        { return s.Pos }
func (s *AssertStmt) Position() Pos     { return s.Pos }

func (*ImportStmt) stmtNode()     {}
func (*FromImportStmt) stmtNode() {}
func (*DefStmt) stmtNode()        {}
func (*ClassStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()     {}
func (*IfStmt) stmtNode()         {}
func (*WhileStmt) stmtNode()      {}
func (*ForStmt) stmtNode()        {}
func (*AssignStmt) stmtNode()     {}
func (*AugAssignStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()       {}
func (*PassStmt) stmtNode()       {}
func (*BreakStmt) stmtNode()      {}
func (*ContinueStmt) stmtNode()   {}
func (*RaiseStmt) stmtNode()      {}
func (*TryStmt) stmtNode()        {}
func (*GlobalStmt) stmtNode()     {}
func (*DelStmt) stmtNode()        {}
func (*AssertStmt) stmtNode()     {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// NameExpr is an identifier reference.
type NameExpr struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos   Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos   Pos
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	Pos   Pos
	Value string
}

// BoolLit is True or False.
type BoolLit struct {
	Pos   Pos
	Value bool
}

// NoneLit is None.
type NoneLit struct{ Pos Pos }

// AttrExpr is "value.attr".
type AttrExpr struct {
	Pos   Pos
	Value Expr
	Attr  string
}

// IndexExpr is "value[index]" or "value[low:high]" when Slice is set.
type IndexExpr struct {
	Pos   Pos
	Value Expr
	Index Expr // nil iff Slice
	Slice bool
	Low   Expr // may be nil
	High  Expr // may be nil
}

// KeywordArg is a "name=value" call argument.
type KeywordArg struct {
	Name  string
	Value Expr
}

// CallExpr is a function/method/class call.
type CallExpr struct {
	Pos      Pos
	Func     Expr
	Args     []Expr
	Keywords []KeywordArg
}

// BinOp is an arithmetic binary operation.
type BinOp struct {
	Pos   Pos
	Op    Kind // Plus Minus Star Slash DoubleSlash Percent DoubleStar
	Left  Expr
	Right Expr
}

// BoolOp is "and"/"or" over two or more operands, short-circuiting.
type BoolOp struct {
	Pos    Pos
	Op     Kind // KwAnd or KwOr
	Values []Expr
}

// UnaryOp is "-x", "+x" or "not x".
type UnaryOp struct {
	Pos     Pos
	Op      Kind // Minus, Plus, KwNot
	Operand Expr
}

// Compare is a (possibly chained) comparison: Left op0 C0 op1 C1 ...
type Compare struct {
	Pos         Pos
	Left        Expr
	Ops         []Kind // Lt Gt Le Ge Eq Ne KwIn KwNotIn KwIs KwIsNot
	Comparators []Expr
}

// ListExpr is a list display.
type ListExpr struct {
	Pos   Pos
	Elems []Expr
}

// TupleExpr is a tuple display.
type TupleExpr struct {
	Pos   Pos
	Elems []Expr
}

// DictItem is one key:value pair in a dict display.
type DictItem struct {
	Key   Expr
	Value Expr
}

// DictExpr is a dict display.
type DictExpr struct {
	Pos   Pos
	Items []DictItem
}

// CondExpr is "body if cond else orelse".
type CondExpr struct {
	Pos    Pos
	Cond   Expr
	Body   Expr
	OrElse Expr
}

// LambdaExpr is "lambda params: body".
type LambdaExpr struct {
	Pos    Pos
	Params []Param
	Body   Expr
}

func (e *NameExpr) Position() Pos   { return e.Pos }
func (e *IntLit) Position() Pos     { return e.Pos }
func (e *FloatLit) Position() Pos   { return e.Pos }
func (e *StringLit) Position() Pos  { return e.Pos }
func (e *BoolLit) Position() Pos    { return e.Pos }
func (e *NoneLit) Position() Pos    { return e.Pos }
func (e *AttrExpr) Position() Pos   { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *BinOp) Position() Pos      { return e.Pos }
func (e *BoolOp) Position() Pos     { return e.Pos }
func (e *UnaryOp) Position() Pos    { return e.Pos }
func (e *Compare) Position() Pos    { return e.Pos }
func (e *ListExpr) Position() Pos   { return e.Pos }
func (e *TupleExpr) Position() Pos  { return e.Pos }
func (e *DictExpr) Position() Pos   { return e.Pos }
func (e *CondExpr) Position() Pos   { return e.Pos }
func (e *LambdaExpr) Position() Pos { return e.Pos }

func (*NameExpr) exprNode()   {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NoneLit) exprNode()    {}
func (*AttrExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinOp) exprNode()      {}
func (*BoolOp) exprNode()     {}
func (*UnaryOp) exprNode()    {}
func (*Compare) exprNode()    {}
func (*ListExpr) exprNode()   {}
func (*TupleExpr) exprNode()  {}
func (*DictExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}
func (*LambdaExpr) exprNode() {}

// Walk calls fn for every node in the subtree rooted at n, parents before
// children. If fn returns false, the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	walkChildren(n, fn)
}

func walkStmts(body []Stmt, fn func(Node) bool) {
	for _, s := range body {
		Walk(s, fn)
	}
}

func walkExprs(exprs []Expr, fn func(Node) bool) {
	for _, e := range exprs {
		Walk(e, fn)
	}
}

func walkChildren(n Node, fn func(Node) bool) {
	switch v := n.(type) {
	case *Module:
		walkStmts(v.Body, fn)
	case *DefStmt:
		walkExprs(v.Decorators, fn)
		for _, p := range v.Params {
			if p.Default != nil {
				Walk(p.Default, fn)
			}
		}
		walkStmts(v.Body, fn)
	case *ClassStmt:
		walkExprs(v.Decorators, fn)
		walkExprs(v.Bases, fn)
		walkStmts(v.Body, fn)
	case *ReturnStmt:
		if v.Value != nil {
			Walk(v.Value, fn)
		}
	case *IfStmt:
		Walk(v.Cond, fn)
		walkStmts(v.Body, fn)
		walkStmts(v.Else, fn)
	case *WhileStmt:
		Walk(v.Cond, fn)
		walkStmts(v.Body, fn)
		walkStmts(v.Else, fn)
	case *ForStmt:
		Walk(v.Target, fn)
		Walk(v.Iter, fn)
		walkStmts(v.Body, fn)
		walkStmts(v.Else, fn)
	case *AssignStmt:
		walkExprs(v.Targets, fn)
		Walk(v.Value, fn)
	case *AugAssignStmt:
		Walk(v.Target, fn)
		Walk(v.Value, fn)
	case *ExprStmt:
		Walk(v.Value, fn)
	case *RaiseStmt:
		if v.Value != nil {
			Walk(v.Value, fn)
		}
	case *TryStmt:
		walkStmts(v.Body, fn)
		for _, ex := range v.Excepts {
			if ex.Type != nil {
				Walk(ex.Type, fn)
			}
			walkStmts(ex.Body, fn)
		}
		walkStmts(v.Else, fn)
		walkStmts(v.Finally, fn)
	case *DelStmt:
		walkExprs(v.Targets, fn)
	case *AssertStmt:
		Walk(v.Cond, fn)
		if v.Msg != nil {
			Walk(v.Msg, fn)
		}
	case *AttrExpr:
		Walk(v.Value, fn)
	case *IndexExpr:
		Walk(v.Value, fn)
		if v.Index != nil {
			Walk(v.Index, fn)
		}
		if v.Low != nil {
			Walk(v.Low, fn)
		}
		if v.High != nil {
			Walk(v.High, fn)
		}
	case *CallExpr:
		Walk(v.Func, fn)
		walkExprs(v.Args, fn)
		for _, kw := range v.Keywords {
			Walk(kw.Value, fn)
		}
	case *BinOp:
		Walk(v.Left, fn)
		Walk(v.Right, fn)
	case *BoolOp:
		walkExprs(v.Values, fn)
	case *UnaryOp:
		Walk(v.Operand, fn)
	case *Compare:
		Walk(v.Left, fn)
		walkExprs(v.Comparators, fn)
	case *ListExpr:
		walkExprs(v.Elems, fn)
	case *TupleExpr:
		walkExprs(v.Elems, fn)
	case *DictExpr:
		for _, it := range v.Items {
			Walk(it.Key, fn)
			Walk(it.Value, fn)
		}
	case *CondExpr:
		Walk(v.Cond, fn)
		Walk(v.Body, fn)
		Walk(v.OrElse, fn)
	case *LambdaExpr:
		for _, p := range v.Params {
			if p.Default != nil {
				Walk(p.Default, fn)
			}
		}
		Walk(v.Body, fn)
	}
}
