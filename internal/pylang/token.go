// Package pylang defines the lexical tokens, abstract syntax tree, and
// source printer for the Python subset interpreted by this repository.
//
// The subset covers the module-level constructs that λ-trim's pipeline
// manipulates — imports, from-imports, function and class definitions,
// assignments — plus enough statement and expression forms (control flow,
// exceptions, calls, attribute access, containers) to express realistic
// serverless handlers and synthetic third-party libraries.
package pylang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are kept distinct from NAME so that the parser
// never needs string comparisons on hot paths.
const (
	EOF Kind = iota
	NEWLINE
	INDENT
	DEDENT

	NAME
	NUMBER
	STRING

	// Keywords.
	KwImport
	KwFrom
	KwAs
	KwDef
	KwClass
	KwReturn
	KwIf
	KwElif
	KwElse
	KwWhile
	KwFor
	KwIn
	KwNotIn // synthesized by the lexer for "not in"
	KwBreak
	KwContinue
	KwPass
	KwRaise
	KwTry
	KwExcept
	KwFinally
	KwGlobal
	KwDel
	KwAssert
	KwAnd
	KwOr
	KwNot
	KwTrue
	KwFalse
	KwNone
	KwIs
	KwIsNot // synthesized by the lexer for "is not"
	KwLambda

	// Punctuation and operators.
	LParen
	RParen
	LBracket
	RBracket
	LBrace
	RBrace
	Comma
	Colon
	Semicolon
	Dot
	Arrow // ->

	Assign        // =
	PlusEq        // +=
	MinusEq       // -=
	StarEq        // *=
	SlashEq       // /=
	PercentEq     // %=
	DoubleSlashEq // //=
	DoubleStarEq  // **=
	DoubleStar    // **
	Plus
	Minus
	Star
	Slash
	DoubleSlash // //
	Percent
	Lt
	Gt
	Le
	Ge
	Eq // ==
	Ne // !=
	At // @ (decorator)
)

var kindNames = map[Kind]string{
	EOF:     "EOF",
	NEWLINE: "NEWLINE",
	INDENT:  "INDENT",
	DEDENT:  "DEDENT",
	NAME:    "NAME",
	NUMBER:  "NUMBER",
	STRING:  "STRING",

	KwImport: "import", KwFrom: "from", KwAs: "as", KwDef: "def",
	KwClass: "class", KwReturn: "return", KwIf: "if", KwElif: "elif",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwIn: "in",
	KwNotIn: "not in", KwBreak: "break", KwContinue: "continue",
	KwPass: "pass", KwRaise: "raise", KwTry: "try", KwExcept: "except",
	KwFinally: "finally", KwGlobal: "global", KwDel: "del",
	KwAssert: "assert", KwAnd: "and", KwOr: "or", KwNot: "not",
	KwTrue: "True", KwFalse: "False", KwNone: "None", KwIs: "is",
	KwIsNot: "is not", KwLambda: "lambda",

	LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	LBrace: "{", RBrace: "}", Comma: ",", Colon: ":", Semicolon: ";",
	Dot: ".", Arrow: "->",

	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	SlashEq: "/=", PercentEq: "%=", DoubleSlashEq: "//=",
	DoubleStarEq: "**=", DoubleStar: "**",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", DoubleSlash: "//",
	Percent: "%", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==",
	Ne: "!=", At: "@",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps source spellings to keyword kinds.
var keywords = map[string]Kind{
	"import": KwImport, "from": KwFrom, "as": KwAs, "def": KwDef,
	"class": KwClass, "return": KwReturn, "if": KwIf, "elif": KwElif,
	"else": KwElse, "while": KwWhile, "for": KwFor, "in": KwIn,
	"break": KwBreak, "continue": KwContinue, "pass": KwPass,
	"raise": KwRaise, "try": KwTry, "except": KwExcept,
	"finally": KwFinally, "global": KwGlobal, "del": KwDel,
	"assert": KwAssert, "and": KwAnd, "or": KwOr, "not": KwNot,
	"True": KwTrue, "False": KwFalse, "None": KwNone, "is": KwIs,
	"lambda": KwLambda,
}

// Pos is a line/column source position (both 1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case NAME, NUMBER, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
