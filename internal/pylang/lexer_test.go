package pylang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...Kind) {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokenize %q:\n got %v\nwant %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokenize %q:\n got %v\nwant %v", src, got, want)
		}
	}
}

func TestLexSimpleStatement(t *testing.T) {
	expectKinds(t, "x = 1\n", NAME, Assign, NUMBER, NEWLINE, EOF)
}

func TestLexIndentation(t *testing.T) {
	expectKinds(t, "if x:\n    y = 1\nz = 2\n",
		KwIf, NAME, Colon, NEWLINE,
		INDENT, NAME, Assign, NUMBER, NEWLINE, DEDENT,
		NAME, Assign, NUMBER, NEWLINE, EOF)
}

func TestLexNestedDedents(t *testing.T) {
	src := "if a:\n    if b:\n        x = 1\ny = 2\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	dedents := 0
	for _, tok := range toks {
		if tok.Kind == DEDENT {
			dedents++
		}
	}
	if dedents != 2 {
		t.Errorf("got %d DEDENTs, want 2", dedents)
	}
}

func TestLexBlankAndCommentLines(t *testing.T) {
	expectKinds(t, "x = 1\n\n# comment\n   \ny = 2\n",
		NAME, Assign, NUMBER, NEWLINE, NAME, Assign, NUMBER, NEWLINE, EOF)
}

func TestLexBracketsSuppressNewlines(t *testing.T) {
	expectKinds(t, "x = [1,\n     2]\n",
		NAME, Assign, LBracket, NUMBER, Comma, NUMBER, RBracket, NEWLINE, EOF)
}

func TestLexFusedOperators(t *testing.T) {
	expectKinds(t, "a is not b\n", NAME, KwIsNot, NAME, NEWLINE, EOF)
	expectKinds(t, "a not in b\n", NAME, KwNotIn, NAME, NEWLINE, EOF)
	expectKinds(t, "not a\n", KwNot, NAME, NEWLINE, EOF)
	// "in" as part of an identifier must not fuse.
	expectKinds(t, "a is nothing\n", NAME, KwIs, NAME, NEWLINE, EOF)
}

func TestLexTwoCharOperators(t *testing.T) {
	expectKinds(t, "a ** b // c <= d >= e == f != g\n",
		NAME, DoubleStar, NAME, DoubleSlash, NAME, Le, NAME, Ge,
		NAME, Eq, NAME, Ne, NAME, NEWLINE, EOF)
	expectKinds(t, "a += 1; b -= 2\n",
		NAME, PlusEq, NUMBER, Semicolon, NAME, MinusEq, NUMBER, NEWLINE, EOF)
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Tokenize(`s = "a\nb\tc\"d"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "a\nb\tc\"d" {
		t.Errorf("string = %q", toks[2].Text)
	}
}

func TestLexTripleQuotedString(t *testing.T) {
	toks, err := Tokenize("s = \"\"\"line1\nline2\"\"\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "line1\nline2" {
		t.Errorf("triple string = %q", toks[2].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Tokenize("a = 1_000 + 3.14 + 1e3 + 2.5e-2\n")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.Kind == NUMBER {
			nums = append(nums, tok.Text)
		}
	}
	want := []string{"1_000", "3.14", "1e3", "2.5e-2"}
	if strings.Join(nums, " ") != strings.Join(want, " ") {
		t.Errorf("numbers = %v, want %v", nums, want)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"x = \"unterminated\n",
		"x = $\n",
		"if a:\n      b = 1\n   c = 2\n", // inconsistent dedent
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokenize("x = 1\ny = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	// The "y" token starts line 2.
	var yTok *Token
	for i := range toks {
		if toks[i].Text == "y" {
			yTok = &toks[i]
		}
	}
	if yTok == nil || yTok.Pos.Line != 2 {
		t.Errorf("y token pos = %+v", yTok)
	}
}

func TestLexKeywordsRecognized(t *testing.T) {
	for word, kind := range keywords {
		toks, err := Tokenize(word + "\n")
		if err != nil {
			t.Fatalf("%s: %v", word, err)
		}
		if toks[0].Kind != kind {
			t.Errorf("%s lexed as %v, want %v", word, toks[0].Kind, kind)
		}
	}
}

func TestLexLineContinuation(t *testing.T) {
	expectKinds(t, "x = 1 + \\\n2\n",
		NAME, Assign, NUMBER, Plus, NUMBER, NEWLINE, EOF)
}

func TestWalkVisitsAllNodes(t *testing.T) {
	mod := &Module{Body: []Stmt{
		&IfStmt{
			Cond: &Compare{Left: &NameExpr{Name: "a"}, Ops: []Kind{Lt}, Comparators: []Expr{&IntLit{Value: 3}}},
			Body: []Stmt{&ExprStmt{Value: &CallExpr{Func: &NameExpr{Name: "f"}, Args: []Expr{&StringLit{Value: "x"}}}}},
			Else: []Stmt{&PassStmt{}},
		},
	}}
	var names []string
	Walk(mod, func(n Node) bool {
		if ne, ok := n.(*NameExpr); ok {
			names = append(names, ne.Name)
		}
		return true
	})
	if len(names) != 2 || names[0] != "a" || names[1] != "f" {
		t.Errorf("walk names = %v", names)
	}
}

func TestWalkPrune(t *testing.T) {
	mod := &Module{Body: []Stmt{
		&DefStmt{Name: "f", Body: []Stmt{&ExprStmt{Value: &NameExpr{Name: "inner"}}}},
	}}
	count := 0
	Walk(mod, func(n Node) bool {
		count++
		_, isDef := n.(*DefStmt)
		return !isDef // prune def bodies
	})
	if count != 2 { // module + def only
		t.Errorf("visited %d nodes, want 2", count)
	}
}

func TestAliasBound(t *testing.T) {
	cases := []struct {
		alias Alias
		want  string
	}{
		{Alias{Name: "numpy"}, "numpy"},
		{Alias{Name: "numpy", AsName: "np"}, "np"},
		{Alias{Name: "a.b.c"}, "a"},
		{Alias{Name: "a.b.c", AsName: "abc"}, "abc"},
	}
	for _, c := range cases {
		if got := c.alias.Bound(); got != c.want {
			t.Errorf("Bound(%+v) = %q, want %q", c.alias, got, c.want)
		}
	}
}
