package pylang

import (
	"fmt"
	"strings"
)

// LexError reports a tokenization failure with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer converts source text into tokens, synthesizing NEWLINE, INDENT and
// DEDENT tokens from significant whitespace in the usual Python manner.
// Logical-line continuation inside (), [] and {} is supported; explicit
// backslash continuation is not (the corpus generator never emits it).
type Lexer struct {
	src    string
	pos    int // byte offset into src
	line   int
	col    int
	indent []int // indentation stack, always starts with 0
	nest   int   // depth of open brackets; newlines inside are insignificant

	pending []Token // queued DEDENT tokens
	atStart bool    // true when positioned at the start of a logical line
	emitted bool    // whether any non-layout token was emitted on this line
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, indent: []int{0}, atStart: true}
}

// Tokenize runs the lexer to completion.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &LexError{Pos: Pos{lx.line, lx.col}, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t, nil
	}

	if lx.atStart && lx.nest == 0 {
		if t, ok, err := lx.handleLineStart(); err != nil {
			return Token{}, err
		} else if ok {
			return t, nil
		}
	}

	lx.skipSpacesAndComments()

	if lx.pos >= len(lx.src) {
		return lx.finish()
	}

	c := lx.peekByte()
	if c == '\n' {
		lx.advance()
		if lx.nest > 0 {
			return lx.Next() // insignificant newline inside brackets
		}
		lx.atStart = true
		if !lx.emitted {
			return lx.Next() // blank or comment-only line
		}
		lx.emitted = false
		return Token{Kind: NEWLINE, Pos: Pos{lx.line - 1, lx.col}}, nil
	}

	start := Pos{lx.line, lx.col}
	switch {
	case isNameStart(c):
		return lx.lexName(start)
	case c >= '0' && c <= '9':
		return lx.lexNumber(start)
	case c == '"' || c == '\'':
		return lx.lexString(start)
	case c == '.' && isDigit(lx.peekAt(1)):
		return lx.lexNumber(start)
	}
	return lx.lexOperator(start)
}

// handleLineStart measures indentation and emits INDENT/DEDENT as needed.
// Returns (token, true, nil) when a layout token must be produced.
func (lx *Lexer) handleLineStart() (Token, bool, error) {
	for {
		// Measure leading whitespace of the upcoming line.
		width := 0
		i := lx.pos
		for i < len(lx.src) {
			switch lx.src[i] {
			case ' ':
				width++
			case '\t':
				width += 8 - width%8
			default:
				goto measured
			}
			i++
		}
	measured:
		// Skip blank and comment-only lines entirely.
		if i >= len(lx.src) {
			lx.skipTo(i)
			return Token{}, false, nil // EOF handling picks it up
		}
		if lx.src[i] == '\n' {
			lx.skipTo(i + 1)
			continue
		}
		if lx.src[i] == '#' {
			for i < len(lx.src) && lx.src[i] != '\n' {
				i++
			}
			if i < len(lx.src) {
				i++
			}
			lx.skipTo(i)
			continue
		}

		lx.skipTo(i)
		lx.atStart = false
		cur := lx.indent[len(lx.indent)-1]
		switch {
		case width > cur:
			lx.indent = append(lx.indent, width)
			return Token{Kind: INDENT, Pos: Pos{lx.line, lx.col}}, true, nil
		case width < cur:
			for len(lx.indent) > 1 && lx.indent[len(lx.indent)-1] > width {
				lx.indent = lx.indent[:len(lx.indent)-1]
				lx.pending = append(lx.pending, Token{Kind: DEDENT, Pos: Pos{lx.line, lx.col}})
			}
			if lx.indent[len(lx.indent)-1] != width {
				return Token{}, false, lx.errf("inconsistent dedent to width %d", width)
			}
			t := lx.pending[0]
			lx.pending = lx.pending[1:]
			return t, true, nil
		default:
			return Token{}, false, nil
		}
	}
}

// skipTo advances the cursor to absolute offset target, maintaining line/col.
func (lx *Lexer) skipTo(target int) {
	for lx.pos < target {
		lx.advance()
	}
}

func (lx *Lexer) skipSpacesAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		if c == ' ' || c == '\t' || c == '\r' {
			lx.advance()
			continue
		}
		if c == '#' {
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			continue
		}
		if c == '\\' && lx.peekAt(1) == '\n' {
			lx.advance()
			lx.advance()
			continue
		}
		return
	}
}

// finish emits trailing NEWLINE/DEDENT/EOF tokens at end of input.
func (lx *Lexer) finish() (Token, error) {
	pos := Pos{lx.line, lx.col}
	if lx.emitted {
		lx.emitted = false
		return Token{Kind: NEWLINE, Pos: pos}, nil
	}
	if len(lx.indent) > 1 {
		lx.indent = lx.indent[:len(lx.indent)-1]
		return Token{Kind: DEDENT, Pos: pos}, nil
	}
	return Token{Kind: EOF, Pos: pos}, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) lexName(start Pos) (Token, error) {
	begin := lx.pos
	for lx.pos < len(lx.src) && isNameChar(lx.peekByte()) {
		lx.advance()
	}
	text := lx.src[begin:lx.pos]
	lx.emitted = true
	if kw, ok := keywords[text]; ok {
		// Fuse the two-word operators "not in" and "is not" so the parser
		// sees single tokens.
		if kw == KwNot && lx.followedByWord("in") {
			return Token{Kind: KwNotIn, Text: "not in", Pos: start}, nil
		}
		if kw == KwIs && lx.followedByWord("not") {
			return Token{Kind: KwIsNot, Text: "is not", Pos: start}, nil
		}
		return Token{Kind: kw, Text: text, Pos: start}, nil
	}
	return Token{Kind: NAME, Text: text, Pos: start}, nil
}

// followedByWord reports whether the next non-space run of name characters is
// exactly word; if so it consumes it (including the intervening spaces).
func (lx *Lexer) followedByWord(word string) bool {
	i := lx.pos
	for i < len(lx.src) && (lx.src[i] == ' ' || lx.src[i] == '\t') {
		i++
	}
	if !strings.HasPrefix(lx.src[i:], word) {
		return false
	}
	end := i + len(word)
	if end < len(lx.src) && isNameChar(lx.src[end]) {
		return false
	}
	lx.skipTo(end)
	return true
}

func (lx *Lexer) lexNumber(start Pos) (Token, error) {
	begin := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		if isDigit(c) || c == '_' {
			lx.advance()
			continue
		}
		if c == '.' && !seenDot && isDigit(lx.peekAt(1)) {
			seenDot = true
			lx.advance()
			continue
		}
		if c == '.' && !seenDot && !isNameStart(lx.peekAt(1)) && lx.peekAt(1) != '.' {
			seenDot = true
			lx.advance()
			continue
		}
		if (c == 'e' || c == 'E') && (isDigit(lx.peekAt(1)) || ((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && isDigit(lx.peekAt(2)))) {
			seenDot = true
			lx.advance() // e
			if lx.peekByte() == '+' || lx.peekByte() == '-' {
				lx.advance()
			}
			continue
		}
		break
	}
	lx.emitted = true
	return Token{Kind: NUMBER, Text: lx.src[begin:lx.pos], Pos: start}, nil
}

func (lx *Lexer) lexString(start Pos) (Token, error) {
	quote := lx.advance()
	// Triple-quoted strings.
	if lx.peekByte() == quote && lx.peekAt(1) == quote {
		lx.advance()
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated triple-quoted string")
			}
			if lx.peekByte() == quote && lx.peekAt(1) == quote && lx.peekAt(2) == quote {
				lx.advance()
				lx.advance()
				lx.advance()
				lx.emitted = true
				return Token{Kind: STRING, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(lx.advance())
		}
	}
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, lx.errf("unterminated string")
		}
		c := lx.advance()
		switch {
		case c == quote:
			lx.emitted = true
			return Token{Kind: STRING, Text: sb.String(), Pos: start}, nil
		case c == '\n':
			return Token{}, lx.errf("newline in string literal")
		case c == '\\':
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}

func (lx *Lexer) lexOperator(start Pos) (Token, error) {
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	emit := func(k Kind, n int) (Token, error) {
		text := lx.src[lx.pos : lx.pos+n]
		for i := 0; i < n; i++ {
			lx.advance()
		}
		lx.emitted = true
		switch k {
		case LParen, LBracket, LBrace:
			lx.nest++
		case RParen, RBracket, RBrace:
			if lx.nest > 0 {
				lx.nest--
			}
		}
		return Token{Kind: k, Text: text, Pos: start}, nil
	}

	three := ""
	if lx.pos+2 < len(lx.src) {
		three = lx.src[lx.pos : lx.pos+3]
	}
	switch three {
	case "//=":
		return emit(DoubleSlashEq, 3)
	case "**=":
		return emit(DoubleStarEq, 3)
	}

	switch two {
	case "**":
		return emit(DoubleStar, 2)
	case "//":
		return emit(DoubleSlash, 2)
	case "<=":
		return emit(Le, 2)
	case ">=":
		return emit(Ge, 2)
	case "==":
		return emit(Eq, 2)
	case "!=":
		return emit(Ne, 2)
	case "+=":
		return emit(PlusEq, 2)
	case "-=":
		return emit(MinusEq, 2)
	case "*=":
		return emit(StarEq, 2)
	case "/=":
		return emit(SlashEq, 2)
	case "%=":
		return emit(PercentEq, 2)
	case "->":
		return emit(Arrow, 2)
	}

	switch lx.peekByte() {
	case '(':
		return emit(LParen, 1)
	case ')':
		return emit(RParen, 1)
	case '[':
		return emit(LBracket, 1)
	case ']':
		return emit(RBracket, 1)
	case '{':
		return emit(LBrace, 1)
	case '}':
		return emit(RBrace, 1)
	case ',':
		return emit(Comma, 1)
	case ':':
		return emit(Colon, 1)
	case ';':
		return emit(Semicolon, 1)
	case '.':
		return emit(Dot, 1)
	case '=':
		return emit(Assign, 1)
	case '+':
		return emit(Plus, 1)
	case '-':
		return emit(Minus, 1)
	case '*':
		return emit(Star, 1)
	case '/':
		return emit(Slash, 1)
	case '%':
		return emit(Percent, 1)
	case '<':
		return emit(Lt, 1)
	case '>':
		return emit(Gt, 1)
	case '@':
		return emit(At, 1)
	}
	return Token{}, lx.errf("unexpected character %q", lx.peekByte())
}
