package pylang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a module back to source text. The output parses to an
// equivalent AST, which is what the debloater relies on when it rewrites a
// library's __init__ file and copies it back into site-packages.
func Print(m *Module) string {
	var p printer
	p.stmts(m.Body)
	return p.sb.String()
}

// PrintStmts renders a statement list at the top level.
func PrintStmts(body []Stmt) string {
	var p printer
	p.stmts(body)
	return p.sb.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) stmts(body []Stmt) {
	if len(body) == 0 {
		p.line("pass")
		return
	}
	for _, s := range body {
		p.stmt(s)
	}
}

func aliasText(a Alias) string {
	if a.AsName != "" {
		return a.Name + " as " + a.AsName
	}
	return a.Name
}

func (p *printer) stmt(s Stmt) {
	switch v := s.(type) {
	case *ImportStmt:
		parts := make([]string, len(v.Names))
		for i, a := range v.Names {
			parts[i] = aliasText(a)
		}
		p.line("import %s", strings.Join(parts, ", "))
	case *FromImportStmt:
		mod := strings.Repeat(".", v.Level) + v.Module
		if v.Star {
			p.line("from %s import *", mod)
			return
		}
		parts := make([]string, len(v.Names))
		for i, a := range v.Names {
			parts[i] = aliasText(a)
		}
		p.line("from %s import %s", mod, strings.Join(parts, ", "))
	case *DefStmt:
		for _, d := range v.Decorators {
			p.line("@%s", PrintExpr(d))
		}
		p.line("def %s(%s):", v.Name, p.params(v.Params))
		p.indent++
		p.stmts(v.Body)
		p.indent--
	case *ClassStmt:
		for _, d := range v.Decorators {
			p.line("@%s", PrintExpr(d))
		}
		if len(v.Bases) == 0 {
			p.line("class %s:", v.Name)
		} else {
			bases := make([]string, len(v.Bases))
			for i, b := range v.Bases {
				bases[i] = PrintExpr(b)
			}
			p.line("class %s(%s):", v.Name, strings.Join(bases, ", "))
		}
		p.indent++
		p.stmts(v.Body)
		p.indent--
	case *ReturnStmt:
		if v.Value == nil {
			p.line("return")
		} else {
			p.line("return %s", PrintExpr(v.Value))
		}
	case *IfStmt:
		p.ifChain(v, "if")
	case *WhileStmt:
		p.line("while %s:", PrintExpr(v.Cond))
		p.indent++
		p.stmts(v.Body)
		p.indent--
		if len(v.Else) > 0 {
			p.line("else:")
			p.indent++
			p.stmts(v.Else)
			p.indent--
		}
	case *ForStmt:
		p.line("for %s in %s:", PrintExpr(v.Target), PrintExpr(v.Iter))
		p.indent++
		p.stmts(v.Body)
		p.indent--
		if len(v.Else) > 0 {
			p.line("else:")
			p.indent++
			p.stmts(v.Else)
			p.indent--
		}
	case *AssignStmt:
		targets := make([]string, len(v.Targets))
		for i, t := range v.Targets {
			targets[i] = PrintExpr(t)
		}
		p.line("%s = %s", strings.Join(targets, " = "), PrintExpr(v.Value))
	case *AugAssignStmt:
		p.line("%s %s= %s", PrintExpr(v.Target), v.Op, PrintExpr(v.Value))
	case *ExprStmt:
		p.line("%s", PrintExpr(v.Value))
	case *PassStmt:
		p.line("pass")
	case *BreakStmt:
		p.line("break")
	case *ContinueStmt:
		p.line("continue")
	case *RaiseStmt:
		if v.Value == nil {
			p.line("raise")
		} else {
			p.line("raise %s", PrintExpr(v.Value))
		}
	case *TryStmt:
		p.line("try:")
		p.indent++
		p.stmts(v.Body)
		p.indent--
		for _, ex := range v.Excepts {
			switch {
			case ex.Type == nil:
				p.line("except:")
			case ex.Name != "":
				p.line("except %s as %s:", PrintExpr(ex.Type), ex.Name)
			default:
				p.line("except %s:", PrintExpr(ex.Type))
			}
			p.indent++
			p.stmts(ex.Body)
			p.indent--
		}
		if len(v.Else) > 0 {
			p.line("else:")
			p.indent++
			p.stmts(v.Else)
			p.indent--
		}
		if len(v.Finally) > 0 {
			p.line("finally:")
			p.indent++
			p.stmts(v.Finally)
			p.indent--
		}
	case *GlobalStmt:
		p.line("global %s", strings.Join(v.Names, ", "))
	case *DelStmt:
		targets := make([]string, len(v.Targets))
		for i, t := range v.Targets {
			targets[i] = PrintExpr(t)
		}
		p.line("del %s", strings.Join(targets, ", "))
	case *AssertStmt:
		if v.Msg != nil {
			p.line("assert %s, %s", PrintExpr(v.Cond), PrintExpr(v.Msg))
		} else {
			p.line("assert %s", PrintExpr(v.Cond))
		}
	default:
		panic(fmt.Sprintf("printer: unknown statement %T", s))
	}
}

func (p *printer) ifChain(v *IfStmt, kw string) {
	p.line("%s %s:", kw, PrintExpr(v.Cond))
	p.indent++
	p.stmts(v.Body)
	p.indent--
	if len(v.Else) == 0 {
		return
	}
	// Re-sugar a sole nested IfStmt as an elif chain.
	if len(v.Else) == 1 {
		if nested, ok := v.Else[0].(*IfStmt); ok {
			p.ifChain(nested, "elif")
			return
		}
	}
	p.line("else:")
	p.indent++
	p.stmts(v.Else)
	p.indent--
}

func (p *printer) params(params []Param) string {
	parts := make([]string, len(params))
	for i, pa := range params {
		if pa.Default != nil {
			parts[i] = pa.Name + "=" + PrintExpr(pa.Default)
		} else {
			parts[i] = pa.Name
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) expr(e Expr) {
	p.sb.WriteString(exprString(e, 0))
}

// Operator precedence levels used to decide parenthesization; larger binds
// tighter. Mirrors the parser's expression grammar.
const (
	precLambda = iota
	precCond
	precOr
	precAnd
	precNot
	precCompare
	precAdd
	precMul
	precUnary
	precPower
	precPostfix
	precAtom
)

func binPrec(op Kind) int {
	switch op {
	case Plus, Minus:
		return precAdd
	case Star, Slash, DoubleSlash, Percent:
		return precMul
	case DoubleStar:
		return precPower
	}
	return precAtom
}

func exprString(e Expr, parentPrec int) string {
	var s string
	var prec int
	switch v := e.(type) {
	case *NameExpr:
		s, prec = v.Name, precAtom
	case *IntLit:
		s, prec = strconv.FormatInt(v.Value, 10), precAtom
	case *FloatLit:
		s, prec = formatFloat(v.Value), precAtom
	case *StringLit:
		s, prec = quotePy(v.Value), precAtom
	case *BoolLit:
		if v.Value {
			s = "True"
		} else {
			s = "False"
		}
		prec = precAtom
	case *NoneLit:
		s, prec = "None", precAtom
	case *AttrExpr:
		s = exprString(v.Value, precPostfix) + "." + v.Attr
		prec = precPostfix
	case *IndexExpr:
		base := exprString(v.Value, precPostfix)
		if v.Slice {
			low, high := "", ""
			if v.Low != nil {
				low = exprString(v.Low, 0)
			}
			if v.High != nil {
				high = exprString(v.High, 0)
			}
			s = base + "[" + low + ":" + high + "]"
		} else {
			s = base + "[" + exprString(v.Index, 0) + "]"
		}
		prec = precPostfix
	case *CallExpr:
		var parts []string
		for _, a := range v.Args {
			parts = append(parts, exprString(a, 0))
		}
		for _, kw := range v.Keywords {
			parts = append(parts, kw.Name+"="+exprString(kw.Value, 0))
		}
		s = exprString(v.Func, precPostfix) + "(" + strings.Join(parts, ", ") + ")"
		prec = precPostfix
	case *BinOp:
		prec = binPrec(v.Op)
		if v.Op == DoubleStar {
			// ** is right-associative: parenthesize the left side instead.
			s = exprString(v.Left, prec+1) + " " + v.Op.String() + " " + exprString(v.Right, prec)
		} else {
			s = exprString(v.Left, prec) + " " + v.Op.String() + " " + exprString(v.Right, prec+1)
		}
	case *BoolOp:
		if v.Op == KwAnd {
			prec = precAnd
		} else {
			prec = precOr
		}
		parts := make([]string, len(v.Values))
		for i, val := range v.Values {
			parts[i] = exprString(val, prec+1)
		}
		s = strings.Join(parts, " "+v.Op.String()+" ")
	case *UnaryOp:
		if v.Op == KwNot {
			prec = precNot
			s = "not " + exprString(v.Operand, precNot)
		} else {
			prec = precUnary
			s = v.Op.String() + exprString(v.Operand, precUnary)
		}
	case *Compare:
		prec = precCompare
		var sb strings.Builder
		sb.WriteString(exprString(v.Left, precCompare+1))
		for i, op := range v.Ops {
			sb.WriteString(" " + op.String() + " ")
			sb.WriteString(exprString(v.Comparators[i], precCompare+1))
		}
		s = sb.String()
	case *ListExpr:
		parts := make([]string, len(v.Elems))
		for i, el := range v.Elems {
			parts[i] = exprString(el, 0)
		}
		s, prec = "["+strings.Join(parts, ", ")+"]", precAtom
	case *TupleExpr:
		parts := make([]string, len(v.Elems))
		for i, el := range v.Elems {
			parts[i] = exprString(el, 0)
		}
		if len(parts) == 1 {
			s = "(" + parts[0] + ",)"
		} else {
			s = "(" + strings.Join(parts, ", ") + ")"
		}
		prec = precAtom
	case *DictExpr:
		parts := make([]string, len(v.Items))
		for i, it := range v.Items {
			parts[i] = exprString(it.Key, 0) + ": " + exprString(it.Value, 0)
		}
		s, prec = "{"+strings.Join(parts, ", ")+"}", precAtom
	case *CondExpr:
		prec = precCond
		s = exprString(v.Body, precCond+1) + " if " + exprString(v.Cond, precCond+1) +
			" else " + exprString(v.OrElse, precCond)
	case *LambdaExpr:
		prec = precLambda
		var pp printer
		s = "lambda " + pp.params(v.Params) + ": " + exprString(v.Body, precLambda)
		if len(v.Params) == 0 {
			s = "lambda: " + exprString(v.Body, precLambda)
		}
	default:
		panic(fmt.Sprintf("printer: unknown expression %T", e))
	}
	if prec < parentPrec {
		return "(" + s + ")"
	}
	return s
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func quotePy(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString("\\\"")
		case '\\':
			sb.WriteString("\\\\")
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		case '\r':
			sb.WriteString("\\r")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
