package pylang

import (
	"strings"
	"testing"
)

func p(line int, col int) Pos { return Pos{line, col} }

func name(s string) *NameExpr { return &NameExpr{Name: s} }

func TestPrintImports(t *testing.T) {
	m := &Module{Body: []Stmt{
		&ImportStmt{Names: []Alias{{Name: "numpy"}, {Name: "torch.nn", AsName: "nn"}}},
		&FromImportStmt{Module: "pandas", Names: []Alias{{Name: "DataFrame"}, {Name: "Series", AsName: "S"}}},
		&FromImportStmt{Level: 2, Module: "pkg", Names: []Alias{{Name: "x"}}},
		&FromImportStmt{Module: "lib", Star: true},
	}}
	want := `import numpy, torch.nn as nn
from pandas import DataFrame, Series as S
from ..pkg import x
from lib import *
`
	if got := Print(m); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrintCompound(t *testing.T) {
	m := &Module{Body: []Stmt{
		&WhileStmt{
			Cond: &BoolLit{Value: true},
			Body: []Stmt{&BreakStmt{}},
			Else: []Stmt{&ExprStmt{Value: &CallExpr{Func: name("done")}}},
		},
		&ForStmt{
			Target: &TupleExpr{Elems: []Expr{name("k"), name("v")}},
			Iter:   &CallExpr{Func: &AttrExpr{Value: name("d"), Attr: "items"}},
			Body:   []Stmt{&ContinueStmt{}},
		},
		&TryStmt{
			Body: []Stmt{&PassStmt{}},
			Excepts: []ExceptClause{
				{Type: name("ValueError"), Name: "e", Body: []Stmt{&PassStmt{}}},
				{Body: []Stmt{&RaiseStmt{}}},
			},
			Else:    []Stmt{&PassStmt{}},
			Finally: []Stmt{&PassStmt{}},
		},
	}}
	out := Print(m)
	for _, needle := range []string{
		"while True:", "break", "else:", "done()",
		"for (k, v) in d.items():", "continue",
		"try:", "except ValueError as e:", "except:", "raise", "finally:",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("missing %q in:\n%s", needle, out)
		}
	}
}

func TestPrintDefAndClass(t *testing.T) {
	m := &Module{Body: []Stmt{
		&DefStmt{
			Name: "f",
			Params: []Param{
				{Name: "a"},
				{Name: "b", Default: &IntLit{Value: 2}},
			},
			Body:       []Stmt{&ReturnStmt{Value: &BinOp{Op: Plus, Left: name("a"), Right: name("b")}}},
			Decorators: []Expr{name("cached")},
		},
		&ClassStmt{
			Name:  "C",
			Bases: []Expr{name("Base")},
			Body:  []Stmt{},
		},
	}}
	out := Print(m)
	for _, needle := range []string{"@cached", "def f(a, b=2):", "return a + b", "class C(Base):", "pass"} {
		if !strings.Contains(out, needle) {
			t.Errorf("missing %q in:\n%s", needle, out)
		}
	}
}

func TestPrintSimpleStatements(t *testing.T) {
	m := &Module{Body: []Stmt{
		&AssignStmt{Targets: []Expr{name("a"), name("b")}, Value: &IntLit{Value: 1}},
		&AugAssignStmt{Target: name("x"), Op: DoubleSlash, Value: &IntLit{Value: 2}},
		&GlobalStmt{Names: []string{"g1", "g2"}},
		&DelStmt{Targets: []Expr{name("a"), &IndexExpr{Value: name("d"), Index: &StringLit{Value: "k"}}}},
		&AssertStmt{Cond: name("ok"), Msg: &StringLit{Value: "boom"}},
		&AssertStmt{Cond: name("ok")},
		&ReturnStmt{},
		&RaiseStmt{Value: &CallExpr{Func: name("ValueError"), Args: []Expr{&StringLit{Value: "x"}}}},
	}}
	out := Print(m)
	for _, needle := range []string{
		"a = b = 1", "x //= 2", "global g1, g2", `del a, d["k"]`,
		`assert ok, "boom"`, "assert ok", "return", `raise ValueError("x")`,
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("missing %q in:\n%s", needle, out)
		}
	}
}

func TestPrintExprForms(t *testing.T) {
	cases := []struct {
		expr Expr
		want string
	}{
		{&FloatLit{Value: 2}, "2.0"},
		{&FloatLit{Value: 2.5}, "2.5"},
		{&BoolLit{Value: false}, "False"},
		{&NoneLit{}, "None"},
		{&StringLit{Value: "a\"b\n"}, `"a\"b\n"`},
		{&TupleExpr{}, "()"},
		{&TupleExpr{Elems: []Expr{&IntLit{Value: 1}}}, "(1,)"},
		{&DictExpr{Items: []DictItem{{Key: &StringLit{Value: "k"}, Value: &IntLit{Value: 1}}}}, `{"k": 1}`},
		{&CondExpr{Cond: name("c"), Body: name("a"), OrElse: name("b")}, "a if c else b"},
		{&LambdaExpr{Params: []Param{{Name: "x"}}, Body: name("x")}, "lambda x: x"},
		{&LambdaExpr{Body: &IntLit{Value: 0}}, "lambda: 0"},
		{&UnaryOp{Op: KwNot, Operand: name("x")}, "not x"},
		{&UnaryOp{Op: Minus, Operand: name("x")}, "-x"},
		{&Compare{Left: name("a"), Ops: []Kind{Lt, Le}, Comparators: []Expr{name("b"), name("c")}}, "a < b <= c"},
		{&Compare{Left: name("a"), Ops: []Kind{KwNotIn}, Comparators: []Expr{name("s")}}, "a not in s"},
		{&IndexExpr{Value: name("l"), Slice: true, Low: &IntLit{Value: 1}}, "l[1:]"},
		{&IndexExpr{Value: name("l"), Slice: true, High: &IntLit{Value: 2}}, "l[:2]"},
		{&IndexExpr{Value: name("l"), Slice: true}, "l[:]"},
		{&BoolOp{Op: KwOr, Values: []Expr{name("a"), name("b"), name("c")}}, "a or b or c"},
		{&CallExpr{Func: name("f"), Args: []Expr{name("x")},
			Keywords: []KeywordArg{{Name: "k", Value: &IntLit{Value: 1}}}}, "f(x, k=1)"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.expr); got != c.want {
			t.Errorf("PrintExpr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintParenthesization(t *testing.T) {
	// (a + b) * c requires parens; a + b * c does not.
	mul := &BinOp{Op: Star,
		Left:  &BinOp{Op: Plus, Left: name("a"), Right: name("b")},
		Right: name("c")}
	if got := PrintExpr(mul); got != "(a + b) * c" {
		t.Errorf("got %q", got)
	}
	add := &BinOp{Op: Plus,
		Left:  name("a"),
		Right: &BinOp{Op: Star, Left: name("b"), Right: name("c")}}
	if got := PrintExpr(add); got != "a + b * c" {
		t.Errorf("got %q", got)
	}
	// Left-nested subtraction keeps order without parens; right-nested
	// needs them.
	sub := &BinOp{Op: Minus,
		Left:  name("a"),
		Right: &BinOp{Op: Minus, Left: name("b"), Right: name("c")}}
	if got := PrintExpr(sub); got != "a - (b - c)" {
		t.Errorf("got %q", got)
	}
	// not binds looser than comparison.
	notCmp := &UnaryOp{Op: KwNot, Operand: &Compare{Left: name("a"), Ops: []Kind{Eq}, Comparators: []Expr{name("b")}}}
	if got := PrintExpr(notCmp); got != "not a == b" {
		t.Errorf("got %q", got)
	}
}

func TestPrintElifChainResugared(t *testing.T) {
	m := &Module{Body: []Stmt{
		&IfStmt{
			Cond: name("a"),
			Body: []Stmt{&PassStmt{}},
			Else: []Stmt{&IfStmt{
				Cond: name("b"),
				Body: []Stmt{&PassStmt{}},
				Else: []Stmt{&PassStmt{}},
			}},
		},
	}}
	out := Print(m)
	if !strings.Contains(out, "elif b:") {
		t.Errorf("elif not resugared:\n%s", out)
	}
	if strings.Contains(out, "else:\n    if") {
		t.Errorf("nested if not flattened:\n%s", out)
	}
}

func TestPrintEmptyModule(t *testing.T) {
	if got := Print(&Module{}); got != "pass\n" {
		t.Errorf("empty module printed as %q", got)
	}
}

func TestPrintStmtsIndentation(t *testing.T) {
	m := &Module{Body: []Stmt{
		&DefStmt{Name: "outer", Body: []Stmt{
			&DefStmt{Name: "inner", Body: []Stmt{
				&ReturnStmt{Value: &IntLit{Value: 1}},
			}},
		}},
	}}
	out := Print(m)
	if !strings.Contains(out, "    def inner():") || !strings.Contains(out, "        return 1") {
		t.Errorf("nested indentation wrong:\n%s", out)
	}
}

func TestPosString(t *testing.T) {
	if p(3, 7).String() != "3:7" {
		t.Error("Pos.String format")
	}
	tok := Token{Kind: NAME, Text: "x"}
	if tok.String() != `NAME("x")` {
		t.Errorf("token string = %s", tok)
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}
