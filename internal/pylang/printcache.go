package pylang

import "sync"

// printCache memoizes Print by AST identity. Module ASTs are immutable once
// built (the parser and the debloater's rewriters always construct fresh
// trees), so a pointer is a stable identity for the printed text. The cache
// is process-wide: the debloater prints the same override AST once per
// fingerprint computation and once per materialization, and a sync.Map keeps
// both lock-free on the hit path across concurrent DD goroutines.
var printCache sync.Map // *Module -> string

// PrintCached is Print memoized per AST pointer. Callers must not mutate a
// module after printing it (the repo-wide convention: rewrites build new
// trees).
func PrintCached(m *Module) string {
	if s, ok := printCache.Load(m); ok {
		return s.(string)
	}
	s := Print(m)
	printCache.Store(m, s)
	return s
}
