package stats

import "math"

// Histogram bucket layout. The layout is fixed so that any two Histograms
// are mergeable by bucket-wise addition: buckets are log-scale with
// histBucketsPerDecade buckets per decade, spanning 10^histMinDecade up to
// 10^histMaxDecade. Values are unit-agnostic; the observability layer
// observes latencies in seconds, so the range covers nanoseconds up to
// ~31 years with a relative bucket width of 10^(1/8) ≈ 1.33.
const (
	histBucketsPerDecade = 8
	histMinDecade        = -9
	histMaxDecade        = 12

	// HistogramBuckets is the fixed bucket count of every Histogram.
	HistogramBuckets = (histMaxDecade - histMinDecade) * histBucketsPerDecade
)

// Histogram is a fixed-layout log-scale histogram with approximate
// quantiles. The zero value is ready to use. It is not safe for concurrent
// use; the metrics registry serializes access.
//
// Quantile estimates carry the bucket's relative error (≤ 10^(1/8)-1 ≈ 33%
// in the worst case, typically much less), which is the usual trade for
// mergeability and O(1) observation. Exact extremes are tracked separately,
// so Quantile(0) and Quantile(1) are exact.
type Histogram struct {
	counts [HistogramBuckets]uint64
	// zeros counts non-positive observations (they have no log bucket).
	zeros uint64
	count uint64
	sum   float64
	min   float64
	max   float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a positive value to its bucket index, clamping values
// outside the representable range into the edge buckets.
func histBucket(v float64) int {
	idx := int(math.Floor((math.Log10(v) - histMinDecade) * histBucketsPerDecade))
	if idx < 0 {
		return 0
	}
	if idx >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return idx
}

// bucketValue is the representative (geometric midpoint) of bucket i.
func bucketValue(i int) float64 {
	return math.Pow(10, float64(histMinDecade)+(float64(i)+0.5)/histBucketsPerDecade)
}

// Observe records one value. Zero is counted in a dedicated zero bucket
// (it has no log-scale bucket). NaN, infinities, and negative values are
// rejected outright: the layer observes durations and sizes, so such
// values are always instrumentation bugs, and admitting even one would
// poison Sum, Mean, and every quantile of the series for the whole run.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v == 0 {
		h.zeros++
		return
	}
	h.counts[histBucket(v)]++
}

// Merge folds o into h bucket-wise. A nil or empty o is a no-op, and so is
// merging a histogram into itself: h.Merge(h) must leave h unchanged, not
// double every bucket.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	h.zeros += o.zeros
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-th quantile, q in [0, 1]. The estimate is the
// geometric midpoint of the bucket holding the target rank, clamped to the
// exact observed [Min, Max]. Empty histograms yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	cum := float64(h.zeros)
	if cum >= target {
		// The rank falls among the non-positive observations.
		return h.clamp(0)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			return h.clamp(bucketValue(i))
		}
	}
	return h.max
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}
