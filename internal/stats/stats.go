// Package stats provides the small statistics toolkit used by the
// experiment harness: means, medians, percentiles, CDFs and geometric
// means.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of xs as sorted points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, x := range sorted {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFAt evaluates an empirical CDF at value x.
func CDFAt(points []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range points {
		if pt.X <= x {
			p = pt.P
		} else {
			break
		}
	}
	return p
}

// Improvement returns the relative improvement of new over old as a
// fraction (0.25 = 25% better). Zero old yields 0.
func Improvement(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (old - new) / old
}

// Speedup returns old/new (0 when new is 0).
func Speedup(old, new float64) float64 {
	if new == 0 {
		return 0
	}
	return old / new
}
