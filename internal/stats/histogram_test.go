package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v on empty histogram", q, got)
		}
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 10 {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Mean() != 2.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// relErr is the worst-case relative bucket error: one bucket spans a factor
// of 10^(1/8), so the geometric midpoint is within a factor of 10^(1/16).
var relErr = math.Pow(10, 1.0/16) - 1

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform over ~4 decades around typical latencies.
		v := math.Pow(10, -3+3*rng.Float64())
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, p := range []float64{10, 50, 90, 95, 99} {
		exact := Percentile(xs, p)
		est := h.Quantile(p / 100)
		if math.Abs(est-exact)/exact > relErr+0.01 {
			t.Errorf("p%v: estimate %v vs exact %v (rel err %.3f)",
				p, est, exact, math.Abs(est-exact)/exact)
		}
	}
	// Extremes are exact.
	if h.Quantile(0) != Min(xs) || h.Quantile(1) != Max(xs) {
		t.Error("Quantile(0)/Quantile(1) should be the exact extremes")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.ExpFloat64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramZerosAndRejection(t *testing.T) {
	tests := []struct {
		name      string
		observe   []float64
		wantCount uint64
		wantMin   float64
		wantMax   float64
		wantP50   float64
	}{
		{
			name:    "zeros land in the zero bucket",
			observe: []float64{0, 0, 10},
			// Two of three observations are zero: the median is in the
			// zero bucket, clamped to the observed range.
			wantCount: 3, wantMin: 0, wantMax: 10, wantP50: 0,
		},
		{
			name:      "negatives rejected",
			observe:   []float64{-5, -0.001, 10},
			wantCount: 1, wantMin: 10, wantMax: 10, wantP50: 10,
		},
		{
			name:      "NaN and infinities rejected",
			observe:   []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2},
			wantCount: 1, wantMin: 2, wantMax: 2, wantP50: 2,
		},
		{
			name:      "only invalid samples leave it empty",
			observe:   []float64{math.NaN(), -1, math.Inf(1)},
			wantCount: 0, wantMin: 0, wantMax: 0, wantP50: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tt.observe {
				h.Observe(v)
			}
			if h.Count() != tt.wantCount {
				t.Errorf("Count = %d, want %d", h.Count(), tt.wantCount)
			}
			if h.Min() != tt.wantMin || h.Max() != tt.wantMax {
				t.Errorf("Min/Max = %v/%v, want %v/%v", h.Min(), h.Max(), tt.wantMin, tt.wantMax)
			}
			if got := h.Quantile(0.5); got != tt.wantP50 {
				t.Errorf("median = %v, want %v", got, tt.wantP50)
			}
			if math.IsNaN(h.Sum()) || math.IsInf(h.Sum(), 0) {
				t.Errorf("Sum poisoned: %v", h.Sum())
			}
		})
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	for _, h := range []*Histogram{NewHistogram(), {}} {
		for _, q := range []float64{-1, 0, 0.25, 0.5, 0.95, 0.999, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("Quantile(%v) = %v on empty histogram, want 0", q, got)
			}
		}
	}
}

func TestHistogramMergeDisjointDecades(t *testing.T) {
	// a holds microsecond-scale samples, b holds kilosecond-scale ones —
	// their populated decades do not overlap, so the merge must keep both
	// populations intact and the quantiles must straddle the gap.
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(1e-6 * float64(i)) // 1µs .. 100µs
		b.Observe(1e3 * float64(i))  // 1000s .. 100000s
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 1e-6 || a.Max() != 1e5 {
		t.Errorf("merged min/max = %v/%v, want 1e-06/100000", a.Min(), a.Max())
	}
	// The lower half lives in the microsecond decades, the upper half in
	// the kilosecond decades; nothing may land in the empty gap between.
	if p25 := a.Quantile(0.25); p25 > 1e-4 {
		t.Errorf("p25 = %v, want within the microsecond population", p25)
	}
	if p75 := a.Quantile(0.75); p75 < 1e3 {
		t.Errorf("p75 = %v, want within the kilosecond population", p75)
	}
	wantSum := 0.0
	for i := 1; i <= 100; i++ {
		wantSum += 1e-6*float64(i) + 1e3*float64(i)
	}
	if math.Abs(a.Sum()-wantSum) > 1e-6 {
		t.Errorf("merged sum = %v, want %v", a.Sum(), wantSum)
	}
}

func TestHistogramOutOfRangeClamps(t *testing.T) {
	var h Histogram
	h.Observe(1e-30) // below the smallest bucket
	h.Observe(1e30)  // above the largest bucket
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	// Quantiles clamp to exact extremes, so out-of-range values round-trip.
	if h.Quantile(0) != 1e-30 || h.Quantile(1) != 1e30 {
		t.Errorf("extremes = %v/%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 100
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9 {
		t.Errorf("merged sum %v != %v", a.Sum(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max %v/%v != %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging nil and empty histograms is a no-op.
	before := a.Count()
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != before {
		t.Error("nil/empty merge changed the histogram")
	}
}

func TestHistogramMergeSelf(t *testing.T) {
	var h Histogram
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	h.Observe(0)
	before := h
	// Self-merge must be a no-op. Without the aliasing guard, count/sum/zeros
	// double and the bucket loop reads counts it is mutating.
	h.Merge(&h)
	if h != before {
		t.Fatalf("self-merge changed the histogram: count %d -> %d, sum %v -> %v",
			before.Count(), h.Count(), before.Sum(), h.Sum())
	}
	// A merge with an equal but distinct histogram is NOT aliasing and must
	// still double: the guard keys on identity, not value.
	other := before
	h.Merge(&other)
	if h.Count() != 2*before.Count() {
		t.Fatalf("copy-merge count = %d, want %d", h.Count(), 2*before.Count())
	}
	if math.Abs(h.Sum()-2*before.Sum()) > 1e-9 {
		t.Fatalf("copy-merge sum = %v, want %v", h.Sum(), 2*before.Sum())
	}
}
