package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("mean = %f", Mean([]float64{1, 2, 3, 4}))
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEq(GeoMean([]float64{1, 4}), 2) {
		t.Errorf("geomean = %f", GeoMean([]float64{1, 4}))
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("geomean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if !almostEq(Median(xs), 3) {
		t.Errorf("median = %f", Median(xs))
	}
	if !almostEq(Percentile(xs, 0), 1) || !almostEq(Percentile(xs, 100), 5) {
		t.Error("percentile extremes wrong")
	}
	if !almostEq(Percentile([]float64{1, 2}, 50), 1.5) {
		t.Errorf("interpolated median = %f", Percentile([]float64{1, 2}, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("min/max/sum = %f %f %f", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{3, 1, 2})
	if len(points) != 3 {
		t.Fatalf("cdf points = %d", len(points))
	}
	if points[0].X != 1 || !almostEq(points[0].P, 1.0/3) {
		t.Errorf("first point = %+v", points[0])
	}
	if points[2].X != 3 || points[2].P != 1 {
		t.Errorf("last point = %+v", points[2])
	}
	if CDFAt(points, 0.5) != 0 {
		t.Error("CDFAt below min should be 0")
	}
	if !almostEq(CDFAt(points, 2.5), 2.0/3) {
		t.Errorf("CDFAt(2.5) = %f", CDFAt(points, 2.5))
	}
	if CDFAt(points, 10) != 1 {
		t.Error("CDFAt above max should be 1")
	}
}

func TestImprovementAndSpeedup(t *testing.T) {
	if !almostEq(Improvement(100, 75), 0.25) {
		t.Errorf("improvement = %f", Improvement(100, 75))
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero-old improvement should be 0")
	}
	if !almostEq(Speedup(10, 5), 2) {
		t.Errorf("speedup = %f", Speedup(10, 5))
	}
	if Speedup(10, 0) != 0 {
		t.Error("zero-new speedup should be 0")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a CDF is non-decreasing in both coordinates and ends at P=1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		points := CDF(xs)
		if len(xs) == 0 {
			return points == nil
		}
		for i := 1; i < len(points); i++ {
			if points[i].X < points[i-1].X || points[i].P < points[i-1].P {
				return false
			}
		}
		return points[len(points)-1].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Median matches the sorted middle within interpolation.
func TestQuickMedianBetweenNeighbours(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return m >= sorted[0]-1e-9 && m <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
