package vfs

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRemove(t *testing.T) {
	fs := New()
	fs.Write("a/b.py", "content")
	got, err := fs.Read("a/b.py")
	if err != nil || got != "content" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if !fs.Exists("a/b.py") {
		t.Error("file should exist")
	}
	if err := fs.Remove("a/b.py"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a/b.py") {
		t.Error("file should be gone")
	}
	if err := fs.Remove("a/b.py"); err == nil {
		t.Error("double remove should fail")
	}
	if _, err := fs.Read("missing"); err == nil {
		t.Error("reading missing file should fail")
	}
}

func TestCleanNormalization(t *testing.T) {
	cases := map[string]string{
		"./a/b.py": "a/b.py",
		"/a/b.py":  "a/b.py",
		"a//b.py":  "a/b.py",
		"a/./b.py": "a/b.py",
		"a/b.py":   "a/b.py",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
	// All spellings address the same file.
	fs := New()
	fs.Write("./x/y.py", "v")
	if got, _ := fs.Read("/x/y.py"); got != "v" {
		t.Error("path normalization broken")
	}
}

func TestListAndListDir(t *testing.T) {
	fs := New()
	fs.Write("b.py", "1")
	fs.Write("a/x.py", "2")
	fs.Write("a/y.py", "3")
	fs.Write("c/z.py", "4")

	all := fs.List()
	if len(all) != 4 || all[0] != "a/x.py" {
		t.Errorf("List = %v", all)
	}
	sub := fs.ListDir("a")
	if len(sub) != 2 || sub[0] != "a/x.py" || sub[1] != "a/y.py" {
		t.Errorf("ListDir = %v", sub)
	}
}

func TestCloneIsolation(t *testing.T) {
	fs := New()
	fs.Write("f.py", "original")
	clone := fs.Clone()
	clone.Write("f.py", "modified")
	clone.Write("new.py", "extra")

	if got, _ := fs.Read("f.py"); got != "original" {
		t.Error("clone mutation leaked into original")
	}
	if fs.Exists("new.py") {
		t.Error("clone write leaked into original")
	}
	if got, _ := clone.Read("f.py"); got != "modified" {
		t.Error("clone lost its own write")
	}
}

func TestTotalSizeAndLen(t *testing.T) {
	fs := New()
	fs.Write("a", "12345")
	fs.Write("b", "678")
	if fs.TotalSize() != 8 {
		t.Errorf("TotalSize = %d", fs.TotalSize())
	}
	if fs.Len() != 2 {
		t.Errorf("Len = %d", fs.Len())
	}
}

// Property: writing then reading any path/content pair returns the content.
func TestQuickWriteRead(t *testing.T) {
	f := func(path, content string) bool {
		if Clean(path) == "" {
			return true // empty paths normalize away; skip
		}
		fs := New()
		fs.Write(path, content)
		got, err := fs.Read(path)
		return err == nil && got == content
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: List is always sorted and Clone preserves TotalSize.
func TestQuickCloneInvariants(t *testing.T) {
	f := func(names []string) bool {
		fs := New()
		for i, n := range names {
			if Clean(n) == "" {
				continue
			}
			fs.Write(n, strings.Repeat("x", i%7))
		}
		clone := fs.Clone()
		if clone.TotalSize() != fs.TotalSize() || clone.Len() != fs.Len() {
			return false
		}
		list := fs.List()
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
