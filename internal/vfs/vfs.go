// Package vfs implements the in-memory filesystem that plays the role of a
// deployment image: the application source plus its site-packages tree.
//
// λ-trim's debloater backs up a module's __init__ file, rewrites it on every
// Delta Debugging iteration, and copies it back into site-packages; the
// fallback deployment keeps the original image alongside the trimmed one.
// All of that file traffic happens against this filesystem.
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FS is an in-memory file tree keyed by slash-separated paths. Paths are
// normalized to have no leading slash. The zero value is not usable; call New.
type FS struct {
	files map[string]string

	// hashes memoizes ContentHash per path, invalidated by Write/Remove.
	// A sync.Map so concurrent readers (parallel Delta Debugging shares
	// one image across oracle goroutines) stay lock-free on the hit path.
	hashes sync.Map // path -> hex digest

	// derived memoizes values computed from the whole tree (the runtime's
	// module resolution and body fingerprints). Unlike hashes it cannot be
	// invalidated per path — adding a file can change the resolution of a
	// name that previously fell through to another root — so any Write or
	// Remove clears it entirely. Mutations only happen between pipeline
	// stages, never on the oracle hot path.
	derived sync.Map // caller-defined key -> value
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]string)}
}

// Clean normalizes a path: trims leading "./" and "/" and collapses
// duplicate slashes.
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return strings.Join(out, "/")
}

// Write creates or replaces a file.
func (fs *FS) Write(path, content string) {
	p := Clean(path)
	fs.files[p] = content
	fs.hashes.Delete(p)
	fs.clearDerived()
}

// Read returns a file's contents.
func (fs *FS) Read(path string) (string, error) {
	c, ok := fs.files[Clean(path)]
	if !ok {
		return "", fmt.Errorf("vfs: no such file: %s", path)
	}
	return c, nil
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[Clean(path)]
	return ok
}

// Remove deletes a file; removing a missing file is an error so callers
// notice bookkeeping mistakes.
func (fs *FS) Remove(path string) error {
	p := Clean(path)
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("vfs: no such file: %s", path)
	}
	delete(fs.files, p)
	fs.hashes.Delete(p)
	fs.clearDerived()
	return nil
}

func (fs *FS) clearDerived() {
	fs.derived.Range(func(k, _ any) bool {
		fs.derived.Delete(k)
		return true
	})
}

// DerivedGet returns a value previously stored with DerivedPut, if the tree
// has not been written to since.
func (fs *FS) DerivedGet(key string) (any, bool) { return fs.derived.Load(key) }

// DerivedPut memoizes a value derived from the tree's current contents.
func (fs *FS) DerivedPut(key string, v any) { fs.derived.Store(key, v) }

// ContentHash returns a hex digest of a file's content, memoized until the
// path is rewritten. The debloater's oracle fingerprints every module file
// on every isolated run; hashing each file once per image instead of once
// per run keeps that off the hot path.
func (fs *FS) ContentHash(path string) (string, bool) {
	p := Clean(path)
	if h, ok := fs.hashes.Load(p); ok {
		return h.(string), true
	}
	c, ok := fs.files[p]
	if !ok {
		return "", false
	}
	sum := sha256.Sum256([]byte(c))
	h := hex.EncodeToString(sum[:16])
	fs.hashes.Store(p, h)
	return h, true
}

// List returns all paths in sorted order.
func (fs *FS) List() []string {
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// ListDir returns the paths under the given directory prefix, sorted.
func (fs *FS) ListDir(dir string) []string {
	prefix := Clean(dir)
	if prefix != "" {
		prefix += "/"
	}
	var paths []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	return paths
}

// Clone returns a deep copy; the debloater clones the image before
// mutating site-packages so the original deployment stays intact for the
// fallback function.
func (fs *FS) Clone() *FS {
	c := New()
	for p, content := range fs.files {
		c.files[p] = content
	}
	return c
}

// TotalSize returns the summed byte length of all files — the "image size"
// used by the platform simulator's image-transmission phase.
func (fs *FS) TotalSize() int64 {
	var n int64
	for _, content := range fs.files {
		n += int64(len(content))
	}
	return n
}

// Len returns the number of files.
func (fs *FS) Len() int { return len(fs.files) }
