package checkpoint

import (
	"testing"
	"time"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// appWithInit builds an app whose initialization costs ms/mb.
func appWithInit(name string, ms, mb float64) *appspec.App {
	fs := vfs.New()
	fs.Write("handler.py", `
import lib

def handler(event, context):
    return lib.ready()
`)
	fs.Write("site-packages/lib/__init__.py",
		"load_native("+itoa(int(ms))+", "+itoa(int(mb))+")\n\ndef ready():\n    return True\n")
	return &appspec.App{Name: name, Image: fs, Entry: "handler", Handler: "handler"}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestTakeCapturesInitState(t *testing.T) {
	ckpt, err := Take(appWithInit("a", 300, 60))
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.InitTime < 300*time.Millisecond {
		t.Errorf("init time = %v", ckpt.InitTime)
	}
	if ckpt.InitMemMB < 59 || ckpt.InitMemMB > 70 {
		t.Errorf("init mem = %.1f, want ≈60", ckpt.InitMemMB)
	}
	if ckpt.SizeMB < ProcessBaseMB+59 {
		t.Errorf("ckpt size = %.1f", ckpt.SizeMB)
	}
	if ckpt.DumpTime <= 0 {
		t.Error("dump time should be positive")
	}
}

func TestTakeFailsOnBrokenApp(t *testing.T) {
	fs := vfs.New()
	fs.Write("handler.py", "import missing\n")
	app := &appspec.App{Name: "b", Image: fs, Entry: "handler", Handler: "handler"}
	if _, err := Take(app); err == nil {
		t.Error("expected error")
	}
}

func TestRestoreTimeModel(t *testing.T) {
	small := &Checkpoint{SizeMB: 10}
	big := &Checkpoint{SizeMB: 1000}
	if small.RestoreTime() < RestoreBase {
		t.Error("restore must include the fixed CRIU overhead")
	}
	if big.RestoreTime() <= small.RestoreTime() {
		t.Error("bigger checkpoints must restore slower")
	}
	// The size-proportional term: 990MB at 1200MB/s ≈ 825ms difference.
	diff := big.RestoreTime() - small.RestoreTime()
	if diff < 700*time.Millisecond || diff > 950*time.Millisecond {
		t.Errorf("size term = %v, want ≈825ms", diff)
	}
}

func TestCrossover(t *testing.T) {
	// Small app: re-import beats restore (fixed 100ms overhead dominates).
	smallCkpt, err := Take(appWithInit("small", 20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if smallCkpt.RestoreTime() <= smallCkpt.InitTime {
		t.Errorf("small app: restore %v should lose to re-import %v",
			smallCkpt.RestoreTime(), smallCkpt.InitTime)
	}
	// Large app: restore wins.
	bigCkpt, err := Take(appWithInit("big", 4000, 250))
	if err != nil {
		t.Fatal(err)
	}
	if bigCkpt.RestoreTime() >= bigCkpt.InitTime {
		t.Errorf("large app: restore %v should beat re-import %v",
			bigCkpt.RestoreTime(), bigCkpt.InitTime)
	}
}

func TestSnapStartCosts(t *testing.T) {
	ckpt := &Checkpoint{SizeMB: 1024} // 1 GB
	if got := ckpt.RestoreCostUSD(); !close(got, RestoreUSDPerGB) {
		t.Errorf("restore cost = %g", got)
	}
	day := 24 * time.Hour
	if got := ckpt.CacheCostUSD(day); !close(got, CacheUSDPerGBSecond*86400) {
		t.Errorf("cache cost = %g", got)
	}
	// Caching dominates restores for typical cold-start counts — the
	// effect behind Figure 13.
	if 100*ckpt.RestoreCostUSD() > ckpt.CacheCostUSD(day) {
		t.Error("cache cost should dominate 100 restores over a day")
	}
}

func TestCompareInit(t *testing.T) {
	orig := appWithInit("x", 1000, 100)
	trim := appWithInit("x", 400, 40)
	cmp, err := CompareInit(orig, trim)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Debloated >= cmp.Original {
		t.Error("debloated init should be faster")
	}
	if cmp.DebloatedCR >= cmp.OriginalCR {
		t.Error("debloated checkpoint should restore faster")
	}
	if cmp.CkptSizeSavings < 0.3 {
		t.Errorf("ckpt savings = %.2f, want >0.3 for a 60%% memory cut", cmp.CkptSizeSavings)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
