// Package checkpoint simulates checkpoint/restore (C/R) for serverless
// functions, standing in for the paper's CRIU prototype (§8.6) and AWS
// SnapStart cost model (Figures 13 and 14).
//
// A checkpoint freezes a function's post-initialization state; a cold start
// can then restore it instead of re-running Function Initialization. The
// tradeoffs reproduced here:
//
//   - restore pays a fixed process-reconstruction overhead (~0.1 s for CRIU:
//     forking the process tree and replaying /proc state) plus a
//     size-proportional page-load term, so C/R loses on small apps and wins
//     on large ones;
//   - checkpoints must be stored and restored, which SnapStart bills —
//     often exceeding the invocation cost itself;
//   - λ-trim shrinks initialization state, so it shrinks checkpoints (avg
//     ~11% in Table 3) and compounds with C/R rather than competing.
package checkpoint

import (
	"fmt"
	"time"

	"repro/internal/appspec"
	"repro/internal/pyruntime"
	"repro/internal/simtime"
)

// CRIU-like restore cost model.
const (
	// RestoreBase is the fixed overhead of recreating the process tree and
	// restoring /proc state (≈0.1 s observed in the paper).
	RestoreBase = 100 * time.Millisecond
	// RestoreRateMBps is the page-load throughput from a local checkpoint
	// image (memory pages load much faster than the interpreter re-executes
	// imports).
	RestoreRateMBps = 1200.0
	// DumpRateMBps is the checkpoint write throughput.
	DumpRateMBps = 700.0
	// ProcessBaseMB is the baseline process state (interpreter text/heap)
	// present in every checkpoint regardless of the app.
	ProcessBaseMB = 8.0
)

// SnapStart pricing (AWS publishes per-GB cache-storage and per-GB restore
// prices; Figure 13/14 use these).
const (
	// CacheUSDPerGBSecond is the checkpoint storage price.
	CacheUSDPerGBSecond = 0.0000015046
	// RestoreUSDPerGB is the price charged per GB restored on each cold
	// start.
	RestoreUSDPerGB = 0.0001397998
)

// Checkpoint is a frozen post-initialization image of a function.
type Checkpoint struct {
	AppName string
	// SizeMB is the checkpoint image size: process base plus the memory
	// allocated during Function Initialization.
	SizeMB float64
	// InitTime is the Function Initialization time the checkpoint saves.
	InitTime time.Duration
	// InitMemMB is the initialization footprint captured.
	InitMemMB float64
	// DumpTime is how long taking the checkpoint took (off the critical
	// path; paid once at deploy).
	DumpTime time.Duration
}

// Take initializes the app in a fresh interpreter and checkpoints the
// resulting state (the paper takes the CRIU dump right after
// initialization, before the handler).
func Take(app *appspec.App) (*Checkpoint, error) {
	in := pyruntime.New(app.Image)
	t0 := in.Clock.Now()
	m0 := in.Alloc.Used()
	if _, perr := in.Import(app.Entry); perr != nil {
		return nil, fmt.Errorf("checkpoint: init failed for %s: %v", app.Name, perr)
	}
	initTime := in.Clock.Now() - t0
	initMem := simtime.MBf(in.Alloc.Used() - m0)
	size := ProcessBaseMB + initMem
	return &Checkpoint{
		AppName:   app.Name,
		SizeMB:    size,
		InitTime:  initTime,
		InitMemMB: initMem,
		DumpTime:  time.Duration(size / DumpRateMBps * float64(time.Second)),
	}, nil
}

// RestoreTime is the cold-start initialization latency when restoring from
// the checkpoint instead of re-importing.
func (c *Checkpoint) RestoreTime() time.Duration {
	return RestoreBase + time.Duration(c.SizeMB/RestoreRateMBps*float64(time.Second))
}

// RestoreCostUSD is the SnapStart charge for one restore.
func (c *Checkpoint) RestoreCostUSD() float64 {
	return c.SizeMB / 1024.0 * RestoreUSDPerGB
}

// CacheCostUSD is the SnapStart storage charge for keeping the checkpoint
// cached for d.
func (c *Checkpoint) CacheCostUSD(d time.Duration) float64 {
	return c.SizeMB / 1024.0 * CacheUSDPerGBSecond * d.Seconds()
}

// InitComparison contrasts the four variants of Figure 12 for one app:
// original, original+C/R, debloated, debloated+C/R.
type InitComparison struct {
	App             string
	Original        time.Duration // plain re-import
	OriginalCR      time.Duration // restore from original's checkpoint
	Debloated       time.Duration // re-import after λ-trim
	DebloatedCR     time.Duration // restore from debloated checkpoint
	OriginalCkptMB  float64
	DebloatedCkptMB float64
	CkptSizeSavings float64 // fraction
}

// CompareInit builds the Figure 12 comparison from the original and
// debloated variants of an app.
func CompareInit(original, debloated *appspec.App) (*InitComparison, error) {
	origCkpt, err := Take(original)
	if err != nil {
		return nil, err
	}
	debCkpt, err := Take(debloated)
	if err != nil {
		return nil, err
	}
	cmp := &InitComparison{
		App:             original.Name,
		Original:        origCkpt.InitTime,
		OriginalCR:      origCkpt.RestoreTime(),
		Debloated:       debCkpt.InitTime,
		DebloatedCR:     debCkpt.RestoreTime(),
		OriginalCkptMB:  origCkpt.SizeMB,
		DebloatedCkptMB: debCkpt.SizeMB,
	}
	if origCkpt.SizeMB > 0 {
		cmp.CkptSizeSavings = (origCkpt.SizeMB - debCkpt.SizeMB) / origCkpt.SizeMB
	}
	return cmp, nil
}
