package chaos

import (
	"time"

	"repro/internal/faas"
)

// PlatformInjector adapts the engine to faas.ChaosInjector, so a
// single-function faas.Platform simulation composes with the same
// incident schedule the fleet replay runs. Each function name gets its
// own hashed fault-domain placement and a private invocation counter;
// directives are pure hashes of (seed, name, sequence, purpose) and draw
// nothing from the platform's RNG streams — the composition contract
// faas.Config.Chaos documents.
//
// The injector expresses what a per-invocation directive can: rejections
// (zone outage, throttle storm) and phase stretches (brownout on init,
// latency storm on exec). Churn waves act on pool instances, not
// invocations, so they are fleet-replay-only and silently skipped here;
// likewise the client-side degradation mechanisms (hedge/shed/budget)
// live in the fleet's admission loop, not the platform.
type PlatformInjector struct {
	eng    *Engine
	states map[string]*injectorState
}

type injectorState struct {
	key       uint64
	incidents []Incident // this zone's non-churn schedule, start-ordered
	seq       int
}

// NewPlatformInjector builds an injector over the engine. Not safe for
// concurrent use — a faas.Platform is single-threaded virtual time.
func NewPlatformInjector(eng *Engine) *PlatformInjector {
	return &PlatformInjector{eng: eng, states: make(map[string]*injectorState)}
}

// fnv64a hashes a function name into the chaos key space.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (pi *PlatformInjector) state(fn string) *injectorState {
	st, ok := pi.states[fn]
	if !ok {
		key := splitmix64(pi.eng.seedKey ^ splitmix64(fnv64a(fn)))
		st = &injectorState{key: key}
		zone := pi.eng.cfg.Topology.ZoneOf(key)
		for _, in := range pi.eng.cfg.Incidents {
			if in.Kind != Churn && in.appliesTo(zone) {
				st.incidents = append(st.incidents, in)
			}
		}
		pi.states[fn] = st
	}
	return st
}

// active mirrors FnState.active over the injector's per-name schedule.
func (st *injectorState) active(kind Kind, at time.Duration) (Incident, bool) {
	best := Incident{}
	found := false
	for _, in := range st.incidents {
		if in.Start > at {
			break
		}
		if in.Kind == kind && in.Active(at) && (!found || in.Severity > best.Severity) {
			best, found = in, true
		}
	}
	return best, found
}

// Directive implements faas.ChaosInjector.
func (pi *PlatformInjector) Directive(fn string, at time.Duration) faas.ChaosDirective {
	st := pi.state(fn)
	st.seq++
	var d faas.ChaosDirective
	if outage, on := st.active(ZoneOutage, at); on && draw(st.key, saltOutage, st.seq, 0) < outage.Severity {
		d.Reject = true
		d.RejectClass = faas.FailureUnavailable
		d.Detail = "chaos: zone outage"
		return d
	}
	if storm, on := st.active(ThrottleStorm, at); on && draw(st.key, saltThrottle, st.seq, 0) < storm.Severity {
		d.Reject = true
		d.RejectClass = faas.FailureThrottle
		d.Detail = "chaos: throttle storm"
		return d
	}
	if brownout, on := st.active(Brownout, at); on {
		d.InitFactor = brownout.Severity
	}
	if storm, on := st.active(LatencyStorm, at); on && draw(st.key, saltLatency, st.seq, 0) < storm.Frac {
		d.ExecFactor = storm.Severity
	}
	return d
}
