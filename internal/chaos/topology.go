package chaos

import "time"

// splitmix64 is the same finalizer the fleet exemplar sets key with: a
// cheap bijective mixer whose output passes through every 64-bit value.
// Chaos draws derive from chains of it so a decision depends only on
// (seed, function, sequence, purpose) — never on replay schedule.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to a uniform float64 in [0, 1) using the top 53 bits.
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Purpose salts: each independent decision about the same attempt hashes
// with its own salt, so e.g. the hedging redraw never correlates with the
// admission draw for the same request.
const (
	saltZone       = 0x7A6F6E65 // "zone": fault-domain assignment
	saltHost       = 0x686F7374 // "host": host within the zone
	saltOutage     = 0x6F757467 // "outg": zone-outage strike + per-attempt draws
	saltThrottle   = 0x7468726F // "thro": throttle-storm strike + per-attempt draws
	saltCongest    = 0x636F6E67 // "cong": congestion-collapse strike + attempts
	saltShed       = 0x73686564 // "shed": load-shedding draw
	saltLatency    = 0x6C617463 // "latc": latency-storm stretch draw
	saltFallback   = 0x66616C6C // "fall": fallback-path draw
	saltHedge      = 0x68656467 // "hedg": hedged attempt's exec redraw
	saltChurnPick  = 0x63687231 // "chr1": is this host in the churn wave?
	saltChurnPhase = 0x63687232 // "chr2": when inside the wave it recycles
)

// Topology is the synthetic fault-domain layout: functions hash onto
// hosts, hosts group into zones. Incidents address zones; churn waves
// address hosts.
type Topology struct {
	Zones        int
	HostsPerZone int
}

// DefaultTopology mirrors a small-region layout: 4 zones of 16 hosts.
func DefaultTopology() Topology {
	return Topology{Zones: 4, HostsPerZone: 16}
}

func (t Topology) withDefaults() Topology {
	d := DefaultTopology()
	if t.Zones < 1 {
		t.Zones = d.Zones
	}
	if t.HostsPerZone < 1 {
		t.HostsPerZone = d.HostsPerZone
	}
	return t
}

// ZoneOf places a function key in its zone.
func (t Topology) ZoneOf(key uint64) int {
	return int(splitmix64(key^saltZone) % uint64(t.Zones))
}

// HostOf places a function key on a host, globally indexed across zones
// so a churn wave can address any host directly.
func (t Topology) HostOf(key uint64) int {
	zone := t.ZoneOf(key)
	local := int(splitmix64(key^saltHost) % uint64(t.HostsPerZone))
	return zone*t.HostsPerZone + local
}

// draw returns the uniform [0,1) variate for one purpose-salted decision
// about one attempt: key identifies the function, seq the arrival, try
// the attempt within the arrival's retry loop. Salts are mixed through
// splitmix64 before the (seq, try) offset so distinct purposes land in
// distant regions of the hash space and cannot alias.
func draw(key uint64, salt uint64, seq, try int) float64 {
	return unit(splitmix64(key ^ splitmix64(splitmix64(salt)+uint64(seq)*16+uint64(try))))
}

// stagger maps a hash into [0, span) — used to spread churn recycles
// across an incident window.
func stagger(h uint64, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	return time.Duration(unit(h) * float64(span))
}
