// Package chaos is a deterministic chaos engine over the fleet replay: it
// assigns every function to a fault domain (zone → host) by seeded
// hashing, drives time-bounded incidents on the virtual clock, and layers
// graceful-degradation mechanisms (request hedging, adaptive load
// shedding, retry budgets, and the rollout circuit breaker) over the
// keep-alive pool dynamics so their interaction with λ-trim's deployment
// arms can be scored.
//
// Every chaos decision is a pure hash of (seed, function, arrival
// sequence, purpose salt) — no shared RNG stream exists, so a sharded
// replay draws identical faults on any worker count and in any schedule,
// and the engine composes with the faas fault injector without consuming
// any of its draws. Chaos off is byte-identical to a replay without the
// package.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one incident shape.
type Kind int

const (
	// ZoneOutage hard-fails requests to one zone (or all) for the window:
	// Severity is the per-attempt failure probability.
	ZoneOutage Kind = iota
	// ThrottleStorm rejects admissions with Severity base probability,
	// amplified by each client's own retry pressure — the storm that
	// re-throttles itself.
	ThrottleStorm
	// LatencyStorm stretches handler execution by Severity on a Frac
	// fraction of attempts.
	LatencyStorm
	// Brownout is a dependency brownout: cold-start initialization (the
	// load_native import window) stretches by Severity, and the fallback
	// wrapper's uncovered-path rate rises to Frac — the double-billing
	// amplifier.
	Brownout
	// Churn recycles a Severity fraction of hosts across the window; each
	// selected host's idle instances are flushed at a staggered point, so
	// the next arrival pays a fresh cold start.
	Churn
)

func (k Kind) String() string {
	switch k {
	case ZoneOutage:
		return "zone-outage"
	case ThrottleStorm:
		return "throttle-storm"
	case LatencyStorm:
		return "latency-storm"
	case Brownout:
		return "brownout"
	case Churn:
		return "churn"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var kindNames = map[string]Kind{
	"zone-outage":    ZoneOutage,
	"throttle-storm": ThrottleStorm,
	"latency-storm":  LatencyStorm,
	"brownout":       Brownout,
	"churn":          Churn,
}

// Incident is one time-bounded fault window on the virtual clock.
type Incident struct {
	Kind Kind
	// Start and Duration bound the window [Start, Start+Duration).
	Start    time.Duration
	Duration time.Duration
	// Zone restricts the incident to one fault domain; negative means
	// every zone.
	Zone int
	// Severity is the kind's primary parameter: a probability for
	// ZoneOutage/ThrottleStorm/Churn, a stretch factor (>= 1) for
	// LatencyStorm/Brownout.
	Severity float64
	// Frac is the kind's secondary parameter: the stretched-attempt
	// fraction for LatencyStorm, the storm fallback rate for Brownout.
	// Zero for the other kinds.
	Frac float64
}

// usesFrac reports whether the kind carries the secondary parameter.
func (in Incident) usesFrac() bool {
	return in.Kind == LatencyStorm || in.Kind == Brownout
}

// WithDefaults fills zero Severity/Frac with the kind's defaults.
// Idempotent; the zone default (0 for ZoneOutage, all zones otherwise) is
// applied by ParseIncidents, which can tell an omitted zone from an
// explicit one.
func (in Incident) WithDefaults() Incident {
	switch in.Kind {
	case ZoneOutage:
		if in.Severity == 0 {
			in.Severity = 0.95
		}
	case ThrottleStorm:
		if in.Severity == 0 {
			in.Severity = 0.5
		}
	case LatencyStorm:
		if in.Severity == 0 {
			in.Severity = 4
		}
		if in.Frac == 0 {
			in.Frac = 0.3
		}
	case Brownout:
		if in.Severity == 0 {
			in.Severity = 3
		}
		if in.Frac == 0 {
			in.Frac = 0.5
		}
	case Churn:
		if in.Severity == 0 {
			in.Severity = 0.8
		}
	}
	return in
}

// Validate checks parameter ranges (after defaults).
func (in Incident) Validate() error {
	if _, ok := kindNames[in.Kind.String()]; !ok {
		return fmt.Errorf("chaos: unknown incident kind %d", int(in.Kind))
	}
	if in.Start < 0 {
		return fmt.Errorf("chaos: %s start %v is negative", in.Kind, in.Start)
	}
	if in.Duration <= 0 {
		return fmt.Errorf("chaos: %s duration %v must be positive", in.Kind, in.Duration)
	}
	switch in.Kind {
	case ZoneOutage, ThrottleStorm, Churn:
		if !(in.Severity > 0 && in.Severity <= 1) {
			return fmt.Errorf("chaos: %s sev %v out of (0, 1]", in.Kind, in.Severity)
		}
	default:
		if !(in.Severity >= 1) {
			return fmt.Errorf("chaos: %s sev %v must be >= 1 (a stretch factor)", in.Kind, in.Severity)
		}
	}
	if in.usesFrac() && !(in.Frac > 0 && in.Frac <= 1) {
		return fmt.Errorf("chaos: %s frac %v out of (0, 1]", in.Kind, in.Frac)
	}
	return nil
}

// Active reports whether the window covers the instant.
func (in Incident) Active(at time.Duration) bool {
	return at >= in.Start && at < in.Start+in.Duration
}

// appliesTo reports whether the incident covers the zone.
func (in Incident) appliesTo(zone int) bool {
	return in.Zone < 0 || in.Zone == zone
}

// String renders the canonical spec form, a ParseIncidents fixpoint:
// kind@start+duration,zone=Z,sev=S[,frac=F] with zone "*" for all zones
// and every post-default parameter printed explicitly.
func (in Incident) String() string {
	var b strings.Builder
	b.WriteString(in.Kind.String())
	b.WriteByte('@')
	b.WriteString(in.Start.String())
	b.WriteByte('+')
	b.WriteString(in.Duration.String())
	b.WriteString(",zone=")
	if in.Zone < 0 {
		b.WriteByte('*')
	} else {
		b.WriteString(strconv.Itoa(in.Zone))
	}
	b.WriteString(",sev=")
	b.WriteString(strconv.FormatFloat(in.Severity, 'g', -1, 64))
	if in.usesFrac() {
		b.WriteString(",frac=")
		b.WriteString(strconv.FormatFloat(in.Frac, 'g', -1, 64))
	}
	return b.String()
}

// FormatIncidents renders a schedule in the canonical spec form,
// incidents joined by "; ". ParseIncidents(FormatIncidents(x)) == x for
// any schedule ParseIncidents produced.
func FormatIncidents(ins []Incident) string {
	parts := make([]string, len(ins))
	for i, in := range ins {
		parts[i] = in.String()
	}
	return strings.Join(parts, "; ")
}

// ParseIncidents parses a chaos spec: incidents separated by ';', each
//
//	kind@start+duration[,zone=N|*][,sev=F][,frac=F]
//
// with Go duration syntax (e.g. brownout@13h+40m,sev=3,frac=0.6). Kinds:
// zone-outage, throttle-storm, latency-storm, brownout, churn. An omitted
// zone defaults to zone 0 for zone-outage and every zone otherwise;
// omitted sev/frac take per-kind defaults. The result is sorted by start
// time and validates; FormatIncidents renders it back to a canonical
// fixpoint. An empty spec yields no incidents.
func ParseIncidents(spec string) ([]Incident, error) {
	var out []Incident
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		in, err := parseIncident(part)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

func parseIncident(part string) (Incident, error) {
	fields := strings.Split(part, ",")
	head := strings.TrimSpace(fields[0])
	kindStr, window, ok := strings.Cut(head, "@")
	if !ok {
		return Incident{}, fmt.Errorf("chaos: bad incident %q (want kind@start+duration)", part)
	}
	kind, ok := kindNames[strings.TrimSpace(kindStr)]
	if !ok {
		return Incident{}, fmt.Errorf("chaos: unknown incident kind %q (known: zone-outage throttle-storm latency-storm brownout churn)", kindStr)
	}
	startStr, durStr, ok := strings.Cut(window, "+")
	if !ok {
		return Incident{}, fmt.Errorf("chaos: bad incident window %q (want start+duration)", window)
	}
	start, err := time.ParseDuration(strings.TrimSpace(startStr))
	if err != nil {
		return Incident{}, fmt.Errorf("chaos: bad incident start %q: %v", startStr, err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(durStr))
	if err != nil {
		return Incident{}, fmt.Errorf("chaos: bad incident duration %q: %v", durStr, err)
	}
	in := Incident{Kind: kind, Start: start, Duration: dur, Zone: -1}
	if kind == ZoneOutage {
		in.Zone = 0 // an outage of every zone must be asked for explicitly
	}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Incident{}, fmt.Errorf("chaos: bad incident field %q (want key=value)", f)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "zone":
			if val == "*" {
				in.Zone = -1
				break
			}
			z, err := strconv.Atoi(val)
			if err != nil || z < 0 {
				return Incident{}, fmt.Errorf("chaos: bad zone %q (want a zone index or *)", val)
			}
			in.Zone = z
		case "sev":
			s, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Incident{}, fmt.Errorf("chaos: bad sev %q: %v", val, err)
			}
			in.Severity = s
		case "frac":
			fr, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Incident{}, fmt.Errorf("chaos: bad frac %q: %v", val, err)
			}
			if !in.usesFrac() {
				return Incident{}, fmt.Errorf("chaos: %s takes no frac parameter", in.Kind)
			}
			in.Frac = fr
		default:
			return Incident{}, fmt.Errorf("chaos: unknown incident field %q (known: zone sev frac)", key)
		}
	}
	in = in.WithDefaults()
	if err := in.Validate(); err != nil {
		return Incident{}, err
	}
	return in, nil
}

// DefaultIncidentDay is the scripted incident day the chaos experiment and
// the -chaos "default" spec replay: a churn wave in the night, a morning
// throttle storm, a zone outage, an afternoon dependency brownout (the
// fallback wrapper's worst case), and an evening latency storm.
func DefaultIncidentDay() []Incident {
	day := []Incident{
		{Kind: Churn, Start: 2 * time.Hour, Duration: 30 * time.Minute, Zone: -1},
		{Kind: ThrottleStorm, Start: 5 * time.Hour, Duration: 45 * time.Minute, Zone: -1, Severity: 0.6},
		{Kind: ZoneOutage, Start: 9 * time.Hour, Duration: 25 * time.Minute, Zone: 1},
		{Kind: Brownout, Start: 13 * time.Hour, Duration: 40 * time.Minute, Zone: -1, Severity: 3, Frac: 0.6},
		{Kind: LatencyStorm, Start: 18 * time.Hour, Duration: 35 * time.Minute, Zone: -1, Severity: 4, Frac: 0.35},
	}
	for i := range day {
		day[i] = day[i].WithDefaults()
	}
	return day
}
