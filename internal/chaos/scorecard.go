package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/monitor"
)

// Telemetry series the chaos replay records into the monitor store,
// alongside the standard req.*/cost.usd families. Demand/shed/bad land at
// the arrival instant (they describe the admission decision, which is
// what incident-impact detection windows over); everything else lands at
// the request's completion time like ordinary samples.
const (
	// SeriesDemand counts every arrival (value 1, at arrival time).
	SeriesDemand = "chaos.demand"
	// SeriesServed records each served request's client E2E seconds at
	// completion — Count is the served volume, Sum/Count the mean latency.
	SeriesServed = "chaos.served"
	// SeriesBad counts dropped, non-shed arrivals (value 1, arrival time).
	SeriesBad = "chaos.bad"
	// SeriesShed counts client-side sheds (value 1, arrival time).
	SeriesShed = "chaos.shed"
	// SeriesThrottled counts throttle-rejected attempts (admitted or not).
	SeriesThrottled = "chaos.throttled"
	// SeriesRetryDenied counts retries the budget refused.
	SeriesRetryDenied = "chaos.retry.denied"
	// SeriesFallback counts served requests whose uncovered path fired.
	SeriesFallback = "chaos.fallback"
	// SeriesHedge / SeriesHedgeWin count speculative second attempts and
	// the ones that finished first.
	SeriesHedge    = "chaos.hedge"
	SeriesHedgeWin = "chaos.hedge.win"
	// SeriesBreakerOpen counts requests that tripped a breaker open.
	SeriesBreakerOpen = "chaos.breaker.open"
)

// ArmStats accumulates one deployment arm's resilience counters across a
// replay. Every field is either an integer counter or an independent
// float sum, so shards merge order-independently per arm (the fleet
// merges them in block-index order regardless).
type ArmStats struct {
	// Demand is every arrival; Served the requests that completed; Shed,
	// Unavailable, and ThrottledDrops partition the arrivals that did not
	// (client shed, outage drop, throttle/congestion drop).
	Demand, Served, Shed, Unavailable, ThrottledDrops uint64
	// ThrottledAttempts counts throttle-rejected attempts inside the
	// admission loop (a served request may still have wasted several);
	// Retries the retry attempts spent; RetriesDenied the retries the
	// budget refused.
	ThrottledAttempts, Retries, RetriesDenied uint64
	// Degradation mechanisms.
	Hedges, HedgeWins, Fallbacks, Routed, BreakerOpens uint64
	// CostUSD is the arm's total bill across every attempt.
	CostUSD float64
	// BrownoutServed/BrownoutCostUSD cover the requests served inside a
	// brownout window — the slice where the fallback arm's double billing
	// amplifies.
	BrownoutServed  uint64
	BrownoutCostUSD float64
}

// Merge folds o into s.
func (s *ArmStats) Merge(o *ArmStats) {
	s.Demand += o.Demand
	s.Served += o.Served
	s.Shed += o.Shed
	s.Unavailable += o.Unavailable
	s.ThrottledDrops += o.ThrottledDrops
	s.ThrottledAttempts += o.ThrottledAttempts
	s.Retries += o.Retries
	s.RetriesDenied += o.RetriesDenied
	s.Hedges += o.Hedges
	s.HedgeWins += o.HedgeWins
	s.Fallbacks += o.Fallbacks
	s.Routed += o.Routed
	s.BreakerOpens += o.BreakerOpens
	s.CostUSD += o.CostUSD
	s.BrownoutServed += o.BrownoutServed
	s.BrownoutCostUSD += o.BrownoutCostUSD
}

// Unavailability is the fraction of demand the platform failed (sheds
// excluded: deliberately dropping load to protect the rest is the
// mitigation, not the failure — see monitor.KindAvailability).
func (s *ArmStats) Unavailability() float64 {
	if s.Demand == 0 {
		return 0
	}
	return float64(s.Unavailable+s.ThrottledDrops) / float64(s.Demand)
}

// CostPerServed is the mean bill per completed request.
func (s *ArmStats) CostPerServed() float64 {
	if s.Served == 0 {
		return 0
	}
	return s.CostUSD / float64(s.Served)
}

// BrownoutAmplification is the arm's cost-per-served inside brownout
// windows over its cost-per-served outside them — the double-billing
// amplifier the fallback wrapper exhibits (§5.4). Zero when either slice
// is empty.
func (s *ArmStats) BrownoutAmplification() float64 {
	if s.BrownoutServed == 0 || s.Served <= s.BrownoutServed {
		return 0
	}
	in := s.BrownoutCostUSD / float64(s.BrownoutServed)
	out := (s.CostUSD - s.BrownoutCostUSD) / float64(s.Served-s.BrownoutServed)
	if out <= 0 {
		return 0
	}
	return in / out
}

// IncidentOutcome is one scheduled incident's measured blast radius.
type IncidentOutcome struct {
	Incident Incident
	// Impacted is how many store windows tripped the incident's impact
	// predicate; MTTR spans from the incident start to the end of the
	// last impacted window (zero: no measurable impact). The scan runs to
	// recoveryHorizon past the scheduled end, so lingering congestion
	// after the incident counts against recovery.
	Impacted int
	MTTR     time.Duration
	// Metric names the impact predicate; Peak its worst window value.
	Metric string
	Peak   float64
}

// Impact predicate parameters. Thresholds are deliberately coarse — the
// scorecard detects "clearly degraded" windows, not statistical drift.
const (
	// recoveryHorizon extends each incident's scan past its scheduled end
	// so post-incident congestion counts against MTTR.
	recoveryHorizon = 90 * time.Minute
	// badFracImpact marks a window impacted when more than this fraction
	// of its demand was dropped.
	badFracImpact = 0.02
	// latencyImpact marks a window impacted when its mean served latency
	// exceeds this multiple of the day's mean.
	latencyImpact = 1.6
	// coldImpact marks a window impacted when its cold fraction exceeds
	// this multiple of the day's mean plus an absolute floor.
	coldImpact      = 2.0
	coldImpactFloor = 0.05
)

// Scorecard is the replay's resilience summary: overall availability,
// per-arm mechanism and cost attribution, and per-incident blast radius
// with time-to-recovery. Built from merged, order-independent artifacts,
// so it inherits the replay's byte-identity across worker counts.
type Scorecard struct {
	Mitigations Mitigations
	Topology    Topology
	Resolution  time.Duration
	// Total folds every arm; Arms lists them sorted by name with their
	// fleet-member counts.
	Total ArmStats
	Arms  []ArmRow
	// Incidents follow the engine's schedule order.
	Incidents []IncidentOutcome
}

// ArmRow is one arm's scorecard line.
type ArmRow struct {
	Arm       string
	Functions int
	ArmStats
}

// BuildScorecard computes the scorecard from the merged store and the
// per-arm accumulators. armFns carries fleet-member counts per arm; a nil
// store (telemetry disabled) yields no incident outcomes.
func BuildScorecard(eng *Engine, store *monitor.Store, latest time.Duration,
	arms map[string]*ArmStats, armFns map[string]int) *Scorecard {
	sc := &Scorecard{
		Mitigations: eng.cfg.Mitigations,
		Topology:    eng.cfg.Topology,
		Resolution:  store.Resolution(),
	}
	names := make([]string, 0, len(arms))
	for name := range arms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc.Total.Merge(arms[name])
		sc.Arms = append(sc.Arms, ArmRow{Arm: name, Functions: armFns[name], ArmStats: *arms[name]})
	}
	for _, in := range eng.cfg.Incidents {
		sc.Incidents = append(sc.Incidents, measureIncident(store, latest, in))
	}
	return sc
}

// measureIncident sweeps the incident's windows (plus the recovery
// horizon) with a kind-specific impact predicate and derives MTTR from
// the last impacted window.
func measureIncident(store *monitor.Store, latest time.Duration, in Incident) IncidentOutcome {
	out := IncidentOutcome{Incident: in}
	res := store.Resolution()
	if res <= 0 {
		return out
	}

	// Day-mean baselines for the relative predicates.
	served := store.Total(SeriesServed)
	cold := store.Total("req.cold")
	meanLat, meanCold := 0.0, 0.0
	if served.Count > 0 {
		meanLat = served.Sum / float64(served.Count)
		meanCold = float64(cold.Count) / float64(served.Count)
	}

	start := (in.Start / res) * res
	end := in.Start + in.Duration + recoveryHorizon
	if horizon := (latest/res + 1) * res; end > horizon {
		end = horizon
	}
	lastImpacted := time.Duration(-1)
	for T := start; T < end; T += res {
		impacted := false
		var v float64
		switch in.Kind {
		case ZoneOutage, ThrottleStorm:
			out.Metric = "bad-frac"
			demand := store.Range(SeriesDemand, T, T+res)
			bad := store.Range(SeriesBad, T, T+res)
			if demand.Count > 0 {
				v = float64(bad.Count) / float64(demand.Count)
				impacted = v > badFracImpact
			}
		case Brownout, LatencyStorm:
			out.Metric = "latency-x"
			w := store.Range(SeriesServed, T, T+res)
			if w.Count > 0 && meanLat > 0 {
				v = (w.Sum / float64(w.Count)) / meanLat
				impacted = v > latencyImpact
			}
		case Churn:
			out.Metric = "cold-frac"
			w := store.Range(SeriesServed, T, T+res)
			c := store.Range("req.cold", T, T+res)
			if w.Count > 0 {
				v = float64(c.Count) / float64(w.Count)
				impacted = v > meanCold*coldImpact+coldImpactFloor
			}
		}
		if impacted {
			out.Impacted++
			lastImpacted = T
			if v > out.Peak {
				out.Peak = v
			}
		}
	}
	if lastImpacted >= 0 {
		out.MTTR = lastImpacted + res - in.Start
		if out.MTTR < 0 {
			out.MTTR = 0
		}
	}
	return out
}

// Render produces the canonical scorecard text, byte-stable for a fixed
// replay identity.
func (sc *Scorecard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience scorecard — mitigations=%s topology=%dx%d\n",
		sc.Mitigations, sc.Topology.Zones, sc.Topology.HostsPerZone)
	t := &sc.Total
	fmt.Fprintf(&b, "availability=%.4f%% demand=%d served=%d shed=%d unavailable=%d throttled-drops=%d\n",
		100*(1-t.Unavailability()), t.Demand, t.Served, t.Shed, t.Unavailable, t.ThrottledDrops)
	fmt.Fprintf(&b, "mechanisms: retries=%d denied=%d throttled-attempts=%d hedges=%d won=%d fallbacks=%d routed=%d breaker-opens=%d\n",
		t.Retries, t.RetriesDenied, t.ThrottledAttempts, t.Hedges, t.HedgeWins,
		t.Fallbacks, t.Routed, t.BreakerOpens)

	if len(sc.Incidents) > 0 {
		b.WriteString("incidents:\n")
		for _, io := range sc.Incidents {
			mttr := "-"
			if io.Impacted > 0 {
				mttr = io.MTTR.String()
			}
			fmt.Fprintf(&b, "  %-52s impacted=%-5s mttr=%-10s peak %s=%.3f\n",
				io.Incident.String(), fmt.Sprintf("%dw", io.Impacted), mttr, io.Metric, io.Peak)
		}
	}

	if len(sc.Arms) > 0 {
		b.WriteString("arms:\n")
		for _, row := range sc.Arms {
			fmt.Fprintf(&b, "  %-10s fns=%-6d demand=%-9d served=%-9d unavail=%6.3f%% shed=%-7d hedge=%-6d fb=%-6d routed=%-6d opens=%-4d cost=$%.6f $/1k=%.6f\n",
				row.Arm, row.Functions, row.Demand, row.Served,
				100*row.Unavailability(), row.Shed, row.Hedges, row.Fallbacks,
				row.Routed, row.BreakerOpens, row.CostUSD, 1000*row.CostPerServed())
		}
		for _, row := range sc.Arms {
			if amp := row.BrownoutAmplification(); amp > 0 {
				in := row.BrownoutCostUSD / float64(row.BrownoutServed)
				out := (row.CostUSD - row.BrownoutCostUSD) / float64(row.Served-row.BrownoutServed)
				fmt.Fprintf(&b, "  %-10s brownout $/served %.9f vs calm %.9f (%.2fx)\n",
					row.Arm, in, out, amp)
			}
		}
	}
	return b.String()
}
