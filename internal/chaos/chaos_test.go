package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParseIncidentsRoundTrip: FormatIncidents(ParseIncidents(s)) is a
// fixpoint, and the canonical form re-parses to the same schedule — the
// same contract ParseSLOs and mql grammars keep.
func TestParseIncidentsRoundTrip(t *testing.T) {
	specs := []string{
		"zone-outage@9h+25m,zone=1",
		"throttle-storm@5h+45m,sev=0.6",
		"latency-storm@18h+35m,sev=4,frac=0.35",
		"brownout@13h+40m,zone=2,sev=3,frac=0.6",
		"churn@2h+30m,sev=0.8",
		"zone-outage@1h+10m,zone=0; churn@2h+30m; throttle-storm@30m+5m",
	}
	for _, spec := range specs {
		ins, err := ParseIncidents(spec)
		if err != nil {
			t.Fatalf("ParseIncidents(%q): %v", spec, err)
		}
		canon := FormatIncidents(ins)
		again, err := ParseIncidents(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if !reflect.DeepEqual(ins, again) {
			t.Errorf("%q: reparse of %q differs:\n%+v\nvs\n%+v", spec, canon, ins, again)
		}
		if got := FormatIncidents(again); got != canon {
			t.Errorf("%q: canonical form not a fixpoint: %q vs %q", spec, got, canon)
		}
	}
}

func TestParseIncidentsSortsByStart(t *testing.T) {
	ins, err := ParseIncidents("churn@5h+30m; zone-outage@1h+10m,zone=0")
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Kind != ZoneOutage || ins[1].Kind != Churn {
		t.Errorf("schedule not start-ordered: %v", FormatIncidents(ins))
	}
}

func TestParseIncidentsErrors(t *testing.T) {
	bad := []string{
		"meteor@1h+10m",                  // unknown kind
		"zone-outage@1h",                 // missing duration
		"zone-outage@-1h+10m",            // negative start
		"zone-outage@1h+0s",              // non-positive duration
		"zone-outage@1h+10m,sev=1.5",     // probability out of range
		"brownout@1h+10m,sev=0.5",        // stretch below 1
		"zone-outage@1h+10m,frac=0.5",    // frac on a non-frac kind
		"latency-storm@1h+10m,frac=1.5",  // frac out of range
		"zone-outage@1h+10m,zone=x",      // bad zone
		"zone-outage@1h+10m,wibble=1",    // unknown field
		"latency-storm@1h+10m,sev=bogus", // bad severity
	}
	for _, spec := range bad {
		if _, err := ParseIncidents(spec); err == nil {
			t.Errorf("ParseIncidents(%q) = nil error, want failure", spec)
		}
	}
}

func TestDefaultIncidentDayValidates(t *testing.T) {
	if _, err := NewEngine(Config{Incidents: DefaultIncidentDay()}); err != nil {
		t.Fatalf("canonical incident day rejected: %v", err)
	}
}

func TestNewEngineRejectsOutOfRangeZone(t *testing.T) {
	ins, err := ParseIncidents("zone-outage@1h+10m,zone=7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Incidents: ins}); err == nil {
		t.Fatal("zone 7 accepted against a 4-zone topology")
	}
}

func TestMitigationsRoundTrip(t *testing.T) {
	cases := []string{"all", "none", "hedge", "shed,budget", "hedge,shed,breaker"}
	for _, spec := range cases {
		m, err := ParseMitigations(spec)
		if err != nil {
			t.Fatalf("ParseMitigations(%q): %v", spec, err)
		}
		again, err := ParseMitigations(m.String())
		if err != nil || again != m {
			t.Errorf("%q: round-trip %v -> %q -> %v (err %v)", spec, m, m.String(), again, err)
		}
	}
	if _, err := ParseMitigations("hedge,warp"); err == nil {
		t.Error("unknown mitigation accepted")
	}
	if m, _ := ParseMitigations(""); m != AllMitigations() {
		t.Error("empty spec should mean all mitigations")
	}
}

func TestKindStringOutOfRange(t *testing.T) {
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("Kind(99) = %q", got)
	}
}

// TestTopologyPlacementStable: fault-domain placement is a pure function
// of the key, host indices stay inside the zone's range, and zones are
// reasonably balanced over many keys.
func TestTopologyPlacementStable(t *testing.T) {
	topo := DefaultTopology()
	counts := make([]int, topo.Zones)
	for k := uint64(0); k < 4000; k++ {
		z := topo.ZoneOf(k)
		h := topo.HostOf(k)
		if z != topo.ZoneOf(k) || h != topo.HostOf(k) {
			t.Fatal("placement not deterministic")
		}
		if h/topo.HostsPerZone != z {
			t.Fatalf("host %d outside zone %d", h, z)
		}
		counts[z]++
	}
	for z, n := range counts {
		if n < 700 || n > 1300 {
			t.Errorf("zone %d holds %d of 4000 keys (expected near-uniform)", z, n)
		}
	}
}

// TestEngineDrawsScheduleIndependent: a function's chaos decisions depend
// only on its own arrival sequence — replaying two functions interleaved
// or back-to-back yields identical outcomes.
func TestEngineDrawsScheduleIndependent(t *testing.T) {
	eng, err := NewEngine(Config{Seed: 11, Incidents: DefaultIncidentDay()})
	if err != nil {
		t.Fatal(err)
	}
	view := func(id int) FnView {
		return FnView{ID: id, Arm: ArmFallback, ColdInit: time.Second,
			Exec: 100 * time.Millisecond, MemoryMB: 256}
	}
	replay := func(st *FnState) []Outcome {
		var out []Outcome
		for at := time.Duration(0); at < 24*time.Hour; at += 7 * time.Minute {
			if st.Admit(at) {
				st.Serve(at, at%(20*time.Minute) == 0)
				out = append(out, st.Outcome())
			}
		}
		return out
	}
	// Sequential: function 1 fully, then function 2.
	a1 := replay(eng.Function(view(1)))
	a2 := replay(eng.Function(view(2)))
	// "Interleaved": fresh states, opposite construction order.
	b2 := replay(eng.Function(view(2)))
	b1 := replay(eng.Function(view(1)))
	if !reflect.DeepEqual(a1, b1) || !reflect.DeepEqual(a2, b2) {
		t.Fatal("outcomes depend on replay schedule")
	}
	if reflect.DeepEqual(a1, a2) {
		t.Fatal("distinct functions drew identical outcomes (keys not independent)")
	}
}

func TestScorecardRenderMentionsArms(t *testing.T) {
	sc := &Scorecard{Mitigations: AllMitigations(), Topology: DefaultTopology()}
	sc.Arms = append(sc.Arms, ArmRow{Arm: "fallback", Functions: 3,
		ArmStats: ArmStats{Demand: 10, Served: 9, Unavailable: 1, CostUSD: 0.5}})
	sc.Total = sc.Arms[0].ArmStats
	out := sc.Render()
	for _, want := range []string{"mitigations=all", "fallback", "availability=90.0000%"} {
		if !strings.Contains(out, want) {
			t.Errorf("scorecard missing %q:\n%s", want, out)
		}
	}
}

// FuzzParseIncidents: any accepted spec must canonicalize to a fixpoint
// that re-parses to the same schedule.
func FuzzParseIncidents(f *testing.F) {
	f.Add("zone-outage@9h+25m,zone=1")
	f.Add("latency-storm@18h+35m,sev=4,frac=0.35; churn@2h+30m")
	f.Add("brownout@0s+1ns,sev=1")
	f.Add("; ;;")
	f.Fuzz(func(t *testing.T, spec string) {
		ins, err := ParseIncidents(spec)
		if err != nil {
			return
		}
		canon := FormatIncidents(ins)
		again, err := ParseIncidents(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if FormatIncidents(again) != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, FormatIncidents(again))
		}
	})
}
