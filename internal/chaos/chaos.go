package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faas"
	"repro/internal/rollout"
	"repro/internal/stats"
)

// Deployment arms the engine knows about. Original and debloated come
// from the fleet population; the two wrapper arms model §5.4's fallback
// (every uncovered path re-invokes the original, billing both) with and
// without the rollout circuit breaker in front of it.
const (
	ArmOriginal  = "original"
	ArmDebloated = "debloated"
	ArmFallback  = "fallback"
	ArmBreaker   = "breaker"
)

// IsFallbackArm reports whether the arm re-invokes the original image on
// uncovered paths (and therefore double-bills when that path fires).
func IsFallbackArm(arm string) bool {
	return arm == ArmFallback || arm == ArmBreaker
}

// Mitigations toggles each graceful-degradation mechanism independently,
// so experiments can ablate them.
type Mitigations struct {
	// Hedge issues a speculative second attempt once a request outlives
	// the function's own p95, taking whichever finishes first (both
	// billed).
	Hedge bool
	// Shed drops requests client-side, before they hit the platform, when
	// the function's recent admission pressure is high — sacrificing a
	// fraction of traffic to break retry amplification.
	Shed bool
	// Breaker puts the rollout circuit breaker in front of the breaker
	// arm's fallback wrapper, routing straight to the original during
	// fallback storms so the doomed debloated attempt is never billed.
	Breaker bool
	// Budget caps client retries per sliding window (faas.RetryBudget),
	// bounding the retry storms that amplify throttle incidents.
	Budget bool
}

// AllMitigations turns every mechanism on.
func AllMitigations() Mitigations {
	return Mitigations{Hedge: true, Shed: true, Breaker: true, Budget: true}
}

// String renders the canonical spec: "all", "none", or a comma-joined
// subset in hedge,shed,breaker,budget order.
func (m Mitigations) String() string {
	if m == AllMitigations() {
		return "all"
	}
	var parts []string
	if m.Hedge {
		parts = append(parts, "hedge")
	}
	if m.Shed {
		parts = append(parts, "shed")
	}
	if m.Breaker {
		parts = append(parts, "breaker")
	}
	if m.Budget {
		parts = append(parts, "budget")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseMitigations parses "all", "none", or a comma-separated subset of
// hedge, shed, breaker, budget.
func ParseMitigations(spec string) (Mitigations, error) {
	switch strings.TrimSpace(spec) {
	case "", "all":
		return AllMitigations(), nil
	case "none":
		return Mitigations{}, nil
	}
	var m Mitigations
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "hedge":
			m.Hedge = true
		case "shed":
			m.Shed = true
		case "breaker":
			m.Breaker = true
		case "budget":
			m.Budget = true
		case "":
		default:
			return Mitigations{}, fmt.Errorf("chaos: unknown mitigation %q (known: hedge shed breaker budget, or all/none)", part)
		}
	}
	return m, nil
}

// Config parameterizes the engine.
type Config struct {
	// Seed keys every chaos hash; the same seed, population, and incident
	// schedule reproduce byte-identical outcomes at any worker count.
	Seed int64
	// Topology is the fault-domain layout (zero: DefaultTopology).
	Topology Topology
	// Incidents is the schedule (each validated; see ParseIncidents).
	Incidents []Incident
	// FallbackRate is the calm-weather uncovered-path rate of the
	// fallback/breaker arms; a brownout raises it to the incident's Frac.
	// Zero: 0.02.
	FallbackRate float64
	// Mitigations toggles the degradation mechanisms.
	Mitigations Mitigations
	// Pricing bills every attempt (zero value: faas.AWSPricing).
	Pricing faas.Pricing
	// Breaker tunes the breaker arm's circuit breaker (zero:
	// rollout.DefaultBreakerConfig).
	Breaker rollout.BreakerConfig
	// RetryBudget and RetryBudgetWindow bound client retries per function
	// when Mitigations.Budget is on (zero: 20 per 5m).
	RetryBudget       int
	RetryBudgetWindow time.Duration
	// MaxAttempts bounds the client admission loop, first try included
	// (zero: 4; capped at 16).
	MaxAttempts int
}

func (cfg Config) withDefaults() Config {
	cfg.Topology = cfg.Topology.withDefaults()
	if cfg.FallbackRate == 0 {
		cfg.FallbackRate = 0.02
	}
	if cfg.Pricing == (faas.Pricing{}) {
		cfg.Pricing = faas.AWSPricing()
	}
	if cfg.Breaker == (rollout.BreakerConfig{}) {
		cfg.Breaker = rollout.DefaultBreakerConfig()
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 20
	}
	if cfg.RetryBudgetWindow == 0 {
		cfg.RetryBudgetWindow = 5 * time.Minute
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 4
	}
	if cfg.MaxAttempts > 16 {
		cfg.MaxAttempts = 16
	}
	return cfg
}

// Engine holds the validated config; per-function state hangs off
// Function. The engine itself is immutable after construction and safe to
// share across replay shards.
type Engine struct {
	cfg     Config
	seedKey uint64
}

// NewEngine validates the config (incident parameters and zone indices
// against the topology) and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	for _, in := range cfg.Incidents {
		if err := in.Validate(); err != nil {
			return nil, err
		}
		if in.Zone >= cfg.Topology.Zones {
			return nil, fmt.Errorf("chaos: %s zone %d out of range (topology has %d zones)",
				in.Kind, in.Zone, cfg.Topology.Zones)
		}
	}
	return &Engine{
		cfg:     cfg,
		seedKey: splitmix64(uint64(cfg.Seed) + 0x5EEDC8A05),
	}, nil
}

// Config returns the defaulted, validated config.
func (e *Engine) Config() Config { return e.cfg }

// Admission model constants. The client loop treats an incident strike as
// sticky within one arrival: retries against a throttling or dead backend
// mostly fail again (the draws are conditional, not independent), which
// is what makes retry hammering expensive rather than effective.
const (
	// Conditional per-retry failure probability once an arrival is struck.
	outageRetryFail   = 0.97
	throttleRetryFail = 0.9
	// Throttle-storm amplification: effective strike probability is
	// sev*(throttleBase + throttleGain*pressure), capped. Pressure is the
	// EWMA of attempts this client recently wasted, so retry hammering
	// feeds back into the storm.
	throttleBase = 0.4
	throttleGain = 0.3
	strikeCap    = 0.95
	// Congestion collapse: above this pressure the client keeps getting
	// throttled even outside incident windows (the overwhelmed backend
	// has not recovered), at congestGain per unit of excess pressure.
	congestKnee = 1.5
	congestGain = 0.25
	congestCap  = 0.9
	// Load shedding ramp: above the knee, shed probability rises at
	// shedGain per unit of pressure, capped.
	shedKnee = 0.25
	shedGain = 0.8
	shedCap  = 0.7
	// EWMA smoothing for pressure.
	pressureDecay = 0.85
	// Per-attempt routing overhead and retry backoff (deterministic; the
	// usual seeded jitter would perturb nothing here but costs a stream).
	attemptOverhead = 40 * time.Millisecond
	retryBackoff    = 100 * time.Millisecond
	maxBackoff      = 2 * time.Second
	// Hedging engages once the function has this many latency samples.
	hedgeWarmup = 32
)

// FnView is what the engine needs to know about one fleet function.
type FnView struct {
	ID  int
	Arm string
	// ColdInit and Exec are the function's own deterministic phase
	// durations (the fleet population's per-member draws).
	ColdInit time.Duration
	Exec     time.Duration
	// FallbackInit is the original image's cold init, paid on top when a
	// fallback-arm request hits an uncovered path. Zero: 2.5×ColdInit.
	FallbackInit time.Duration
	MemoryMB     int
}

// Drop describes a request the client loop gave up on.
type Drop struct {
	// Class is the monitor sample class: "shed", "throttle", or
	// "unavailable".
	Class string
	// E2E is the client-observed latency of the failed loop (overheads
	// plus backoffs).
	E2E time.Duration
	// Retries is how many retry attempts were spent; RetriesDenied counts
	// retries the budget refused; ThrottledAttempts counts
	// throttle-rejected attempts inside the loop.
	Retries           int
	RetriesDenied     int
	ThrottledAttempts int
}

// Outcome describes a served request.
type Outcome struct {
	Cold bool
	// Init/Exec are the primary attempt's (post-stretch) phases; E2E is
	// what the client observed (retry waits + serve, hedging applied);
	// Busy is how long the pool instance was held.
	Init, Exec, E2E, Busy time.Duration
	// Billing across every attempt this request paid for (primary +
	// fallback re-invocation + hedge).
	BilledInit, BilledExec, Billed time.Duration
	CostUSD                        float64
	// Degradation bookkeeping.
	Retries           int
	RetriesDenied     int
	ThrottledAttempts int
	Fallback          bool // uncovered path fired (double bill)
	Routed            bool // breaker open: went straight to the original
	BreakerOpened     bool // this request tripped the breaker
	Hedged            bool // speculative second attempt issued
	HedgeWon          bool // ...and it finished first
	Brownout          bool // served during an active brownout window
}

// FnState is the engine's per-function state: fault-domain placement,
// zone-filtered incident schedule, churn flush times, admission pressure,
// the latency histogram hedging derives its delay from, and the
// mitigation machinery (budget, breaker). One FnState is driven
// sequentially by whichever shard replays the function — it is not safe
// for concurrent use, and needs none: no state is shared across
// functions, which is exactly why shard scheduling cannot perturb draws.
type FnState struct {
	eng  *Engine
	fn   FnView
	key  uint64
	zone int
	host int

	incidents []Incident // this zone's schedule, start-ordered
	flushes   []time.Duration

	seq      int
	pressure float64
	served   int
	hist     *stats.Histogram

	budget  *faas.RetryBudget
	breaker *rollout.Breaker

	drop Drop
	out  Outcome
}

// Function builds the per-function chaos state.
func (e *Engine) Function(fn FnView) *FnState {
	if fn.FallbackInit == 0 {
		fn.FallbackInit = fn.ColdInit * 5 / 2
	}
	key := splitmix64(e.seedKey ^ splitmix64(uint64(fn.ID)+0x9E3779B97F4A7C15))
	st := &FnState{
		eng:  e,
		fn:   fn,
		key:  key,
		zone: e.cfg.Topology.ZoneOf(key),
		host: e.cfg.Topology.HostOf(key),
		hist: stats.NewHistogram(),
	}
	for idx, in := range e.cfg.Incidents {
		if !in.appliesTo(st.zone) {
			continue
		}
		if in.Kind == Churn {
			// Churn is a host-level decision: every function on a picked
			// host flushes at the same staggered instant.
			hk := splitmix64(e.seedKey ^ splitmix64(uint64(st.host)+1) ^ splitmix64(saltChurnPick+uint64(idx)))
			if unit(hk) < in.Severity {
				ph := splitmix64(e.seedKey ^ splitmix64(uint64(st.host)+1) ^ splitmix64(saltChurnPhase+uint64(idx)))
				st.flushes = append(st.flushes, in.Start+stagger(ph, in.Duration))
			}
			continue
		}
		st.incidents = append(st.incidents, in)
	}
	sort.Slice(st.flushes, func(i, j int) bool { return st.flushes[i] < st.flushes[j] })
	if e.cfg.Mitigations.Budget {
		st.budget = faas.NewRetryBudget(e.cfg.RetryBudget, e.cfg.RetryBudgetWindow)
	}
	if e.cfg.Mitigations.Breaker && fn.Arm == ArmBreaker {
		st.breaker = rollout.NewBreaker(e.cfg.Breaker)
	}
	return st
}

// Zone and Host report the function's fault-domain placement.
func (st *FnState) Zone() int { return st.zone }
func (st *FnState) Host() int { return st.host }

// active returns the strongest active incident of the kind, if any.
func (st *FnState) active(kind Kind, at time.Duration) (Incident, bool) {
	best := Incident{}
	found := false
	for _, in := range st.incidents {
		if in.Start > at {
			break // start-ordered
		}
		if in.Kind == kind && in.Active(at) && (!found || in.Severity > best.Severity) {
			best, found = in, true
		}
	}
	return best, found
}

// FlushCut returns the latest churn recycle at or before the instant, or
// a negative duration when the host has not been recycled yet. Pool
// instances freed at or before the cut are gone.
func (st *FnState) FlushCut(at time.Duration) time.Duration {
	cut := time.Duration(-1)
	for _, f := range st.flushes {
		if f > at {
			break
		}
		cut = f
	}
	return cut
}

// Admit runs the client admission loop for the arrival and reports
// whether the request reached the platform. On false, Drop() describes
// the failure; on true, Serve must be called next.
func (st *FnState) Admit(at time.Duration) bool {
	st.seq++
	seq := st.seq
	cfg := &st.eng.cfg

	// Strike draws: is this arrival caught by an active incident (or by
	// post-incident congestion)? One draw per cause per arrival; retries
	// below re-draw conditionally.
	outage, outageOn := st.active(ZoneOutage, at)
	struckOutage := outageOn && draw(st.key, saltOutage, seq, 0) < outage.Severity
	pThrottle := 0.0
	if storm, on := st.active(ThrottleStorm, at); on {
		pThrottle = storm.Severity * (throttleBase + throttleGain*st.pressure)
		if pThrottle > strikeCap {
			pThrottle = strikeCap
		}
	}
	struckThrottle := pThrottle > 0 && draw(st.key, saltThrottle, seq, 0) < pThrottle
	pCongest := 0.0
	if st.pressure > congestKnee {
		pCongest = congestGain * (st.pressure - congestKnee)
		if pCongest > congestCap {
			pCongest = congestCap
		}
	}
	struckCongest := pCongest > 0 && draw(st.key, saltCongest, seq, 0) < pCongest

	// Load shedding: when recent pressure is high, drop a fraction of
	// traffic before it hits the platform at all. A shed request spends
	// no attempts, so it relieves pressure instead of feeding it.
	if cfg.Mitigations.Shed && st.pressure > shedKnee {
		pShed := shedGain * (st.pressure - shedKnee)
		if pShed > shedCap {
			pShed = shedCap
		}
		if draw(st.key, saltShed, seq, 0) < pShed {
			st.notePressure(0)
			st.drop = Drop{Class: "shed", E2E: 0}
			return false
		}
	}

	wasted, denied, throttledAttempts := 0, 0, 0
	wait := time.Duration(0)
	admitted := false
	var dropClass string
	for try := 0; ; try++ {
		rejected, class := st.attemptRejected(struckOutage, struckThrottle, struckCongest, seq, try)
		if !rejected {
			admitted = true
			break
		}
		wasted++
		if class == "throttle" {
			throttledAttempts++
		}
		dropClass = class
		if try+1 >= cfg.MaxAttempts {
			break
		}
		if st.budget != nil && !st.budget.Spend(at) {
			denied++
			break
		}
		wait += backoffFor(try)
	}

	st.notePressure(float64(wasted) + 0.5*float64(denied))
	retries := wasted - 1
	if admitted {
		retries = wasted
	}
	if retries < 0 {
		retries = 0
	}
	if admitted {
		st.out = Outcome{
			Retries:           retries,
			RetriesDenied:     denied,
			ThrottledAttempts: throttledAttempts,
			E2E:               wait, // serve adds the rest
		}
		return true
	}
	st.drop = Drop{
		Class:             dropClass,
		E2E:               wait + time.Duration(wasted)*attemptOverhead,
		Retries:           retries,
		RetriesDenied:     denied,
		ThrottledAttempts: throttledAttempts,
	}
	return false
}

// attemptRejected decides one attempt of a struck arrival. The first
// attempt of a struck arrival always fails (that is what "struck" means);
// retries fail with the cause's conditional probability.
func (st *FnState) attemptRejected(outage, throttle, congest bool, seq, try int) (bool, string) {
	if outage {
		if try == 0 || draw(st.key, saltOutage, seq, try) < outageRetryFail {
			return true, "unavailable"
		}
	}
	if throttle {
		if try == 0 || draw(st.key, saltThrottle, seq, try) < throttleRetryFail {
			return true, "throttle"
		}
	}
	if congest {
		if try == 0 || draw(st.key, saltCongest, seq, try) < throttleRetryFail {
			return true, "throttle"
		}
	}
	return false, ""
}

func backoffFor(try int) time.Duration {
	b := retryBackoff << uint(try)
	if b > maxBackoff || b <= 0 {
		b = maxBackoff
	}
	return b
}

func (st *FnState) notePressure(load float64) {
	st.pressure = pressureDecay*st.pressure + (1-pressureDecay)*load
}

// Drop returns the last Admit failure's description.
func (st *FnState) Drop() Drop { return st.drop }

// Outcome returns the last Serve's full record.
func (st *FnState) Outcome() Outcome { return st.out }

// Serve runs the admitted request: applies brownout/latency stretches,
// the fallback wrapper (and its breaker), and hedging; bills every
// attempt; and returns how long the pool instance is held busy.
func (st *FnState) Serve(at time.Duration, cold bool) time.Duration {
	seq := st.seq
	cfg := &st.eng.cfg
	out := st.out // admit bookkeeping (retries, wait in E2E)
	retryWait := out.E2E
	out.Cold = cold

	brownout, brownoutOn := st.active(Brownout, at)
	out.Brownout = brownoutOn

	init := time.Duration(0)
	if cold {
		init = st.fn.ColdInit
		if brownoutOn {
			// The dependency brownout stretches the import window — the
			// load_native call waiting on a browned-out backing service.
			init = time.Duration(float64(init) * brownout.Severity)
		}
	}
	exec := st.fn.Exec
	if storm, on := st.active(LatencyStorm, at); on && draw(st.key, saltLatency, seq, 0) < storm.Frac {
		exec = time.Duration(float64(exec) * storm.Severity)
	}
	out.Init, out.Exec = init, exec

	// Fallback wrapper: the debloated artifact hits an uncovered path and
	// re-invokes the original — both attempts billed (§5.4). A brownout
	// raises the uncovered rate to its Frac: new cold paths appear
	// exactly when the original's import is slowest.
	pFb := cfg.FallbackRate
	if brownoutOn && brownout.Frac > pFb {
		pFb = brownout.Frac
	}
	willFb := IsFallbackArm(st.fn.Arm) && draw(st.key, saltFallback, seq, 0) < pFb

	type bill struct{ init, exec time.Duration }
	var bills []bill
	var serveE2E, busy time.Duration

	routed := false
	if st.breaker != nil {
		st.breaker.TryHalfOpen(at)
		if st.breaker.State() == "OPEN" {
			routed = true
		} else {
			ev := st.breaker.Observe(at, willFb)
			if ev == "open" || ev == "reopen" {
				out.BreakerOpened = true
			}
		}
	}

	switch {
	case routed:
		// Breaker open: route straight to the original image. Cold starts
		// pay the original's (brownout-stretched) init; one bill.
		if cold {
			init = st.fn.FallbackInit
			if brownoutOn {
				init = time.Duration(float64(init) * brownout.Severity)
			}
			out.Init = init
		}
		out.Routed = true
		bills = append(bills, bill{init, exec})
		serveE2E = init + exec
		busy = serveE2E
	case willFb:
		// The debloated attempt runs to its AttributeError (half the
		// handler, conventionally), then the original cold-starts on top:
		// the stretched original init is the second bill — the brownout's
		// double-billing amplifier.
		fbInit := st.fn.FallbackInit
		if brownoutOn {
			fbInit = time.Duration(float64(fbInit) * brownout.Severity)
		}
		out.Fallback = true
		bills = append(bills, bill{init, exec / 2}, bill{fbInit, exec})
		serveE2E = init + exec/2 + fbInit + exec
		busy = init + exec/2 // the pool instance is freed at the throw
	default:
		bills = append(bills, bill{init, exec})
		serveE2E = init + exec
		busy = serveE2E
	}

	// Hedging: once a request outlives the function's own p95, fire a
	// speculative second attempt (modeled as landing warm: exec only,
	// re-drawn against the latency storm) and take whichever finishes
	// first. Both attempts are billed — latency bought with dollars.
	if cfg.Mitigations.Hedge && st.served >= hedgeWarmup && !out.Fallback && !routed {
		delay := time.Duration(st.hist.Quantile(0.95) * float64(time.Second))
		if delay > 0 && serveE2E > delay {
			hexec := st.fn.Exec
			if storm, on := st.active(LatencyStorm, at); on && draw(st.key, saltLatency, seq, 1) < storm.Frac {
				hexec = time.Duration(float64(hexec) * storm.Severity)
			}
			out.Hedged = true
			bills = append(bills, bill{0, hexec})
			if hedged := delay + hexec; hedged < serveE2E {
				serveE2E = hedged
				out.HedgeWon = true
			}
		}
	}

	st.hist.Observe(serveE2E.Seconds())
	st.served++

	for _, b := range bills {
		out.BilledInit += b.init
		out.BilledExec += b.exec
		billed := cfg.Pricing.BillDuration(b.init + b.exec)
		out.Billed += billed
		out.CostUSD += cfg.Pricing.Cost(billed, st.fn.MemoryMB)
	}
	out.E2E = retryWait + time.Duration(out.Retries)*attemptOverhead + serveE2E
	out.Busy = busy
	st.out = out
	return busy
}
