package imageio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/debloat"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildAppDir writes a runnable app directory to a temp location.
func buildAppDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "demo-app")
	writeFile(t, filepath.Join(dir, "handler.py"), `
import mathlib

def handler(event, context):
    x = event.get("x", 2)
    print("square:", mathlib.square(x))
    return {"result": mathlib.square(x)}
`)
	writeFile(t, filepath.Join(dir, "site-packages", "mathlib", "__init__.py"), `
load_native(25, 8)

def square(x):
    return x * x

def unused_cube(x):
    return x * x * x
`)
	writeFile(t, filepath.Join(dir, "oracle.json"), `{
  "tests": [
    {"name": "two", "event": {"x": 2}},
    {"name": "neg", "event": {"x": -3}}
  ]
}`)
	writeFile(t, filepath.Join(dir, "README.txt"), "not python, ignored")
	return dir
}

func TestLoadDir(t *testing.T) {
	app, err := LoadDir(buildAppDir(t))
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "demo-app" {
		t.Errorf("name = %q", app.Name)
	}
	if !app.Image.Exists("handler.py") || !app.Image.Exists("site-packages/mathlib/__init__.py") {
		t.Errorf("image files = %v", app.Image.List())
	}
	if app.Image.Exists("README.txt") {
		t.Error("non-Python files must not be loaded")
	}
	if len(app.Oracle) != 2 || app.Oracle[0].Name != "two" {
		t.Errorf("oracle = %+v", app.Oracle)
	}
	// JSON integers arrive as int64, not float64.
	if _, ok := app.Oracle[0].Event["x"].(int64); !ok {
		t.Errorf("event x has type %T, want int64", app.Oracle[0].Event["x"])
	}
}

func TestLoadedAppDebloatsEndToEnd(t *testing.T) {
	app, err := LoadDir(buildAppDir(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := debloat.Run(app, debloat.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, m := range res.Modules {
		for _, r := range m.Removed {
			if r == "unused_cube" {
				removed = true
			}
			if r == "square" {
				t.Error("needed attribute removed")
			}
		}
	}
	if !removed {
		t.Error("unused_cube should have been removed")
	}
}

func TestSaveDirRoundTrip(t *testing.T) {
	app, err := LoadDir(buildAppDir(t))
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "exported")
	if err := SaveDir(app, out); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Image.Len() != app.Image.Len() {
		t.Errorf("file count %d -> %d", app.Image.Len(), reloaded.Image.Len())
	}
	orig, _ := app.Image.Read("handler.py")
	back, _ := reloaded.Image.Read("handler.py")
	if orig != back {
		t.Error("handler content changed across save/load")
	}
}

func TestParseOracleBareArray(t *testing.T) {
	cases, err := ParseOracleJSON([]byte(`[{"event": {"k": 1.5}}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 || cases[0].Name != "test-0" {
		t.Errorf("cases = %+v", cases)
	}
	if v, ok := cases[0].Event["k"].(float64); !ok || v != 1.5 {
		t.Errorf("k = %#v", cases[0].Event["k"])
	}
}

func TestParseOracleErrors(t *testing.T) {
	if _, err := ParseOracleJSON([]byte(`not json`)); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ParseOracleJSON([]byte(`{"tests": []}`)); err == nil {
		t.Error("empty tests should fail")
	}
}

func TestLoadDirMissingHandler(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "other.py"), "x = 1\n")
	if _, err := LoadDir(dir); err == nil {
		t.Error("missing handler.py should fail")
	}
}
