// Package imageio loads serverless applications from real directories into
// the in-memory image format, and parses oracle specifications from JSON —
// the input format the paper specifies (§5: "a JSON file containing the
// input test cases that λ-trim will use to ensure correctness; each test
// must contain an event and a context").
//
// A deployable application directory looks like:
//
//	app/
//	  handler.py            entry module (handler function inside)
//	  oracle.json           test cases (optional here, required to debloat)
//	  site-packages/        third-party libraries
//	    numpy/__init__.py
//	    ...
package imageio

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/appspec"
	"repro/internal/vfs"
)

// oracleFile mirrors the paper's JSON oracle specification.
type oracleFile struct {
	Tests []oracleTest `json:"tests"`
}

type oracleTest struct {
	Name  string         `json:"name"`
	Event map[string]any `json:"event"`
	// Context is accepted for compatibility with the paper's format; the
	// harness synthesizes the runtime context, so its contents are
	// currently informational.
	Context map[string]any `json:"context"`
}

// ParseOracleJSON decodes an oracle specification.
func ParseOracleJSON(data []byte) ([]appspec.TestCase, error) {
	var spec oracleFile
	if err := json.Unmarshal(data, &spec); err != nil {
		// Also accept a bare array of tests.
		var bare []oracleTest
		if err2 := json.Unmarshal(data, &bare); err2 != nil {
			return nil, fmt.Errorf("imageio: oracle spec: %w", err)
		}
		spec.Tests = bare
	}
	if len(spec.Tests) == 0 {
		return nil, fmt.Errorf("imageio: oracle spec contains no tests")
	}
	out := make([]appspec.TestCase, len(spec.Tests))
	for i, tc := range spec.Tests {
		name := tc.Name
		if name == "" {
			name = fmt.Sprintf("test-%d", i)
		}
		if tc.Event == nil {
			tc.Event = map[string]any{}
		}
		out[i] = appspec.TestCase{Name: name, Event: normalizeJSON(tc.Event).(map[string]any)}
	}
	return out, nil
}

// normalizeJSON converts json.Unmarshal's generic values into the forms
// appspec events use (float64 stays; json numbers that are integral become
// int64 so handlers see ints).
func normalizeJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, val := range t {
			out[k] = normalizeJSON(val)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			out[i] = normalizeJSON(val)
		}
		return out
	case float64:
		if t == float64(int64(t)) {
			return int64(t)
		}
		return t
	}
	return v
}

// LoadDir reads an application directory from the real filesystem. entry
// and handler default to "handler"; the oracle is read from oracle.json
// when present.
func LoadDir(dir string) (*appspec.App, error) {
	image := vfs.New()
	var oracle []appspec.TestCase

	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == "oracle.json" {
			oracle, err = ParseOracleJSON(data)
			return err
		}
		if strings.HasSuffix(rel, ".py") {
			image.Write(rel, string(data))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("imageio: %w", err)
	}
	if !image.Exists("handler.py") {
		return nil, fmt.Errorf("imageio: %s has no handler.py", dir)
	}

	name := filepath.Base(filepath.Clean(dir))
	return &appspec.App{
		Name:         name,
		Image:        image,
		Entry:        "handler",
		Handler:      "handler",
		Oracle:       oracle,
		SetupDelayMS: 300,
		ImageSizeMB:  float64(image.TotalSize()) / (1 << 20),
		Tags:         map[string]string{"source": "local"},
	}, nil
}

// SaveDir writes an application image back to a real directory — used to
// export a debloated app for deployment.
func SaveDir(app *appspec.App, dir string) error {
	for _, rel := range app.Image.List() {
		content, err := app.Image.Read(rel)
		if err != nil {
			return err
		}
		dst := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return fmt.Errorf("imageio: %w", err)
		}
		if err := os.WriteFile(dst, []byte(content), 0o644); err != nil {
			return fmt.Errorf("imageio: %w", err)
		}
	}
	return nil
}
